// Package switchv is a from-scratch Go reproduction of "SwitchV: Automated
// SDN Switch Validation with P4 Models" (SIGCOMM 2022): a P4-16 front end,
// a P4Runtime stack, a CDCL/QF_BV solver, the p4-fuzzer and p4-symbolic
// engines, a reference simulator, and a fault-injectable PINS-style switch
// to validate. See README.md for the tour and bench_test.go for the
// benchmarks that regenerate the paper's tables and figures.
package switchv
