// Quickstart: validate a simulated PINS-style switch against its P4 model
// end-to-end — push the pipeline, fuzz the control plane API, and run
// symbolic data-plane validation — in under a hundred lines.
package main

import (
	"fmt"
	"log"

	"switchv/internal/fuzzer"
	"switchv/internal/p4/p4info"
	"switchv/internal/switchsim"
	"switchv/internal/switchv"
	"switchv/internal/symbolic"
	"switchv/internal/workload"
	"switchv/models"
)

func main() {
	// The P4 model is the specification: it defines the control plane API
	// (tables, actions, constraints) and the forwarding behavior.
	prog := models.Middleblock()
	info := p4info.New(prog)
	fmt.Printf("model %q: %d tables, %d actions, %d header fields\n",
		prog.Name, len(prog.Tables), len(prog.Actions), len(prog.Fields))

	// The switch under test: an independent implementation of the same
	// fixed-function pipeline (P4Runtime server -> orchestration agent ->
	// SyncD/SAI -> ASIC). Pass switchsim.Fault values to New to inject
	// real-world bugs.
	sw := switchsim.New("middleblock")
	defer sw.Close()

	h := switchv.New(info, sw, sw)
	if err := h.PushPipeline(); err != nil {
		log.Fatalf("pushing pipeline: %v", err)
	}

	// Control plane API validation (p4-fuzzer, §4): valid and mutated
	// write batches, judged by the read-back oracle.
	cp, err := h.RunControlPlane(fuzzer.Options{Seed: 7, NumRequests: 50, UpdatesPerRequest: 25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p4-fuzzer: %d updates (%d must-accept, %d must-reject), %d incidents\n",
		cp.Updates, cp.MustAccept, cp.MustReject, len(cp.Incidents))

	// Data plane validation (p4-symbolic, §5): symbolic execution of the
	// model with realistic table entries, one test packet per coverage
	// goal, differential execution against the reference simulator.
	entries := workload.MustEntries(prog, 150, 7)
	dp, err := h.RunDataPlane(entries, switchv.DataPlaneOptions{Coverage: symbolic.CoverBranches})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p4-symbolic: %d entries, %d goals (%d covered), %d packets, %d incidents\n",
		dp.Entries, dp.Goals, dp.Covered, dp.Packets, len(dp.Incidents))

	if len(cp.Incidents)+len(dp.Incidents) == 0 {
		fmt.Println("the switch conforms to its model")
	}
	for _, inc := range append(cp.Incidents, dp.Incidents...) {
		fmt.Println("incident:", inc)
	}
}
