// Remote: validate a switch over the network. Starts the simulated switch
// behind a TCP P4Runtime server (as cmd/switchd does), connects the
// SwitchV harness through the client, and runs both campaigns across the
// wire — the same code path used against a physically separate switch.
package main

import (
	"fmt"
	"log"

	"switchv/internal/fuzzer"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4rt"
	"switchv/internal/switchsim"
	"switchv/internal/switchv"
	"switchv/internal/symbolic"
	"switchv/internal/workload"
	"switchv/models"
)

func main() {
	// Switch side: serve a wan-role switch with a real Cerberus bug (the
	// byte-reversed encap destination) on a loopback port.
	sw := switchsim.New("wan", switchsim.FaultEncapDstReversed)
	defer sw.Close()
	srv := p4rt.NewServer(sw, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("switchd serving on %s\n", addr)

	// Tester side: everything goes through the P4Runtime client; the
	// harness cannot tell it is not talking to an in-process switch.
	cli, err := p4rt.Dial(addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	prog := models.WAN()
	h := switchv.New(p4info.New(prog), cli, cli)
	if err := h.PushPipeline(); err != nil {
		log.Fatal(err)
	}

	cp, err := h.RunControlPlane(fuzzer.Options{Seed: 5, NumRequests: 30, UpdatesPerRequest: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p4-fuzzer over TCP: %d updates, %d incidents\n", cp.Updates, len(cp.Incidents))

	entries := workload.MustEntries(prog, 500, 5)
	dp, err := h.RunDataPlane(entries, switchv.DataPlaneOptions{Coverage: symbolic.CoverBranches})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p4-symbolic over TCP: %d packets, %d incidents\n", dp.Packets, len(dp.Incidents))
	if len(dp.Incidents) > 0 {
		fmt.Println("the endianness bug, seen from across the network:")
		fmt.Println(" ", dp.Incidents[0])
	}
}
