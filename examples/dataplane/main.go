// Dataplane: a close look at p4-symbolic. Symbolically execute the WAN
// model with a production-scale entry set, inspect the trace guards,
// synthesize packets for chosen goals, and catch an injected hardware bug
// (the chip that forwards TTL<=1 instead of trapping it).
package main

import (
	"fmt"
	"log"

	"switchv/internal/bmv2"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4/pdpi"
	"switchv/internal/packet"
	"switchv/internal/switchsim"
	"switchv/internal/switchv"
	"switchv/internal/symbolic"
	"switchv/internal/workload"
	"switchv/models"
)

func main() {
	prog := models.WAN()
	entries := workload.MustEntries(prog, 400, 11)
	store := pdpi.NewStore()
	for _, e := range entries {
		if err := store.Insert(e); err != nil {
			log.Fatal(err)
		}
	}

	// Symbolic execution: one pass, guarded commands (§5).
	ex, err := symbolic.New(prog, store, symbolic.Options{})
	if err != nil {
		log.Fatal(err)
	}
	goals := ex.Goals(symbolic.CoverEntries)
	fmt.Printf("symbolic execution of %q with %d entries: %d coverage goals\n",
		prog.Name, store.Len(), len(goals))

	// Solve a structural goal: hit the first installed IPv4 route.
	route := store.Entries("ipv4_table")[0]
	goalKey := symbolic.TraceKeyEntry("ipv4_table", route)
	pkt, ok, err := ex.SolveGoal(symbolic.Goal{Key: goalKey, Cond: ex.Trace(goalKey)})
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatalf("route %s is unreachable", route)
	}
	fmt.Printf("packet hitting %s:\n  %s\n", route, packet.NewPacket(pkt.Data, packet.LayerTypeEthernet))

	// Confirm against the reference simulator: the packet really hits the
	// entry (the soundness property the test suite checks exhaustively).
	sim, err := bmv2.New(prog, store)
	if err != nil {
		log.Fatal(err)
	}
	out, err := sim.Run(bmv2.Input{Port: pkt.Port, Packet: pkt.Data})
	if err != nil {
		log.Fatal(err)
	}
	for _, hit := range out.Trace {
		if hit.Table == "ipv4_table" {
			fmt.Printf("simulator: ipv4_table chose %q via %s\n", hit.EntryKey, hit.Action)
		}
	}

	// Custom goal over X and Y (§5 "Coverage Constraints"): a packet that
	// is punted with TTL 1 — the hardware-trap path.
	b := ex.Builder()
	ttlField, _ := prog.FieldByName("headers.ipv4.ttl")
	ttl1 := b.Eq(ex.Input(ttlField), b.ConstUint(1, 8))
	puntPkt, ok, err := ex.SolveGoal(symbolic.Goal{Key: "custom:ttl1-punt", Cond: b.And(ttl1, ex.PuntCond())})
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatal("no TTL-1 punt packet exists")
	}
	fmt.Printf("TTL-1 trap packet:\n  %s\n", packet.NewPacket(puntPkt.Data, packet.LayerTypeEthernet))

	// Run the full differential campaign against a switch whose chip lacks
	// the TTL trap — SwitchV flags the divergence.
	sw := switchsim.New("wan", switchsim.FaultTTL1NoTrap)
	defer sw.Close()
	h := switchv.New(p4info.New(prog), sw, sw)
	if err := h.PushPipeline(); err != nil {
		log.Fatal(err)
	}
	rep, err := h.RunDataPlane(entries, switchv.DataPlaneOptions{Coverage: symbolic.CoverBranches})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncampaign against the faulty chip: %d packets, %d incidents\n", rep.Packets, len(rep.Incidents))
	if len(rep.Incidents) > 0 {
		fmt.Println("first incident:", rep.Incidents[0])
	}
}
