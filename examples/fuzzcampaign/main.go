// Fuzzcampaign: a close look at p4-fuzzer and the oracle. Generate valid
// and mutated control-plane batches, watch the oracle's verdicts, and
// catch an injected P4Runtime-server bug (the batch that aborts when a
// delete misses).
package main

import (
	"fmt"
	"log"
	"sort"

	"switchv/internal/fuzzer"
	"switchv/internal/oracle"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4rt"
	"switchv/internal/switchsim"
	"switchv/models"
)

func main() {
	prog := models.Middleblock()
	info := p4info.New(prog)

	// Drive the fuzzer by hand to see the moving parts: batches, switch
	// responses, read-backs, and the oracle's admissibility judgment.
	sw := switchsim.New("middleblock")
	defer sw.Close()
	if err := sw.SetForwardingPipelineConfig(p4rt.ForwardingPipelineConfig{P4Info: info.Text()}); err != nil {
		log.Fatal(err)
	}

	f := fuzzer.New(info, fuzzer.Options{Seed: 3, UpdatesPerRequest: 30})
	orc := oracle.New(info)
	verdicts := map[oracle.Verdict]int{}
	for batch := 0; batch < 80; batch++ {
		req, _, err := f.NextBatch()
		if err != nil {
			log.Fatal(err)
		}
		resp := sw.Write(req)
		observed, err := sw.Read(p4rt.ReadRequest{})
		if err != nil {
			log.Fatal(err)
		}
		vs, violations := orc.CheckBatch(req, resp, observed)
		for _, v := range vs {
			verdicts[v]++
		}
		for _, viol := range violations {
			fmt.Println("violation:", viol)
		}
		for i, st := range resp.Statuses {
			if st.Code == p4rt.OK {
				f.NoteAccepted(req.Updates[i])
			}
		}
	}
	fmt.Printf("clean switch: %d must-accept, %d may-reject, %d must-reject, 0 violations\n",
		verdicts[oracle.MustAccept], verdicts[oracle.MayReject], verdicts[oracle.MustReject])

	var names []string
	for name := range f.PerMutation {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("mutation catalog usage (§4.2):")
	for _, name := range names {
		fmt.Printf("  %-32s %d\n", name, f.PerMutation[name])
	}

	// Now the same campaign against a switch with a real bug from the
	// paper's appendix: deleting a non-existing entry fails the batch.
	buggy := switchsim.New("middleblock", switchsim.FaultBatchAbortOnDeleteMissing)
	defer buggy.Close()
	if err := buggy.SetForwardingPipelineConfig(p4rt.ForwardingPipelineConfig{P4Info: info.Text()}); err != nil {
		log.Fatal(err)
	}
	f2 := fuzzer.New(info, fuzzer.Options{Seed: 3, UpdatesPerRequest: 30})
	orc2 := oracle.New(info)
	for batch := 0; batch < 200; batch++ {
		req, _, err := f2.NextBatch()
		if err != nil {
			log.Fatal(err)
		}
		resp := buggy.Write(req)
		observed, err := buggy.Read(p4rt.ReadRequest{})
		if err != nil {
			log.Fatal(err)
		}
		_, violations := orc2.CheckBatch(req, resp, observed)
		if len(violations) > 0 {
			fmt.Printf("\nbuggy switch caught at batch %d:\n", batch)
			for i, viol := range violations {
				if i == 3 {
					fmt.Printf("  ... %d more\n", len(violations)-3)
					break
				}
				fmt.Printf("  %s\n", viol)
			}
			return
		}
		for i, st := range resp.Statuses {
			if st.Code == p4rt.OK {
				f2.NoteAccepted(req.Updates[i])
			}
		}
	}
	fmt.Println("fault not triggered (unexpected)")
}
