// Bughunt: inject every catalogued fault into the switch stack, run both
// SwitchV engines and the trivial suite against each, and print the
// detection matrix — a miniature live version of the paper's Tables 1-2.
package main

import (
	"fmt"
	"log"

	"switchv/internal/bugdb"
	"switchv/internal/experiments"
)

func main() {
	opts := experiments.Options{}
	for _, stack := range bugdb.Stacks() {
		bugs := bugdb.LiveFaults(stack)
		fmt.Printf("== %s: %d live-injectable bugs ==\n", stack, len(bugs))
		detected := 0
		var dets []experiments.FaultDetection
		for _, bug := range bugs {
			det, err := experiments.RunFaultCampaign(stack, bug.Fault, opts)
			if err != nil {
				log.Fatalf("fault %s: %v", bug.Fault, err)
			}
			dets = append(dets, det)
			if len(det.DetectedBy) > 0 {
				detected++
			}
		}
		fmt.Print(experiments.RenderDetections(dets))
		fmt.Printf("SwitchV detected %d/%d injected bugs\n\n", detected, len(bugs))
	}
}
