module switchv

go 1.22
