// Benchmarks regenerating the paper's evaluation (one per table/figure,
// plus ablations for the design choices called out in DESIGN.md §5). The
// replay command prints the same data as formatted tables; these report
// machine-readable metrics.
package switchv

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"switchv/internal/bmv2"
	"switchv/internal/bugdb"
	"switchv/internal/experiments"
	"switchv/internal/fuzzer"
	"switchv/internal/oracle"
	"switchv/internal/p4/compile"
	"switchv/internal/p4/constraints"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4rt"
	"switchv/internal/switchsim"
	"switchv/internal/switchv"
	"switchv/internal/symbolic"
	"switchv/internal/testutil"
	"switchv/internal/trivial"
	"switchv/internal/workload"
	"switchv/models"
)

// quickOpts keeps per-fault campaigns short enough to iterate over the
// whole catalog in one benchmark run.
var quickOpts = experiments.Options{FuzzRequests: 200, FuzzUpdates: 25, Entries: 320}

// BenchmarkTable1 runs the live fault-injection campaign behind Table 1:
// every catalogued bug with an injectable fault is hunted by both tools.
func BenchmarkTable1(b *testing.B) {
	for _, stack := range bugdb.Stacks() {
		b.Run(stack, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, dets, err := experiments.Table1Live(stack, quickOpts)
				if err != nil {
					b.Fatal(err)
				}
				found := 0
				for _, r := range rows {
					found += r.Bugs
				}
				b.ReportMetric(float64(found), "bugs-detected")
				b.ReportMetric(float64(len(dets)), "bugs-injected")
			}
		})
	}
}

// BenchmarkTable2 runs the trivial suite against every injected fault (the
// "would simpler testing have caught it?" experiment).
func BenchmarkTable2(b *testing.B) {
	for _, stack := range bugdb.Stacks() {
		b.Run(stack, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				counts, total, err := experiments.Table2Live(stack, quickOpts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(total-counts[""]), "found-by-trivial")
				b.ReportMetric(float64(counts[""]), "not-found")
			}
		})
	}
}

// table3Case describes one Table 3 row (Inst1/Inst2 at the paper's entry
// counts).
var table3Cases = []struct {
	name    string
	role    string
	entries int
}{
	{"Inst1", "middleblock", 798},
	{"Inst2", "wan", 1314},
}

// BenchmarkTable3Generation measures cold p4-symbolic test-packet
// generation (the "Generation" column).
func BenchmarkTable3Generation(b *testing.B) {
	for _, c := range table3Cases {
		b.Run(c.name, func(b *testing.B) {
			prog := models.MustLoad(c.role)
			entries := workload.MustEntries(prog, c.entries, 42)
			store := pdpi.NewStore()
			for _, e := range entries {
				if err := store.Insert(e); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ex, err := symbolic.New(prog, store, symbolic.Options{})
				if err != nil {
					b.Fatal(err)
				}
				pkts, rep, err := ex.GeneratePackets(symbolic.CoverEntries)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Goals), "goals")
				b.ReportMetric(float64(rep.Covered), "covered")
				b.ReportMetric(float64(len(pkts)), "packets")
			}
		})
	}
}

// BenchmarkTable3GenerationCached measures the warm-cache path (the "(w/c)"
// column): same model and entries, every goal outcome served from the
// per-goal cache — no SMT checks, one symbolic execution for the
// fingerprints.
func BenchmarkTable3GenerationCached(b *testing.B) {
	for _, c := range table3Cases {
		b.Run(c.name, func(b *testing.B) {
			prog := models.MustLoad(c.role)
			entries := workload.MustEntries(prog, c.entries, 42)
			store := pdpi.NewStore()
			for _, e := range entries {
				if err := store.Insert(e); err != nil {
					b.Fatal(err)
				}
			}
			cache := symbolic.NewCache()
			gopts := symbolic.GenOptions{Mode: symbolic.CoverEntries, Cache: cache}
			if _, _, err := symbolic.GeneratePacketsParallel(prog, store, symbolic.Options{}, gopts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, rep, err := symbolic.GeneratePacketsParallel(prog, store, symbolic.Options{}, gopts)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Cached != rep.Goals || rep.SMTChecks != 0 {
					b.Fatalf("warm run not fully cached: %+v", rep)
				}
			}
		})
	}
}

// BenchmarkDataPlaneGen is the ablation for the parallel, solve-avoiding
// generator (DESIGN.md §5c): serial one-check-per-goal baseline vs
// model-reuse pruning at workers=1 vs pruning+parallelism at workers=4,
// over the full goal universe RunDataPlane solves (branch coverage plus
// the enriched goals). Two middleblock instances, because the gates
// stress different regimes:
//
//   - small (150 entries): the check-reduction gate. Pruning headroom
//     is bounded by the mutually-disjoint big tables (each ipv4/ipv6
//     entry genuinely needs its own packet); at 798 entries those are
//     ~63% of all goals and no pruner can beat ~31% reduction, while at
//     150 the downstream prunable mass (wcmp/nexthop/neighbor/rif
//     chains, branches, enriched) clears 40%.
//   - large (798 entries, the Table 3 Inst1 workload): the wall-clock
//     gate, where solving dominates the per-shard symbolic-execution
//     cost and parallel solving pays off.
//
// Gates asserted: pruning cuts CheckAssuming calls by >=40% (small);
// packet set and report are bit-identical across worker counts (both);
// validity-aware witness synthesis plus pruning keep the large instance
// at or under 40 SMT checks (the check-budget regression gate for
// DESIGN.md §5h/§5i); cone-of-influence slicing changes no verdict
// (DisableSlicing ablation); on a >=4-CPU machine pruning+parallelism
// beat the serial baseline's wall-clock by >=2x (large).
func BenchmarkDataPlaneGen(b *testing.B) {
	prog := models.Middleblock()
	const mode = symbolic.CoverBranches
	type result struct {
		pkts    []symbolic.TestPacket
		rep     symbolic.Report
		elapsed time.Duration
	}
	mkStore := func(b *testing.B, n int) *pdpi.Store {
		store := pdpi.NewStore()
		for _, e := range workload.MustEntries(prog, n, 42) {
			if err := store.Insert(e); err != nil {
				b.Fatal(err)
			}
		}
		return store
	}
	runSerial := func(b *testing.B, store *pdpi.Store) *result {
		var res *result
		for i := 0; i < b.N; i++ {
			start := time.Now()
			ex, err := symbolic.New(prog, store, symbolic.Options{})
			if err != nil {
				b.Fatal(err)
			}
			// One check per goal over the same universe the generator
			// covers: structural goals of the mode plus enriched goals.
			goals := append(ex.Goals(mode), ex.EnrichedGoals()...)
			var pkts []symbolic.TestPacket
			rep := symbolic.Report{Goals: len(goals)}
			for _, g := range goals {
				pkt, ok, err := ex.SolveGoal(g)
				if err != nil {
					b.Fatal(err)
				}
				rep.SMTChecks++
				if ok {
					rep.Covered++
					pkts = append(pkts, *pkt)
				} else {
					rep.Unreachable++
				}
			}
			res = &result{pkts, rep, time.Since(start)}
			b.ReportMetric(float64(rep.SMTChecks), "smt-checks")
			b.ReportMetric(float64(rep.Goals), "goals")
		}
		return res
	}
	runParallel := func(b *testing.B, store *pdpi.Store, workers int) *result {
		var res *result
		for i := 0; i < b.N; i++ {
			start := time.Now()
			pkts, rep, err := symbolic.GeneratePacketsParallel(prog, store, symbolic.Options{},
				symbolic.GenOptions{Mode: mode, Enriched: true, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			res = &result{pkts, rep, time.Since(start)}
			b.ReportMetric(float64(rep.SMTChecks), "smt-checks")
			b.ReportMetric(float64(rep.Pruned), "pruned")
			b.ReportMetric(float64(rep.Witnessed), "witnessed")
			b.ReportMetric(float64(rep.WitnessUnsat), "witness-unsat")
			b.ReportMetric(float64(rep.Goals), "goals")
			b.ReportMetric(float64(rep.SlicedAsserts), "sliced-asserts")
			b.ReportMetric(float64(rep.SlicedBits), "sliced-bits")
		}
		return res
	}
	render := func(pkts []symbolic.TestPacket) string {
		var sb strings.Builder
		for _, p := range pkts {
			fmt.Fprintf(&sb, "%s|%d|%x\n", p.GoalKey, p.Port, p.Data)
		}
		return sb.String()
	}
	checkIdentity := func(b *testing.B, w1, w4 *result) {
		if render(w1.pkts) != render(w4.pkts) {
			b.Fatal("packet set differs across worker counts")
		}
		if w1.rep != w4.rep {
			b.Fatalf("report differs across worker counts:\n  workers=1: %+v\n  workers=4: %+v", w1.rep, w4.rep)
		}
	}

	var serialS, pruned1S, pruned4S, serialL, pruned1L, pruned4L *result
	small, large := mkStore(b, 150), mkStore(b, 798)
	b.Run("small/serial", func(b *testing.B) { serialS = runSerial(b, small) })
	b.Run("small/pruned-workers=1", func(b *testing.B) { pruned1S = runParallel(b, small, 1) })
	b.Run("small/pruned-workers=4", func(b *testing.B) { pruned4S = runParallel(b, small, 4) })
	b.Run("large/serial", func(b *testing.B) { serialL = runSerial(b, large) })
	b.Run("large/pruned-workers=1", func(b *testing.B) { pruned1L = runParallel(b, large, 1) })
	b.Run("large/pruned-workers=4", func(b *testing.B) { pruned4L = runParallel(b, large, 4) })
	if serialS == nil || pruned1S == nil || pruned4S == nil ||
		serialL == nil || pruned1L == nil || pruned4L == nil {
		return
	}

	// Gate 1: model-reuse pruning avoids >=40% of the solver calls.
	if lim := serialS.rep.SMTChecks * 6 / 10; pruned1S.rep.SMTChecks > lim {
		b.Fatalf("pruning saved too little: %d checks vs serial %d (want <= %d)",
			pruned1S.rep.SMTChecks, serialS.rep.SMTChecks, lim)
	}
	// Gate 2: worker count changes wall-clock only — packet set and
	// report are bit-identical, on both instances.
	checkIdentity(b, pruned1S, pruned4S)
	checkIdentity(b, pruned1L, pruned4L)
	// Gate 2b (check-budget regression): validity-aware witness synthesis
	// plus pruning must keep the large instance's residual SMT check
	// count at or under 40 (the pre-witness pruned path needed 560
	// checks here; seed-pinned witness synthesis needed 51).
	if pruned1L.rep.SMTChecks > 40 {
		b.Fatalf("large instance used %d SMT checks, want <= 40 (witnessed %d, pruned %d of %d goals)",
			pruned1L.rep.SMTChecks, pruned1L.rep.Witnessed, pruned1L.rep.Pruned, pruned1L.rep.Goals)
	}
	// Gate 2c (slice soundness ablation): cone-of-influence slicing must
	// not change any verdict — the covered goal-key set is identical with
	// slicing disabled. Packets and check counts may legitimately differ
	// (different models cascade into different pruning), so only the
	// verdicts are compared.
	b.Run("large/unsliced-verdicts", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pkts, rep, err := symbolic.GeneratePacketsParallel(prog, large, symbolic.Options{},
				symbolic.GenOptions{Mode: mode, Enriched: true, Workers: 1, DisableSlicing: true})
			if err != nil {
				b.Fatal(err)
			}
			if rep.SlicedAsserts != 0 || rep.SlicedBits != 0 {
				b.Fatalf("unsliced run reported slice metrics: %+v", rep)
			}
			covered := func(pkts []symbolic.TestPacket) map[string]bool {
				m := map[string]bool{}
				for _, p := range pkts {
					m[p.GoalKey] = true
				}
				return m
			}
			got, want := covered(pkts), covered(pruned1L.pkts)
			if len(got) != len(want) {
				b.Fatalf("verdicts differ across slicing: %d covered unsliced vs %d sliced", len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					b.Fatalf("goal %s covered with slicing but not without", k)
				}
			}
		}
	})
	// Gate 3: >=2x wall-clock over the serial baseline on >=4 CPUs.
	speedup := float64(serialL.elapsed) / float64(pruned4L.elapsed)
	b.ReportMetric(speedup, "speedup-x")
	b.ReportMetric(float64(runtime.NumCPU()), "cpus")
	if runtime.NumCPU() >= 4 && speedup < 2 {
		b.Fatalf("pruned+parallel speedup %.2fx over serial on a %d-CPU machine, want >= 2x", speedup, runtime.NumCPU())
	}
}

// BenchmarkTable3Testing measures the differential execution phase (the
// "Testing" column): run each generated packet against the switch and the
// reference simulator's behavior set.
func BenchmarkTable3Testing(b *testing.B) {
	for _, c := range table3Cases {
		b.Run(c.name, func(b *testing.B) {
			prog := models.MustLoad(c.role)
			info := p4info.New(prog)
			entries := workload.MustEntries(prog, c.entries, 42)
			cache := symbolic.NewCache()
			// Pre-generate once so iterations measure testing only.
			sw := switchsim.New(c.role)
			h := switchv.New(info, sw, sw)
			if err := h.PushPipeline(); err != nil {
				b.Fatal(err)
			}
			if _, err := h.RunDataPlane(entries, switchv.DataPlaneOptions{Cache: cache}); err != nil {
				b.Fatal(err)
			}
			sw.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw := switchsim.New(c.role)
				h := switchv.New(info, sw, sw)
				if err := h.PushPipeline(); err != nil {
					b.Fatal(err)
				}
				rep, err := h.RunDataPlane(entries, switchv.DataPlaneOptions{Cache: cache})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.CacheHit {
					b.Fatal("expected cached packets")
				}
				if n := len(rep.Incidents); n > 0 {
					b.Fatalf("%d incidents on a clean switch: %s", n, rep.Incidents[0])
				}
				b.ReportMetric(rep.TestElapsed.Seconds(), "testing-s")
				b.ReportMetric(float64(rep.Packets), "packets")
				sw.Close()
			}
		})
	}
}

// BenchmarkTable3Fuzzer measures p4-fuzzer throughput (the "Entries/s"
// rows of Table 3).
func BenchmarkTable3Fuzzer(b *testing.B) {
	for _, c := range table3Cases {
		b.Run(c.name, func(b *testing.B) {
			info := p4info.New(models.MustLoad(c.role))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw := switchsim.New(c.role)
				h := switchv.New(info, sw, sw)
				if err := h.PushPipeline(); err != nil {
					b.Fatal(err)
				}
				rep, err := h.RunControlPlane(fuzzer.Options{
					Seed: 42, NumRequests: 100, UpdatesPerRequest: 50,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Incidents) > 0 {
					b.Fatalf("incidents on clean switch: %s", rep.Incidents[0])
				}
				b.ReportMetric(rep.EntriesPerSecond(), "entries/s")
				b.ReportMetric(float64(rep.Updates), "entries")
				sw.Close()
			}
		})
	}
}

// BenchmarkFigure7 measures the days-to-resolution aggregation and renders
// the histogram (the data itself is catalog metadata; see DESIGN.md §2).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, unresolved := bugdb.Figure7()
		if unresolved != 9 || len(rows) != 12 {
			b.Fatal("histogram shape")
		}
		within14, within5 := bugdb.HeadlineStats()
		b.ReportMetric(100*within14, "pct-within-14d")
		b.ReportMetric(100*within5, "pct-within-5d")
	}
}

// BenchmarkAblationTraceForking quantifies §5 "Trace Isolation": the
// guarded single-pass encoding grows linearly in entries, while per-trace
// forking would enumerate the product of per-table entry counts. We report
// both the measured term count and the (astronomically larger) number of
// paths a KLEE-style executor would fork.
func BenchmarkAblationTraceForking(b *testing.B) {
	for _, n := range []int{100, 400, 798} {
		b.Run(byEntries(n), func(b *testing.B) {
			prog := models.Middleblock()
			entries := workload.MustEntries(prog, n, 42)
			store := pdpi.NewStore()
			for _, e := range entries {
				if err := store.Insert(e); err != nil {
					b.Fatal(err)
				}
			}
			// Paths a forking executor would explore: the product over
			// applied tables of (entries+1), capped to avoid overflow.
			paths := 1.0
			for _, t := range prog.Tables {
				paths *= float64(store.TableLen(t.Name) + 1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ex, err := symbolic.New(prog, store, symbolic.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(ex.Builder().NumTerms()), "guarded-terms")
				b.ReportMetric(paths, "forked-paths")
			}
		})
	}
}

func byEntries(n int) string {
	switch n {
	case 100:
		return "100entries"
	case 400:
		return "400entries"
	default:
		return "798entries"
	}
}

// BenchmarkAblationNaiveFuzz contrasts §4.2's mutation-based generation
// with naive random requests: the fraction of requests that get past the
// switch's first (syntactic) check layer, i.e. how deep into the control
// space each strategy reaches.
func BenchmarkAblationNaiveFuzz(b *testing.B) {
	prog := models.Middleblock()
	info := p4info.New(prog)
	const perIter = 2000

	b.Run("naive-random", func(b *testing.B) {
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < b.N; i++ {
			deep := 0
			for j := 0; j < perIter; j++ {
				te := p4rt.TableEntry{
					TableID:  rng.Uint32(),
					Priority: int32(rng.Intn(100)),
				}
				for k := 0; k < rng.Intn(3); k++ {
					te.Match = append(te.Match, p4rt.FieldMatch{
						FieldID: rng.Uint32() % 16,
						Exact:   &p4rt.ExactMatch{Value: []byte{byte(rng.Intn(255) + 1)}},
					})
				}
				te.Action.Action = &p4rt.Action{ActionID: rng.Uint32()}
				if _, err := p4rt.FromWire(info, &te); err == nil {
					deep++
				}
			}
			b.ReportMetric(100*float64(deep)/perIter, "pct-past-syntax")
		}
	})
	b.Run("mutation-based", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := fuzzer.New(info, fuzzer.Options{Seed: 9, MutateFraction: 1.0})
			deep := 0
			for j := 0; j < perIter; j++ {
				gu, err := f.GenerateUpdate()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := p4rt.FromWire(info, &gu.Update.Entry); err == nil {
					deep++
				}
			}
			b.ReportMetric(100*float64(deep)/perIter, "pct-past-syntax")
		}
	})
}

// BenchmarkAblationOracle quantifies §4.3: tracking every valid post-state
// of a batch explodes with the number of may-reject updates (2^k states),
// while the read-back oracle keeps exactly one.
func BenchmarkAblationOracle(b *testing.B) {
	prog := models.Middleblock()
	info := p4info.New(prog)
	vrf, _ := info.TableByName("vrf_table")
	mkInsert := func(id byte) p4rt.Update {
		return p4rt.Update{Type: p4rt.Insert, Entry: p4rt.TableEntry{
			TableID: vrf.ID,
			Match:   []p4rt.FieldMatch{{FieldID: 1, Exact: &p4rt.ExactMatch{Value: []byte{id}}}},
			Action:  p4rt.TableAction{Action: &p4rt.Action{ActionID: prog.NoAction.ID}},
		}}
	}
	for _, k := range []int{4, 8, 12} {
		b.Run(byK(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// State-set tracking: each may-reject update forks the set.
				states := []*pdpi.Store{pdpi.NewStore()}
				for j := 0; j < k; j++ {
					u := mkInsert(byte(j + 1))
					e, err := p4rt.FromWire(info, &u.Entry)
					if err != nil {
						b.Fatal(err)
					}
					var next []*pdpi.Store
					for _, s := range states {
						accepted := s.Clone()
						if err := accepted.Insert(e.Clone()); err != nil {
							b.Fatal(err)
						}
						next = append(next, accepted, s)
					}
					states = next
				}
				b.ReportMetric(float64(len(states)), "tracked-states")

				// The read-back oracle: one state regardless of k.
				orc := oracle.New(info)
				sw := switchsim.New("middleblock")
				h := switchv.New(info, sw, sw)
				if err := h.PushPipeline(); err != nil {
					b.Fatal(err)
				}
				var req p4rt.WriteRequest
				for j := 0; j < k; j++ {
					req.Updates = append(req.Updates, mkInsert(byte(j+1)))
				}
				resp := sw.Write(req)
				observed, err := sw.Read(p4rt.ReadRequest{})
				if err != nil {
					b.Fatal(err)
				}
				if _, violations := orc.CheckBatch(req, resp, observed); len(violations) > 0 {
					b.Fatalf("oracle violations: %v", violations)
				}
				b.ReportMetric(1, "oracle-states")
				sw.Close()
			}
		})
	}
}

// constraintsCheck avoids an import-name clash in the benchmark file.
func constraintsCheck(e *pdpi.Entry) (bool, error) { return constraints.CheckEntry(e) }

func byK(k int) string {
	switch k {
	case 4:
		return "batch4"
	case 8:
		return "batch8"
	default:
		return "batch12"
	}
}

// BenchmarkTrivialSuite times one full run of the §6.2 trivial suite on a
// clean switch (the baseline SwitchV is compared against).
func BenchmarkTrivialSuite(b *testing.B) {
	info := p4info.New(models.Middleblock())
	for i := 0; i < b.N; i++ {
		sw := switchsim.New("middleblock")
		if res := trivial.Run(info, sw, sw); res.FailedTest != "" {
			b.Fatalf("trivial suite failed at %s: %v", res.FailedTest, res.Err)
		}
		sw.Close()
	}
}

// BenchmarkCoverageGuidedVsBlind contrasts uniform-random (blind) fuzzing
// with the coverage-guided schedule on middleblock: same seed, same
// campaign length, small batches so table coverage accretes gradually. It
// reports incidents found and tables covered per 1k requests, plus the
// request count at which each campaign first reaches the blind campaign's
// final table coverage — the greybox payoff is that guided gets there in
// at most half the requests.
func BenchmarkCoverageGuidedVsBlind(b *testing.B) {
	info := p4info.New(models.Middleblock())
	// One update per request puts table coverage in the coupon-collector
	// regime: a blind schedule keeps re-drawing already-covered tables
	// (and wastes draws on constraint-heavy tables it already satisfied),
	// while the guided schedule spends its energy on the uncovered ones.
	// Reach is averaged over several seeds because a single campaign's
	// first-reach batch is noisy.
	const (
		nRequests = 600
		nUpdates  = 1
	)
	seeds := []int64{1, 2, 3, 4, 5}
	run := func(seed int64, guided bool) *switchv.ControlPlaneReport {
		// A faulty switch gives the incident metric something to find; the
		// fault (accepting dangling references) fires on the InvalidReference
		// mutation class in every table, so neither schedule is favored.
		sw := switchsim.New("middleblock", switchsim.FaultAcceptInvalidReference)
		defer sw.Close()
		h := switchv.New(info, sw, sw)
		if err := h.PushPipeline(); err != nil {
			b.Fatal(err)
		}
		rep, err := h.RunControlPlane(fuzzer.Options{
			Seed: seed, NumRequests: nRequests, UpdatesPerRequest: nUpdates,
			CoverageGuided: guided,
		})
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	// firstReach returns the 1-based batch index at which the trajectory
	// first covers the given table count (nRequests+1 if never).
	firstReach := func(rep *switchv.ControlPlaneReport, tables int) int {
		for i, s := range rep.Trajectory {
			if s.Tables >= tables {
				return i + 1
			}
		}
		return nRequests + 1
	}
	for i := 0; i < b.N; i++ {
		var blindReach, guidedReach, blindTables, guidedTables int
		var blindIncidents, guidedIncidents int
		for _, seed := range seeds {
			blind := run(seed, false)
			guided := run(seed, true)
			bt := blind.Trajectory[len(blind.Trajectory)-1].Tables
			gt := guided.Trajectory[len(guided.Trajectory)-1].Tables
			if gt < bt {
				b.Fatalf("seed %d: guided covered %d tables, blind %d", seed, gt, bt)
			}
			blindTables += bt
			guidedTables += gt
			blindReach += firstReach(blind, bt)
			guidedReach += firstReach(guided, bt)
			blindIncidents += len(blind.Incidents)
			guidedIncidents += len(guided.Incidents)
		}
		n := float64(len(seeds))
		b.ReportMetric(float64(blindTables)/n, "blind-tables")
		b.ReportMetric(float64(guidedTables)/n, "guided-tables")
		b.ReportMetric(float64(blindReach)/n, "blind-req-to-coverage")
		b.ReportMetric(float64(guidedReach)/n, "guided-req-to-coverage")
		b.ReportMetric(1000*float64(blindIncidents)/n/nRequests, "blind-incidents-per-1k")
		b.ReportMetric(1000*float64(guidedIncidents)/n/nRequests, "guided-incidents-per-1k")
		if guidedReach*2 > blindReach {
			b.Fatalf("guided needed %d requests (sum over %d seeds) to reach blind's table coverage; blind needed %d (want <= half)",
				guidedReach, len(seeds), blindReach)
		}
	}
}

// BenchmarkAblationConstraintAware contrasts default generation ("we
// currently do not enforce constraint compliance", §4.1) with the
// BDD-based constraint-aware mode (§7): the fraction of intended-valid
// entries for constrained tables that actually satisfy the
// @entry_restriction.
func BenchmarkAblationConstraintAware(b *testing.B) {
	prog := models.Middleblock()
	info := p4info.New(prog)
	run := func(b *testing.B, aware bool) {
		for i := 0; i < b.N; i++ {
			f := fuzzer.New(info, fuzzer.Options{Seed: 7, ConstraintAware: aware, MutateFraction: 0.0001})
			compliant, constrained := 0, 0
			for j := 0; j < 3000; j++ {
				gu, err := f.GenerateUpdate()
				if err != nil {
					b.Fatal(err)
				}
				if gu.Mutation != "" || gu.Update.Type != p4rt.Insert {
					continue
				}
				e, err := p4rt.FromWire(info, &gu.Update.Entry)
				if err != nil || e.Table.EntryRestriction == "" {
					continue
				}
				constrained++
				if ok, err := constraintsCheck(e); err == nil && ok {
					compliant++
				}
				f.NoteAccepted(gu.Update)
			}
			if constrained > 0 {
				b.ReportMetric(100*float64(compliant)/float64(constrained), "pct-compliant")
			}
		}
	}
	b.Run("default", func(b *testing.B) { run(b, false) })
	b.Run("bdd-aware", func(b *testing.B) { run(b, true) })
}

// BenchmarkCompiledVsInterp measures reference-simulator throughput in
// packets per second, single-threaded, over the Table 3 Inst1 workload
// (798 middleblock entries): the IR interpreter constructed once per
// packet (the pre-engine compare-loop pattern), the interpreter
// constructed once and reset per packet, and the compiled closure-tree
// pipeline. The engines are differentially tested to be
// outcome-identical, so this is a pure do-less-work-per-packet
// comparison; the gate asserts the compiled engine is >=10x the
// reset-reuse interpreter.
func BenchmarkCompiledVsInterp(b *testing.B) {
	prog := models.Middleblock()
	store := pdpi.NewStore()
	for _, e := range workload.MustEntries(prog, 798, 42) {
		if err := store.Insert(e); err != nil {
			b.Fatal(err)
		}
	}
	// A mix of parser paths and table outcomes: routed, longest-prefix,
	// WCMP-shaped, unrouted, TTL edge, BGP-like TCP, and IPv6.
	frames := [][]byte{
		testutil.IPv4UDP("10.0.0.1", 64, 53),
		testutil.IPv4UDP("10.99.1.2", 64, 53),
		testutil.IPv4UDP("10.200.3.4", 64, 443),
		testutil.IPv4UDP("192.0.2.1", 64, 53),
		testutil.IPv4UDP("10.0.0.1", 1, 179),
	}
	inputs := make([]bmv2.Input, len(frames))
	for i, f := range frames {
		inputs[i] = bmv2.Input{Port: uint16(i%4 + 1), Packet: f}
	}
	// Batch sizes are chosen so a batch takes a comparable wall-clock
	// slice (~10ms) for every engine: with equal-duration batches,
	// scheduler preemption and GC pauses on a shared machine dent each
	// engine's batches about equally instead of disproportionately
	// halving the fast engine's short batches.
	const interpBatch, compiledBatch = 2000, 20000
	drive := func(b *testing.B, sim bmv2.Simulator, batch int) {
		b.Helper()
		sim.Reset()
		for j := 0; j < batch; j++ {
			if _, err := sim.Run(inputs[j%len(inputs)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	// bestPPS times several batches and keeps the fastest: a GC pause
	// landing in one batch must not decide the throughput gate.
	bestPPS := func(b *testing.B, batch int, run func()) float64 {
		b.Helper()
		best := 0.0
		for r := 0; r < 7; r++ {
			start := time.Now()
			run()
			if pps := float64(batch) / time.Since(start).Seconds(); pps > best {
				best = pps
			}
		}
		return best
	}
	var freshPPS, interpPPS, compiledPPS float64
	b.Run("interp-fresh", func(b *testing.B) {
		// Warm-up run so a -benchtime 1x pass measures steady state.
		if sim, err := bmv2.New(prog, store); err != nil {
			b.Fatal(err)
		} else {
			drive(b, sim, interpBatch)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			freshPPS = bestPPS(b, interpBatch, func() {
				for j := 0; j < interpBatch; j++ {
					sim, err := bmv2.New(prog, store)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := sim.Run(inputs[j%len(inputs)]); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.ReportMetric(freshPPS, "pps")
		}
	})
	b.Run("interp-reset", func(b *testing.B) {
		sim, err := bmv2.New(prog, store)
		if err != nil {
			b.Fatal(err)
		}
		drive(b, sim, interpBatch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			interpPPS = bestPPS(b, interpBatch, func() { drive(b, sim, interpBatch) })
			b.ReportMetric(interpPPS, "pps")
		}
	})
	b.Run("compiled", func(b *testing.B) {
		sim, err := compile.New(prog, store)
		if err != nil {
			b.Fatal(err)
		}
		drive(b, sim, compiledBatch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			compiledPPS = bestPPS(b, compiledBatch, func() { drive(b, sim, compiledBatch) })
			b.ReportMetric(compiledPPS, "pps")
		}
	})
	if freshPPS == 0 || interpPPS == 0 || compiledPPS == 0 {
		return
	}
	speedup := compiledPPS / interpPPS
	// Parent benchmarks with sub-benchmarks print no metric line of
	// their own, so log the ratio for the recorded BENCH_dataplane.json.
	b.Logf("speedup: %.1fx over interp-reset, %.1fx over interp-fresh", speedup, compiledPPS/freshPPS)
	if speedup < 10 {
		b.Fatalf("compiled engine %.0f pps is %.1fx the interpreter's %.0f pps, want >= 10x", compiledPPS, speedup, interpPPS)
	}
}

// BenchmarkParallelCampaign measures the sharded engine's scaling and,
// at the same time, checks its determinism contract: the same
// (seed, shards) campaign at workers=1 and workers=4 must merge to the
// identical table-coverage set and incident signature, with worker
// count changing only wall-clock time. The >=2x speedup assertion only
// fires on machines with >=4 CPUs -- on smaller boxes the speedup is
// still reported as a metric but not enforced.
func BenchmarkParallelCampaign(b *testing.B) {
	info := p4info.New(models.Middleblock())
	factory := func(shard int) (p4rt.Device, func(), error) {
		sw := switchsim.New("middleblock")
		return sw, func() { sw.Close() }, nil
	}
	run := func(b *testing.B, workers int) *switchv.ParallelReport {
		var rep *switchv.ParallelReport
		for i := 0; i < b.N; i++ {
			r, err := switchv.RunParallelCampaign(info, switchv.ParallelOptions{
				Workers: workers,
				Shards:  switchv.DefaultShards,
				Fuzz:    fuzzer.Options{Seed: 11, NumRequests: 240, UpdatesPerRequest: 50},
				Factory: factory,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.EntriesPerSecond(), "entries/s")
			rep = r
		}
		return rep
	}
	var seq, par *switchv.ParallelReport
	b.Run("workers=1", func(b *testing.B) { seq = run(b, 1) })
	b.Run("workers=4", func(b *testing.B) { par = run(b, 4) })
	if seq == nil || par == nil {
		return
	}
	seqTables := strings.Join(seq.Coverage.TablesAccepted(), ",")
	parTables := strings.Join(par.Coverage.TablesAccepted(), ",")
	if seqTables != parTables {
		b.Fatalf("merged table coverage differs across worker counts:\n  workers=1: %s\n  workers=4: %s", seqTables, parTables)
	}
	seqKinds := strings.Join(switchv.IncidentKinds(seq.Incidents), ",")
	parKinds := strings.Join(switchv.IncidentKinds(par.Incidents), ",")
	if seqKinds != parKinds {
		b.Fatalf("incident signature differs across worker counts:\n  workers=1: %s\n  workers=4: %s", seqKinds, parKinds)
	}
	speedup := float64(seq.Elapsed) / float64(par.Elapsed)
	b.ReportMetric(speedup, "speedup-x")
	b.ReportMetric(float64(runtime.NumCPU()), "cpus")
	if runtime.NumCPU() >= 4 && speedup < 2 {
		b.Fatalf("workers=4 speedup %.2fx on a %d-CPU machine, want >= 2x", speedup, runtime.NumCPU())
	}
}
