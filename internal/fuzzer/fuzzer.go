// Package fuzzer implements p4-fuzzer (§4): generation of control-plane
// write requests from a P4 model — valid requests built from the P4Info
// schema, and "interestingly invalid" requests derived from valid ones by
// a curated catalog of mutations modeled on the P4Runtime specification
// and historically observed switch bugs.
package fuzzer

import (
	"fmt"
	"math/rand"

	"switchv/internal/coverage"
	"switchv/internal/p4/ir"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
	"switchv/internal/p4rt"
)

// Disabled is the sentinel for the *Fraction options meaning "exactly
// zero": Options{MutateFraction: Disabled} runs a pure-valid campaign,
// whereas a literal 0 means "unset, use the default".
const Disabled = -1.0

// Options configures a fuzzing campaign.
type Options struct {
	// Seed makes runs reproducible.
	Seed int64
	// NumRequests is the number of write batches to generate (paper: 1000).
	NumRequests int
	// UpdatesPerRequest is the approximate batch size (paper: ~50).
	UpdatesPerRequest int
	// MutateFraction is the probability that a generated update is turned
	// invalid via a mutation.
	MutateFraction float64
	// DeleteFraction is the probability of generating a delete (of a
	// previously installed entry) instead of an insert.
	DeleteFraction float64
	// ModifyFraction is the probability of generating a modify of a
	// previously installed entry with fresh action arguments.
	ModifyFraction float64
	// StopAfterIncidents ends the campaign early once this many incidents
	// have been found (0 = run the full campaign). Bug-hunting sweeps use
	// it; nightly validation runs do not.
	StopAfterIncidents int
	// ConstraintAware enables BDD-based generation (§7): intended-valid
	// entries are made @entry_restriction-compliant by sampling the
	// constraint's BDD, and a ConstraintViolation mutation samples its
	// complement. Off by default, matching the paper's deployed system
	// ("we currently do not enforce constraint compliance").
	ConstraintAware bool
	// CoverageGuided replaces uniform table/action/mutation picks with
	// energy-weighted draws from the coverage map (greybox feedback):
	// regions the campaign has not exercised yet are scheduled first.
	CoverageGuided bool
	// Coverage is the map consulted and updated by the campaign. New
	// allocates one when nil; campaigns that share coverage across
	// components (e.g. the switchv harness) inject theirs here.
	Coverage *coverage.Map
	// PlateauBatches stops the campaign once this many consecutive
	// batches add no new coverage point (0 = run the full campaign).
	// Enforced by the harness, which observes per-batch deltas.
	PlateauBatches int
}

func (o *Options) setDefaults() {
	if o.NumRequests == 0 {
		o.NumRequests = 1000
	}
	if o.UpdatesPerRequest == 0 {
		o.UpdatesPerRequest = 50
	}
	// 0 means "unset" for the fractions; Disabled (negative) means an
	// explicit zero, so pure-valid or delete-free campaigns are possible.
	frac := func(v *float64, def float64) {
		switch {
		case *v == 0:
			*v = def
		case *v < 0:
			*v = 0
		}
	}
	frac(&o.MutateFraction, 0.3)
	frac(&o.DeleteFraction, 0.15)
	frac(&o.ModifyFraction, 0.1)
}

// GeneratedUpdate is one fuzzed update with its generation metadata.
type GeneratedUpdate struct {
	Update p4rt.Update
	// Mutation names the applied mutation, or "" for intended-valid
	// updates. Note that intended-valid updates may still be invalid:
	// generation does not enforce @entry_restriction compliance (§4.1),
	// so tables with constraints frequently receive invalid entries.
	Mutation string
}

// Fuzzer generates control-plane updates for one model.
type Fuzzer struct {
	info *p4info.Info
	rng  *rand.Rand
	opts Options

	// installed mirrors what the fuzzer believes is on the switch, so
	// valid updates can reference previously installed entries (§4.4) and
	// deletes can target real entries.
	installed *pdpi.Store

	// ranks orders tables so that referenced tables come first.
	ranks map[string]int

	deferred []GeneratedUpdate    // updates deferred to later batches
	bdds     map[string]*tableBDD // compiled @entry_restriction BDDs

	// cov is always non-nil (campaigns account coverage even when blind);
	// guide is non-nil only under Options.CoverageGuided.
	cov   *coverage.Map
	guide *coverage.Guide

	// Stats.
	Generated    int
	MutatedCount int
	PerMutation  map[string]int
}

// New returns a fuzzer for the model.
func New(info *p4info.Info, opts Options) *Fuzzer {
	opts.setDefaults()
	if opts.Coverage == nil {
		opts.Coverage = coverage.NewMap(info)
	}
	f := &Fuzzer{
		info:        info,
		rng:         rand.New(rand.NewSource(opts.Seed)),
		opts:        opts,
		installed:   pdpi.NewStore(),
		ranks:       map[string]int{},
		PerMutation: map[string]int{},
		cov:         opts.Coverage,
	}
	for _, name := range MutationNames() {
		f.cov.Register(coverage.KeyMutation(name))
	}
	if opts.CoverageGuided {
		f.guide = coverage.NewGuide(f.cov)
	}
	// Dependency ranks by fixpoint iteration (the refers_to graph is
	// acyclic in well-formed models; bail out after |tables| rounds).
	tables := info.Tables()
	for _, t := range tables {
		f.ranks[t.Name] = 0
	}
	for round := 0; round < len(tables); round++ {
		changed := false
		for _, t := range tables {
			r := 0
			for _, dep := range info.Dependencies(t) {
				if f.ranks[dep]+1 > r {
					r = f.ranks[dep] + 1
				}
			}
			if r != f.ranks[t.Name] {
				f.ranks[t.Name] = r
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return f
}

// Installed exposes the fuzzer's view of the switch state (the entries it
// believes were accepted); the harness reconciles it with oracle state.
func (f *Fuzzer) Installed() *pdpi.Store { return f.installed }

// Coverage exposes the campaign's coverage map.
func (f *Fuzzer) Coverage() *coverage.Map { return f.cov }

// TableRank returns the dependency rank of a table (0 = no dependencies).
func (f *Fuzzer) TableRank(name string) int { return f.ranks[name] }

// randValue picks a biased random value: boundary values are
// overrepresented because they historically find bugs.
func (f *Fuzzer) randValue(width int) value.V {
	switch f.rng.Intn(6) {
	case 0:
		return value.Zero(width)
	case 1:
		return value.New(1, width)
	case 2:
		return value.Ones(width)
	default:
		return value.New128(f.rng.Uint64(), f.rng.Uint64(), width)
	}
}

// refValue picks a value for a @refers_to field: usually an existing
// referenced entry's key value (so the reference is valid), falling back
// to a random value when the referenced table is empty.
func (f *Fuzzer) refValue(ref *ir.Reference, width int) value.V {
	entries := f.installed.Entries(ref.Table)
	if len(entries) > 0 {
		e := entries[f.rng.Intn(len(entries))]
		if m, ok := e.Match(ref.Field); ok {
			return m.Value.WithWidth(width)
		}
	}
	return f.randValue(width)
}

// GenerateEntry builds an intended-valid semantic entry for the table.
func (f *Fuzzer) GenerateEntry(t *ir.Table) (*pdpi.Entry, error) {
	e := &pdpi.Entry{Table: t}
	for _, k := range t.Keys {
		w := k.Field.Width
		var m pdpi.Match
		m.Key = k.Name
		m.Kind = k.Match
		switch k.Match {
		case ir.MatchExact:
			if k.RefersTo != nil {
				m.Value = f.refValue(k.RefersTo, w)
			} else {
				m.Value = f.randValue(w)
			}
		case ir.MatchLPM:
			plen := f.rng.Intn(w + 1)
			mask := value.PrefixMask(plen, w)
			m.Value = f.randValue(w).And(mask)
			m.PrefixLen = plen
		case ir.MatchTernary:
			// Ternary and optional keys are omitted sometimes.
			if f.rng.Intn(2) == 0 {
				continue
			}
			mask := f.randValue(w)
			if mask.IsZero() {
				mask = value.Ones(w)
			}
			m.Mask = mask
			m.Value = f.randValue(w).And(mask)
		case ir.MatchOptional:
			if f.rng.Intn(2) == 0 {
				continue
			}
			if k.Field.Width == 1 {
				// Validity-bit keys: matching "1" is what entries mean.
				m.Value = value.New(1, 1)
			} else {
				m.Value = f.randValue(w)
			}
		}
		e.Matches = append(e.Matches, m)
	}
	if pdpi.NeedsPriority(t) {
		e.Priority = int32(1 + f.rng.Intn(100))
	}

	pickInvocation := func() (*pdpi.ActionInvocation, error) {
		if len(t.Actions) == 0 {
			return nil, fmt.Errorf("fuzzer: table %s has no actions", t.Name)
		}
		var a *ir.Action
		if f.guide != nil {
			a = f.guide.PickAction(f.rng, t)
		} else {
			a = t.Actions[f.rng.Intn(len(t.Actions))]
		}
		inv := &pdpi.ActionInvocation{Action: a}
		for _, p := range a.Params {
			if p.RefersTo != nil {
				inv.Args = append(inv.Args, f.refValue(p.RefersTo, p.Width))
			} else {
				inv.Args = append(inv.Args, f.randValue(p.Width))
			}
		}
		return inv, nil
	}

	if t.IsSelector {
		n := 1 + f.rng.Intn(4)
		for i := 0; i < n; i++ {
			inv, err := pickInvocation()
			if err != nil {
				return nil, err
			}
			e.ActionSet = append(e.ActionSet, pdpi.WeightedAction{
				ActionInvocation: *inv,
				Weight:           1 + f.rng.Intn(10),
			})
		}
	} else {
		inv, err := pickInvocation()
		if err != nil {
			return nil, err
		}
		e.Action = inv
	}
	return e, nil
}

// GenerateUpdate produces one update: an insert of a fresh entry, a delete
// of an installed one, or a mutated (invalid) variant of either.
func (f *Fuzzer) GenerateUpdate() (GeneratedUpdate, error) {
	t := f.pickTable()
	f.Generated++

	// Deletes and modifies target entries we believe are installed.
	if r := f.rng.Float64(); r < f.opts.DeleteFraction+f.opts.ModifyFraction {
		if e := f.randomInstalled(); e != nil {
			typ := p4rt.Delete
			if r >= f.opts.DeleteFraction {
				typ = p4rt.Modify
				// Re-roll the action (fresh arguments) on the same match.
				e = e.Clone()
				if fresh, err := f.GenerateEntry(e.Table); err == nil {
					e.Action = fresh.Action
					e.ActionSet = fresh.ActionSet
				}
			}
			f.cov.NoteWrite(e.Table.Name)
			upd := p4rt.Update{Type: typ, Entry: p4rt.ToWire(e)}
			gu := GeneratedUpdate{Update: upd}
			if f.rng.Float64() < f.opts.MutateFraction {
				gu = f.mutate(gu)
			}
			return gu, nil
		}
	}

	e, err := f.GenerateEntry(t)
	if err != nil {
		return GeneratedUpdate{}, err
	}
	if f.opts.ConstraintAware {
		e = f.generateCompliant(t, e)
	}
	f.cov.NoteWrite(t.Name)
	gu := GeneratedUpdate{Update: p4rt.Update{Type: p4rt.Insert, Entry: p4rt.ToWire(e)}}
	if f.rng.Float64() < f.opts.MutateFraction {
		gu = f.mutate(gu)
	}
	return gu, nil
}

// pickTable chooses a table, weighted toward low-rank (dependency-free)
// tables early in the campaign so references can be satisfied.
func (f *Fuzzer) pickTable() *ir.Table {
	tables := f.info.Tables()
	// Prefer tables whose dependencies already have installed entries.
	var ready []*ir.Table
	for _, t := range tables {
		ok := true
		for _, dep := range f.info.Dependencies(t) {
			if f.installed.TableLen(dep) == 0 {
				ok = false
				break
			}
		}
		if ok {
			ready = append(ready, t)
		}
	}
	if len(ready) == 0 || f.rng.Intn(10) == 0 {
		if f.guide != nil {
			return f.guide.PickTable(f.rng, tables)
		}
		return tables[f.rng.Intn(len(tables))]
	}
	if f.guide != nil {
		return f.guide.PickTable(f.rng, ready)
	}
	return ready[f.rng.Intn(len(ready))]
}

func (f *Fuzzer) randomInstalled() *pdpi.Entry {
	all := f.installed.All(f.info.Program())
	if len(all) == 0 {
		return nil
	}
	return all[f.rng.Intn(len(all))]
}

// NoteAccepted records that the switch accepted an update, keeping the
// reference pool in sync and crediting the coverage map: the table gets
// an accept, and (for inserts/modifies) every programmed action gets a
// select, which is what the guide's action energy decays on.
func (f *Fuzzer) NoteAccepted(u p4rt.Update) {
	e, err := p4rt.FromWire(f.info, &u.Entry)
	if err != nil {
		return
	}
	f.cov.NoteAccept(e.Table.Name)
	if u.Type != p4rt.Delete {
		if e.Action != nil {
			f.cov.NoteActionSelect(e.Table.Name, e.Action.Action.Name)
		}
		for i := range e.ActionSet {
			f.cov.NoteActionSelect(e.Table.Name, e.ActionSet[i].Action.Name)
		}
	}
	switch u.Type {
	case p4rt.Insert:
		_ = f.installed.Insert(e)
	case p4rt.Modify:
		_ = f.installed.Modify(e)
	case p4rt.Delete:
		_ = f.installed.Delete(e)
	}
}
