package fuzzer

import (
	"switchv/internal/p4/constraints"
	"switchv/internal/p4/ir"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
	"switchv/internal/p4rt"
)

// Constraint-aware generation (§7 "Fuzzing", the BDD mechanism the paper
// describes as ongoing work): each table's @entry_restriction is compiled
// to a BDD over the referenced key bits. Sampling the BDD makes intended-
// valid entries constraint-compliant; sampling its complement yields the
// ConstraintViolation mutation — entries that are invalid *only* because
// of the constraint, exercising the switch's semantic validation layer
// precisely.

// tableBDD caches a table's compiled restriction.
type tableBDD struct {
	form *constraints.BDDForm
	bad  bool // compilation failed or no restriction: fall back
}

func (f *Fuzzer) bddFor(t *ir.Table) *tableBDD {
	if f.bdds == nil {
		f.bdds = map[string]*tableBDD{}
	}
	if tb, ok := f.bdds[t.Name]; ok {
		return tb
	}
	tb := &tableBDD{}
	form, err := constraints.CompileTableBDD(t)
	if err != nil || form == nil {
		tb.bad = true
	} else {
		tb.form = form
	}
	f.bdds[t.Name] = tb
	return tb
}

// applyAssignment overwrites the constrained parts of an entry with a BDD
// assignment. Keys carrying @refers_to are left alone (their values come
// from the reference pool); the caller re-checks compliance.
func (f *Fuzzer) applyAssignment(e *pdpi.Entry, form *constraints.BDDForm, assignment []bool) {
	// Group the assignment per attribute.
	type attrVal struct{ v value.V }
	vals := map[[2]string]value.V{}
	widths := map[[2]string]int{}
	for i, ab := range form.Vars {
		k := [2]string{ab.Key, ab.Field}
		w := widths[k]
		w++
		widths[k] = w
		v := vals[k]
		v = v.WithWidth(64).Shl(1)
		if assignment[i] {
			v = v.Or(value.New(1, 64))
		}
		vals[k] = v
	}
	_ = attrVal{}

	for _, key := range e.Table.Keys {
		if key.RefersTo != nil {
			continue
		}
		valAttr, hasVal := vals[[2]string{key.Name, "value"}]
		maskAttr, hasMask := vals[[2]string{key.Name, "mask"}]
		setAttr, hasSet := vals[[2]string{key.Name, "is_set"}]
		if !hasVal && !hasMask && !hasSet {
			continue
		}
		w := key.Field.Width

		// Locate (or create) the match for this key.
		idx := -1
		for i := range e.Matches {
			if e.Matches[i].Key == key.Name {
				idx = i
			}
		}
		present := true
		if hasSet && setAttr.IsZero() {
			present = false
		}
		if !present {
			if idx >= 0 { // drop the match
				e.Matches = append(e.Matches[:idx], e.Matches[idx+1:]...)
			}
			continue
		}
		if idx < 0 {
			e.Matches = append(e.Matches, pdpi.Match{Key: key.Name, Kind: key.Match})
			idx = len(e.Matches) - 1
		}
		m := &e.Matches[idx]
		switch key.Match {
		case ir.MatchExact, ir.MatchOptional:
			if hasVal {
				m.Value = valAttr.WithWidth(w)
			}
		case ir.MatchTernary:
			if hasMask {
				m.Mask = maskAttr.WithWidth(w)
			}
			if m.Mask.Width != w {
				m.Mask = value.Ones(w)
			}
			if hasVal {
				m.Value = valAttr.WithWidth(w)
			}
			if m.Mask.IsZero() {
				// A zero ternary mask means "omit the match".
				e.Matches = append(e.Matches[:idx], e.Matches[idx+1:]...)
				continue
			}
			if m.Value.Width != w {
				m.Value = f.randValue(w)
			}
			m.Value = m.Value.And(m.Mask)
		case ir.MatchLPM:
			if hasVal {
				m.Value = valAttr.WithWidth(w).And(value.PrefixMask(m.PrefixLen, w))
			}
		}
	}
}

// generateCompliant resamples the constrained parts of an entry until it
// satisfies the table's @entry_restriction (bounded retries; @refers_to
// keys keep their pool-drawn values).
func (f *Fuzzer) generateCompliant(t *ir.Table, e *pdpi.Entry) *pdpi.Entry {
	tb := f.bddFor(t)
	if tb.bad {
		return e
	}
	for attempt := 0; attempt < 8; attempt++ {
		assignment, ok := tb.form.Builder.Sample(tb.form.Sat, f.rng)
		if !ok {
			return e // unsatisfiable restriction: nothing to do
		}
		f.applyAssignment(e, tb.form, assignment)
		if ok, err := constraints.CheckEntry(e); err == nil && ok {
			return e
		}
	}
	return e
}

// mutateConstraintViolation is the ConstraintViolation mutation: an
// otherwise-valid entry whose constrained bits are drawn from ¬C.
func (f *Fuzzer) mutateConstraintViolation(u *p4rt.Update) bool {
	t, ok := f.info.TableByID(u.Entry.TableID)
	if !ok || t.EntryRestriction == "" {
		return false
	}
	tb := f.bddFor(t)
	if tb.bad {
		return false
	}
	e, err := p4rt.FromWire(f.info, &u.Entry)
	if err != nil {
		return false
	}
	for attempt := 0; attempt < 8; attempt++ {
		assignment, ok := tb.form.Builder.Sample(tb.form.Unsat, f.rng)
		if !ok {
			return false // the restriction is a tautology
		}
		f.applyAssignment(e, tb.form, assignment)
		if e.Validate() != nil {
			continue // keep the entry syntactically valid
		}
		if ok, err := constraints.CheckEntry(e); err == nil && !ok {
			u.Entry = p4rt.ToWire(e)
			return true
		}
	}
	return false
}
