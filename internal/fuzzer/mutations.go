package fuzzer

import (
	"switchv/internal/p4/ir"
	"switchv/internal/p4rt"
)

// A mutation takes an intended-valid update and makes it "interestingly"
// invalid (§4.2). Each returns false if it does not apply to the given
// update, so the driver can pick another.
type mutation struct {
	name  string
	apply func(f *Fuzzer, u *p4rt.Update) bool
}

// Mutations is the curated catalog, modeled on the paper's examples:
// Invalid ID (table/field/action), Invalid Table Action, Invalid Match
// Type, Duplicate Match Field, Missing Mandatory Match Field, Invalid
// Action Selector Weight, Invalid Table Implementation, Invalid
// Reference, plus duplicate-insert/delete-missing and the canonical
// bytestring class.
var mutations = []mutation{
	{"InvalidTableID", func(f *Fuzzer, u *p4rt.Update) bool {
		u.Entry.TableID = 0x7f000000 + uint32(f.rng.Intn(1000))
		return true
	}},
	{"InvalidActionID", func(f *Fuzzer, u *p4rt.Update) bool {
		if u.Entry.Action.Action == nil {
			return false
		}
		u.Entry.Action.Action.ActionID = 0x7f000000 + uint32(f.rng.Intn(1000))
		return true
	}},
	{"InvalidMatchFieldID", func(f *Fuzzer, u *p4rt.Update) bool {
		if len(u.Entry.Match) == 0 {
			return false
		}
		u.Entry.Match[f.rng.Intn(len(u.Entry.Match))].FieldID = 200 + uint32(f.rng.Intn(100))
		return true
	}},
	{"InvalidTableAction", func(f *Fuzzer, u *p4rt.Update) bool {
		// Replace the action with one that exists in the program but is
		// out of scope for this table.
		if u.Entry.Action.Action == nil {
			return false
		}
		t, ok := f.info.TableByID(u.Entry.TableID)
		if !ok {
			return false
		}
		for _, a := range f.info.Actions() {
			if !t.HasAction(a) && len(a.Params) == 0 {
				u.Entry.Action.Action = &p4rt.Action{ActionID: a.ID}
				return true
			}
		}
		return false
	}},
	{"InvalidMatchType", func(f *Fuzzer, u *p4rt.Update) bool {
		// Exact value re-sent as an LPM match (or vice versa).
		for i := range u.Entry.Match {
			m := &u.Entry.Match[i]
			if m.Exact != nil {
				m.LPM = &p4rt.LPMMatch{Value: m.Exact.Value, PrefixLen: 8}
				m.Exact = nil
				return true
			}
			if m.LPM != nil {
				m.Exact = &p4rt.ExactMatch{Value: m.LPM.Value}
				m.LPM = nil
				return true
			}
		}
		return false
	}},
	{"DuplicateMatchField", func(f *Fuzzer, u *p4rt.Update) bool {
		if len(u.Entry.Match) == 0 {
			return false
		}
		m := u.Entry.Match[f.rng.Intn(len(u.Entry.Match))]
		u.Entry.Match = append(u.Entry.Match, m)
		return true
	}},
	{"MissingMandatoryMatchField", func(f *Fuzzer, u *p4rt.Update) bool {
		t, ok := f.info.TableByID(u.Entry.TableID)
		if !ok {
			return false
		}
		for i := range u.Entry.Match {
			k, ok := f.info.MatchFieldByID(t, int(u.Entry.Match[i].FieldID))
			if !ok {
				continue
			}
			if k.Match == ir.MatchExact || k.Match == ir.MatchLPM {
				u.Entry.Match = append(u.Entry.Match[:i], u.Entry.Match[i+1:]...)
				return true
			}
		}
		return false
	}},
	{"InvalidActionSelectorWeight", func(f *Fuzzer, u *p4rt.Update) bool {
		if len(u.Entry.Action.ActionSet) == 0 {
			return false
		}
		i := f.rng.Intn(len(u.Entry.Action.ActionSet))
		u.Entry.Action.ActionSet[i].Weight = int32(-f.rng.Intn(2)) // 0 or -1
		return true
	}},
	{"InvalidTableImplementation", func(f *Fuzzer, u *p4rt.Update) bool {
		// Send an action set to a single-action table or vice versa.
		if u.Entry.Action.Action != nil {
			a := *u.Entry.Action.Action
			u.Entry.Action.Action = nil
			u.Entry.Action.HasActionSet = true
			u.Entry.Action.ActionSet = []p4rt.ActionProfileAction{{Action: a, Weight: 1}}
			return true
		}
		if len(u.Entry.Action.ActionSet) > 0 {
			a := u.Entry.Action.ActionSet[0].Action
			u.Entry.Action.ActionSet = nil
			u.Entry.Action.HasActionSet = false
			u.Entry.Action.Action = &a
			return true
		}
		return false
	}},
	{"InvalidReference", func(f *Fuzzer, u *p4rt.Update) bool {
		// Point a @refers_to field at a value that is not installed.
		t, ok := f.info.TableByID(u.Entry.TableID)
		if !ok {
			return false
		}
		for i := range u.Entry.Match {
			k, ok := f.info.MatchFieldByID(t, int(u.Entry.Match[i].FieldID))
			if !ok || k.RefersTo == nil || u.Entry.Match[i].Exact == nil {
				continue
			}
			u.Entry.Match[i].Exact.Value = f.unusedRefValue(k.RefersTo, k.Field.Width)
			return true
		}
		if a := u.Entry.Action.Action; a != nil {
			act, ok := f.info.ActionByID(a.ActionID)
			if !ok {
				return false
			}
			for i := range a.Params {
				p, ok := f.info.ParamByID(act, int(a.Params[i].ParamID))
				if !ok || p.RefersTo == nil {
					continue
				}
				a.Params[i].Value = f.unusedRefValue(p.RefersTo, p.Width)
				return true
			}
		}
		return false
	}},
	{"NonCanonicalBytes", func(f *Fuzzer, u *p4rt.Update) bool {
		// Prepend a zero byte to a value (the leading-zero-bytes bug
		// class from the paper's appendix).
		for i := range u.Entry.Match {
			if m := u.Entry.Match[i].Exact; m != nil {
				m.Value = append([]byte{0}, m.Value...)
				return true
			}
		}
		if a := u.Entry.Action.Action; a != nil && len(a.Params) > 0 {
			a.Params[0].Value = append([]byte{0}, a.Params[0].Value...)
			return true
		}
		return false
	}},
	{"ValueOutOfRange", func(f *Fuzzer, u *p4rt.Update) bool {
		// Make a value wider than its field.
		t, ok := f.info.TableByID(u.Entry.TableID)
		if !ok {
			return false
		}
		for i := range u.Entry.Match {
			k, ok := f.info.MatchFieldByID(t, int(u.Entry.Match[i].FieldID))
			if !ok || u.Entry.Match[i].Exact == nil {
				continue
			}
			n := (k.Field.Width+7)/8 + 1
			big := make([]byte, n)
			big[0] = 0xff
			u.Entry.Match[i].Exact.Value = big
			return true
		}
		return false
	}},
	{"WrongParamCount", func(f *Fuzzer, u *p4rt.Update) bool {
		if a := u.Entry.Action.Action; a != nil && len(a.Params) > 0 {
			a.Params = a.Params[:len(a.Params)-1]
			return true
		}
		return false
	}},
	{"InvalidPriority", func(f *Fuzzer, u *p4rt.Update) bool {
		t, ok := f.info.TableByID(u.Entry.TableID)
		if !ok {
			return false
		}
		needs := false
		for _, k := range t.Keys {
			if k.Match == ir.MatchTernary || k.Match == ir.MatchOptional {
				needs = true
			}
		}
		if needs {
			u.Entry.Priority = 0 // required-but-missing
		} else {
			u.Entry.Priority = int32(1 + f.rng.Intn(10)) // forbidden-but-present
		}
		return true
	}},
	{"DeleteNonExistent", func(f *Fuzzer, u *p4rt.Update) bool {
		// Turn an insert of a fresh (not installed) entry into a delete.
		if u.Type != p4rt.Insert {
			return false
		}
		e, err := p4rt.FromWire(f.info, &u.Entry)
		if err != nil {
			return false
		}
		if _, exists := f.installed.Get(e); exists {
			return false
		}
		u.Type = p4rt.Delete
		return true
	}},
	{"DuplicateInsert", func(f *Fuzzer, u *p4rt.Update) bool {
		// Re-insert an entry we believe is already installed.
		e := f.randomInstalled()
		if e == nil {
			return false
		}
		u.Type = p4rt.Insert
		u.Entry = p4rt.ToWire(e)
		return true
	}},
}

// unusedRefValue returns a canonical value for a reference field that is
// guaranteed not to be installed in the referenced table.
func (f *Fuzzer) unusedRefValue(ref *ir.Reference, width int) []byte {
	used := map[string]bool{}
	for _, e := range f.installed.Entries(ref.Table) {
		if m, ok := e.Match(ref.Field); ok {
			used[m.Value.String()] = true
		}
	}
	for i := 0; i < 1000; i++ {
		v := f.randValue(width)
		if !used[v.String()] {
			return p4rt.EncodeValue(v)
		}
	}
	return p4rt.EncodeValue(f.randValue(width))
}

// mutate applies a random applicable mutation from the catalog.
func (f *Fuzzer) mutate(gu GeneratedUpdate) GeneratedUpdate {
	// In constraint-aware mode the ConstraintViolation mutation joins the
	// catalog with priority (it needs the BDD machinery, so it lives
	// outside the static table).
	if f.opts.ConstraintAware && f.rng.Intn(4) == 0 {
		u := gu.Update
		if f.mutateConstraintViolation(&u) {
			f.MutatedCount++
			f.PerMutation["ConstraintViolation"]++
			f.cov.NoteMutation("ConstraintViolation")
			return GeneratedUpdate{Update: u, Mutation: "ConstraintViolation"}
		}
	}
	// Blind campaigns try the catalog in a uniform random order; guided
	// ones order it by mutation-class energy, so classes the campaign has
	// applied least come up first (their verdict-outcome cells are the
	// least covered).
	var order []int
	if f.guide != nil {
		order = f.guide.PickMutationOrder(f.rng, mutationNames)
	} else {
		order = f.rng.Perm(len(mutations))
	}
	for _, i := range order {
		m := mutations[i]
		u := gu.Update // shallow copy; apply mutates in place
		if m.apply(f, &u) {
			f.MutatedCount++
			f.PerMutation[m.name]++
			f.cov.NoteMutation(m.name)
			return GeneratedUpdate{Update: u, Mutation: m.name}
		}
	}
	return gu
}

// mutationNames caches the catalog's names in catalog order (the order
// PickMutationOrder indexes into).
var mutationNames = func() []string {
	out := make([]string, len(mutations))
	for i, m := range mutations {
		out[i] = m.name
	}
	return out
}()

// MutationNames lists the catalog for reporting.
func MutationNames() []string {
	return append([]string(nil), mutationNames...)
}
