package fuzzer

import (
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4rt"
)

// NextBatch generates approximately Options.UpdatesPerRequest updates that
// are safe to execute in any order within one Write RPC (§4.4 "Running
// Test Requests"): no update's validity may depend on another update in
// the same batch. Dependency tracking is value-level — an update is
// deferred to the next batch only when it touches the same entry key as an
// earlier update, references a key value another update adds or removes,
// or adds/removes a key value another update references.
//
// The returned metadata slice parallels the request's updates.
func (f *Fuzzer) NextBatch() (p4rt.WriteRequest, []GeneratedUpdate, error) {
	var req p4rt.WriteRequest
	var meta []GeneratedUpdate
	tracker := newBatchTracker()
	var stillDeferred []GeneratedUpdate

	accept := func(gu GeneratedUpdate) bool {
		if len(req.Updates) > 0 && f.conflictsWithBatch(tracker, &gu.Update) {
			return false
		}
		f.noteInBatch(tracker, &gu.Update)
		req.Updates = append(req.Updates, gu.Update)
		meta = append(meta, gu)
		return true
	}

	// Drain updates deferred from earlier batches first.
	for _, gu := range f.deferred {
		if len(req.Updates) >= f.opts.UpdatesPerRequest || !accept(gu) {
			stillDeferred = append(stillDeferred, gu)
		}
	}
	f.deferred = stillDeferred

	for len(req.Updates) < f.opts.UpdatesPerRequest {
		gu, err := f.GenerateUpdate()
		if err != nil {
			return req, meta, err
		}
		if !accept(gu) {
			f.deferred = append(f.deferred, gu)
			// Bound the deferral queue so pathological workloads cannot
			// grow it without limit; when full, close the batch.
			if len(f.deferred) >= f.opts.UpdatesPerRequest {
				break
			}
		}
	}
	return req, meta, nil
}

// refKey names one referenceable key value: "table\x00field\x00value".
type refKey string

func mkRefKey(table, field, value string) refKey {
	return refKey(table + "\x00" + field + "\x00" + value)
}

type batchTracker struct {
	entryKeys map[string]bool // entry keys touched in this batch
	provided  map[refKey]bool // key values added/removed by batch updates
	referred  map[refKey]bool // references made by batch updates
}

func newBatchTracker() *batchTracker {
	return &batchTracker{
		entryKeys: map[string]bool{},
		provided:  map[refKey]bool{},
		referred:  map[refKey]bool{},
	}
}

// decompose extracts the semantic facts of an update: its entry key, the
// key values it provides (its own match values, per key field), and the
// references it makes (@refers_to values in keys and action params).
func (f *Fuzzer) decompose(u *p4rt.Update) (entryKey string, provides, refers []refKey, ok bool) {
	e, err := p4rt.FromWire(f.info, &u.Entry)
	if err != nil {
		return "", nil, nil, false
	}
	entryKey = e.Key()
	for _, m := range e.Matches {
		provides = append(provides, mkRefKey(e.Table.Name, m.Key, m.Value.String()))
	}
	collectInv := func(inv *pdpi.ActionInvocation) {
		for i, p := range inv.Action.Params {
			if p.RefersTo != nil && i < len(inv.Args) {
				refers = append(refers, mkRefKey(p.RefersTo.Table, p.RefersTo.Field, inv.Args[i].String()))
			}
		}
	}
	for _, m := range e.Matches {
		if k, found := e.Table.KeyByName(m.Key); found && k.RefersTo != nil {
			refers = append(refers, mkRefKey(k.RefersTo.Table, k.RefersTo.Field, m.Value.String()))
		}
	}
	if e.Action != nil {
		collectInv(e.Action)
	}
	for i := range e.ActionSet {
		collectInv(&e.ActionSet[i].ActionInvocation)
	}
	// A MODIFY also releases the references its old action held, so a
	// batch-mate deleting one of those targets would be order-dependent.
	if u.Type == p4rt.Modify {
		if old, ok := f.installed.Get(e); ok {
			if old.Action != nil {
				collectInv(old.Action)
			}
			for i := range old.ActionSet {
				collectInv(&old.ActionSet[i].ActionInvocation)
			}
		}
	}
	return entryKey, provides, refers, true
}

// conflictsWithBatch reports whether the update's validity could depend on
// the execution order of the current batch.
func (f *Fuzzer) conflictsWithBatch(t *batchTracker, u *p4rt.Update) bool {
	entryKey, provides, refers, ok := f.decompose(u)
	if !ok {
		return false // undecodable updates carry no analyzable dependencies
	}
	if t.entryKeys[entryKey] {
		return true
	}
	for _, r := range refers {
		if t.provided[r] {
			return true
		}
	}
	for _, p := range provides {
		if t.referred[p] {
			return true
		}
	}
	return false
}

func (f *Fuzzer) noteInBatch(t *batchTracker, u *p4rt.Update) {
	entryKey, provides, refers, ok := f.decompose(u)
	if !ok {
		return
	}
	t.entryKeys[entryKey] = true
	for _, p := range provides {
		t.provided[p] = true
	}
	for _, r := range refers {
		t.referred[r] = true
	}
}
