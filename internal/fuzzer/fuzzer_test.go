package fuzzer

import (
	"reflect"
	"testing"

	"switchv/internal/p4/constraints"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4rt"
	"switchv/models"
)

func newFuzzer(t *testing.T, opts Options) (*Fuzzer, *p4info.Info) {
	t.Helper()
	info := p4info.New(models.Middleblock())
	return New(info, opts), info
}

func TestGenerateEntryIsSyntacticallyValid(t *testing.T) {
	f, _ := newFuzzer(t, Options{Seed: 1})
	prog := models.Middleblock()
	for _, tbl := range prog.Tables {
		for i := 0; i < 50; i++ {
			e, err := f.GenerateEntry(tbl)
			if err != nil {
				t.Fatalf("%s: %v", tbl.Name, err)
			}
			if err := e.Validate(); err != nil {
				t.Fatalf("%s: generated invalid entry: %v (%s)", tbl.Name, err, e)
			}
		}
	}
}

func TestBatchesAreOrderIndependent(t *testing.T) {
	f, info := newFuzzer(t, Options{Seed: 2, UpdatesPerRequest: 50})
	for batch := 0; batch < 40; batch++ {
		req, meta, err := f.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if len(meta) != len(req.Updates) {
			t.Fatalf("meta length mismatch")
		}
		// Recheck the invariant with a fresh tracker: no two updates in
		// the batch may conflict.
		tracker := newBatchTracker()
		for i := range req.Updates {
			if i > 0 && f.conflictsWithBatch(tracker, &req.Updates[i]) {
				t.Fatalf("batch %d: update %d conflicts with an earlier one", batch, i)
			}
			f.noteInBatch(tracker, &req.Updates[i])
		}
		// Keep the pool realistic: pretend the switch accepted everything
		// decodable and applicable.
		for i := range req.Updates {
			f.NoteAccepted(req.Updates[i])
		}
	}
	_ = info
}

func TestMutationsProduceInvalidUpdates(t *testing.T) {
	f, info := newFuzzer(t, Options{Seed: 3, MutateFraction: 1.0, DeleteFraction: 0.01, ModifyFraction: 0.01})
	mutated := 0
	syntacticallyBad := 0
	for i := 0; i < 1000; i++ {
		gu, err := f.GenerateUpdate()
		if err != nil {
			t.Fatal(err)
		}
		if gu.Mutation == "" {
			continue
		}
		mutated++
		if _, err := p4rt.FromWire(info, &gu.Update.Entry); err != nil {
			syntacticallyBad++
		}
	}
	if mutated < 800 {
		t.Errorf("only %d/1000 updates mutated with MutateFraction 1.0", mutated)
	}
	// Most mutations are syntactically invalid, but some (InvalidReference,
	// DuplicateInsert, DeleteNonExistent, NonCanonical that decodes...)
	// stay well-formed on purpose.
	if syntacticallyBad == 0 || syntacticallyBad == mutated {
		t.Errorf("mutations not diverse: %d/%d syntactically bad", syntacticallyBad, mutated)
	}
	if len(f.PerMutation) < 8 {
		t.Errorf("only %d mutation kinds fired: %v", len(f.PerMutation), f.PerMutation)
	}
}

func TestTableRanks(t *testing.T) {
	f, _ := newFuzzer(t, Options{})
	if f.TableRank("vrf_table") != 0 {
		t.Errorf("vrf rank = %d", f.TableRank("vrf_table"))
	}
	if f.TableRank("ipv4_table") <= f.TableRank("nexthop_table") {
		t.Errorf("ipv4 (%d) should rank above nexthop (%d)",
			f.TableRank("ipv4_table"), f.TableRank("nexthop_table"))
	}
}

func TestConstraintAwareCompliance(t *testing.T) {
	prog := models.Middleblock()
	countCompliant := func(aware bool) (compliant, constrained int) {
		f := New(p4info.New(prog), Options{Seed: 7, ConstraintAware: aware, MutateFraction: 0.0001})
		for i := 0; i < 2000; i++ {
			gu, err := f.GenerateUpdate()
			if err != nil {
				t.Fatal(err)
			}
			if gu.Mutation != "" || gu.Update.Type != p4rt.Insert {
				continue
			}
			e, err := p4rt.FromWire(p4info.New(prog), &gu.Update.Entry)
			if err != nil {
				continue
			}
			if e.Table.EntryRestriction == "" {
				continue
			}
			constrained++
			if ok, err := constraints.CheckEntry(e); err == nil && ok {
				compliant++
			}
			f.NoteAccepted(gu.Update)
		}
		return
	}
	nAware, totAware := countCompliant(true)
	nPlain, totPlain := countCompliant(false)
	awareRate := float64(nAware) / float64(totAware)
	plainRate := float64(nPlain) / float64(totPlain)
	t.Logf("compliance: aware %.0f%% (%d/%d), plain %.0f%% (%d/%d)",
		100*awareRate, nAware, totAware, 100*plainRate, nPlain, totPlain)
	if awareRate < 0.95 {
		t.Errorf("constraint-aware compliance = %.2f, want >= 0.95", awareRate)
	}
	if awareRate <= plainRate {
		t.Errorf("constraint-aware (%f) not better than plain (%f)", awareRate, plainRate)
	}
}

func TestConstraintViolationMutation(t *testing.T) {
	info := p4info.New(models.Middleblock())
	f := New(info, Options{Seed: 9, ConstraintAware: true, MutateFraction: 1.0})
	hits := 0
	for i := 0; i < 3000 && hits < 20; i++ {
		gu, err := f.GenerateUpdate()
		if err != nil {
			t.Fatal(err)
		}
		if gu.Mutation != "ConstraintViolation" {
			if gu.Update.Type == p4rt.Insert && gu.Mutation == "" {
				f.NoteAccepted(gu.Update)
			}
			continue
		}
		hits++
		e, err := p4rt.FromWire(info, &gu.Update.Entry)
		if err != nil {
			t.Fatalf("ConstraintViolation produced a syntactically invalid entry: %v", err)
		}
		ok, err := constraints.CheckEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("ConstraintViolation entry is compliant: %s", e)
		}
	}
	if hits < 5 {
		t.Errorf("ConstraintViolation fired only %d times", hits)
	}
}

// TestDisabledFractionSentinel is the regression test for the "explicit
// zero" bug: Options treated MutateFraction == 0 (and Delete/Modify) as
// unset and silently substituted the default, so a pure-valid or
// delete-free campaign was impossible to configure.
func TestDisabledFractionSentinel(t *testing.T) {
	t.Run("defaults", func(t *testing.T) {
		o := Options{}
		o.setDefaults()
		if o.MutateFraction != 0.3 || o.DeleteFraction != 0.15 || o.ModifyFraction != 0.1 {
			t.Fatalf("defaults = %v/%v/%v", o.MutateFraction, o.DeleteFraction, o.ModifyFraction)
		}
	})
	t.Run("disabled means zero", func(t *testing.T) {
		o := Options{MutateFraction: Disabled, DeleteFraction: Disabled, ModifyFraction: Disabled}
		o.setDefaults()
		if o.MutateFraction != 0 || o.DeleteFraction != 0 || o.ModifyFraction != 0 {
			t.Fatalf("Disabled resolved to %v/%v/%v, want 0/0/0",
				o.MutateFraction, o.DeleteFraction, o.ModifyFraction)
		}
	})
	t.Run("pure valid campaign", func(t *testing.T) {
		f, _ := newFuzzer(t, Options{Seed: 11, MutateFraction: Disabled,
			DeleteFraction: Disabled, ModifyFraction: Disabled})
		for i := 0; i < 500; i++ {
			gu, err := f.GenerateUpdate()
			if err != nil {
				t.Fatal(err)
			}
			if gu.Mutation != "" {
				t.Fatalf("update %d mutated (%s) with MutateFraction Disabled", i, gu.Mutation)
			}
			if gu.Update.Type != p4rt.Insert {
				t.Fatalf("update %d is %v with Delete/ModifyFraction Disabled", i, gu.Update.Type)
			}
			f.NoteAccepted(gu.Update)
		}
		if f.MutatedCount != 0 {
			t.Fatalf("MutatedCount = %d, want 0", f.MutatedCount)
		}
	})
}

// TestGuidedScheduleIsDeterministic is the seeded determinism guarantee:
// two coverage-guided fuzzers with the same seed (and therefore the same
// evolving coverage state) must emit identical batches.
func TestGuidedScheduleIsDeterministic(t *testing.T) {
	mk := func() *Fuzzer {
		f, _ := newFuzzer(t, Options{Seed: 21, CoverageGuided: true, UpdatesPerRequest: 40})
		return f
	}
	f1, f2 := mk(), mk()
	for batch := 0; batch < 20; batch++ {
		r1, m1, err := f1.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		r2, m2, err := f2.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("batch %d diverged", batch)
		}
		if !reflect.DeepEqual(m1, m2) {
			t.Fatalf("batch %d metadata diverged", batch)
		}
		// Keep both coverage states in lockstep, as a real campaign would.
		for i := range r1.Updates {
			f1.NoteAccepted(r1.Updates[i])
			f2.NoteAccepted(r2.Updates[i])
		}
	}
}

func TestUnknownTableUpdatesAreTracked(t *testing.T) {
	// Mutated updates that fail to decode must not break batching.
	f, _ := newFuzzer(t, Options{Seed: 4, MutateFraction: 0.9, UpdatesPerRequest: 30})
	for i := 0; i < 10; i++ {
		if _, _, err := f.NextBatch(); err != nil {
			t.Fatal(err)
		}
	}
}
