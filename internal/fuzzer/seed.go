package fuzzer

// DeriveSeed maps a campaign's root seed and a shard index to that
// shard's fuzzer seed via one splitmix64 step, so shards get
// well-separated PRNG streams while staying a pure function of
// (root, shard) — the parallel engine's determinism contract depends on
// worker count never entering this computation.
//
// Shard 0 is NOT the root seed itself: a single-shard parallel campaign
// is a different experiment from a sequential campaign with the same
// seed, and keeping the streams disjoint avoids accidental coupling
// between the two modes.
func DeriveSeed(root int64, shard int) int64 {
	z := uint64(root) + 0x9e3779b97f4a7c15*uint64(shard+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
