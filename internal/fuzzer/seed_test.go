package fuzzer

import "testing"

func TestDeriveSeedDeterministic(t *testing.T) {
	if DeriveSeed(42, 3) != DeriveSeed(42, 3) {
		t.Fatal("DeriveSeed is not a pure function")
	}
}

func TestDeriveSeedDistinctAcrossShards(t *testing.T) {
	const shards = 64
	seen := map[int64]int{}
	for s := 0; s < shards; s++ {
		d := DeriveSeed(42, s)
		if prev, dup := seen[d]; dup {
			t.Fatalf("shards %d and %d collide on seed %d", prev, s, d)
		}
		seen[d] = s
	}
	// Shard 0 must not degenerate to the root seed (see DeriveSeed doc).
	if DeriveSeed(42, 0) == 42 {
		t.Fatal("shard 0 seed equals root seed")
	}
}

func TestDeriveSeedDistinctAcrossRoots(t *testing.T) {
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("different roots produced the same shard-0 seed")
	}
}
