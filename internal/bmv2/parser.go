// Package bmv2 implements the reference P4 simulator that SwitchV runs
// test packets through to obtain the model's expected behavior (standing
// in for the BMv2 simple_switch target). It interprets the compiled IR
// directly: a packet is parsed onto the flattened field space, the
// pipeline controls execute concretely against the installed table
// entries, and the resulting field space is deparsed back into a packet.
//
// Parsing is semi-hardcoded, as in the paper (§5 "Limitations"): header
// instances declared under the model's headers struct are mapped onto
// protocol layers by their conventional instance names (ethernet, vlan,
// ipv4, ipv6, gre, inner_ipv4, tcp, udp, icmp, arp).
package bmv2

import (
	"fmt"
	"strings"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/value"
	"switchv/internal/packet"
)

// fieldSpace is the concrete state of one packet traversal.
type fieldSpace []value.V

func newFieldSpace(prog *ir.Program) fieldSpace {
	fs := make(fieldSpace, len(prog.Fields))
	for i, f := range prog.Fields {
		fs[i] = value.Zero(f.Width)
	}
	return fs
}

// headersPrefix returns the parameter name holding the header instances
// (e.g. "headers"), derived from the first header instance path.
func headersPrefix(prog *ir.Program) string {
	if len(prog.HeaderInstances) == 0 {
		return "headers"
	}
	path := prog.HeaderInstances[0].Path
	if i := strings.IndexByte(path, '.'); i > 0 {
		return path[:i]
	}
	return path
}

// setF assigns a field by canonical name if the model declares it.
func (sim *Interp) setF(fs fieldSpace, name string, v uint64) {
	if f, ok := sim.prog.FieldByName(name); ok {
		fs[f.ID] = value.New(v, f.Width)
	}
}

func (sim *Interp) setF128(fs fieldSpace, name string, hi, lo uint64) {
	if f, ok := sim.prog.FieldByName(name); ok {
		fs[f.ID] = value.New128(hi, lo, f.Width)
	}
}

func (sim *Interp) getF(fs fieldSpace, name string) (value.V, bool) {
	if f, ok := sim.prog.FieldByName(name); ok {
		return fs[f.ID], true
	}
	return value.V{}, false
}

func (sim *Interp) hasInstance(name string) bool {
	full := sim.hdrPrefix + "." + name
	for _, hi := range sim.prog.HeaderInstances {
		if hi.Path == full {
			return true
		}
	}
	return false
}

func be48(b []byte) uint64 {
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v
}

// parse decodes raw packet bytes onto the field space. Layers without a
// corresponding header instance in the model end the parse; the remaining
// bytes (opaque to the model) are returned as payload.
func (sim *Interp) parse(fs fieldSpace, data []byte) (payload []byte, err error) {
	rest := data
	p := sim.hdrPrefix

	var eth packet.Ethernet
	if !sim.hasInstance("ethernet") {
		return rest, fmt.Errorf("bmv2: model has no ethernet header instance")
	}
	rest, err = eth.DecodeFromBytes(rest)
	if err != nil {
		return nil, err
	}
	sim.setF(fs, p+".ethernet.$valid", 1)
	sim.setF(fs, p+".ethernet.dst_addr", be48(eth.DstMAC[:]))
	sim.setF(fs, p+".ethernet.src_addr", be48(eth.SrcMAC[:]))
	sim.setF(fs, p+".ethernet.ether_type", uint64(eth.EtherType))

	etherType := eth.EtherType
	if etherType == packet.EtherTypeVLAN && sim.hasInstance("vlan") {
		var vlan packet.VLAN
		rest, err = vlan.DecodeFromBytes(rest)
		if err != nil {
			return nil, err
		}
		sim.setF(fs, p+".vlan.$valid", 1)
		sim.setF(fs, p+".vlan.priority", uint64(vlan.Priority))
		de := uint64(0)
		if vlan.DropElig {
			de = 1
		}
		sim.setF(fs, p+".vlan.drop_eligible", de)
		sim.setF(fs, p+".vlan.vlan_id", uint64(vlan.VLANID))
		sim.setF(fs, p+".vlan.ether_type", uint64(vlan.EtherType))
		etherType = vlan.EtherType
	}

	switch etherType {
	case packet.EtherTypeARP:
		if !sim.hasInstance("arp") {
			return rest, nil
		}
		var arp packet.ARP
		rest, err = arp.DecodeFromBytes(rest)
		if err != nil {
			return nil, err
		}
		sim.setF(fs, p+".arp.$valid", 1)
		sim.setF(fs, p+".arp.operation", uint64(arp.Operation))
		sim.setF(fs, p+".arp.sender_ip", uint64(arp.SenderIP.Uint32()))
		sim.setF(fs, p+".arp.target_ip", uint64(arp.TargetIP.Uint32()))
		return rest, nil
	case packet.EtherTypeIPv4:
		return sim.parseIPv4(fs, rest, "ipv4")
	case packet.EtherTypeIPv6:
		return sim.parseIPv6(fs, rest)
	default:
		return rest, nil
	}
}

func (sim *Interp) parseIPv4(fs fieldSpace, data []byte, instance string) ([]byte, error) {
	if !sim.hasInstance(instance) {
		return data, nil
	}
	p := sim.hdrPrefix
	var ip packet.IPv4
	rest, err := ip.DecodeFromBytes(data)
	if err != nil {
		return nil, err
	}
	base := p + "." + instance
	sim.setF(fs, base+".$valid", 1)
	sim.setF(fs, base+".dscp", uint64(ip.DSCP()))
	sim.setF(fs, base+".ecn", uint64(ip.TOS&0x3))
	sim.setF(fs, base+".identification", uint64(ip.ID))
	sim.setF(fs, base+".ttl", uint64(ip.TTL))
	sim.setF(fs, base+".protocol", uint64(ip.Protocol))
	sim.setF(fs, base+".src_addr", uint64(ip.SrcIP.Uint32()))
	sim.setF(fs, base+".dst_addr", uint64(ip.DstIP.Uint32()))
	if instance != "ipv4" {
		// Inner headers end the parse; anything below is payload.
		return rest, nil
	}
	switch ip.Protocol {
	case packet.IPProtocolGRE:
		return sim.parseGRE(fs, rest)
	default:
		return sim.parseL4(fs, rest, ip.Protocol)
	}
}

func (sim *Interp) parseIPv6(fs fieldSpace, data []byte) ([]byte, error) {
	if !sim.hasInstance("ipv6") {
		return data, nil
	}
	p := sim.hdrPrefix
	var ip packet.IPv6
	rest, err := ip.DecodeFromBytes(data)
	if err != nil {
		return nil, err
	}
	base := p + ".ipv6"
	sim.setF(fs, base+".$valid", 1)
	sim.setF(fs, base+".dscp", uint64(ip.DSCP()))
	sim.setF(fs, base+".ecn", uint64(ip.TrafficClass&0x3))
	sim.setF(fs, base+".flow_label", uint64(ip.FlowLabel))
	sim.setF(fs, base+".next_header", uint64(ip.NextHeader))
	sim.setF(fs, base+".hop_limit", uint64(ip.HopLimit))
	var hi, lo uint64
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(ip.SrcIP[i])
		lo = lo<<8 | uint64(ip.SrcIP[i+8])
	}
	sim.setF128(fs, base+".src_addr", hi, lo)
	hi, lo = 0, 0
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(ip.DstIP[i])
		lo = lo<<8 | uint64(ip.DstIP[i+8])
	}
	sim.setF128(fs, base+".dst_addr", hi, lo)
	return sim.parseL4(fs, rest, ip.NextHeader)
}

func (sim *Interp) parseGRE(fs fieldSpace, data []byte) ([]byte, error) {
	if !sim.hasInstance("gre") {
		return data, nil
	}
	p := sim.hdrPrefix
	var gre packet.GRE
	rest, err := gre.DecodeFromBytes(data)
	if err != nil {
		return nil, err
	}
	sim.setF(fs, p+".gre.$valid", 1)
	sim.setF(fs, p+".gre.protocol", uint64(gre.Protocol))
	if gre.Protocol == packet.EtherTypeIPv4 {
		return sim.parseIPv4(fs, rest, "inner_ipv4")
	}
	return rest, nil
}

// parseL4 decodes the transport layer. A truncated transport header does
// not fail the parse: the remaining bytes stay opaque payload and the L4
// header simply stays invalid, as in a real parser's accept-on-short path.
func (sim *Interp) parseL4(fs fieldSpace, data []byte, proto uint8) ([]byte, error) {
	p := sim.hdrPrefix
	switch proto {
	case packet.IPProtocolTCP:
		if !sim.hasInstance("tcp") {
			return data, nil
		}
		var tcp packet.TCP
		rest, err := tcp.DecodeFromBytes(data)
		if err != nil {
			return data, nil
		}
		sim.setF(fs, p+".tcp.$valid", 1)
		sim.setF(fs, p+".tcp.src_port", uint64(tcp.SrcPort))
		sim.setF(fs, p+".tcp.dst_port", uint64(tcp.DstPort))
		sim.setF(fs, p+".tcp.flags", uint64(tcp.Flags))
		return rest, nil
	case packet.IPProtocolUDP:
		if !sim.hasInstance("udp") {
			return data, nil
		}
		var udp packet.UDP
		rest, err := udp.DecodeFromBytes(data)
		if err != nil {
			return data, nil
		}
		sim.setF(fs, p+".udp.$valid", 1)
		sim.setF(fs, p+".udp.src_port", uint64(udp.SrcPort))
		sim.setF(fs, p+".udp.dst_port", uint64(udp.DstPort))
		return rest, nil
	case packet.IPProtocolICMPv4, packet.IPProtocolICMPv6:
		if !sim.hasInstance("icmp") {
			return data, nil
		}
		var ic packet.ICMPv4 // same leading layout as ICMPv6
		rest, err := ic.DecodeFromBytes(data)
		if err != nil {
			return data, nil
		}
		sim.setF(fs, p+".icmp.$valid", 1)
		sim.setF(fs, p+".icmp.type", uint64(ic.Type))
		sim.setF(fs, p+".icmp.code", uint64(ic.Code))
		return rest, nil
	default:
		return data, nil
	}
}

// deparse reconstructs packet bytes from the field space plus the opaque
// payload preserved by parse. Lengths and checksums are recomputed.
func (sim *Interp) deparse(fs fieldSpace, payload []byte) ([]byte, error) {
	p := sim.hdrPrefix
	valid := func(instance string) bool {
		v, ok := sim.getF(fs, p+"."+instance+".$valid")
		return ok && !v.IsZero()
	}
	get := func(name string) uint64 {
		v, _ := sim.getF(fs, p+"."+name)
		return v.Uint64()
	}

	var layers []packet.SerializableLayer
	if valid("ethernet") {
		eth := &packet.Ethernet{EtherType: uint16(get("ethernet.ether_type"))}
		d := get("ethernet.dst_addr")
		s := get("ethernet.src_addr")
		for i := 0; i < 6; i++ {
			eth.DstMAC[5-i] = byte(d >> uint(8*i))
			eth.SrcMAC[5-i] = byte(s >> uint(8*i))
		}
		layers = append(layers, eth)
	}
	if valid("vlan") {
		layers = append(layers, &packet.VLAN{
			Priority:  uint8(get("vlan.priority")),
			DropElig:  get("vlan.drop_eligible") == 1,
			VLANID:    uint16(get("vlan.vlan_id")),
			EtherType: uint16(get("vlan.ether_type")),
		})
	}
	if valid("arp") {
		layers = append(layers, &packet.ARP{
			Operation: uint16(get("arp.operation")),
			SenderIP:  packet.IPv4AddrFromUint32(uint32(get("arp.sender_ip"))),
			TargetIP:  packet.IPv4AddrFromUint32(uint32(get("arp.target_ip"))),
		})
	}
	mkIPv4 := func(instance string) *packet.IPv4 {
		ip := &packet.IPv4{
			TOS:      uint8(get(instance+".dscp"))<<2 | uint8(get(instance+".ecn")),
			ID:       uint16(get(instance + ".identification")),
			TTL:      uint8(get(instance + ".ttl")),
			Protocol: uint8(get(instance + ".protocol")),
			SrcIP:    packet.IPv4AddrFromUint32(uint32(get(instance + ".src_addr"))),
			DstIP:    packet.IPv4AddrFromUint32(uint32(get(instance + ".dst_addr"))),
		}
		return ip
	}
	var innerIPSrc, innerIPDst []byte
	if valid("ipv4") {
		ip := mkIPv4("ipv4")
		innerIPSrc, innerIPDst = ip.SrcIP[:], ip.DstIP[:]
		layers = append(layers, ip)
	}
	if valid("gre") {
		layers = append(layers, &packet.GRE{Protocol: uint16(get("gre.protocol"))})
	}
	if valid("inner_ipv4") {
		ip := mkIPv4("inner_ipv4")
		innerIPSrc, innerIPDst = ip.SrcIP[:], ip.DstIP[:]
		layers = append(layers, ip)
	}
	isV6 := false
	if valid("ipv6") {
		f, _ := sim.prog.FieldByName(p + ".ipv6.src_addr")
		src := fs[f.ID]
		f, _ = sim.prog.FieldByName(p + ".ipv6.dst_addr")
		dst := fs[f.ID]
		ip := &packet.IPv6{
			TrafficClass: uint8(get("ipv6.dscp"))<<2 | uint8(get("ipv6.ecn")),
			FlowLabel:    uint32(get("ipv6.flow_label")),
			NextHeader:   uint8(get("ipv6.next_header")),
			HopLimit:     uint8(get("ipv6.hop_limit")),
		}
		copy(ip.SrcIP[:], src.Bytes())
		copy(ip.DstIP[:], dst.Bytes())
		innerIPSrc, innerIPDst = ip.SrcIP[:], ip.DstIP[:]
		isV6 = true
		layers = append(layers, ip)
	}
	if valid("tcp") {
		tcp := &packet.TCP{
			SrcPort: uint16(get("tcp.src_port")),
			DstPort: uint16(get("tcp.dst_port")),
			Flags:   uint8(get("tcp.flags")),
		}
		tcp.SetNetworkLayerForChecksum(innerIPSrc, innerIPDst)
		layers = append(layers, tcp)
	}
	if valid("udp") {
		udp := &packet.UDP{
			SrcPort: uint16(get("udp.src_port")),
			DstPort: uint16(get("udp.dst_port")),
		}
		udp.SetNetworkLayerForChecksum(innerIPSrc, innerIPDst)
		layers = append(layers, udp)
	}
	if valid("icmp") {
		if isV6 {
			ic := &packet.ICMPv6{Type: uint8(get("icmp.type")), Code: uint8(get("icmp.code"))}
			ic.SetNetworkLayerForChecksum(innerIPSrc, innerIPDst)
			layers = append(layers, ic)
		} else {
			layers = append(layers, &packet.ICMPv4{Type: uint8(get("icmp.type")), Code: uint8(get("icmp.code"))})
		}
	}
	layers = append(layers, packet.Raw(payload))
	return packet.Serialize(packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}, layers...)
}

// DeparseFields reconstructs packet bytes from a complete field
// assignment, one value per program field in ID order. p4-symbolic uses
// this to materialize test packets from SMT models.
func DeparseFields(prog *ir.Program, fields []value.V, payload []byte) ([]byte, error) {
	if len(fields) != len(prog.Fields) {
		return nil, fmt.Errorf("bmv2: got %d field values for %d fields", len(fields), len(prog.Fields))
	}
	sim := &Interp{prog: prog, hdrPrefix: headersPrefix(prog)}
	return sim.deparse(fieldSpace(fields), payload)
}

// ParseFields decodes packet bytes onto a fresh field assignment (one
// value per program field, in ID order), returning the opaque payload.
// The SwitchV harness uses this to compare switch and simulator outputs
// on model-visible fields only.
func ParseFields(prog *ir.Program, data []byte) ([]value.V, []byte, error) {
	sim := &Interp{prog: prog, hdrPrefix: headersPrefix(prog)}
	fs := newFieldSpace(prog)
	payload, err := sim.parse(fs, data)
	return fs, payload, err
}
