package bmv2

import (
	"testing"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
	"switchv/internal/packet"
	"switchv/models"
)

// routerMAC is the MAC admitted to L3 in the test fixtures.
var routerMAC = packet.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0xaa}

// middleblockFixture installs a routing fixture: VRF 1, a /8 and a /16
// route, nexthop/neighbor/router-interface chain, and L3 admission of
// routerMAC.
func middleblockFixture(t *testing.T) (*Interp, *pdpi.Store) {
	t.Helper()
	prog := models.Middleblock()
	store := pdpi.NewStore()
	add := func(e *pdpi.Entry) {
		t.Helper()
		if err := e.Validate(); err != nil {
			t.Fatalf("fixture entry invalid: %v", err)
		}
		if err := store.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	tbl := func(name string) *ir.Table {
		tb, ok := prog.TableByName(name)
		if !ok {
			t.Fatalf("missing table %s", name)
		}
		return tb
	}
	act := func(name string) *ir.Action {
		a, ok := prog.ActionByName(name)
		if !ok {
			t.Fatalf("missing action %s", name)
		}
		return a
	}

	add(&pdpi.Entry{
		Table:   tbl("vrf_table"),
		Matches: []pdpi.Match{{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(1, 10)}},
		Action:  &pdpi.ActionInvocation{Action: prog.NoAction},
	})
	add(&pdpi.Entry{
		Table:    tbl("acl_pre_ingress_table"),
		Matches:  []pdpi.Match{{Key: "is_ipv4", Kind: ir.MatchOptional, Value: value.New(1, 1)}},
		Priority: 1,
		Action:   &pdpi.ActionInvocation{Action: act("set_vrf"), Args: []value.V{value.New(1, 10)}},
	})
	add(&pdpi.Entry{
		Table: tbl("l3_admit_table"),
		Matches: []pdpi.Match{{
			Key: "dst_mac", Kind: ir.MatchTernary,
			Value: value.New(be48(routerMAC[:]), 48), Mask: value.Ones(48),
		}},
		Priority: 1,
		Action:   &pdpi.ActionInvocation{Action: act("admit_to_l3")},
	})
	add(&pdpi.Entry{
		Table: tbl("ipv4_table"),
		Matches: []pdpi.Match{
			{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(1, 10)},
			{Key: "ipv4_dst", Kind: ir.MatchLPM, Value: value.New(0x0a000000, 32), PrefixLen: 8},
		},
		Action: &pdpi.ActionInvocation{Action: act("set_nexthop_id"), Args: []value.V{value.New(1, 10)}},
	})
	// More specific /16 route to a different nexthop.
	add(&pdpi.Entry{
		Table: tbl("ipv4_table"),
		Matches: []pdpi.Match{
			{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(1, 10)},
			{Key: "ipv4_dst", Kind: ir.MatchLPM, Value: value.New(0x0a630000, 32), PrefixLen: 16}, // 10.99/16
		},
		Action: &pdpi.ActionInvocation{Action: act("set_nexthop_id"), Args: []value.V{value.New(2, 10)}},
	})
	for nh, rif := range map[uint64]uint64{1: 1, 2: 2} {
		add(&pdpi.Entry{
			Table:   tbl("nexthop_table"),
			Matches: []pdpi.Match{{Key: "nexthop_id", Kind: ir.MatchExact, Value: value.New(nh, 10)}},
			Action: &pdpi.ActionInvocation{Action: act("set_nexthop"),
				Args: []value.V{value.New(rif, 10), value.New(nh, 10)}},
		})
		add(&pdpi.Entry{
			Table: tbl("neighbor_table"),
			Matches: []pdpi.Match{
				{Key: "router_interface_id", Kind: ir.MatchExact, Value: value.New(rif, 10)},
				{Key: "neighbor_id", Kind: ir.MatchExact, Value: value.New(nh, 10)},
			},
			Action: &pdpi.ActionInvocation{Action: act("set_dst_mac"),
				Args: []value.V{value.New(0x020000000100+nh, 48)}},
		})
		add(&pdpi.Entry{
			Table:   tbl("router_interface_table"),
			Matches: []pdpi.Match{{Key: "router_interface_id", Kind: ir.MatchExact, Value: value.New(rif, 10)}},
			Action: &pdpi.ActionInvocation{Action: act("set_port_and_src_mac"),
				Args: []value.V{value.New(rif+10, 16), value.New(0x0200000000aa, 48)}},
		})
	}

	sim, err := New(prog, store)
	if err != nil {
		t.Fatal(err)
	}
	return sim, store
}

func ipv4Packet(t *testing.T, dst string, ttl uint8) []byte {
	t.Helper()
	ip := &packet.IPv4{
		TTL:      ttl,
		Protocol: packet.IPProtocolUDP,
		SrcIP:    packet.MustParseIPv4("192.168.1.1"),
		DstIP:    packet.MustParseIPv4(dst),
	}
	udp := &packet.UDP{SrcPort: 1000, DstPort: 2000}
	udp.SetNetworkLayerForChecksum(ip.SrcIP[:], ip.DstIP[:])
	data, err := packet.Serialize(packet.SerializeOptions{FixLengths: true, ComputeChecksums: true},
		&packet.Ethernet{DstMAC: routerMAC, SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, EtherType: packet.EtherTypeIPv4},
		ip, udp, packet.Raw([]byte("payload")))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRouteAndRewrite(t *testing.T) {
	sim, _ := middleblockFixture(t)
	out, err := sim.Run(Input{Port: 1, Packet: ipv4Packet(t, "10.1.2.3", 64)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Disposition != Forwarded {
		t.Fatalf("disposition = %v", out.Disposition)
	}
	if out.EgressPort != 11 {
		t.Errorf("egress port = %d, want 11", out.EgressPort)
	}
	p := packet.NewPacket(out.Packet, packet.LayerTypeEthernet)
	if p.ErrorLayer() != nil {
		t.Fatalf("output packet: %v (%s)", p.ErrorLayer(), p)
	}
	if got := p.IPv4().TTL; got != 63 {
		t.Errorf("TTL = %d, want 63", got)
	}
	wantDst := packet.MAC{0x02, 0, 0, 0, 0x01, 0x01}
	if p.Ethernet().DstMAC != wantDst {
		t.Errorf("dst mac = %v, want %v", p.Ethernet().DstMAC, wantDst)
	}
	if p.Ethernet().SrcMAC != (packet.MAC{0x02, 0, 0, 0, 0, 0xaa}) {
		t.Errorf("src mac = %v", p.Ethernet().SrcMAC)
	}
	// IPv4 checksum of the rewritten packet must verify.
	raw := out.Packet[14:34]
	if cs := internetChecksumForTest(raw); cs != 0 {
		t.Errorf("rewritten header checksum = %#04x", cs)
	}
}

// internetChecksumForTest folds the IPv4 header checksum.
func internetChecksumForTest(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

func TestLongestPrefixWins(t *testing.T) {
	sim, _ := middleblockFixture(t)
	out, err := sim.Run(Input{Port: 1, Packet: ipv4Packet(t, "10.99.0.1", 64)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Disposition != Forwarded || out.EgressPort != 12 {
		t.Fatalf("got %v port %d, want forwarded port 12", out.Disposition, out.EgressPort)
	}
	// Trace shows the /16 entry was chosen.
	found := false
	for _, h := range out.Trace {
		if h.Table == "ipv4_table" && h.Action == "set_nexthop_id" {
			found = true
		}
	}
	if !found {
		t.Errorf("trace = %+v", out.Trace)
	}
}

func TestTTLPunt(t *testing.T) {
	sim, _ := middleblockFixture(t)
	for _, ttl := range []uint8{0, 1} {
		out, err := sim.Run(Input{Port: 1, Packet: ipv4Packet(t, "10.1.2.3", ttl)})
		if err != nil {
			t.Fatal(err)
		}
		if out.Disposition != Punted {
			t.Errorf("ttl %d: disposition = %v, want punted", ttl, out.Disposition)
		}
	}
}

func TestUnroutedDropped(t *testing.T) {
	sim, _ := middleblockFixture(t)
	// Route miss: ipv4_table default action is drop.
	out, err := sim.Run(Input{Port: 1, Packet: ipv4Packet(t, "192.0.2.1", 64)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Disposition != Dropped {
		t.Errorf("route miss: %v, want dropped", out.Disposition)
	}
}

func TestNotAdmittedDropped(t *testing.T) {
	sim, _ := middleblockFixture(t)
	// Wrong destination MAC: not L3-admitted, default drop applies.
	data := ipv4Packet(t, "10.1.2.3", 64)
	copy(data[0:6], []byte{2, 0, 0, 0, 0, 0x77})
	out, err := sim.Run(Input{Port: 1, Packet: data})
	if err != nil {
		t.Fatal(err)
	}
	if out.Disposition != Dropped {
		t.Errorf("disposition = %v, want dropped", out.Disposition)
	}
}

func TestACLTrapAndCopy(t *testing.T) {
	sim, store := middleblockFixture(t)
	prog := sim.Program()
	acl, _ := prog.TableByName("acl_ingress_table")
	trap, _ := prog.ActionByName("acl_trap")
	// Punt all TCP traffic to dst port 179 (BGP-style punt rule).
	e := &pdpi.Entry{
		Table: acl,
		Matches: []pdpi.Match{
			{Key: "l4_dst_port", Kind: ir.MatchTernary, Value: value.New(179, 16), Mask: value.Ones(16)},
		},
		Priority: 10,
		Action:   &pdpi.ActionInvocation{Action: trap},
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := store.Insert(e); err != nil {
		t.Fatal(err)
	}

	ip := &packet.IPv4{TTL: 64, Protocol: packet.IPProtocolTCP,
		SrcIP: packet.MustParseIPv4("10.0.0.1"), DstIP: packet.MustParseIPv4("10.1.2.3")}
	tcp := &packet.TCP{SrcPort: 33333, DstPort: 179}
	tcp.SetNetworkLayerForChecksum(ip.SrcIP[:], ip.DstIP[:])
	data, err := packet.Serialize(packet.SerializeOptions{FixLengths: true, ComputeChecksums: true},
		&packet.Ethernet{DstMAC: routerMAC, EtherType: packet.EtherTypeIPv4}, ip, tcp)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Run(Input{Port: 1, Packet: data})
	if err != nil {
		t.Fatal(err)
	}
	if out.Disposition != Punted {
		t.Fatalf("disposition = %v, want punted", out.Disposition)
	}
}

func TestWCMPBehaviorSet(t *testing.T) {
	sim, store := middleblockFixture(t)
	prog := sim.Program()
	ipv4, _ := prog.TableByName("ipv4_table")
	wcmp, _ := prog.TableByName("wcmp_group_table")
	setGroup, _ := prog.ActionByName("set_wcmp_group_id")
	setNexthop, _ := prog.ActionByName("set_nexthop_id")

	// 10.200/16 routes via WCMP group 5 with two nexthops (weights 2:1).
	for _, e := range []*pdpi.Entry{
		{
			Table: ipv4,
			Matches: []pdpi.Match{
				{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(1, 10)},
				{Key: "ipv4_dst", Kind: ir.MatchLPM, Value: value.New(0x0ac80000, 32), PrefixLen: 16},
			},
			Action: &pdpi.ActionInvocation{Action: setGroup, Args: []value.V{value.New(5, 10)}},
		},
		{
			Table:   wcmp,
			Matches: []pdpi.Match{{Key: "wcmp_group_id", Kind: ir.MatchExact, Value: value.New(5, 10)}},
			ActionSet: []pdpi.WeightedAction{
				{ActionInvocation: pdpi.ActionInvocation{Action: setNexthop, Args: []value.V{value.New(1, 10)}}, Weight: 2},
				{ActionInvocation: pdpi.ActionInvocation{Action: setNexthop, Args: []value.V{value.New(2, 10)}}, Weight: 1},
			},
		},
	} {
		if err := e.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := store.Insert(e); err != nil {
			t.Fatal(err)
		}
	}

	outs, err := sim.BehaviorSet(Input{Port: 1, Packet: ipv4Packet(t, "10.200.0.9", 64)}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("behavior set size = %d, want 2", len(outs))
	}
	ports := map[uint16]bool{}
	for _, o := range outs {
		if o.Disposition != Forwarded {
			t.Fatalf("disposition = %v", o.Disposition)
		}
		ports[o.EgressPort] = true
	}
	if !ports[11] || !ports[12] {
		t.Errorf("ports = %v, want {11, 12}", ports)
	}
}

func TestARPNotAdmitted(t *testing.T) {
	sim, _ := middleblockFixture(t)
	arp := &packet.ARP{Operation: 1, SenderIP: packet.IPv4Addr{10, 0, 0, 1}, TargetIP: packet.IPv4Addr{10, 0, 0, 2}}
	data, err := packet.Serialize(packet.SerializeOptions{},
		&packet.Ethernet{DstMAC: packet.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, EtherType: packet.EtherTypeARP}, arp)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Run(Input{Port: 1, Packet: data})
	if err != nil {
		t.Fatal(err)
	}
	if out.Disposition != Dropped {
		t.Errorf("ARP disposition = %v, want dropped (no punt rule installed)", out.Disposition)
	}
}

func TestDeterminism(t *testing.T) {
	sim, _ := middleblockFixture(t)
	in := Input{Port: 1, Packet: ipv4Packet(t, "10.1.2.3", 64)}
	first, err := sim.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := sim.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if again.Signature() != first.Signature() {
			t.Fatalf("run %d differs:\n%s\n%s", i, again.Signature(), first.Signature())
		}
	}
}

func TestWANEncapDecap(t *testing.T) {
	prog := models.WAN()
	store := pdpi.NewStore()
	sim, err := New(prog, store)
	if err != nil {
		t.Fatal(err)
	}
	add := func(e *pdpi.Entry) {
		t.Helper()
		if err := e.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := store.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	tbl := func(name string) *ir.Table { tb, _ := prog.TableByName(name); return tb }
	act := func(name string) *ir.Action { a, _ := prog.ActionByName(name); return a }

	add(&pdpi.Entry{
		Table:   tbl("vrf_table"),
		Matches: []pdpi.Match{{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(1, 10)}},
		Action:  &pdpi.ActionInvocation{Action: prog.NoAction},
	})
	add(&pdpi.Entry{
		Table:    tbl("acl_pre_ingress_table"),
		Matches:  []pdpi.Match{{Key: "is_ipv4", Kind: ir.MatchOptional, Value: value.New(1, 1)}},
		Priority: 1,
		Action:   &pdpi.ActionInvocation{Action: act("set_vrf"), Args: []value.V{value.New(1, 10)}},
	})
	add(&pdpi.Entry{
		Table: tbl("l3_admit_table"),
		Matches: []pdpi.Match{{Key: "dst_mac", Kind: ir.MatchTernary,
			Value: value.New(be48(routerMAC[:]), 48), Mask: value.Ones(48)}},
		Priority: 1,
		Action:   &pdpi.ActionInvocation{Action: act("admit_to_l3")},
	})
	add(&pdpi.Entry{
		Table: tbl("ipv4_table"),
		Matches: []pdpi.Match{
			{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(1, 10)},
			{Key: "ipv4_dst", Kind: ir.MatchLPM, Value: value.New(0x0a000000, 32), PrefixLen: 8},
		},
		Action: &pdpi.ActionInvocation{Action: act("set_nexthop_id"), Args: []value.V{value.New(1, 10)}},
	})
	add(&pdpi.Entry{
		Table:   tbl("nexthop_table"),
		Matches: []pdpi.Match{{Key: "nexthop_id", Kind: ir.MatchExact, Value: value.New(1, 10)}},
		Action: &pdpi.ActionInvocation{Action: act("set_nexthop_and_tunnel"),
			Args: []value.V{value.New(1, 10), value.New(1, 10), value.New(7, 10)}},
	})
	add(&pdpi.Entry{
		Table: tbl("neighbor_table"),
		Matches: []pdpi.Match{
			{Key: "router_interface_id", Kind: ir.MatchExact, Value: value.New(1, 10)},
			{Key: "neighbor_id", Kind: ir.MatchExact, Value: value.New(1, 10)},
		},
		Action: &pdpi.ActionInvocation{Action: act("set_dst_mac"), Args: []value.V{value.New(0x020000000101, 48)}},
	})
	add(&pdpi.Entry{
		Table:   tbl("router_interface_table"),
		Matches: []pdpi.Match{{Key: "router_interface_id", Kind: ir.MatchExact, Value: value.New(1, 10)}},
		Action: &pdpi.ActionInvocation{Action: act("set_port_and_src_mac"),
			Args: []value.V{value.New(20, 16), value.New(0x0200000000aa, 48)}},
	})
	add(&pdpi.Entry{
		Table:   tbl("tunnel_table"),
		Matches: []pdpi.Match{{Key: "tunnel_id", Kind: ir.MatchExact, Value: value.New(7, 10)}},
		Action: &pdpi.ActionInvocation{Action: act("encap_gre"),
			Args: []value.V{value.New(0xc0000201, 32), value.New(0xc0000202, 32)}}, // 192.0.2.1 -> 192.0.2.2
	})

	out, err := sim.Run(Input{Port: 1, Packet: ipv4Packet(t, "10.1.2.3", 64)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Disposition != Forwarded || out.EgressPort != 20 {
		t.Fatalf("got %v port %d", out.Disposition, out.EgressPort)
	}
	p := packet.NewPacket(out.Packet, packet.LayerTypeEthernet)
	if p.ErrorLayer() != nil {
		t.Fatalf("encap packet: %v (%s)", p.ErrorLayer(), p)
	}
	outer := p.IPv4()
	if outer == nil || outer.Protocol != packet.IPProtocolGRE {
		t.Fatalf("outer = %+v (%s)", outer, p)
	}
	if outer.SrcIP.String() != "192.0.2.1" || outer.DstIP.String() != "192.0.2.2" {
		t.Errorf("outer addrs = %s > %s", outer.SrcIP, outer.DstIP)
	}
	// The inner IPv4 follows GRE, carrying the original addresses.
	var sawGRE, sawInner bool
	for i, l := range p.Layers() {
		if l.LayerType() == packet.LayerTypeGRE {
			sawGRE = true
			inner, ok := p.Layers()[i+1].(*packet.IPv4)
			if !ok {
				t.Fatalf("layer after GRE = %T", p.Layers()[i+1])
			}
			sawInner = true
			if inner.DstIP.String() != "10.1.2.3" {
				t.Errorf("inner dst = %s", inner.DstIP)
			}
		}
	}
	if !sawGRE || !sawInner {
		t.Fatalf("missing GRE/inner layers: %s", p)
	}

	// Round trip: feed the encapsulated packet back in (addressed to the
	// router again); the pipeline decapsulates it and routes the inner
	// destination.
	back := append([]byte(nil), out.Packet...)
	copy(back[0:6], routerMAC[:])
	out2, err := sim.Run(Input{Port: 2, Packet: back})
	if err != nil {
		t.Fatal(err)
	}
	if out2.Disposition != Forwarded {
		t.Fatalf("decap disposition = %v", out2.Disposition)
	}
	p2 := packet.NewPacket(out2.Packet, packet.LayerTypeEthernet)
	if p2.Layer(packet.LayerTypeGRE) == nil {
		// Decapsulated then re-encapsulated by the same tunnel route; GRE
		// present again is also acceptable. Just require a valid packet.
		t.Logf("decap output: %s", p2)
	}
}

func TestVLANAdmission(t *testing.T) {
	prog := models.WAN()
	store := pdpi.NewStore()
	sim, err := New(prog, store)
	if err != nil {
		t.Fatal(err)
	}
	mkPacket := func(vlanID uint16) []byte {
		t.Helper()
		ip := &packet.IPv4{TTL: 64, Protocol: packet.IPProtocolUDP,
			SrcIP: packet.IPv4Addr{1, 1, 1, 1}, DstIP: packet.IPv4Addr{10, 0, 0, 1}}
		data, err := packet.Serialize(packet.SerializeOptions{FixLengths: true, ComputeChecksums: true},
			&packet.Ethernet{DstMAC: routerMAC, EtherType: packet.EtherTypeVLAN},
			&packet.VLAN{VLANID: vlanID, EtherType: packet.EtherTypeIPv4},
			ip)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	// VLAN 100 unconfigured: dropped by the vlan admission check.
	out, err := sim.Run(Input{Port: 1, Packet: mkPacket(100)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Disposition != Dropped {
		t.Fatalf("unconfigured vlan: %v, want dropped", out.Disposition)
	}
	// Admit VLAN 100; the packet then proceeds (and gets dropped at L3
	// admission instead, which proves the exit was not taken).
	vlanTbl, _ := prog.TableByName("vlan_table")
	admit, _ := prog.ActionByName("vlan_admit")
	e := &pdpi.Entry{
		Table:   vlanTbl,
		Matches: []pdpi.Match{{Key: "vlan_id", Kind: ir.MatchExact, Value: value.New(100, 12)}},
		Action:  &pdpi.ActionInvocation{Action: admit},
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := store.Insert(e); err != nil {
		t.Fatal(err)
	}
	out, err = sim.Run(Input{Port: 1, Packet: mkPacket(100)})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Trace) < 2 {
		t.Errorf("trace too short after admission: %+v", out.Trace)
	}
}

func TestStoreSemantics(t *testing.T) {
	prog := models.Middleblock()
	store := pdpi.NewStore()
	vrf, _ := prog.TableByName("vrf_table")
	mk := func(v uint64) *pdpi.Entry {
		return &pdpi.Entry{
			Table:   vrf,
			Matches: []pdpi.Match{{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(v, 10)}},
			Action:  &pdpi.ActionInvocation{Action: prog.NoAction},
		}
	}
	if err := store.Insert(mk(1)); err != nil {
		t.Fatal(err)
	}
	if err := store.Insert(mk(1)); err == nil {
		t.Error("duplicate insert succeeded")
	}
	if err := store.Modify(mk(2)); err == nil {
		t.Error("modify of missing entry succeeded")
	}
	if err := store.Modify(mk(1)); err != nil {
		t.Errorf("modify failed: %v", err)
	}
	if err := store.Delete(mk(2)); err == nil {
		t.Error("delete of missing entry succeeded")
	}
	if err := store.Delete(mk(1)); err != nil {
		t.Errorf("delete failed: %v", err)
	}
	if store.Len() != 0 {
		t.Errorf("Len = %d", store.Len())
	}
	// Clone independence (of the maps; entries are shared by design).
	if err := store.Insert(mk(3)); err != nil {
		t.Fatal(err)
	}
	cp := store.Clone()
	if err := cp.Delete(mk(3)); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 || cp.Len() != 0 {
		t.Errorf("clone aliases: store=%d clone=%d", store.Len(), cp.Len())
	}
	if err := cp.Insert(mk(4)); err != nil {
		t.Fatal(err)
	}
	if store.TableLen("vrf_table") != 1 {
		t.Error("insert into clone leaked into original")
	}
	// Ordering.
	if err := store.Insert(mk(4)); err != nil {
		t.Fatal(err)
	}
	es := store.Entries("vrf_table")
	if len(es) != 2 || es[0].Matches[0].Value.Uint64() != 3 {
		t.Errorf("Entries order: %+v", es)
	}
	all := store.All(prog)
	if len(all) != 2 {
		t.Errorf("All = %d entries", len(all))
	}
	store.Clear()
	if store.Len() != 0 {
		t.Error("Clear failed")
	}
}
