package bmv2

import (
	"math/rand"
	"testing"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
	"switchv/models"
)

// TestLPMSelectionAgainstBruteForce: random route tables and random
// destinations; the simulator's table selection must pick the matching
// entry with the longest prefix, cross-checked against a straightforward
// re-implementation.
func TestLPMSelectionAgainstBruteForce(t *testing.T) {
	prog := models.Middleblock()
	ipv4, _ := prog.TableByName("ipv4_table")
	drop, _ := prog.ActionByName("drop")
	rng := rand.New(rand.NewSource(31))

	for trial := 0; trial < 60; trial++ {
		store := pdpi.NewStore()
		type route struct {
			prefix uint32
			plen   int
		}
		var routes []route
		for i := 0; i < 30; i++ {
			plen := rng.Intn(33)
			prefix := rng.Uint32() & uint32(value.PrefixMask(plen, 32).Uint64())
			e := &pdpi.Entry{
				Table: ipv4,
				Matches: []pdpi.Match{
					{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(1, 10)},
					{Key: "ipv4_dst", Kind: ir.MatchLPM, Value: value.New(uint64(prefix), 32), PrefixLen: plen},
				},
				Action: &pdpi.ActionInvocation{Action: drop},
			}
			if err := store.Insert(e); err != nil {
				continue // duplicate prefix/plen
			}
			routes = append(routes, route{prefix, plen})
		}
		sim, err := New(prog, store)
		if err != nil {
			t.Fatal(err)
		}
		fs := newFieldSpace(prog)
		vrfF, _ := prog.FieldByName("local_metadata.vrf_id")
		dstF, _ := prog.FieldByName("headers.ipv4.dst_addr")
		fs[vrfF.ID] = value.New(1, 10)

		for probe := 0; probe < 50; probe++ {
			dst := rng.Uint32()
			if probe%3 == 0 && len(routes) > 0 {
				// Bias probes onto installed prefixes so matches happen.
				r := routes[rng.Intn(len(routes))]
				dst = r.prefix | rng.Uint32()&^uint32(value.PrefixMask(r.plen, 32).Uint64())
			}
			fs[dstF.ID] = value.New(uint64(dst), 32)
			got := sim.selectEntry(fs, ipv4)

			// Brute force: longest matching prefix.
			bestLen := -1
			for _, r := range routes {
				mask := uint32(value.PrefixMask(r.plen, 32).Uint64())
				if dst&mask == r.prefix&mask && r.plen > bestLen {
					bestLen = r.plen
				}
			}
			if bestLen < 0 {
				if got != nil {
					t.Fatalf("dst %08x: simulator matched %s, brute force found nothing", dst, got)
				}
				continue
			}
			if got == nil {
				t.Fatalf("dst %08x: simulator missed a /%d match", dst, bestLen)
			}
			m, _ := got.Match("ipv4_dst")
			if m.PrefixLen != bestLen {
				t.Fatalf("dst %08x: simulator chose /%d, want /%d", dst, m.PrefixLen, bestLen)
			}
		}
	}
}

// TestPrioritySelectionAgainstBruteForce: overlapping ternary ACL entries;
// the highest-priority match must win.
func TestPrioritySelectionAgainstBruteForce(t *testing.T) {
	prog := models.Middleblock()
	acl, _ := prog.TableByName("acl_ingress_table")
	drop, _ := prog.ActionByName("acl_drop")
	rng := rand.New(rand.NewSource(32))

	for trial := 0; trial < 60; trial++ {
		store := pdpi.NewStore()
		type rule struct {
			val, mask uint8
			prio      int32
		}
		var rules []rule
		for i := 0; i < 15; i++ {
			mask := uint8(rng.Intn(255) + 1)
			val := uint8(rng.Uint32()) & mask
			prio := int32(1 + rng.Intn(40))
			e := &pdpi.Entry{
				Table: acl,
				Matches: []pdpi.Match{
					{Key: "ttl", Kind: ir.MatchTernary, Value: value.New(uint64(val), 8), Mask: value.New(uint64(mask), 8)},
				},
				Priority: prio,
				Action:   &pdpi.ActionInvocation{Action: drop},
			}
			if err := store.Insert(e); err != nil {
				continue
			}
			rules = append(rules, rule{val, mask, prio})
		}
		sim, err := New(prog, store)
		if err != nil {
			t.Fatal(err)
		}
		fs := newFieldSpace(prog)
		ttlF, _ := prog.FieldByName("headers.ipv4.ttl")

		for probe := 0; probe < 100; probe++ {
			ttl := uint8(rng.Uint32())
			fs[ttlF.ID] = value.New(uint64(ttl), 8)
			got := sim.selectEntry(fs, acl)

			var best int32 = -1
			for _, r := range rules {
				if ttl&r.mask == r.val && r.prio > best {
					best = r.prio
				}
			}
			if best < 0 {
				if got != nil {
					t.Fatalf("ttl %d: unexpected match %s", ttl, got)
				}
				continue
			}
			if got == nil {
				t.Fatalf("ttl %d: simulator missed a match with priority %d", ttl, best)
			}
			if got.Priority != best {
				t.Fatalf("ttl %d: simulator chose priority %d, want %d", ttl, got.Priority, best)
			}
		}
	}
}
