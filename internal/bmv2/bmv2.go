package bmv2

import (
	"fmt"
	"strings"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
)

// Disposition classifies what happened to a packet.
type Disposition int

// Dispositions.
const (
	Forwarded Disposition = iota
	Dropped
	Punted
)

func (d Disposition) String() string {
	switch d {
	case Forwarded:
		return "forwarded"
	case Dropped:
		return "dropped"
	case Punted:
		return "punted"
	default:
		return fmt.Sprintf("Disposition(%d)", int(d))
	}
}

// Input is a packet arriving on a port.
type Input struct {
	Port   uint16
	Packet []byte
}

// MirrorCopy is a cloned packet sent to a mirror destination.
type MirrorCopy struct {
	Session uint16
	Packet  []byte
}

// TableHit records which entry (or default action) a table apply chose.
type TableHit struct {
	Table    string
	EntryKey string // "" for default action / miss
	Action   string
}

// Outcome is the observable behavior of one packet traversal.
type Outcome struct {
	Disposition Disposition
	EgressPort  uint16
	Packet      []byte // rewritten packet (forwarded) or punted payload
	CopyToCPU   bool
	Mirrors     []MirrorCopy
	Trace       []TableHit
}

// Signature canonically summarizes the outcome for behavior-set
// comparison. The trace is excluded: only observable behavior counts.
func (o *Outcome) Signature() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s port=%d copy=%v pkt=%x", o.Disposition, o.EgressPort, o.CopyToCPU, o.Packet)
	for _, m := range o.Mirrors {
		fmt.Fprintf(&b, " mirror[%d]=%x", m.Session, m.Packet)
	}
	return b.String()
}

// Simulator is the engine contract shared by the reference interpreter
// (Interp, this package) and the compiled pipeline
// (internal/p4/compile). The two implementations are differentially
// tested to be outcome-identical — including traces — so the harness can
// pick either per campaign.
//
// Engines carry per-run mutable state (the selector round-robin
// counters); Reset restores the state a freshly constructed engine has,
// which is what callers sharing one engine across independent packets
// must invoke between packets to keep verdicts schedule-independent.
type Simulator interface {
	Run(in Input) (*Outcome, error)
	BehaviorSet(in Input, maxIter int) ([]*Outcome, error)
	Reset()
	Program() *ir.Program
	Store() *pdpi.Store
}

// Interp interprets a compiled P4 model against installed entries.
type Interp struct {
	prog      *ir.Program
	store     *pdpi.Store
	hdrPrefix string

	// rr holds round-robin counters for selector-table entries (the
	// configured stand-in for hashing, §5 "Hashing").
	rr map[string]int

	fDrop, fPunt, fCopy, fMirror, fMirrorSession *ir.Field
	fIngress, fEgress                            *ir.Field
}

// New builds a simulator over a program and an entry store. The store is
// used by reference: callers may mutate it between runs.
func New(prog *ir.Program, store *pdpi.Store) (*Interp, error) {
	sim := &Interp{prog: prog, store: store, rr: map[string]int{}, hdrPrefix: headersPrefix(prog)}
	var ok bool
	get := func(name string) (*ir.Field, error) {
		f, found := prog.FieldByName(name)
		if !found {
			return nil, fmt.Errorf("bmv2: program lacks field %s", name)
		}
		return f, nil
	}
	var err error
	if sim.fDrop, err = get(ir.FieldDrop); err != nil {
		return nil, err
	}
	if sim.fPunt, err = get(ir.FieldPunt); err != nil {
		return nil, err
	}
	if sim.fCopy, err = get(ir.FieldCopy); err != nil {
		return nil, err
	}
	if sim.fMirror, err = get(ir.FieldMirror); err != nil {
		return nil, err
	}
	if sim.fMirrorSession, err = get(ir.FieldMirrorSession); err != nil {
		return nil, err
	}
	if sim.fIngress, ok = prog.FieldByName(ir.FieldIngressPort); !ok {
		return nil, fmt.Errorf("bmv2: program lacks standard metadata")
	}
	if sim.fEgress, ok = prog.FieldByName(ir.FieldEgressSpec); !ok {
		return nil, fmt.Errorf("bmv2: program lacks standard metadata")
	}
	return sim, nil
}

// Program returns the model being simulated.
func (sim *Interp) Program() *ir.Program { return sim.prog }

// Store returns the entry store.
func (sim *Interp) Store() *pdpi.Store { return sim.store }

// Reset restores the interpreter to its freshly constructed state by
// clearing the selector round-robin counters. Entries and program are
// shared by reference and unaffected.
func (sim *Interp) Reset() {
	clear(sim.rr)
}

// exitPipeline signals an exit statement; it unwinds via panic/recover to
// keep the interpreter simple and allocation-free on the happy path.
type exitPipeline struct{}
type returnControl struct{}

// Run traverses one packet through the pipeline.
func (sim *Interp) Run(in Input) (*Outcome, error) {
	fs := newFieldSpace(sim.prog)
	payload, err := sim.parse(fs, in.Packet)
	if err != nil {
		return nil, fmt.Errorf("bmv2: parse: %w", err)
	}
	fs[sim.fIngress.ID] = value.New(uint64(in.Port), sim.fIngress.Width)

	out := &Outcome{}
	if err := sim.runPipeline(fs, out); err != nil {
		return nil, err
	}

	// Resolve the final disposition from the synthetic fields.
	punt := !fs[sim.fPunt.ID].IsZero()
	drop := !fs[sim.fDrop.ID].IsZero()
	out.CopyToCPU = !fs[sim.fCopy.ID].IsZero()
	data, err := sim.deparse(fs, payload)
	if err != nil {
		return nil, fmt.Errorf("bmv2: deparse: %w", err)
	}
	switch {
	case punt:
		out.Disposition = Punted
		out.Packet = data
	case drop:
		out.Disposition = Dropped
	default:
		out.Disposition = Forwarded
		out.EgressPort = uint16(fs[sim.fEgress.ID].Uint64())
		out.Packet = data
	}
	if !fs[sim.fMirror.ID].IsZero() && out.Disposition != Dropped {
		out.Mirrors = append(out.Mirrors, MirrorCopy{
			Session: uint16(fs[sim.fMirrorSession.ID].Uint64()),
			Packet:  data,
		})
	}
	return out, nil
}

func (sim *Interp) runPipeline(fs fieldSpace, out *Outcome) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(exitPipeline); ok {
				return
			}
			panic(r)
		}
	}()
	for i, ctrl := range sim.prog.Controls {
		if i > 0 {
			// Between pipeline stages the chosen egress becomes visible as
			// egress_port (simple_switch semantics).
			if f, ok := sim.prog.FieldByName("standard_metadata.egress_port"); ok {
				fs[f.ID] = fs[sim.fEgress.ID].WithWidth(f.Width)
			}
		}
		sim.runControl(fs, ctrl, out)
	}
	return nil
}

func (sim *Interp) runControl(fs fieldSpace, ctrl *ir.Control, out *Outcome) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(returnControl); ok {
				return
			}
			panic(r)
		}
	}()
	sim.runStmts(fs, ctrl.Body, nil, out)
}

// runStmts executes statements; args binds action parameters (nil outside
// actions).
func (sim *Interp) runStmts(fs fieldSpace, stmts []ir.Stmt, args []value.V, out *Outcome) {
	for _, st := range stmts {
		switch x := st.(type) {
		case *ir.Assign:
			fs[x.Dst.ID] = sim.eval(fs, &x.Src, args).WithWidth(x.Dst.Width)
		case *ir.If:
			if !sim.eval(fs, &x.Cond, args).IsZero() {
				sim.runStmts(fs, x.Then, args, out)
			} else {
				sim.runStmts(fs, x.Else, args, out)
			}
		case *ir.ApplyTable:
			sim.applyTable(fs, x.Table, out)
		case *ir.Exit:
			panic(exitPipeline{})
		case *ir.Return:
			panic(returnControl{})
		default:
			panic(fmt.Sprintf("bmv2: unknown statement %T", st))
		}
	}
}

// eval computes an expression over the field space.
func (sim *Interp) eval(fs fieldSpace, e *ir.Expr, args []value.V) value.V {
	switch e.Op {
	case ir.OpConst:
		return value.New(e.Value, e.Width)
	case ir.OpField:
		return fs[e.Field.ID]
	case ir.OpParam:
		return args[e.Param]
	}
	boolV := func(b bool) value.V {
		if b {
			return value.New(1, 1)
		}
		return value.Zero(1)
	}
	a := sim.eval(fs, e.Args[0], args)
	if e.Op == ir.OpNot {
		return boolV(a.IsZero())
	}
	if e.Op == ir.OpBitNot {
		return a.Not()
	}
	if e.Op == ir.OpMux {
		if !a.IsZero() {
			return sim.eval(fs, e.Args[1], args)
		}
		return sim.eval(fs, e.Args[2], args)
	}
	// Short-circuit logical operators.
	if e.Op == ir.OpAnd {
		if a.IsZero() {
			return boolV(false)
		}
		return boolV(!sim.eval(fs, e.Args[1], args).IsZero())
	}
	if e.Op == ir.OpOr {
		if !a.IsZero() {
			return boolV(true)
		}
		return boolV(!sim.eval(fs, e.Args[1], args).IsZero())
	}
	b := sim.eval(fs, e.Args[1], args)
	switch e.Op {
	case ir.OpEq:
		return boolV(a.Equal(b))
	case ir.OpNe:
		return boolV(!a.Equal(b))
	case ir.OpLt:
		return boolV(a.Less(b))
	case ir.OpLe:
		return boolV(!b.Less(a))
	case ir.OpGt:
		return boolV(b.Less(a))
	case ir.OpGe:
		return boolV(!a.Less(b))
	case ir.OpBitAnd:
		return a.And(b)
	case ir.OpBitOr:
		return a.Or(b)
	case ir.OpBitXor:
		return a.Xor(b)
	case ir.OpAdd:
		return a.Add(b)
	case ir.OpSub:
		return a.Sub(b)
	case ir.OpShl:
		return a.Shl(int(b.Uint64()))
	case ir.OpShr:
		return a.Shr(int(b.Uint64()))
	default:
		panic(fmt.Sprintf("bmv2: unknown op %d", e.Op))
	}
}

// applyTable matches the field space against a table's entries and
// executes the selected action.
func (sim *Interp) applyTable(fs fieldSpace, t *ir.Table, out *Outcome) {
	entry := sim.selectEntry(fs, t)
	if entry == nil {
		out.Trace = append(out.Trace, TableHit{Table: t.Name, Action: t.DefaultAction.Name})
		args := make([]value.V, len(t.DefaultAction.Params))
		for i, p := range t.DefaultAction.Params {
			var arg uint64
			if i < len(t.DefaultActionArgs) {
				arg = t.DefaultActionArgs[i]
			}
			args[i] = value.New(arg, p.Width)
		}
		sim.runStmts(fs, t.DefaultAction.Body, args, out)
		return
	}
	inv := entry.Action
	if t.IsSelector {
		inv = sim.selectMember(entry)
	}
	out.Trace = append(out.Trace, TableHit{Table: t.Name, EntryKey: entry.Key(), Action: inv.Action.Name})
	sim.runStmts(fs, inv.Action.Body, inv.Args, out)
}

// selectMember picks a one-shot action-set member round-robin. Members are
// cycled unweighted: the weights steer hardware load balancing, while the
// round-robin stand-in only needs to enumerate every possible behavior
// before repeating (§5 "Hashing").
func (sim *Interp) selectMember(e *pdpi.Entry) *pdpi.ActionInvocation {
	key := e.Key()
	idx := sim.rr[key] % len(e.ActionSet)
	sim.rr[key]++
	return &e.ActionSet[idx].ActionInvocation
}

// selectEntry returns the matching entry with highest precedence, or nil.
func (sim *Interp) selectEntry(fs fieldSpace, t *ir.Table) *pdpi.Entry {
	entries := sim.store.Entries(t.Name)
	if pdpi.NeedsPriority(t) {
		// Highest priority wins; ties broken by installation order (which
		// is the iteration order of Entries).
		var best *pdpi.Entry
		for _, e := range entries {
			if !sim.entryMatches(fs, t, e) {
				continue
			}
			if best == nil || e.Priority > best.Priority {
				best = e
			}
		}
		return best
	}
	lpmKey := ""
	for _, k := range t.Keys {
		if k.Match == ir.MatchLPM {
			lpmKey = k.Name
		}
	}
	if lpmKey != "" {
		// Longest prefix wins.
		var best *pdpi.Entry
		bestLen := -2
		for _, e := range entries {
			if !sim.entryMatches(fs, t, e) {
				continue
			}
			if l := matchPrefixLen(e, lpmKey); best == nil || l > bestLen {
				best, bestLen = e, l
			}
		}
		return best
	}
	// Pure-exact tables can have at most one match.
	for _, e := range entries {
		if sim.entryMatches(fs, t, e) {
			return e
		}
	}
	return nil
}

func matchPrefixLen(e *pdpi.Entry, key string) int {
	if m, ok := e.Match(key); ok {
		return m.PrefixLen
	}
	return -1 // key omitted: matches everything, lowest precedence
}

// entryMatches checks an entry's matches against the field space.
func (sim *Interp) entryMatches(fs fieldSpace, t *ir.Table, e *pdpi.Entry) bool {
	for _, m := range e.Matches {
		k, ok := t.KeyByName(m.Key)
		if !ok {
			return false
		}
		fv := fs[k.Field.ID]
		switch m.Kind {
		case ir.MatchExact, ir.MatchOptional:
			if !fv.Equal(m.Value) {
				return false
			}
		case ir.MatchLPM:
			mask := value.PrefixMask(m.PrefixLen, k.Field.Width)
			if !fv.And(mask).Equal(m.Value.And(mask)) {
				return false
			}
		case ir.MatchTernary:
			if !fv.And(m.Mask).Equal(m.Value) {
				return false
			}
		}
	}
	return true
}

// BehaviorSet runs the packet repeatedly until an outcome signature
// repeats, returning the set of distinct behaviors (§5 "Hashing": the
// simulator uses round-robin selection, so repetition implies closure).
// maxIter bounds the loop defensively.
func (sim *Interp) BehaviorSet(in Input, maxIter int) ([]*Outcome, error) {
	seen := map[string]bool{}
	var out []*Outcome
	for i := 0; i < maxIter; i++ {
		o, err := sim.Run(in)
		if err != nil {
			return nil, err
		}
		sig := o.Signature()
		if seen[sig] {
			return out, nil
		}
		seen[sig] = true
		out = append(out, o)
	}
	return out, nil
}
