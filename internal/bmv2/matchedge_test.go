package bmv2_test

// Table-match edge cases pinned on both engines: zero-length LPM
// prefixes, ternary don't-care bytes (including degenerate zero masks
// that bypass entry validation), and priority ties. Each scenario runs
// end to end through the interpreter and the compiled pipeline and must
// produce bit-identical outcomes.

import (
	"testing"

	"switchv/internal/bmv2"
	"switchv/internal/p4/compile"
	"switchv/internal/p4/ir"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
	"switchv/internal/testutil"
	"switchv/models"
)

// bothEngines runs fn once per engine and then asserts the recorded
// outcomes are signature-identical across engines.
func bothEngines(t *testing.T, store *pdpi.Store, fn func(t *testing.T, sim bmv2.Simulator) []*bmv2.Outcome) {
	t.Helper()
	prog := models.Middleblock()
	var results [][]*bmv2.Outcome
	for _, eng := range []struct {
		name string
		mk   func() (bmv2.Simulator, error)
	}{
		{"interp", func() (bmv2.Simulator, error) { return bmv2.New(prog, store) }},
		{"compiled", func() (bmv2.Simulator, error) { return compile.New(prog, store) }},
	} {
		t.Run(eng.name, func(t *testing.T) {
			sim, err := eng.mk()
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, fn(t, sim))
		})
	}
	if len(results) != 2 {
		t.Fatal("an engine subtest did not record outcomes")
	}
	if len(results[0]) != len(results[1]) {
		t.Fatalf("outcome count differs: interp %d, compiled %d", len(results[0]), len(results[1]))
	}
	for i := range results[0] {
		if a, b := results[0][i].Signature(), results[1][i].Signature(); a != b {
			t.Errorf("outcome %d differs between engines:\ninterp:   %s\ncompiled: %s", i, a, b)
		}
	}
}

func mustInsert(t *testing.T, store *pdpi.Store, e *pdpi.Entry) {
	t.Helper()
	if err := store.Insert(e); err != nil {
		t.Fatal(err)
	}
}

// lastHit returns the trace record for table, or a zero TableHit.
func lastHit(o *bmv2.Outcome, table string) bmv2.TableHit {
	for _, h := range o.Trace {
		if h.Table == table {
			return h
		}
	}
	return bmv2.TableHit{}
}

// TestZeroLengthLPM: a /0 route matches every destination but loses to
// any longer prefix; both engines agree on the chosen entry.
func TestZeroLengthLPM(t *testing.T) {
	prog := models.Middleblock()
	store := pdpi.NewStore()
	testutil.RoutingFixture(prog, store)
	ipv4, _ := prog.TableByName("ipv4_table")
	setNH, _ := prog.ActionByName("set_nexthop_id")
	mustInsert(t, store, &pdpi.Entry{
		Table: ipv4,
		Matches: []pdpi.Match{
			{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(1, 10)},
			{Key: "ipv4_dst", Kind: ir.MatchLPM, Value: value.New(0, 32), PrefixLen: 0},
		},
		Action: &pdpi.ActionInvocation{Action: setNH, Args: []value.V{value.New(2, 10)}},
	})

	bothEngines(t, store, func(t *testing.T, sim bmv2.Simulator) []*bmv2.Outcome {
		var outs []*bmv2.Outcome
		run := func(dst string) *bmv2.Outcome {
			sim.Reset()
			o, err := sim.Run(bmv2.Input{Port: 1, Packet: testutil.IPv4UDP(dst, 64, 53)})
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, o)
			return o
		}
		// Outside every installed prefix: the /0 default route forwards
		// via nexthop 2 (port 12) instead of dropping.
		if o := run("172.16.0.9"); o.Disposition != bmv2.Forwarded || o.EgressPort != 12 {
			t.Errorf("default route: disposition %v port %d, want forwarded via 12", o.Disposition, o.EgressPort)
		}
		// Inside 10/8: the /8 still beats the /0.
		if o := run("10.1.2.3"); o.Disposition != bmv2.Forwarded || o.EgressPort != 11 {
			t.Errorf("/8 over /0: disposition %v port %d, want forwarded via 11", o.Disposition, o.EgressPort)
		}
		// Inside 10.99/16: the /16 beats both.
		if o := run("10.99.7.7"); o.Disposition != bmv2.Forwarded || o.EgressPort != 12 {
			t.Errorf("/16 over /0: disposition %v port %d, want forwarded via 12", o.Disposition, o.EgressPort)
		}
		return outs
	})
}

// TestTernaryDontCareBytes: a ternary match whose mask cares only about
// the first and last byte of the 48-bit MAC; middle bytes are free.
func TestTernaryDontCareBytes(t *testing.T) {
	prog := models.Middleblock()
	store := pdpi.NewStore()
	testutil.RoutingFixture(prog, store)
	acl, _ := prog.TableByName("acl_ingress_table")
	aclDrop, _ := prog.ActionByName("acl_drop")
	// The ACL sees the dst MAC after the nexthop rewrite to
	// 02:00:00:00:01:01; care about 02:**:**:**:**:01 only. A full-mask
	// exact match on the same masked value would miss (byte 4 is 0x01),
	// so a drop proves the masked-out middle bytes are truly free.
	mustInsert(t, store, &pdpi.Entry{
		Table: acl,
		Matches: []pdpi.Match{
			{Key: "dst_mac", Kind: ir.MatchTernary,
				Value: value.New(0x020000000001, 48), Mask: value.New(0xff00000000ff, 48)},
		},
		Priority: 7,
		Action:   &pdpi.ActionInvocation{Action: aclDrop},
	})

	bothEngines(t, store, func(t *testing.T, sim bmv2.Simulator) []*bmv2.Outcome {
		sim.Reset()
		o, err := sim.Run(bmv2.Input{Port: 1, Packet: testutil.IPv4UDP("10.1.2.3", 64, 53)})
		if err != nil {
			t.Fatal(err)
		}
		// The fixture packet's dst MAC is exactly RouterMAC: first and
		// last bytes match the cared-about pattern, so the ACL drops it.
		if o.Disposition != bmv2.Dropped {
			t.Errorf("disposition = %v, want dropped by don't-care-bytes ACL", o.Disposition)
		}
		return []*bmv2.Outcome{o}
	})
}

// TestTernaryZeroMask: degenerate ternary matches that entry validation
// would reject can still be inserted directly; both engines must agree
// that a zero mask with a zero value matches everything, and a zero
// mask with a nonzero value matches nothing.
func TestTernaryZeroMask(t *testing.T) {
	prog := models.Middleblock()
	acl, _ := prog.TableByName("acl_ingress_table")
	aclDrop, _ := prog.ActionByName("acl_drop")

	for _, tc := range []struct {
		name string
		val  uint64
		want bmv2.Disposition
	}{
		// mask 0, value 0: field & 0 == 0 — always true, so the ACL drops.
		{"zero-value-matches-all", 0, bmv2.Dropped},
		// mask 0, value 7: field & 0 == 7 — never true, packet forwards.
		{"nonzero-value-never-matches", 7, bmv2.Forwarded},
	} {
		t.Run(tc.name, func(t *testing.T) {
			store := pdpi.NewStore()
			testutil.RoutingFixture(prog, store)
			mustInsert(t, store, &pdpi.Entry{
				Table: acl,
				Matches: []pdpi.Match{
					{Key: "ttl", Kind: ir.MatchTernary, Value: value.New(tc.val, 8), Mask: value.New(0, 8)},
				},
				Priority: 7,
				Action:   &pdpi.ActionInvocation{Action: aclDrop},
			})
			bothEngines(t, store, func(t *testing.T, sim bmv2.Simulator) []*bmv2.Outcome {
				sim.Reset()
				o, err := sim.Run(bmv2.Input{Port: 1, Packet: testutil.IPv4UDP("10.1.2.3", 64, 53)})
				if err != nil {
					t.Fatal(err)
				}
				if o.Disposition != tc.want {
					t.Errorf("disposition = %v, want %v", o.Disposition, tc.want)
				}
				return []*bmv2.Outcome{o}
			})
		})
	}
}

// TestPriorityTie: two ACL entries with equal priority that both match;
// the interpreter's scan keeps the first store entry, and the compiled
// engine's stable sort plus seq-ordered dispatch must pick the same one.
func TestPriorityTie(t *testing.T) {
	prog := models.Middleblock()
	store := pdpi.NewStore()
	testutil.RoutingFixture(prog, store)
	acl, _ := prog.TableByName("acl_ingress_table")
	aclDrop, _ := prog.ActionByName("acl_drop")
	aclTrap, _ := prog.ActionByName("acl_trap")
	// Both match a UDP packet: inserted first, the protocol rule; then
	// the TTL rule, at the same priority.
	first := &pdpi.Entry{
		Table: acl,
		Matches: []pdpi.Match{
			{Key: "ip_protocol", Kind: ir.MatchTernary, Value: value.New(17, 8), Mask: value.Ones(8)},
		},
		Priority: 9,
		Action:   &pdpi.ActionInvocation{Action: aclTrap},
	}
	mustInsert(t, store, first)
	mustInsert(t, store, &pdpi.Entry{
		Table: acl,
		Matches: []pdpi.Match{
			{Key: "ttl", Kind: ir.MatchTernary, Value: value.New(64, 8), Mask: value.Ones(8)},
		},
		Priority: 9,
		Action:   &pdpi.ActionInvocation{Action: aclDrop},
	})

	bothEngines(t, store, func(t *testing.T, sim bmv2.Simulator) []*bmv2.Outcome {
		sim.Reset()
		o, err := sim.Run(bmv2.Input{Port: 1, Packet: testutil.IPv4UDP("10.1.2.3", 64, 53)})
		if err != nil {
			t.Fatal(err)
		}
		if h := lastHit(o, "acl_ingress_table"); h.EntryKey != first.Key() {
			t.Errorf("tie broke to %q (%s), want first-inserted %q", h.EntryKey, h.Action, first.Key())
		}
		return []*bmv2.Outcome{o}
	})
}
