package p4info

import (
	"strings"
	"testing"

	"switchv/models"
)

func TestLookups(t *testing.T) {
	info := New(models.Middleblock())
	ipv4, ok := info.TableByName("ipv4_table")
	if !ok {
		t.Fatal("missing ipv4_table")
	}
	got, ok := info.TableByID(ipv4.ID)
	if !ok || got != ipv4 {
		t.Errorf("TableByID(%#x) = %v, %v", ipv4.ID, got, ok)
	}
	if _, ok := info.TableByID(0xdeadbeef); ok {
		t.Error("resolved bogus table ID")
	}
	drop, ok := info.ActionByName("drop")
	if !ok {
		t.Fatal("missing drop")
	}
	if a, ok := info.ActionByID(drop.ID); !ok || a != drop {
		t.Errorf("ActionByID = %v, %v", a, ok)
	}
	if _, ok := info.ActionByID(1); ok {
		t.Error("resolved bogus action ID")
	}
	if k, ok := info.MatchFieldByID(ipv4, 2); !ok || k.Name != "ipv4_dst" {
		t.Errorf("MatchFieldByID(2) = %+v, %v", k, ok)
	}
	if _, ok := info.MatchFieldByID(ipv4, 0); ok {
		t.Error("match field id 0 resolved")
	}
	if _, ok := info.MatchFieldByID(ipv4, 3); ok {
		t.Error("match field id 3 resolved")
	}
	nh, _ := info.ActionByName("set_nexthop")
	if p, ok := info.ParamByID(nh, 1); !ok || p.Name != "router_interface_id" {
		t.Errorf("ParamByID(1) = %+v, %v", p, ok)
	}
	if _, ok := info.ParamByID(nh, 5); ok {
		t.Error("param id 5 resolved")
	}
}

func TestText(t *testing.T) {
	info := New(models.Middleblock())
	text := info.Text()
	for _, want := range []string{
		`name: "middleblock"`,
		`name: "ipv4_table"`,
		`match_type: LPM`,
		`implementation: ACTION_SELECTOR`,
		`refers_to: "vrf_table.vrf_id"`,
		`restriction:`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Text missing %q", want)
		}
	}
	if info.Text() != text {
		t.Error("Text is not deterministic")
	}
}

func TestFingerprint(t *testing.T) {
	mb := New(models.Middleblock())
	wan := New(models.WAN())
	if mb.Fingerprint() == wan.Fingerprint() {
		t.Error("distinct models share a fingerprint")
	}
	if mb.Fingerprint() != New(models.Middleblock()).Fingerprint() {
		t.Error("fingerprint not stable")
	}
	if len(mb.Fingerprint()) != 64 {
		t.Errorf("fingerprint length = %d", len(mb.Fingerprint()))
	}
}

func TestDependencies(t *testing.T) {
	info := New(models.Middleblock())
	ipv4, _ := info.TableByName("ipv4_table")
	deps := info.Dependencies(ipv4)
	// key vrf_id -> vrf_table; actions set_nexthop_id -> nexthop_table,
	// set_wcmp_group_id -> wcmp_group_table.
	want := []string{"nexthop_table", "vrf_table", "wcmp_group_table"}
	if len(deps) != len(want) {
		t.Fatalf("deps = %v, want %v", deps, want)
	}
	for i := range want {
		if deps[i] != want[i] {
			t.Fatalf("deps = %v, want %v", deps, want)
		}
	}

	vrf, _ := info.TableByName("vrf_table")
	refs := info.ReferencedBy(vrf)
	if len(refs) == 0 {
		t.Fatal("vrf_table has no referrers")
	}
	foundTable, foundAction := false, false
	for _, r := range refs {
		if strings.HasPrefix(r, "table:") {
			foundTable = true
		}
		if strings.HasPrefix(r, "action:") {
			foundAction = true
		}
	}
	if !foundTable || !foundAction {
		t.Errorf("refs = %v, want both table: and action: entries", refs)
	}

	mirror, _ := info.TableByName("mirror_session_table")
	if deps := info.Dependencies(mirror); len(deps) != 0 {
		t.Errorf("mirror deps = %v", deps)
	}
}
