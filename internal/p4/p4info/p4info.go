// Package p4info derives the control-plane API view of a compiled P4 model:
// the table, match-field, action and parameter IDs that P4Runtime messages
// reference, plus a canonical text serialization used when pushing the
// forwarding pipeline config to a switch and when fingerprinting a model.
package p4info

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"switchv/internal/p4/ir"
)

// Info is the control-plane API of a P4 model.
type Info struct {
	Name    string
	program *ir.Program

	tablesByID  map[uint32]*ir.Table
	actionsByID map[uint32]*ir.Action
}

// New derives the Info from a compiled program.
func New(p *ir.Program) *Info {
	info := &Info{
		Name:        p.Name,
		program:     p,
		tablesByID:  make(map[uint32]*ir.Table, len(p.Tables)),
		actionsByID: make(map[uint32]*ir.Action, len(p.Actions)),
	}
	for _, t := range p.Tables {
		info.tablesByID[t.ID] = t
	}
	for _, a := range p.Actions {
		info.actionsByID[a.ID] = a
	}
	return info
}

// Program returns the underlying compiled program.
func (i *Info) Program() *ir.Program { return i.program }

// Tables lists all tables in declaration order.
func (i *Info) Tables() []*ir.Table { return i.program.Tables }

// Actions lists all actions in declaration order.
func (i *Info) Actions() []*ir.Action { return i.program.Actions }

// TableByID resolves a table ID.
func (i *Info) TableByID(id uint32) (*ir.Table, bool) {
	t, ok := i.tablesByID[id]
	return t, ok
}

// ActionByID resolves an action ID.
func (i *Info) ActionByID(id uint32) (*ir.Action, bool) {
	a, ok := i.actionsByID[id]
	return a, ok
}

// TableByName resolves a table name.
func (i *Info) TableByName(name string) (*ir.Table, bool) {
	return i.program.TableByName(name)
}

// ActionByName resolves an action name.
func (i *Info) ActionByName(name string) (*ir.Action, bool) {
	return i.program.ActionByName(name)
}

// MatchFieldByID resolves a table's match field by its 1-based id.
func (i *Info) MatchFieldByID(t *ir.Table, id int) (ir.KeyField, bool) {
	if id < 1 || id > len(t.Keys) {
		return ir.KeyField{}, false
	}
	return t.Keys[id-1], true
}

// ParamByID resolves an action parameter by its 1-based id.
func (i *Info) ParamByID(a *ir.Action, id int) (ir.ActionParam, bool) {
	if id < 1 || id > len(a.Params) {
		return ir.ActionParam{}, false
	}
	return a.Params[id-1], true
}

// Text renders the Info in a stable, human-readable format modeled on
// p4info.txt. It is the wire payload of SetForwardingPipelineConfig.
func (i *Info) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pkg_info { name: %q }\n", i.Name)
	for _, t := range i.program.Tables {
		fmt.Fprintf(&b, "table { id: %#08x name: %q size: %d", t.ID, t.Name, t.Size)
		if t.IsSelector {
			b.WriteString(" implementation: ACTION_SELECTOR")
		}
		if t.EntryRestriction != "" {
			fmt.Fprintf(&b, " restriction: %q", t.EntryRestriction)
		}
		b.WriteString("\n")
		for _, k := range t.Keys {
			fmt.Fprintf(&b, "  match_field { id: %d name: %q bitwidth: %d match_type: %s",
				k.Index, k.Name, k.Field.Width, strings.ToUpper(k.Match.String()))
			if k.RefersTo != nil {
				fmt.Fprintf(&b, " refers_to: %q", k.RefersTo.Table+"."+k.RefersTo.Field)
			}
			b.WriteString(" }\n")
		}
		for _, a := range t.Actions {
			fmt.Fprintf(&b, "  action_ref { id: %#08x }\n", a.ID)
		}
		fmt.Fprintf(&b, "  default_action { id: %#08x const: %v }\n", t.DefaultAction.ID, t.ConstDefault)
		b.WriteString("}\n")
	}
	for _, a := range i.program.Actions {
		fmt.Fprintf(&b, "action { id: %#08x name: %q\n", a.ID, a.Name)
		for _, p := range a.Params {
			fmt.Fprintf(&b, "  param { id: %d name: %q bitwidth: %d", p.Index, p.Name, p.Width)
			if p.RefersTo != nil {
				fmt.Fprintf(&b, " refers_to: %q", p.RefersTo.Table+"."+p.RefersTo.Field)
			}
			b.WriteString(" }\n")
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// Fingerprint returns a stable hex digest of the control-plane API,
// suitable as a cache key (§6.3 "Caching").
func (i *Info) Fingerprint() string {
	sum := sha256.Sum256([]byte(i.Text()))
	return hex.EncodeToString(sum[:])
}

// ReferencedBy returns, for each table, the tables and actions whose
// @refers_to annotations point at it. The fuzzer uses this to order
// dependent updates into separate batches (§4.4).
func (i *Info) ReferencedBy(target *ir.Table) []string {
	var out []string
	for _, t := range i.program.Tables {
		for _, k := range t.Keys {
			if k.RefersTo != nil && k.RefersTo.Table == target.Name {
				out = append(out, "table:"+t.Name)
			}
		}
	}
	for _, a := range i.program.Actions {
		for _, p := range a.Params {
			if p.RefersTo != nil && p.RefersTo.Table == target.Name {
				out = append(out, "action:"+a.Name)
			}
		}
	}
	sort.Strings(out)
	return dedup(out)
}

// Dependencies returns the names of tables that the given table's entries
// may reference (via key or action-parameter @refers_to).
func (i *Info) Dependencies(t *ir.Table) []string {
	var out []string
	for _, k := range t.Keys {
		if k.RefersTo != nil {
			out = append(out, k.RefersTo.Table)
		}
	}
	for _, a := range t.Actions {
		for _, p := range a.Params {
			if p.RefersTo != nil {
				out = append(out, p.RefersTo.Table)
			}
		}
	}
	sort.Strings(out)
	return dedup(out)
}

func dedup(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// TopoOrder returns the tables sorted so that every table appears after
// the tables its entries may reference — the order in which entries must
// be installed to keep references valid. Ties keep declaration order.
func (i *Info) TopoOrder() []*ir.Table {
	rank := map[string]int{}
	tables := i.program.Tables
	for round := 0; round < len(tables); round++ {
		changed := false
		for _, t := range tables {
			r := 0
			for _, dep := range i.Dependencies(t) {
				if dep == t.Name {
					continue // self-references do not order
				}
				if rank[dep]+1 > r {
					r = rank[dep] + 1
				}
			}
			if r != rank[t.Name] {
				rank[t.Name] = r
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	out := append([]*ir.Table(nil), tables...)
	sort.SliceStable(out, func(a, b int) bool { return rank[out[a].Name] < rank[out[b].Name] })
	return out
}
