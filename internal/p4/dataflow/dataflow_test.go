package dataflow

import (
	"testing"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/parser"
	"switchv/internal/p4/value"
	"switchv/models"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ir.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func field(t *testing.T, p *ir.Program, name string) *ir.Field {
	t.Helper()
	f, ok := p.FieldByName(name)
	if !ok {
		t.Fatalf("no field %q", name)
	}
	return f
}

// TestConeTransitivity: a table keyed on metadata written from a header
// field by an upstream table pulls the header bits — and the upstream
// table — into its cone.
func TestConeTransitivity(t *testing.T) {
	prog := compile(t, `
header ethernet_t { bit<48> dst_addr; bit<48> src_addr; bit<16> ether_type; }
struct headers_t { ethernet_t ethernet; }
struct m_t { bit<10> vrf; }
control c(inout headers_t headers, inout m_t m) {
  action setv(bit<10> v) { m.vrf = v; }
  action nop() { no_op(); }
  table classify { key = { headers.ethernet.src_addr : ternary; } actions = { setv; } }
  table route { key = { m.vrf : exact; } actions = { nop; } }
  apply { classify.apply(); route.apply(); }
}`)
	a := Analyze(prog)

	cone := a.Cone("route")
	if cone == nil {
		t.Fatal("no cone for route")
	}
	src := field(t, prog, "headers.ethernet.src_addr")
	if m, ok := cone.Fields[src.ID]; !ok || !m.Equal(value.Ones(48)) {
		t.Errorf("route cone lacks full src_addr mask: %v", cone.Fields[src.ID])
	}
	if !cone.Tables["classify"] || !cone.Tables["route"] {
		t.Errorf("route cone tables = %v, want classify+route", cone.Tables)
	}
	// classify's own cone must NOT contain route (no backward edge) nor
	// the vrf metadata.
	vrf := field(t, prog, "m.vrf")
	cc := a.Cone("classify")
	if cc.Tables["route"] {
		t.Error("classify cone includes downstream route")
	}
	if _, ok := cc.Fields[vrf.ID]; ok {
		t.Error("classify cone includes unrelated m.vrf")
	}
	dst := field(t, prog, "headers.ethernet.dst_addr")
	if _, ok := cc.Fields[dst.ID]; ok {
		t.Error("classify cone includes unread dst_addr")
	}
}

// TestBitGranularMask: `(x & 0xF0) == c` guards narrow the cone to the
// masked bits, and arithmetic widens to the carry chain.
func TestBitGranularMask(t *testing.T) {
	prog := compile(t, `
struct m_t { bit<8> x; bit<8> y; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t { key = { m.y : exact; } actions = { nop; } }
  apply {
    if ((m.x & 0xF0) == 0x40) { t.apply(); }
  }
}`)
	a := Analyze(prog)
	x := field(t, prog, "m.x")
	cone := a.Cone("t")
	if m, ok := cone.Fields[x.ID]; !ok || m.Uint64() != 0xF0 {
		t.Errorf("cone mask for m.x = %v, want 0xF0", cone.Fields[x.ID])
	}
}

// TestValidityLattice: isValid guards refine the lattice per branch,
// setValid/setInvalid update it, and joins lose agreement.
func TestValidityLattice(t *testing.T) {
	prog := compile(t, `
header ipv4_t { bit<8> ttl; }
struct headers_t { ipv4_t ipv4; }
struct m_t { bit<8> a; }
control c(inout headers_t headers, inout m_t m) {
  action nop() { no_op(); }
  table t1 { key = { m.a : exact; } actions = { nop; } }
  table t2 { key = { headers.ipv4.ttl : ternary; } actions = { nop; } }
  apply {
    if (headers.ipv4.isValid()) {
      t2.apply();
    }
    t1.apply();
  }
}`)
	a := Analyze(prog)
	if v := a.ValidityAtApply("t2", "headers.ipv4"); v != Valid {
		t.Errorf("t2 sees ipv4 %v, want valid", v)
	}
	if v := a.ValidityAtApply("t1", "headers.ipv4"); v != Top {
		t.Errorf("t1 sees ipv4 %v, want ⊤ (join of branches)", v)
	}
}

// TestParserModel: the chain mirrors the symbolic executor's axioms.
func TestParserModel(t *testing.T) {
	prog, err := models.Load("wan")
	if err != nil {
		t.Fatal(err)
	}
	ps := ParserOf(prog)
	if ps.Prefix != "headers" {
		t.Fatalf("prefix = %q", ps.Prefix)
	}
	if v := ps.Initial("headers.ethernet"); v != Valid {
		t.Errorf("ethernet initial = %v", v)
	}
	if v := ps.Initial("headers.ipv4"); v != Top {
		t.Errorf("ipv4 initial = %v", v)
	}
	if !ps.Reachable("headers.inner_ipv4") {
		t.Error("inner_ipv4 not reachable")
	}
	spec, ok := ps.Spec("headers.icmp")
	if !ok || spec.Proto != 1 || spec.V6Next != 58 {
		t.Errorf("icmp spec = %+v", spec)
	}
	if spec, _ := ps.Spec("headers.gre"); spec.V6Next != -1 {
		t.Errorf("gre spec allows IPv6: %+v", spec)
	}
	disc := ps.Discriminators("headers.ipv4")
	if len(disc) != 2 { // ethernet.ether_type + vlan.ether_type (wan has vlan)
		t.Errorf("ipv4 discriminators = %v", disc)
	}
}

// TestConesCoverEmbeddedModels: every applied table of both embedded
// models gets a cone strictly smaller than the whole field space — the
// slicing payoff — except tables behind the full nexthop chain.
func TestConesCoverEmbeddedModels(t *testing.T) {
	for _, name := range models.Names() {
		prog, err := models.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		a := Cached(prog)
		if a != Cached(prog) {
			t.Fatal("Cached not memoized")
		}
		total := a.TotalInputBits()
		for _, tbl := range prog.Tables {
			cone := a.Cone(tbl.Name)
			if cone == nil {
				t.Errorf("%s: table %s has no cone", name, tbl.Name)
				continue
			}
			if got := cone.Fields.Bits(); got == 0 || got > total {
				t.Errorf("%s/%s: cone bits = %d (total %d)", name, tbl.Name, got, total)
			}
			if !cone.Tables[tbl.Name] {
				t.Errorf("%s/%s: cone omits the table itself", name, tbl.Name)
			}
		}
		// acl_pre_ingress matches only raw packet fields: its cone must
		// stay well under half the field space.
		if cone := a.Cone("acl_pre_ingress_table"); cone != nil {
			if got := cone.Fields.Bits(); got*2 > total {
				t.Errorf("%s: acl_pre_ingress cone %d bits of %d — no slicing payoff", name, got, total)
			}
			if len(cone.Tables) != 1 {
				t.Errorf("%s: acl_pre_ingress cone tables = %v, want itself only", name, cone.Tables)
			}
		}
	}
}

// TestKilledWrites: straight-line overwrites are killed; reads and
// branches protect earlier writes.
func TestKilledWrites(t *testing.T) {
	prog := compile(t, `
struct m_t { bit<8> a; bit<8> b; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t { key = { m.b : exact; } actions = { nop; } }
  apply {
    m.a = 1;
    m.a = 2;      // kills the first write
    m.b = m.a;    // reads m.a: protects write #2
    m.a = 3;      // fine
    if (m.b == 0) { m.a = 4; } // branch clears tracking
    m.a = 5;      // fine (write #4 was in another block)
    t.apply();
  }
}`)
	a := Analyze(prog)
	var killed []int
	for _, d := range a.Defs {
		if d.Killed {
			killed = append(killed, d.Ord)
		}
	}
	if len(killed) != 1 {
		t.Fatalf("killed writes = %v, want exactly one", killed)
	}
	first := a.Defs[0]
	if !first.Killed || first.Field.Name != "m.a" {
		t.Errorf("first def = %+v, want killed m.a", first)
	}
}
