package dataflow

import (
	"strings"

	"switchv/internal/p4/ir"
)

// Validity is the header-validity lattice: Top (may or may not be valid)
// above Valid and Invalid.
type Validity uint8

const (
	// Top: the analysis cannot decide.
	Top Validity = iota
	// Valid: the header is definitely valid at this point.
	Valid
	// Invalid: the header is definitely invalid; non-validity fields read
	// as zero.
	Invalid
)

func (v Validity) String() string {
	switch v {
	case Valid:
		return "valid"
	case Invalid:
		return "invalid"
	default:
		return "⊤"
	}
}

// negate flips Valid/Invalid and fixes Top.
func (v Validity) negate() Validity {
	switch v {
	case Valid:
		return Invalid
	case Invalid:
		return Valid
	default:
		return Top
	}
}

// Join returns the least upper bound of two lattice values.
func Join(a, b Validity) Validity {
	if a == b {
		return a
	}
	return Top
}

// Role classifies how the semi-hardcoded parser reaches a header.
type Role uint8

const (
	// RoleNone: the parser does not know the header; it can only become
	// valid through an explicit setValid.
	RoleNone Role = iota
	// RoleEthernet: the outermost header, always valid.
	RoleEthernet
	// RoleVlan: the optional 802.1Q tag (EtherType 0x8100).
	RoleVlan
	// RoleL3: selected by the effective EtherType after VLAN untagging.
	RoleL3
	// RoleL4: selected by ipv4.protocol / ipv6.next_header.
	RoleL4
	// RoleInner: the GRE payload, selected by gre.protocol.
	RoleInner
)

// Spec describes one header the parser can reach, mirroring exactly the
// couplings symbolic.assertParserAxioms encodes: the discriminator field
// values that make the parser mark the header valid.
type Spec struct {
	Name string // instance name under the headers struct, e.g. "ipv4"
	Role Role
	// EtherType selects RoleVlan/RoleL3 headers (effective EtherType).
	EtherType uint64
	// Proto / V6Next select RoleL4 headers over IPv4 / IPv6; a negative
	// value means the header is unreachable over that IP version (GRE is
	// IPv4-only).
	Proto  int64
	V6Next int64
}

// parserChain is the fixed knowledge the reference parser (and the
// symbolic executor's axioms) have about header instance names.
var parserChain = map[string]Spec{
	"ethernet":   {Role: RoleEthernet},
	"vlan":       {Role: RoleVlan, EtherType: 0x8100},
	"ipv4":       {Role: RoleL3, EtherType: 0x0800},
	"ipv6":       {Role: RoleL3, EtherType: 0x86DD},
	"arp":        {Role: RoleL3, EtherType: 0x0806},
	"tcp":        {Role: RoleL4, Proto: 6, V6Next: 6},
	"udp":        {Role: RoleL4, Proto: 17, V6Next: 17},
	"icmp":       {Role: RoleL4, Proto: 1, V6Next: 58},
	"gre":        {Role: RoleL4, Proto: 47, V6Next: -1},
	"inner_ipv4": {Role: RoleInner},
}

// chainOrder fixes the parse order of the known headers, outermost
// first — the deterministic iteration order for consumers that patch or
// recompute validity along the chain.
var chainOrder = []string{
	"ethernet", "vlan", "ipv4", "ipv6", "arp",
	"tcp", "udp", "icmp", "gre", "inner_ipv4",
}

// Parser is the static model of the parser for one program: which of its
// header instances the parser can reach and through which discriminator
// fields.
type Parser struct {
	// Prefix is the headers struct parameter name (e.g. "headers"), ""
	// when the program declares no header instances.
	Prefix string
	prog   *ir.Program
	specs  map[string]Spec // header path -> spec
}

// ParserOf builds the parser model for a program.
func ParserOf(p *ir.Program) *Parser {
	ps := &Parser{prog: p, specs: map[string]Spec{}}
	if len(p.HeaderInstances) > 0 {
		path := p.HeaderInstances[0].Path
		if i := strings.IndexByte(path, '.'); i > 0 {
			ps.Prefix = path[:i]
		}
	}
	for _, hi := range p.HeaderInstances {
		name := hi.Path
		if ps.Prefix != "" {
			name = strings.TrimPrefix(name, ps.Prefix+".")
		}
		if spec, ok := parserChain[name]; ok {
			spec.Name = name
			ps.specs[hi.Path] = spec
		}
	}
	return ps
}

// Chain lists the program's parser-known headers in parse order
// (outermost first). The order is deterministic by construction.
func (ps *Parser) Chain() []Spec {
	var out []Spec
	for _, name := range chainOrder {
		if ps.Prefix == "" {
			continue
		}
		if s, ok := ps.specs[ps.Prefix+"."+name]; ok {
			out = append(out, s)
		}
	}
	return out
}

// Spec returns the parser spec for a header path.
func (ps *Parser) Spec(header string) (Spec, bool) {
	s, ok := ps.specs[header]
	return s, ok
}

// Reachable reports whether the parser can ever mark the header valid.
func (ps *Parser) Reachable(header string) bool {
	_, ok := ps.specs[header]
	return ok
}

// Initial returns the header's validity when the pipeline starts:
// ethernet is always valid, parser-known headers depend on the packet,
// and unknown headers are invalid until an explicit setValid.
func (ps *Parser) Initial(header string) Validity {
	s, ok := ps.specs[header]
	if !ok {
		return Invalid
	}
	if s.Role == RoleEthernet {
		return Valid
	}
	return Top
}

// field resolves "name" under the headers prefix.
func (ps *Parser) field(name string) (*ir.Field, bool) {
	return ps.prog.FieldByName(ps.Prefix + "." + name)
}

// ValidityField returns the $valid bit of a header path.
func (ps *Parser) ValidityField(header string) (*ir.Field, bool) {
	return ps.prog.FieldByName(header + ".$valid")
}

// Discriminators returns the fields whose values determine whether the
// parser marks the header valid: the EtherType chain for L2.5/L3
// headers, the IP protocol / next-header fields for L4 headers, and
// gre.protocol for the inner header. A table that matches on any of
// these alongside a header field is considered validity-coupled.
func (ps *Parser) Discriminators(header string) []*ir.Field {
	s, ok := ps.specs[header]
	if !ok {
		return nil
	}
	var names []string
	switch s.Role {
	case RoleVlan:
		names = []string{"ethernet.ether_type"}
	case RoleL3:
		names = []string{"ethernet.ether_type", "vlan.ether_type"}
	case RoleL4:
		names = []string{"ipv4.protocol", "ipv6.next_header"}
	case RoleInner:
		names = []string{"gre.protocol"}
	}
	var out []*ir.Field
	for _, n := range names {
		if f, ok := ps.field(n); ok {
			out = append(out, f)
		}
	}
	return out
}
