// Package dataflow implements reusable static dataflow analyses over the
// P4 IR: bit-granular def-use chains for header and metadata fields, a
// header-validity lattice (valid / invalid / ⊤) propagated through
// setValid/setInvalid and the semi-hardcoded parser transitions, and
// per-table cone-of-influence slices (the transitive set of input field
// bits — and upstream tables — that can affect whether and which entry of
// a table fires).
//
// Three consumers ride on the same walk:
//
//   - internal/p4/check derives the P4C011–P4C016 findings from the
//     def-use event stream and the validity lattice;
//   - internal/symbolic restricts bit-blasting per goal to the assertion
//     components reachable from the goal table's cone (slice-restricted
//     solving);
//   - internal/symbolic/witness uses the Parser model to couple validity
//     key bits to their discriminator fields inside the per-table BDDs
//     and to repair candidate models into parseable packets.
//
// Like the symbolic executor the analysis over-approximates: every
// dependency it cannot rule out is kept, so a cone is always a superset
// of the true support of the table's fire condition.
package dataflow

import (
	"sort"
	"sync"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/value"
)

// Deps is a bit-granular dependency set: input field ID → mask of the
// bits of that field that can influence the value in question.
type Deps map[int]value.V

// add unions mask into the entry for field id (widening the stored mask).
func (d Deps) add(id int, mask value.V) {
	if old, ok := d[id]; ok {
		d[id] = old.Or(mask)
	} else {
		d[id] = mask
	}
}

// union merges o into d.
func (d Deps) union(o Deps) {
	for id, m := range o {
		d.add(id, m)
	}
}

func (d Deps) clone() Deps {
	c := make(Deps, len(d))
	for id, m := range d {
		c[id] = m
	}
	return c
}

// Bits returns the total number of set bits across all masks.
func (d Deps) Bits() int {
	n := 0
	for _, m := range d {
		for i := 0; i < m.Width; i++ {
			if m.Bit(i) {
				n++
			}
		}
	}
	return n
}

// UseKind classifies where a field read occurs.
type UseKind uint8

const (
	// UseRhs is a read on the right-hand side of an assignment.
	UseRhs UseKind = iota
	// UseGuard is a read inside a branch condition.
	UseGuard
	// UseKey is a read as a table match key.
	UseKey
)

func (k UseKind) String() string {
	switch k {
	case UseRhs:
		return "rhs"
	case UseGuard:
		return "guard"
	case UseKey:
		return "key"
	default:
		return "use?"
	}
}

// Use is one field read, with the validity-lattice value of the enclosing
// header at that program point (Top for metadata fields).
type Use struct {
	Ord      int // global program-order ordinal of the enclosing statement
	Field    *ir.Field
	Kind     UseKind
	Control  string
	Action   string // enclosing action ("" for apply-block code)
	Table    string // table being applied (key reads and action-body code)
	Validity Validity
}

// Def is one field write.
type Def struct {
	Ord     int
	Field   *ir.Field
	Control string
	Action  string // enclosing action ("" for apply-block code)
	Table   string
	// Killed marks a write that is overwritten by a later write in the
	// same straight-line block before any statement could read it: a dead
	// store (apply-block code) or a conflicting write (action bodies).
	Killed bool
}

// Cone is a table's cone of influence: everything that can affect whether
// the table is reached and which of its entries fires.
type Cone struct {
	Table string
	// Fields maps input field IDs to the bit mask that can influence the
	// fire condition (guards dominating the apply sites, plus the
	// transitive dependencies of every key field).
	Fields Deps
	// Tables names the tables (always including this one) whose entry or
	// selector choice can influence the fire condition — the set whose
	// solver-side assertions (selector range constraints) a sliced check
	// must keep active.
	Tables map[string]bool
}

// Analysis is the result of one dataflow pass over a program.
type Analysis struct {
	Prog   *ir.Program
	Parser *Parser

	// Uses and Defs are the def-use event streams in program order.
	Uses []Use
	Defs []Def

	cones         map[string]*Cone
	applyValidity map[string]map[string]Validity
	firstDef      map[int]int
	setValidAny   map[string]bool // header paths assigned $valid=1 anywhere
	totalBits     int
}

var cached sync.Map // *ir.Program -> *Analysis

// Cached returns the (possibly shared) analysis for the program,
// computing it on first use. Programs are immutable after compilation, so
// the cache is keyed on identity.
func Cached(p *ir.Program) *Analysis {
	if a, ok := cached.Load(p); ok {
		return a.(*Analysis)
	}
	a := Analyze(p)
	actual, _ := cached.LoadOrStore(p, a)
	return actual.(*Analysis)
}

// Cone returns the cone of influence for the named table, or nil if the
// table is never applied.
func (a *Analysis) Cone(table string) *Cone { return a.cones[table] }

// FirstDef returns the program-order ordinal of the field's first
// reachable write (writes inside actions count at their apply site).
func (a *Analysis) FirstDef(f *ir.Field) (int, bool) {
	ord, ok := a.firstDef[f.ID]
	return ord, ok
}

// ValidityAtApply returns the lattice value of a header at the table's
// apply site(s), joined over sites.
func (a *Analysis) ValidityAtApply(table, header string) Validity {
	m := a.applyValidity[table]
	if m == nil {
		return Top
	}
	if v, ok := m[header]; ok {
		return v
	}
	return Top
}

// SetValidAnywhere reports whether any reachable statement marks the
// header valid (a locally constructed header, like a tunnel push).
func (a *Analysis) SetValidAnywhere(header string) bool { return a.setValidAny[header] }

// TotalInputBits is the width sum of every field in the program's flat
// field space — the denominator for slice-size metrics.
func (a *Analysis) TotalInputBits() int { return a.totalBits }

// Analyze runs the dataflow pass.
func Analyze(p *ir.Program) *Analysis {
	a := &Analysis{
		Prog:          p,
		Parser:        ParserOf(p),
		cones:         map[string]*Cone{},
		applyValidity: map[string]map[string]Validity{},
		firstDef:      map[int]int{},
		setValidAny:   map[string]bool{},
	}
	for _, f := range p.Fields {
		a.totalBits += f.Width
	}
	w := &walker{a: a, p: p}
	// Every field's initial value is its own input bits (metadata inputs
	// are constrained to zero by the executor, but the input variable
	// still exists in the formula, so it stays in the dependency set).
	w.deps = make([]Deps, len(p.Fields))
	for _, f := range p.Fields {
		w.deps[f.ID] = Deps{f.ID: value.Ones(f.Width)}
	}
	w.tableDeps = make([]map[string]bool, len(p.Fields))
	env := map[string]Validity{}
	for _, hi := range p.HeaderInstances {
		env[hi.Path] = a.Parser.Initial(hi.Path)
	}
	for _, c := range p.Controls {
		w.control = c.Name
		env = w.walk(c.Body, env, Deps{}, map[string]bool{}, "", "")
	}
	sort.SliceStable(a.Uses, func(i, j int) bool { return a.Uses[i].Ord < a.Uses[j].Ord })
	sort.SliceStable(a.Defs, func(i, j int) bool { return a.Defs[i].Ord < a.Defs[j].Ord })
	return a
}

// walker carries the abstract state of the pass.
type walker struct {
	a *Analysis
	p *ir.Program

	ord     int
	control string

	// deps[f] = input bits the field's current value may depend on.
	deps []Deps
	// tableDeps[f] = tables whose entry choice may have influenced f.
	tableDeps []map[string]bool
}

func (w *walker) fieldTables(id int) map[string]bool { return w.tableDeps[id] }

func unionTables(dst map[string]bool, srcs ...map[string]bool) map[string]bool {
	for _, s := range srcs {
		for t := range s {
			dst[t] = true
		}
	}
	return dst
}

func cloneTables(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k := range m {
		c[k] = true
	}
	return c
}

// validityOf returns the lattice value for the field's enclosing header
// (Top for metadata and validity bits themselves).
func validityOf(env map[string]Validity, f *ir.Field) Validity {
	if f.Header == "" || f.IsValidity {
		return Top
	}
	if v, ok := env[f.Header]; ok {
		return v
	}
	return Top
}

// walk interprets a statement list under the given validity environment,
// accumulated guard dependencies, and guard table set; it returns the
// environment after the block. action/table name the enclosing action
// context ("" for apply-block code).
func (w *walker) walk(stmts []ir.Stmt, env map[string]Validity, guard Deps, guardTabs map[string]bool, action, table string) map[string]Validity {
	// pending tracks the last unread write per field inside the current
	// straight-line run of assignments, for dead/conflicting-write
	// detection. Any branch, table apply, or control transfer clears it.
	pending := map[int]*Def{}
	for _, st := range stmts {
		w.ord++
		switch s := st.(type) {
		case *ir.Assign:
			// Reads in the RHS happen before the write.
			rhs := Deps{}
			w.expr(&s.Src, value.Ones(s.Src.Width), rhs, env, UseRhs, action, table, pending)
			d := Deps{}
			d.union(rhs)
			d.union(guard)
			d.union(w.deps[s.Dst.ID]) // guarded write: the old value may survive
			w.deps[s.Dst.ID] = d
			tabs := cloneTables(guardTabs)
			unionTables(tabs, w.fieldTables(s.Dst.ID))
			for id := range rhs {
				unionTables(tabs, w.fieldTables(id))
			}
			if table != "" {
				tabs[table] = true
			}
			w.tableDeps[s.Dst.ID] = tabs

			if prev, ok := pending[s.Dst.ID]; ok {
				prev.Killed = true
			}
			w.a.Defs = append(w.a.Defs, Def{Ord: w.ord, Field: s.Dst, Control: w.control, Action: action, Table: table})
			def := &w.a.Defs[len(w.a.Defs)-1]
			pending[s.Dst.ID] = def
			if _, ok := w.a.firstDef[s.Dst.ID]; !ok {
				w.a.firstDef[s.Dst.ID] = w.ord
			}
			// Track the validity lattice through setValid/setInvalid.
			if s.Dst.IsValidity {
				switch {
				case s.Src.Op == ir.OpConst && s.Src.Value == 1:
					env[s.Dst.Header] = Valid
					w.a.setValidAny[s.Dst.Header] = true
				case s.Src.Op == ir.OpConst && s.Src.Value == 0:
					env[s.Dst.Header] = Invalid
				default:
					env[s.Dst.Header] = Top
				}
			}

		case *ir.If:
			cond := Deps{}
			w.expr(&s.Cond, value.Ones(1), cond, env, UseGuard, action, table, pending)
			pending = map[int]*Def{}
			g2 := guard.clone()
			g2.union(cond)
			t2 := cloneTables(guardTabs)
			for id := range cond {
				unionTables(t2, w.fieldTables(id))
			}
			thenEnv := cloneValidity(env)
			elseEnv := cloneValidity(env)
			if h, v, ok := validityGuard(&s.Cond); ok {
				thenEnv[h] = v
				elseEnv[h] = v.negate()
			}
			thenEnv = w.walk(s.Then, thenEnv, g2, t2, action, table)
			elseEnv = w.walk(s.Else, elseEnv, g2, t2, action, table)
			env = joinValidity(thenEnv, elseEnv)

		case *ir.ApplyTable:
			pending = map[int]*Def{}
			w.applyTable(s.Table, env, guard, guardTabs, action)

		case *ir.Exit, *ir.Return:
			pending = map[int]*Def{}
		}
	}
	return env
}

// applyTable records the key uses, folds the table into every cone, and
// abstracts the effect of its actions on the dependency state.
func (w *walker) applyTable(t *ir.Table, env map[string]Validity, guard Deps, guardTabs map[string]bool, action string) {
	a := w.a
	// Key reads.
	keyDeps := Deps{}
	keyTabs := map[string]bool{}
	for _, k := range t.Keys {
		a.Uses = append(a.Uses, Use{Ord: w.ord, Field: k.Field, Kind: UseKey,
			Control: w.control, Action: action, Table: t.Name, Validity: validityOf(env, k.Field)})
		keyDeps.union(w.deps[k.Field.ID])
		unionTables(keyTabs, w.fieldTables(k.Field.ID))
	}

	// The cone: guards dominating the site plus key dependencies, joined
	// over apply sites.
	cone := a.cones[t.Name]
	if cone == nil {
		cone = &Cone{Table: t.Name, Fields: Deps{}, Tables: map[string]bool{}}
		a.cones[t.Name] = cone
	}
	cone.Fields.union(guard)
	cone.Fields.union(keyDeps)
	unionTables(cone.Tables, guardTabs, keyTabs)
	cone.Tables[t.Name] = true

	// Validity of each header at the apply site (for validity-coupled key
	// analysis), joined over sites.
	av := a.applyValidity[t.Name]
	if av == nil {
		av = cloneValidity(env)
		a.applyValidity[t.Name] = av
	} else {
		for h, v := range env {
			av[h] = Join(av[h], v)
		}
	}

	// Abstract the actions: every action (and the default) may run, so
	// every write lands guarded by the fire condition — which depends on
	// the guards, the keys, and the table's own entry choice.
	fireDeps := guard.clone()
	fireDeps.union(keyDeps)
	fireTabs := cloneTables(guardTabs)
	unionTables(fireTabs, keyTabs)
	fireTabs[t.Name] = true

	acts := make([]*ir.Action, 0, len(t.Actions)+1)
	acts = append(acts, t.Actions...)
	if t.DefaultAction != nil && !t.HasAction(t.DefaultAction) {
		acts = append(acts, t.DefaultAction)
	}
	for _, act := range acts {
		actEnv := cloneValidity(env)
		w.walk(act.Body, actEnv, fireDeps, fireTabs, act.Name, t.Name)
		// Whatever validity the action establishes only holds if the
		// entry fired: join back into the caller's environment.
		for h, v := range actEnv {
			env[h] = Join(env[h], v)
		}
	}
}

// expr accumulates the bit-granular dependencies of e (restricted to the
// result bits in mask) into out, emitting Use events for field reads.
func (w *walker) expr(e *ir.Expr, mask value.V, out Deps, env map[string]Validity, kind UseKind, action, table string, pending map[int]*Def) {
	if mask.IsZero() {
		return
	}
	switch e.Op {
	case ir.OpConst, ir.OpParam:
		// Constants and control-plane action arguments carry no input
		// field dependencies.
	case ir.OpField:
		w.a.Uses = append(w.a.Uses, Use{Ord: w.ord, Field: e.Field, Kind: kind,
			Control: w.control, Action: action, Table: table, Validity: validityOf(env, e.Field)})
		delete(pending, e.Field.ID) // the pending write is observable now
		d := w.deps[e.Field.ID]
		if m, ok := d[e.Field.ID]; ok && len(d) == 1 && m.Equal(value.Ones(e.Field.Width)) {
			// Unwritten field: the read depends on exactly the masked
			// input bits.
			out.add(e.Field.ID, mask.WithWidth(e.Field.Width))
		} else {
			out.union(d)
		}
	case ir.OpBitAnd:
		// Masking with a constant narrows the interesting bits — the
		// bit-granular payoff for `(x & 0x3F) == v`-style ACL guards.
		l, r := e.Args[0], e.Args[1]
		if r.Op == ir.OpConst {
			w.expr(l, mask.And(value.New(r.Value, e.Width)), out, env, kind, action, table, pending)
			return
		}
		if l.Op == ir.OpConst {
			w.expr(r, mask.And(value.New(l.Value, e.Width)), out, env, kind, action, table, pending)
			return
		}
		w.expr(l, mask, out, env, kind, action, table, pending)
		w.expr(r, mask, out, env, kind, action, table, pending)
	case ir.OpBitOr, ir.OpBitXor:
		w.expr(e.Args[0], mask, out, env, kind, action, table, pending)
		w.expr(e.Args[1], mask, out, env, kind, action, table, pending)
	case ir.OpBitNot:
		w.expr(e.Args[0], mask, out, env, kind, action, table, pending)
	case ir.OpShl:
		if e.Args[1].Op == ir.OpConst {
			w.expr(e.Args[0], mask.Shr(int(e.Args[1].Value)), out, env, kind, action, table, pending)
			return
		}
		w.expr(e.Args[0], value.Ones(e.Args[0].Width), out, env, kind, action, table, pending)
		w.expr(e.Args[1], value.Ones(e.Args[1].Width), out, env, kind, action, table, pending)
	case ir.OpShr:
		if e.Args[1].Op == ir.OpConst {
			w.expr(e.Args[0], mask.Shl(int(e.Args[1].Value)).WithWidth(e.Args[0].Width), out, env, kind, action, table, pending)
			return
		}
		w.expr(e.Args[0], value.Ones(e.Args[0].Width), out, env, kind, action, table, pending)
		w.expr(e.Args[1], value.Ones(e.Args[1].Width), out, env, kind, action, table, pending)
	case ir.OpAdd, ir.OpSub:
		// Carries flow upward: every bit at or below the highest
		// requested bit matters.
		m := fillLow(mask)
		w.expr(e.Args[0], m, out, env, kind, action, table, pending)
		w.expr(e.Args[1], m, out, env, kind, action, table, pending)
	case ir.OpMux:
		w.expr(e.Args[0], value.Ones(1), out, env, kind, action, table, pending)
		w.expr(e.Args[1], mask, out, env, kind, action, table, pending)
		w.expr(e.Args[2], mask, out, env, kind, action, table, pending)
	default:
		// Comparisons and logical connectives: every bit of every operand
		// can flip the result.
		for _, arg := range e.Args {
			w.expr(arg, value.Ones(arg.Width), out, env, kind, action, table, pending)
		}
	}
}

// fillLow returns a mask with every bit at or below mask's highest set
// bit.
func fillLow(mask value.V) value.V {
	for i := mask.Width - 1; i >= 0; i-- {
		if mask.Bit(i) {
			if i >= 127 {
				return value.Ones(mask.Width)
			}
			one := value.New(1, mask.Width)
			return one.Shl(i + 1).Sub(one)
		}
	}
	return mask
}

// validityGuard recognizes `h.isValid()`-shaped branch conditions and
// returns the header path plus the lattice value the then-branch
// establishes.
func validityGuard(e *ir.Expr) (header string, v Validity, ok bool) {
	switch e.Op {
	case ir.OpField:
		if e.Field.IsValidity {
			return e.Field.Header, Valid, true
		}
	case ir.OpNot:
		if h, v, ok := validityGuard(e.Args[0]); ok {
			return h, v.negate(), true
		}
	case ir.OpEq, ir.OpNe:
		f, c := e.Args[0], e.Args[1]
		if f.Op != ir.OpField {
			f, c = c, f
		}
		if f.Op == ir.OpField && f.Field.IsValidity && c.Op == ir.OpConst {
			v := Invalid
			if c.Value == 1 {
				v = Valid
			}
			if e.Op == ir.OpNe {
				v = v.negate()
			}
			return f.Field.Header, v, true
		}
	}
	return "", Top, false
}

func cloneValidity(env map[string]Validity) map[string]Validity {
	c := make(map[string]Validity, len(env))
	for k, v := range env {
		c[k] = v
	}
	return c
}

func joinValidity(a, b map[string]Validity) map[string]Validity {
	out := make(map[string]Validity, len(a))
	for h, v := range a {
		out[h] = Join(v, b[h])
	}
	for h, v := range b {
		if _, ok := a[h]; !ok {
			out[h] = Join(v, Top)
		}
	}
	return out
}
