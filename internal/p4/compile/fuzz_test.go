package compile_test

import (
	"sync"
	"testing"

	"switchv/internal/bmv2"
	"switchv/internal/p4/compile"
	"switchv/internal/p4/pdpi"
	"switchv/internal/testutil"
	"switchv/models"
)

// enginePair is a lazily built (interpreter, compiled) pair over one
// model × fixture-set store, shared across fuzz executions. Engines are
// single-goroutine, so runs are serialized under pairMu.
type enginePair struct {
	interp bmv2.Simulator
	comp   bmv2.Simulator
}

var (
	pairMu sync.Mutex
	pairs  = map[string]*enginePair{}
)

func getPairLocked(t *testing.T, model string, fi int) *enginePair {
	t.Helper()
	fx := fixtureSets[fi]
	key := model + "/" + fx.name
	if p, ok := pairs[key]; ok {
		return p
	}
	prog := models.MustLoad(model)
	store := pdpi.NewStore()
	for _, fn := range fx.fns {
		fn(prog, store)
	}
	interp, err := bmv2.New(prog, store)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := compile.New(prog, store)
	if err != nil {
		t.Fatal(err)
	}
	p := &enginePair{interp: interp, comp: comp}
	pairs[key] = p
	return p
}

// FuzzDifferentialEngines feeds arbitrary frames to the interpreter and
// the compiled pipeline over every embedded model and fixture store,
// asserting identical behavior sets (or identical parse failures). The
// seeds span all models/* programs, all testutil fixture sets, and every
// corpus frame, so mutation starts from each parser path.
func FuzzDifferentialEngines(f *testing.F) {
	seeds := corpus()
	for mi := range models.Names() {
		for fi := range fixtureSets {
			for _, pkt := range seeds {
				f.Add(byte(mi), byte(fi), uint16(1), pkt)
			}
		}
	}
	f.Fuzz(func(t *testing.T, mi, fi byte, port uint16, data []byte) {
		if len(data) > 1500 {
			return
		}
		names := models.Names()
		model := names[int(mi)%len(names)]
		idx := int(fi) % len(fixtureSets)
		if fixtureSets[idx].wanOnly && model != "wan" {
			idx = 0
		}
		pairMu.Lock()
		defer pairMu.Unlock()
		p := getPairLocked(t, model, idx)
		compareInput(t, p.interp, p.comp, bmv2.Input{Port: port, Packet: data})
	})
}

// TestFuzzSeedPortsAndMACs widens the fuzz seeds' fixed port with a
// quick sweep so the seed-only CI run still varies ingress ports.
func TestFuzzSeedPortsAndMACs(t *testing.T) {
	pairMu.Lock()
	defer pairMu.Unlock()
	p := getPairLocked(t, "middleblock", 1)
	for _, port := range []uint16{0, 1, 2, 3, 255, 511} {
		compareInput(t, p.interp, p.comp, bmv2.Input{Port: port, Packet: testutil.IPv4UDP("10.200.3.4", 64, 80)})
	}
}
