// Package compile lowers the P4 IR to closure trees at program-load
// time, replacing per-packet IR walking with direct calls: every
// statement and expression becomes a Go closure over pre-resolved field
// IDs, every table entry a pre-masked match row in precedence order, and
// the parser/deparser a plan of pre-looked-up field references over
// reusable buffers. The result implements the same bmv2.Simulator
// contract as the interpreter and is differentially tested to be
// outcome-identical, traces included.
//
// A Pipeline is compiled once per (program, entries) generation: table
// entries are compiled lazily against pdpi.Store version counters, so a
// store mutation recompiles only the affected tables on the next Run
// (one atomic generation load per packet in the steady state).
//
// Like bmv2.Interp, a Pipeline is single-goroutine: concurrent callers
// build one Pipeline each (they may share the store).
package compile

import (
	"fmt"

	"switchv/internal/bmv2"
	"switchv/internal/p4/ir"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
)

// signal is the control-flow result of a compiled statement, replacing
// the interpreter's panic/recover unwinding.
type signal uint8

const (
	sigNone   signal = iota
	sigReturn        // ir.Return: unwind to the enclosing control boundary
	sigExit          // ir.Exit: unwind the whole pipeline
)

// exec is the per-run mutable state threaded through compiled closures.
type exec struct {
	fs    []value.V
	args  []value.V // current action frame (nil outside actions)
	out   *bmv2.Outcome
	trace []uint32 // hit-registry IDs, reused scratch; interned per run
}

type (
	stmtFn func(m *exec) signal
	exprFn func(m *exec) value.V
)

// arenas hands out per-run output memory (outcomes, trace slices,
// packet bytes) from forward-only chunks: one allocation per chunk
// instead of three per packet. Handed-out memory is never reused —
// the cursor only moves forward and Reset does not rewind it — so
// outcomes retained by callers stay valid indefinitely.
type arenas struct {
	outs  []bmv2.Outcome
	bytes []byte
}

func (a *arenas) outcome() *bmv2.Outcome {
	if len(a.outs) == 0 {
		a.outs = make([]bmv2.Outcome, 64)
	}
	o := &a.outs[0]
	a.outs = a.outs[1:]
	return o
}

// byteSlice copies src into arena memory, capped so a caller append
// reallocates instead of writing into the next run's slice.
func (a *arenas) byteSlice(src []byte) []byte {
	n := len(src)
	if n > len(a.bytes) {
		c := 4096
		if n > c {
			c = n
		}
		a.bytes = make([]byte, c)
	}
	s := a.bytes[:n:n]
	a.bytes = a.bytes[n:]
	copy(s, src)
	return s
}

// runSeq executes a compiled statement list, stopping on the first
// non-trivial control-flow signal.
func runSeq(m *exec, body []stmtFn) signal {
	for _, f := range body {
		if s := f(m); s != sigNone {
			return s
		}
	}
	return sigNone
}

// Pipeline is a compiled P4 pipeline over a program and an entry store.
// It implements bmv2.Simulator.
type Pipeline struct {
	prog  *ir.Program
	store *pdpi.Store

	controls [][]stmtFn

	// tables in program declaration order, for deterministic sync.
	tables []*compiledTable

	codec *codec

	// rr holds the selector round-robin counters, keyed like the
	// interpreter's (per entry key) so behavior-set enumeration matches.
	rr map[string]int

	// gen is the store generation the compiled tables were last synced
	// at; builds counts table (re)compilations, for invalidation tests.
	gen    uint64
	builds int

	// applies counts ApplyTable statements: the per-run trace bound.
	applies int

	// hitReg assigns every compiled trace record a small ID; runs
	// collect IDs (pointer-free, no write barriers) and traceCache
	// interns each distinct ID sequence as one shared materialized
	// []TableHit, so the steady state allocates no trace memory per
	// packet. Callers treat Outcome.Trace as read-only, like the
	// interpreter's. Rebuilds register fresh IDs and clear the cache.
	hitReg     []bmv2.TableHit
	traceCache map[string][]bmv2.TableHit
	traceKey   []byte

	// actionBodies shares compiled action bodies across entries.
	actionBodies map[*ir.Action][]stmtFn

	// Pre-resolved synthetic fields (IDs into the field space).
	drop, punt, copyCPU, mirror, mirrorSession int
	ingress, egress                            int
	ingressW                                   int
	egPort, egPortW                            int // -1 when the model lacks egress_port

	// Reusable per-run scratch: the field space and its zero template.
	fs, zero []value.V
	m        exec
	ar       arenas
}

// Pipeline implements the engine contract.
var _ bmv2.Simulator = (*Pipeline)(nil)

// New compiles the program's controls to closure trees and binds them to
// the store. The store is used by reference: mutations between runs are
// picked up via its version counters, recompiling only changed tables.
func New(prog *ir.Program, store *pdpi.Store) (*Pipeline, error) {
	p := &Pipeline{
		prog:         prog,
		store:        store,
		rr:           map[string]int{},
		actionBodies: map[*ir.Action][]stmtFn{},
		egPort:       -1,
		traceCache:   map[string][]bmv2.TableHit{},
	}
	get := func(name string) (int, error) {
		f, ok := prog.FieldByName(name)
		if !ok {
			return 0, fmt.Errorf("compile: program lacks field %s", name)
		}
		return f.ID, nil
	}
	var err error
	if p.drop, err = get(ir.FieldDrop); err != nil {
		return nil, err
	}
	if p.punt, err = get(ir.FieldPunt); err != nil {
		return nil, err
	}
	if p.copyCPU, err = get(ir.FieldCopy); err != nil {
		return nil, err
	}
	if p.mirror, err = get(ir.FieldMirror); err != nil {
		return nil, err
	}
	if p.mirrorSession, err = get(ir.FieldMirrorSession); err != nil {
		return nil, err
	}
	fIn, ok := prog.FieldByName(ir.FieldIngressPort)
	if !ok {
		return nil, fmt.Errorf("compile: program lacks standard metadata")
	}
	p.ingress, p.ingressW = fIn.ID, fIn.Width
	fEg, ok := prog.FieldByName(ir.FieldEgressSpec)
	if !ok {
		return nil, fmt.Errorf("compile: program lacks standard metadata")
	}
	p.egress = fEg.ID
	if f, ok := prog.FieldByName("standard_metadata.egress_port"); ok {
		p.egPort, p.egPortW = f.ID, f.Width
	}

	p.codec = newCodec(prog)

	// Compile the controls. Table slots are created on first reference
	// and filled by sync below.
	slots := map[*ir.Table]*compiledTable{}
	for _, ctrl := range prog.Controls {
		p.controls = append(p.controls, p.compileStmts(ctrl.Body, slots))
	}

	// The zero template mirrors bmv2.newFieldSpace: a zero value at each
	// field's declared width. Runs copy it instead of re-deriving widths.
	p.zero = make([]value.V, len(prog.Fields))
	for i, f := range prog.Fields {
		p.zero[i] = value.Zero(f.Width)
	}
	p.fs = make([]value.V, len(p.zero))
	p.m.fs = p.fs

	p.sync()
	return p, nil
}

// Program returns the model being simulated.
func (p *Pipeline) Program() *ir.Program { return p.prog }

// Store returns the entry store.
func (p *Pipeline) Store() *pdpi.Store { return p.store }

// Reset restores the pipeline to its freshly constructed state by
// clearing the selector round-robin counters; compiled code and tables
// are immutable run state and stay.
func (p *Pipeline) Reset() {
	clear(p.rr)
}

// Builds returns the number of table compilations performed so far,
// including the initial ones; the invalidation tests use it to assert
// that churn on one table does not recompile the others.
func (p *Pipeline) Builds() int { return p.builds }

// sync recompiles tables whose store version moved since the last run.
// In the steady state it is one atomic load.
func (p *Pipeline) sync() {
	gen := p.store.Generation()
	if gen == p.gen {
		return
	}
	for _, ct := range p.tables {
		if v := p.store.TableVersion(ct.name); v != ct.version {
			p.buildTable(ct)
			ct.version = v
		}
	}
	p.gen = gen
}

// Run traverses one packet through the compiled pipeline. The outcome is
// bit-identical to bmv2.Interp.Run on the same program, store and input.
func (p *Pipeline) Run(in bmv2.Input) (*bmv2.Outcome, error) {
	p.sync()
	fs := p.fs
	copy(fs, p.zero)
	payload, err := p.codec.parse(fs, in.Packet)
	if err != nil {
		return nil, fmt.Errorf("compile: parse: %w", err)
	}
	fs[p.ingress] = value.New(uint64(in.Port), p.ingressW)

	out := p.ar.outcome()
	m := &p.m
	m.args, m.out = nil, out
	m.trace = m.trace[:0]
	for i, body := range p.controls {
		if i > 0 && p.egPort >= 0 {
			// Between pipeline stages the chosen egress becomes visible as
			// egress_port (simple_switch semantics).
			fs[p.egPort] = fs[p.egress].WithWidth(p.egPortW)
		}
		if runSeq(m, body) == sigExit {
			break
		}
	}

	if len(m.trace) > 0 {
		out.Trace = p.internTrace(m.trace)
	}

	punt := !fs[p.punt].IsZero()
	drop := !fs[p.drop].IsZero()
	out.CopyToCPU = !fs[p.copyCPU].IsZero()
	// Pure drops carry no packet, so skip the deparse outright. Safe
	// because deparse only fails on out-of-range VLAN fields, which
	// width-masked field values cannot produce — so the interpreter,
	// which always deparses, cannot error where we succeed.
	var data []byte
	if punt || !drop {
		raw, err := p.codec.deparse(fs, payload)
		if err != nil {
			return nil, fmt.Errorf("compile: deparse: %w", err)
		}
		// raw aliases the codec's reusable buffer; copy it out since the
		// outcome retains it.
		data = p.ar.byteSlice(raw)
	}
	switch {
	case punt:
		out.Disposition = bmv2.Punted
		out.Packet = data
	case drop:
		out.Disposition = bmv2.Dropped
	default:
		out.Disposition = bmv2.Forwarded
		out.EgressPort = uint16(fs[p.egress].Uint64())
		out.Packet = data
	}
	if !fs[p.mirror].IsZero() && out.Disposition != bmv2.Dropped {
		out.Mirrors = append(out.Mirrors, bmv2.MirrorCopy{
			Session: uint16(fs[p.mirrorSession].Uint64()),
			Packet:  data,
		})
	}
	return out, nil
}

// regHit registers a trace record and returns its ID.
func (p *Pipeline) regHit(h bmv2.TableHit) uint32 {
	p.hitReg = append(p.hitReg, h)
	return uint32(len(p.hitReg) - 1)
}

// internTrace returns the shared materialized trace for an ID sequence,
// building it on first sight. The map probe is allocation-free.
func (p *Pipeline) internTrace(ids []uint32) []bmv2.TableHit {
	key := p.traceKey[:0]
	for _, id := range ids {
		key = append(key, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
	}
	p.traceKey = key
	if tr, ok := p.traceCache[string(key)]; ok {
		return tr
	}
	tr := make([]bmv2.TableHit, len(ids))
	for i, id := range ids {
		tr[i] = p.hitReg[id]
	}
	p.traceCache[string(key)] = tr
	return tr
}

// BehaviorSet runs the packet repeatedly until an outcome signature
// repeats, returning the set of distinct behaviors — the same closure
// loop as the interpreter's (round-robin selection implies repetition is
// closure).
func (p *Pipeline) BehaviorSet(in bmv2.Input, maxIter int) ([]*bmv2.Outcome, error) {
	seen := map[string]bool{}
	var out []*bmv2.Outcome
	for i := 0; i < maxIter; i++ {
		o, err := p.Run(in)
		if err != nil {
			return nil, err
		}
		sig := o.Signature()
		if seen[sig] {
			return out, nil
		}
		seen[sig] = true
		out = append(out, o)
	}
	return out, nil
}

// compileStmts lowers a statement list, registering table slots for
// every ApplyTable encountered.
func (p *Pipeline) compileStmts(stmts []ir.Stmt, slots map[*ir.Table]*compiledTable) []stmtFn {
	out := make([]stmtFn, 0, len(stmts))
	for _, st := range stmts {
		out = append(out, p.compileStmt(st, slots))
	}
	return out
}

func (p *Pipeline) compileStmt(st ir.Stmt, slots map[*ir.Table]*compiledTable) stmtFn {
	switch x := st.(type) {
	case *ir.Assign:
		dst, w := x.Dst.ID, x.Dst.Width
		// Constant and register-copy assignments skip the generic
		// expression call (they are the bulk of action bodies).
		switch x.Src.Op {
		case ir.OpConst:
			v := value.New(x.Src.Value, x.Src.Width).WithWidth(w)
			return func(m *exec) signal {
				m.fs[dst] = v
				return sigNone
			}
		case ir.OpField:
			sid := x.Src.Field.ID
			if x.Src.Field.Width == w {
				return func(m *exec) signal {
					m.fs[dst] = m.fs[sid]
					return sigNone
				}
			}
			return func(m *exec) signal {
				m.fs[dst] = m.fs[sid].WithWidth(w)
				return sigNone
			}
		case ir.OpParam:
			idx := x.Src.Param
			return func(m *exec) signal {
				m.fs[dst] = m.args[idx].WithWidth(w)
				return sigNone
			}
		}
		src := p.compileExpr(&x.Src)
		return func(m *exec) signal {
			m.fs[dst] = src(m).WithWidth(w)
			return sigNone
		}
	case *ir.If:
		cond := p.compilePred(&x.Cond)
		then := p.compileStmts(x.Then, slots)
		if len(x.Else) == 0 {
			return func(m *exec) signal {
				if cond(m) {
					return runSeq(m, then)
				}
				return sigNone
			}
		}
		els := p.compileStmts(x.Else, slots)
		return func(m *exec) signal {
			if cond(m) {
				return runSeq(m, then)
			}
			return runSeq(m, els)
		}
	case *ir.ApplyTable:
		ct := p.slotFor(x.Table, slots)
		p.applies++
		return func(m *exec) signal {
			return p.applyTable(m, ct)
		}
	case *ir.Exit:
		return func(m *exec) signal { return sigExit }
	case *ir.Return:
		return func(m *exec) signal { return sigReturn }
	default:
		panic(fmt.Sprintf("compile: unknown statement %T", st))
	}
}

// actionBody returns the shared compiled body of an action. Bodies read
// their arguments through the exec frame, so one compiled body serves
// every entry invoking the action.
func (p *Pipeline) actionBody(a *ir.Action) []stmtFn {
	if body, ok := p.actionBodies[a]; ok {
		return body
	}
	body := p.compileStmts(a.Body, nil)
	p.actionBodies[a] = body
	return body
}

// invoke runs an action body under its argument frame, restoring the
// caller's frame afterwards.
func (p *Pipeline) invoke(m *exec, body []stmtFn, args []value.V) signal {
	saved := m.args
	m.args = args
	s := runSeq(m, body)
	m.args = saved
	return s
}

// Boolean result values, shared by all compiled predicates.
var (
	vTrue  = value.New(1, 1)
	vFalse = value.Zero(1)
)

func boolV(b bool) value.V {
	if b {
		return vTrue
	}
	return vFalse
}

// compilePred lowers an expression used as a branch condition to a bool
// closure, skipping the value.V boxing of the generic path. Evaluation
// order and short-circuiting match compileExpr exactly.
func (p *Pipeline) compilePred(e *ir.Expr) func(m *exec) bool {
	switch e.Op {
	case ir.OpField:
		id := e.Field.ID
		return func(m *exec) bool { return !m.fs[id].IsZero() }
	case ir.OpNot:
		inner := p.compilePred(e.Args[0])
		return func(m *exec) bool { return !inner(m) }
	case ir.OpAnd:
		a := p.compilePred(e.Args[0])
		b := p.compilePred(e.Args[1])
		return func(m *exec) bool { return a(m) && b(m) }
	case ir.OpOr:
		a := p.compilePred(e.Args[0])
		b := p.compilePred(e.Args[1])
		return func(m *exec) bool { return a(m) || b(m) }
	case ir.OpEq:
		a := p.compileExpr(e.Args[0])
		b := p.compileExpr(e.Args[1])
		return func(m *exec) bool { return a(m).Equal(b(m)) }
	case ir.OpNe:
		a := p.compileExpr(e.Args[0])
		b := p.compileExpr(e.Args[1])
		return func(m *exec) bool { return !a(m).Equal(b(m)) }
	case ir.OpLt:
		a := p.compileExpr(e.Args[0])
		b := p.compileExpr(e.Args[1])
		return func(m *exec) bool { return a(m).Less(b(m)) }
	case ir.OpLe:
		a := p.compileExpr(e.Args[0])
		b := p.compileExpr(e.Args[1])
		return func(m *exec) bool { return !b(m).Less(a(m)) }
	case ir.OpGt:
		a := p.compileExpr(e.Args[0])
		b := p.compileExpr(e.Args[1])
		return func(m *exec) bool { return b(m).Less(a(m)) }
	case ir.OpGe:
		a := p.compileExpr(e.Args[0])
		b := p.compileExpr(e.Args[1])
		return func(m *exec) bool { return !a(m).Less(b(m)) }
	default:
		v := p.compileExpr(e)
		return func(m *exec) bool { return !v(m).IsZero() }
	}
}

// compileExpr lowers an expression tree to a closure. The cases mirror
// bmv2.Interp.eval exactly, including short-circuit evaluation and the
// lazy mux arms.
func (p *Pipeline) compileExpr(e *ir.Expr) exprFn {
	switch e.Op {
	case ir.OpConst:
		v := value.New(e.Value, e.Width)
		return func(m *exec) value.V { return v }
	case ir.OpField:
		id := e.Field.ID
		return func(m *exec) value.V { return m.fs[id] }
	case ir.OpParam:
		idx := e.Param
		return func(m *exec) value.V { return m.args[idx] }
	}
	a := p.compileExpr(e.Args[0])
	switch e.Op {
	case ir.OpNot:
		return func(m *exec) value.V { return boolV(a(m).IsZero()) }
	case ir.OpBitNot:
		return func(m *exec) value.V { return a(m).Not() }
	case ir.OpMux:
		t := p.compileExpr(e.Args[1])
		f := p.compileExpr(e.Args[2])
		return func(m *exec) value.V {
			if !a(m).IsZero() {
				return t(m)
			}
			return f(m)
		}
	case ir.OpAnd:
		b := p.compileExpr(e.Args[1])
		return func(m *exec) value.V {
			if a(m).IsZero() {
				return vFalse
			}
			return boolV(!b(m).IsZero())
		}
	case ir.OpOr:
		b := p.compileExpr(e.Args[1])
		return func(m *exec) value.V {
			if !a(m).IsZero() {
				return vTrue
			}
			return boolV(!b(m).IsZero())
		}
	}
	b := p.compileExpr(e.Args[1])
	switch e.Op {
	case ir.OpEq:
		return func(m *exec) value.V { return boolV(a(m).Equal(b(m))) }
	case ir.OpNe:
		return func(m *exec) value.V { return boolV(!a(m).Equal(b(m))) }
	case ir.OpLt:
		return func(m *exec) value.V { return boolV(a(m).Less(b(m))) }
	case ir.OpLe:
		return func(m *exec) value.V { return boolV(!b(m).Less(a(m))) }
	case ir.OpGt:
		return func(m *exec) value.V { return boolV(b(m).Less(a(m))) }
	case ir.OpGe:
		return func(m *exec) value.V { return boolV(!a(m).Less(b(m))) }
	case ir.OpBitAnd:
		return func(m *exec) value.V { return a(m).And(b(m)) }
	case ir.OpBitOr:
		return func(m *exec) value.V { return a(m).Or(b(m)) }
	case ir.OpBitXor:
		return func(m *exec) value.V { return a(m).Xor(b(m)) }
	case ir.OpAdd:
		return func(m *exec) value.V { return a(m).Add(b(m)) }
	case ir.OpSub:
		return func(m *exec) value.V { return a(m).Sub(b(m)) }
	case ir.OpShl:
		return func(m *exec) value.V { return a(m).Shl(int(b(m).Uint64())) }
	case ir.OpShr:
		return func(m *exec) value.V { return a(m).Shr(int(b(m).Uint64())) }
	default:
		panic(fmt.Sprintf("compile: unknown op %d", e.Op))
	}
}
