package compile

import (
	"encoding/binary"
	"sort"

	"switchv/internal/bmv2"
	"switchv/internal/p4/ir"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
)

// compiledTable is a table slot referenced by compiled ApplyTable
// closures. The static parts (keys, default action) are fixed at program
// compile time; the entry rows are rebuilt whenever the store's version
// counter for the table moves.
type compiledTable struct {
	t    *ir.Table
	name string

	// version is the store's TableVersion the rows were built at.
	version uint64

	needsPriority bool
	lpmKey        string // name of the last LPM key, "" if none
	selector      bool

	// keyIDs/keyBuf drive the exact-map lookup: field IDs in key order
	// and a reusable encode buffer (16 bytes per key).
	keyIDs []int
	keyBuf []byte

	// useMap selects hash lookup over the precedence scan. It is only
	// set for pure-exact tables whose entries all bind every key
	// exactly; anything unusual falls back to the ordered scan, which
	// replicates the interpreter's insertion-order semantics verbatim.
	useMap  bool
	exact   map[string]*compiledEntry
	entries []*compiledEntry // in precedence order (scan: first match wins)

	// useDense replaces the hash map for single-key exact tables of
	// width <= denseMaxBits with a direct-indexed array.
	useDense   bool
	dense      []*compiledEntry
	denseField int

	// useLPM selects grouped hash lookup for LPM tables: one map per
	// distinct prefix length (longest first), keyed by the exact keys
	// plus the masked LPM value, then a tail of rows that omit the LPM
	// key (they match any address, lowest precedence). Only set when
	// every entry binds every non-LPM key exactly; anything unusual
	// falls back to the ordered scan.
	useLPM    bool
	lpmField  int // field ID of the LPM key
	lpmSlot   int // index of the LPM key in the key order
	lpmGroups []lpmGroup
	lpmTail   []*compiledEntry

	// Scan dispatch: each level hash-groups the rows conditioned on one
	// (field, mask) by their wanted value, so a scan visits one bucket
	// per level plus the residual rows instead of every row; merging by
	// row sequence keeps first-match-wins precedence. The grouping
	// condition is implied by bucket membership and stripped from the
	// bucketed rows.
	useDisp    bool
	dispLevels []dispLevel
	dispBuf    [16]byte
	residual   []*compiledEntry
	cands      [][]*compiledEntry // lookup scratch

	defaultHitID uint32
	defaultBody  []stmtFn
	defaultArgs  []value.V
}

// dispLevel is one hash-grouping level of the scan dispatch.
type dispLevel struct {
	field   int
	masked  bool
	mask    value.V
	buckets map[string][]*compiledEntry
}

// lpmGroup is one prefix length's hash bucket in an LPM table.
type lpmGroup struct {
	mask value.V
	m    map[string]*compiledEntry
}

// matchCond is one precompiled key condition of an entry. Masks and
// wanted values are folded at build time so the per-packet work is at
// most one And and one Equal.
type matchCond struct {
	field  int
	masked bool
	mask   value.V
	want   value.V
}

// compiledEntry is one table entry with its match rows, trace record and
// action closure resolved ahead of time.
type compiledEntry struct {
	conds []matchCond
	// never marks entries whose matches reference unknown keys; the
	// interpreter treats them as matching nothing.
	never bool

	// priority / prefixLen order the precedence sort (see buildTable);
	// seq is the row's index in the sorted order, for dispatch merging.
	priority  int32
	prefixLen int
	seq       int

	// keyVals holds the match values in table-key order for entries
	// eligible for a hash map (nil otherwise): exact values, with the
	// LPM key (if any) pre-masked. lpmMask is that key's prefix mask.
	keyVals []value.V
	lpmMask value.V

	hitID uint32
	body  []stmtFn
	args  []value.V

	// Selector tables: one body/args/hit per one-shot member, cycled
	// round-robin under rrKey.
	rrKey        string
	memberHitIDs []uint32
	memberBody   [][]stmtFn
	memberArgs   [][]value.V
}

// slotFor returns (creating on first reference) the table slot for t,
// with all store-independent parts compiled.
func (p *Pipeline) slotFor(t *ir.Table, slots map[*ir.Table]*compiledTable) *compiledTable {
	if ct, ok := slots[t]; ok {
		return ct
	}
	ct := &compiledTable{
		t:             t,
		name:          t.Name,
		selector:      t.IsSelector,
		needsPriority: pdpi.NeedsPriority(t),
	}
	for i, k := range t.Keys {
		ct.keyIDs = append(ct.keyIDs, k.Field.ID)
		if k.Match == ir.MatchLPM {
			ct.lpmKey = k.Name
			ct.lpmField = k.Field.ID
			ct.lpmSlot = i
		}
	}
	ct.keyBuf = make([]byte, 16*len(t.Keys))
	ct.defaultHitID = p.regHit(bmv2.TableHit{Table: t.Name, Action: t.DefaultAction.Name})
	ct.defaultBody = p.actionBody(t.DefaultAction)
	ct.defaultArgs = make([]value.V, len(t.DefaultAction.Params))
	for i, prm := range t.DefaultAction.Params {
		var arg uint64
		if i < len(t.DefaultActionArgs) {
			arg = t.DefaultActionArgs[i]
		}
		ct.defaultArgs[i] = value.New(arg, prm.Width)
	}
	slots[t] = ct
	p.tables = append(p.tables, ct)
	return ct
}

// buildTable recompiles a table's entry rows from the store.
func (p *Pipeline) buildTable(ct *compiledTable) {
	p.builds++
	entries := p.store.Entries(ct.name)
	rows := make([]*compiledEntry, 0, len(entries))
	for _, e := range entries {
		rows = append(rows, p.compileEntry(ct, e))
	}
	// Pack all rows' conds into one contiguous backing array: scanned
	// tables walk them for every packet, and locality dominates that
	// loop once the per-cond work is a masked compare.
	total := 0
	for _, r := range rows {
		total += len(r.conds)
	}
	packed := make([]matchCond, 0, total)
	for _, r := range rows {
		start := len(packed)
		packed = append(packed, r.conds...)
		r.conds = packed[start:len(packed):len(packed)]
	}
	switch {
	case ct.needsPriority:
		// Highest priority first; the stable sort keeps installation
		// order within a priority, so the first matching row is exactly
		// the interpreter's strict-greater winner.
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].priority > rows[j].priority })
		ct.useMap, ct.exact, ct.entries = false, nil, rows
		ct.buildDispatch(rows)
	case ct.lpmKey != "":
		// Longest prefix first; omitted keys (prefixLen -1) sort last.
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].prefixLen > rows[j].prefixLen })
		ct.buildLPM(rows)
	default:
		// Pure-exact table: hash-map lookup when every row binds every
		// key exactly. The first row wins numeric-key collisions (two
		// store keys can differ only in declared width), matching the
		// insertion-order scan.
		useMap := true
		for _, r := range rows {
			if r.keyVals == nil {
				useMap = false
				break
			}
		}
		if !useMap {
			ct.useMap, ct.exact, ct.entries = false, nil, rows
			return
		}
		m := make(map[string]*compiledEntry, len(rows))
		for _, r := range rows {
			k := encodeKey(ct.keyBuf, r.keyVals)
			if _, dup := m[k]; !dup {
				m[k] = r
			}
		}
		ct.useMap, ct.exact, ct.entries = true, m, nil
	}
}

// denseMaxBits bounds the direct-indexed table width: 12 bits is a
// 4096-slot (32KB) array, covering the 10-bit SONiC-style ID tables.
const denseMaxBits = 12

// buildDense installs a single-key exact table as a direct-indexed
// array when the key is narrow enough; reports whether it applied.
// The first row wins numeric collisions, like the map.
func (ct *compiledTable) buildDense(rows []*compiledEntry) bool {
	if len(ct.t.Keys) != 1 || ct.t.Keys[0].Field.Width > denseMaxBits {
		return false
	}
	w := ct.t.Keys[0].Field.Width
	size := uint64(1) << uint(w)
	for _, r := range rows {
		// Entries are width-masked on insert, but a differently-declared
		// key width could exceed the field's range; fall back if so.
		if r.keyVals[0].Hi != 0 || r.keyVals[0].Lo >= size {
			return false
		}
	}
	dense := make([]*compiledEntry, size)
	for _, r := range rows {
		if idx := r.keyVals[0].Lo; dense[idx] == nil {
			dense[idx] = r
		}
	}
	ct.useDense, ct.dense, ct.denseField = true, dense, ct.t.Keys[0].Field.ID
	return true
}

// dispatchMinRows gates the scan dispatch: below it, scanning the rows
// outright is cheaper than hashing the dispatch key.
const dispatchMinRows = 8

// buildDispatch turns an ordered scan into hash-grouped levels: pick
// the (field, mask) condition shared by the most rows, bucket those
// rows by their wanted value (stripping the now-implied condition),
// and repeat on the remainder until no condition covers two rows. A
// lookup probes one bucket per level and scans only the residual; a
// row in a non-matching bucket could not have matched, and merging by
// row sequence reproduces the full scan's precedence exactly.
func (ct *compiledTable) buildDispatch(rows []*compiledEntry) {
	ct.useDisp, ct.dispLevels, ct.residual = false, nil, nil
	input := make([]*compiledEntry, 0, len(rows))
	for i, r := range rows {
		r.seq = i
		if !r.never {
			input = append(input, r)
		}
	}
	if len(input) < dispatchMinRows {
		return
	}
	ct.useDisp = true
	type levelKey struct {
		field  int
		masked bool
		mask   value.V
	}
	less := func(a, b levelKey) bool {
		if a.field != b.field {
			return a.field < b.field
		}
		if a.masked != b.masked {
			return !a.masked
		}
		if a.mask.Hi != b.mask.Hi {
			return a.mask.Hi < b.mask.Hi
		}
		return a.mask.Lo < b.mask.Lo
	}
	var buf [16]byte
	for {
		counts := map[levelKey]int{}
		for _, r := range input {
			for i := range r.conds {
				c := &r.conds[i]
				counts[levelKey{c.field, c.masked, c.mask}]++
			}
		}
		// Deterministic pick: most rows, smallest key on ties. A level
		// must cover at least two rows to beat scanning them.
		var best levelKey
		bestN, found := 1, false
		for k, n := range counts {
			if n > bestN || (n == bestN && found && less(k, best)) {
				best, bestN, found = k, n, true
			}
		}
		if !found {
			break
		}
		lvl := dispLevel{field: best.field, masked: best.masked, mask: best.mask,
			buckets: map[string][]*compiledEntry{}}
		var rest []*compiledEntry
		for _, r := range input {
			idx := -1
			for i := range r.conds {
				c := &r.conds[i]
				if c.field == best.field && c.masked == best.masked && c.mask == best.mask {
					idx = i
					break
				}
			}
			if idx < 0 {
				rest = append(rest, r)
				continue
			}
			c := r.conds[idx]
			binary.BigEndian.PutUint64(buf[:], c.want.Hi)
			binary.BigEndian.PutUint64(buf[8:], c.want.Lo)
			k := string(buf[:])
			lvl.buckets[k] = append(lvl.buckets[k], r)
			// Bucket membership implies this condition; drop it.
			nc := make([]matchCond, 0, len(r.conds)-1)
			nc = append(nc, r.conds[:idx]...)
			nc = append(nc, r.conds[idx+1:]...)
			r.conds = nc
		}
		ct.dispLevels = append(ct.dispLevels, lvl)
		input = rest
	}
	ct.residual = input
	ct.cands = make([][]*compiledEntry, 0, len(ct.dispLevels)+1)
}

// buildLPM installs an LPM table's rows as per-prefix-length hash
// groups (longest first) plus a scanned tail of rows that omit the LPM
// key, turning lookup from O(entries) into O(distinct prefix lengths).
// If any prefix-bearing row is unhashable (an omitted exact key matches
// every value), the whole table falls back to the precedence scan.
func (ct *compiledTable) buildLPM(rows []*compiledEntry) {
	ct.useMap, ct.exact = false, nil
	for _, r := range rows {
		if !r.never && r.prefixLen >= 0 && r.keyVals == nil {
			ct.useLPM, ct.lpmGroups, ct.lpmTail = false, nil, nil
			ct.entries = rows
			return
		}
	}
	var groups []lpmGroup
	var tail []*compiledEntry
	lastLen := -2
	for _, r := range rows {
		if r.never {
			continue
		}
		if r.prefixLen < 0 {
			tail = append(tail, r)
			continue
		}
		if r.prefixLen != lastLen {
			groups = append(groups, lpmGroup{mask: r.lpmMask, m: map[string]*compiledEntry{}})
			lastLen = r.prefixLen
		}
		g := &groups[len(groups)-1]
		k := encodeKey(ct.keyBuf, r.keyVals)
		// First row wins collisions, matching the stable-scan order.
		if _, dup := g.m[k]; !dup {
			g.m[k] = r
		}
	}
	ct.useLPM, ct.lpmGroups, ct.lpmTail, ct.entries = true, groups, tail, nil
}

// encodeKey renders values into buf and returns them as a (fresh) string
// key; lookups reuse buf and convert in-place for the no-alloc map read.
func encodeKey(buf []byte, vals []value.V) string {
	for i, v := range vals {
		binary.BigEndian.PutUint64(buf[i*16:], v.Hi)
		binary.BigEndian.PutUint64(buf[i*16+8:], v.Lo)
	}
	return string(buf[:len(vals)*16])
}

// compileEntry lowers one store entry to a row.
func (p *Pipeline) compileEntry(ct *compiledTable, e *pdpi.Entry) *compiledEntry {
	t := ct.t
	row := &compiledEntry{priority: e.Priority, prefixLen: -1}
	entryKey := e.Key()

	for _, m := range e.Matches {
		k, ok := t.KeyByName(m.Key)
		if !ok {
			row.never = true
			continue
		}
		c := matchCond{field: k.Field.ID}
		switch m.Kind {
		case ir.MatchExact, ir.MatchOptional:
			c.want = m.Value
		case ir.MatchLPM:
			c.masked = true
			c.mask = value.PrefixMask(m.PrefixLen, k.Field.Width)
			c.want = m.Value.And(c.mask)
		case ir.MatchTernary:
			c.masked = true
			c.mask = m.Mask
			c.want = m.Value
			// fv&mask can never produce bits outside the mask, so a want
			// with such bits never matches.
			if !m.Value.And(m.Mask).Equal(m.Value) {
				row.never = true
			}
		}
		if c.masked {
			// Field values are stored width-masked, so a full-width mask
			// is an identity: compare directly. A zero mask (with an
			// in-mask want, checked above) accepts everything.
			if c.mask.Equal(value.Ones(k.Field.Width)) {
				c.masked = false
			} else if c.mask.IsZero() {
				continue
			}
		}
		row.conds = append(row.conds, c)
	}
	if ct.lpmKey != "" {
		if m, ok := e.Match(ct.lpmKey); ok {
			row.prefixLen = m.PrefixLen
		}
	}

	// Hash-map eligibility: every table key bound exactly once, exact
	// or optional kind, no stray matches.
	if !ct.needsPriority && ct.lpmKey == "" && !row.never && len(e.Matches) == len(t.Keys) {
		vals := make([]value.V, 0, len(t.Keys))
		for _, k := range t.Keys {
			m, ok := e.Match(k.Name)
			if !ok || (m.Kind != ir.MatchExact && m.Kind != ir.MatchOptional) {
				vals = nil
				break
			}
			vals = append(vals, m.Value)
		}
		row.keyVals = vals
	}

	// LPM-group eligibility: every key bound, exact keys exactly, the
	// LPM key pre-masked at its prefix length.
	if ct.lpmKey != "" && !row.never && row.prefixLen >= 0 {
		vals := make([]value.V, 0, len(t.Keys))
		for _, k := range t.Keys {
			m, ok := e.Match(k.Name)
			if !ok {
				vals = nil
				break
			}
			if k.Match == ir.MatchLPM {
				row.lpmMask = value.PrefixMask(m.PrefixLen, k.Field.Width)
				vals = append(vals, m.Value.And(row.lpmMask))
			} else if k.Match == ir.MatchExact {
				vals = append(vals, m.Value)
			} else {
				vals = nil
				break
			}
		}
		row.keyVals = vals
	}

	if ct.selector {
		row.rrKey = entryKey
		for i := range e.ActionSet {
			inv := &e.ActionSet[i].ActionInvocation
			row.memberHitIDs = append(row.memberHitIDs, p.regHit(bmv2.TableHit{Table: ct.name, EntryKey: entryKey, Action: inv.Action.Name}))
			row.memberBody = append(row.memberBody, p.actionBody(inv.Action))
			row.memberArgs = append(row.memberArgs, inv.Args)
		}
		return row
	}
	row.hitID = p.regHit(bmv2.TableHit{Table: ct.name, EntryKey: entryKey, Action: e.Action.Action.Name})
	row.body = p.actionBody(e.Action.Action)
	row.args = e.Action.Args
	return row
}

// matches evaluates the precompiled conditions against the field space.
func (r *compiledEntry) matches(fs []value.V) bool {
	if r.never {
		return false
	}
	for i := range r.conds {
		c := &r.conds[i]
		fv := fs[c.field]
		if c.masked {
			fv = fv.And(c.mask)
		}
		if !fv.Equal(c.want) {
			return false
		}
	}
	return true
}

// lookup returns the highest-precedence matching row, or nil on miss.
func (ct *compiledTable) lookup(fs []value.V) *compiledEntry {
	if ct.useDense {
		return ct.dense[fs[ct.denseField].Lo]
	}
	if ct.useMap {
		if len(ct.exact) == 0 {
			return nil
		}
		buf := ct.keyBuf
		for i, id := range ct.keyIDs {
			v := fs[id]
			binary.BigEndian.PutUint64(buf[i*16:], v.Hi)
			binary.BigEndian.PutUint64(buf[i*16+8:], v.Lo)
		}
		return ct.exact[string(buf)]
	}
	if ct.useLPM {
		if len(ct.lpmGroups) > 0 {
			// Encode the exact keys once; per group only the LPM slot
			// changes (the address masked at that group's length).
			buf := ct.keyBuf
			for i, id := range ct.keyIDs {
				if i == ct.lpmSlot {
					continue
				}
				v := fs[id]
				binary.BigEndian.PutUint64(buf[i*16:], v.Hi)
				binary.BigEndian.PutUint64(buf[i*16+8:], v.Lo)
			}
			addr := fs[ct.lpmField]
			for gi := range ct.lpmGroups {
				g := &ct.lpmGroups[gi]
				mv := addr.And(g.mask)
				binary.BigEndian.PutUint64(buf[ct.lpmSlot*16:], mv.Hi)
				binary.BigEndian.PutUint64(buf[ct.lpmSlot*16+8:], mv.Lo)
				if r, ok := g.m[string(buf)]; ok {
					return r
				}
			}
		}
		for _, r := range ct.lpmTail {
			if r.matches(fs) {
				return r
			}
		}
		return nil
	}
	if ct.useDisp {
		cands := ct.cands[:0]
		for li := range ct.dispLevels {
			l := &ct.dispLevels[li]
			fv := fs[l.field]
			if l.masked {
				fv = fv.And(l.mask)
			}
			binary.BigEndian.PutUint64(ct.dispBuf[:], fv.Hi)
			binary.BigEndian.PutUint64(ct.dispBuf[8:], fv.Lo)
			if b := l.buckets[string(ct.dispBuf[:])]; len(b) > 0 {
				cands = append(cands, b)
			}
		}
		if len(ct.residual) > 0 {
			cands = append(cands, ct.residual)
		}
		ct.cands = cands
		if len(cands) == 1 {
			for _, r := range cands[0] {
				if r.matches(fs) {
					return r
				}
			}
			return nil
		}
		for {
			bi, bseq := -1, int(^uint(0)>>1)
			for i, l := range cands {
				if len(l) > 0 && l[0].seq < bseq {
					bi, bseq = i, l[0].seq
				}
			}
			if bi < 0 {
				return nil
			}
			r := cands[bi][0]
			cands[bi] = cands[bi][1:]
			if r.matches(fs) {
				return r
			}
		}
	}
	for _, r := range ct.entries {
		if r.matches(fs) {
			return r
		}
	}
	return nil
}

// applyTable matches the field space against a compiled table and runs
// the selected action, appending the same trace record the interpreter
// would.
func (p *Pipeline) applyTable(m *exec, ct *compiledTable) signal {
	r := ct.lookup(m.fs)
	if r == nil {
		m.trace = append(m.trace, ct.defaultHitID)
		return p.invoke(m, ct.defaultBody, ct.defaultArgs)
	}
	if ct.selector {
		idx := p.rr[r.rrKey] % len(r.memberBody)
		p.rr[r.rrKey]++
		m.trace = append(m.trace, r.memberHitIDs[idx])
		return p.invoke(m, r.memberBody[idx], r.memberArgs[idx])
	}
	m.trace = append(m.trace, r.hitID)
	return p.invoke(m, r.body, r.args)
}
