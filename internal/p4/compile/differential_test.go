package compile_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"switchv/internal/bmv2"
	"switchv/internal/p4/compile"
	"switchv/internal/p4/ir"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
	"switchv/internal/packet"
	"switchv/internal/testutil"
	"switchv/internal/workload"
	"switchv/models"
)

// mustFrame serializes layers into a wire frame, panicking on failure
// (all corpus frames are statically well-formed).
func mustFrame(layers ...packet.SerializableLayer) []byte {
	data, err := packet.Serialize(packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}, layers...)
	if err != nil {
		panic(err)
	}
	return data
}

func eth(dst packet.MAC, etherType uint16) *packet.Ethernet {
	return &packet.Ethernet{DstMAC: dst, SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, EtherType: etherType}
}

// corpus returns the deterministic differential packet corpus: one frame
// per parser path and per interesting routing decision, plus truncations
// and seeded garbage for the error paths.
func corpus() [][]byte {
	var pkts [][]byte
	add := func(p []byte) { pkts = append(pkts, p) }

	// IPv4/UDP routing decisions: 10/8 route, 10.99/16 more-specific,
	// 10.200/16 WCMP group (multi-behavior), no route, TTL edge cases.
	add(testutil.IPv4UDP("10.0.0.1", 64, 53))
	add(testutil.IPv4UDP("10.99.1.2", 64, 53))
	add(testutil.IPv4UDP("10.200.3.4", 64, 443))
	add(testutil.IPv4UDP("192.0.2.1", 64, 53))
	add(testutil.IPv4UDP("10.0.0.1", 1, 53))
	add(testutil.IPv4UDP("10.0.0.1", 0, 53))

	mkIPv4 := func(proto uint8, dst string) *packet.IPv4 {
		return &packet.IPv4{
			TTL:      64,
			Protocol: proto,
			SrcIP:    packet.MustParseIPv4("192.168.1.1"),
			DstIP:    packet.MustParseIPv4(dst),
		}
	}

	// TCP/179: the BGP trap in the routing fixture's acl_ingress_table.
	ip := mkIPv4(packet.IPProtocolTCP, "10.0.0.1")
	tcp := &packet.TCP{SrcPort: 33000, DstPort: 179}
	tcp.SetNetworkLayerForChecksum(ip.SrcIP[:], ip.DstIP[:])
	add(mustFrame(eth(testutil.RouterMAC, packet.EtherTypeIPv4), ip, tcp, packet.Raw([]byte("bgp"))))

	// ICMP echo request (ICMPTrapFixture path).
	ip = mkIPv4(packet.IPProtocolICMPv4, "10.0.0.1")
	add(mustFrame(eth(testutil.RouterMAC, packet.EtherTypeIPv4), ip,
		&packet.ICMPv4{Type: 8, Code: 0}, packet.Raw([]byte("ping"))))

	// IPv6/UDP to the fixture's 2001:db8::/32 route, and an unrouted v6.
	for _, dst := range []string{"2001:db8::1", "2620:15c::99"} {
		ip6 := &packet.IPv6{
			NextHeader: packet.IPProtocolUDP,
			HopLimit:   64,
			SrcIP:      packet.MustParseIPv6("2001:db8::aaaa"),
			DstIP:      packet.MustParseIPv6(dst),
		}
		udp := &packet.UDP{SrcPort: 4000, DstPort: 53}
		udp.SetNetworkLayerForChecksum(ip6.SrcIP[:], ip6.DstIP[:])
		add(mustFrame(eth(testutil.RouterMAC, packet.EtherTypeIPv6), ip6, udp, packet.Raw([]byte("v6"))))
	}

	// ARP request (broadcast destination).
	add(mustFrame(eth(packet.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, packet.EtherTypeARP),
		&packet.ARP{
			Operation: 1,
			SenderMAC: packet.MAC{2, 0, 0, 0, 0, 1},
			SenderIP:  packet.MustParseIPv4("192.168.1.1"),
			TargetIP:  packet.MustParseIPv4("192.168.1.254"),
		}))

	// VLAN-tagged IPv4/UDP.
	ip = mkIPv4(packet.IPProtocolUDP, "10.0.0.1")
	udp := &packet.UDP{SrcPort: 4000, DstPort: 53}
	udp.SetNetworkLayerForChecksum(ip.SrcIP[:], ip.DstIP[:])
	add(mustFrame(eth(testutil.RouterMAC, packet.EtherTypeVLAN),
		&packet.VLAN{Priority: 3, VLANID: 100, EtherType: packet.EtherTypeIPv4},
		ip, udp, packet.Raw([]byte("tagged"))))

	// GRE-encapsulated inner IPv4 (parse stops at inner_ipv4).
	outer := mkIPv4(packet.IPProtocolGRE, "10.77.0.5")
	inner := mkIPv4(packet.IPProtocolUDP, "10.0.0.9")
	add(mustFrame(eth(testutil.RouterMAC, packet.EtherTypeIPv4), outer,
		&packet.GRE{Protocol: packet.EtherTypeIPv4}, inner, packet.Raw([]byte("encap"))))

	// Destination MACs off the happy path: the PostRewriteDrop fixture's
	// MAC and an unknown unicast MAC.
	add(mustFrame(eth(packet.MAC{0x02, 0, 0, 0, 0x01, 0x01}, packet.EtherTypeIPv4),
		mkIPv4(packet.IPProtocolUDP, "10.0.0.1"), packet.Raw(nil)))
	add(mustFrame(eth(packet.MAC{0x02, 0xaa, 0xbb, 0xcc, 0xdd, 0xee}, packet.EtherTypeIPv4),
		mkIPv4(packet.IPProtocolUDP, "10.0.0.1"), packet.Raw(nil)))

	// Truncations: mid-ethernet, mid-IPv4, and mid-UDP (the latter parses
	// with an invalid L4 header by design).
	full := testutil.IPv4UDP("10.0.0.1", 64, 53)
	for _, n := range []int{0, 6, 14, 20, 14 + 20 + 3} {
		add(append([]byte(nil), full[:n]...))
	}

	// Seeded garbage of assorted sizes.
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{13, 14, 40, 61, 200} {
		b := make([]byte, n)
		rng.Read(b)
		add(b)
	}
	return pkts
}

// diffOutcome reports the first divergence between two outcomes, or nil.
func diffOutcome(a, b *bmv2.Outcome) error {
	if a.Disposition != b.Disposition {
		return fmt.Errorf("disposition %v vs %v", a.Disposition, b.Disposition)
	}
	if a.EgressPort != b.EgressPort {
		return fmt.Errorf("egress port %d vs %d", a.EgressPort, b.EgressPort)
	}
	if a.CopyToCPU != b.CopyToCPU {
		return fmt.Errorf("copy-to-cpu %v vs %v", a.CopyToCPU, b.CopyToCPU)
	}
	if !bytes.Equal(a.Packet, b.Packet) {
		return fmt.Errorf("packet bytes\n  %x\nvs\n  %x", a.Packet, b.Packet)
	}
	if len(a.Mirrors) != len(b.Mirrors) {
		return fmt.Errorf("%d mirrors vs %d", len(a.Mirrors), len(b.Mirrors))
	}
	for i := range a.Mirrors {
		if a.Mirrors[i].Session != b.Mirrors[i].Session || !bytes.Equal(a.Mirrors[i].Packet, b.Mirrors[i].Packet) {
			return fmt.Errorf("mirror %d: %v vs %v", i, a.Mirrors[i], b.Mirrors[i])
		}
	}
	if len(a.Trace) != len(b.Trace) {
		return fmt.Errorf("trace length %d vs %d\n  %v\nvs\n  %v", len(a.Trace), len(b.Trace), a.Trace, b.Trace)
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			return fmt.Errorf("trace[%d] %+v vs %+v", i, a.Trace[i], b.Trace[i])
		}
	}
	if a.Signature() != b.Signature() {
		return fmt.Errorf("signature %q vs %q", a.Signature(), b.Signature())
	}
	return nil
}

// compareInput drives one input through both engines' BehaviorSet (which
// exercises Run) from a reset state and asserts bit-identical outcomes.
func compareInput(t *testing.T, interp, comp bmv2.Simulator, in bmv2.Input) {
	t.Helper()
	interp.Reset()
	comp.Reset()
	want, errI := interp.BehaviorSet(in, 32)
	got, errC := comp.BehaviorSet(in, 32)
	if (errI != nil) != (errC != nil) {
		t.Fatalf("port %d pkt %x: interp err %v, compiled err %v", in.Port, in.Packet, errI, errC)
	}
	if errI != nil {
		return
	}
	if len(want) != len(got) {
		t.Fatalf("port %d pkt %x: %d behaviors vs %d", in.Port, in.Packet, len(want), len(got))
	}
	for i := range want {
		if err := diffOutcome(want[i], got[i]); err != nil {
			t.Fatalf("port %d pkt %x behavior %d: %v", in.Port, in.Packet, i, err)
		}
	}
}

type fixtureFn func(*ir.Program, *pdpi.Store)

var fixtureSets = []struct {
	name    string
	wanOnly bool
	fns     []fixtureFn
}{
	{name: "empty"},
	{name: "routing", fns: []fixtureFn{testutil.RoutingFixture}},
	{name: "routing+acl", fns: []fixtureFn{
		testutil.RoutingFixture, testutil.ACLShadowFixture, testutil.ICMPTrapFixture,
		testutil.PostRewriteDropFixture, testutil.DefaultRouteFixture,
	}},
	{name: "routing+wcmp", fns: []fixtureFn{
		testutil.RoutingFixture, testutil.WideWCMPFixture,
		testutil.DupBucketWCMPFixture, testutil.ManyRIFsFixture,
	}},
	{name: "routing+tunnel", wanOnly: true, fns: []fixtureFn{
		testutil.RoutingFixture, testutil.TunnelFixture,
	}},
}

// TestDifferentialFixtures drives the full corpus through the IR
// interpreter and the compiled pipeline over every model × fixture set,
// asserting bit-identical behavior sets (traces included).
func TestDifferentialFixtures(t *testing.T) {
	for _, model := range models.Names() {
		prog := models.MustLoad(model)
		for _, fx := range fixtureSets {
			if fx.wanOnly && model != "wan" {
				continue
			}
			t.Run(model+"/"+fx.name, func(t *testing.T) {
				store := pdpi.NewStore()
				for _, fn := range fx.fns {
					fn(prog, store)
				}
				interp, err := bmv2.New(prog, store)
				if err != nil {
					t.Fatal(err)
				}
				comp, err := compile.New(prog, store)
				if err != nil {
					t.Fatal(err)
				}
				for _, pkt := range corpus() {
					for _, port := range []uint16{1, 2, 5} {
						compareInput(t, interp, comp, bmv2.Input{Port: port, Packet: pkt})
					}
				}
			})
		}
	}
}

// TestDifferentialWorkloadEntries checks parity under workload-generated
// entry sets, which cover far more key shapes (ternary masks, optional
// keys, wide WCMP groups) than the hand-written fixtures.
func TestDifferentialWorkloadEntries(t *testing.T) {
	for _, model := range models.Names() {
		t.Run(model, func(t *testing.T) {
			prog := models.MustLoad(model)
			store := pdpi.NewStore()
			for _, e := range workload.MustEntries(prog, 400, 7) {
				if err := store.Insert(e); err != nil {
					t.Fatalf("installing workload entry: %v", err)
				}
			}
			interp, err := bmv2.New(prog, store)
			if err != nil {
				t.Fatal(err)
			}
			comp, err := compile.New(prog, store)
			if err != nil {
				t.Fatal(err)
			}
			for _, pkt := range corpus() {
				for _, port := range []uint16{1, 7} {
					compareInput(t, interp, comp, bmv2.Input{Port: port, Packet: pkt})
				}
			}
		})
	}
}

// TestDifferentialChurn mutates the store between runs and checks that
// the compiled engine tracks the interpreter through insert, modify,
// delete, and clear.
func TestDifferentialChurn(t *testing.T) {
	prog := models.MustLoad("middleblock")
	store := pdpi.NewStore()
	testutil.RoutingFixture(prog, store)
	interp, err := bmv2.New(prog, store)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := compile.New(prog, store)
	if err != nil {
		t.Fatal(err)
	}

	probe := func(tag string) {
		t.Helper()
		for _, dst := range []string{"10.0.0.1", "10.99.1.2", "10.50.0.1", "192.0.2.1"} {
			in := bmv2.Input{Port: 1, Packet: testutil.IPv4UDP(dst, 64, 53)}
			interp.Reset()
			comp.Reset()
			want, errI := interp.Run(in)
			got, errC := comp.Run(in)
			if errI != nil || errC != nil {
				t.Fatalf("%s dst %s: interp err %v, compiled err %v", tag, dst, errI, errC)
			}
			if err := diffOutcome(want, got); err != nil {
				t.Fatalf("%s dst %s: %v", tag, dst, err)
			}
		}
	}
	probe("baseline")

	ipv4, ok := prog.TableByName("ipv4_table")
	if !ok {
		t.Fatal("no ipv4_table")
	}
	routeAction := store.Entries("ipv4_table")[0].Action
	newRoute := &pdpi.Entry{
		Table: ipv4,
		Matches: []pdpi.Match{
			{Key: "vrf_id", Kind: ir.MatchExact, Value: value.Zero(10)},
			{Key: "ipv4_dst", Kind: ir.MatchLPM, Value: value.New(0x0a320000, 32), PrefixLen: 16},
		},
		Action: routeAction,
	}
	if err := store.Insert(newRoute); err != nil {
		t.Fatal(err)
	}
	probe("after insert 10.50/16")

	if err := store.Delete(newRoute); err != nil {
		t.Fatal(err)
	}
	probe("after delete 10.50/16")

	store.Clear()
	probe("after clear")

	testutil.RoutingFixture(prog, store)
	probe("after reinstall")
}

// TestInvalidationRecompilesOnlyAffected asserts the entry-churn hook:
// touching one table recompiles exactly that table on the next run, and
// an untouched store recompiles nothing.
func TestInvalidationRecompilesOnlyAffected(t *testing.T) {
	prog := models.MustLoad("middleblock")
	store := pdpi.NewStore()
	testutil.RoutingFixture(prog, store)
	comp, err := compile.New(prog, store)
	if err != nil {
		t.Fatal(err)
	}
	in := bmv2.Input{Port: 1, Packet: testutil.IPv4UDP("10.0.0.1", 64, 53)}
	run := func() {
		t.Helper()
		if _, err := comp.Run(in); err != nil {
			t.Fatal(err)
		}
	}
	run()
	base := comp.Builds()
	run()
	run()
	if got := comp.Builds(); got != base {
		t.Fatalf("untouched store recompiled: builds %d -> %d", base, got)
	}

	// Delete + reinsert one ipv4_table entry: exactly one table is stale.
	e := store.Entries("ipv4_table")[0]
	if err := store.Delete(e); err != nil {
		t.Fatal(err)
	}
	if err := store.Insert(e); err != nil {
		t.Fatal(err)
	}
	run()
	if got := comp.Builds(); got != base+1 {
		t.Fatalf("churn on one table recompiled %d tables, want 1", got-base)
	}
	run()
	if got := comp.Builds(); got != base+1 {
		t.Fatalf("steady state after churn recompiled: builds %d", got)
	}
}
