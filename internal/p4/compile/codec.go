package compile

import (
	"encoding/binary"
	"fmt"
	"strings"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/value"
	"switchv/internal/packet"
)

// codec is the compiled parser/deparser: the interpreter resolves every
// "<prefix>.ipv4.ttl"-style field by string concatenation and map lookup
// per packet; the codec resolves each once at compile time into a fref
// and reuses one serialize buffer and one set of layer structs across
// packets. Its behavior — layer order, checksum recomputation, truncated
// transport handling — replicates bmv2's parse/deparse exactly, which
// the differential harness pins down.
type codec struct {
	hasEth, hasVlan, hasArp, hasGre       bool
	hasIPv4, hasInner, hasIPv6            bool
	hasTCP, hasUDP, hasICMP               bool

	ethValid, ethDst, ethSrc, ethType             fref
	vlanValid, vlanPrio, vlanDE, vlanID, vlanType fref
	arpValid, arpOp, arpSender, arpTarget         fref
	ip4, inner                                    ipv4Refs
	ip6Valid, ip6DSCP, ip6ECN, ip6Flow            fref
	ip6Next, ip6Hop, ip6Src, ip6Dst               fref
	greValid, greProto                            fref
	tcpValid, tcpSrc, tcpDst, tcpFlags            fref
	udpValid, udpSrc, udpDst                      fref
	icmpValid, icmpType, icmpCode                 fref

	// Deparse scratch, reused across packets (a Pipeline is
	// single-goroutine, like the interpreter).
	flat []byte
}

// fref is a pre-resolved field reference; id < 0 when the model does not
// declare the field (writes are dropped, reads yield zero, mirroring the
// interpreter's setF/getF misses).
type fref struct {
	id, w int
}

type ipv4Refs struct {
	valid, dscp, ecn, ident, ttl, proto, src, dst fref
}

func newCodec(prog *ir.Program) *codec {
	pfx := headersPrefix(prog)
	ref := func(name string) fref {
		if f, ok := prog.FieldByName(pfx + "." + name); ok {
			return fref{f.ID, f.Width}
		}
		return fref{-1, 0}
	}
	has := func(instance string) bool {
		full := pfx + "." + instance
		for _, hi := range prog.HeaderInstances {
			if hi.Path == full {
				return true
			}
		}
		return false
	}
	ip4refs := func(instance string) ipv4Refs {
		return ipv4Refs{
			valid: ref(instance + ".$valid"),
			dscp:  ref(instance + ".dscp"),
			ecn:   ref(instance + ".ecn"),
			ident: ref(instance + ".identification"),
			ttl:   ref(instance + ".ttl"),
			proto: ref(instance + ".protocol"),
			src:   ref(instance + ".src_addr"),
			dst:   ref(instance + ".dst_addr"),
		}
	}
	return &codec{
		hasEth: has("ethernet"), hasVlan: has("vlan"), hasArp: has("arp"),
		hasGre: has("gre"), hasIPv4: has("ipv4"), hasInner: has("inner_ipv4"),
		hasIPv6: has("ipv6"), hasTCP: has("tcp"), hasUDP: has("udp"), hasICMP: has("icmp"),

		ethValid: ref("ethernet.$valid"), ethDst: ref("ethernet.dst_addr"),
		ethSrc: ref("ethernet.src_addr"), ethType: ref("ethernet.ether_type"),
		vlanValid: ref("vlan.$valid"), vlanPrio: ref("vlan.priority"),
		vlanDE: ref("vlan.drop_eligible"), vlanID: ref("vlan.vlan_id"), vlanType: ref("vlan.ether_type"),
		arpValid: ref("arp.$valid"), arpOp: ref("arp.operation"),
		arpSender: ref("arp.sender_ip"), arpTarget: ref("arp.target_ip"),
		ip4:   ip4refs("ipv4"),
		inner: ip4refs("inner_ipv4"),
		ip6Valid: ref("ipv6.$valid"), ip6DSCP: ref("ipv6.dscp"), ip6ECN: ref("ipv6.ecn"),
		ip6Flow: ref("ipv6.flow_label"), ip6Next: ref("ipv6.next_header"),
		ip6Hop: ref("ipv6.hop_limit"), ip6Src: ref("ipv6.src_addr"), ip6Dst: ref("ipv6.dst_addr"),
		greValid: ref("gre.$valid"), greProto: ref("gre.protocol"),
		tcpValid: ref("tcp.$valid"), tcpSrc: ref("tcp.src_port"),
		tcpDst: ref("tcp.dst_port"), tcpFlags: ref("tcp.flags"),
		udpValid: ref("udp.$valid"), udpSrc: ref("udp.src_port"), udpDst: ref("udp.dst_port"),
		icmpValid: ref("icmp.$valid"), icmpType: ref("icmp.type"), icmpCode: ref("icmp.code"),
	}
}

// headersPrefix mirrors bmv2's: the parameter name holding the header
// instances, from the first instance path.
func headersPrefix(prog *ir.Program) string {
	if len(prog.HeaderInstances) == 0 {
		return "headers"
	}
	path := prog.HeaderInstances[0].Path
	if i := strings.IndexByte(path, '.'); i > 0 {
		return path[:i]
	}
	return path
}

func set(fs []value.V, r fref, v uint64) {
	if r.id >= 0 {
		fs[r.id] = value.New(v, r.w)
	}
}

func set128(fs []value.V, r fref, hi, lo uint64) {
	if r.id >= 0 {
		fs[r.id] = value.New128(hi, lo, r.w)
	}
}

func get(fs []value.V, r fref) uint64 {
	if r.id < 0 {
		return 0
	}
	return fs[r.id].Uint64()
}

func validF(fs []value.V, r fref) bool {
	return r.id >= 0 && !fs[r.id].IsZero()
}

func be48(b []byte) uint64 {
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v
}

// parse decodes raw packet bytes onto the field space, returning the
// opaque payload — the same layering walk as the interpreter's parse.
func (c *codec) parse(fs []value.V, data []byte) (payload []byte, err error) {
	rest := data
	if !c.hasEth {
		return rest, fmt.Errorf("model has no ethernet header instance")
	}
	var eth packet.Ethernet
	rest, err = eth.DecodeFromBytes(rest)
	if err != nil {
		return nil, err
	}
	set(fs, c.ethValid, 1)
	set(fs, c.ethDst, be48(eth.DstMAC[:]))
	set(fs, c.ethSrc, be48(eth.SrcMAC[:]))
	set(fs, c.ethType, uint64(eth.EtherType))

	etherType := eth.EtherType
	if etherType == packet.EtherTypeVLAN && c.hasVlan {
		var vlan packet.VLAN
		rest, err = vlan.DecodeFromBytes(rest)
		if err != nil {
			return nil, err
		}
		set(fs, c.vlanValid, 1)
		set(fs, c.vlanPrio, uint64(vlan.Priority))
		de := uint64(0)
		if vlan.DropElig {
			de = 1
		}
		set(fs, c.vlanDE, de)
		set(fs, c.vlanID, uint64(vlan.VLANID))
		set(fs, c.vlanType, uint64(vlan.EtherType))
		etherType = vlan.EtherType
	}

	switch etherType {
	case packet.EtherTypeARP:
		if !c.hasArp {
			return rest, nil
		}
		var arp packet.ARP
		rest, err = arp.DecodeFromBytes(rest)
		if err != nil {
			return nil, err
		}
		set(fs, c.arpValid, 1)
		set(fs, c.arpOp, uint64(arp.Operation))
		set(fs, c.arpSender, uint64(arp.SenderIP.Uint32()))
		set(fs, c.arpTarget, uint64(arp.TargetIP.Uint32()))
		return rest, nil
	case packet.EtherTypeIPv4:
		return c.parseIPv4(fs, rest, false)
	case packet.EtherTypeIPv6:
		return c.parseIPv6(fs, rest)
	default:
		return rest, nil
	}
}

func (c *codec) parseIPv4(fs []value.V, data []byte, inner bool) ([]byte, error) {
	refs := &c.ip4
	if inner {
		refs = &c.inner
	}
	if (inner && !c.hasInner) || (!inner && !c.hasIPv4) {
		return data, nil
	}
	var ip packet.IPv4
	rest, err := ip.DecodeFromBytes(data)
	if err != nil {
		return nil, err
	}
	set(fs, refs.valid, 1)
	set(fs, refs.dscp, uint64(ip.DSCP()))
	set(fs, refs.ecn, uint64(ip.TOS&0x3))
	set(fs, refs.ident, uint64(ip.ID))
	set(fs, refs.ttl, uint64(ip.TTL))
	set(fs, refs.proto, uint64(ip.Protocol))
	set(fs, refs.src, uint64(ip.SrcIP.Uint32()))
	set(fs, refs.dst, uint64(ip.DstIP.Uint32()))
	if inner {
		// Inner headers end the parse; anything below is payload.
		return rest, nil
	}
	switch ip.Protocol {
	case packet.IPProtocolGRE:
		return c.parseGRE(fs, rest)
	default:
		return c.parseL4(fs, rest, ip.Protocol)
	}
}

func (c *codec) parseIPv6(fs []value.V, data []byte) ([]byte, error) {
	if !c.hasIPv6 {
		return data, nil
	}
	var ip packet.IPv6
	rest, err := ip.DecodeFromBytes(data)
	if err != nil {
		return nil, err
	}
	set(fs, c.ip6Valid, 1)
	set(fs, c.ip6DSCP, uint64(ip.DSCP()))
	set(fs, c.ip6ECN, uint64(ip.TrafficClass&0x3))
	set(fs, c.ip6Flow, uint64(ip.FlowLabel))
	set(fs, c.ip6Next, uint64(ip.NextHeader))
	set(fs, c.ip6Hop, uint64(ip.HopLimit))
	var hi, lo uint64
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(ip.SrcIP[i])
		lo = lo<<8 | uint64(ip.SrcIP[i+8])
	}
	set128(fs, c.ip6Src, hi, lo)
	hi, lo = 0, 0
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(ip.DstIP[i])
		lo = lo<<8 | uint64(ip.DstIP[i+8])
	}
	set128(fs, c.ip6Dst, hi, lo)
	return c.parseL4(fs, rest, ip.NextHeader)
}

func (c *codec) parseGRE(fs []value.V, data []byte) ([]byte, error) {
	if !c.hasGre {
		return data, nil
	}
	var gre packet.GRE
	rest, err := gre.DecodeFromBytes(data)
	if err != nil {
		return nil, err
	}
	set(fs, c.greValid, 1)
	set(fs, c.greProto, uint64(gre.Protocol))
	if gre.Protocol == packet.EtherTypeIPv4 {
		return c.parseIPv4(fs, rest, true)
	}
	return rest, nil
}

// parseL4 decodes the transport layer; truncated transport headers do
// not fail the parse (the bytes stay opaque payload).
func (c *codec) parseL4(fs []value.V, data []byte, proto uint8) ([]byte, error) {
	switch proto {
	case packet.IPProtocolTCP:
		if !c.hasTCP {
			return data, nil
		}
		var tcp packet.TCP
		rest, err := tcp.DecodeFromBytes(data)
		if err != nil {
			return data, nil
		}
		set(fs, c.tcpValid, 1)
		set(fs, c.tcpSrc, uint64(tcp.SrcPort))
		set(fs, c.tcpDst, uint64(tcp.DstPort))
		set(fs, c.tcpFlags, uint64(tcp.Flags))
		return rest, nil
	case packet.IPProtocolUDP:
		if !c.hasUDP {
			return data, nil
		}
		var udp packet.UDP
		rest, err := udp.DecodeFromBytes(data)
		if err != nil {
			return data, nil
		}
		set(fs, c.udpValid, 1)
		set(fs, c.udpSrc, uint64(udp.SrcPort))
		set(fs, c.udpDst, uint64(udp.DstPort))
		return rest, nil
	case packet.IPProtocolICMPv4, packet.IPProtocolICMPv6:
		if !c.hasICMP {
			return data, nil
		}
		var ic packet.ICMPv4 // same leading layout as ICMPv6
		rest, err := ic.DecodeFromBytes(data)
		if err != nil {
			return data, nil
		}
		set(fs, c.icmpValid, 1)
		set(fs, c.icmpType, uint64(ic.Type))
		set(fs, c.icmpCode, uint64(ic.Code))
		return rest, nil
	default:
		return data, nil
	}
}

// deparse reconstructs packet bytes from the field space plus the opaque
// payload, recomputing lengths and checksums. It is a flat single-pass
// writer, but its output is byte-identical to the interpreter's
// SerializeLayers assembly: headers appear in the same fixed layer
// order, uncaptured fields (TCP seq/ack/window, IPv4 flags, ARP MACs)
// serialize as zero, and checksums are finalized innermost-first so an
// outer transport checksum covers the final bytes of inner headers.
func (c *codec) deparse(fs []value.V, payload []byte) ([]byte, error) {
	hasEth := validF(fs, c.ethValid)
	hasVlan := validF(fs, c.vlanValid)
	hasArp := validF(fs, c.arpValid)
	hasIP4 := validF(fs, c.ip4.valid)
	hasGre := validF(fs, c.greValid)
	hasInner := validF(fs, c.inner.valid)
	hasIP6 := validF(fs, c.ip6Valid)
	hasTCP := validF(fs, c.tcpValid)
	hasUDP := validF(fs, c.udpValid)
	hasICMP := validF(fs, c.icmpValid)

	total := len(payload)
	if hasEth {
		total += 14
	}
	if hasVlan {
		total += 4
	}
	if hasArp {
		total += 28
	}
	if hasIP4 {
		total += 20
	}
	if hasGre {
		total += 4
	}
	if hasInner {
		total += 20
	}
	if hasIP6 {
		total += 40
	}
	if hasTCP {
		total += 20
	}
	if hasUDP {
		total += 8
	}
	if hasICMP {
		total += 8
	}
	if cap(c.flat) < total {
		c.flat = make([]byte, total+256)
	}
	b := c.flat[:total]

	// Pass 1: write every header front to back, checksum fields zeroed.
	off := 0
	if hasEth {
		d := get(fs, c.ethDst)
		s := get(fs, c.ethSrc)
		for i := 0; i < 6; i++ {
			b[off+5-i] = byte(d >> uint(8*i))
			b[off+11-i] = byte(s >> uint(8*i))
		}
		binary.BigEndian.PutUint16(b[off+12:], uint16(get(fs, c.ethType)))
		off += 14
	}
	if hasVlan {
		prio := get(fs, c.vlanPrio)
		vid := get(fs, c.vlanID)
		if prio > 7 {
			return nil, fmt.Errorf("packet: VLAN priority %d out of range", prio)
		}
		if vid > 0x0fff {
			return nil, fmt.Errorf("packet: VLAN ID %d out of range", vid)
		}
		tci := uint16(prio)<<13 | uint16(vid)
		if get(fs, c.vlanDE) == 1 {
			tci |= 0x1000
		}
		binary.BigEndian.PutUint16(b[off:], tci)
		binary.BigEndian.PutUint16(b[off+2:], uint16(get(fs, c.vlanType)))
		off += 4
	}
	if hasArp {
		clear(b[off : off+28])
		binary.BigEndian.PutUint16(b[off:], 1) // Ethernet
		binary.BigEndian.PutUint16(b[off+2:], packet.EtherTypeIPv4)
		b[off+4] = 6 // hardware address length
		b[off+5] = 4 // protocol address length
		binary.BigEndian.PutUint16(b[off+6:], uint16(get(fs, c.arpOp)))
		binary.BigEndian.PutUint32(b[off+14:], uint32(get(fs, c.arpSender)))
		binary.BigEndian.PutUint32(b[off+24:], uint32(get(fs, c.arpTarget)))
		off += 28
	}
	writeIPv4 := func(off int, refs *ipv4Refs) {
		b[off] = 4<<4 | 5 // version 4, IHL 5 words
		b[off+1] = uint8(get(fs, refs.dscp))<<2 | uint8(get(fs, refs.ecn))
		binary.BigEndian.PutUint16(b[off+2:], uint16(total-off))
		binary.BigEndian.PutUint16(b[off+4:], uint16(get(fs, refs.ident)))
		binary.BigEndian.PutUint16(b[off+6:], 0) // flags, fragment offset
		b[off+8] = uint8(get(fs, refs.ttl))
		b[off+9] = uint8(get(fs, refs.proto))
		binary.BigEndian.PutUint16(b[off+10:], 0) // checksum, pass 2
		binary.BigEndian.PutUint32(b[off+12:], uint32(get(fs, refs.src)))
		binary.BigEndian.PutUint32(b[off+16:], uint32(get(fs, refs.dst)))
	}
	// netSrc/netDst: pseudo-header endpoints from the innermost network
	// layer, sliced out of the output buffer itself.
	var netSrc, netDst []byte
	ip4Off, innerOff, tcpOff, udpOff, icmpOff := -1, -1, -1, -1, -1
	if hasIP4 {
		ip4Off = off
		writeIPv4(off, &c.ip4)
		netSrc, netDst = b[off+12:off+16], b[off+16:off+20]
		off += 20
	}
	if hasGre {
		binary.BigEndian.PutUint16(b[off:], 0)
		binary.BigEndian.PutUint16(b[off+2:], uint16(get(fs, c.greProto)))
		off += 4
	}
	if hasInner {
		innerOff = off
		writeIPv4(off, &c.inner)
		netSrc, netDst = b[off+12:off+16], b[off+16:off+20]
		off += 20
	}
	if hasIP6 {
		tc := uint8(get(fs, c.ip6DSCP))<<2 | uint8(get(fs, c.ip6ECN))
		flow := uint32(get(fs, c.ip6Flow))
		b[off] = 6<<4 | tc>>4
		b[off+1] = tc<<4 | uint8(flow>>16)&0x0f
		b[off+2] = uint8(flow >> 8)
		b[off+3] = uint8(flow)
		binary.BigEndian.PutUint16(b[off+4:], uint16(total-off-40))
		b[off+6] = uint8(get(fs, c.ip6Next))
		b[off+7] = uint8(get(fs, c.ip6Hop))
		clear(b[off+8 : off+40])
		if c.ip6Src.id >= 0 {
			v := fs[c.ip6Src.id]
			binary.BigEndian.PutUint64(b[off+8:], v.Hi)
			binary.BigEndian.PutUint64(b[off+16:], v.Lo)
		}
		if c.ip6Dst.id >= 0 {
			v := fs[c.ip6Dst.id]
			binary.BigEndian.PutUint64(b[off+24:], v.Hi)
			binary.BigEndian.PutUint64(b[off+32:], v.Lo)
		}
		netSrc, netDst = b[off+8:off+24], b[off+24:off+40]
		off += 40
	}
	if hasTCP {
		tcpOff = off
		clear(b[off : off+20])
		binary.BigEndian.PutUint16(b[off:], uint16(get(fs, c.tcpSrc)))
		binary.BigEndian.PutUint16(b[off+2:], uint16(get(fs, c.tcpDst)))
		b[off+12] = 5 << 4 // data offset: 5 words
		b[off+13] = uint8(get(fs, c.tcpFlags))
		off += 20
	}
	if hasUDP {
		udpOff = off
		binary.BigEndian.PutUint16(b[off:], uint16(get(fs, c.udpSrc)))
		binary.BigEndian.PutUint16(b[off+2:], uint16(get(fs, c.udpDst)))
		binary.BigEndian.PutUint16(b[off+4:], uint16(total-off))
		binary.BigEndian.PutUint16(b[off+6:], 0)
		off += 8
	}
	if hasICMP {
		icmpOff = off
		clear(b[off : off+8])
		b[off] = uint8(get(fs, c.icmpType))
		b[off+1] = uint8(get(fs, c.icmpCode))
		off += 8
	}
	copy(b[off:], payload)

	// Pass 2: checksums, innermost layer first (the SerializeLayers
	// prepend order), so each covers the final bytes of layers below it.
	if icmpOff >= 0 {
		if hasIP6 {
			if netSrc != nil {
				sum := packet.PseudoHeaderSum(netSrc, netDst, packet.IPProtocolICMPv6, total-icmpOff)
				binary.BigEndian.PutUint16(b[icmpOff+2:], packet.InternetChecksum(b[icmpOff:], sum))
			}
		} else {
			binary.BigEndian.PutUint16(b[icmpOff+2:], packet.InternetChecksum(b[icmpOff:], 0))
		}
	}
	if udpOff >= 0 && netSrc != nil {
		sum := packet.PseudoHeaderSum(netSrc, netDst, packet.IPProtocolUDP, total-udpOff)
		ck := packet.InternetChecksum(b[udpOff:], sum)
		if ck == 0 {
			ck = 0xffff // RFC 768: transmitted as all-ones
		}
		binary.BigEndian.PutUint16(b[udpOff+6:], ck)
	}
	if tcpOff >= 0 && netSrc != nil {
		sum := packet.PseudoHeaderSum(netSrc, netDst, packet.IPProtocolTCP, total-tcpOff)
		binary.BigEndian.PutUint16(b[tcpOff+16:], packet.InternetChecksum(b[tcpOff:], sum))
	}
	if innerOff >= 0 {
		binary.BigEndian.PutUint16(b[innerOff+10:], packet.InternetChecksum(b[innerOff:innerOff+20], 0))
	}
	if ip4Off >= 0 {
		binary.BigEndian.PutUint16(b[ip4Off+10:], packet.InternetChecksum(b[ip4Off:ip4Off+20], 0))
	}
	// The returned slice aliases the codec's reusable buffer and is only
	// valid until the next deparse; the caller copies it out if retained.
	return b, nil
}
