package value

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMasks(t *testing.T) {
	v := New(0x1ff, 8)
	if v.Lo != 0xff || v.Width != 8 {
		t.Errorf("New(0x1ff, 8) = %v", v)
	}
	v = New128(^uint64(0), ^uint64(0), 100)
	if v.Hi != 1<<36-1 || v.Lo != ^uint64(0) {
		t.Errorf("New128 mask = %v", v)
	}
	if !Ones(64).Equal(New(^uint64(0), 64)) {
		t.Error("Ones(64)")
	}
	if !Zero(128).IsZero() {
		t.Error("Zero not zero")
	}
}

func TestBitOps(t *testing.T) {
	a := New(0b1100, 4)
	b := New(0b1010, 4)
	if got := a.And(b); got.Lo != 0b1000 {
		t.Errorf("And = %v", got)
	}
	if got := a.Or(b); got.Lo != 0b1110 {
		t.Errorf("Or = %v", got)
	}
	if got := a.Xor(b); got.Lo != 0b0110 {
		t.Errorf("Xor = %v", got)
	}
	if got := a.Not(); got.Lo != 0b0011 {
		t.Errorf("Not = %v", got)
	}
}

func TestAddSubWrap(t *testing.T) {
	a := New(255, 8)
	if got := a.Add(New(1, 8)); !got.IsZero() {
		t.Errorf("255+1 = %v", got)
	}
	if got := Zero(8).Sub(New(1, 8)); got.Lo != 255 {
		t.Errorf("0-1 = %v", got)
	}
	// Carry across the 64-bit word boundary.
	a = New128(0, ^uint64(0), 128)
	if got := a.Add(New(1, 128)); got.Hi != 1 || got.Lo != 0 {
		t.Errorf("carry = %v", got)
	}
	b := New128(1, 0, 128)
	if got := b.Sub(New(1, 128)); got.Hi != 0 || got.Lo != ^uint64(0) {
		t.Errorf("borrow = %v", got)
	}
}

func TestShifts(t *testing.T) {
	v := New(1, 128)
	if got := v.Shl(64); got.Hi != 1 || got.Lo != 0 {
		t.Errorf("1<<64 = %v", got)
	}
	if got := v.Shl(127); got.Hi != 1<<63 {
		t.Errorf("1<<127 = %v", got)
	}
	if got := v.Shl(128); !got.IsZero() {
		t.Errorf("1<<128 = %v", got)
	}
	w := New128(1<<63, 0, 128)
	if got := w.Shr(64); got.Lo != 1<<63 || got.Hi != 0 {
		t.Errorf(">>64 = %v", got)
	}
	if got := w.Shr(127); got.Lo != 1 {
		t.Errorf(">>127 = %v", got)
	}
	x := New(0b1010, 8)
	if got := x.Shl(1); got.Lo != 0b10100 {
		t.Errorf("<<1 = %v", got)
	}
	if got := x.Shr(1); got.Lo != 0b101 {
		t.Errorf(">>1 = %v", got)
	}
}

func TestLess(t *testing.T) {
	cases := []struct {
		a, b V
		want bool
	}{
		{New(1, 8), New(2, 8), true},
		{New(2, 8), New(1, 8), false},
		{New(1, 8), New(1, 8), false},
		{New128(1, 0, 128), New128(0, ^uint64(0), 128), false},
		{New128(0, ^uint64(0), 128), New128(1, 0, 128), true},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v < %v = %v", c.a, c.b, got)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	v := New(0x0a000001, 32)
	b := v.Bytes()
	if !bytes.Equal(b, []byte{0x0a, 0, 0, 1}) {
		t.Fatalf("Bytes = %x", b)
	}
	got, err := FromBytes(b, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Errorf("round trip = %v", got)
	}
	// Odd widths.
	v10 := New(0x3ff, 10)
	if n := len(v10.Bytes()); n != 2 {
		t.Errorf("10-bit value encodes to %d bytes", n)
	}
	got, err = FromBytes(v10.Bytes(), 10)
	if err != nil || !got.Equal(v10) {
		t.Errorf("10-bit round trip = %v, %v", got, err)
	}
	// 128-bit.
	v128 := New128(0x20010db800000000, 1, 128)
	got, err = FromBytes(v128.Bytes(), 128)
	if err != nil || !got.Equal(v128) {
		t.Errorf("128-bit round trip = %v, %v", got, err)
	}
}

func TestFromBytesErrors(t *testing.T) {
	if _, err := FromBytes([]byte{0x04}, 2); err == nil {
		t.Error("overflowing value accepted")
	}
	// 17 bytes with a nonzero leading byte.
	b := make([]byte, 17)
	b[0] = 1
	if _, err := FromBytes(b, 128); err == nil {
		t.Error("17-byte overflow accepted")
	}
	// 17 bytes with zero padding is fine.
	b[0] = 0
	b[16] = 9
	v, err := FromBytes(b, 128)
	if err != nil || v.Lo != 9 {
		t.Errorf("padded decode = %v, %v", v, err)
	}
}

func TestPrefixMask(t *testing.T) {
	if got := PrefixMask(8, 32); got.Lo != 0xff000000 {
		t.Errorf("PrefixMask(8,32) = %v", got)
	}
	if got := PrefixMask(0, 32); !got.IsZero() {
		t.Errorf("PrefixMask(0,32) = %v", got)
	}
	if got := PrefixMask(32, 32); got.Lo != 0xffffffff {
		t.Errorf("PrefixMask(32,32) = %v", got)
	}
	if got := PrefixMask(64, 128); got.Hi != ^uint64(0) || got.Lo != 0 {
		t.Errorf("PrefixMask(64,128) = %v", got)
	}
	if got := PrefixMask(1, 128); got.Hi != 1<<63 {
		t.Errorf("PrefixMask(1,128) = %v", got)
	}
}

func TestBitAndSetBit(t *testing.T) {
	v := Zero(128)
	for _, i := range []int{0, 5, 63, 64, 100, 127} {
		v = v.SetBit(i, true)
		if !v.Bit(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	v = v.SetBit(64, false)
	if v.Bit(64) {
		t.Error("bit 64 still set")
	}
}

// Property: byte round trip is the identity for random values and widths.
func TestBytesRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		w := 1 + rng.Intn(128)
		v := New128(rng.Uint64(), rng.Uint64(), w)
		got, err := FromBytes(v.Bytes(), w)
		return err == nil && got.Equal(v) && got.Width == w
	}
	for i := 0; i < 2000; i++ {
		if !f() {
			t.Fatal("round trip failed")
		}
	}
}

// Property: Add is the inverse of Sub.
func TestAddSubProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		x := New(a, 64)
		y := New(b, 64)
		return x.Add(y).Sub(y).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if s := New(255, 8).String(); s != "8w0xff" {
		t.Errorf("String = %q", s)
	}
	if s := New128(1, 0, 128).String(); s != "128w0x10000000000000000" {
		t.Errorf("String = %q", s)
	}
}

func TestStringHiLoPadding(t *testing.T) {
	// The low word must be zero-padded to 16 hex digits when Hi != 0.
	if s := New128(1, 5, 128).String(); s != "128w0x10000000000000005" {
		t.Errorf("String = %q", s)
	}
	if s := Zero(16).String(); s != "16w0x0" {
		t.Errorf("String = %q", s)
	}
	if s := New128(0xabc, 0xdef0123456789abc, 128).String(); s != "128w0xabcdef0123456789abc" {
		t.Errorf("String = %q", s)
	}
}
