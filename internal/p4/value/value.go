// Package value implements fixed-width unsigned bitvector values up to 128
// bits, the concrete value domain of the P4 IR. It is shared by the
// reference simulator, the fuzzer, the P4Runtime codec, and the SMT layer.
package value

import (
	"fmt"
	"math/bits"
)

// V is an unsigned bitvector of Width bits (1..128), stored as a 128-bit
// integer in (Hi, Lo). All operations keep the value masked to Width.
type V struct {
	Hi, Lo uint64
	Width  int
}

// New returns a value of the given width from a uint64, masked to width.
func New(v uint64, width int) V {
	return V{Lo: v, Width: width}.mask()
}

// New128 returns a value of the given width from hi/lo words.
func New128(hi, lo uint64, width int) V {
	return V{Hi: hi, Lo: lo, Width: width}.mask()
}

// Zero returns the zero value of the given width.
func Zero(width int) V { return V{Width: width} }

// Ones returns the all-ones value of the given width.
func Ones(width int) V { return V{Hi: ^uint64(0), Lo: ^uint64(0), Width: width}.mask() }

func (v V) mask() V {
	switch {
	case v.Width >= 128:
	case v.Width > 64:
		v.Hi &= 1<<uint(v.Width-64) - 1
	case v.Width == 64:
		v.Hi = 0
	default:
		v.Hi = 0
		v.Lo &= 1<<uint(v.Width) - 1
	}
	return v
}

// Uint64 returns the low 64 bits.
func (v V) Uint64() uint64 { return v.Lo }

// IsZero reports whether the value is zero.
func (v V) IsZero() bool { return v.Hi == 0 && v.Lo == 0 }

// Equal reports value equality (width-insensitive on the numeric value).
func (v V) Equal(o V) bool { return v.Hi == o.Hi && v.Lo == o.Lo }

// Less reports unsigned v < o.
func (v V) Less(o V) bool {
	if v.Hi != o.Hi {
		return v.Hi < o.Hi
	}
	return v.Lo < o.Lo
}

// Bit returns bit i (0 = least significant).
func (v V) Bit(i int) bool {
	if i >= 64 {
		return v.Hi>>(uint(i)-64)&1 == 1
	}
	return v.Lo>>uint(i)&1 == 1
}

// SetBit returns v with bit i set to b.
func (v V) SetBit(i int, b bool) V {
	if i >= 64 {
		if b {
			v.Hi |= 1 << (uint(i) - 64)
		} else {
			v.Hi &^= 1 << (uint(i) - 64)
		}
	} else {
		if b {
			v.Lo |= 1 << uint(i)
		} else {
			v.Lo &^= 1 << uint(i)
		}
	}
	return v.mask()
}

// And returns v & o at v's width.
func (v V) And(o V) V { return V{Hi: v.Hi & o.Hi, Lo: v.Lo & o.Lo, Width: v.Width}.mask() }

// Or returns v | o at v's width.
func (v V) Or(o V) V { return V{Hi: v.Hi | o.Hi, Lo: v.Lo | o.Lo, Width: v.Width}.mask() }

// Xor returns v ^ o at v's width.
func (v V) Xor(o V) V { return V{Hi: v.Hi ^ o.Hi, Lo: v.Lo ^ o.Lo, Width: v.Width}.mask() }

// Not returns ^v at v's width.
func (v V) Not() V { return V{Hi: ^v.Hi, Lo: ^v.Lo, Width: v.Width}.mask() }

// Add returns v + o (mod 2^width) at v's width.
func (v V) Add(o V) V {
	lo, carry := bits.Add64(v.Lo, o.Lo, 0)
	hi, _ := bits.Add64(v.Hi, o.Hi, carry)
	return V{Hi: hi, Lo: lo, Width: v.Width}.mask()
}

// Sub returns v - o (mod 2^width) at v's width.
func (v V) Sub(o V) V {
	lo, borrow := bits.Sub64(v.Lo, o.Lo, 0)
	hi, _ := bits.Sub64(v.Hi, o.Hi, borrow)
	return V{Hi: hi, Lo: lo, Width: v.Width}.mask()
}

// Shl returns v << n at v's width.
func (v V) Shl(n int) V {
	switch {
	case n <= 0:
		return v
	case n >= 128:
		return Zero(v.Width)
	case n >= 64:
		return V{Hi: v.Lo << uint(n-64), Width: v.Width}.mask()
	default:
		return V{Hi: v.Hi<<uint(n) | v.Lo>>uint(64-n), Lo: v.Lo << uint(n), Width: v.Width}.mask()
	}
}

// Shr returns v >> n (logical) at v's width.
func (v V) Shr(n int) V {
	switch {
	case n <= 0:
		return v
	case n >= 128:
		return Zero(v.Width)
	case n >= 64:
		return V{Lo: v.Hi >> uint(n-64), Width: v.Width}
	default:
		return V{Hi: v.Hi >> uint(n), Lo: v.Lo>>uint(n) | v.Hi<<uint(64-n), Width: v.Width}
	}
}

// WithWidth returns the value reinterpreted at a new width (masked).
func (v V) WithWidth(w int) V { return V{Hi: v.Hi, Lo: v.Lo, Width: w}.mask() }

// Bytes returns the big-endian fixed-width encoding, ceil(width/8) bytes.
func (v V) Bytes() []byte {
	n := (v.Width + 7) / 8
	out := make([]byte, n)
	lo, hi := v.Lo, v.Hi
	for i := n - 1; i >= 0; i-- {
		out[i] = byte(lo)
		lo = lo>>8 | hi<<56
		hi >>= 8
	}
	return out
}

// FromBytes decodes a big-endian byte string into a value of the given
// width. It fails if the bytes encode a value that does not fit in width
// bits.
func FromBytes(b []byte, width int) (V, error) {
	if len(b) > 16 {
		for _, c := range b[:len(b)-16] {
			if c != 0 {
				return V{}, fmt.Errorf("value: %d-byte string overflows 128 bits", len(b))
			}
		}
		b = b[len(b)-16:]
	}
	var hi, lo uint64
	for _, c := range b {
		hi = hi<<8 | lo>>56
		lo = lo<<8 | uint64(c)
	}
	v := V{Hi: hi, Lo: lo, Width: width}
	if m := v.mask(); m.Hi != v.Hi || m.Lo != v.Lo {
		return V{}, fmt.Errorf("value: %#x%016x does not fit in %d bits", hi, lo, width)
	}
	return v.mask(), nil
}

// PrefixMask returns a value of the given width whose top plen bits are 1.
func PrefixMask(plen, width int) V {
	if plen <= 0 {
		return Zero(width)
	}
	if plen >= width {
		return Ones(width)
	}
	return Ones(width).Shl(width - plen)
}

// String renders the value in hex with its width, e.g. 32w0x0a000001.
// Hand-rolled formatting: this sits on the hot path of entry keys and the
// reference-count indexes.
func (v V) String() string {
	var buf [44]byte
	n := appendUint(buf[:0], uint64(v.Width))
	n = append(n, 'w', '0', 'x')
	if v.Hi != 0 {
		n = appendHex(n, v.Hi, false)
		n = appendHex(n, v.Lo, true)
	} else {
		n = appendHex(n, v.Lo, false)
	}
	return string(n)
}

const hexDigits = "0123456789abcdef"

// appendHex appends the hex form of x; padded forces 16 digits.
func appendHex(dst []byte, x uint64, padded bool) []byte {
	var tmp [16]byte
	i := len(tmp)
	for x > 0 {
		i--
		tmp[i] = hexDigits[x&0xf]
		x >>= 4
	}
	if padded {
		for i > 0 {
			i--
			tmp[i] = '0'
		}
	} else if i == len(tmp) {
		i--
		tmp[i] = '0'
	}
	return append(dst, tmp[i:]...)
}

func appendUint(dst []byte, x uint64) []byte {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + x%10)
		x /= 10
		if x == 0 {
			break
		}
	}
	return append(dst, tmp[i:]...)
}
