// Package ir defines the typed intermediate representation of P4 models
// that SwitchV's engines (the fuzzer, the symbolic executor, and the BMv2
// reference simulator) operate on.
//
// The IR flattens all header and metadata fields into a single field space:
// every leaf field gets a small integer ID, and header validity bits are
// first-class width-1 fields named "<header>.$valid". Both concrete and
// symbolic interpretation are defined over this flat space.
package ir

import (
	"fmt"

	"switchv/internal/p4/ast"
)

// MatchKind is a table key's match kind.
type MatchKind int

// Match kinds, per the P4Runtime specification.
const (
	MatchExact MatchKind = iota
	MatchLPM
	MatchTernary
	MatchOptional
)

func (m MatchKind) String() string {
	switch m {
	case MatchExact:
		return "exact"
	case MatchLPM:
		return "lpm"
	case MatchTernary:
		return "ternary"
	case MatchOptional:
		return "optional"
	default:
		return fmt.Sprintf("MatchKind(%d)", int(m))
	}
}

// Field is a leaf field in the flattened field space.
type Field struct {
	ID    int
	Name  string // canonical dotted path, e.g. "headers.ipv4.dst_addr"
	Width int    // bits, 1..128

	// IsValidity marks the synthetic "<header>.$valid" bit.
	IsValidity bool
	// Header is the canonical path of the enclosing header instance for
	// fields that live inside a header (""
	// for metadata fields).
	Header string
}

// Program is a compiled P4 model.
type Program struct {
	Name     string
	Fields   []*Field
	Tables   []*Table
	Actions  []*Action
	Controls []*Control
	Consts   map[string]uint64

	// HeaderInstances lists header instance paths (e.g. "headers.ipv4")
	// with their declared type names, in declaration order; the reference
	// simulator uses these to map packets onto the field space.
	HeaderInstances []HeaderInstance

	fieldByName  map[string]*Field
	tableByName  map[string]*Table
	actionByName map[string]*Action

	// NoActionID is the id of the implicit NoAction.
	NoAction *Action
}

// HeaderInstance records a header-typed field of a struct parameter.
type HeaderInstance struct {
	Path     string // e.g. "headers.ipv4"
	TypeName string // e.g. "ipv4_t"
}

// FieldByName returns the field with the given canonical path.
func (p *Program) FieldByName(name string) (*Field, bool) {
	f, ok := p.fieldByName[name]
	return f, ok
}

// TableByName returns the named table.
func (p *Program) TableByName(name string) (*Table, bool) {
	t, ok := p.tableByName[name]
	return t, ok
}

// ActionByName returns the named action.
func (p *Program) ActionByName(name string) (*Action, bool) {
	a, ok := p.actionByName[name]
	return a, ok
}

// ActionParam is a control-plane supplied action parameter.
type ActionParam struct {
	Index int // 1-based P4Runtime param id = Index
	Name  string
	Width int
	// RefersTo, if non-nil, encodes a @refers_to(table, field) annotation:
	// values of this param must match an existing entry's key field in the
	// referenced table.
	RefersTo *Reference
}

// Reference is a @refers_to(table, field) edge.
type Reference struct {
	Table string
	Field string
}

// Action is a compiled action.
type Action struct {
	ID     uint32
	Name   string
	Params []ActionParam
	Body   []Stmt
	Annos  ast.Annotations
}

// KeyField is one element of a table key.
type KeyField struct {
	Index int // 1-based P4Runtime field id = Index
	Name  string
	Field *Field
	Match MatchKind
	// RefersTo, if non-nil, encodes @refers_to on this key.
	RefersTo *Reference
}

// Table is a compiled match-action table.
type Table struct {
	ID      uint32
	Name    string
	Keys    []KeyField
	Actions []*Action
	// DefaultAction is never nil after compilation (NoAction if elided).
	DefaultAction     *Action
	DefaultActionArgs []uint64
	ConstDefault      bool
	Size              int
	// IsSelector marks tables with implementation = action_selector,
	// programmed with one-shot action sets.
	IsSelector bool
	// EntryRestriction is the raw @entry_restriction constraint source
	// (possibly several, joined by &&), or "".
	EntryRestriction string
	Annos            ast.Annotations
}

// KeyByName returns the key field with the given name.
func (t *Table) KeyByName(name string) (KeyField, bool) {
	for _, k := range t.Keys {
		if k.Name == name {
			return k, true
		}
	}
	return KeyField{}, false
}

// HasAction reports whether the action is permitted in this table.
func (t *Table) HasAction(a *Action) bool {
	for _, x := range t.Actions {
		if x == a {
			return true
		}
	}
	return false
}

// Control is a compiled control block (pipeline stage).
type Control struct {
	Name string
	Body []Stmt
}

// Statements.

// Stmt is an IR statement.
type Stmt interface{ irStmt() }

// Assign writes the value of Src into Dst.
type Assign struct {
	Dst *Field
	Src Expr
}

// ApplyTable applies a match-action table.
type ApplyTable struct {
	Table *Table
}

// If branches on a boolean expression.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// Exit terminates the entire pipeline.
type Exit struct{}

// Return terminates the current control block.
type Return struct{}

func (*Assign) irStmt()     {}
func (*ApplyTable) irStmt() {}
func (*If) irStmt()         {}
func (*Exit) irStmt()       {}
func (*Return) irStmt()     {}

// Synthetic built-in field names. Primitive calls in P4 source compile to
// assignments over these fields, so both the concrete and symbolic
// evaluators only ever see assignments, table applies and branches.
const (
	// FieldDrop is set to 1 by mark_to_drop(); a packet with it set (and
	// not punted) is dropped. set_egress_port clears it.
	FieldDrop = "$drop"
	// FieldPunt is set to 1 by punt_to_cpu(): the packet goes to the
	// controller instead of being forwarded.
	FieldPunt = "$punt"
	// FieldCopy is set to 1 by copy_to_cpu(): a copy goes to the
	// controller and forwarding continues.
	FieldCopy = "$copy"
	// FieldMirror and FieldMirrorSession are set by mirror(session).
	FieldMirror        = "$mirror"
	FieldMirrorSession = "$mirror_session"
	// FieldIngressPort and FieldEgressSpec are the standard metadata
	// ports; they also exist under the program's declared standard
	// metadata parameter name as aliases.
	FieldIngressPort = "standard_metadata.ingress_port"
	FieldEgressSpec  = "standard_metadata.egress_spec"
)

// PortWidth is the bit width of port number fields.
const PortWidth = 16

// Expressions.

// Op is an expression operator.
type Op int

// Expression operators. Comparison and logical operators produce width-1
// boolean values; arithmetic and bitwise operators preserve their operand
// width.
const (
	OpConst Op = iota
	OpField
	OpParam
	OpEq
	OpNe
	OpLt // unsigned
	OpLe
	OpGt
	OpGe
	OpAnd // logical
	OpOr
	OpNot
	OpBitAnd
	OpBitOr
	OpBitXor
	OpBitNot
	OpAdd
	OpSub
	OpShl
	OpShr
	OpMux // Args[0] ? Args[1] : Args[2]
)

// Expr is an IR expression tree node.
type Expr struct {
	Op    Op
	Width int // result width in bits; 1 for booleans

	// OpConst:
	Value uint64
	// OpField:
	Field *Field
	// OpParam: action parameter index (0-based into Action.Params).
	Param int
	// Operands for the remaining ops.
	Args []*Expr
}

// ConstExpr returns a constant expression.
func ConstExpr(v uint64, width int) *Expr {
	return &Expr{Op: OpConst, Width: width, Value: v}
}

// FieldRef returns a field reference expression.
func FieldRef(f *Field) *Expr {
	return &Expr{Op: OpField, Width: f.Width, Field: f}
}

// ParamRef returns an action parameter reference.
func ParamRef(idx, width int) *Expr {
	return &Expr{Op: OpParam, Width: width, Param: idx}
}

// IsBool reports whether the expression is boolean-valued (width 1 and
// produced by a comparison/logical operator, a validity bit, or a 1-bit
// field).
func (e *Expr) IsBool() bool { return e.Width == 1 }

// MaxBits is the maximum supported field width.
const MaxBits = 128

// Mask returns the bitmask of the low w bits for w <= 64; for wider fields
// callers must use the two-word helpers in the evaluators.
func Mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}
