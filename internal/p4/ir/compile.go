package ir

import (
	"fmt"
	"sort"
	"strings"

	"switchv/internal/p4/ast"
	"switchv/internal/p4/token"
)

// Compile lowers a parsed P4 model into IR, resolving types, flattening the
// field space, and checking that all references are well-formed.
func Compile(prog *ast.Program) (*Program, error) {
	c := &compiler{
		src: prog,
		out: &Program{
			Name:         prog.Name,
			Consts:       map[string]uint64{},
			fieldByName:  map[string]*Field{},
			tableByName:  map[string]*Table{},
			actionByName: map[string]*Action{},
		},
		typeWidths:  map[string]int{},
		headerTypes: map[string]*ast.Header{},
		structTypes: map[string]*ast.Struct{},
	}
	if err := c.run(); err != nil {
		return nil, err
	}
	return c.out, nil
}

// MustCompile parses and compiles src, panicking on error; for tests and
// embedded models.
func MustCompile(src *ast.Program) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

type compiler struct {
	src *ast.Program
	out *Program

	typeWidths  map[string]int
	headerTypes map[string]*ast.Header
	structTypes map[string]*ast.Struct
}

func (c *compiler) errf(pos token.Pos, format string, args ...any) error {
	return fmt.Errorf("p4: %s: %s", pos, fmt.Sprintf(format, args...))
}

func (c *compiler) run() error {
	// Type environment.
	for _, td := range c.src.Typedefs {
		w, err := c.widthOf(td.Type)
		if err != nil {
			return err
		}
		if _, dup := c.typeWidths[td.Name]; dup {
			return c.errf(td.Pos, "duplicate typedef %s", td.Name)
		}
		c.typeWidths[td.Name] = w
	}
	for _, h := range c.src.Headers {
		if _, dup := c.headerTypes[h.Name]; dup {
			return c.errf(h.Pos, "duplicate header %s", h.Name)
		}
		c.headerTypes[h.Name] = h
	}
	for _, s := range c.src.Structs {
		if _, dup := c.structTypes[s.Name]; dup {
			return c.errf(s.Pos, "duplicate struct %s", s.Name)
		}
		c.structTypes[s.Name] = s
	}
	for _, cn := range c.src.Consts {
		if _, dup := c.out.Consts[cn.Name]; dup {
			return c.errf(cn.Pos, "duplicate const %s", cn.Name)
		}
		c.out.Consts[cn.Name] = cn.Value
	}

	// Synthetic pipeline-state fields.
	for _, sf := range []struct {
		name  string
		width int
	}{
		{FieldDrop, 1}, {FieldPunt, 1}, {FieldCopy, 1},
		{FieldMirror, 1}, {FieldMirrorSession, PortWidth},
	} {
		c.addField(&Field{Name: sf.name, Width: sf.width})
	}

	// Flatten control parameters into the field space. The same parameter
	// name must map to the same struct type in every control.
	paramTypes := map[string]string{}
	for _, ctrl := range c.src.Controls {
		for _, p := range ctrl.Params {
			if p.Type.IsBits() || p.Type.Name == "bool" {
				return c.errf(p.Pos, "control parameter %s must have struct type", p.Name)
			}
			if p.Type.Name == "standard_metadata_t" && c.structTypes[p.Type.Name] == nil {
				c.injectStandardMetadata()
			}
			st, ok := c.structTypes[p.Type.Name]
			if !ok {
				return c.errf(p.Pos, "unknown struct type %s for parameter %s", p.Type.Name, p.Name)
			}
			if prev, seen := paramTypes[p.Name]; seen {
				if prev != p.Type.Name {
					return c.errf(p.Pos, "parameter %s has type %s here but %s elsewhere", p.Name, p.Type.Name, prev)
				}
				continue
			}
			paramTypes[p.Name] = p.Type.Name
			if err := c.flattenStruct(p.Name, st); err != nil {
				return err
			}
		}
	}
	// Alias the program's standard metadata param to the canonical names.
	c.aliasStandardMetadata(paramTypes)

	// The implicit NoAction.
	noAct := &Action{Name: "no_action"}
	c.out.NoAction = noAct
	c.registerAction(noAct)

	// Declare all actions and tables first (so tables can reference
	// actions in any order and refers_to can reference any table), then
	// compile bodies.
	var allTables []*ast.Table
	for _, ctrl := range c.src.Controls {
		for _, a := range ctrl.Actions {
			if _, dup := c.out.actionByName[a.Name]; dup {
				return c.errf(a.Pos, "duplicate action %s", a.Name)
			}
			ir := &Action{Name: a.Name, Annos: a.Annos}
			for i, p := range a.Params {
				if p.Direction != "" {
					return c.errf(p.Pos, "action %s: only directionless (control-plane) parameters are supported", a.Name)
				}
				w, err := c.widthOf(p.Type)
				if err != nil {
					return err
				}
				ap := ActionParam{Index: i + 1, Name: p.Name, Width: w}
				if ref, ok := p.Annos.Find("refers_to"); ok {
					r, err := parseRefersTo(ref)
					if err != nil {
						return c.errf(p.Pos, "action %s param %s: %v", a.Name, p.Name, err)
					}
					ap.RefersTo = &r
				}
				ir.Params = append(ir.Params, ap)
			}
			c.registerAction(ir)

		}
		for _, t := range ctrl.Tables {
			if _, dup := c.out.tableByName[t.Name]; dup {
				return c.errf(t.Pos, "duplicate table %s", t.Name)
			}
			ir := &Table{Name: t.Name, Annos: t.Annos}
			c.out.Tables = append(c.out.Tables, ir)
			c.out.tableByName[t.Name] = ir
			allTables = append(allTables, t)
		}
	}

	// Compile action bodies.
	for _, ctrl := range c.src.Controls {
		for _, a := range ctrl.Actions {
			ir := c.out.actionByName[a.Name]
			env := &scope{c: c, action: ir}
			body, err := c.compileBlock(a.Body, env, false)
			if err != nil {
				return err
			}
			ir.Body = body
		}
	}

	// Compile tables.
	for _, t := range allTables {
		if err := c.compileTable(t); err != nil {
			return err
		}
	}

	// Validate refers_to targets now that all tables exist.
	if err := c.checkReferences(); err != nil {
		return err
	}

	// Compile apply blocks.
	for _, ctrl := range c.src.Controls {
		env := &scope{c: c}
		body, err := c.compileBlock(ctrl.Apply, env, true)
		if err != nil {
			return err
		}
		c.out.Controls = append(c.out.Controls, &Control{Name: ctrl.Name, Body: body})
	}

	// Stable IDs. P4Runtime convention: actions live in the 0x01 prefix,
	// tables in the 0x02 prefix.
	for i, a := range c.out.Actions {
		a.ID = 0x01000001 + uint32(i)
	}
	for i, t := range c.out.Tables {
		t.ID = 0x02000001 + uint32(i)
	}
	return nil
}

func (c *compiler) registerAction(a *Action) {
	c.out.Actions = append(c.out.Actions, a)
	c.out.actionByName[a.Name] = a
}

func (c *compiler) addField(f *Field) *Field {
	f.ID = len(c.out.Fields)
	c.out.Fields = append(c.out.Fields, f)
	c.out.fieldByName[f.Name] = f
	return f
}

// injectStandardMetadata declares the built-in standard_metadata_t.
func (c *compiler) injectStandardMetadata() {
	c.structTypes["standard_metadata_t"] = &ast.Struct{
		Name: "standard_metadata_t",
		Fields: []ast.Field{
			{Name: "ingress_port", Type: ast.Type{Name: "bit", Width: PortWidth}},
			{Name: "egress_spec", Type: ast.Type{Name: "bit", Width: PortWidth}},
			{Name: "egress_port", Type: ast.Type{Name: "bit", Width: PortWidth}},
		},
	}
}

// aliasStandardMetadata makes the canonical standard metadata names resolve
// even when the program declares the parameter under a different name.
func (c *compiler) aliasStandardMetadata(paramTypes map[string]string) {
	for name, typ := range paramTypes {
		if typ != "standard_metadata_t" || name == "standard_metadata" {
			continue
		}
		for _, suffix := range []string{"ingress_port", "egress_spec", "egress_port"} {
			if f, ok := c.out.fieldByName[name+"."+suffix]; ok {
				c.out.fieldByName["standard_metadata."+suffix] = f
			}
		}
	}
}

func (c *compiler) widthOf(t ast.Type) (int, error) {
	switch {
	case t.IsBits():
		return t.Width, nil
	case t.Name == "bool":
		return 1, nil
	default:
		if w, ok := c.typeWidths[t.Name]; ok {
			return w, nil
		}
		return 0, c.errf(t.Pos, "type %s is not a bit type", t.Name)
	}
}

// flattenStruct registers all leaf fields of a struct parameter.
func (c *compiler) flattenStruct(prefix string, st *ast.Struct) error {
	for _, f := range st.Fields {
		path := prefix + "." + f.Name
		if _, dup := c.out.fieldByName[path]; dup {
			return c.errf(f.Pos, "duplicate field path %s", path)
		}
		if f.Type.IsBits() || f.Type.Name == "bool" {
			w, err := c.widthOf(f.Type)
			if err != nil {
				return err
			}
			c.addField(&Field{Name: path, Width: w})
			continue
		}
		if h, ok := c.headerTypes[f.Type.Name]; ok {
			c.out.HeaderInstances = append(c.out.HeaderInstances, HeaderInstance{Path: path, TypeName: f.Type.Name})
			c.addField(&Field{Name: path + ".$valid", Width: 1, IsValidity: true, Header: path})
			for _, hf := range h.Fields {
				w, err := c.widthOf(hf.Type)
				if err != nil {
					return err
				}
				c.addField(&Field{Name: path + "." + hf.Name, Width: w, Header: path})
			}
			continue
		}
		if s, ok := c.structTypes[f.Type.Name]; ok {
			if err := c.flattenStruct(path, s); err != nil {
				return err
			}
			continue
		}
		if w, ok := c.typeWidths[f.Type.Name]; ok {
			c.addField(&Field{Name: path, Width: w})
			continue
		}
		return c.errf(f.Pos, "unknown type %s for field %s", f.Type.Name, path)
	}
	return nil
}

func parseRefersTo(a ast.Annotation) (Reference, error) {
	// Body is "table , field" as tokens.
	var parts []string
	for _, t := range a.Body {
		if t.Kind == token.Ident {
			parts = append(parts, t.Text)
		}
	}
	if len(parts) != 2 {
		return Reference{}, fmt.Errorf("@refers_to expects (table, field)")
	}
	return Reference{Table: parts[0], Field: parts[1]}, nil
}

func (c *compiler) compileTable(t *ast.Table) error {
	ir := c.out.tableByName[t.Name]
	for i, k := range t.Keys {
		f, err := c.keyField(k.Expr)
		if err != nil {
			return err
		}
		name := f.Name
		if i := strings.LastIndexByte(name, '.'); i >= 0 {
			name = name[i+1:]
		}
		if name == "$valid" {
			// e.g. headers.ipv4.$valid → is_ipv4_valid
			segs := strings.Split(f.Name, ".")
			name = "is_" + segs[len(segs)-2] + "_valid"
		}
		if a, ok := k.Annos.Find("name"); ok {
			if s, ok := a.StringArg(); ok {
				name = s
			}
		}
		kf := KeyField{Index: i + 1, Name: name, Field: f}
		switch k.MatchKind {
		case "exact":
			kf.Match = MatchExact
		case "lpm":
			kf.Match = MatchLPM
		case "ternary":
			kf.Match = MatchTernary
		case "optional":
			kf.Match = MatchOptional
		}
		if ref, ok := k.Annos.Find("refers_to"); ok {
			r, err := parseRefersTo(ref)
			if err != nil {
				return c.errf(k.Pos, "table %s key %s: %v", t.Name, name, err)
			}
			kf.RefersTo = &r
		}
		for _, other := range ir.Keys {
			if other.Name == kf.Name {
				return c.errf(k.Pos, "table %s: duplicate key name %s", t.Name, kf.Name)
			}
		}
		ir.Keys = append(ir.Keys, kf)
	}
	// LPM tables may have at most one lpm key.
	lpmCount := 0
	for _, k := range ir.Keys {
		if k.Match == MatchLPM {
			lpmCount++
		}
	}
	if lpmCount > 1 {
		return c.errf(t.Pos, "table %s has %d lpm keys; at most one is allowed", t.Name, lpmCount)
	}

	for _, ar := range t.Actions {
		a, ok := c.out.actionByName[ar.Name]
		if !ok {
			return c.errf(ar.Pos, "table %s references unknown action %s", t.Name, ar.Name)
		}
		ir.Actions = append(ir.Actions, a)
	}
	ir.DefaultAction = c.out.NoAction
	if t.DefaultAction != "" {
		a, ok := c.out.actionByName[t.DefaultAction]
		if !ok {
			return c.errf(t.Pos, "table %s: unknown default action %s", t.Name, t.DefaultAction)
		}
		ir.DefaultAction = a
		ir.ConstDefault = t.ConstDefault
		if len(t.DefaultArgs) != len(a.Params) {
			return c.errf(t.Pos, "table %s: default action %s takes %d args, got %d", t.Name, a.Name, len(a.Params), len(t.DefaultArgs))
		}
		for _, arg := range t.DefaultArgs {
			v, err := c.constEval(arg)
			if err != nil {
				return err
			}
			ir.DefaultActionArgs = append(ir.DefaultActionArgs, v)
		}
	}
	if t.Size != nil {
		v, err := c.constEval(t.Size)
		if err != nil {
			return err
		}
		ir.Size = int(v)
	} else {
		ir.Size = 1024
	}
	ir.IsSelector = t.Implementation != ""

	var restrictions []string
	for _, a := range t.Annos.FindAll("entry_restriction") {
		if s, ok := a.StringArg(); ok {
			restrictions = append(restrictions, s)
		} else {
			return c.errf(t.Pos, "table %s: @entry_restriction requires a string argument", t.Name)
		}
	}
	// Multiple annotations and ';'-separated clauses are both conjunctions
	// in the p4-constraints language.
	ir.EntryRestriction = strings.Join(restrictions, "; ")
	return nil
}

// keyField resolves a table key expression to a field: either a direct
// field reference or a header isValid() call.
func (c *compiler) keyField(e ast.Expr) (*Field, error) {
	switch x := e.(type) {
	case *ast.FieldExpr:
		f, ok := c.out.fieldByName[strings.Join(x.Path, ".")]
		if !ok {
			return nil, c.errf(x.Pos, "unknown field %s", strings.Join(x.Path, "."))
		}
		return f, nil
	case *ast.CallExpr:
		if x.Name == "isValid" && len(x.Recv) > 0 && len(x.Args) == 0 {
			name := strings.Join(x.Recv, ".") + ".$valid"
			f, ok := c.out.fieldByName[name]
			if !ok {
				return nil, c.errf(x.Pos, "unknown header %s", strings.Join(x.Recv, "."))
			}
			return f, nil
		}
		return nil, c.errf(x.Pos, "table keys must be fields or isValid() calls")
	default:
		return nil, fmt.Errorf("p4: table keys must be fields or isValid() calls")
	}
}

// constEval evaluates a compile-time constant expression.
func (c *compiler) constEval(e ast.Expr) (uint64, error) {
	switch x := e.(type) {
	case *ast.IntExpr:
		return x.Value, nil
	case *ast.IdentExpr:
		if v, ok := c.out.Consts[x.Name]; ok {
			return v, nil
		}
		return 0, c.errf(x.Pos, "%s is not a constant", x.Name)
	case *ast.BinaryExpr:
		a, err := c.constEval(x.X)
		if err != nil {
			return 0, err
		}
		b, err := c.constEval(x.Y)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case token.Plus:
			return a + b, nil
		case token.Minus:
			return a - b, nil
		case token.Shl:
			return a << b, nil
		case token.Shr:
			return a >> b, nil
		case token.Or:
			return a | b, nil
		case token.And:
			return a & b, nil
		case token.Xor:
			return a ^ b, nil
		default:
			return 0, c.errf(x.Pos, "operator %s not allowed in constant expression", x.Op)
		}
	default:
		return 0, fmt.Errorf("p4: expression is not constant")
	}
}

// checkReferences validates all @refers_to edges.
func (c *compiler) checkReferences() error {
	check := func(where string, r *Reference) error {
		if r == nil {
			return nil
		}
		t, ok := c.out.tableByName[r.Table]
		if !ok {
			return fmt.Errorf("p4: %s: @refers_to references unknown table %s", where, r.Table)
		}
		if _, ok := t.KeyByName(r.Field); !ok {
			return fmt.Errorf("p4: %s: @refers_to references unknown key %s.%s", where, r.Table, r.Field)
		}
		return nil
	}
	for _, t := range c.out.Tables {
		for _, k := range t.Keys {
			if err := check(fmt.Sprintf("table %s key %s", t.Name, k.Name), k.RefersTo); err != nil {
				return err
			}
		}
	}
	for _, a := range c.out.Actions {
		for _, p := range a.Params {
			if err := check(fmt.Sprintf("action %s param %s", a.Name, p.Name), p.RefersTo); err != nil {
				return err
			}
		}
	}
	return nil
}

// scope is the name environment for statement/expression compilation.
type scope struct {
	c      *compiler
	action *Action // nil in apply blocks
}

func (s *scope) lookupParam(name string) (int, int, bool) {
	if s.action == nil {
		return 0, 0, false
	}
	for i, p := range s.action.Params {
		if p.Name == name {
			return i, p.Width, true
		}
	}
	return 0, 0, false
}

func (c *compiler) compileBlock(b *ast.BlockStmt, env *scope, isApply bool) ([]Stmt, error) {
	var out []Stmt
	for _, st := range b.Stmts {
		compiled, err := c.compileStmt(st, env, isApply)
		if err != nil {
			return nil, err
		}
		out = append(out, compiled...)
	}
	return out, nil
}

func (c *compiler) compileStmt(st ast.Stmt, env *scope, isApply bool) ([]Stmt, error) {
	switch x := st.(type) {
	case *ast.BlockStmt:
		return c.compileBlock(x, env, isApply)
	case *ast.ExitStmt:
		return []Stmt{&Exit{}}, nil
	case *ast.ReturnStmt:
		return []Stmt{&Return{}}, nil
	case *ast.IfStmt:
		cond, err := c.compileExpr(x.Cond, env, 1)
		if err != nil {
			return nil, err
		}
		if !cond.IsBool() {
			return nil, c.errf(x.Pos, "if condition must be boolean")
		}
		then, err := c.compileBlock(x.Then, env, isApply)
		if err != nil {
			return nil, err
		}
		node := &If{Cond: *cond, Then: then}
		switch e := x.Else.(type) {
		case nil:
		case *ast.BlockStmt:
			els, err := c.compileBlock(e, env, isApply)
			if err != nil {
				return nil, err
			}
			node.Else = els
		case *ast.IfStmt:
			els, err := c.compileStmt(e, env, isApply)
			if err != nil {
				return nil, err
			}
			node.Else = els
		default:
			return nil, c.errf(x.Pos, "unsupported else statement")
		}
		return []Stmt{node}, nil
	case *ast.AssignStmt:
		var dst *Field
		switch l := x.LHS.(type) {
		case *ast.FieldExpr:
			f, ok := c.out.fieldByName[strings.Join(l.Path, ".")]
			if !ok {
				return nil, c.errf(l.Pos, "unknown field %s", strings.Join(l.Path, "."))
			}
			dst = f
		case *ast.IdentExpr:
			return nil, c.errf(l.Pos, "cannot assign to %s", l.Name)
		default:
			return nil, c.errf(x.Pos, "invalid assignment target")
		}
		rhs, err := c.compileExpr(x.RHS, env, dst.Width)
		if err != nil {
			return nil, err
		}
		if rhs.Width != dst.Width {
			return nil, c.errf(x.Pos, "width mismatch assigning %d-bit value to %d-bit field %s", rhs.Width, dst.Width, dst.Name)
		}
		return []Stmt{&Assign{Dst: dst, Src: *rhs}}, nil
	case *ast.CallStmt:
		return c.compileCallStmt(x, env, isApply)
	default:
		return nil, fmt.Errorf("p4: unsupported statement %T", st)
	}
}

func (c *compiler) compileCallStmt(x *ast.CallStmt, env *scope, isApply bool) ([]Stmt, error) {
	call := x.Call
	one := ConstExpr(1, 1)
	zero := ConstExpr(0, 1)
	fieldOf := func(name string) *Field { return c.out.fieldByName[name] }

	if len(call.Recv) > 0 {
		recv := strings.Join(call.Recv, ".")
		switch call.Name {
		case "apply":
			if !isApply {
				return nil, c.errf(call.Pos, "%s.apply() is only allowed in apply blocks", recv)
			}
			t, ok := c.out.tableByName[recv]
			if !ok {
				return nil, c.errf(call.Pos, "unknown table %s", recv)
			}
			return []Stmt{&ApplyTable{Table: t}}, nil
		case "setValid", "setInvalid":
			f, ok := c.out.fieldByName[recv+".$valid"]
			if !ok {
				return nil, c.errf(call.Pos, "unknown header %s", recv)
			}
			v := one
			if call.Name == "setInvalid" {
				v = zero
			}
			return []Stmt{&Assign{Dst: f, Src: *v}}, nil
		default:
			return nil, c.errf(call.Pos, "unsupported method %s.%s()", recv, call.Name)
		}
	}

	switch call.Name {
	case "no_op":
		return nil, nil
	case "mark_to_drop":
		return []Stmt{&Assign{Dst: fieldOf(FieldDrop), Src: *one}}, nil
	case "punt_to_cpu":
		return []Stmt{&Assign{Dst: fieldOf(FieldPunt), Src: *one}}, nil
	case "copy_to_cpu":
		return []Stmt{&Assign{Dst: fieldOf(FieldCopy), Src: *one}}, nil
	case "set_egress_port":
		if len(call.Args) != 1 {
			return nil, c.errf(call.Pos, "set_egress_port takes one argument")
		}
		port, err := c.compileExpr(call.Args[0], env, PortWidth)
		if err != nil {
			return nil, err
		}
		egress, ok := c.out.fieldByName[FieldEgressSpec]
		if !ok {
			return nil, c.errf(call.Pos, "program has no standard metadata parameter")
		}
		return []Stmt{
			&Assign{Dst: egress, Src: *port},
			&Assign{Dst: fieldOf(FieldDrop), Src: *zero},
		}, nil
	case "mirror":
		if len(call.Args) != 1 {
			return nil, c.errf(call.Pos, "mirror takes one argument")
		}
		sess, err := c.compileExpr(call.Args[0], env, PortWidth)
		if err != nil {
			return nil, err
		}
		return []Stmt{
			&Assign{Dst: fieldOf(FieldMirror), Src: *one},
			&Assign{Dst: fieldOf(FieldMirrorSession), Src: *sess},
		}, nil
	default:
		return nil, c.errf(call.Pos, "unknown primitive %s", call.Name)
	}
}

// compileExpr lowers an expression. expectedWidth (0 = unknown) is used to
// size unsuffixed integer literals.
func (c *compiler) compileExpr(e ast.Expr, env *scope, expectedWidth int) (*Expr, error) {
	switch x := e.(type) {
	case *ast.IntExpr:
		w := x.Width
		if w == 0 {
			w = expectedWidth
		}
		if w == 0 {
			w = 64
		}
		if w < 64 && x.Value >= 1<<uint(w) {
			return nil, c.errf(x.Pos, "literal %d does not fit in %d bits", x.Value, w)
		}
		return ConstExpr(x.Value, w), nil
	case *ast.BoolExpr:
		v := uint64(0)
		if x.Value {
			v = 1
		}
		return ConstExpr(v, 1), nil
	case *ast.IdentExpr:
		if idx, w, ok := env.lookupParam(x.Name); ok {
			return ParamRef(idx, w), nil
		}
		if v, ok := c.out.Consts[x.Name]; ok {
			w := expectedWidth
			if w == 0 {
				w = 64
			}
			return ConstExpr(v, w), nil
		}
		return nil, c.errf(x.Pos, "unknown identifier %s", x.Name)
	case *ast.FieldExpr:
		f, ok := c.out.fieldByName[strings.Join(x.Path, ".")]
		if !ok {
			return nil, c.errf(x.Pos, "unknown field %s", strings.Join(x.Path, "."))
		}
		return FieldRef(f), nil
	case *ast.CallExpr:
		if x.Name == "isValid" && len(x.Recv) > 0 && len(x.Args) == 0 {
			name := strings.Join(x.Recv, ".") + ".$valid"
			f, ok := c.out.fieldByName[name]
			if !ok {
				return nil, c.errf(x.Pos, "unknown header %s", strings.Join(x.Recv, "."))
			}
			return FieldRef(f), nil
		}
		return nil, c.errf(x.Pos, "unsupported call %s in expression", x.Name)
	case *ast.UnaryExpr:
		switch x.Op {
		case token.Not:
			sub, err := c.compileExpr(x.X, env, 1)
			if err != nil {
				return nil, err
			}
			if !sub.IsBool() {
				return nil, c.errf(x.Pos, "! requires a boolean operand")
			}
			return &Expr{Op: OpNot, Width: 1, Args: []*Expr{sub}}, nil
		case token.Tilde:
			sub, err := c.compileExpr(x.X, env, expectedWidth)
			if err != nil {
				return nil, err
			}
			return &Expr{Op: OpBitNot, Width: sub.Width, Args: []*Expr{sub}}, nil
		case token.Minus:
			sub, err := c.compileExpr(x.X, env, expectedWidth)
			if err != nil {
				return nil, err
			}
			return &Expr{Op: OpSub, Width: sub.Width, Args: []*Expr{ConstExpr(0, sub.Width), sub}}, nil
		}
		return nil, c.errf(x.Pos, "unsupported unary operator")
	case *ast.TernaryExpr:
		cond, err := c.compileExpr(x.Cond, env, 1)
		if err != nil {
			return nil, err
		}
		a, err := c.compileExpr(x.X, env, expectedWidth)
		if err != nil {
			return nil, err
		}
		b, err := c.compileExpr(x.Y, env, a.Width)
		if err != nil {
			return nil, err
		}
		if a.Width != b.Width {
			return nil, fmt.Errorf("p4: ternary arms have widths %d and %d", a.Width, b.Width)
		}
		return &Expr{Op: OpMux, Width: a.Width, Args: []*Expr{cond, a, b}}, nil
	case *ast.BinaryExpr:
		return c.compileBinary(x, env, expectedWidth)
	default:
		return nil, fmt.Errorf("p4: unsupported expression %T", e)
	}
}

func (c *compiler) compileBinary(x *ast.BinaryExpr, env *scope, expectedWidth int) (*Expr, error) {
	var op Op
	boolOperands, boolResult := false, false
	switch x.Op {
	case token.Eq:
		op, boolResult = OpEq, true
	case token.Ne:
		op, boolResult = OpNe, true
	case token.Lt:
		op, boolResult = OpLt, true
	case token.Le:
		op, boolResult = OpLe, true
	case token.Gt:
		op, boolResult = OpGt, true
	case token.Ge:
		op, boolResult = OpGe, true
	case token.AndAnd:
		op, boolOperands, boolResult = OpAnd, true, true
	case token.OrOr:
		op, boolOperands, boolResult = OpOr, true, true
	case token.And:
		op = OpBitAnd
	case token.Or:
		op = OpBitOr
	case token.Xor:
		op = OpBitXor
	case token.Plus:
		op = OpAdd
	case token.Minus:
		op = OpSub
	case token.Shl:
		op = OpShl
	case token.Shr:
		op = OpShr
	default:
		return nil, c.errf(x.Pos, "unsupported binary operator %s", x.Op)
	}

	hint := expectedWidth
	if boolResult && !boolOperands {
		hint = 0 // comparisons size operands off each other
	}
	if boolOperands {
		hint = 1
	}
	a, err := c.compileExpr(x.X, env, hint)
	if err != nil {
		return nil, err
	}
	b, err := c.compileExpr(x.Y, env, a.Width)
	if err != nil {
		return nil, err
	}
	// Re-size an unsuffixed literal left operand off the right.
	if a.Op == OpConst && a.Width != b.Width {
		a = ConstExpr(a.Value, b.Width)
	}
	if op == OpShl || op == OpShr {
		// Shift amounts may have any width.
	} else if a.Width != b.Width {
		return nil, c.errf(x.Pos, "operand widths differ: %d vs %d", a.Width, b.Width)
	}
	if boolOperands && (!a.IsBool() || !b.IsBool()) {
		return nil, c.errf(x.Pos, "logical operator requires boolean operands")
	}
	w := a.Width
	if boolResult {
		w = 1
	}
	return &Expr{Op: op, Width: w, Args: []*Expr{a, b}}, nil
}

// SortedFieldNames returns all field names in sorted order (testing aid).
func (p *Program) SortedFieldNames() []string {
	names := make([]string, 0, len(p.Fields))
	for _, f := range p.Fields {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return names
}
