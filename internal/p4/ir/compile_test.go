package ir

import (
	"strings"
	"testing"

	"switchv/internal/p4/parser"
)

func compile(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func compileErr(t *testing.T, src string) error {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse error (want compile error): %v", err)
	}
	_, err = Compile(prog)
	if err == nil {
		t.Fatal("Compile succeeded, want error")
	}
	return err
}

const base = `
typedef bit<32> addr_t;
const bit<16> SZ = 100;

header ipv4_t { bit<8> ttl; addr_t dst_addr; }
struct headers_t { ipv4_t ipv4; }
struct meta_t { bit<10> vrf_id; }

control ingress(inout headers_t headers, inout meta_t meta,
                inout standard_metadata_t standard_metadata) {
  action drop() { mark_to_drop(); }
  action fwd(bit<16> port) { set_egress_port(port); }

  table route {
    key = {
      meta.vrf_id : exact;
      headers.ipv4.dst_addr : lpm @name("dst");
    }
    actions = { drop; fwd; }
    const default_action = drop;
    size = SZ;
  }

  apply {
    if (headers.ipv4.isValid()) {
      if (headers.ipv4.ttl <= 1) { punt_to_cpu(); } else { route.apply(); }
      headers.ipv4.ttl = headers.ipv4.ttl - 1;
    }
  }
}
`

func TestCompileBase(t *testing.T) {
	p := compile(t, base)
	route, ok := p.TableByName("route")
	if !ok {
		t.Fatal("missing table route")
	}
	if route.Size != 100 {
		t.Errorf("size = %d", route.Size)
	}
	if route.Keys[0].Name != "vrf_id" {
		t.Errorf("key 0 name = %q (default should be last path segment)", route.Keys[0].Name)
	}
	if route.Keys[1].Name != "dst" || route.Keys[1].Match != MatchLPM {
		t.Errorf("key 1 = %+v", route.Keys[1])
	}
	if route.DefaultAction.Name != "drop" {
		t.Errorf("default = %s", route.DefaultAction.Name)
	}

	// drop compiles to $drop := 1.
	drop, _ := p.ActionByName("drop")
	if len(drop.Body) != 1 {
		t.Fatalf("drop body = %+v", drop.Body)
	}
	asg := drop.Body[0].(*Assign)
	if asg.Dst.Name != FieldDrop || asg.Src.Op != OpConst || asg.Src.Value != 1 {
		t.Errorf("drop = %+v", asg)
	}

	// fwd compiles to egress_spec := port; $drop := 0.
	fwd, _ := p.ActionByName("fwd")
	if len(fwd.Body) != 2 {
		t.Fatalf("fwd body has %d stmts", len(fwd.Body))
	}
	if a := fwd.Body[0].(*Assign); a.Dst.Name != "standard_metadata.egress_spec" || a.Src.Op != OpParam {
		t.Errorf("fwd[0] = %+v", a)
	}
	if a := fwd.Body[1].(*Assign); a.Dst.Name != FieldDrop || a.Src.Value != 0 {
		t.Errorf("fwd[1] = %+v", a)
	}

	// Apply: if(valid) { if(ttl<=1) punt else apply; ttl-- }.
	ctrl := p.Controls[0]
	outer := ctrl.Body[0].(*If)
	if outer.Cond.Op != OpField || !outer.Cond.Field.IsValidity {
		t.Errorf("outer cond = %+v", outer.Cond)
	}
	inner := outer.Then[0].(*If)
	if inner.Cond.Op != OpLe || inner.Cond.Width != 1 {
		t.Errorf("inner cond = %+v", inner.Cond)
	}
	if a := inner.Then[0].(*Assign); a.Dst.Name != FieldPunt {
		t.Errorf("punt = %+v", a)
	}
	if ap := inner.Else[0].(*ApplyTable); ap.Table.Name != "route" {
		t.Errorf("apply = %+v", ap)
	}
	dec := outer.Then[1].(*Assign)
	if dec.Src.Op != OpSub || dec.Src.Args[1].Value != 1 || dec.Src.Args[1].Width != 8 {
		t.Errorf("ttl decrement = %+v", dec.Src)
	}
}

func TestCompileExitReturnSetValid(t *testing.T) {
	src := `
header h_t { bit<8> x; }
struct headers_t { h_t h; }
struct meta_t { bit<8> m; }
control c(inout headers_t headers, inout meta_t meta) {
  apply {
    headers.h.setValid();
    headers.h.x = 3;
    headers.h.setInvalid();
    return;
    exit;
  }
}
`
	p := compile(t, src)
	body := p.Controls[0].Body
	if a := body[0].(*Assign); !a.Dst.IsValidity || a.Src.Value != 1 {
		t.Errorf("setValid = %+v", a)
	}
	if a := body[2].(*Assign); !a.Dst.IsValidity || a.Src.Value != 0 {
		t.Errorf("setInvalid = %+v", a)
	}
	if _, ok := body[3].(*Return); !ok {
		t.Errorf("body[3] = %T", body[3])
	}
	if _, ok := body[4].(*Exit); !ok {
		t.Errorf("body[4] = %T", body[4])
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src string
		wantSub   string
	}{
		{"unknown field", `
struct m_t { bit<8> a; }
control c(inout m_t m) { apply { m.b = 1; } }`, "unknown field"},
		{"width mismatch", `
struct m_t { bit<8> a; bit<16> b; }
control c(inout m_t m) { apply { m.a = m.b; } }`, "width mismatch"},
		{"unknown action", `
struct m_t { bit<8> a; }
control c(inout m_t m) {
  table t { key = { m.a : exact; } actions = { ghost; } }
  apply { t.apply(); }
}`, "unknown action"},
		{"unknown table", `
struct m_t { bit<8> a; }
control c(inout m_t m) { apply { ghost.apply(); } }`, "unknown table"},
		{"bad refers_to", `
struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t {
    key = { m.a : exact @refers_to(missing, k); }
    actions = { nop; }
  }
  apply { t.apply(); }
}`, "unknown table"},
		{"refers_to unknown key", `
struct m_t { bit<8> a; bit<8> b; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table target {
    key = { m.a : exact @name("k"); }
    actions = { nop; }
  }
  table src {
    key = { m.b : exact @refers_to(target, missing); }
    actions = { nop; }
  }
  apply { target.apply(); src.apply(); }
}`, "unknown key"},
		{"refers_to one argument", `
struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t {
    key = { m.a : exact @refers_to(t); }
    actions = { nop; }
  }
  apply { t.apply(); }
}`, "expects (table, field)"},
		{"refers_to three arguments", `
struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t {
    key = { m.a : exact @refers_to(t, k, extra); }
    actions = { nop; }
  }
  apply { t.apply(); }
}`, "expects (table, field)"},
		{"two lpm keys", `
struct m_t { bit<8> a; bit<8> b; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t {
    key = { m.a : lpm; m.b : lpm; }
    actions = { nop; }
  }
  apply { t.apply(); }
}`, "lpm"},
		{"literal too wide", `
struct m_t { bit<4> a; }
control c(inout m_t m) { apply { m.a = 99; } }`, "does not fit"},
		{"non-bool if", `
struct m_t { bit<8> a; }
control c(inout m_t m) { apply { if (m.a) { } } }`, "boolean"},
		{"apply in action", `
struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t { key = { m.a : exact; } actions = { nop; } }
  action bad() { t.apply(); }
  apply { t.apply(); }
}`, "apply blocks"},
		{"duplicate key name", `
struct m_t { bit<8> a; bit<8> b; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t {
    key = { m.a : exact @name("k"); m.b : exact @name("k"); }
    actions = { nop; }
  }
  apply { t.apply(); }
}`, "duplicate key name"},
		{"default action arity", `
struct m_t { bit<8> a; }
control c(inout m_t m) {
  action set_a(bit<8> v) { m.a = v; }
  table t {
    key = { m.a : exact; }
    actions = { set_a; }
    default_action = set_a;
  }
  apply { t.apply(); }
}`, "takes 1 args"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := compileErr(t, c.src)
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error = %v, want substring %q", err, c.wantSub)
			}
		})
	}
}

func TestValidityKeyNaming(t *testing.T) {
	src := `
header ip_t { bit<8> ttl; }
struct headers_t { ip_t ipv4; }
struct m_t { bit<8> a; }
control c(inout headers_t headers, inout m_t m) {
  action nop() { no_op(); }
  table t {
    key = { headers.ipv4.isValid() : optional; }
    actions = { nop; }
  }
  apply { t.apply(); }
}
`
	p := compile(t, src)
	tbl, _ := p.TableByName("t")
	if tbl.Keys[0].Name != "is_ipv4_valid" {
		t.Errorf("validity key name = %q", tbl.Keys[0].Name)
	}
	if tbl.Keys[0].Match != MatchOptional {
		t.Errorf("match = %v", tbl.Keys[0].Match)
	}
}

func TestConstExprFolding(t *testing.T) {
	src := `
const bit<16> A = 10;
const bit<16> B = 4;
struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t {
    key = { m.a : exact; }
    actions = { nop; }
    size = A + B;
  }
  apply { t.apply(); }
}
`
	p := compile(t, src)
	tbl, _ := p.TableByName("t")
	if tbl.Size != 14 {
		t.Errorf("size = %d", tbl.Size)
	}
}

func TestMirrorPrimitive(t *testing.T) {
	src := `
struct m_t { bit<16> sess; }
control c(inout m_t m) {
  apply { mirror(m.sess); copy_to_cpu(); }
}
`
	p := compile(t, src)
	body := p.Controls[0].Body
	if a := body[0].(*Assign); a.Dst.Name != FieldMirror {
		t.Errorf("mirror[0] = %+v", a)
	}
	if a := body[1].(*Assign); a.Dst.Name != FieldMirrorSession || a.Src.Op != OpField {
		t.Errorf("mirror[1] = %+v", a)
	}
	if a := body[2].(*Assign); a.Dst.Name != FieldCopy {
		t.Errorf("copy = %+v", a)
	}
}

func TestTableAndActionLookups(t *testing.T) {
	p := compile(t, base)
	if _, ok := p.TableByName("nope"); ok {
		t.Error("found nonexistent table")
	}
	if _, ok := p.ActionByName("nope"); ok {
		t.Error("found nonexistent action")
	}
	route, _ := p.TableByName("route")
	if _, ok := route.KeyByName("dst"); !ok {
		t.Error("KeyByName(dst) failed")
	}
	if _, ok := route.KeyByName("nope"); ok {
		t.Error("KeyByName(nope) succeeded")
	}
	drop, _ := p.ActionByName("drop")
	if !route.HasAction(drop) {
		t.Error("HasAction(drop) = false")
	}
	if route.HasAction(p.NoAction) {
		t.Error("HasAction(no_action) = true")
	}
	names := p.SortedFieldNames()
	if len(names) == 0 || names[0] > names[len(names)-1] {
		t.Error("SortedFieldNames not sorted")
	}
}
