package ast

import (
	"fmt"
	"strings"

	"switchv/internal/p4/token"
)

// Print renders a program back to P4 source in the subset grammar. The
// output re-parses to a semantically identical program (the round-trip
// property tested in the parser package), which also makes Print useful
// for generating model variants programmatically.
func Print(p *Program) string {
	pr := &printer{}
	for _, td := range p.Typedefs {
		pr.annotations(td.Annos, "")
		pr.printf("typedef %s %s;\n", typeStr(td.Type), td.Name)
	}
	for _, c := range p.Consts {
		pr.printf("const %s %s = %d;\n", typeStr(c.Type), c.Name, c.Value)
	}
	for _, h := range p.Headers {
		pr.annotations(h.Annos, "")
		pr.printf("header %s {\n", h.Name)
		pr.fields(h.Fields)
		pr.printf("}\n")
	}
	for _, s := range p.Structs {
		pr.annotations(s.Annos, "")
		pr.printf("struct %s {\n", s.Name)
		pr.fields(s.Fields)
		pr.printf("}\n")
	}
	for _, c := range p.Controls {
		pr.control(c)
	}
	return pr.b.String()
}

type printer struct {
	b strings.Builder
}

func (pr *printer) printf(format string, args ...any) {
	fmt.Fprintf(&pr.b, format, args...)
}

func typeStr(t Type) string {
	if t.IsBits() {
		return fmt.Sprintf("bit<%d>", t.Width)
	}
	return t.Name
}

func (pr *printer) fields(fs []Field) {
	for _, f := range fs {
		pr.annotations(f.Annos, "  ")
		pr.printf("  %s %s;\n", typeStr(f.Type), f.Name)
	}
}

func (pr *printer) annotations(as Annotations, indent string) {
	for _, a := range as {
		if len(a.Body) == 0 {
			pr.printf("%s@%s\n", indent, a.Name)
			continue
		}
		var parts []string
		for _, t := range a.Body {
			switch t.Kind {
			case token.String:
				parts = append(parts, fmt.Sprintf("%q", t.Text))
			default:
				parts = append(parts, t.String())
			}
		}
		pr.printf("%s@%s(%s)\n", indent, a.Name, strings.Join(parts, " "))
	}
}

// annotationsInline renders annotations on one line (for key elements).
func annotationsInline(as Annotations) string {
	var out []string
	for _, a := range as {
		if len(a.Body) == 0 {
			out = append(out, "@"+a.Name)
			continue
		}
		var parts []string
		for _, t := range a.Body {
			switch t.Kind {
			case token.String:
				parts = append(parts, fmt.Sprintf("%q", t.Text))
			default:
				parts = append(parts, t.String())
			}
		}
		out = append(out, fmt.Sprintf("@%s(%s)", a.Name, strings.Join(parts, " ")))
	}
	return strings.Join(out, " ")
}

func (pr *printer) control(c *Control) {
	pr.annotations(c.Annos, "")
	var params []string
	for _, p := range c.Params {
		s := typeStr(p.Type) + " " + p.Name
		if p.Direction != "" {
			s = p.Direction + " " + s
		}
		params = append(params, s)
	}
	pr.printf("control %s(%s) {\n", c.Name, strings.Join(params, ", "))
	for _, a := range c.Actions {
		pr.action(a)
	}
	for _, t := range c.Tables {
		pr.table(t)
	}
	pr.printf("  apply ")
	pr.block(c.Apply, "  ")
	pr.printf("\n}\n")
}

func (pr *printer) action(a *Action) {
	pr.annotations(a.Annos, "  ")
	var params []string
	for _, p := range a.Params {
		s := typeStr(p.Type) + " " + p.Name
		if an := annotationsInline(p.Annos); an != "" {
			s = an + " " + s
		}
		params = append(params, s)
	}
	pr.printf("  action %s(%s) ", a.Name, strings.Join(params, ", "))
	pr.block(a.Body, "  ")
	pr.printf("\n")
}

func (pr *printer) table(t *Table) {
	pr.annotations(t.Annos, "  ")
	pr.printf("  table %s {\n", t.Name)
	if len(t.Keys) > 0 {
		pr.printf("    key = {\n")
		for _, k := range t.Keys {
			line := fmt.Sprintf("      %s : %s", ExprString(k.Expr), k.MatchKind)
			if an := annotationsInline(k.Annos); an != "" {
				line += " " + an
			}
			pr.printf("%s;\n", line)
		}
		pr.printf("    }\n")
	}
	if len(t.Actions) > 0 {
		pr.printf("    actions = {\n")
		for _, a := range t.Actions {
			line := "      "
			if an := annotationsInline(a.Annos); an != "" {
				line += an + " "
			}
			pr.printf("%s%s;\n", line, a.Name)
		}
		pr.printf("    }\n")
	}
	if t.DefaultAction != "" {
		kw := "default_action"
		if t.ConstDefault {
			kw = "const default_action"
		}
		args := ""
		if len(t.DefaultArgs) > 0 {
			var parts []string
			for _, a := range t.DefaultArgs {
				parts = append(parts, ExprString(a))
			}
			args = "(" + strings.Join(parts, ", ") + ")"
		}
		pr.printf("    %s = %s%s;\n", kw, t.DefaultAction, args)
	}
	if t.Size != nil {
		pr.printf("    size = %s;\n", ExprString(t.Size))
	}
	if t.Implementation != "" {
		pr.printf("    implementation = %s;\n", t.Implementation)
	}
	pr.printf("  }\n")
}

func (pr *printer) block(b *BlockStmt, indent string) {
	pr.printf("{\n")
	inner := indent + "  "
	for _, st := range b.Stmts {
		pr.stmt(st, inner)
	}
	pr.printf("%s}", indent)
}

func (pr *printer) stmt(st Stmt, indent string) {
	switch x := st.(type) {
	case *BlockStmt:
		pr.printf("%s", indent)
		pr.block(x, indent)
		pr.printf("\n")
	case *AssignStmt:
		pr.printf("%s%s = %s;\n", indent, ExprString(x.LHS), ExprString(x.RHS))
	case *CallStmt:
		pr.printf("%s%s;\n", indent, ExprString(x.Call))
	case *ExitStmt:
		pr.printf("%sexit;\n", indent)
	case *ReturnStmt:
		pr.printf("%sreturn;\n", indent)
	case *IfStmt:
		pr.printf("%sif (%s) ", indent, ExprString(x.Cond))
		pr.block(x.Then, indent)
		switch e := x.Else.(type) {
		case nil:
			pr.printf("\n")
		case *BlockStmt:
			pr.printf(" else ")
			pr.block(e, indent)
			pr.printf("\n")
		case *IfStmt:
			pr.printf(" else {\n")
			pr.stmt(e, indent+"  ")
			pr.printf("%s}\n", indent)
		}
	}
}

// ExprString renders an expression. Every composite sub-expression is
// parenthesized, so operator precedence survives the round trip.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *IdentExpr:
		return x.Name
	case *FieldExpr:
		return strings.Join(x.Path, ".")
	case *IntExpr:
		if x.Width > 0 {
			return fmt.Sprintf("%dw%d", x.Width, x.Value)
		}
		return fmt.Sprintf("%d", x.Value)
	case *BoolExpr:
		if x.Value {
			return "true"
		}
		return "false"
	case *UnaryExpr:
		return opText(x.Op) + parens(x.X)
	case *BinaryExpr:
		return parens(x.X) + " " + opText(x.Op) + " " + parens(x.Y)
	case *TernaryExpr:
		return parens(x.Cond) + " ? " + parens(x.X) + " : " + parens(x.Y)
	case *CallExpr:
		var args []string
		for _, a := range x.Args {
			args = append(args, ExprString(a))
		}
		name := x.Name
		if len(x.Recv) > 0 {
			name = strings.Join(x.Recv, ".") + "." + name
		}
		return name + "(" + strings.Join(args, ", ") + ")"
	default:
		return fmt.Sprintf("/*?%T*/", e)
	}
}

func parens(e Expr) string {
	switch e.(type) {
	case *BinaryExpr, *TernaryExpr, *UnaryExpr:
		return "(" + ExprString(e) + ")"
	default:
		return ExprString(e)
	}
}

func opText(k token.Kind) string { return k.String() }
