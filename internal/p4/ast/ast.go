// Package ast defines the abstract syntax tree for the P4-16 subset used
// by SwitchV to model fixed-function switches.
package ast

import "switchv/internal/p4/token"

// Annotation is an @name or @name(args) or @name("string") annotation.
type Annotation struct {
	Pos  token.Pos
	Name string // without the leading @
	// Body is the raw argument list as tokens, excluding the surrounding
	// parentheses. Empty for bare annotations. For string-bodied
	// annotations like @entry_restriction("...") the single token is a
	// String token whose Text is the constraint source.
	Body []token.Token
}

// StringArg returns the annotation's single string argument, if it has one.
func (a Annotation) StringArg() (string, bool) {
	if len(a.Body) == 1 && a.Body[0].Kind == token.String {
		return a.Body[0].Text, true
	}
	return "", false
}

// Annotations is an ordered annotation list.
type Annotations []Annotation

// Find returns the first annotation with the given name.
func (as Annotations) Find(name string) (Annotation, bool) {
	for _, a := range as {
		if a.Name == name {
			return a, true
		}
	}
	return Annotation{}, false
}

// FindAll returns every annotation with the given name.
func (as Annotations) FindAll(name string) []Annotation {
	var out []Annotation
	for _, a := range as {
		if a.Name == name {
			out = append(out, a)
		}
	}
	return out
}

// Type is a type reference: either bit<N>, bool, or a named type.
type Type struct {
	Pos   token.Pos
	Name  string // "bit", "bool", or a typedef/header/struct name
	Width int    // for bit<N>
}

// IsBits reports whether the type is a bit<N> type.
func (t Type) IsBits() bool { return t.Name == "bit" }

// Program is a parsed P4 model.
type Program struct {
	Name     string // derived from @name on the first control, or ""
	Typedefs []*Typedef
	Consts   []*Const
	Headers  []*Header
	Structs  []*Struct
	Controls []*Control
}

// Typedef aliases a bit<N> (or previously defined alias) under a new name.
type Typedef struct {
	Pos   token.Pos
	Name  string
	Type  Type
	Annos Annotations
}

// Const is a compile-time integer constant.
type Const struct {
	Pos   token.Pos
	Name  string
	Type  Type
	Value uint64
}

// Field is a named, typed field of a header or struct.
type Field struct {
	Pos   token.Pos
	Name  string
	Type  Type
	Annos Annotations
}

// Header is a protocol header type with a validity bit.
type Header struct {
	Pos    token.Pos
	Name   string
	Fields []Field
	Annos  Annotations
}

// Struct is a plain field bundle (headers_t, metadata_t).
type Struct struct {
	Pos    token.Pos
	Name   string
	Fields []Field
	Annos  Annotations
}

// Param is a control or action parameter.
type Param struct {
	Pos       token.Pos
	Direction string // "in", "out", "inout", or "" (directionless = control-plane arg)
	Type      Type
	Name      string
	Annos     Annotations
}

// Control is a match-action pipeline stage.
type Control struct {
	Pos     token.Pos
	Name    string
	Params  []Param
	Actions []*Action
	Tables  []*Table
	Apply   *BlockStmt
	Annos   Annotations
}

// Action is a parameterized action. Directionless parameters are supplied
// by the control plane when installing entries.
type Action struct {
	Pos    token.Pos
	Name   string
	Params []Param
	Body   *BlockStmt
	Annos  Annotations
}

// KeyElem is one element of a table key.
type KeyElem struct {
	Pos       token.Pos
	Expr      Expr   // the matched expression, e.g. headers.ipv4.dst_addr
	MatchKind string // "exact", "lpm", "ternary", "optional"
	Annos     Annotations
}

// ActionRef names an action permitted in a table.
type ActionRef struct {
	Pos   token.Pos
	Name  string
	Annos Annotations
}

// Table is a match-action table.
type Table struct {
	Pos            token.Pos
	Name           string
	Keys           []KeyElem
	Actions        []ActionRef
	DefaultAction  string // "" if unspecified
	DefaultArgs    []Expr // constant args of the default action
	ConstDefault   bool
	Size           Expr   // table size expression (const name or literal); nil if unset
	Implementation string // "" or "action_selector" for one-shot selector tables
	Annos          Annotations
}

// Statements.

// Stmt is a statement in an action body or apply block.
type Stmt interface{ stmtNode() }

// BlockStmt is a braced statement list.
type BlockStmt struct {
	Pos   token.Pos
	Stmts []Stmt
}

// AssignStmt is "lhs = rhs;".
type AssignStmt struct {
	Pos token.Pos
	LHS Expr // FieldExpr or IdentExpr
	RHS Expr
}

// CallStmt is a call used as a statement: primitives (mark_to_drop(), ...)
// and table/header method calls (tbl.apply(), hdr.setValid()).
type CallStmt struct {
	Pos  token.Pos
	Call *CallExpr
}

// IfStmt is a conditional inside apply blocks or action bodies.
type IfStmt struct {
	Pos  token.Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
}

// ExitStmt terminates pipeline processing.
type ExitStmt struct{ Pos token.Pos }

// ReturnStmt terminates the enclosing control.
type ReturnStmt struct{ Pos token.Pos }

func (*BlockStmt) stmtNode()  {}
func (*AssignStmt) stmtNode() {}
func (*CallStmt) stmtNode()   {}
func (*IfStmt) stmtNode()     {}
func (*ExitStmt) stmtNode()   {}
func (*ReturnStmt) stmtNode() {}

// Expressions.

// Expr is an expression.
type Expr interface{ exprNode() }

// IdentExpr is a bare identifier (constant, parameter, or local name).
type IdentExpr struct {
	Pos  token.Pos
	Name string
}

// FieldExpr is a dotted path rooted at an identifier: a.b.c.
type FieldExpr struct {
	Pos  token.Pos
	Path []string // at least two elements
}

// IntExpr is an integer literal.
type IntExpr struct {
	Pos   token.Pos
	Value uint64
	Width int // 0 if unspecified
}

// BoolExpr is true/false.
type BoolExpr struct {
	Pos   token.Pos
	Value bool
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Pos  token.Pos
	Op   token.Kind // Eq, Ne, Lt, Le, Gt, Ge, AndAnd, OrOr, And, Or, Xor, Plus, Minus, Shl, Shr
	X, Y Expr
}

// UnaryExpr is !x, ~x, or -x.
type UnaryExpr struct {
	Pos token.Pos
	Op  token.Kind
	X   Expr
}

// CallExpr is f(args) or recv.method(args). For method calls, Recv is the
// receiver path and Name the method ("isValid", "setValid", "setInvalid",
// "apply"); for free calls, Recv is nil and Name the primitive name
// ("mark_to_drop", "punt_to_cpu", "copy_to_cpu", "mirror", "hash",
// "set_egress_port", "no_op", "encap_gre", "decap_gre").
type CallExpr struct {
	Pos  token.Pos
	Recv []string
	Name string
	Args []Expr
}

// TernaryExpr is cond ? a : b.
type TernaryExpr struct {
	Pos        token.Pos
	Cond, X, Y Expr
}

func (*IdentExpr) exprNode()   {}
func (*FieldExpr) exprNode()   {}
func (*IntExpr) exprNode()     {}
func (*BoolExpr) exprNode()    {}
func (*BinaryExpr) exprNode()  {}
func (*UnaryExpr) exprNode()   {}
func (*CallExpr) exprNode()    {}
func (*TernaryExpr) exprNode() {}
