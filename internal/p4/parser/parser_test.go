package parser

import (
	"strings"
	"testing"

	"switchv/internal/p4/ast"
	"switchv/internal/p4/token"
)

const tiny = `
typedef bit<32> addr_t;
const bit<10> TBL_SIZE = 64;

header ipv4_t {
  bit<8> ttl;
  addr_t dst_addr;
}

struct headers_t { ipv4_t ipv4; }
struct meta_t { bit<10> vrf_id; }

@name("tiny")
control ingress(inout headers_t headers, inout meta_t meta,
                inout standard_metadata_t standard_metadata) {
  action drop() { mark_to_drop(); }
  action set_port(bit<16> port) { set_egress_port(port); }

  @entry_restriction("vrf_id != 0")
  table route {
    key = {
      meta.vrf_id : exact @name("vrf_id");
      headers.ipv4.dst_addr : lpm;
    }
    actions = { drop; set_port; }
    const default_action = drop;
    size = TBL_SIZE;
  }

  apply {
    if (headers.ipv4.isValid() && headers.ipv4.ttl > 1) {
      route.apply();
    } else {
      mark_to_drop();
    }
  }
}
`

func TestParseTiny(t *testing.T) {
	prog, err := Parse(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "tiny" {
		t.Errorf("Name = %q", prog.Name)
	}
	if len(prog.Typedefs) != 1 || prog.Typedefs[0].Name != "addr_t" || prog.Typedefs[0].Type.Width != 32 {
		t.Errorf("typedefs = %+v", prog.Typedefs)
	}
	if len(prog.Consts) != 1 || prog.Consts[0].Value != 64 {
		t.Errorf("consts = %+v", prog.Consts)
	}
	if len(prog.Headers) != 1 || len(prog.Headers[0].Fields) != 2 {
		t.Fatalf("headers = %+v", prog.Headers)
	}
	if len(prog.Structs) != 2 {
		t.Fatalf("structs = %+v", prog.Structs)
	}
	ctrl := prog.Controls[0]
	if len(ctrl.Params) != 3 || ctrl.Params[0].Direction != "inout" {
		t.Errorf("params = %+v", ctrl.Params)
	}
	if len(ctrl.Actions) != 2 {
		t.Fatalf("actions = %d", len(ctrl.Actions))
	}
	if len(ctrl.Tables) != 1 {
		t.Fatalf("tables = %d", len(ctrl.Tables))
	}
	tbl := ctrl.Tables[0]
	if len(tbl.Keys) != 2 || tbl.Keys[0].MatchKind != "exact" || tbl.Keys[1].MatchKind != "lpm" {
		t.Errorf("keys = %+v", tbl.Keys)
	}
	if _, ok := tbl.Keys[0].Annos.Find("name"); !ok {
		t.Error("missing @name on key 0")
	}
	if tbl.DefaultAction != "drop" || !tbl.ConstDefault {
		t.Errorf("default = %q const=%v", tbl.DefaultAction, tbl.ConstDefault)
	}
	if r, ok := tbl.Annos.Find("entry_restriction"); !ok {
		t.Error("missing entry_restriction")
	} else if s, _ := r.StringArg(); s != "vrf_id != 0" {
		t.Errorf("restriction = %q", s)
	}
	// Apply block: if with else.
	ifst, ok := ctrl.Apply.Stmts[0].(*ast.IfStmt)
	if !ok {
		t.Fatalf("apply[0] = %T", ctrl.Apply.Stmts[0])
	}
	cond, ok := ifst.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.AndAnd {
		t.Fatalf("cond = %+v", ifst.Cond)
	}
	if _, ok := cond.X.(*ast.CallExpr); !ok {
		t.Errorf("cond.X = %T, want isValid call", cond.X)
	}
	if ifst.Else == nil {
		t.Error("missing else")
	}
}

func TestParseExprPrecedence(t *testing.T) {
	src := `
struct m_t { bit<8> a; bit<8> b; }
control c(inout m_t m) {
  apply {
    if (m.a == 1 || m.a == 2 && m.b != 3) { mark_to_drop(); }
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifst := prog.Controls[0].Apply.Stmts[0].(*ast.IfStmt)
	or, ok := ifst.Cond.(*ast.BinaryExpr)
	if !ok || or.Op != token.OrOr {
		t.Fatalf("top op = %+v, want ||", ifst.Cond)
	}
	and, ok := or.Y.(*ast.BinaryExpr)
	if !ok || and.Op != token.AndAnd {
		t.Fatalf("rhs = %+v, want &&", or.Y)
	}
}

func TestParseTernaryAndUnary(t *testing.T) {
	src := `
struct m_t { bit<8> a; bit<8> b; }
control c(inout m_t m) {
  apply {
    m.a = (m.b > 4 ? 1 : 0) + ~m.b;
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	asg := prog.Controls[0].Apply.Stmts[0].(*ast.AssignStmt)
	add, ok := asg.RHS.(*ast.BinaryExpr)
	if !ok || add.Op != token.Plus {
		t.Fatalf("RHS = %+v", asg.RHS)
	}
	if _, ok := add.X.(*ast.TernaryExpr); !ok {
		t.Errorf("X = %T, want ternary", add.X)
	}
	un, ok := add.Y.(*ast.UnaryExpr)
	if !ok || un.Op != token.Tilde {
		t.Errorf("Y = %+v, want ~", add.Y)
	}
}

func TestParseImplementationProperty(t *testing.T) {
	src := `
struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table sel {
    key = { m.a : exact; }
    actions = { nop; }
    implementation = action_selector(hash, 128, 10);
    size = 16;
  }
  apply { sel.apply(); }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if impl := prog.Controls[0].Tables[0].Implementation; impl != "action_selector" {
		t.Errorf("implementation = %q", impl)
	}
}

func TestParseAnnotationNesting(t *testing.T) {
	src := `
struct m_t { bit<8> a; }
@anno(foo(bar, baz), qux)
control c(inout m_t m) {
  apply { }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := prog.Controls[0].Annos.Find("anno")
	if !ok {
		t.Fatal("missing @anno")
	}
	if len(a.Body) != 8 { // foo ( bar , baz ) , qux
		t.Errorf("body = %v", a.Body)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"control c { }",                                          // missing params
		"header h { bit<0> x; }",                                 // zero width
		"struct s { bit<8> x }",                                  // missing semicolon
		"control c(inout m_t m) { }",                             // no apply
		"table t { }",                                            // table at top level
		"control c(inout m_t m) { apply { x; } }",                // bare ident stmt
		"control c(inout m_t m) { apply { } apply { } }",         // duplicate apply
		"control c(inout m_t m) { apply { if (1 > ) { } } }",     // bad expr
		`control c(inout m_t m) { apply { m.a = 5 }`,             // missing semicolon
		"@unterminated(foo control c(inout m_t m) { apply { } }", // unterminated anno runs to EOF
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse succeeded for %q", src)
		}
	}
}

func TestParseDefaultActionArgs(t *testing.T) {
	src := `
struct m_t { bit<8> a; }
control c(inout m_t m) {
  action set_a(bit<8> v) { m.a = v; }
  table t {
    key = { m.a : exact; }
    actions = { set_a; }
    default_action = set_a(7);
  }
  apply { t.apply(); }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tbl := prog.Controls[0].Tables[0]
	if tbl.DefaultAction != "set_a" || tbl.ConstDefault {
		t.Errorf("default = %q const=%v", tbl.DefaultAction, tbl.ConstDefault)
	}
	if len(tbl.DefaultArgs) != 1 {
		t.Fatalf("args = %+v", tbl.DefaultArgs)
	}
	if v, ok := tbl.DefaultArgs[0].(*ast.IntExpr); !ok || v.Value != 7 {
		t.Errorf("arg = %+v", tbl.DefaultArgs[0])
	}
}

func TestParseKeywordPathSegments(t *testing.T) {
	// "apply" as a method name must parse; "apply" as a first segment must not.
	src := `
struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t { key = { m.a : exact; } actions = { nop; } }
  apply { t.apply(); }
}
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(strings.Replace(src, "t.apply();", "apply.t();", 1)); err == nil {
		t.Error("parsed apply.t()")
	}
}
