// Package parser implements a recursive-descent parser for the P4-16
// subset used by SwitchV to model fixed-function switches.
package parser

import (
	"fmt"

	"switchv/internal/p4/ast"
	"switchv/internal/p4/token"
)

// Parse parses a complete P4 model program.
func Parse(src string) (*ast.Program, error) {
	toks, err := token.ScanAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

type parser struct {
	toks []token.Token
	pos  int
}

func (p *parser) cur() token.Token  { return p.toks[p.pos] }
func (p *parser) next() token.Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) peekKind(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.peekKind(k) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if !p.peekKind(k) {
		return token.Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("p4: %s: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseProgram() (*ast.Program, error) {
	prog := &ast.Program{}
	for !p.peekKind(token.EOF) {
		annos, err := p.parseAnnotations()
		if err != nil {
			return nil, err
		}
		switch p.cur().Kind {
		case token.KwTypedef:
			td, err := p.parseTypedef(annos)
			if err != nil {
				return nil, err
			}
			prog.Typedefs = append(prog.Typedefs, td)
		case token.KwConst:
			c, err := p.parseConst()
			if err != nil {
				return nil, err
			}
			prog.Consts = append(prog.Consts, c)
		case token.KwHeader:
			h, err := p.parseHeader(annos)
			if err != nil {
				return nil, err
			}
			prog.Headers = append(prog.Headers, h)
		case token.KwStruct:
			s, err := p.parseStruct(annos)
			if err != nil {
				return nil, err
			}
			prog.Structs = append(prog.Structs, s)
		case token.KwControl:
			c, err := p.parseControl(annos)
			if err != nil {
				return nil, err
			}
			prog.Controls = append(prog.Controls, c)
			if prog.Name == "" {
				if a, ok := c.Annos.Find("name"); ok {
					if s, ok := a.StringArg(); ok {
						prog.Name = s
					}
				}
			}
		default:
			return nil, p.errf("unexpected top-level token %s", p.cur())
		}
	}
	return prog, nil
}

// parseAnnotations parses zero or more @name or @name(...) annotations.
func (p *parser) parseAnnotations() (ast.Annotations, error) {
	var annos ast.Annotations
	for p.peekKind(token.At) {
		at := p.next()
		name, err := p.expect(token.Ident)
		if err != nil {
			return nil, err
		}
		a := ast.Annotation{Pos: at.Pos, Name: name.Text}
		if p.accept(token.LParen) {
			depth := 1
			for depth > 0 {
				t := p.cur()
				if t.Kind == token.EOF {
					return nil, p.errf("unterminated annotation @%s", name.Text)
				}
				if t.Kind == token.LParen {
					depth++
				}
				if t.Kind == token.RParen {
					depth--
					if depth == 0 {
						p.next()
						break
					}
				}
				a.Body = append(a.Body, p.next())
			}
		}
		annos = append(annos, a)
	}
	return annos, nil
}

func (p *parser) parseType() (ast.Type, error) {
	switch t := p.cur(); t.Kind {
	case token.KwBit:
		p.next()
		if _, err := p.expect(token.Lt); err != nil {
			return ast.Type{}, err
		}
		w, err := p.expect(token.Int)
		if err != nil {
			return ast.Type{}, err
		}
		if _, err := p.expect(token.Gt); err != nil {
			return ast.Type{}, err
		}
		if w.Value == 0 || w.Value > 128 {
			return ast.Type{}, fmt.Errorf("p4: %s: bit width %d out of range [1,128]", w.Pos, w.Value)
		}
		return ast.Type{Pos: t.Pos, Name: "bit", Width: int(w.Value)}, nil
	case token.KwBool:
		p.next()
		return ast.Type{Pos: t.Pos, Name: "bool"}, nil
	case token.Ident:
		p.next()
		return ast.Type{Pos: t.Pos, Name: t.Text}, nil
	default:
		return ast.Type{}, p.errf("expected type, found %s", t)
	}
}

func (p *parser) parseTypedef(annos ast.Annotations) (*ast.Typedef, error) {
	kw := p.next() // typedef
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return nil, err
	}
	return &ast.Typedef{Pos: kw.Pos, Name: name.Text, Type: typ, Annos: annos}, nil
}

func (p *parser) parseConst() (*ast.Const, error) {
	kw := p.next() // const
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Assign); err != nil {
		return nil, err
	}
	val, err := p.expect(token.Int)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return nil, err
	}
	return &ast.Const{Pos: kw.Pos, Name: name.Text, Type: typ, Value: val.Value}, nil
}

func (p *parser) parseFields() ([]ast.Field, error) {
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	var fields []ast.Field
	for !p.accept(token.RBrace) {
		annos, err := p.parseAnnotations()
		if err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(token.Ident)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		fields = append(fields, ast.Field{Pos: typ.Pos, Name: name.Text, Type: typ, Annos: annos})
	}
	return fields, nil
}

func (p *parser) parseHeader(annos ast.Annotations) (*ast.Header, error) {
	kw := p.next() // header
	name, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	fields, err := p.parseFields()
	if err != nil {
		return nil, err
	}
	return &ast.Header{Pos: kw.Pos, Name: name.Text, Fields: fields, Annos: annos}, nil
}

func (p *parser) parseStruct(annos ast.Annotations) (*ast.Struct, error) {
	kw := p.next() // struct
	name, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	fields, err := p.parseFields()
	if err != nil {
		return nil, err
	}
	return &ast.Struct{Pos: kw.Pos, Name: name.Text, Fields: fields, Annos: annos}, nil
}

func (p *parser) parseParams() ([]ast.Param, error) {
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	var params []ast.Param
	for !p.accept(token.RParen) {
		if len(params) > 0 {
			if _, err := p.expect(token.Comma); err != nil {
				return nil, err
			}
		}
		annos, err := p.parseAnnotations()
		if err != nil {
			return nil, err
		}
		dir := ""
		switch p.cur().Kind {
		case token.KwIn:
			dir = "in"
			p.next()
		case token.KwOut:
			dir = "out"
			p.next()
		case token.KwInout:
			dir = "inout"
			p.next()
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(token.Ident)
		if err != nil {
			return nil, err
		}
		params = append(params, ast.Param{Pos: typ.Pos, Direction: dir, Type: typ, Name: name.Text, Annos: annos})
	}
	return params, nil
}

func (p *parser) parseControl(annos ast.Annotations) (*ast.Control, error) {
	kw := p.next() // control
	name, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	ctrl := &ast.Control{Pos: kw.Pos, Name: name.Text, Params: params, Annos: annos}
	for !p.accept(token.RBrace) {
		declAnnos, err := p.parseAnnotations()
		if err != nil {
			return nil, err
		}
		switch p.cur().Kind {
		case token.KwAction:
			a, err := p.parseAction(declAnnos)
			if err != nil {
				return nil, err
			}
			ctrl.Actions = append(ctrl.Actions, a)
		case token.KwTable:
			t, err := p.parseTable(declAnnos)
			if err != nil {
				return nil, err
			}
			ctrl.Tables = append(ctrl.Tables, t)
		case token.KwApply:
			if ctrl.Apply != nil {
				return nil, p.errf("duplicate apply block in control %s", ctrl.Name)
			}
			p.next()
			blk, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			ctrl.Apply = blk
		default:
			return nil, p.errf("unexpected token %s in control %s", p.cur(), ctrl.Name)
		}
	}
	if ctrl.Apply == nil {
		return nil, fmt.Errorf("p4: %s: control %s has no apply block", kw.Pos, ctrl.Name)
	}
	return ctrl, nil
}

func (p *parser) parseAction(annos ast.Annotations) (*ast.Action, error) {
	kw := p.next() // action
	name, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ast.Action{Pos: kw.Pos, Name: name.Text, Params: params, Body: body, Annos: annos}, nil
}

func (p *parser) parseTable(annos ast.Annotations) (*ast.Table, error) {
	kw := p.next() // table
	name, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	tbl := &ast.Table{Pos: kw.Pos, Name: name.Text, Annos: annos}
	for !p.accept(token.RBrace) {
		switch p.cur().Kind {
		case token.KwKey:
			p.next()
			if _, err := p.expect(token.Assign); err != nil {
				return nil, err
			}
			if _, err := p.expect(token.LBrace); err != nil {
				return nil, err
			}
			for !p.accept(token.RBrace) {
				elem, err := p.parseKeyElem()
				if err != nil {
					return nil, err
				}
				tbl.Keys = append(tbl.Keys, elem)
			}
		case token.KwActions:
			p.next()
			if _, err := p.expect(token.Assign); err != nil {
				return nil, err
			}
			if _, err := p.expect(token.LBrace); err != nil {
				return nil, err
			}
			for !p.accept(token.RBrace) {
				refAnnos, err := p.parseAnnotations()
				if err != nil {
					return nil, err
				}
				an, err := p.expect(token.Ident)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(token.Semicolon); err != nil {
					return nil, err
				}
				tbl.Actions = append(tbl.Actions, ast.ActionRef{Pos: an.Pos, Name: an.Text, Annos: refAnnos})
			}
		case token.KwConst, token.KwDefaultAction:
			isConst := p.accept(token.KwConst)
			if _, err := p.expect(token.KwDefaultAction); err != nil {
				return nil, err
			}
			if _, err := p.expect(token.Assign); err != nil {
				return nil, err
			}
			an, err := p.expect(token.Ident)
			if err != nil {
				return nil, err
			}
			tbl.DefaultAction = an.Text
			tbl.ConstDefault = isConst
			if p.accept(token.LParen) {
				for !p.accept(token.RParen) {
					if len(tbl.DefaultArgs) > 0 {
						if _, err := p.expect(token.Comma); err != nil {
							return nil, err
						}
					}
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					tbl.DefaultArgs = append(tbl.DefaultArgs, arg)
				}
			}
			if _, err := p.expect(token.Semicolon); err != nil {
				return nil, err
			}
		case token.KwSize:
			p.next()
			if _, err := p.expect(token.Assign); err != nil {
				return nil, err
			}
			sz, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			tbl.Size = sz
			if _, err := p.expect(token.Semicolon); err != nil {
				return nil, err
			}
		case token.KwImplementation:
			p.next()
			if _, err := p.expect(token.Assign); err != nil {
				return nil, err
			}
			impl, err := p.expect(token.Ident)
			if err != nil {
				return nil, err
			}
			// Tolerate and discard selector arguments:
			// implementation = action_selector(hash, 128, 10);
			if p.accept(token.LParen) {
				depth := 1
				for depth > 0 {
					switch p.next().Kind {
					case token.LParen:
						depth++
					case token.RParen:
						depth--
					case token.EOF:
						return nil, p.errf("unterminated implementation property")
					}
				}
			}
			tbl.Implementation = impl.Text
			if _, err := p.expect(token.Semicolon); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unexpected token %s in table %s", p.cur(), tbl.Name)
		}
	}
	return tbl, nil
}

func (p *parser) parseKeyElem() (ast.KeyElem, error) {
	expr, err := p.parseExpr()
	if err != nil {
		return ast.KeyElem{}, err
	}
	if _, err := p.expect(token.Colon); err != nil {
		return ast.KeyElem{}, err
	}
	var kind string
	switch t := p.next(); t.Kind {
	case token.KwExact:
		kind = "exact"
	case token.KwLpm:
		kind = "lpm"
	case token.KwTernary:
		kind = "ternary"
	case token.KwOptional:
		kind = "optional"
	default:
		return ast.KeyElem{}, p.errf("expected match kind, found %s", t)
	}
	annos, err := p.parseAnnotations()
	if err != nil {
		return ast.KeyElem{}, err
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return ast.KeyElem{}, err
	}
	return ast.KeyElem{Expr: expr, MatchKind: kind, Annos: annos}, nil
}

// Statements.

func (p *parser) parseBlock() (*ast.BlockStmt, error) {
	lb, err := p.expect(token.LBrace)
	if err != nil {
		return nil, err
	}
	blk := &ast.BlockStmt{Pos: lb.Pos}
	for !p.accept(token.RBrace) {
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, st)
	}
	return blk, nil
}

func (p *parser) parseStmt() (ast.Stmt, error) {
	switch t := p.cur(); t.Kind {
	case token.LBrace:
		return p.parseBlock()
	case token.KwIf:
		return p.parseIf()
	case token.KwExit:
		p.next()
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		return &ast.ExitStmt{Pos: t.Pos}, nil
	case token.KwReturn:
		p.next()
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		return &ast.ReturnStmt{Pos: t.Pos}, nil
	case token.Ident:
		return p.parseCallOrAssign()
	default:
		return nil, p.errf("unexpected token %s at statement start", t)
	}
}

func (p *parser) parseIf() (ast.Stmt, error) {
	kw := p.next() // if
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &ast.IfStmt{Pos: kw.Pos, Cond: cond, Then: then}
	if p.accept(token.KwElse) {
		if p.peekKind(token.KwIf) {
			els, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = els
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

// pathSegment consumes an identifier path segment; soft keywords that are
// legal member names (notably "apply" and "key") are accepted after a dot.
func (p *parser) pathSegment(afterDot bool) (token.Token, error) {
	t := p.cur()
	if t.Kind == token.Ident {
		return p.next(), nil
	}
	if afterDot {
		switch t.Kind {
		case token.KwApply, token.KwKey, token.KwSize, token.KwActions:
			p.next()
			return token.Token{Kind: token.Ident, Pos: t.Pos, Text: t.Kind.String()}, nil
		}
	}
	return token.Token{}, p.errf("expected identifier, found %s", t)
}

func (p *parser) parsePath() ([]string, token.Pos, error) {
	first, err := p.pathSegment(false)
	if err != nil {
		return nil, token.Pos{}, err
	}
	path := []string{first.Text}
	for p.accept(token.Dot) {
		seg, err := p.pathSegment(true)
		if err != nil {
			return nil, token.Pos{}, err
		}
		path = append(path, seg.Text)
	}
	return path, first.Pos, nil
}

func (p *parser) parseCallOrAssign() (ast.Stmt, error) {
	path, pos, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case token.LParen:
		call, err := p.finishCall(path, pos)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		return &ast.CallStmt{Pos: pos, Call: call}, nil
	case token.Assign:
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		var lhs ast.Expr
		if len(path) == 1 {
			lhs = &ast.IdentExpr{Pos: pos, Name: path[0]}
		} else {
			lhs = &ast.FieldExpr{Pos: pos, Path: path}
		}
		return &ast.AssignStmt{Pos: pos, LHS: lhs, RHS: rhs}, nil
	default:
		return nil, p.errf("expected ( or = after %v", path)
	}
}

func (p *parser) finishCall(path []string, pos token.Pos) (*ast.CallExpr, error) {
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	call := &ast.CallExpr{Pos: pos, Name: path[len(path)-1], Recv: path[:len(path)-1]}
	for !p.accept(token.RParen) {
		if len(call.Args) > 0 {
			if _, err := p.expect(token.Comma); err != nil {
				return nil, err
			}
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
	}
	return call, nil
}

// Expressions, precedence climbing.

func (p *parser) parseExpr() (ast.Expr, error) { return p.parseTernary() }

func (p *parser) parseTernary() (ast.Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.accept(token.Question) {
		return cond, nil
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Colon); err != nil {
		return nil, err
	}
	y, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ast.TernaryExpr{Cond: cond, X: x, Y: y}, nil
}

// binaryPrec returns the precedence of a binary operator, or -1.
func binaryPrec(k token.Kind) int {
	switch k {
	case token.OrOr:
		return 1
	case token.AndAnd:
		return 2
	case token.Or:
		return 3
	case token.Xor:
		return 4
	case token.And:
		return 5
	case token.Eq, token.Ne:
		return 6
	case token.Lt, token.Le, token.Gt, token.Ge:
		return 7
	case token.Shl, token.Shr:
		return 8
	case token.Plus, token.Minus:
		return 9
	default:
		return -1
	}
}

func (p *parser) parseBinary(minPrec int) (ast.Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().Kind
		prec := binaryPrec(op)
		if prec < 0 || prec < minPrec {
			return lhs, nil
		}
		opTok := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &ast.BinaryExpr{Pos: opTok.Pos, Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (ast.Expr, error) {
	switch t := p.cur(); t.Kind {
	case token.Not, token.Tilde, token.Minus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Pos: t.Pos, Op: t.Kind, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	switch t := p.cur(); t.Kind {
	case token.Int:
		p.next()
		return &ast.IntExpr{Pos: t.Pos, Value: t.Value, Width: t.Width}, nil
	case token.KwTrue:
		p.next()
		return &ast.BoolExpr{Pos: t.Pos, Value: true}, nil
	case token.KwFalse:
		p.next()
		return &ast.BoolExpr{Pos: t.Pos, Value: false}, nil
	case token.LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		return e, nil
	case token.Ident:
		path, pos, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if p.peekKind(token.LParen) {
			return p.finishCall(path, pos)
		}
		if len(path) == 1 {
			return &ast.IdentExpr{Pos: pos, Name: path[0]}, nil
		}
		return &ast.FieldExpr{Pos: pos, Path: path}, nil
	default:
		return nil, p.errf("unexpected token %s in expression", t)
	}
}
