package parser_test

import (
	"testing"

	"switchv/internal/p4/ast"
	"switchv/internal/p4/ir"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4/parser"
	"switchv/models"
)

// TestModelRoundTrip: printing a parsed model and re-parsing it yields a
// semantically identical program (same control-plane API, table for table,
// field for field).
func TestModelRoundTrip(t *testing.T) {
	for _, name := range models.Names() {
		t.Run(name, func(t *testing.T) {
			src, err := models.Source(name)
			if err != nil {
				t.Fatal(err)
			}
			orig, err := parser.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			printed := ast.Print(orig)
			back, err := parser.Parse(printed)
			if err != nil {
				t.Fatalf("re-parsing printed model: %v\n--- printed ---\n%s", err, printed)
			}

			progA, err := ir.Compile(orig)
			if err != nil {
				t.Fatal(err)
			}
			progB, err := ir.Compile(back)
			if err != nil {
				t.Fatalf("compiling printed model: %v", err)
			}
			a := p4info.New(progA).Text()
			b := p4info.New(progB).Text()
			if a != b {
				t.Errorf("control-plane APIs differ after round trip:\n--- original ---\n%s\n--- reprinted ---\n%s", a, b)
			}
			// The flattened field spaces agree too.
			fa := progA.SortedFieldNames()
			fb := progB.SortedFieldNames()
			if len(fa) != len(fb) {
				t.Fatalf("field counts differ: %d vs %d", len(fa), len(fb))
			}
			for i := range fa {
				if fa[i] != fb[i] {
					t.Fatalf("field %d differs: %s vs %s", i, fa[i], fb[i])
				}
			}
		})
	}
}

// TestPrintedModelIsStable: printing is idempotent (Print(parser.Parse(Print)) ==
// Print).
func TestPrintedModelIsStable(t *testing.T) {
	src, _ := models.Source("middleblock")
	p1, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	once := ast.Print(p1)
	p2, err := parser.Parse(once)
	if err != nil {
		t.Fatal(err)
	}
	twice := ast.Print(p2)
	if once != twice {
		t.Error("Print is not a fixed point after one round trip")
	}
}
