// Package token defines lexical tokens for the P4-16 subset used to model
// fixed-function switches, and a scanner producing them.
//
// The subset covers what the SwitchV paper needs (§3 "P4 Language
// Features"): headers, structs, typedefs, constants, controls with tables,
// actions and apply blocks, and annotations. Header stacks, unions,
// registers and generic parsers are intentionally not part of the language.
package token

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Int    // integer literal, possibly width-prefixed (8w255) or hex
	String // double-quoted string literal

	// Punctuation and operators.
	LBrace    // {
	RBrace    // }
	LParen    // (
	RParen    // )
	LBracket  // [
	RBracket  // ]
	Semicolon // ;
	Colon     // :
	Comma     // ,
	Dot       // .
	Assign    // =
	At        // @
	Lt        // <
	Gt        // >
	Le        // <=
	Ge        // >=
	Eq        // ==
	Ne        // !=
	Not       // !
	AndAnd    // &&
	OrOr      // ||
	And       // &
	Or        // |
	Xor       // ^
	Tilde     // ~
	Plus      // +
	Minus     // -
	Star      // *
	Slash     // /
	Shl       // <<
	Shr       // >>
	Question  // ?

	// Keywords.
	KwControl
	KwTable
	KwKey
	KwActions
	KwAction
	KwConst
	KwDefaultAction
	KwSize
	KwImplementation
	KwApply
	KwIf
	KwElse
	KwHeader
	KwStruct
	KwTypedef
	KwBit
	KwBool
	KwTrue
	KwFalse
	KwExact
	KwLpm
	KwTernary
	KwOptional
	KwIn
	KwOut
	KwInout
	KwReturn
	KwExit
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", Int: "integer", String: "string",
	LBrace: "{", RBrace: "}", LParen: "(", RParen: ")", LBracket: "[", RBracket: "]",
	Semicolon: ";", Colon: ":", Comma: ",", Dot: ".", Assign: "=", At: "@",
	Lt: "<", Gt: ">", Le: "<=", Ge: ">=", Eq: "==", Ne: "!=", Not: "!",
	AndAnd: "&&", OrOr: "||", And: "&", Or: "|", Xor: "^", Tilde: "~",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Shl: "<<", Shr: ">>", Question: "?",
	KwControl: "control", KwTable: "table", KwKey: "key", KwActions: "actions",
	KwAction: "action", KwConst: "const", KwDefaultAction: "default_action",
	KwSize: "size", KwImplementation: "implementation", KwApply: "apply",
	KwIf: "if", KwElse: "else", KwHeader: "header", KwStruct: "struct",
	KwTypedef: "typedef", KwBit: "bit", KwBool: "bool", KwTrue: "true",
	KwFalse: "false", KwExact: "exact", KwLpm: "lpm", KwTernary: "ternary",
	KwOptional: "optional", KwIn: "in", KwOut: "out", KwInout: "inout",
	KwReturn: "return", KwExit: "exit",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"control": KwControl, "table": KwTable, "key": KwKey, "actions": KwActions,
	"action": KwAction, "const": KwConst, "default_action": KwDefaultAction,
	"size": KwSize, "implementation": KwImplementation, "apply": KwApply,
	"if": KwIf, "else": KwElse, "header": KwHeader, "struct": KwStruct,
	"typedef": KwTypedef, "bit": KwBit, "bool": KwBool, "true": KwTrue,
	"false": KwFalse, "exact": KwExact, "lpm": KwLpm, "ternary": KwTernary,
	"optional": KwOptional, "in": KwIn, "out": KwOut, "inout": KwInout,
	"return": KwReturn, "exit": KwExit,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string // literal text for Ident/Int/String (string without quotes)

	// For Int tokens: the parsed value and, if width-prefixed (e.g. 8w42),
	// the declared width; Width is 0 for unprefixed literals.
	Value uint64
	Width int
}

func (t Token) String() string {
	switch t.Kind {
	case Ident, Int:
		return t.Text
	case String:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Kind.String()
	}
}
