package token

import "testing"

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestScanBasic(t *testing.T) {
	toks, err := ScanAll(`table ipv4_tbl { key = { x : lpm; } }`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwTable, Ident, LBrace, KwKey, Assign, LBrace, Ident, Colon, KwLpm, Semicolon, RBrace, RBrace, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScanNumbers(t *testing.T) {
	cases := []struct {
		src   string
		value uint64
		width int
	}{
		{"42", 42, 0},
		{"0x2e", 0x2e, 0},
		{"0b101", 5, 0},
		{"8w255", 255, 8},
		{"4w0xF", 15, 4},
		{"16w0b1010", 10, 16},
	}
	for _, c := range cases {
		toks, err := ScanAll(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if toks[0].Kind != Int || toks[0].Value != c.value || toks[0].Width != c.width {
			t.Errorf("%q = %+v, want value %d width %d", c.src, toks[0], c.value, c.width)
		}
	}
	for _, bad := range []string{"0w1", "300w1", "0xzz", "8wzz"} {
		if _, err := ScanAll(bad); err == nil {
			t.Errorf("ScanAll(%q) succeeded", bad)
		}
	}
}

func TestScanOperators(t *testing.T) {
	toks, err := ScanAll(`== != <= >= << >> && || ! ~ & | ^ < > = -> ?`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{Eq, Ne, Le, Ge, Shl, Shr, AndAnd, OrOr, Not, Tilde, And, Or, Xor, Lt, Gt, Assign, Minus, Gt, Question, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScanComments(t *testing.T) {
	toks, err := ScanAll("a // line\n /* block\nmore */ b")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("toks = %v", toks)
	}
	if toks[1].Pos.Line != 3 {
		t.Errorf("b at line %d, want 3", toks[1].Pos.Line)
	}
	if _, err := ScanAll("/* unterminated"); err == nil {
		t.Error("unterminated comment scanned")
	}
}

func TestScanStrings(t *testing.T) {
	toks, err := ScanAll(`"hello \"p4\"\n"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != String || toks[0].Text != "hello \"p4\"\n" {
		t.Fatalf("tok = %+v", toks[0])
	}
	for _, bad := range []string{`"unterminated`, `"bad \q escape"`} {
		if _, err := ScanAll(bad); err == nil {
			t.Errorf("ScanAll(%q) succeeded", bad)
		}
	}
}

func TestScanRejectsPreprocessor(t *testing.T) {
	if _, err := ScanAll("#define FOO 1"); err == nil {
		t.Error("preprocessor directive scanned")
	}
}

func TestScanUnexpectedChar(t *testing.T) {
	if _, err := ScanAll("a $ b"); err == nil {
		t.Error("scanned $")
	}
}

func TestTokenString(t *testing.T) {
	toks, _ := ScanAll(`foo 12 "s" ;`)
	if toks[0].String() != "foo" || toks[1].String() != "12" || toks[2].String() != `"s"` || toks[3].String() != ";" {
		t.Errorf("String() = %v %v %v %v", toks[0], toks[1], toks[2], toks[3])
	}
}
