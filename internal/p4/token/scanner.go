package token

import (
	"fmt"
	"strconv"
	"strings"
)

// Scanner tokenizes P4 source text.
type Scanner struct {
	src  string
	off  int
	line int
	col  int
}

// NewScanner returns a scanner over src.
func NewScanner(src string) *Scanner {
	return &Scanner{src: src, line: 1, col: 1}
}

// ScanAll tokenizes the whole input, ending with an EOF token.
func ScanAll(src string) ([]Token, error) {
	s := NewScanner(src)
	var toks []Token
	for {
		t, err := s.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (s *Scanner) errf(pos Pos, format string, args ...any) error {
	return fmt.Errorf("p4: %s: %s", pos, fmt.Sprintf(format, args...))
}

func (s *Scanner) peek() byte {
	if s.off >= len(s.src) {
		return 0
	}
	return s.src[s.off]
}

func (s *Scanner) peek2() byte {
	if s.off+1 >= len(s.src) {
		return 0
	}
	return s.src[s.off+1]
}

func (s *Scanner) advance() byte {
	c := s.src[s.off]
	s.off++
	if c == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	return c
}

func (s *Scanner) skipSpaceAndComments() error {
	for s.off < len(s.src) {
		switch c := s.peek(); {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			s.advance()
		case c == '/' && s.peek2() == '/':
			for s.off < len(s.src) && s.peek() != '\n' {
				s.advance()
			}
		case c == '/' && s.peek2() == '*':
			pos := s.pos()
			s.advance()
			s.advance()
			for {
				if s.off >= len(s.src) {
					return s.errf(pos, "unterminated block comment")
				}
				if s.peek() == '*' && s.peek2() == '/' {
					s.advance()
					s.advance()
					break
				}
				s.advance()
			}
		case c == '#':
			// Preprocessor-style lines (e.g. #define leftovers) are not
			// supported; reject them loudly rather than mis-lexing.
			return s.errf(s.pos(), "preprocessor directives are not supported")
		default:
			return nil
		}
	}
	return nil
}

func (s *Scanner) pos() Pos { return Pos{Line: s.line, Col: s.col} }

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (s *Scanner) Next() (Token, error) {
	if err := s.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := s.pos()
	if s.off >= len(s.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := s.peek()
	switch {
	case isIdentStart(c):
		start := s.off
		for s.off < len(s.src) && isIdentCont(s.peek()) {
			s.advance()
		}
		text := s.src[start:s.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Pos: pos, Text: text}, nil
		}
		return Token{Kind: Ident, Pos: pos, Text: text}, nil
	case isDigit(c):
		return s.scanNumber(pos)
	case c == '"':
		s.advance()
		var sb strings.Builder
		for {
			if s.off >= len(s.src) {
				return Token{}, s.errf(pos, "unterminated string literal")
			}
			ch := s.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if s.off >= len(s.src) {
					return Token{}, s.errf(pos, "unterminated string literal")
				}
				esc := s.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"', '\\':
					sb.WriteByte(esc)
				default:
					return Token{}, s.errf(pos, "unknown escape \\%c", esc)
				}
				continue
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: String, Pos: pos, Text: sb.String()}, nil
	}
	s.advance()
	two := func(k Kind) (Token, error) {
		s.advance()
		return Token{Kind: k, Pos: pos}, nil
	}
	switch c {
	case '{':
		return Token{Kind: LBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: RBrace, Pos: pos}, nil
	case '(':
		return Token{Kind: LParen, Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Pos: pos}, nil
	case '[':
		return Token{Kind: LBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: RBracket, Pos: pos}, nil
	case ';':
		return Token{Kind: Semicolon, Pos: pos}, nil
	case ':':
		return Token{Kind: Colon, Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Pos: pos}, nil
	case '.':
		return Token{Kind: Dot, Pos: pos}, nil
	case '@':
		return Token{Kind: At, Pos: pos}, nil
	case '?':
		return Token{Kind: Question, Pos: pos}, nil
	case '~':
		return Token{Kind: Tilde, Pos: pos}, nil
	case '+':
		return Token{Kind: Plus, Pos: pos}, nil
	case '-':
		return Token{Kind: Minus, Pos: pos}, nil
	case '*':
		return Token{Kind: Star, Pos: pos}, nil
	case '/':
		return Token{Kind: Slash, Pos: pos}, nil
	case '^':
		return Token{Kind: Xor, Pos: pos}, nil
	case '=':
		if s.peek() == '=' {
			return two(Eq)
		}
		return Token{Kind: Assign, Pos: pos}, nil
	case '!':
		if s.peek() == '=' {
			return two(Ne)
		}
		return Token{Kind: Not, Pos: pos}, nil
	case '<':
		if s.peek() == '=' {
			return two(Le)
		}
		if s.peek() == '<' {
			return two(Shl)
		}
		return Token{Kind: Lt, Pos: pos}, nil
	case '>':
		if s.peek() == '=' {
			return two(Ge)
		}
		if s.peek() == '>' {
			return two(Shr)
		}
		return Token{Kind: Gt, Pos: pos}, nil
	case '&':
		if s.peek() == '&' {
			return two(AndAnd)
		}
		return Token{Kind: And, Pos: pos}, nil
	case '|':
		if s.peek() == '|' {
			return two(OrOr)
		}
		return Token{Kind: Or, Pos: pos}, nil
	}
	return Token{}, s.errf(pos, "unexpected character %q", c)
}

// scanNumber lexes decimal, hex (0x...), binary (0b...) and width-prefixed
// (8w255, 4w0xF) integer literals.
func (s *Scanner) scanNumber(pos Pos) (Token, error) {
	start := s.off
	for s.off < len(s.src) && (isIdentCont(s.peek())) {
		s.advance()
	}
	text := s.src[start:s.off]
	width := 0
	numPart := text
	if i := strings.IndexByte(text, 'w'); i > 0 {
		w, err := strconv.Atoi(text[:i])
		if err != nil || w <= 0 || w > 128 {
			return Token{}, s.errf(pos, "invalid width prefix in literal %q", text)
		}
		width = w
		numPart = text[i+1:]
	}
	base := 10
	switch {
	case strings.HasPrefix(numPart, "0x") || strings.HasPrefix(numPart, "0X"):
		base = 16
		numPart = numPart[2:]
	case strings.HasPrefix(numPart, "0b") || strings.HasPrefix(numPart, "0B"):
		base = 2
		numPart = numPart[2:]
	}
	v, err := strconv.ParseUint(strings.ReplaceAll(numPart, "_", ""), base, 64)
	if err != nil {
		return Token{}, s.errf(pos, "invalid integer literal %q", text)
	}
	return Token{Kind: Int, Pos: pos, Text: text, Value: v, Width: width}, nil
}
