// Package check is SwitchV's static preflight analyzer: a multi-pass
// inspection of the compiled IR that runs before every campaign, in the
// spirit of P4Testgen's extensible front-end and P4R-Type's reject-early
// philosophy. The paper treats the P4 model as the switch's
// specification, API contract and documentation — a defective model
// silently corrupts every downstream verdict, so defects should surface
// before the first solver call or write RPC, not after a full campaign.
//
// Three pass groups run in cost order:
//
//  1. structural — pure IR walks: @refers_to cycles, width mismatches
//     between reference endpoints, shadowed match keys, default actions
//     outside the action list, actions no table names, and
//     @entry_restriction sources that do not compile;
//  2. control-flow reachability — a guarded-command traversal of the
//     apply blocks that over-approximates the symbolic executor (table
//     writes havoc, inputs unconstrained), classifying tables and
//     branch arms that no packet can reach;
//  3. SMT-backed — the solver (internal/sat via internal/smt) decides
//     what structure leaves open: branch guards that are satisfiable
//     in no over-approximated state, and @entry_restriction constraints
//     no entry can satisfy.
//
// Every finding carries a stable diagnostic code (P4C001..) and a
// severity; campaigns refuse to launch on error-severity findings, the
// symbolic generator drops goals on unreachable tables before sharding,
// and the coverage map excludes dead tables from its denominator.
package check

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"switchv/internal/p4/ir"
)

// Severity classifies a finding.
type Severity int

// Severities. Errors block campaign launch; warnings inform and feed
// goal pruning; infos are advisory only.
const (
	Info Severity = iota
	Warn
	Error
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warn:
		return "warn"
	default:
		return "info"
	}
}

// MarshalJSON renders the severity as its lower-case name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Diagnostic codes. Codes are stable across releases: tooling (CI
// gates, suppression lists) keys on them, so they are never renumbered
// or reused.
const (
	// CodeRefersToCycle: the @refers_to graph has a cycle, so no
	// insertion order can ever satisfy all references (and TopoOrder's
	// teardown ordering is undefined).
	CodeRefersToCycle = "P4C001"
	// CodeRefersToWidth: a @refers_to source and its target key have
	// different bit widths; equality between them is vacuous or lossy.
	CodeRefersToWidth = "P4C002"
	// CodeShadowedKey: two keys of one table match on the same
	// underlying field; entries can contradict themselves.
	CodeShadowedKey = "P4C003"
	// CodeInvalidDefault: a table's default action is not in its action
	// list, so the control plane can never reprogram it.
	CodeInvalidDefault = "P4C004"
	// CodeDeadAction: an action no table names; unreachable from any
	// control-plane write.
	CodeDeadAction = "P4C005"
	// CodeBadRestriction: an @entry_restriction source that does not
	// compile; every write to the table would be rejected as unchecked.
	CodeBadRestriction = "P4C006"
	// CodeUnreachableTable: no packet can reach any apply() of the
	// table.
	CodeUnreachableTable = "P4C007"
	// CodeUnreachableBranch: a branch arm whose guard is structurally
	// false (constant-foldable).
	CodeUnreachableBranch = "P4C008"
	// CodeInfeasibleGuard: a branch arm whose guard the solver proves
	// unsatisfiable even in the over-approximated state space.
	CodeInfeasibleGuard = "P4C009"
	// CodeUnsatRestriction: an @entry_restriction no entry can satisfy;
	// the table is permanently empty.
	CodeUnsatRestriction = "P4C010"
	// CodeUninitializedRead: a metadata field is read before the first
	// statement that could write it — the read always sees the zero
	// initialization, so the later write is ordered wrong.
	CodeUninitializedRead = "P4C011"
	// CodeDeadWrite: a write in an apply block that is overwritten by a
	// later write in the same straight-line block before anything could
	// read it; the first value is lost.
	CodeDeadWrite = "P4C012"
	// CodeInvalidHeaderRead: a header field read at a point where the
	// validity lattice proves the header invalid; the read yields zero,
	// never packet data.
	CodeInvalidHeaderRead = "P4C013"
	// CodeValidityCoupledKey: a table matches on a header field whose
	// validity is undetermined at the apply site, without also matching
	// on the header's validity bit or a parser discriminator field —
	// entries cannot tell an absent header from a zero-valued one.
	CodeValidityCoupledKey = "P4C014"
	// CodeUnparsedHeader: a header instance the parser can never produce
	// (unknown to the parse chain, never setValid) is read; its fields
	// are permanently zero.
	CodeUnparsedHeader = "P4C015"
	// CodeConflictingWrites: one action body writes the same field twice
	// with no intervening read; the control plane supplies both values
	// but only the last survives.
	CodeConflictingWrites = "P4C016"
)

// Codes lists every diagnostic code with its fixed severity, in code
// order. The defect-matrix test enforces a bijection between this
// registry and the seeded-defect fixtures.
func Codes() map[string]Severity {
	return map[string]Severity{
		CodeRefersToCycle:     Error,
		CodeRefersToWidth:     Error,
		CodeShadowedKey:       Warn,
		CodeInvalidDefault:    Error,
		CodeDeadAction:        Warn,
		CodeBadRestriction:    Error,
		CodeUnreachableTable:  Warn,
		CodeUnreachableBranch: Warn,
		CodeInfeasibleGuard:   Warn,
		CodeUnsatRestriction:  Error,
		CodeUninitializedRead: Warn,
		CodeDeadWrite:         Warn,
		CodeInvalidHeaderRead: Error,
		CodeValidityCoupledKey: Warn,
		CodeUnparsedHeader:     Error,
		CodeConflictingWrites:  Error,
	}
}

// Finding is one diagnostic.
type Finding struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	// Subject is the table or action the finding is about ("" for
	// program-level findings such as branch reachability).
	Subject string `json:"subject,omitempty"`
	Detail  string `json:"detail"`
}

func (f Finding) String() string {
	if f.Subject != "" {
		return fmt.Sprintf("%s %s %s: %s", f.Code, f.Severity, f.Subject, f.Detail)
	}
	return fmt.Sprintf("%s %s: %s", f.Code, f.Severity, f.Detail)
}

// Report is the result of one preflight analysis.
type Report struct {
	Program  string    `json:"program"`
	Findings []Finding `json:"findings"`
	// SolverChecks counts the SMT checks the analysis spent — the
	// structural passes keep this small; it is zero for models whose
	// reachability is decided entirely by structure.
	SolverChecks int `json:"solver_checks"`

	// unreachable holds every table no packet can reach, including
	// those whose finding was suppressed because an enclosing dead
	// region was already reported (root-cause reporting). Goal pruning
	// and coverage exclusion consume the full set.
	unreachable map[string]bool
}

// Errors counts error-severity findings.
func (r *Report) Errors() int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == Error {
			n++
		}
	}
	return n
}

// HasErrors reports whether any finding blocks campaign launch.
func (r *Report) HasErrors() bool { return r.Errors() > 0 }

// TableUnreachable reports whether the analysis proved that no packet
// reaches the named table.
func (r *Report) TableUnreachable(name string) bool { return r.unreachable[name] }

// UnreachableTables lists every unreachable table in sorted order —
// the full set, including tables inside already-reported dead regions
// whose individual findings were suppressed.
func (r *Report) UnreachableTables() []string {
	out := make([]string, 0, len(r.unreachable))
	for name := range r.unreachable {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// UnreachableSet returns the unreachable tables as a set, the shape
// symbolic.GenOptions and coverage.NewMapExcluding consume. The map is
// a copy; mutating it does not affect the report.
func (r *Report) UnreachableSet() map[string]bool {
	out := make(map[string]bool, len(r.unreachable))
	for name := range r.unreachable {
		out[name] = true
	}
	return out
}

// Text renders the report for humans, one finding per line.
func (r *Report) Text() string {
	var b strings.Builder
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "%s: %s\n", r.Program, f)
	}
	return b.String()
}

func (r *Report) addf(code string, sev Severity, subject, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{
		Code: code, Severity: sev, Subject: subject,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Check runs every pass over a compiled program. The passes run in
// cost order (structural first), and the findings are returned sorted
// by code for stable output.
func Check(prog *ir.Program) *Report {
	r := &Report{Program: prog.Name, Findings: []Finding{}, unreachable: map[string]bool{}}
	checkReferences(r, prog)
	checkKeys(r, prog)
	checkDefaults(r, prog)
	checkDeadActions(r, prog)
	checkRestrictions(r, prog)
	checkDataflow(r, prog)
	checkReachability(r, prog)
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		return a.Detail < b.Detail
	})
	return r
}

var reportCache sync.Map // *ir.Program -> *Report

// Cached returns the memoized report for a program, running Check on
// first use. The memo is keyed on the program pointer: models.Load
// returns one *ir.Program per model, so every harness over the same
// model shares one analysis.
func Cached(prog *ir.Program) *Report {
	if r, ok := reportCache.Load(prog); ok {
		return r.(*Report)
	}
	r := Check(prog)
	actual, _ := reportCache.LoadOrStore(prog, r)
	return actual.(*Report)
}
