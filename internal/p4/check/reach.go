// Control-flow reachability: a guarded-command traversal of the apply
// blocks that over-approximates the symbolic executor's semantics.
//
// The traversal mirrors symbolic.Executor's single-pass guarded
// execution, with two deliberate relaxations that make it a strict
// over-approximation (so "unreachable here" implies "unreachable under
// any entry set and any input"):
//
//   - inputs are left unconstrained: no parser axioms, no
//     metadata-starts-zero assertions — the executor only ever adds
//     assertions, which can only shrink the model set;
//   - table applications havoc: every field any of the table's actions
//     may write gets a fresh unconstrained variable, covering every
//     possible entry set (including "no entry matched, nothing
//     written", since a fresh variable may equal the old value).
//
// Structure decides what it can for free (a guard that folds to the
// constant false is dead without a solver call); the solver is asked
// only where structure is inconclusive. Findings are root-caused: once
// a branch arm is reported dead, everything inside it is traversed
// under a false guard and suppressed — nested tables still join the
// unreachable set (for goal pruning and coverage exclusion) but do not
// produce their own findings.
package check

import (
	"fmt"

	"switchv/internal/p4/ir"
	"switchv/internal/sat"
	"switchv/internal/smt"
)

// reachChecker is the traversal state of one reachability analysis.
type reachChecker struct {
	prog   *ir.Program
	rep    *Report
	b      *smt.Builder
	solver *smt.Solver

	state []*smt.Term // field ID -> current over-approximated value
	halt  *smt.Term   // guard under which exit was executed

	havocSeq  int
	branchSeq int
	ctrl      string // control being traversed, for diagnostics

	// feasible memoizes solver verdicts per guard term.
	feasible map[*smt.Term]bool

	// Per-table apply-site accounting.
	reached         map[string]bool // some apply site is satisfiable
	sites           map[string]int  // apply sites seen
	suppressedSites map[string]int  // apply sites inside reported-dead regions
}

// checkReachability runs the control-flow and SMT passes, reporting
// unreachable branch arms (P4C008/P4C009) and unreachable tables
// (P4C007), and recording the full unreachable-table set on the
// report.
func checkReachability(r *Report, prog *ir.Program) {
	b := smt.NewBuilder()
	c := &reachChecker{
		prog:            prog,
		rep:             r,
		b:               b,
		solver:          smt.NewSolver(b),
		halt:            b.False(),
		feasible:        map[*smt.Term]bool{},
		reached:         map[string]bool{},
		sites:           map[string]int{},
		suppressedSites: map[string]int{},
	}
	c.state = make([]*smt.Term, len(prog.Fields))
	for i, f := range prog.Fields {
		c.state[i] = b.BV("x!"+f.Name, f.Width)
	}
	for _, ctrl := range prog.Controls {
		c.ctrl = ctrl.Name
		c.walk(ctrl.Body, b.Not(c.halt), false)
	}
	for _, t := range prog.Tables {
		if c.reached[t.Name] {
			continue
		}
		r.unreachable[t.Name] = true
		switch {
		case c.sites[t.Name] == 0:
			r.addf(CodeUnreachableTable, Warn, t.Name, "table is never applied by any control")
		case c.suppressedSites[t.Name] < c.sites[t.Name]:
			r.addf(CodeUnreachableTable, Warn, t.Name, "table is applied only under unreachable guards")
		}
		// Tables whose every apply site sits inside an already-reported
		// dead region stay silent: the region's finding is the root
		// cause, and repeating it per table would break the one-defect,
		// one-diagnostic contract.
	}
}

// satisfiable asks whether a guard admits any state, structurally when
// possible and via the solver otherwise. Unknown verdicts count as
// satisfiable (the sound direction: never report a live region dead).
func (c *reachChecker) satisfiable(g *smt.Term) bool {
	if g == c.b.False() {
		return false
	}
	if g == c.b.True() {
		return true
	}
	if v, ok := c.feasible[g]; ok {
		return v
	}
	c.rep.SolverChecks++
	v := c.solver.CheckAssuming(g) != sat.Unsat
	c.feasible[g] = v
	return v
}

// walk traverses statements under guard g, returning the surviving
// guard. suppressed marks regions whose deadness has already been
// reported upstream.
func (c *reachChecker) walk(stmts []ir.Stmt, g *smt.Term, suppressed bool) *smt.Term {
	b := c.b
	for _, st := range stmts {
		switch x := st.(type) {
		case *ir.Assign:
			rhs := b.Resize(c.eval(&x.Src), x.Dst.Width)
			c.state[x.Dst.ID] = b.Ite(g, rhs, c.state[x.Dst.ID])
		case *ir.If:
			g = c.walkIf(x, g, suppressed)
		case *ir.ApplyTable:
			c.applySite(x.Table, g, suppressed)
		case *ir.Exit:
			c.halt = b.Or(c.halt, g)
			g = b.False()
		case *ir.Return:
			g = b.False()
		default:
			panic(fmt.Sprintf("check: unknown statement %T", st))
		}
	}
	return g
}

// walkIf handles one branch: classify each arm (live, structurally
// dead, solver-proved dead), report dead arms once at their root, and
// traverse both arms.
func (c *reachChecker) walkIf(x *ir.If, g *smt.Term, suppressed bool) *smt.Term {
	b := c.b
	cond := c.evalBool(&x.Cond)
	c.branchSeq++
	seq := c.branchSeq
	gThen := b.And(g, cond)
	gElse := b.And(g, b.Not(cond))

	// Inside a dead region (guard already false, or deadness already
	// reported upstream) arms are traversed for table accounting only:
	// no arm-level findings, and nested apply sites inherit the
	// region's suppression (an unreported dead region — code after an
	// exit — still surfaces its tables as P4C007).
	regionDead := suppressed || g == b.False()

	arm := func(guard *smt.Term, name string) (*smt.Term, bool) {
		if regionDead {
			return b.False(), suppressed
		}
		if guard == b.False() {
			c.rep.addf(CodeUnreachableBranch, Warn, "",
				"control %s branch #%d: %s-arm is unreachable (guard is constant false)", c.ctrl, seq, name)
			return b.False(), true
		}
		if !c.satisfiable(guard) {
			c.rep.addf(CodeInfeasibleGuard, Warn, "",
				"control %s branch #%d: %s-arm guard is unsatisfiable", c.ctrl, seq, name)
			return b.False(), true
		}
		return guard, suppressed
	}
	gThen, supThen := arm(gThen, "then")
	gElse, supElse := arm(gElse, "else")

	outThen := c.walk(x.Then, gThen, supThen)
	outElse := c.walk(x.Else, gElse, supElse)
	return b.Or(outThen, outElse)
}

// applySite records one t.apply() site and havocs the table's write
// set: every field any of its actions may assign gets a fresh
// unconstrained variable under the site's guard, over-approximating
// every possible entry set.
func (c *reachChecker) applySite(t *ir.Table, g *smt.Term, suppressed bool) {
	b := c.b
	c.sites[t.Name]++
	if suppressed {
		c.suppressedSites[t.Name]++
	} else if c.satisfiable(g) {
		c.reached[t.Name] = true
	}
	c.havocSeq++
	for _, f := range writtenFields(t, c.prog) {
		fresh := b.BV(fmt.Sprintf("havoc!%d!%s", c.havocSeq, f.Name), f.Width)
		c.state[f.ID] = b.Ite(g, fresh, c.state[f.ID])
	}
}

// writtenFields returns the fields any action of the table (including
// its default) may assign, in field-ID order.
func writtenFields(t *ir.Table, prog *ir.Program) []*ir.Field {
	written := map[int]bool{}
	var collect func(stmts []ir.Stmt)
	collect = func(stmts []ir.Stmt) {
		for _, st := range stmts {
			switch x := st.(type) {
			case *ir.Assign:
				written[x.Dst.ID] = true
			case *ir.If:
				collect(x.Then)
				collect(x.Else)
			}
		}
	}
	for _, a := range t.Actions {
		collect(a.Body)
	}
	collect(t.DefaultAction.Body)
	var out []*ir.Field
	for _, f := range prog.Fields {
		if written[f.ID] {
			out = append(out, f)
		}
	}
	return out
}

// eval lowers an IR expression over the current over-approximated
// state. Action parameters cannot appear in apply blocks, but a fresh
// variable keeps the traversal total if they ever do.
func (c *reachChecker) eval(e *ir.Expr) *smt.Term {
	b := c.b
	switch e.Op {
	case ir.OpConst:
		return b.ConstUint(e.Value, e.Width)
	case ir.OpField:
		return c.state[e.Field.ID]
	case ir.OpParam:
		c.havocSeq++
		return b.BV(fmt.Sprintf("havoc!%d!param", c.havocSeq), e.Width)
	case ir.OpMux:
		return b.Ite(c.evalBool(e.Args[0]), c.eval(e.Args[1]), c.eval(e.Args[2]))
	case ir.OpBitNot:
		return b.BVNot(c.eval(e.Args[0]))
	case ir.OpBitAnd:
		return b.BVAnd(c.eval(e.Args[0]), c.eval(e.Args[1]))
	case ir.OpBitOr:
		return b.BVOr(c.eval(e.Args[0]), c.eval(e.Args[1]))
	case ir.OpBitXor:
		return b.BVXor(c.eval(e.Args[0]), c.eval(e.Args[1]))
	case ir.OpAdd:
		return b.BVAdd(c.eval(e.Args[0]), c.eval(e.Args[1]))
	case ir.OpSub:
		return b.BVSub(c.eval(e.Args[0]), c.eval(e.Args[1]))
	case ir.OpShl, ir.OpShr:
		amount := e.Args[1]
		if amount.Op != ir.OpConst {
			panic("check: only constant shift amounts are supported")
		}
		x := c.eval(e.Args[0])
		if e.Op == ir.OpShl {
			return b.BVShlConst(x, int(amount.Value))
		}
		return b.BVShrConst(x, int(amount.Value))
	default:
		cond := c.evalBool(e)
		return b.Ite(cond, b.ConstUint(1, 1), b.ConstUint(0, 1))
	}
}

// evalBool lowers an IR expression to a boolean term.
func (c *reachChecker) evalBool(e *ir.Expr) *smt.Term {
	b := c.b
	switch e.Op {
	case ir.OpEq:
		return b.Eq(c.eval(e.Args[0]), c.eval(e.Args[1]))
	case ir.OpNe:
		return b.Ne(c.eval(e.Args[0]), c.eval(e.Args[1]))
	case ir.OpLt:
		return b.Ult(c.eval(e.Args[0]), c.eval(e.Args[1]))
	case ir.OpLe:
		return b.Ule(c.eval(e.Args[0]), c.eval(e.Args[1]))
	case ir.OpGt:
		return b.Ult(c.eval(e.Args[1]), c.eval(e.Args[0]))
	case ir.OpGe:
		return b.Ule(c.eval(e.Args[1]), c.eval(e.Args[0]))
	case ir.OpAnd:
		return b.And(c.evalBool(e.Args[0]), c.evalBool(e.Args[1]))
	case ir.OpOr:
		return b.Or(c.evalBool(e.Args[0]), c.evalBool(e.Args[1]))
	case ir.OpNot:
		return b.Not(c.evalBool(e.Args[0]))
	case ir.OpMux:
		return b.Ite(c.evalBool(e.Args[0]), c.evalBool(e.Args[1]), c.evalBool(e.Args[2]))
	default:
		v := c.eval(e)
		return b.Ne(v, b.ConstUint(0, v.Width()))
	}
}
