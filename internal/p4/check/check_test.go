package check

import (
	"strings"
	"testing"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/parser"
	"switchv/models"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ir.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// clean is a defect-free model in the style of the compiler tests:
// every action named, every table applied under satisfiable guards,
// every branch arm feasible.
const clean = `
typedef bit<32> addr_t;

header ipv4_t { bit<8> ttl; addr_t dst_addr; }
struct headers_t { ipv4_t ipv4; }
struct meta_t { bit<10> vrf_id; }

control ingress(inout headers_t headers, inout meta_t meta,
                inout standard_metadata_t standard_metadata) {
  action drop() { mark_to_drop(); }
  action fwd(bit<16> port) { set_egress_port(port); }

  @entry_restriction("vrf_id != 0")
  table route {
    key = {
      meta.vrf_id : exact;
      headers.ipv4.dst_addr : lpm @name("dst");
    }
    actions = { drop; fwd; }
    const default_action = drop;
    size = 100;
  }

  apply {
    if (headers.ipv4.isValid()) {
      if (headers.ipv4.ttl <= 1) { punt_to_cpu(); } else { route.apply(); }
      headers.ipv4.ttl = headers.ipv4.ttl - 1;
    }
  }
}
`

// defects seeds exactly one model defect per diagnostic code, in the
// style of internal/switchv's fault matrix: the completeness test
// below enforces the bijection between this map and the Codes()
// registry in both directions, and each fixture must produce exactly
// one finding — the seeded code and nothing else.
var defects = map[string]string{
	CodeRefersToCycle: `
struct m_t { bit<8> a; bit<8> b; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t1 { key = { m.a : exact @refers_to(t2, b); } actions = { nop; } }
  table t2 { key = { m.b : exact @refers_to(t1, a); } actions = { nop; } }
  apply { t1.apply(); t2.apply(); }
}`,
	CodeRefersToWidth: `
struct m_t { bit<8> a; bit<16> b; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t1 { key = { m.b : exact; } actions = { nop; } }
  table t2 { key = { m.a : exact @refers_to(t1, b); } actions = { nop; } }
  apply { t1.apply(); t2.apply(); }
}`,
	CodeShadowedKey: `
struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t {
    key = { m.a : exact @name("k1"); m.a : ternary @name("k2"); }
    actions = { nop; }
  }
  apply { t.apply(); }
}`,
	CodeInvalidDefault: `
struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  action other() { no_op(); }
  table t {
    key = { m.a : exact; }
    actions = { nop; }
    default_action = other;
  }
  apply { t.apply(); }
}`,
	CodeDeadAction: `
struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  action ghost() { no_op(); }
  table t { key = { m.a : exact; } actions = { nop; } }
  apply { t.apply(); }
}`,
	CodeBadRestriction: `
struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  @entry_restriction("a !=")
  table t { key = { m.a : exact; } actions = { nop; } }
  apply { t.apply(); }
}`,
	CodeUnreachableTable: `
struct m_t { bit<8> a; bit<8> b; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t1 { key = { m.a : exact; } actions = { nop; } }
  table t2 { key = { m.b : exact; } actions = { nop; } }
  apply { t1.apply(); }
}`,
	CodeUnreachableBranch: `
const bit<8> MODE = 1;
struct m_t { bit<8> a; }
control c(inout m_t m) {
  apply {
    if (MODE == 2) { m.a = 3; }
  }
}`,
	CodeInfeasibleGuard: `
struct m_t { bit<8> a; bit<8> b; }
control c(inout m_t m) {
  apply {
    if (m.a < 4) {
      if (m.a > 10) { m.b = 1; }
    }
  }
}`,
	CodeUnsatRestriction: `
struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  @entry_restriction("a == 1 && a == 2")
  table t { key = { m.a : exact; } actions = { nop; } }
  apply { t.apply(); }
}`,
	// m.a is matched by t1 before t2's action — the only write — can run:
	// the key always sees the zero initialization.
	CodeUninitializedRead: `
struct m_t { bit<8> a; bit<8> b; }
control c(inout m_t m) {
  action nop() { no_op(); }
  action seta() { m.a = 5; }
  table t1 { key = { m.a : exact; } actions = { nop; } }
  table t2 { key = { m.b : exact; } actions = { seta; } }
  apply { t1.apply(); t2.apply(); }
}`,
	// The first write to m.a is clobbered before anything reads it.
	CodeDeadWrite: `
struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t { key = { m.a : exact; } actions = { nop; } }
  apply { m.a = 1; m.a = 2; t.apply(); }
}`,
	// ttl is read right after the header was proved invalid.
	CodeInvalidHeaderRead: `
header ipv4_t { bit<8> ttl; }
struct headers_t { ipv4_t ipv4; }
struct m_t { bit<8> a; }
control c(inout headers_t headers, inout m_t m) {
  action nop() { no_op(); }
  table t { key = { m.a : exact; } actions = { nop; } }
  apply { headers.ipv4.setInvalid(); m.a = headers.ipv4.ttl; t.apply(); }
}`,
	// acl matches an ipv4 field with ipv4 validity open and no coupling
	// key (no is_ipv4, no EtherType): absent and zero are conflated.
	CodeValidityCoupledKey: `
header ipv4_t { bit<32> dst_addr; }
struct headers_t { ipv4_t ipv4; }
struct m_t { bit<8> a; }
control c(inout headers_t headers, inout m_t m) {
  action nop() { no_op(); }
  table acl { key = { headers.ipv4.dst_addr : ternary; } actions = { nop; } }
  apply { acl.apply(); }
}`,
	// probe_t is unknown to the parse chain and never set valid, yet its
	// field is matched.
	CodeUnparsedHeader: `
header probe_t { bit<8> kind; }
struct headers_t { probe_t probe; }
struct m_t { bit<8> a; }
control c(inout headers_t headers, inout m_t m) {
  action nop() { no_op(); }
  table t { key = { headers.probe.kind : exact; } actions = { nop; } }
  apply { t.apply(); }
}`,
	// setb writes m.b twice; the control plane supplies v but the
	// constant always wins.
	CodeConflictingWrites: `
struct m_t { bit<8> a; bit<8> b; }
control c(inout m_t m) {
  action setb(bit<8> v) { m.b = v; m.b = 7; }
  table t { key = { m.a : exact; } actions = { setb; } }
  apply { t.apply(); }
}`,
}

// TestDefectMatrix pins the seeded-defect -> diagnostic-code bijection:
// each fixture yields exactly one finding, carrying the seeded code at
// the registry's severity.
func TestDefectMatrix(t *testing.T) {
	for code, src := range defects {
		t.Run(code, func(t *testing.T) {
			r := Check(compile(t, src))
			if len(r.Findings) != 1 {
				t.Fatalf("got %d findings, want exactly 1:\n%s", len(r.Findings), r.Text())
			}
			f := r.Findings[0]
			if f.Code != code {
				t.Errorf("finding code = %s, want %s (%s)", f.Code, code, f)
			}
			if want := Codes()[code]; f.Severity != want {
				t.Errorf("severity = %s, want %s", f.Severity, want)
			}
		})
	}
}

// TestDefectMatrixComplete enforces the bijection in both directions:
// every registered code has a seeded fixture, and every fixture seeds a
// registered code.
func TestDefectMatrixComplete(t *testing.T) {
	for code := range Codes() {
		if _, ok := defects[code]; !ok {
			t.Errorf("diagnostic %s has no seeded-defect fixture", code)
		}
	}
	for code := range defects {
		if _, ok := Codes()[code]; !ok {
			t.Errorf("fixture %s seeds an unregistered diagnostic", code)
		}
	}
}

// TestCleanFixtures: defect-free models produce zero findings — the
// hand-written clean fixture and both embedded models.
func TestCleanFixtures(t *testing.T) {
	if r := Check(compile(t, clean)); len(r.Findings) != 0 {
		t.Errorf("clean fixture: %d findings:\n%s", len(r.Findings), r.Text())
	}
	for _, name := range models.Names() {
		prog, err := models.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		if r := Check(prog); len(r.Findings) != 0 {
			t.Errorf("%s: %d findings:\n%s", name, len(r.Findings), r.Text())
		}
	}
}

// TestRootCauseSuppression: a table applied only inside a reported-dead
// branch arm produces no finding of its own (the arm is the root
// cause), but still joins the unreachable set that goal pruning and
// coverage exclusion consume.
func TestRootCauseSuppression(t *testing.T) {
	src := `
const bit<8> MODE = 1;
struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t { key = { m.a : exact; } actions = { nop; } }
  apply {
    if (MODE == 2) { t.apply(); }
  }
}`
	r := Check(compile(t, src))
	if len(r.Findings) != 1 || r.Findings[0].Code != CodeUnreachableBranch {
		t.Fatalf("want exactly one %s finding, got:\n%s", CodeUnreachableBranch, r.Text())
	}
	if !r.TableUnreachable("t") {
		t.Error("t not in unreachable set")
	}
	if got := r.UnreachableTables(); len(got) != 1 || got[0] != "t" {
		t.Errorf("UnreachableTables = %v", got)
	}
	if set := r.UnreachableSet(); !set["t"] {
		t.Errorf("UnreachableSet = %v", set)
	}
}

// TestRootCauseSuppressionShared: several tables applied inside ONE
// infeasible guard produce a single root-cause finding (the guard), not
// one per table — yet every table joins the unreachable set.
func TestRootCauseSuppressionShared(t *testing.T) {
	src := `
struct m_t { bit<8> a; bit<8> b; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t1 { key = { m.a : exact; } actions = { nop; } }
  table t2 { key = { m.b : exact; } actions = { nop; } }
  table t3 { key = { m.a : ternary; } actions = { nop; } }
  apply {
    if (m.a < 4) {
      if (m.a > 10) { t1.apply(); t2.apply(); t3.apply(); }
    }
  }
}`
	r := Check(compile(t, src))
	if len(r.Findings) != 1 || r.Findings[0].Code != CodeInfeasibleGuard {
		t.Fatalf("want exactly one %s root-cause finding, got:\n%s", CodeInfeasibleGuard, r.Text())
	}
	if got := r.UnreachableTables(); len(got) != 3 || got[0] != "t1" || got[1] != "t2" || got[2] != "t3" {
		t.Errorf("UnreachableTables = %v, want [t1 t2 t3]", got)
	}
	for _, name := range []string{"t1", "t2", "t3"} {
		if !r.TableUnreachable(name) {
			t.Errorf("%s not in unreachable set", name)
		}
	}
}

// TestDeadCodeAfterExit: statements after exit are dead but no branch
// arm was ever reported, so a table applied there gets its own P4C007.
func TestDeadCodeAfterExit(t *testing.T) {
	src := `
struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  table t { key = { m.a : exact; } actions = { nop; } }
  apply {
    exit;
    t.apply();
  }
}`
	r := Check(compile(t, src))
	if len(r.Findings) != 1 || r.Findings[0].Code != CodeUnreachableTable {
		t.Fatalf("want exactly one %s finding, got:\n%s", CodeUnreachableTable, r.Text())
	}
	if !strings.Contains(r.Findings[0].Detail, "unreachable guards") {
		t.Errorf("detail = %q", r.Findings[0].Detail)
	}
}

// TestErrorsGate: severity accounting drives the launch gate.
func TestErrorsGate(t *testing.T) {
	warnOnly := Check(compile(t, defects[CodeDeadAction]))
	if warnOnly.HasErrors() {
		t.Error("warn-only report reports errors")
	}
	withError := Check(compile(t, defects[CodeInvalidDefault]))
	if !withError.HasErrors() || withError.Errors() != 1 {
		t.Errorf("Errors() = %d, want 1", withError.Errors())
	}
}

// TestCached: one analysis per program pointer.
func TestCached(t *testing.T) {
	prog := compile(t, clean)
	a, b := Cached(prog), Cached(prog)
	if a != b {
		t.Error("Cached returned distinct reports for one program")
	}
}
