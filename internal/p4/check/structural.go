// Structural passes: pure walks over the IR, no solver involved.
package check

import (
	"sort"
	"strings"

	"switchv/internal/p4/constraints"
	"switchv/internal/p4/ir"
)

// refersToEdges collects the table-level @refers_to graph: an edge
// T -> R for every key of T referring to R, and for every parameter of
// an action T names (in its action list or as its default) referring
// to R. Edge order is deterministic (tables in declaration order, keys
// then actions in declaration order).
type refEdge struct {
	from, to string
	// where describes the reference site for diagnostics.
	where string
	// srcWidth and dstWidth are the endpoint widths (0 when the target
	// key does not resolve, which compilation already rejects).
	srcWidth, dstWidth int
}

func refersToEdges(prog *ir.Program) []refEdge {
	var edges []refEdge
	target := func(r *ir.Reference) int {
		t, ok := prog.TableByName(r.Table)
		if !ok {
			return 0
		}
		k, ok := t.KeyByName(r.Field)
		if !ok {
			return 0
		}
		return k.Field.Width
	}
	for _, t := range prog.Tables {
		for _, k := range t.Keys {
			if k.RefersTo == nil {
				continue
			}
			edges = append(edges, refEdge{
				from: t.Name, to: k.RefersTo.Table,
				where:    "key " + k.Name + " -> " + k.RefersTo.Table + "." + k.RefersTo.Field,
				srcWidth: k.Field.Width, dstWidth: target(k.RefersTo),
			})
		}
		acts := append([]*ir.Action{}, t.Actions...)
		if !t.HasAction(t.DefaultAction) {
			acts = append(acts, t.DefaultAction)
		}
		for _, a := range acts {
			for _, p := range a.Params {
				if p.RefersTo == nil {
					continue
				}
				edges = append(edges, refEdge{
					from: t.Name, to: p.RefersTo.Table,
					where:    "action " + a.Name + " param " + p.Name + " -> " + p.RefersTo.Table + "." + p.RefersTo.Field,
					srcWidth: p.Width, dstWidth: target(p.RefersTo),
				})
			}
		}
	}
	return edges
}

// checkReferences reports @refers_to cycles (P4C001) and endpoint
// width mismatches (P4C002). Cycles are reported once per strongly
// connected component, not once per edge.
func checkReferences(r *Report, prog *ir.Program) {
	edges := refersToEdges(prog)
	for _, e := range edges {
		if e.dstWidth != 0 && e.srcWidth != e.dstWidth {
			r.addf(CodeRefersToWidth, Error, e.from,
				"@refers_to width mismatch: %s (%d bits vs %d bits)", e.where, e.srcWidth, e.dstWidth)
		}
	}

	// Cycle detection: iterative DFS over the table graph, reporting
	// each cycle by its lexicographically-least member so the finding
	// is stable no matter where the walk entered.
	adj := map[string][]string{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	const (
		unvisited = 0
		onStack   = 1
		done      = 2
	)
	state := map[string]int{}
	var stack []string
	reported := map[string]bool{}
	var visit func(name string)
	visit = func(name string) {
		state[name] = onStack
		stack = append(stack, name)
		for _, next := range adj[name] {
			switch state[next] {
			case unvisited:
				visit(next)
			case onStack:
				// Cycle: the stack suffix from next back to name.
				i := len(stack) - 1
				for i >= 0 && stack[i] != next {
					i--
				}
				cycle := append([]string{}, stack[i:]...)
				anchor := cycle[0]
				for _, n := range cycle {
					if n < anchor {
						anchor = n
					}
				}
				if !reported[anchor] {
					reported[anchor] = true
					r.addf(CodeRefersToCycle, Error, anchor,
						"@refers_to cycle: %s", strings.Join(append(cycle, next), " -> "))
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[name] = done
	}
	for _, t := range prog.Tables {
		if state[t.Name] == unvisited {
			visit(t.Name)
		}
	}
}

// checkKeys reports shadowed match keys (P4C003): two keys of one
// table matching on the same underlying field. Compilation rejects
// duplicate key *names*, but an @name annotation lets the same field
// in twice — entries over such a table can contradict themselves.
func checkKeys(r *Report, prog *ir.Program) {
	for _, t := range prog.Tables {
		seen := map[int]string{} // field ID -> first key name
		for _, k := range t.Keys {
			if first, dup := seen[k.Field.ID]; dup {
				r.addf(CodeShadowedKey, Warn, t.Name,
					"keys %s and %s both match field %s", first, k.Name, k.Field.Name)
				continue
			}
			seen[k.Field.ID] = k.Name
		}
	}
}

// checkDefaults reports default actions outside the table's action
// list (P4C004). NoAction is exempt: it is the implicit default of
// every table and deliberately absent from action lists.
func checkDefaults(r *Report, prog *ir.Program) {
	for _, t := range prog.Tables {
		if t.DefaultAction == prog.NoAction {
			continue
		}
		if !t.HasAction(t.DefaultAction) {
			r.addf(CodeInvalidDefault, Error, t.Name,
				"default action %s is not in the table's action list", t.DefaultAction.Name)
		}
	}
}

// checkDeadActions reports actions no table names (P4C005) — neither
// in an action list nor as a default. Such an action is unreachable
// from any control-plane write and any packet.
func checkDeadActions(r *Report, prog *ir.Program) {
	used := map[*ir.Action]bool{prog.NoAction: true}
	for _, t := range prog.Tables {
		used[t.DefaultAction] = true
		for _, a := range t.Actions {
			used[a] = true
		}
	}
	var dead []string
	for _, a := range prog.Actions {
		if !used[a] {
			dead = append(dead, a.Name)
		}
	}
	sort.Strings(dead)
	for _, name := range dead {
		r.addf(CodeDeadAction, Warn, name, "action is named by no table")
	}
}

// checkRestrictions compiles every @entry_restriction and, for the
// ones that compile, asks the solver whether any entry can satisfy
// them: a malformed source is P4C006, an unsatisfiable one P4C010
// (the table is permanently empty — every write must be rejected).
func checkRestrictions(r *Report, prog *ir.Program) {
	for _, t := range prog.Tables {
		if t.EntryRestriction == "" {
			continue
		}
		c, err := constraints.Compile(t.EntryRestriction, t)
		if err != nil {
			r.addf(CodeBadRestriction, Error, t.Name, "@entry_restriction does not compile: %v", err)
			continue
		}
		ok, checks, err := c.Satisfiable()
		r.SolverChecks += checks
		if err != nil {
			// Encoding limits (none today) degrade to "assumed
			// satisfiable" rather than a false error.
			continue
		}
		if !ok {
			r.addf(CodeUnsatRestriction, Error, t.Name,
				"@entry_restriction is unsatisfiable: no entry can ever be installed (%q)", t.EntryRestriction)
		}
	}
}
