package check

import (
	"sort"
	"strings"

	"switchv/internal/p4/dataflow"
	"switchv/internal/p4/ir"
)

// checkDataflow derives the P4C011–P4C016 findings from the shared
// dataflow analysis (internal/p4/dataflow): bit-granular def-use chains
// plus the header-validity lattice.
func checkDataflow(r *Report, prog *ir.Program) {
	a := dataflow.Cached(prog)

	// P4C011 — metadata read before the first possible write. Standard
	// metadata, synthetic pipeline-state fields and header fields are
	// inputs by definition; only local metadata with a later write is an
	// ordering bug. One finding per field, at its earliest read.
	flagged := map[int]bool{}
	for _, u := range a.Uses {
		f := u.Field
		if !isLocalMetadata(a, f) || flagged[f.ID] {
			continue
		}
		if first, ok := a.FirstDef(f); ok && u.Ord < first {
			flagged[f.ID] = true
			r.addf(CodeUninitializedRead, Warn, f.Name,
				"read (%s in %s) before the first write; the read always sees the zero initialization", u.Kind, u.Control)
		}
	}

	// P4C012 / P4C016 — killed writes: dead stores in apply-block code,
	// conflicting writes inside one action body.
	for _, d := range a.Defs {
		if !d.Killed {
			continue
		}
		if d.Action == "" {
			r.addf(CodeDeadWrite, Warn, d.Field.Name,
				"write in control %s is overwritten before any read; the first value is lost", d.Control)
		} else {
			r.addf(CodeConflictingWrites, Error, d.Action,
				"action writes %s twice with no intervening read; only the last value survives", d.Field.Name)
		}
	}

	// P4C013 — data reads of definitely-invalid header fields. Key reads
	// are covered by the validity-coupling analysis below instead.
	for _, u := range a.Uses {
		f := u.Field
		if u.Kind == dataflow.UseKey || f.Header == "" || f.IsValidity {
			continue
		}
		if u.Validity == dataflow.Invalid && a.Parser.Reachable(f.Header) {
			r.addf(CodeInvalidHeaderRead, Error, f.Name,
				"read (%s in %s) while %s is provably invalid; the value is always zero", u.Kind, u.Control, f.Header)
		}
	}

	// P4C014 — validity-coupled keys: a match on a header field whose
	// validity is open at the apply site, with no validity bit and no
	// parser discriminator among the keys to tell "absent" from "zero".
	for _, t := range prog.Tables {
		if a.Cone(t.Name) == nil {
			continue // never applied; reachability reports that
		}
		for _, k := range t.Keys {
			f := k.Field
			if f.Header == "" || f.IsValidity {
				continue
			}
			if a.ValidityAtApply(t.Name, f.Header) != dataflow.Top {
				continue
			}
			if tableCouplesValidity(a, t, f.Header) {
				continue
			}
			r.addf(CodeValidityCoupledKey, Warn, t.Name,
				"key %q matches %s while %s validity is undetermined and no key couples to it (validity bit or parser discriminator)",
				k.Name, f.Name, f.Header)
		}
	}

	// P4C015 — reads of headers the parser can never produce. One
	// finding per header instance.
	unparsed := map[string]bool{}
	for _, u := range a.Uses {
		h := u.Field.Header
		if h == "" || a.Parser.Reachable(h) || a.SetValidAnywhere(h) {
			continue
		}
		unparsed[h] = true
	}
	headers := make([]string, 0, len(unparsed))
	for h := range unparsed {
		headers = append(headers, h)
	}
	sort.Strings(headers)
	for _, h := range headers {
		r.addf(CodeUnparsedHeader, Error, h,
			"header is read but the parser cannot reach it and nothing sets it valid; its fields are permanently zero")
	}
}

// isLocalMetadata reports whether the field is user metadata: not inside
// a header, not standard metadata, not a synthetic pipeline-state field.
func isLocalMetadata(a *dataflow.Analysis, f *ir.Field) bool {
	if f.Header != "" || f.IsValidity || strings.HasPrefix(f.Name, "$") {
		return false
	}
	if strings.HasPrefix(f.Name, "standard_metadata.") {
		return false
	}
	if p := a.Parser.Prefix; p != "" && strings.HasPrefix(f.Name, p+".") {
		return false
	}
	return true
}

// tableCouplesValidity reports whether any key of t pins down the
// header's validity: its $valid bit, or one of the parser discriminator
// fields that select it.
func tableCouplesValidity(a *dataflow.Analysis, t *ir.Table, header string) bool {
	disc := a.Parser.Discriminators(header)
	for _, k := range t.Keys {
		if k.Field.IsValidity && k.Field.Header == header {
			return true
		}
		for _, d := range disc {
			if k.Field == d {
				return true
			}
		}
	}
	return false
}
