// Package constraints implements the P4-constraints extension (§3
// "P4-Constraints"): a boolean expression language over table keys,
// attached to tables via @entry_restriction annotations, used to decide
// the semantic validity of control-plane requests.
//
// The language supports the accessors of the open-source p4-constraints
// project that the paper's models need:
//
//	vrf_id != 0                       // exact/optional/lpm value
//	ttl::mask != 0 -> is_ipv4 == 1    // ternary value/mask, implication
//	dst::prefix_length >= 16          // lpm prefix length
//	present::is_set == 1              // optional presence
//
// Multiple constraints separated by ';' are a conjunction.
package constraints

import (
	"fmt"
	"strconv"
	"sync"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
)

// Constraint is a compiled entry restriction for a specific table.
type Constraint struct {
	Source string
	table  *ir.Table
	root   node
}

// node is an expression node. Numeric nodes evaluate to value.V; boolean
// nodes to bool.
type node interface{ isNode() }

type boolLit bool

type numLit struct {
	v uint64
}

// attr reads an attribute of a key's match in the entry under evaluation.
type attr struct {
	key   ir.KeyField
	field string // "value", "mask", "prefix_length", "is_set"
}

type cmp struct {
	op   string // == != < <= > >=
	x, y node   // numeric
}

type logic struct {
	op   string // && || -> !
	x, y node   // boolean; y nil for !
}

func (boolLit) isNode() {}
func (numLit) isNode()  {}
func (attr) isNode()    {}
func (*cmp) isNode()    {}
func (*logic) isNode()  {}

// Compile parses and resolves a constraint expression against a table's
// key schema.
func Compile(src string, t *ir.Table) (*Constraint, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &cparser{src: src, toks: toks, table: t}
	root, err := p.parseConjunction()
	if err != nil {
		return nil, err
	}
	if !isBool(root) {
		return nil, fmt.Errorf("constraints: %q: top-level expression is not boolean", src)
	}
	return &Constraint{Source: src, table: t, root: root}, nil
}

func isBool(n node) bool {
	switch n.(type) {
	case boolLit, *cmp, *logic:
		return true
	default:
		return false
	}
}

// Eval evaluates the constraint against an entry. The entry must belong to
// the constraint's table and be syntactically valid.
func (c *Constraint) Eval(e *pdpi.Entry) bool {
	return c.evalBool(c.root, e)
}

func (c *Constraint) evalBool(n node, e *pdpi.Entry) bool {
	switch x := n.(type) {
	case boolLit:
		return bool(x)
	case *logic:
		switch x.op {
		case "!":
			return !c.evalBool(x.x, e)
		case "&&":
			return c.evalBool(x.x, e) && c.evalBool(x.y, e)
		case "||":
			return c.evalBool(x.x, e) || c.evalBool(x.y, e)
		case "->":
			return !c.evalBool(x.x, e) || c.evalBool(x.y, e)
		}
	case *cmp:
		a, aw := c.evalNum(x.x, e)
		b, bw := c.evalNum(x.y, e)
		// Width-align: literals adopt the other side's width.
		w := aw
		if w == 0 {
			w = bw
		}
		if w == 0 {
			w = 64
		}
		av := value.New128(a.Hi, a.Lo, w)
		bv := value.New128(b.Hi, b.Lo, w)
		switch x.op {
		case "==":
			return av.Equal(bv)
		case "!=":
			return !av.Equal(bv)
		case "<":
			return av.Less(bv)
		case "<=":
			return !bv.Less(av)
		case ">":
			return bv.Less(av)
		case ">=":
			return !av.Less(bv)
		}
	}
	return false
}

// evalNum returns the numeric value of a node and its natural width (0 for
// width-agnostic literals).
func (c *Constraint) evalNum(n node, e *pdpi.Entry) (value.V, int) {
	switch x := n.(type) {
	case numLit:
		return value.New(x.v, 64), 0
	case attr:
		w := x.key.Field.Width
		m, present := e.Match(x.key.Name)
		switch x.field {
		case "is_set":
			if present {
				return value.New(1, 1), 1
			}
			return value.Zero(1), 1
		case "prefix_length":
			if !present {
				return value.Zero(16), 16
			}
			return value.New(uint64(m.PrefixLen), 16), 16
		case "mask":
			if !present {
				return value.Zero(w), w
			}
			if x.key.Match == ir.MatchLPM {
				return value.PrefixMask(m.PrefixLen, w), w
			}
			if x.key.Match == ir.MatchOptional || x.key.Match == ir.MatchExact {
				return value.Ones(w), w
			}
			return m.Mask, w
		default: // value
			if !present {
				return value.Zero(w), w
			}
			return m.Value, w
		}
	}
	return value.V{}, 0
}

// CheckEntry evaluates the table's @entry_restriction (if any) against the
// entry, compiling and caching the constraint on first use. A table with
// no restriction accepts everything.
func CheckEntry(e *pdpi.Entry) (bool, error) {
	t := e.Table
	if t.EntryRestriction == "" {
		return true, nil
	}
	c, err := cached(t)
	if err != nil {
		return false, err
	}
	return c.Eval(e), nil
}

var cache sync.Map // *ir.Table -> *Constraint

func cached(t *ir.Table) (*Constraint, error) {
	if c, ok := cache.Load(t); ok {
		return c.(*Constraint), nil
	}
	c, err := Compile(t.EntryRestriction, t)
	if err != nil {
		return nil, fmt.Errorf("constraints: table %s: %w", t.Name, err)
	}
	cache.Store(t, c)
	return c, nil
}

// Lexer.

type ctok struct {
	kind string // "ident", "num", or the operator itself
	text string
	num  uint64
}

func lex(src string) ([]ctok, error) {
	var toks []ctok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			j := i
			for j < len(src) && (src[j] == '_' || src[j] >= 'a' && src[j] <= 'z' ||
				src[j] >= 'A' && src[j] <= 'Z' || src[j] >= '0' && src[j] <= '9') {
				j++
			}
			toks = append(toks, ctok{kind: "ident", text: src[i:j]})
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' ||
				src[j] >= 'a' && src[j] <= 'f' || src[j] >= 'A' && src[j] <= 'F' ||
				src[j] == 'x' || src[j] == 'X' || src[j] == 'b' || src[j] == 'B') {
				j++
			}
			text := src[i:j]
			v, err := strconv.ParseUint(text, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("constraints: bad literal %q", text)
			}
			toks = append(toks, ctok{kind: "num", text: text, num: v})
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "::", "->", "==", "!=", "<=", ">=", "&&", "||":
				toks = append(toks, ctok{kind: two})
				i += 2
				continue
			}
			switch c {
			case '<', '>', '!', '(', ')', ';':
				toks = append(toks, ctok{kind: string(c)})
				i++
			default:
				return nil, fmt.Errorf("constraints: unexpected character %q in %q", c, src)
			}
		}
	}
	toks = append(toks, ctok{kind: "eof"})
	return toks, nil
}

// Parser.

type cparser struct {
	src   string
	toks  []ctok
	pos   int
	table *ir.Table
}

func (p *cparser) cur() ctok { return p.toks[p.pos] }

func (p *cparser) accept(kind string) bool {
	if p.cur().kind == kind {
		p.pos++
		return true
	}
	return false
}

func (p *cparser) errf(format string, args ...any) error {
	return fmt.Errorf("constraints: %q: %s", p.src, fmt.Sprintf(format, args...))
}

// parseConjunction parses "expr (';' expr)*".
func (p *cparser) parseConjunction() (node, error) {
	root, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	for p.accept(";") {
		if p.cur().kind == "eof" {
			break // trailing semicolon
		}
		next, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		if !isBool(root) || !isBool(next) {
			return nil, p.errf("';' joins boolean expressions")
		}
		root = &logic{op: "&&", x: root, y: next}
	}
	if p.cur().kind != "eof" {
		return nil, p.errf("unexpected %q", p.cur().kind)
	}
	return root, nil
}

func (p *cparser) parseImplies() (node, error) {
	lhs, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.accept("->") {
		rhs, err := p.parseImplies() // right associative
		if err != nil {
			return nil, err
		}
		if !isBool(lhs) || !isBool(rhs) {
			return nil, p.errf("'->' requires boolean operands")
		}
		return &logic{op: "->", x: lhs, y: rhs}, nil
	}
	return lhs, nil
}

func (p *cparser) parseOr() (node, error) {
	lhs, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		rhs, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		if !isBool(lhs) || !isBool(rhs) {
			return nil, p.errf("'||' requires boolean operands")
		}
		lhs = &logic{op: "||", x: lhs, y: rhs}
	}
	return lhs, nil
}

func (p *cparser) parseAnd() (node, error) {
	lhs, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		rhs, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		if !isBool(lhs) || !isBool(rhs) {
			return nil, p.errf("'&&' requires boolean operands")
		}
		lhs = &logic{op: "&&", x: lhs, y: rhs}
	}
	return lhs, nil
}

func (p *cparser) parseNot() (node, error) {
	if p.accept("!") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		if !isBool(x) {
			return nil, p.errf("'!' requires a boolean operand")
		}
		return &logic{op: "!", x: x}, nil
	}
	return p.parseCmp()
}

func (p *cparser) parseCmp() (node, error) {
	lhs, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"==", "!=", "<=", ">=", "<", ">"} {
		if p.accept(op) {
			rhs, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			if isBool(lhs) || isBool(rhs) {
				return nil, p.errf("%q compares numeric values", op)
			}
			return &cmp{op: op, x: lhs, y: rhs}, nil
		}
	}
	return lhs, nil
}

func (p *cparser) parseAtom() (node, error) {
	t := p.cur()
	switch t.kind {
	case "(":
		p.pos++
		e, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		if !p.accept(")") {
			return nil, p.errf("missing )")
		}
		return e, nil
	case "num":
		p.pos++
		return numLit{v: t.num}, nil
	case "ident":
		p.pos++
		switch t.text {
		case "true":
			return boolLit(true), nil
		case "false":
			return boolLit(false), nil
		}
		key, ok := p.table.KeyByName(t.text)
		if !ok {
			return nil, p.errf("table %s has no key %q", p.table.Name, t.text)
		}
		field := "value"
		if p.accept("::") {
			ft := p.cur()
			if ft.kind != "ident" {
				return nil, p.errf("expected accessor after ::")
			}
			p.pos++
			field = ft.text
		}
		switch field {
		case "value":
		case "mask":
		case "prefix_length":
			if key.Match != ir.MatchLPM {
				return nil, p.errf("::prefix_length requires an lpm key, %q is %s", t.text, key.Match)
			}
		case "is_set":
			if key.Match != ir.MatchOptional && key.Match != ir.MatchTernary {
				return nil, p.errf("::is_set requires an optional or ternary key")
			}
		default:
			return nil, p.errf("unknown accessor ::%s", field)
		}
		return attr{key: key, field: field}, nil
	default:
		return nil, p.errf("unexpected %q", t.kind)
	}
}
