package constraints

import (
	"fmt"

	"switchv/internal/bdd"
	"switchv/internal/p4/ir"
)

// AttrBit names one BDD variable: bit Bit (0 = most significant) of a key
// attribute ("value", "mask", or "is_set").
type AttrBit struct {
	Key   string
	Field string
	Bit   int
}

// attrKey identifies an attribute.
type attrKey struct {
	key   string
	field string
}

// BDDForm is a constraint compiled to a BDD over the referenced key bits
// (§7 "Fuzzing": the basis of constraint-aware generation).
type BDDForm struct {
	Builder *bdd.Builder
	// Sat is the set of compliant assignments, Unsat its complement.
	Sat, Unsat bdd.Node
	// Vars maps BDD variable indices to attribute bits, MSB first per
	// attribute.
	Vars []AttrBit
	// bitIndex locates an attribute's bit range.
	bitIndex map[attrKey][]int
}

// AttrBits returns the BDD variable indices of an attribute (MSB first),
// or nil if the constraint does not mention it.
func (f *BDDForm) AttrBits(key, field string) []int {
	return f.bitIndex[attrKey{key, field}]
}

// CompileBDD lowers the constraint to a BDD. It fails on shapes the
// bit-level encoding does not support (comparisons between two attributes,
// ::prefix_length, attributes wider than 64 bits).
func (c *Constraint) CompileBDD() (*BDDForm, error) {
	// Collect referenced attributes with their widths.
	var attrs []attrKey
	widths := map[attrKey]int{}
	var collect func(n node) error
	collect = func(n node) error {
		switch x := n.(type) {
		case attr:
			k := attrKey{x.key.Name, x.field}
			if _, seen := widths[k]; seen {
				return nil
			}
			w := x.key.Field.Width
			switch x.field {
			case "is_set":
				w = 1
			case "prefix_length":
				return fmt.Errorf("constraints: ::prefix_length is not BDD-encodable")
			}
			if w > 64 {
				return fmt.Errorf("constraints: attribute %s::%s is wider than 64 bits", x.key.Name, x.field)
			}
			widths[k] = w
			attrs = append(attrs, k)
		case *cmp:
			if err := collect(x.x); err != nil {
				return err
			}
			return collect(x.y)
		case *logic:
			if err := collect(x.x); err != nil {
				return err
			}
			if x.y != nil {
				return collect(x.y)
			}
		}
		return nil
	}
	if err := collect(c.root); err != nil {
		return nil, err
	}

	form := &BDDForm{bitIndex: map[attrKey][]int{}}
	total := 0
	for _, a := range attrs {
		w := widths[a]
		bits := make([]int, w)
		for i := 0; i < w; i++ {
			bits[i] = total + i
			form.Vars = append(form.Vars, AttrBit{Key: a.key, Field: a.field, Bit: i})
		}
		form.bitIndex[a] = bits
		total += w
	}
	form.Builder = bdd.New(total)

	root, err := c.toBDD(form, c.root)
	if err != nil {
		return nil, err
	}
	form.Sat = root
	form.Unsat = form.Builder.Not(root)
	return form, nil
}

func (c *Constraint) toBDD(form *BDDForm, n node) (bdd.Node, error) {
	b := form.Builder
	switch x := n.(type) {
	case boolLit:
		return b.Const(bool(x)), nil
	case *logic:
		l, err := c.toBDD(form, x.x)
		if err != nil {
			return 0, err
		}
		if x.op == "!" {
			return b.Not(l), nil
		}
		r, err := c.toBDD(form, x.y)
		if err != nil {
			return 0, err
		}
		switch x.op {
		case "&&":
			return b.And(l, r), nil
		case "||":
			return b.Or(l, r), nil
		case "->":
			return b.Implies(l, r), nil
		}
		return 0, fmt.Errorf("constraints: operator %q", x.op)
	case *cmp:
		// Normalize to attr OP literal.
		a, aIsAttr := x.x.(attr)
		lv, lIsLit := x.y.(numLit)
		op := x.op
		if !aIsAttr {
			if a2, ok := x.y.(attr); ok {
				if l2, ok := x.x.(numLit); ok {
					a, lv = a2, l2
					op = flipCmp(op)
					aIsAttr, lIsLit = true, true
				}
			}
		}
		if !aIsAttr || !lIsLit {
			// literal-vs-literal folds; attr-vs-attr is unsupported.
			if l1, ok1 := x.x.(numLit); ok1 {
				if l2, ok2 := x.y.(numLit); ok2 {
					return b.Const(cmpLits(op, l1.v, l2.v)), nil
				}
			}
			return 0, fmt.Errorf("constraints: comparison between two attributes is not BDD-encodable")
		}
		field := a.field
		width := a.key.Field.Width
		if field == "is_set" {
			width = 1
		}
		bits := form.AttrBits(a.key.Name, field)
		v := lv.v
		// Literals outside the attribute's range fold.
		if width < 64 && v >= 1<<uint(width) {
			switch op {
			case "==", ">", ">=":
				return bdd.False, nil
			case "!=", "<", "<=":
				return bdd.True, nil
			}
		}
		switch op {
		case "==":
			return b.EqConst(bits, v), nil
		case "!=":
			return b.Not(b.EqConst(bits, v)), nil
		case "<":
			return b.LtConst(bits, v), nil
		case "<=":
			return b.Or(b.LtConst(bits, v), b.EqConst(bits, v)), nil
		case ">":
			return b.GtConst(bits, v), nil
		case ">=":
			return b.Not(b.LtConst(bits, v)), nil
		}
		return 0, fmt.Errorf("constraints: comparison %q", op)
	default:
		return 0, fmt.Errorf("constraints: node %T is not BDD-encodable", n)
	}
}

func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op // == and != are symmetric
	}
}

func cmpLits(op string, a, b uint64) bool {
	switch op {
	case "==":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

// CompileTableBDD compiles a table's @entry_restriction to a BDD; a table
// without a restriction returns (nil, nil).
func CompileTableBDD(t *ir.Table) (*BDDForm, error) {
	if t.EntryRestriction == "" {
		return nil, nil
	}
	c, err := cached(t)
	if err != nil {
		return nil, err
	}
	return c.CompileBDD()
}
