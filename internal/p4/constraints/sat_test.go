package constraints

import (
	"testing"

	"switchv/models"
)

// satCheck compiles src against a middleblock table and returns the
// solver's verdict.
func satCheck(t *testing.T, table, src string) (bool, int) {
	t.Helper()
	p := models.Middleblock()
	tbl, ok := p.TableByName(table)
	if !ok {
		t.Fatalf("no table %q", table)
	}
	c, err := Compile(src, tbl)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	sat, checks, err := c.Satisfiable()
	if err != nil {
		t.Fatalf("solve %q: %v", src, err)
	}
	return sat, checks
}

func TestSatisfiable(t *testing.T) {
	cases := []struct {
		name, table, src string
		want             bool
	}{
		{"model restriction", "vrf_table", "vrf_id != 0", true},
		{"contradiction", "vrf_table", "vrf_id == 1 && vrf_id == 2", false},
		{"excluded middle", "vrf_table", "vrf_id == 0 || vrf_id != 0", true},
		{"vacuous implication", "vrf_table", "vrf_id == 1 -> vrf_id == 1", true},
		{"unsat implication chain", "vrf_table", "vrf_id == 1; vrf_id == 1 -> vrf_id == 2", false},
		// ttl is bit<8>: a value above the key width's range is unsat.
		{"width bound", "acl_ingress_table", "ttl::value > 255", false},
		{"width bound met", "acl_ingress_table", "ttl::value == 255", true},
		// prefix_length carries the plen <= key-width coupling (ipv4_dst
		// is a 32-bit lpm key); nothing else about the entry is coupled.
		{"prefix length in range", "ipv4_table", "ipv4_dst::prefix_length == 32", true},
		{"prefix length beyond width", "ipv4_table", "ipv4_dst::prefix_length > 32", false},
		// the real multi-attribute acl restriction is satisfiable.
		{"acl model restriction", "acl_ingress_table",
			"ttl::mask != 0 -> (is_ipv4 == 1 || is_ipv6 == 1); icmp_type::mask != 0 -> ip_protocol::value == 1", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sat, checks := satCheck(t, tc.table, tc.src)
			if sat != tc.want {
				t.Errorf("Satisfiable(%q) = %v, want %v", tc.src, sat, tc.want)
			}
			if checks != 1 {
				t.Errorf("Satisfiable(%q) spent %d checks, want exactly 1", tc.src, checks)
			}
		})
	}
}
