package constraints

import (
	"strings"
	"testing"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
	"switchv/models"
)

func vrfEntry(v uint64) *pdpi.Entry {
	p := models.Middleblock()
	tbl, _ := p.TableByName("vrf_table")
	return &pdpi.Entry{
		Table:   tbl,
		Matches: []pdpi.Match{{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(v, 10)}},
		Action:  &pdpi.ActionInvocation{Action: p.NoAction},
	}
}

func aclEntry(matches ...pdpi.Match) *pdpi.Entry {
	p := models.Middleblock()
	tbl, _ := p.TableByName("acl_ingress_table")
	drop, _ := p.ActionByName("acl_drop")
	return &pdpi.Entry{
		Table:    tbl,
		Matches:  matches,
		Priority: 1,
		Action:   &pdpi.ActionInvocation{Action: drop},
	}
}

func TestVrfRestriction(t *testing.T) {
	// vrf_table: "(vrf_id != 0)". Entry v2 of the paper's Figure 3 (vrf 0)
	// is invalid.
	ok, err := CheckEntry(vrfEntry(1))
	if err != nil || !ok {
		t.Errorf("vrf 1: ok=%v err=%v", ok, err)
	}
	ok, err = CheckEntry(vrfEntry(0))
	if err != nil || ok {
		t.Errorf("vrf 0: ok=%v err=%v", ok, err)
	}
}

func TestImplication(t *testing.T) {
	// acl_ingress: ttl::mask != 0 -> (is_ipv4 == 1 || is_ipv6 == 1).
	ttl := pdpi.Match{Key: "ttl", Kind: ir.MatchTernary, Value: value.New(1, 8), Mask: value.New(0xff, 8)}
	isIPv4 := pdpi.Match{Key: "is_ipv4", Kind: ir.MatchOptional, Value: value.New(1, 1)}

	ok, err := CheckEntry(aclEntry(ttl))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("ttl match without ip match accepted")
	}
	ok, err = CheckEntry(aclEntry(ttl, isIPv4))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("ttl match with is_ipv4 rejected")
	}
	// No ttl match: vacuously true.
	ok, err = CheckEntry(aclEntry())
	if err != nil || !ok {
		t.Errorf("empty acl entry: ok=%v err=%v", ok, err)
	}
}

func TestIcmpProtocolConstraint(t *testing.T) {
	// icmp_type::mask != 0 -> ip_protocol::value == 1.
	icmp := pdpi.Match{Key: "icmp_type", Kind: ir.MatchTernary, Value: value.New(8, 8), Mask: value.New(0xff, 8)}
	protoICMP := pdpi.Match{Key: "ip_protocol", Kind: ir.MatchTernary, Value: value.New(1, 8), Mask: value.New(0xff, 8)}
	protoTCP := pdpi.Match{Key: "ip_protocol", Kind: ir.MatchTernary, Value: value.New(6, 8), Mask: value.New(0xff, 8)}
	ipv4 := pdpi.Match{Key: "is_ipv4", Kind: ir.MatchOptional, Value: value.New(1, 1)}

	if ok, _ := CheckEntry(aclEntry(icmp, protoICMP, ipv4)); !ok {
		t.Error("icmp+proto1 rejected")
	}
	if ok, _ := CheckEntry(aclEntry(icmp, protoTCP, ipv4)); ok {
		t.Error("icmp+proto6 accepted")
	}
	if ok, _ := CheckEntry(aclEntry(icmp, ipv4)); ok {
		t.Error("icmp without protocol match accepted")
	}
}

func compileTbl(t *testing.T, src string) *Constraint {
	t.Helper()
	p := models.Middleblock()
	tbl, _ := p.TableByName("acl_ingress_table")
	c, err := Compile(src, tbl)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOperators(t *testing.T) {
	ttl := func(v uint64) *pdpi.Entry {
		return aclEntry(
			pdpi.Match{Key: "ttl", Kind: ir.MatchTernary, Value: value.New(v, 8), Mask: value.New(0xff, 8)},
			pdpi.Match{Key: "is_ipv4", Kind: ir.MatchOptional, Value: value.New(1, 1)},
		)
	}
	cases := []struct {
		src  string
		v    uint64
		want bool
	}{
		{"ttl::value == 5", 5, true},
		{"ttl::value != 5", 5, false},
		{"ttl::value < 5", 4, true},
		{"ttl::value <= 5", 5, true},
		{"ttl::value > 5", 6, true},
		{"ttl::value >= 5", 4, false},
		{"!(ttl::value == 5)", 5, false},
		{"ttl::value == 5 || ttl::value == 6", 6, true},
		{"ttl::value == 5 && ttl::value == 6", 5, false},
		{"true", 0, true},
		{"false || ttl::value == 1", 1, true},
		{"ttl::value == 0x10", 16, true},
		{"ttl::is_set == 1", 9, true},
		{"is_ipv6::is_set == 1", 9, false},
		{"ttl::mask == 0xff", 1, true},
		{"is_ipv4::mask == 1", 1, true}, // optional present: full mask
	}
	for _, c := range cases {
		got := compileTbl(t, c.src).Eval(ttl(c.v))
		if got != c.want {
			t.Errorf("%q on ttl=%d = %v, want %v", c.src, c.v, got, c.want)
		}
	}
}

func TestLPMAccessors(t *testing.T) {
	p := models.Middleblock()
	tbl, _ := p.TableByName("ipv4_table")
	c, err := Compile("ipv4_dst::prefix_length >= 8 && ipv4_dst::mask != 0", tbl)
	if err != nil {
		t.Fatal(err)
	}
	e := &pdpi.Entry{
		Table: tbl,
		Matches: []pdpi.Match{
			{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(1, 10)},
			{Key: "ipv4_dst", Kind: ir.MatchLPM, Value: value.New(0x0a000000, 32), PrefixLen: 8},
		},
	}
	if !c.Eval(e) {
		t.Error("plen 8 rejected")
	}
	e.Matches[1].PrefixLen = 4
	if c.Eval(e) {
		t.Error("plen 4 accepted")
	}
}

func TestSemicolonConjunction(t *testing.T) {
	p := models.WAN()
	tbl, _ := p.TableByName("vlan_table")
	mk := func(v uint64) *pdpi.Entry {
		return &pdpi.Entry{
			Table:   tbl,
			Matches: []pdpi.Match{{Key: "vlan_id", Kind: ir.MatchExact, Value: value.New(v, 12)}},
		}
	}
	for v, want := range map[uint64]bool{0: false, 1: true, 4094: true, 4095: false} {
		ok, err := CheckEntry(mk(v))
		if err != nil {
			t.Fatal(err)
		}
		if ok != want {
			t.Errorf("vlan %d: ok=%v, want %v", v, ok, want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	p := models.Middleblock()
	tbl, _ := p.TableByName("acl_ingress_table")
	cases := []string{
		"bogus_key == 1",
		"ttl::bogus == 1",
		"ttl::prefix_length == 1",            // not lpm
		"ether_type::value ==",               // truncated
		"ttl::value == 1 &&",                 // truncated
		"(ttl::value == 1",                   // missing paren
		"1 == 1 == 1",                        // cmp of bool
		"ttl::value",                         // not boolean at top
		"true && 5",                          // non-bool operand
		"!5",                                 // non-bool operand
		"true -> 5",                          // non-bool implication
		"ttl::value == 1 @",                  // bad char
		"ttl::value == 99999999999999999999", // overflow literal
		"ttl::value == 1 extra",
		"dst_mac::is_set == 1 ; ; ttl::value == 1", // double semicolon mid-expression
	}
	for _, src := range cases {
		if _, err := Compile(src, tbl); err == nil {
			t.Errorf("Compile(%q) succeeded", src)
		}
	}
}

func TestTrailingSemicolon(t *testing.T) {
	c := compileTbl(t, "ttl::value == 1;")
	e := aclEntry(
		pdpi.Match{Key: "ttl", Kind: ir.MatchTernary, Value: value.New(1, 8), Mask: value.New(0xff, 8)},
		pdpi.Match{Key: "is_ipv4", Kind: ir.MatchOptional, Value: value.New(1, 1)},
	)
	if !c.Eval(e) {
		t.Error("trailing semicolon broke evaluation")
	}
}

func TestNoRestrictionAcceptsAll(t *testing.T) {
	p := models.Middleblock()
	tbl, _ := p.TableByName("nexthop_table")
	e := &pdpi.Entry{Table: tbl}
	ok, err := CheckEntry(e)
	if err != nil || !ok {
		t.Errorf("ok=%v err=%v", ok, err)
	}
}

func TestWideValues(t *testing.T) {
	// 128-bit comparisons through the constraint engine.
	p := models.WAN()
	tbl, _ := p.TableByName("acl_pre_ingress_table")
	c, err := Compile("dst_ipv6::mask != 0 -> is_ipv6 == 1", tbl)
	if err != nil {
		t.Fatal(err)
	}
	e := &pdpi.Entry{
		Table:    tbl,
		Priority: 1,
		Matches: []pdpi.Match{
			{Key: "dst_ipv6", Kind: ir.MatchTernary, Value: value.New128(0x20010db800000000, 0, 128), Mask: value.PrefixMask(32, 128)},
		},
	}
	if c.Eval(e) {
		t.Error("ipv6 ternary without is_ipv6 accepted")
	}
	e.Matches = append(e.Matches, pdpi.Match{Key: "is_ipv6", Kind: ir.MatchOptional, Value: value.New(1, 1)})
	if !c.Eval(e) {
		t.Error("ipv6 ternary with is_ipv6 rejected")
	}
}

func TestErrorMentionsTable(t *testing.T) {
	p := models.Middleblock()
	tbl, _ := p.TableByName("vrf_table")
	// Corrupt the cached path by compiling a bad source directly.
	if _, err := Compile("nope == 1", tbl); err == nil || !strings.Contains(err.Error(), "vrf_table") {
		t.Errorf("error = %v", err)
	}
}
