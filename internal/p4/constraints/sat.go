// SMT encoding of entry restrictions, used by the static preflight
// analyzer (internal/p4/check) to detect @entry_restriction constraints
// that no entry can ever satisfy.
//
// The encoding is deliberately loose: every accessor of every key
// becomes an independent free variable (a value, a mask, a prefix
// length bounded by the key width, a presence bit), with none of the
// couplings a real entry has (an exact key's mask is all-ones, an LPM
// mask is PrefixMask(prefix_length), an absent optional reads zero).
// Every real entry therefore corresponds to some model of the
// encoding, so UNSAT here soundly implies that no entry satisfies the
// restriction. SAT is not a completeness claim — a restriction could
// be satisfiable only in the loose space — but for the preflight's
// purpose (never reject a usable table) that is the right direction.
package constraints

import (
	"fmt"

	"switchv/internal/sat"
	"switchv/internal/smt"
	"switchv/internal/p4/value"
)

// Satisfiable reports whether any assignment of the constraint's key
// attributes satisfies it, along with the number of solver checks
// spent. A false result is a proof: under the loose per-attribute
// encoding (a superset of real entries) the constraint admits no
// model, so no entry can ever be installed in the table.
func (c *Constraint) Satisfiable() (bool, int, error) {
	b := smt.NewBuilder()
	s := smt.NewSolver(b)
	e := &encoder{c: c, b: b, s: s, vars: map[string]*smt.Term{}}
	root, err := e.encodeBool(c.root)
	if err != nil {
		return true, 0, err
	}
	switch s.CheckAssuming(root) {
	case sat.Sat:
		return true, 1, nil
	case sat.Unsat:
		return false, 1, nil
	default:
		return true, 1, fmt.Errorf("constraints: solver returned unknown for %q", c.Source)
	}
}

type encoder struct {
	c    *Constraint
	b    *smt.Builder
	s    *smt.Solver
	vars map[string]*smt.Term
}

// attrVar returns the free variable of one (key, accessor) pair,
// creating it on first use. Prefix lengths carry their one real
// coupling — 0 <= plen <= key width — because restrictions routinely
// compare against the width and real entries always satisfy it.
func (e *encoder) attrVar(a attr) *smt.Term {
	name := a.field + "!" + a.key.Name
	if v, ok := e.vars[name]; ok {
		return v
	}
	b := e.b
	var v *smt.Term
	switch a.field {
	case "is_set":
		v = b.BV(name, 1)
	case "prefix_length":
		v = b.BV(name, 16)
		e.s.Assert(b.Ule(v, b.ConstUint(uint64(a.key.Field.Width), 16)))
	default: // value, mask
		v = b.BV(name, a.key.Field.Width)
	}
	e.vars[name] = v
	return v
}

// encodeNum lowers a numeric node to a term plus its natural width
// (0 for width-agnostic literals), mirroring Constraint.evalNum.
func (e *encoder) encodeNum(n node) (*smt.Term, int, error) {
	switch x := n.(type) {
	case numLit:
		return e.b.Const(value.New(x.v, 64)), 0, nil
	case attr:
		v := e.attrVar(x)
		return v, v.Width(), nil
	default:
		return nil, 0, fmt.Errorf("constraints: %q: non-numeric node %T in numeric position", e.c.Source, n)
	}
}

// encodeBool lowers a boolean node. Comparison operands width-align
// exactly as Eval does: literals adopt the other side's width (64 when
// both are literals), wider values truncate via Resize — the masking
// value.New128 applies at evaluation time.
func (e *encoder) encodeBool(n node) (*smt.Term, error) {
	b := e.b
	switch x := n.(type) {
	case boolLit:
		return b.Bool(bool(x)), nil
	case *logic:
		lhs, err := e.encodeBool(x.x)
		if err != nil {
			return nil, err
		}
		if x.op == "!" {
			return b.Not(lhs), nil
		}
		rhs, err := e.encodeBool(x.y)
		if err != nil {
			return nil, err
		}
		switch x.op {
		case "&&":
			return b.And(lhs, rhs), nil
		case "||":
			return b.Or(lhs, rhs), nil
		case "->":
			return b.Implies(lhs, rhs), nil
		}
		return nil, fmt.Errorf("constraints: %q: unknown logic op %q", e.c.Source, x.op)
	case *cmp:
		lhs, lw, err := e.encodeNum(x.x)
		if err != nil {
			return nil, err
		}
		rhs, rw, err := e.encodeNum(x.y)
		if err != nil {
			return nil, err
		}
		w := lw
		if w == 0 {
			w = rw
		}
		if w == 0 {
			w = 64
		}
		lhs, rhs = b.Resize(lhs, w), b.Resize(rhs, w)
		switch x.op {
		case "==":
			return b.Eq(lhs, rhs), nil
		case "!=":
			return b.Ne(lhs, rhs), nil
		case "<":
			return b.Ult(lhs, rhs), nil
		case "<=":
			return b.Ule(lhs, rhs), nil
		case ">":
			return b.Ult(rhs, lhs), nil
		case ">=":
			return b.Ule(rhs, lhs), nil
		}
		return nil, fmt.Errorf("constraints: %q: unknown comparison %q", e.c.Source, x.op)
	default:
		return nil, fmt.Errorf("constraints: %q: non-boolean node %T in boolean position", e.c.Source, n)
	}
}
