package pdpi

import (
	"strings"
	"testing"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/value"
	"switchv/models"
)

func ipv4Entry(t *testing.T, vrf uint64, prefix uint64, plen int) *Entry {
	t.Helper()
	p := models.Middleblock()
	tbl, _ := p.TableByName("ipv4_table")
	act, _ := p.ActionByName("set_nexthop_id")
	return &Entry{
		Table: tbl,
		Matches: []Match{
			{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(vrf, 10)},
			{Key: "ipv4_dst", Kind: ir.MatchLPM, Value: value.New(prefix, 32), PrefixLen: plen},
		},
		Action: &ActionInvocation{Action: act, Args: []value.V{value.New(1, 10)}},
	}
}

func TestValidateOK(t *testing.T) {
	e := ipv4Entry(t, 1, 0x0a000000, 8)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	p := models.Middleblock()
	aclTbl, _ := p.TableByName("acl_ingress_table")
	wcmpTbl, _ := p.TableByName("wcmp_group_table")
	setNexthop, _ := p.ActionByName("set_nexthop_id")
	aclDrop, _ := p.ActionByName("acl_drop")

	cases := []struct {
		name    string
		mutate  func(*Entry)
		wantSub string
	}{
		{"unknown key", func(e *Entry) { e.Matches[0].Key = "bogus" }, "no key"},
		{"duplicate key", func(e *Entry) { e.Matches = append(e.Matches, e.Matches[0]) }, "duplicate"},
		{"wrong kind", func(e *Entry) { e.Matches[0].Kind = ir.MatchLPM }, "is exact"},
		{"wrong width", func(e *Entry) { e.Matches[0].Value = value.New(1, 8) }, "width"},
		{"prefix out of range", func(e *Entry) { e.Matches[1].PrefixLen = 40 }, "prefix length"},
		{"bits below prefix", func(e *Entry) {
			e.Matches[1].Value = value.New(0x0a000001, 32)
			e.Matches[1].PrefixLen = 8
		}, "below the prefix"},
		{"missing mandatory", func(e *Entry) { e.Matches = e.Matches[:1] }, "mandatory"},
		{"priority on exact table", func(e *Entry) { e.Priority = 5 }, "does not use priorities"},
		{"bad action", func(e *Entry) { e.Action.Action = aclDrop }, "not permitted"},
		{"arg count", func(e *Entry) { e.Action.Args = nil }, "takes 1 args"},
		{"arg width", func(e *Entry) { e.Action.Args = []value.V{value.New(1, 8)} }, "width"},
		{"no action", func(e *Entry) { e.Action = nil }, "no action"},
		{"action set on plain table", func(e *Entry) {
			e.ActionSet = []WeightedAction{{ActionInvocation: *e.Action, Weight: 1}}
			e.Action = nil
		}, "not a selector"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e := ipv4Entry(t, 1, 0x0a000000, 8)
			c.mutate(e)
			err := e.Validate()
			if err == nil {
				t.Fatal("Validate succeeded")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error = %v, want substring %q", err, c.wantSub)
			}
		})
	}

	// Ternary-specific checks.
	tern := &Entry{
		Table: aclTbl,
		Matches: []Match{
			{Key: "ttl", Kind: ir.MatchTernary, Value: value.New(0, 8), Mask: value.Zero(8)},
		},
		Priority: 1,
		Action:   &ActionInvocation{Action: aclDrop},
	}
	if err := tern.Validate(); err == nil || !strings.Contains(err.Error(), "zero mask") {
		t.Errorf("zero mask: %v", err)
	}
	tern.Matches[0].Mask = value.New(0x0f, 8)
	tern.Matches[0].Value = value.New(0xf0, 8)
	if err := tern.Validate(); err == nil || !strings.Contains(err.Error(), "outside the mask") {
		t.Errorf("value outside mask: %v", err)
	}
	tern.Matches[0].Value = value.New(0x0a, 8)
	if err := tern.Validate(); err != nil {
		t.Errorf("canonical ternary rejected: %v", err)
	}
	tern.Priority = 0
	if err := tern.Validate(); err == nil || !strings.Contains(err.Error(), "priority") {
		t.Errorf("zero priority: %v", err)
	}

	// Selector table checks.
	sel := &Entry{
		Table:   wcmpTbl,
		Matches: []Match{{Key: "wcmp_group_id", Kind: ir.MatchExact, Value: value.New(1, 10)}},
		ActionSet: []WeightedAction{
			{ActionInvocation: ActionInvocation{Action: setNexthop, Args: []value.V{value.New(1, 10)}}, Weight: 2},
			{ActionInvocation: ActionInvocation{Action: setNexthop, Args: []value.V{value.New(2, 10)}}, Weight: 1},
		},
	}
	if err := sel.Validate(); err != nil {
		t.Errorf("valid selector entry rejected: %v", err)
	}
	sel.ActionSet[0].Weight = 0
	if err := sel.Validate(); err == nil || !strings.Contains(err.Error(), "positive") {
		t.Errorf("zero weight: %v", err)
	}
	sel.ActionSet = nil
	if err := sel.Validate(); err == nil || !strings.Contains(err.Error(), "one-shot") {
		t.Errorf("missing action set: %v", err)
	}
	if (&Entry{}).Validate() == nil {
		t.Error("entry with no table validated")
	}
}

func TestNeedsPriority(t *testing.T) {
	p := models.Middleblock()
	ipv4, _ := p.TableByName("ipv4_table")
	acl, _ := p.TableByName("acl_ingress_table")
	if NeedsPriority(ipv4) {
		t.Error("ipv4_table needs priority")
	}
	if !NeedsPriority(acl) {
		t.Error("acl_ingress_table does not need priority")
	}
}

func TestKeyAndString(t *testing.T) {
	a := ipv4Entry(t, 1, 0x0a000000, 8)
	b := ipv4Entry(t, 1, 0x0a000000, 8)
	c := ipv4Entry(t, 2, 0x0a000000, 8)
	if a.Key() != b.Key() {
		t.Error("equal matches, different keys")
	}
	if a.Key() == c.Key() {
		t.Error("different matches, same key")
	}
	// Same match, different action: still the same Key (collision).
	b.Action.Args[0] = value.New(9, 10)
	if a.Key() != b.Key() {
		t.Error("action changed the match key")
	}
	s := a.String()
	for _, want := range []string{"ipv4_table", "set_nexthop_id", "=>"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestMatchLookup(t *testing.T) {
	e := ipv4Entry(t, 1, 0, 0)
	if _, ok := e.Match("vrf_id"); !ok {
		t.Error("vrf_id not found")
	}
	if _, ok := e.Match("bogus"); ok {
		t.Error("bogus found")
	}
}

func TestClone(t *testing.T) {
	e := ipv4Entry(t, 1, 0x0a000000, 8)
	cp := e.Clone()
	cp.Matches[0].Value = value.New(7, 10)
	cp.Action.Args[0] = value.New(7, 10)
	if e.Matches[0].Value.Uint64() != 1 || e.Action.Args[0].Uint64() != 1 {
		t.Error("Clone aliases the original")
	}

	p := models.Middleblock()
	wcmpTbl, _ := p.TableByName("wcmp_group_table")
	setNexthop, _ := p.ActionByName("set_nexthop_id")
	sel := &Entry{
		Table:   wcmpTbl,
		Matches: []Match{{Key: "wcmp_group_id", Kind: ir.MatchExact, Value: value.New(1, 10)}},
		ActionSet: []WeightedAction{
			{ActionInvocation: ActionInvocation{Action: setNexthop, Args: []value.V{value.New(1, 10)}}, Weight: 2},
		},
	}
	cp2 := sel.Clone()
	cp2.ActionSet[0].Args[0] = value.New(9, 10)
	if sel.ActionSet[0].Args[0].Uint64() != 1 {
		t.Error("Clone aliases the action set")
	}
}
