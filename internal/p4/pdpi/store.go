package pdpi

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"switchv/internal/p4/ir"
)

// Store holds the installed entries of a switch or simulator, keyed by
// table and canonical match key. It implements the P4Runtime insert,
// modify and delete semantics on the semantic entry representation.
//
// A Store is safe for concurrent readers (the parallel symbolic-
// generation and simulation engines share one store across workers);
// mutations must not race with reads, as everywhere else.
type Store struct {
	mu     sync.Mutex
	tables map[string]map[string]*Entry
	order  int
	seq    map[string]int // insertion order per entry key, for stable wins

	// ordered caches Entries() results per table; mutations invalidate it.
	ordered map[string][]*Entry

	// gen counts mutations; versions counts them per table. Compiled
	// pipelines (internal/p4/compile) poll gen with one atomic load per
	// packet and recompile only tables whose version moved.
	gen      atomic.Uint64
	versions map[string]uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		tables:   map[string]map[string]*Entry{},
		seq:      map[string]int{},
		ordered:  map[string][]*Entry{},
		versions: map[string]uint64{},
	}
}

// Generation returns a counter that increases on every mutation. It is
// safe to read concurrently with other readers and is the cheap "did
// anything change" check for caches built over the store's contents.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// TableVersion returns a counter that increases whenever the named
// table's entries change (0 for a never-touched table). Callers holding a
// compiled view of one table compare it against the version they built at.
func (s *Store) TableVersion(table string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.versions[table]
}

// bumpLocked records a mutation of a table. Callers hold s.mu.
func (s *Store) bumpLocked(table string) {
	s.versions[table]++
	s.gen.Add(1)
}

// Len returns the total number of installed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, t := range s.tables {
		n += len(t)
	}
	return n
}

// TableLen returns the number of entries installed in a table.
func (s *Store) TableLen(table string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tables[table])
}

// Insert adds an entry; it fails if an entry with the same match already
// exists.
func (s *Store) Insert(e *Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := e.Key()
	t := s.tables[e.Table.Name]
	if t == nil {
		t = map[string]*Entry{}
		s.tables[e.Table.Name] = t
	}
	if _, dup := t[key]; dup {
		return fmt.Errorf("pdpi: entry already exists: %s", key)
	}
	t[key] = e
	s.order++
	s.seq[key] = s.order
	delete(s.ordered, e.Table.Name)
	s.bumpLocked(e.Table.Name)
	return nil
}

// Modify replaces the action of an existing entry; it fails if the entry
// does not exist.
func (s *Store) Modify(e *Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := e.Key()
	t := s.tables[e.Table.Name]
	if _, ok := t[key]; !ok {
		return fmt.Errorf("pdpi: entry does not exist: %s", key)
	}
	t[key] = e
	delete(s.ordered, e.Table.Name)
	s.bumpLocked(e.Table.Name)
	return nil
}

// Delete removes an entry by match; it fails if the entry does not exist.
func (s *Store) Delete(e *Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := e.Key()
	t := s.tables[e.Table.Name]
	if _, ok := t[key]; !ok {
		return fmt.Errorf("pdpi: entry does not exist: %s", key)
	}
	delete(t, key)
	delete(s.seq, key)
	delete(s.ordered, e.Table.Name)
	s.bumpLocked(e.Table.Name)
	return nil
}

// Get returns the entry with the same match as e, if installed.
func (s *Store) Get(e *Entry) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	got, ok := s.tables[e.Table.Name][e.Key()]
	return got, ok
}

// Entries returns the entries of a table in deterministic (insertion)
// order. The result is cached until the table changes; callers must not
// mutate it.
func (s *Store) Entries(table string) []*Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entriesLocked(table)
}

func (s *Store) entriesLocked(table string) []*Entry {
	if out, ok := s.ordered[table]; ok {
		return out
	}
	t := s.tables[table]
	out := make([]*Entry, 0, len(t))
	for _, e := range t {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return s.seq[out[i].Key()] < s.seq[out[j].Key()] })
	s.ordered[table] = out
	return out
}

// All returns every installed entry, grouped by table in the program's
// declaration order when prog is non-nil, else by table name.
func (s *Store) All(prog *ir.Program) []*Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	if prog != nil {
		for _, t := range prog.Tables {
			names = append(names, t.Name)
		}
	} else {
		for name := range s.tables {
			names = append(names, name)
		}
		sort.Strings(names)
	}
	var out []*Entry
	for _, name := range names {
		out = append(out, s.entriesLocked(name)...)
	}
	return out
}

// Clone returns an independent store over the same entries. Installed
// entries are immutable by convention (updates replace the pointer), so
// the entries themselves are shared, making Clone cheap enough for the
// oracle's per-batch replay.
func (s *Store) Clone() *Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := NewStore()
	out.order = s.order
	for table, entries := range s.tables {
		nt := make(map[string]*Entry, len(entries))
		for k, e := range entries {
			nt[k] = e
			out.seq[k] = s.seq[k]
		}
		out.tables[table] = nt
		out.versions[table] = s.versions[table]
	}
	out.gen.Store(s.gen.Load())
	return out
}

// Clear removes all entries. Table versions keep counting up across a
// Clear so compiled views never mistake "emptied and refilled" for
// "unchanged".
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for table := range s.tables {
		s.bumpLocked(table)
	}
	s.tables = map[string]map[string]*Entry{}
	s.seq = map[string]int{}
	s.ordered = map[string][]*Entry{}
	s.order = 0
}

// Seq returns the insertion sequence number of an installed entry (0 if
// not installed). Lower numbers were installed earlier.
func (s *Store) Seq(e *Entry) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq[e.Key()]
}
