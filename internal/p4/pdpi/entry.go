// Package pdpi provides the program-dependent semantic representation of
// table entries, in the spirit of the P4-PDPI framework the paper builds
// on: entries are expressed over a specific P4 model's tables, keys and
// actions with typed bitvector values, independent of the P4Runtime wire
// encoding.
package pdpi

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/value"
)

// Match is the value supplied for one key field of an entry. The match
// kind dictates which fields are meaningful:
//
//   - exact: Value
//   - lpm: Value and PrefixLen
//   - ternary: Value and Mask
//   - optional: Value (an omitted optional key is simply absent)
type Match struct {
	Key       string
	Kind      ir.MatchKind
	Value     value.V
	Mask      value.V
	PrefixLen int
}

// ActionInvocation is an action with concrete arguments.
type ActionInvocation struct {
	Action *ir.Action
	Args   []value.V
}

// WeightedAction is one member of a one-shot action set.
type WeightedAction struct {
	ActionInvocation
	Weight int
}

// Entry is a semantic table entry.
type Entry struct {
	Table   *ir.Table
	Matches []Match
	// Priority orders ternary/optional entries (higher wins). It must be 0
	// for tables whose keys are all exact/lpm.
	Priority int32
	// Action is set for plain tables; ActionSet for selector tables.
	Action    *ActionInvocation
	ActionSet []WeightedAction
}

// Match returns the match for the named key, if supplied.
func (e *Entry) Match(key string) (Match, bool) {
	for _, m := range e.Matches {
		if m.Key == key {
			return m, true
		}
	}
	return Match{}, false
}

// NeedsPriority reports whether entries of table t are ordered by an
// explicit priority (i.e. the table has a ternary or optional key).
func NeedsPriority(t *ir.Table) bool {
	for _, k := range t.Keys {
		if k.Match == ir.MatchTernary || k.Match == ir.MatchOptional {
			return true
		}
	}
	return false
}

// Validate checks that the entry is well-formed with respect to its
// table's schema: every supplied match names a real key with the right
// kind and in-range values, mandatory (exact/lpm) keys are all present, no
// key is matched twice, the priority discipline is respected, and the
// action (or action set, for selector tables) is permitted by the table.
//
// This is the "syntactic validity" notion of §4: it does not check
// @entry_restriction or @refers_to constraints.
func (e *Entry) Validate() error {
	t := e.Table
	if t == nil {
		return fmt.Errorf("pdpi: entry has no table")
	}
	seen := map[string]bool{}
	for _, m := range e.Matches {
		k, ok := t.KeyByName(m.Key)
		if !ok {
			return fmt.Errorf("pdpi: table %s has no key %q", t.Name, m.Key)
		}
		if seen[m.Key] {
			return fmt.Errorf("pdpi: duplicate match on key %q", m.Key)
		}
		seen[m.Key] = true
		if m.Kind != k.Match {
			return fmt.Errorf("pdpi: key %q is %s, match is %s", m.Key, k.Match, m.Kind)
		}
		w := k.Field.Width
		if m.Value.Width != w {
			return fmt.Errorf("pdpi: key %q value width %d, want %d", m.Key, m.Value.Width, w)
		}
		switch m.Kind {
		case ir.MatchLPM:
			if m.PrefixLen < 0 || m.PrefixLen > w {
				return fmt.Errorf("pdpi: key %q prefix length %d out of range [0,%d]", m.Key, m.PrefixLen, w)
			}
			// The value must have no bits outside the prefix (canonical form).
			if !m.Value.And(value.PrefixMask(m.PrefixLen, w).Not()).IsZero() {
				return fmt.Errorf("pdpi: key %q lpm value has bits below the prefix", m.Key)
			}
		case ir.MatchTernary:
			if m.Mask.Width != w {
				return fmt.Errorf("pdpi: key %q mask width %d, want %d", m.Key, m.Mask.Width, w)
			}
			if m.Mask.IsZero() {
				return fmt.Errorf("pdpi: key %q ternary match with zero mask must be omitted", m.Key)
			}
			// Value bits outside the mask are non-canonical.
			if !m.Value.And(m.Mask.Not()).IsZero() {
				return fmt.Errorf("pdpi: key %q ternary value has bits outside the mask", m.Key)
			}
		}
	}
	for _, k := range t.Keys {
		if (k.Match == ir.MatchExact || k.Match == ir.MatchLPM) && !seen[k.Name] {
			return fmt.Errorf("pdpi: mandatory key %q is missing", k.Name)
		}
	}
	if NeedsPriority(t) {
		if e.Priority <= 0 {
			return fmt.Errorf("pdpi: table %s requires a positive priority", t.Name)
		}
	} else if e.Priority != 0 {
		return fmt.Errorf("pdpi: table %s does not use priorities", t.Name)
	}

	if t.IsSelector {
		if e.Action != nil || len(e.ActionSet) == 0 {
			return fmt.Errorf("pdpi: table %s requires a one-shot action set", t.Name)
		}
		for _, wa := range e.ActionSet {
			if wa.Weight <= 0 {
				return fmt.Errorf("pdpi: action set weight %d must be positive", wa.Weight)
			}
			if err := e.validateInvocation(&wa.ActionInvocation); err != nil {
				return err
			}
		}
		return nil
	}
	if len(e.ActionSet) != 0 {
		return fmt.Errorf("pdpi: table %s is not a selector table; action sets are not allowed", t.Name)
	}
	if e.Action == nil {
		return fmt.Errorf("pdpi: entry has no action")
	}
	return e.validateInvocation(e.Action)
}

func (e *Entry) validateInvocation(inv *ActionInvocation) error {
	t := e.Table
	if inv.Action == nil {
		return fmt.Errorf("pdpi: missing action")
	}
	if !t.HasAction(inv.Action) {
		return fmt.Errorf("pdpi: action %s is not permitted in table %s", inv.Action.Name, t.Name)
	}
	if len(inv.Args) != len(inv.Action.Params) {
		return fmt.Errorf("pdpi: action %s takes %d args, got %d", inv.Action.Name, len(inv.Action.Params), len(inv.Args))
	}
	for i, arg := range inv.Args {
		if arg.Width != inv.Action.Params[i].Width {
			return fmt.Errorf("pdpi: action %s arg %d width %d, want %d",
				inv.Action.Name, i, arg.Width, inv.Action.Params[i].Width)
		}
	}
	return nil
}

// Key returns a canonical string identifying the entry's match (table,
// matches and priority, excluding the action), used for duplicate
// detection: two entries with equal Key() collide in the table. It is on
// the hot path of every store operation, so it avoids fmt.
func (e *Entry) Key() string {
	parts := make([]string, 0, len(e.Matches))
	for _, m := range e.Matches {
		var b strings.Builder
		b.Grow(len(m.Key) + 48)
		b.WriteString(m.Key)
		b.WriteByte('=')
		b.WriteString(m.Value.String())
		switch m.Kind {
		case ir.MatchLPM:
			b.WriteByte('/')
			b.WriteString(strconv.Itoa(m.PrefixLen))
		case ir.MatchTernary:
			b.WriteByte('&')
			b.WriteString(m.Mask.String())
		}
		parts = append(parts, b.String())
	}
	sort.Strings(parts)
	var b strings.Builder
	b.Grow(len(e.Table.Name) + 16)
	b.WriteString(e.Table.Name)
	b.WriteByte('[')
	for i, p := range parts {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p)
	}
	b.WriteString("]@")
	b.WriteString(strconv.Itoa(int(e.Priority)))
	return b.String()
}

// String renders the entry in the human-readable form of the paper's
// Figure 3.
func (e *Entry) String() string {
	var b strings.Builder
	b.WriteString(e.Table.Name)
	b.WriteString(" ")
	for i, m := range e.Matches {
		if i > 0 {
			b.WriteString(" ")
		}
		switch m.Kind {
		case ir.MatchLPM:
			fmt.Fprintf(&b, "%s/%d", m.Value, m.PrefixLen)
		case ir.MatchTernary:
			fmt.Fprintf(&b, "%s&%s", m.Value, m.Mask)
		default:
			b.WriteString(m.Value.String())
		}
	}
	b.WriteString(" => ")
	switch {
	case e.Action != nil:
		b.WriteString(e.Action.Action.Name)
		for _, a := range e.Action.Args {
			b.WriteString(" " + a.String())
		}
	case len(e.ActionSet) > 0:
		for i, wa := range e.ActionSet {
			if i > 0 {
				b.WriteString(" + ")
			}
			fmt.Fprintf(&b, "%s*%d", wa.Action.Name, wa.Weight)
		}
	default:
		b.WriteString("<no action>")
	}
	if e.Priority != 0 {
		fmt.Fprintf(&b, " @%d", e.Priority)
	}
	return b.String()
}

// Clone returns a deep copy of the entry.
func (e *Entry) Clone() *Entry {
	out := &Entry{Table: e.Table, Priority: e.Priority}
	out.Matches = append([]Match(nil), e.Matches...)
	if e.Action != nil {
		inv := *e.Action
		inv.Args = append([]value.V(nil), e.Action.Args...)
		out.Action = &inv
	}
	for _, wa := range e.ActionSet {
		cp := wa
		cp.Args = append([]value.V(nil), wa.Args...)
		out.ActionSet = append(out.ActionSet, cp)
	}
	return out
}
