package switchsim

import (
	"strings"
	"testing"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4rt"
	"switchv/internal/packet"
	"switchv/internal/testutil"
	"switchv/models"
)

// startSwitch pushes the pipeline and installs the routing fixture.
func startSwitch(t *testing.T, role string, faults ...Fault) (*Switch, *p4info.Info) {
	t.Helper()
	sw := New(role, faults...)
	info := p4info.New(models.MustLoad(role))
	if err := sw.SetForwardingPipelineConfig(p4rt.ForwardingPipelineConfig{P4Info: info.Text()}); err != nil {
		t.Fatal(err)
	}
	store := pdpi.NewStore()
	testutil.RoutingFixture(models.MustLoad(role), store)
	for _, e := range testutil.InstallOrder(info, store) {
		resp := sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert, Entry: p4rt.ToWire(e)}}})
		if !resp.OK() {
			t.Fatalf("installing %s: %s", e, resp.String())
		}
	}
	return sw, info
}

func TestPipelinePushValidation(t *testing.T) {
	sw := New("middleblock")
	if err := sw.SetForwardingPipelineConfig(p4rt.ForwardingPipelineConfig{}); err == nil {
		t.Error("empty P4Info accepted")
	}
	if err := sw.SetForwardingPipelineConfig(p4rt.ForwardingPipelineConfig{P4Info: "garbage"}); err == nil {
		t.Error("mismatched P4Info accepted")
	}
	// Writes before a pipeline push must fail.
	resp := sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{}}})
	if resp.OK() || resp.Statuses[0].Code != p4rt.FailedPrecondition {
		t.Errorf("write without pipeline: %+v", resp.Statuses)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	sw, info := startSwitch(t, "middleblock")
	rr, err := sw.Read(p4rt.ReadRequest{})
	if err != nil {
		t.Fatal(err)
	}
	store := pdpi.NewStore()
	testutil.RoutingFixture(info.Program(), store)
	if len(rr.Entries) != store.Len() {
		t.Errorf("read %d entries, want %d", len(rr.Entries), store.Len())
	}
	// All read-back entries decode and are canonical.
	for i := range rr.Entries {
		if _, err := p4rt.FromWire(info, &rr.Entries[i]); err != nil {
			t.Errorf("read-back entry %d: %v", i, err)
		}
	}
}

func TestForwarding(t *testing.T) {
	sw, _ := startSwitch(t, "middleblock")
	res, err := sw.Inject(1, testutil.IPv4UDP("10.1.2.3", 64, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Punted || res.Dropped || res.EgressPort != 11 {
		t.Fatalf("result = %+v, want forward to 11", res)
	}
	p := packet.NewPacket(res.Frame, packet.LayerTypeEthernet)
	if p.IPv4() == nil || p.IPv4().TTL != 63 {
		t.Errorf("output packet: %s", p)
	}
	// 10.99/16 beats 10/8.
	res, err = sw.Inject(1, testutil.IPv4UDP("10.99.1.1", 64, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if res.EgressPort != 12 {
		t.Errorf("LPM: egress = %d, want 12", res.EgressPort)
	}
	// TTL 1 punts.
	res, err = sw.Inject(1, testutil.IPv4UDP("10.1.2.3", 1, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Punted {
		t.Errorf("TTL 1: %+v, want punt", res)
	}
	// Unrouted and unadmitted drop.
	res, err = sw.Inject(1, testutil.IPv4UDP("192.0.2.9", 64, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dropped {
		t.Errorf("unrouted: %+v, want drop", res)
	}
	// BGP punt ACL.
	res, err = sw.Inject(1, bgpPacket(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Punted {
		t.Errorf("BGP: %+v, want punt", res)
	}
}

func bgpPacket(t *testing.T) []byte {
	t.Helper()
	ip := &packet.IPv4{TTL: 64, Protocol: packet.IPProtocolTCP,
		SrcIP: packet.MustParseIPv4("192.168.1.1"), DstIP: packet.MustParseIPv4("10.1.2.3")}
	tcp := &packet.TCP{SrcPort: 33333, DstPort: 179}
	tcp.SetNetworkLayerForChecksum(ip.SrcIP[:], ip.DstIP[:])
	data, err := packet.Serialize(packet.SerializeOptions{FixLengths: true, ComputeChecksums: true},
		&packet.Ethernet{DstMAC: testutil.RouterMAC, EtherType: packet.EtherTypeIPv4}, ip, tcp)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestInvalidEntriesRejected(t *testing.T) {
	sw, info := startSwitch(t, "middleblock")
	vrf, _ := info.TableByName("vrf_table")
	// VRF 0 violates the entry restriction.
	bad := p4rt.TableEntry{
		TableID: vrf.ID,
		Match:   []p4rt.FieldMatch{{FieldID: 1, Exact: &p4rt.ExactMatch{Value: []byte{0}}}},
		Action:  wireNoAction(info),
	}
	resp := sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert, Entry: bad}}})
	if resp.OK() {
		t.Error("VRF 0 accepted")
	}
	// Dangling reference rejected.
	ipv4, _ := info.TableByName("ipv4_table")
	setNexthop, _ := info.ActionByName("set_nexthop_id")
	dangling := p4rt.TableEntry{
		TableID: ipv4.ID,
		Match: []p4rt.FieldMatch{
			{FieldID: 1, Exact: &p4rt.ExactMatch{Value: []byte{1}}},
			{FieldID: 2, LPM: &p4rt.LPMMatch{Value: []byte{99, 0, 0, 0}, PrefixLen: 8}},
		},
		Action: p4rt.TableAction{Action: &p4rt.Action{
			ActionID: setNexthop.ID,
			Params:   []p4rt.ActionParam{{ParamID: 1, Value: []byte{0x3, 0xff}}},
		}},
	}
	resp = sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert, Entry: dangling}}})
	if resp.OK() {
		t.Error("dangling nexthop reference accepted")
	}
	if !strings.Contains(resp.String(), "reference") {
		t.Errorf("unexpected rejection: %s", resp.String())
	}
	// Duplicate insert → ALREADY_EXISTS.
	store := pdpi.NewStore()
	testutil.RoutingFixture(info.Program(), store)
	first := store.All(info.Program())[0]
	resp = sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert, Entry: p4rt.ToWire(first)}}})
	if resp.Statuses[0].Code != p4rt.AlreadyExists {
		t.Errorf("duplicate insert: %s", resp.Statuses[0])
	}
	// Delete of missing entry → NOT_FOUND.
	missing := p4rt.ToWire(first)
	missing.Match[0].Exact.Value = []byte{0x3, 0x21}
	resp = sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Delete, Entry: missing}}})
	if resp.Statuses[0].Code != p4rt.NotFound {
		t.Errorf("delete missing: %s", resp.Statuses[0])
	}
}

// wireNoAction builds the wire action for no_action.
func wireNoAction(info *p4info.Info) p4rt.TableAction {
	a, _ := info.ActionByName("no_action")
	return p4rt.TableAction{Action: &p4rt.Action{ActionID: a.ID}}
}

func TestFaultBatchAbort(t *testing.T) {
	sw, info := startSwitch(t, "middleblock", FaultBatchAbortOnDeleteMissing)
	store := pdpi.NewStore()
	testutil.RoutingFixture(info.Program(), store)
	first := store.All(info.Program())[0]
	missing := p4rt.ToWire(first)
	missing.Match[0].Exact.Value = []byte{0x3, 0x21}
	// A batch with one good insert and one bad delete: the fault makes
	// everything fail.
	vrf9 := p4rt.TableEntry{
		TableID: mustTable(info, "vrf_table").ID,
		Match:   []p4rt.FieldMatch{{FieldID: 1, Exact: &p4rt.ExactMatch{Value: []byte{9}}}},
		Action:  wireNoAction(info),
	}
	resp := sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{
		{Type: p4rt.Insert, Entry: vrf9},
		{Type: p4rt.Delete, Entry: missing},
	}})
	if resp.Statuses[0].Code != p4rt.Aborted {
		t.Errorf("fault did not abort the batch: %+v", resp.Statuses)
	}
}

func mustTable(info *p4info.Info, name string) *ir.Table {
	tbl, ok := info.TableByName(name)
	if !ok {
		panic("missing " + name)
	}
	return tbl
}

func TestFaultTTLNoTrap(t *testing.T) {
	sw, _ := startSwitch(t, "middleblock", FaultTTL1NoTrap)
	res, err := sw.Inject(1, testutil.IPv4UDP("10.1.2.3", 1, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Punted {
		t.Error("faulted switch still punts TTL 1")
	}
	if res.Dropped || res.EgressPort != 11 {
		t.Errorf("result = %+v, want forwarded", res)
	}
}

func TestFaultLLDPPunt(t *testing.T) {
	sw, _ := startSwitch(t, "middleblock", FaultLLDPPunt)
	lldp, err := packet.Serialize(packet.SerializeOptions{},
		&packet.Ethernet{DstMAC: packet.MAC{0x01, 0x80, 0xc2, 0, 0, 0xe}, EtherType: 0x88cc},
		packet.Raw([]byte{0x02, 0x07, 0x04}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sw.Inject(1, lldp)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Punted {
		t.Errorf("LLDP not punted under fault: %+v", res)
	}
}

func TestFaultPortSyncBreaksIO(t *testing.T) {
	sw, _ := startSwitch(t, "middleblock", FaultPortSyncBreaksIO)
	pkt := testutil.IPv4UDP("10.1.2.3", 64, 2000)
	for i := 0; i < 100; i++ {
		if res, err := sw.Inject(1, pkt); err != nil || res.EgressPort != 11 {
			t.Fatalf("inject %d: %+v, %v", i, res, err)
		}
	}
	res, err := sw.Inject(1, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dropped {
		t.Errorf("packet IO still alive after daemon restart: %+v", res)
	}
}

func TestFaultZeroBytes(t *testing.T) {
	sw, info := startSwitch(t, "middleblock", FaultZeroBytesAccepted)
	vrf, _ := info.TableByName("vrf_table")
	nonCanonical := p4rt.TableEntry{
		TableID: vrf.ID,
		Match:   []p4rt.FieldMatch{{FieldID: 1, Exact: &p4rt.ExactMatch{Value: []byte{0, 9}}}},
		Action:  wireNoAction(info),
	}
	resp := sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert, Entry: nonCanonical}}})
	if !resp.OK() {
		t.Fatalf("lenient switch rejected non-canonical value: %s", resp.String())
	}
	rr, err := sw.Read(p4rt.ReadRequest{TableID: vrf.ID})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range rr.Entries {
		for _, m := range rr.Entries[i].Match {
			if m.Exact != nil && len(m.Exact.Value) == 2 && m.Exact.Value[0] == 0 {
				found = true
			}
		}
	}
	if !found {
		t.Error("read-back lost the non-canonical bytes (fault not observable)")
	}
}

func TestWANSwitchEncap(t *testing.T) {
	sw, info := startSwitch(t, "wan")
	// Point nexthop 1 at tunnel 7.
	nexthop, _ := info.TableByName("nexthop_table")
	tunnel, _ := info.TableByName("tunnel_table")
	setNT, _ := info.ActionByName("set_nexthop_and_tunnel")
	encap, _ := info.ActionByName("encap_gre")
	tunnelEntry := p4rt.TableEntry{
		TableID: tunnel.ID,
		Match:   []p4rt.FieldMatch{{FieldID: 1, Exact: &p4rt.ExactMatch{Value: []byte{7}}}},
		Action: p4rt.TableAction{Action: &p4rt.Action{
			ActionID: encap.ID,
			Params: []p4rt.ActionParam{
				{ParamID: 1, Value: []byte{192, 0, 2, 1}},
				{ParamID: 2, Value: []byte{192, 0, 2, 2}},
			},
		}},
	}
	nhModify := p4rt.TableEntry{
		TableID: nexthop.ID,
		Match:   []p4rt.FieldMatch{{FieldID: 1, Exact: &p4rt.ExactMatch{Value: []byte{1}}}},
		Action: p4rt.TableAction{Action: &p4rt.Action{
			ActionID: setNT.ID,
			Params: []p4rt.ActionParam{
				{ParamID: 1, Value: []byte{1}},
				{ParamID: 2, Value: []byte{1}},
				{ParamID: 3, Value: []byte{7}},
			},
		}},
	}
	resp := sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert, Entry: tunnelEntry}}})
	if !resp.OK() {
		t.Fatalf("tunnel insert: %s", resp.String())
	}
	resp = sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Modify, Entry: nhModify}}})
	if !resp.OK() {
		t.Fatalf("nexthop modify: %s", resp.String())
	}
	res, err := sw.Inject(1, testutil.IPv4UDP("10.1.2.3", 64, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped || res.Punted {
		t.Fatalf("result = %+v", res)
	}
	p := packet.NewPacket(res.Frame, packet.LayerTypeEthernet)
	outer := p.IPv4()
	if outer == nil || outer.Protocol != packet.IPProtocolGRE {
		t.Fatalf("not encapsulated: %s", p)
	}
	if outer.DstIP.String() != "192.0.2.2" {
		t.Errorf("encap dst = %s", outer.DstIP)
	}
}

func TestFaultEncapReversed(t *testing.T) {
	sw, info := startSwitch(t, "wan", FaultEncapDstReversed)
	tunnel, _ := info.TableByName("tunnel_table")
	nexthop, _ := info.TableByName("nexthop_table")
	setNT, _ := info.ActionByName("set_nexthop_and_tunnel")
	encap, _ := info.ActionByName("encap_gre")
	resp := sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert, Entry: p4rt.TableEntry{
		TableID: tunnel.ID,
		Match:   []p4rt.FieldMatch{{FieldID: 1, Exact: &p4rt.ExactMatch{Value: []byte{7}}}},
		Action: p4rt.TableAction{Action: &p4rt.Action{ActionID: encap.ID, Params: []p4rt.ActionParam{
			{ParamID: 1, Value: []byte{192, 0, 2, 1}},
			{ParamID: 2, Value: []byte{192, 0, 2, 2}},
		}}},
	}}}})
	if !resp.OK() {
		t.Fatal(resp.String())
	}
	resp = sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Modify, Entry: p4rt.TableEntry{
		TableID: nexthop.ID,
		Match:   []p4rt.FieldMatch{{FieldID: 1, Exact: &p4rt.ExactMatch{Value: []byte{1}}}},
		Action: p4rt.TableAction{Action: &p4rt.Action{ActionID: setNT.ID, Params: []p4rt.ActionParam{
			{ParamID: 1, Value: []byte{1}},
			{ParamID: 2, Value: []byte{1}},
			{ParamID: 3, Value: []byte{7}},
		}}},
	}}}})
	if !resp.OK() {
		t.Fatal(resp.String())
	}
	res, err := sw.Inject(1, testutil.IPv4UDP("10.1.2.3", 64, 2000))
	if err != nil {
		t.Fatal(err)
	}
	p := packet.NewPacket(res.Frame, packet.LayerTypeEthernet)
	if p.IPv4() == nil {
		t.Fatalf("no outer ip: %s", p)
	}
	if got := p.IPv4().DstIP.String(); got != "2.2.0.192" {
		t.Errorf("reversed dst = %s, want 2.2.0.192", got)
	}
}

func TestPacketOutSubmitToIngress(t *testing.T) {
	sw, _ := startSwitch(t, "middleblock")
	if err := sw.PacketOut(p4rt.PacketOut{Payload: testutil.IPv4UDP("10.1.2.3", 64, 2000), SubmitToIngress: true}); err != nil {
		t.Fatal(err)
	}
	// The healthy switch forwards it; nothing arrives on the packet-in
	// stream.
	select {
	case pin := <-sw.PacketIns():
		t.Errorf("unexpected packet-in: %+v", pin)
	default:
	}
	// With the punt-back fault, packet-outs echo to the controller.
	sw2, _ := startSwitch(t, "middleblock", FaultPacketOutPuntedBack)
	if err := sw2.PacketOut(p4rt.PacketOut{Payload: []byte("frame"), EgressPort: 3}); err != nil {
		t.Fatal(err)
	}
	select {
	case pin := <-sw2.PacketIns():
		if string(pin.Payload) != "frame" {
			t.Errorf("punted payload = %q", pin.Payload)
		}
	default:
		t.Error("no punt-back under fault")
	}
}
