package switchsim

import (
	"strings"
	"testing"

	"switchv/internal/p4/pdpi"
	"switchv/internal/p4rt"
	"switchv/internal/testutil"
	"switchv/models"
)

// TestRestartWipesState: Restart models a full reboot — pipeline config
// and every table entry are gone, RPCs fail with the no-pipeline
// precondition until a fresh push, after which the switch is usable
// again from a factory-clean slate.
func TestRestartWipesState(t *testing.T) {
	sw, info := startSwitch(t, "middleblock")
	defer sw.Close()
	rr, err := sw.Read(p4rt.ReadRequest{})
	if err != nil || len(rr.Entries) == 0 {
		t.Fatalf("fixture not installed before restart: %d entries, %v", len(rr.Entries), err)
	}

	sw.Restart()

	if _, err := sw.Read(p4rt.ReadRequest{}); err == nil ||
		!strings.Contains(err.Error(), "no forwarding pipeline config") {
		t.Errorf("Read after restart = %v, want the no-pipeline precondition", err)
	}
	resp := sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert}}})
	if resp.OK() || resp.Statuses[0].Code != p4rt.FailedPrecondition {
		t.Errorf("Write after restart = %+v, want FailedPrecondition", resp.Statuses)
	}

	// The packet-in subscription survives the reboot: the channel is
	// open (a closed channel would be immediately readable).
	select {
	case _, ok := <-sw.PacketIns():
		if !ok {
			t.Error("packet-in stream closed by restart")
		}
	default:
	}

	// A fresh pipeline push restores service with zero residual state.
	if err := sw.SetForwardingPipelineConfig(p4rt.ForwardingPipelineConfig{P4Info: info.Text()}); err != nil {
		t.Fatalf("re-push after restart: %v", err)
	}
	rr, err = sw.Read(p4rt.ReadRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Entries) != 0 {
		t.Errorf("%d entries survived the restart", len(rr.Entries))
	}
	store := pdpi.NewStore()
	testutil.RoutingFixture(models.MustLoad("middleblock"), store)
	for _, e := range testutil.InstallOrder(info, store) {
		if resp := sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert, Entry: p4rt.ToWire(e)}}}); !resp.OK() {
			t.Fatalf("reinstalling %s after restart: %s", e, resp.String())
		}
	}
}

// TestRestartKeepsFaults: faults model firmware bugs, not state — a
// reboot must not cure them. The RIF-limit fault still caps the chip at
// 8 interfaces after a restart and re-push.
func TestRestartKeepsFaults(t *testing.T) {
	sw, info := startSwitch(t, "middleblock", FaultRouterInterfaceLimit8)
	defer sw.Close()
	sw.Restart()
	if !sw.hasFault(FaultRouterInterfaceLimit8) {
		t.Fatal("restart dropped the configured fault")
	}
	if err := sw.SetForwardingPipelineConfig(p4rt.ForwardingPipelineConfig{P4Info: info.Text()}); err != nil {
		t.Fatal(err)
	}
	rif, _ := info.TableByName("router_interface_table")
	act, _ := info.ActionByName("set_port_and_src_mac")
	okCount := 0
	for id := byte(1); id < 20; id++ {
		resp := sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert, Entry: p4rt.TableEntry{
			TableID: rif.ID,
			Match:   []p4rt.FieldMatch{{FieldID: 1, Exact: &p4rt.ExactMatch{Value: []byte{id}}}},
			Action: p4rt.TableAction{Action: &p4rt.Action{ActionID: act.ID, Params: []p4rt.ActionParam{
				{ParamID: 1, Value: []byte{20}},
				{ParamID: 2, Value: []byte{2, 0, 0, 0, 0, id}},
			}}},
		}}}})
		switch resp.Statuses[0].Code {
		case p4rt.OK:
			okCount++
		case p4rt.ResourceExhausted:
		default:
			t.Fatalf("unexpected status: %s", resp.Statuses[0])
		}
	}
	if okCount != 8 {
		t.Errorf("rebooted chip accepted %d router interfaces, want the fault's limit of 8", okCount)
	}
}
