package switchsim

import (
	"sync"

	"switchv/internal/p4/constraints"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
	"switchv/internal/p4rt"
	"switchv/internal/packet"
	"switchv/models"
)

// Switch is the full switch under test: P4Runtime server on top of the
// orchestration agent, SyncD/SAI translation, the ASIC, and the
// switch-Linux daemons. It implements p4rt.Device, plus a data-plane
// injection interface for test packets.
type Switch struct {
	mu sync.Mutex

	role   string // "middleblock" or "wan"
	faults map[Fault]bool

	info     *p4info.Info // nil until a pipeline is pushed
	appState *pdpi.Store  // P4Runtime server's view of installed entries
	orch     *orchAgent
	asic     *ASIC

	// rawValues preserves the exact (possibly non-canonical) bytes the
	// client sent, keyed by entry key, for the zero-bytes fault.
	rawValues map[string]p4rt.TableEntry

	// refCounts tracks how many installed entries reference each
	// (table, field, value) target; the SAI-style object refcount that
	// makes referential-integrity checks cheap.
	refCounts map[string]int

	packetIns chan p4rt.PacketIn
	egressLog []EgressFrame
	injected  int // packets injected, for the port-sync fault
	closed    bool
}

var _ p4rt.Device = (*Switch)(nil)

// New builds a switch for a deployment role with the given faults enabled.
func New(role string, faults ...Fault) *Switch {
	s := &Switch{
		role:      role,
		faults:    map[Fault]bool{},
		appState:  pdpi.NewStore(),
		rawValues: map[string]p4rt.TableEntry{},
		refCounts: map[string]int{},
		packetIns: make(chan p4rt.PacketIn, 1024),
	}
	for _, f := range faults {
		s.faults[f] = true
	}
	s.asic = newASIC(role, s.hasFault)
	s.orch = newOrchAgent(s.asic, s.hasFault)
	return s
}

func (s *Switch) hasFault(f Fault) bool { return s.faults[f] }

// EnableFault toggles a fault at runtime (for per-fault experiments).
func (s *Switch) EnableFault(f Fault) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults[f] = true
}

// Faults lists the enabled faults.
func (s *Switch) Faults() []Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Fault
	for f, on := range s.faults {
		if on {
			out = append(out, f)
		}
	}
	return out
}

// SetForwardingPipelineConfig implements p4rt.Device. The switch accepts
// the P4Info of its role's model; the pipeline governs all validation.
func (s *Switch) SetForwardingPipelineConfig(cfg p4rt.ForwardingPipelineConfig) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cfg.P4Info == "" {
		return p4rt.Statusf(p4rt.InvalidArgument, "empty P4Info").Err()
	}
	if s.hasFault(FaultP4InfoPushIgnored) {
		// The push "succeeds" but the config never lands (the failure is
		// not propagated internally).
		return nil
	}
	prog, err := models.Load(s.role)
	if err != nil {
		return p4rt.Statusf(p4rt.Internal, "%v", err).Err()
	}
	info := p4info.New(prog)
	if cfg.P4Info != info.Text() {
		return p4rt.Statusf(p4rt.InvalidArgument, "P4Info does not match the switch's %s role", s.role).Err()
	}
	s.info = info
	return nil
}

// Write implements p4rt.Device: per-update validation (the P4Runtime
// server layer) followed by orchestration into the ASIC.
func (s *Switch) Write(req p4rt.WriteRequest) p4rt.WriteResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := p4rt.WriteResponse{Statuses: make([]p4rt.Status, len(req.Updates))}
	if s.info == nil {
		for i := range resp.Statuses {
			resp.Statuses[i] = p4rt.Statusf(p4rt.FailedPrecondition, "no forwarding pipeline config")
		}
		return resp
	}
	for i := range req.Updates {
		resp.Statuses[i] = s.applyUpdate(&req.Updates[i])
	}
	if s.hasFault(FaultBatchAbortOnDeleteMissing) {
		// If any delete failed with NOT_FOUND, the buggy server aborts
		// the whole batch (but earlier updates were already applied...).
		for i := range req.Updates {
			if req.Updates[i].Type == p4rt.Delete && resp.Statuses[i].Code == p4rt.NotFound {
				for j := range resp.Statuses {
					resp.Statuses[j] = p4rt.Statusf(p4rt.Aborted, "batch aborted by failed delete")
				}
				break
			}
		}
	}
	return resp
}

// applyUpdate is the P4Runtime server's handling of a single update.
func (s *Switch) applyUpdate(u *p4rt.Update) p4rt.Status {
	entry := u.Entry
	if s.hasFault(FaultZeroBytesAccepted) {
		entry = canonicalizeEntry(entry)
	}
	e, err := p4rt.FromWire(s.info, &entry)
	if err != nil {
		return p4rt.StatusFromError(err)
	}

	// Semantic validation: entry restrictions and references.
	skipConstraints := s.hasFault(FaultVLANReservedAccepted) && e.Table.Name == "vlan_table"
	if !skipConstraints {
		ok, cerr := constraints.CheckEntry(e)
		if cerr != nil {
			return p4rt.Statusf(p4rt.Internal, "constraint engine: %v", cerr)
		}
		if !ok {
			s.orch.noteACLRejected(e.Table.Name)
			return p4rt.Statusf(p4rt.InvalidArgument, "entry violates @entry_restriction of %s", e.Table.Name)
		}
	}
	if u.Type != p4rt.Delete && !s.hasFault(FaultAcceptInvalidReference) {
		if msg, bad := s.danglingReference(e); bad {
			s.orch.noteACLRejected(e.Table.Name)
			return p4rt.Statusf(p4rt.InvalidArgument, "%s", msg)
		}
	}
	if s.hasFault(FaultRejectACLEntries) && e.Table.Name == "acl_ingress_table" && u.Type != p4rt.Delete {
		return p4rt.Statusf(p4rt.InvalidArgument, "internal API rejects key with space character")
	}

	// Application-state bookkeeping.
	var old *pdpi.Entry
	switch u.Type {
	case p4rt.Insert:
		if _, exists := s.appState.Get(e); exists {
			if s.hasFault(FaultWrongDuplicateStatus) {
				return p4rt.Statusf(p4rt.InvalidArgument, "duplicate entry")
			}
			return p4rt.Statusf(p4rt.AlreadyExists, "entry already exists")
		}
		if s.appState.TableLen(e.Table.Name) >= e.Table.Size {
			return p4rt.Statusf(p4rt.ResourceExhausted, "table %s is full", e.Table.Name)
		}
	case p4rt.Modify:
		prev, exists := s.appState.Get(e)
		if !exists {
			return p4rt.Statusf(p4rt.NotFound, "entry does not exist")
		}
		old = prev
	case p4rt.Delete:
		installed, exists := s.appState.Get(e)
		if !exists {
			return p4rt.Statusf(p4rt.NotFound, "entry does not exist")
		}
		if !s.hasFault(FaultAcceptInvalidReference) && s.deleteWouldDangle(e) {
			return p4rt.Statusf(p4rt.FailedPrecondition, "entry is referenced by other entries")
		}
		// Deletion is keyed on the match; the installed entry (not the
		// request's action payload) is what leaves the switch.
		e = installed
	}

	applied := e
	if u.Type == p4rt.Modify && s.hasFault(FaultModifyKeepsOldParams) && old != nil {
		// The buggy server swaps the action but keeps the old parameters.
		applied = e.Clone()
		if applied.Action != nil && old.Action != nil && len(old.Action.Args) == len(applied.Action.Args) {
			applied.Action.Args = old.Action.Args
		}
	}

	// Orchestrate into the ASIC.
	if err := s.orch.apply(u.Type, applied, old); err != nil {
		return p4rt.StatusFromError(err)
	}

	// Commit to the application state.
	switch u.Type {
	case p4rt.Insert:
		_ = s.appState.Insert(applied)
		s.adjustRefCounts(applied, +1)
		if s.hasFault(FaultZeroBytesAccepted) {
			s.rawValues[applied.Key()] = u.Entry
		}
	case p4rt.Modify:
		if old != nil {
			s.adjustRefCounts(old, -1)
		}
		_ = s.appState.Modify(applied)
		s.adjustRefCounts(applied, +1)
	case p4rt.Delete:
		s.adjustRefCounts(applied, -1)
		_ = s.appState.Delete(applied)
		delete(s.rawValues, applied.Key())
	}
	return p4rt.OKStatus
}

// refCountKey names one referenceable target.
func refCountKey(table, field string, v value.V) string {
	return table + "\x00" + field + "\x00" + v.String()
}

// adjustRefCounts updates the reference counts for the @refers_to targets
// an entry holds.
func (s *Switch) adjustRefCounts(e *pdpi.Entry, delta int) {
	for _, m := range e.Matches {
		if k, ok := e.Table.KeyByName(m.Key); ok && k.RefersTo != nil {
			s.refCounts[refCountKey(k.RefersTo.Table, k.RefersTo.Field, m.Value)] += delta
		}
	}
	var invs []*pdpi.ActionInvocation
	if e.Action != nil {
		invs = append(invs, e.Action)
	}
	for i := range e.ActionSet {
		invs = append(invs, &e.ActionSet[i].ActionInvocation)
	}
	for _, inv := range invs {
		for i, p := range inv.Action.Params {
			if p.RefersTo != nil && i < len(inv.Args) {
				s.refCounts[refCountKey(p.RefersTo.Table, p.RefersTo.Field, inv.Args[i])] += delta
			}
		}
	}
}

// canonicalizeEntry strips leading zero bytes so a lenient (buggy) server
// accepts non-canonical input.
func canonicalizeEntry(te p4rt.TableEntry) p4rt.TableEntry {
	out := te
	out.Match = append([]p4rt.FieldMatch(nil), te.Match...)
	for i := range out.Match {
		m := &out.Match[i]
		if m.Exact != nil {
			m.Exact = &p4rt.ExactMatch{Value: p4rt.Canonicalize(m.Exact.Value)}
		}
		if m.LPM != nil {
			m.LPM = &p4rt.LPMMatch{Value: p4rt.Canonicalize(m.LPM.Value), PrefixLen: m.LPM.PrefixLen}
		}
		if m.Ternary != nil {
			m.Ternary = &p4rt.TernaryMatch{Value: p4rt.Canonicalize(m.Ternary.Value), Mask: p4rt.Canonicalize(m.Ternary.Mask)}
		}
		if m.Optional != nil {
			m.Optional = &p4rt.OptionalMatch{Value: p4rt.Canonicalize(m.Optional.Value)}
		}
	}
	if te.Action.Action != nil {
		a := *te.Action.Action
		a.Params = append([]p4rt.ActionParam(nil), a.Params...)
		for i := range a.Params {
			a.Params[i].Value = p4rt.Canonicalize(a.Params[i].Value)
		}
		out.Action.Action = &a
	}
	return out
}

// danglingReference mirrors the oracle's reference check, on the switch
// side.
func (s *Switch) danglingReference(e *pdpi.Entry) (string, bool) {
	check := func(table, field string, val value.V) bool {
		for _, target := range s.appState.Entries(table) {
			if m, ok := target.Match(field); ok && m.Value.Equal(val) {
				return true
			}
		}
		return false
	}
	for _, m := range e.Matches {
		k, ok := e.Table.KeyByName(m.Key)
		if !ok || k.RefersTo == nil {
			continue
		}
		if !check(k.RefersTo.Table, k.RefersTo.Field, m.Value) {
			return "reference does not resolve: " + k.RefersTo.Table + "." + k.RefersTo.Field, true
		}
	}
	invs := []*pdpi.ActionInvocation{}
	if e.Action != nil {
		invs = append(invs, e.Action)
	}
	for i := range e.ActionSet {
		invs = append(invs, &e.ActionSet[i].ActionInvocation)
	}
	for _, inv := range invs {
		for i, p := range inv.Action.Params {
			if p.RefersTo == nil {
				continue
			}
			if !check(p.RefersTo.Table, p.RefersTo.Field, inv.Args[i]) {
				return "reference does not resolve: " + p.RefersTo.Table + "." + p.RefersTo.Field, true
			}
		}
	}
	return "", false
}

// Read implements p4rt.Device.
func (s *Switch) Read(req p4rt.ReadRequest) (p4rt.ReadResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.info == nil {
		return p4rt.ReadResponse{}, p4rt.Statusf(p4rt.FailedPrecondition, "no forwarding pipeline config").Err()
	}
	var resp p4rt.ReadResponse
	for _, e := range s.appState.All(s.info.Program()) {
		if req.TableID != 0 && e.Table.ID != req.TableID {
			continue
		}
		te := p4rt.ToWire(e)
		if raw, ok := s.rawValues[e.Key()]; ok && s.hasFault(FaultZeroBytesAccepted) {
			te = raw // echo back the non-canonical bytes as stored
		}
		if s.hasFault(FaultReadDropsTernary) {
			var kept []p4rt.FieldMatch
			for _, m := range te.Match {
				if m.Ternary == nil {
					kept = append(kept, m)
				}
			}
			te.Match = kept
		}
		resp.Entries = append(resp.Entries, te)
	}
	return resp, nil
}

// PacketOut implements p4rt.Device.
func (s *Switch) PacketOut(p p4rt.PacketOut) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hasFault(FaultPacketOutPuntedBack) {
		s.pushPacketIn(p4rt.PacketIn{Payload: p.Payload, IngressPort: p.EgressPort})
	}
	if p.SubmitToIngress {
		if s.hasFault(FaultSubmitIngressDropped) {
			return nil // silently dropped: L3 not enabled for CPU-injected packets
		}
		res, err := s.forwardLocked(cpuPort, p.Payload)
		if err != nil {
			return nil // malformed packets are dropped, not errors
		}
		s.deliverResult(res)
		return nil
	}
	// Direct egress: the frame leaves on the requested port; data-plane
	// observers see it via the egress hook.
	s.deliverEgress(p.EgressPort, p.Payload)
	return nil
}

// cpuPort is the ingress port number used for submit-to-ingress packets.
const cpuPort uint16 = 0xffff

// PacketIns implements p4rt.Device.
func (s *Switch) PacketIns() <-chan p4rt.PacketIn { return s.packetIns }

// Restart models a full switch reboot with table-state loss: the
// forwarding pipeline config, app state, orchestration agent, and ASIC
// are all reset to factory-fresh, as if the whole stack restarted.
// Configured faults survive (they model firmware bugs, not state), and
// the packet-in stream stays open so connected clients keep their
// subscription across the reboot. Chaos restart mode drives this.
func (s *Switch) Restart() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.info = nil
	s.appState = pdpi.NewStore()
	s.rawValues = map[string]p4rt.TableEntry{}
	s.refCounts = map[string]int{}
	s.asic = newASIC(s.role, s.hasFault)
	s.orch = newOrchAgent(s.asic, s.hasFault)
	s.egressLog = nil
	s.injected = 0
}

// Close shuts down the packet-in stream.
func (s *Switch) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.packetIns)
	}
}

func (s *Switch) pushPacketIn(p p4rt.PacketIn) {
	if s.closed {
		return
	}
	select {
	case s.packetIns <- p:
	default:
	}
}

// EgressFrame is a frame the switch transmitted on a port outside of an
// Inject call (i.e. via direct PacketOut) — the test harness's "traffic
// generator capture" view.
type EgressFrame struct {
	Port  uint16
	Frame []byte
}

func (s *Switch) deliverEgress(port uint16, frame []byte) {
	s.egressLog = append(s.egressLog, EgressFrame{Port: port, Frame: append([]byte(nil), frame...)})
}

// TakeEgress drains the log of directly transmitted frames.
func (s *Switch) TakeEgress() []EgressFrame {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.egressLog
	s.egressLog = nil
	return out
}

// deliverResult pushes the punted/copy parts of a result to the
// controller stream.
func (s *Switch) deliverResult(res *DPResult) {
	if res.Punted {
		s.pushPacketIn(p4rt.PacketIn{Payload: res.Frame})
	}
	if res.CopyToCPU && !res.Punted {
		s.pushPacketIn(p4rt.PacketIn{Payload: res.Frame, IsCopy: true})
	}
}

// Inject sends a frame into a port and returns the observable outcome,
// including any spontaneous controller traffic caused by daemons.
func (s *Switch) Inject(port uint16, frame []byte) (*DPResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injectLocked(port, frame)
}

func (s *Switch) injectLocked(port uint16, frame []byte) (*DPResult, error) {
	s.injected++
	if s.hasFault(FaultPortSyncBreaksIO) && s.injected > 100 {
		// All packet IO is broken after the daemon restart.
		return &DPResult{Dropped: true}, nil
	}

	// Switch-Linux daemons see the packet before the ASIC.
	if s.hasFault(FaultLLDPPunt) {
		if pf, err := parseFrame(frame); err == nil && pf.eth.EtherType == 0x88cc {
			res := &DPResult{Punted: true, Frame: frame}
			s.pushPacketIn(p4rt.PacketIn{Payload: frame, IngressPort: port})
			return res, nil
		}
	}

	res, err := s.forwardLocked(port, frame)
	if err != nil {
		return nil, err
	}

	if s.hasFault(FaultRouterSolicitNoise) {
		if pf, perr := parseFrame(frame); perr == nil && pf.ipv6 != nil {
			rs := routerSolicitation()
			res.Spontaneous = append(res.Spontaneous, rs)
			s.pushPacketIn(p4rt.PacketIn{Payload: rs})
		}
	}

	s.deliverResult(res)
	return res, nil
}

func (s *Switch) forwardLocked(port uint16, frame []byte) (*DPResult, error) {
	return s.asic.Forward(port, frame)
}

// routerSolicitation builds the noise packet the faulty daemon emits.
func routerSolicitation() []byte {
	src := packet.MustParseIPv6("fe80::1")
	dst := packet.MustParseIPv6("ff02::2")
	ic := &packet.ICMPv6{Type: packet.ICMPv6TypeRouterSolicitation}
	ic.SetNetworkLayerForChecksum(src[:], dst[:])
	data, err := packet.Serialize(packet.SerializeOptions{FixLengths: true, ComputeChecksums: true},
		&packet.Ethernet{DstMAC: packet.MAC{0x33, 0x33, 0, 0, 0, 2}, EtherType: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: 255, SrcIP: src, DstIP: dst},
		ic)
	if err != nil {
		panic(err)
	}
	return data
}

// deleteWouldDangle reports whether removing e would leave an installed
// entry with a reference to a no-longer-covered key value, using the
// SAI-style reference counts.
func (s *Switch) deleteWouldDangle(e *pdpi.Entry) bool {
	covered := func(field string, v value.V) bool {
		for _, sib := range s.appState.Entries(e.Table.Name) {
			if sib.Key() == e.Key() {
				continue
			}
			if m, ok := sib.Match(field); ok && m.Value.Equal(v) {
				return true
			}
		}
		return false
	}
	for _, m := range e.Matches {
		if s.refCounts[refCountKey(e.Table.Name, m.Key, m.Value)] > 0 && !covered(m.Key, m.Value) {
			return true
		}
	}
	return false
}

// InjectFrame implements p4rt.DataPlaneDevice, adapting Inject to the
// wire-level result type.
func (s *Switch) InjectFrame(req p4rt.InjectRequest) (p4rt.InjectResult, error) {
	res, err := s.Inject(req.Port, req.Frame)
	if err != nil {
		return p4rt.InjectResult{}, p4rt.Statusf(p4rt.InvalidArgument, "%v", err).Err()
	}
	out := p4rt.InjectResult{
		Punted:      res.Punted,
		Dropped:     res.Dropped,
		EgressPort:  res.EgressPort,
		Frame:       res.Frame,
		CopyToCPU:   res.CopyToCPU,
		Spontaneous: res.Spontaneous,
	}
	for _, m := range res.Mirrors {
		out.Mirrors = append(out.Mirrors, p4rt.MirrorFrame{Session: m.Session, Frame: m.Frame})
	}
	return out, nil
}

var _ p4rt.DataPlaneDevice = (*Switch)(nil)
