package switchsim

import (
	"fmt"

	"switchv/internal/packet"
)

// The ASIC is a deliberately independent implementation of the fixed
// forwarding pipeline the P4 models describe: its own route tables, TCAMs
// and hash tables, its own parser (the packet package), and a hand-coded
// per-role pipeline. SwitchV's differential comparison against the model
// only means something because this code shares nothing with the
// IR-interpreting reference simulator.

type ternary struct {
	val, mask uint64
}

func (t *ternary) matches(v uint64) bool {
	if t == nil {
		return true
	}
	return v&t.mask == t.val&t.mask
}

type optBit struct{ want bool }

func (o *optBit) matches(v bool) bool { return o == nil || o.want == v }

type aclActionKind int

const (
	aclForward aclActionKind = iota
	aclDrop
	aclTrap
	aclCopy
	aclMirror
	aclSetVRF
)

type aclEntry struct {
	id   string // entry key, for removal
	prio int32

	isIPv4, isIPv6, isVLAN *optBit
	etherType              *ternary
	dstMAC, srcMAC         *ternary
	srcIP, dstIP           *ternary // ipv4
	dstIPv6                *ternHi128
	dscp, ttl, proto       *ternary
	icmpType               *ternary
	l4Src, l4Dst           *ternary
	outPort                *ternary

	kind          aclActionKind
	mirrorSession uint16
	vrf           uint16
}

// ternHi128 matches the high/low words of an IPv6 address.
type ternHi128 struct {
	valHi, valLo, maskHi, maskLo uint64
}

func (t *ternHi128) matches(hi, lo uint64) bool {
	if t == nil {
		return true
	}
	return hi&t.maskHi == t.valHi&t.maskHi && lo&t.maskLo == t.valLo&t.maskLo
}

type routeActionKind int

const (
	routeDrop routeActionKind = iota
	routeNexthop
	routeWCMP
)

type routeV4 struct {
	prefix uint32
	plen   int
	kind   routeActionKind
	id     uint16
}

type routeV6 struct {
	prefixHi, prefixLo uint64
	plen               int
	kind               routeActionKind
	id                 uint16
}

type nexthopRec struct {
	rif, neighbor uint16
	tunnel        uint16 // 0 = none
}

type rifRec struct {
	port   uint16
	srcMAC uint64
}

type wcmpMember struct {
	nexthop uint16
	weight  int
}

type l3AdmitEntry struct {
	id     string
	prio   int32
	mac    *ternary
	inPort *ternary
}

type tunnelRec struct {
	src, dst uint32
}

type neighborKey struct {
	rif, id uint16
}

// ASIC is the hardware data plane.
type ASIC struct {
	role  string
	fault func(Fault) bool

	vrfs      map[uint16]bool
	v4Routes  map[uint16][]routeV4
	v6Routes  map[uint16][]routeV6
	nexthops  map[uint16]nexthopRec
	neighbors map[neighborKey]uint64
	rifs      map[uint16]rifRec
	wcmp      map[uint16][]wcmpMember
	rr        map[uint16]int
	aclPre    []aclEntry
	aclIn     []aclEntry
	aclEg     []aclEntry
	l3Admit   []l3AdmitEntry
	mirrors   map[uint16]uint16
	vlans     map[uint16]bool
	tunnels   map[uint16]tunnelRec
}

func newASIC(role string, fault func(Fault) bool) *ASIC {
	return &ASIC{
		role:      role,
		fault:     fault,
		vrfs:      map[uint16]bool{},
		v4Routes:  map[uint16][]routeV4{},
		v6Routes:  map[uint16][]routeV6{},
		nexthops:  map[uint16]nexthopRec{},
		neighbors: map[neighborKey]uint64{},
		rifs:      map[uint16]rifRec{},
		wcmp:      map[uint16][]wcmpMember{},
		rr:        map[uint16]int{},
		mirrors:   map[uint16]uint16{},
		vlans:     map[uint16]bool{},
		tunnels:   map[uint16]tunnelRec{},
	}
}

// Mirror is a cloned frame destined to a mirror session.
type Mirror struct {
	Session uint16
	Frame   []byte
}

// DPResult is the observable outcome of one frame traversal.
type DPResult struct {
	Punted     bool
	Dropped    bool
	EgressPort uint16
	Frame      []byte
	CopyToCPU  bool
	Mirrors    []Mirror
	// Spontaneous holds frames the switch emitted to the controller on
	// its own (daemon noise), not in response to the injected packet's
	// forwarding semantics.
	Spontaneous [][]byte
}

// parsedFrame is the ASIC's own view of a frame.
type parsedFrame struct {
	eth     *packet.Ethernet
	vlan    *packet.VLAN
	ipv4    *packet.IPv4
	ipv6    *packet.IPv6
	gre     *packet.GRE
	inner   *packet.IPv4
	tcp     *packet.TCP
	udp     *packet.UDP
	icmp4   *packet.ICMPv4
	icmp6   *packet.ICMPv6
	arp     *packet.ARP
	payload []byte
}

func mac48(m packet.MAC) uint64 {
	var v uint64
	for _, b := range m {
		v = v<<8 | uint64(b)
	}
	return v
}

func macFrom(v uint64) packet.MAC {
	var m packet.MAC
	for i := 5; i >= 0; i-- {
		m[i] = byte(v)
		v >>= 8
	}
	return m
}

// parseFrame decodes the layers the pipeline understands.
func parseFrame(data []byte) (*parsedFrame, error) {
	pf := &parsedFrame{eth: &packet.Ethernet{}}
	rest, err := pf.eth.DecodeFromBytes(data)
	if err != nil {
		return nil, err
	}
	et := pf.eth.EtherType
	if et == packet.EtherTypeVLAN {
		pf.vlan = &packet.VLAN{}
		if rest, err = pf.vlan.DecodeFromBytes(rest); err != nil {
			return nil, err
		}
		et = pf.vlan.EtherType
	}
	switch et {
	case packet.EtherTypeIPv4:
		pf.ipv4 = &packet.IPv4{}
		if rest, err = pf.ipv4.DecodeFromBytes(rest); err != nil {
			return nil, err
		}
		switch pf.ipv4.Protocol {
		case packet.IPProtocolGRE:
			pf.gre = &packet.GRE{}
			if rest, err = pf.gre.DecodeFromBytes(rest); err != nil {
				pf.gre = nil
				break
			}
			if pf.gre.Protocol == packet.EtherTypeIPv4 {
				pf.inner = &packet.IPv4{}
				if rest, err = pf.inner.DecodeFromBytes(rest); err != nil {
					pf.inner = nil
				}
			}
		default:
			rest = pf.parseL4(rest, pf.ipv4.Protocol)
		}
	case packet.EtherTypeIPv6:
		pf.ipv6 = &packet.IPv6{}
		if rest, err = pf.ipv6.DecodeFromBytes(rest); err != nil {
			return nil, err
		}
		rest = pf.parseL4(rest, pf.ipv6.NextHeader)
	case packet.EtherTypeARP:
		pf.arp = &packet.ARP{}
		if rest, err = pf.arp.DecodeFromBytes(rest); err != nil {
			pf.arp = nil
		}
	}
	pf.payload = rest
	return pf, nil
}

func (pf *parsedFrame) parseL4(rest []byte, proto uint8) []byte {
	switch proto {
	case packet.IPProtocolTCP:
		pf.tcp = &packet.TCP{}
		if r, err := pf.tcp.DecodeFromBytes(rest); err == nil {
			return r
		}
		pf.tcp = nil
	case packet.IPProtocolUDP:
		pf.udp = &packet.UDP{}
		if r, err := pf.udp.DecodeFromBytes(rest); err == nil {
			return r
		}
		pf.udp = nil
	case packet.IPProtocolICMPv4:
		pf.icmp4 = &packet.ICMPv4{}
		if r, err := pf.icmp4.DecodeFromBytes(rest); err == nil {
			return r
		}
		pf.icmp4 = nil
	case packet.IPProtocolICMPv6:
		pf.icmp6 = &packet.ICMPv6{}
		if r, err := pf.icmp6.DecodeFromBytes(rest); err == nil {
			return r
		}
		pf.icmp6 = nil
	}
	return rest
}

// serialize re-emits the (possibly rewritten) frame.
func (pf *parsedFrame) serialize() ([]byte, error) {
	var layers []packet.SerializableLayer
	layers = append(layers, pf.eth)
	if pf.vlan != nil {
		layers = append(layers, pf.vlan)
	}
	if pf.arp != nil {
		layers = append(layers, pf.arp)
	}
	var ipSrc, ipDst []byte
	if pf.ipv4 != nil {
		layers = append(layers, pf.ipv4)
		ipSrc, ipDst = pf.ipv4.SrcIP[:], pf.ipv4.DstIP[:]
	}
	if pf.gre != nil {
		layers = append(layers, pf.gre)
	}
	if pf.inner != nil {
		layers = append(layers, pf.inner)
		ipSrc, ipDst = pf.inner.SrcIP[:], pf.inner.DstIP[:]
	}
	if pf.ipv6 != nil {
		layers = append(layers, pf.ipv6)
		ipSrc, ipDst = pf.ipv6.SrcIP[:], pf.ipv6.DstIP[:]
	}
	if pf.tcp != nil {
		pf.tcp.SetNetworkLayerForChecksum(ipSrc, ipDst)
		layers = append(layers, pf.tcp)
	}
	if pf.udp != nil {
		pf.udp.SetNetworkLayerForChecksum(ipSrc, ipDst)
		layers = append(layers, pf.udp)
	}
	if pf.icmp4 != nil {
		layers = append(layers, pf.icmp4)
	}
	if pf.icmp6 != nil {
		pf.icmp6.SetNetworkLayerForChecksum(ipSrc, ipDst)
		layers = append(layers, pf.icmp6)
	}
	layers = append(layers, packet.Raw(pf.payload))
	return packet.Serialize(packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}, layers...)
}

// Forward runs one frame through the fixed-function pipeline.
func (a *ASIC) Forward(inPort uint16, data []byte) (*DPResult, error) {
	pf, err := parseFrame(data)
	if err != nil {
		return nil, fmt.Errorf("asic: %w", err)
	}
	res := &DPResult{}

	// WAN role: VLAN admission.
	if a.role == "wan" && pf.vlan != nil {
		if !a.vlans[pf.vlan.VLANID] {
			res.Dropped = true
			return res, nil
		}
	}
	// WAN role: GRE decapsulation of tunnel-terminated traffic.
	if a.role == "wan" && pf.gre != nil && pf.inner != nil {
		pf.ipv4 = pf.inner
		pf.gre = nil
		pf.inner = nil
		// The L4 of the inner packet stays opaque (matches the model,
		// which does not re-parse after decap).
	}

	// Snapshot of pre-rewrite fields for the model.acl-after-rewrite bug.
	preDstMAC := mac48(pf.eth.DstMAC)

	// Pre-ingress ACL assigns the VRF.
	vrf := uint16(0)
	if e := a.matchACL(a.aclPre, pf, 0); e != nil && e.kind == aclSetVRF {
		vrf = e.vrf
	}
	if a.fault(FaultVRF1Conflict) && vrf == 1 {
		// A rogue daemon owns VRF 1: lookups in it never succeed.
		vrf = 0xffff
	}

	// L3 admission.
	admitted := a.matchL3Admit(pf, inPort)

	// The pipeline mirrors the model's flag semantics: every stage runs;
	// at the end, punt wins over drop wins over forward.
	punted := false
	dropped := false
	forwarded := false
	var egress uint16

	if a.fault(FaultModelBroadcastDrop) && pf.ipv4 != nil && pf.ipv4.DstIP == (packet.IPv4Addr{255, 255, 255, 255}) {
		res.Dropped = true
		return res, nil
	}

	if admitted {
		switch {
		case pf.ipv4 != nil:
			if pf.ipv4.TTL <= 1 && !a.fault(FaultTTL1NoTrap) {
				punted = true
			} else if kind, id, ok := a.lookupV4(vrf, pf.ipv4.DstIP.Uint32()); ok {
				forwarded, egress = a.resolveRoute(pf, kind, id, &dropped)
			}
		case pf.ipv6 != nil:
			if pf.ipv6.HopLimit <= 1 && !a.fault(FaultTTL1NoTrap) {
				punted = true
			} else if kind, id, ok := a.lookupV6(vrf, pf.ipv6.DstIP); ok {
				forwarded, egress = a.resolveRoute(pf, kind, id, &dropped)
			}
		}
	}

	// Ingress ACL. The hardware evaluates it on the rewritten headers
	// (matching the model) unless the model-bug fault is active.
	aclMAC := mac48(pf.eth.DstMAC)
	if a.fault(FaultModelACLAfterRewrite) {
		aclMAC = preDstMAC
	}
	var mirrorSession *uint16
	if e := a.matchACLIngress(pf, aclMAC); e != nil {
		switch e.kind {
		case aclDrop:
			dropped = true
			forwarded = false
		case aclTrap:
			punted = true
		case aclCopy:
			res.CopyToCPU = true
		case aclMirror:
			s := e.mirrorSession
			mirrorSession = &s
		}
	}

	// Egress ACL (only observable on the forwarding path).
	if forwarded {
		if e := a.matchACLEgress(pf, egress); e != nil && e.kind == aclDrop {
			dropped = true
			forwarded = false
		}
	}

	if forwarded && a.fault(FaultDSCPRemarkZero) && pf.ipv4 != nil {
		pf.ipv4.SetDSCP(0)
	}
	if forwarded && a.fault(FaultPortSpeedDrop) && egress == 12 && !punted {
		res.Dropped = true
		return res, nil
	}

	frame, err := pf.serialize()
	if err != nil {
		return nil, err
	}
	switch {
	case punted:
		res.Punted = true
		res.Frame = frame
	case dropped || !forwarded:
		res.Dropped = true
	default:
		res.EgressPort = egress
		res.Frame = frame
	}
	if mirrorSession != nil && !res.Dropped {
		res.Mirrors = append(res.Mirrors, Mirror{Session: *mirrorSession, Frame: frame})
	}
	return res, nil
}

// resolveRoute follows a route action to a nexthop, rewriting the frame.
func (a *ASIC) resolveRoute(pf *parsedFrame, kind routeActionKind, id uint16, dropped *bool) (bool, uint16) {
	// Id 0 means "none" in the fixed-function contract (the model gates
	// the nexthop/WCMP stages on a non-zero id).
	if kind != routeDrop && id == 0 {
		*dropped = true
		return false, 0
	}
	switch kind {
	case routeDrop:
		*dropped = true
		return false, 0
	case routeWCMP:
		members := a.wcmp[id]
		if len(members) == 0 {
			*dropped = true
			return false, 0
		}
		idx := a.rr[id] % len(members)
		a.rr[id]++
		return a.resolveNexthop(pf, members[idx].nexthop, dropped)
	case routeNexthop:
		return a.resolveNexthop(pf, id, dropped)
	}
	*dropped = true
	return false, 0
}

func (a *ASIC) resolveNexthop(pf *parsedFrame, nh uint16, dropped *bool) (bool, uint16) {
	rec, ok := a.nexthops[nh]
	if !ok {
		*dropped = true
		return false, 0
	}
	if mac, ok := a.neighbors[neighborKey{rec.rif, rec.neighbor}]; ok {
		pf.eth.DstMAC = macFrom(mac)
	}
	rif, ok := a.rifs[rec.rif]
	if !ok {
		*dropped = true
		return false, 0
	}
	pf.eth.SrcMAC = macFrom(rif.srcMAC)
	// Tunnel encapsulation (WAN role).
	if rec.tunnel != 0 {
		if t, ok := a.tunnels[rec.tunnel]; ok && pf.ipv4 != nil {
			inner := *pf.ipv4
			pf.inner = &inner
			dst := t.dst
			if a.fault(FaultEncapDstReversed) {
				dst = dst<<24 | dst<<8&0xff0000 | dst>>8&0xff00 | dst>>24
			}
			pf.gre = &packet.GRE{Protocol: packet.EtherTypeIPv4}
			pf.ipv4 = &packet.IPv4{
				TTL:      64,
				Protocol: packet.IPProtocolGRE,
				SrcIP:    packet.IPv4AddrFromUint32(t.src),
				DstIP:    packet.IPv4AddrFromUint32(dst),
				TOS:      inner.TOS,
				ID:       inner.ID,
			}
			// The inner L4 headers now live under the inner IP; drop the
			// separately parsed handles so serialization keeps raw bytes.
		}
	}
	// TTL decrement.
	if pf.ipv4 != nil && rec.tunnel == 0 {
		pf.ipv4.TTL--
	}
	if pf.inner != nil && rec.tunnel != 0 {
		// Model copies the original TTL into the inner header before the
		// encap and decrements afterwards? The model decrements only
		// headers.ipv4 (the outer) post-encap; our outer is fresh with
		// TTL 64... match the model: the model sets outer ttl=64 in
		// encap_gre, then the later decrement applies to the outer.
		pf.ipv4.TTL = 63
	}
	if pf.ipv6 != nil {
		pf.ipv6.HopLimit--
	}
	return true, rif.port
}

// lookupV4 picks the route for dst in vrf (longest prefix, unless the
// tiebreak fault inverts the choice among matching prefixes).
func (a *ASIC) lookupV4(vrf uint16, dst uint32) (routeActionKind, uint16, bool) {
	best := -1
	var out routeV4
	for _, r := range a.v4Routes[vrf] {
		mask := uint32(0xffffffff)
		if r.plen == 0 {
			mask = 0
		} else {
			mask <<= uint(32 - r.plen)
		}
		if dst&mask != r.prefix&mask {
			continue
		}
		better := r.plen > best
		if a.fault(FaultLPMTiebreakWrong) && best >= 0 {
			better = r.plen < best
		}
		if best < 0 || better {
			best = r.plen
			out = r
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return out.kind, out.id, true
}

func (a *ASIC) lookupV6(vrf uint16, dst packet.IPv6Addr) (routeActionKind, uint16, bool) {
	var hi, lo uint64
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(dst[i])
		lo = lo<<8 | uint64(dst[i+8])
	}
	best := -1
	var out routeV6
	for _, r := range a.v6Routes[vrf] {
		var maskHi, maskLo uint64
		switch {
		case r.plen >= 128:
			maskHi, maskLo = ^uint64(0), ^uint64(0)
		case r.plen > 64:
			maskHi = ^uint64(0)
			maskLo = ^uint64(0) << uint(128-r.plen)
		case r.plen == 64:
			maskHi = ^uint64(0)
		case r.plen > 0:
			maskHi = ^uint64(0) << uint(64-r.plen)
		}
		if hi&maskHi != r.prefixHi&maskHi || lo&maskLo != r.prefixLo&maskLo {
			continue
		}
		better := r.plen > best
		if a.fault(FaultLPMTiebreakWrong) && best >= 0 {
			better = r.plen < best
		}
		if best < 0 || better {
			best = r.plen
			out = r
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return out.kind, out.id, true
}

// matchL3Admit consults the L3 admission TCAM.
func (a *ASIC) matchL3Admit(pf *parsedFrame, inPort uint16) bool {
	mac := mac48(pf.eth.DstMAC)
	var best *l3AdmitEntry
	for i := range a.l3Admit {
		e := &a.l3Admit[i]
		if !e.mac.matches(mac) || !e.inPort.matches(uint64(inPort)) {
			continue
		}
		if best == nil || e.prio > best.prio {
			best = e
		}
	}
	return best != nil
}

// aclFields extracts the fields ACL stages match on.
func (a *ASIC) aclFields(pf *parsedFrame) (isV4, isV6, isVLAN bool, dscp, ttl, proto, icmpType uint64, l4Src, l4Dst uint64, srcIP, dstIP uint64, v6Hi, v6Lo uint64) {
	isV4 = pf.ipv4 != nil
	isV6 = pf.ipv6 != nil
	isVLAN = pf.vlan != nil
	// The ACL contract exposes the IPv4 header fields only (the models'
	// ttl/dscp/ip_protocol keys read headers.ipv4.*, which are zero for
	// non-IPv4 packets); IPv6 contributes just its destination address.
	if pf.ipv4 != nil {
		dscp = uint64(pf.ipv4.DSCP())
		ttl = uint64(pf.ipv4.TTL)
		proto = uint64(pf.ipv4.Protocol)
		srcIP = uint64(pf.ipv4.SrcIP.Uint32())
		dstIP = uint64(pf.ipv4.DstIP.Uint32())
	}
	if pf.ipv6 != nil {
		for i := 0; i < 8; i++ {
			v6Hi = v6Hi<<8 | uint64(pf.ipv6.DstIP[i])
			v6Lo = v6Lo<<8 | uint64(pf.ipv6.DstIP[i+8])
		}
	}
	if pf.icmp4 != nil {
		icmpType = uint64(pf.icmp4.Type)
		if a.fault(FaultModelICMPWrongField) {
			icmpType = uint64(pf.icmp4.Code)
		}
	}
	if pf.icmp6 != nil {
		icmpType = uint64(pf.icmp6.Type)
		if a.fault(FaultModelICMPWrongField) {
			icmpType = uint64(pf.icmp6.Code)
		}
	}
	if pf.tcp != nil {
		l4Src, l4Dst = uint64(pf.tcp.SrcPort), uint64(pf.tcp.DstPort)
	}
	if pf.udp != nil {
		l4Src, l4Dst = uint64(pf.udp.SrcPort), uint64(pf.udp.DstPort)
	}
	return
}

// matchACL finds the winning entry of an ACL stage for the frame.
func (a *ASIC) matchACL(stage []aclEntry, pf *parsedFrame, outPort uint16) *aclEntry {
	isV4, isV6, isVLAN, dscp, ttl, proto, icmpType, l4Src, l4Dst, srcIP, dstIP, v6Hi, v6Lo := a.aclFields(pf)
	dstMAC := mac48(pf.eth.DstMAC)
	srcMAC := mac48(pf.eth.SrcMAC)
	etherType := uint64(pf.eth.EtherType)
	if pf.vlan != nil {
		etherType = uint64(pf.vlan.EtherType)
	}

	var best *aclEntry
	for i := range stage {
		e := &stage[i]
		if !e.isIPv4.matches(isV4) || !e.isIPv6.matches(isV6) || !e.isVLAN.matches(isVLAN) {
			continue
		}
		if !e.etherType.matches(etherType) || !e.dstMAC.matches(dstMAC) || !e.srcMAC.matches(srcMAC) {
			continue
		}
		if !e.srcIP.matches(srcIP) || !e.dstIP.matches(dstIP) || !e.dstIPv6.matches(v6Hi, v6Lo) {
			continue
		}
		if !e.dscp.matches(dscp) || !e.ttl.matches(ttl) || !e.proto.matches(proto) || !e.icmpType.matches(icmpType) {
			continue
		}
		if !e.l4Src.matches(l4Src) || !e.l4Dst.matches(l4Dst) || !e.outPort.matches(uint64(outPort)) {
			continue
		}
		if best == nil {
			best = e
			continue
		}
		if a.fault(FaultACLPriorityInverted) {
			if e.prio < best.prio {
				best = e
			}
		} else if e.prio > best.prio {
			best = e
		}
	}
	return best
}

func (a *ASIC) matchACLIngress(pf *parsedFrame, aclDstMAC uint64) *aclEntry {
	// Like matchACL but with an overridable destination MAC (for the
	// pre/post-rewrite model-bug fault).
	saved := pf.eth.DstMAC
	pf.eth.DstMAC = macFrom(aclDstMAC)
	e := a.matchACL(a.aclIn, pf, 0)
	pf.eth.DstMAC = saved
	return e
}

func (a *ASIC) matchACLEgress(pf *parsedFrame, outPort uint16) *aclEntry {
	return a.matchACL(a.aclEg, pf, outPort)
}
