package switchsim

import (
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4rt"
)

// orchAgent synchronizes the application-layer state to the ASIC through a
// SyncD/SAI-style object interface. It is deliberately a separate
// translation step: several of the paper's bugs are integration bugs
// between this layer and its neighbors.
type orchAgent struct {
	asic  *ASIC
	fault func(Fault) bool

	// SyncD-level resource accounting.
	rifCount   int
	wcmpLeaked int // members stranded in hardware by failed creations
	aclLeaked  int // slots consumed by rejected ACL entries
}

func newOrchAgent(asic *ASIC, fault func(Fault) bool) *orchAgent {
	return &orchAgent{asic: asic, fault: fault}
}

// u16 extracts a semantic value as uint16.
func u16(e *pdpi.Entry, key string) uint16 {
	if m, ok := e.Match(key); ok {
		return uint16(m.Value.Uint64())
	}
	return 0
}

func arg(inv *pdpi.ActionInvocation, i int) uint64 {
	if inv == nil || i >= len(inv.Args) {
		return 0
	}
	return inv.Args[i].Uint64()
}

// statusErr wraps a SyncD failure with a status code.
func statusErr(code p4rt.Code, format string, args ...any) error {
	return p4rt.Statusf(code, format, args...).Err()
}

// apply programs one accepted update into the ASIC. An error means the
// lower layers rejected it; the caller surfaces the error and must not
// keep the entry in the application state.
func (o *orchAgent) apply(typ p4rt.UpdateType, e *pdpi.Entry, old *pdpi.Entry) error {
	switch e.Table.Name {
	case "vrf_table":
		return o.applyVRF(typ, e)
	case "ipv4_table":
		return o.applyRouteV4(typ, e)
	case "ipv6_table":
		return o.applyRouteV6(typ, e)
	case "nexthop_table":
		return o.applyNexthop(typ, e)
	case "neighbor_table":
		return o.applyNeighbor(typ, e)
	case "router_interface_table":
		return o.applyRIF(typ, e)
	case "wcmp_group_table":
		return o.applyWCMP(typ, e, old)
	case "acl_pre_ingress_table":
		return o.applyACL(&o.asic.aclPre, typ, e)
	case "acl_ingress_table":
		return o.applyACL(&o.asic.aclIn, typ, e)
	case "acl_egress_table":
		return o.applyACL(&o.asic.aclEg, typ, e)
	case "l3_admit_table":
		return o.applyL3Admit(typ, e)
	case "mirror_session_table":
		return o.applyMirror(typ, e)
	case "vlan_table":
		return o.applyVLAN(typ, e)
	case "tunnel_table":
		return o.applyTunnel(typ, e)
	default:
		return statusErr(p4rt.Unimplemented, "orchagent: no handler for table %s", e.Table.Name)
	}
}

func (o *orchAgent) applyVRF(typ p4rt.UpdateType, e *pdpi.Entry) error {
	id := u16(e, "vrf_id")
	switch typ {
	case p4rt.Insert, p4rt.Modify:
		o.asic.vrfs[id] = true
	case p4rt.Delete:
		if o.fault(FaultVRFDeleteFails) {
			return statusErr(p4rt.Internal, "SAI_STATUS_FAILURE: ALPM flag mismatch deleting VRF %d", id)
		}
		delete(o.asic.vrfs, id)
	}
	return nil
}

func routeActionOf(e *pdpi.Entry) (routeActionKind, uint16) {
	switch e.Action.Action.Name {
	case "drop":
		return routeDrop, 0
	case "set_nexthop_id":
		return routeNexthop, uint16(arg(e.Action, 0))
	case "set_wcmp_group_id":
		return routeWCMP, uint16(arg(e.Action, 0))
	}
	return routeDrop, 0
}

func (o *orchAgent) applyRouteV4(typ p4rt.UpdateType, e *pdpi.Entry) error {
	vrf := u16(e, "vrf_id")
	m, _ := e.Match("ipv4_dst")
	prefix := uint32(m.Value.Uint64())
	plen := m.PrefixLen
	routes := o.asic.v4Routes[vrf]
	idx := -1
	for i, r := range routes {
		if r.prefix == prefix && r.plen == plen {
			idx = i
		}
	}
	switch typ {
	case p4rt.Delete:
		if idx < 0 {
			return statusErr(p4rt.NotFound, "route not programmed")
		}
		if o.fault(FaultDefaultRouteDelete) && plen == 0 && len(routes) > 1 {
			return statusErr(p4rt.Internal, "SAI_STATUS_FAILURE: cannot delete default route with other routes present")
		}
		o.asic.v4Routes[vrf] = append(routes[:idx], routes[idx+1:]...)
		return nil
	default:
		kind, id := routeActionOf(e)
		r := routeV4{prefix: prefix, plen: plen, kind: kind, id: id}
		if idx >= 0 {
			routes[idx] = r
		} else {
			o.asic.v4Routes[vrf] = append(routes, r)
		}
		return nil
	}
}

func (o *orchAgent) applyRouteV6(typ p4rt.UpdateType, e *pdpi.Entry) error {
	vrf := u16(e, "vrf_id")
	m, _ := e.Match("ipv6_dst")
	routes := o.asic.v6Routes[vrf]
	idx := -1
	for i, r := range routes {
		if r.prefixHi == m.Value.Hi && r.prefixLo == m.Value.Lo && r.plen == m.PrefixLen {
			idx = i
		}
	}
	switch typ {
	case p4rt.Delete:
		if idx < 0 {
			return statusErr(p4rt.NotFound, "route not programmed")
		}
		o.asic.v6Routes[vrf] = append(routes[:idx], routes[idx+1:]...)
		return nil
	default:
		kind, id := routeActionOf(e)
		r := routeV6{prefixHi: m.Value.Hi, prefixLo: m.Value.Lo, plen: m.PrefixLen, kind: kind, id: id}
		if idx >= 0 {
			routes[idx] = r
		} else {
			o.asic.v6Routes[vrf] = append(routes, r)
		}
		return nil
	}
}

func (o *orchAgent) applyNexthop(typ p4rt.UpdateType, e *pdpi.Entry) error {
	id := u16(e, "nexthop_id")
	if typ == p4rt.Delete {
		delete(o.asic.nexthops, id)
		return nil
	}
	rec := nexthopRec{
		rif:      uint16(arg(e.Action, 0)),
		neighbor: uint16(arg(e.Action, 1)),
	}
	if e.Action.Action.Name == "set_nexthop_and_tunnel" {
		rec.tunnel = uint16(arg(e.Action, 2))
	}
	o.asic.nexthops[id] = rec
	return nil
}

func (o *orchAgent) applyNeighbor(typ p4rt.UpdateType, e *pdpi.Entry) error {
	key := neighborKey{u16(e, "router_interface_id"), u16(e, "neighbor_id")}
	if typ == p4rt.Delete {
		delete(o.asic.neighbors, key)
		return nil
	}
	o.asic.neighbors[key] = arg(e.Action, 0)
	return nil
}

func (o *orchAgent) applyRIF(typ p4rt.UpdateType, e *pdpi.Entry) error {
	id := u16(e, "router_interface_id")
	if typ == p4rt.Delete {
		delete(o.asic.rifs, id)
		o.rifCount--
		return nil
	}
	if _, exists := o.asic.rifs[id]; !exists {
		if o.fault(FaultRouterInterfaceLimit8) && o.rifCount >= 8 {
			return statusErr(p4rt.ResourceExhausted, "SAI_STATUS_INSUFFICIENT_RESOURCES: router interface table full")
		}
		o.rifCount++
	}
	o.asic.rifs[id] = rifRec{port: uint16(arg(e.Action, 0)), srcMAC: arg(e.Action, 1)}
	return nil
}

func (o *orchAgent) applyWCMP(typ p4rt.UpdateType, e *pdpi.Entry, old *pdpi.Entry) error {
	id := u16(e, "wcmp_group_id")
	if typ == p4rt.Delete {
		delete(o.asic.wcmp, id)
		return nil
	}
	var members []wcmpMember
	for _, wa := range e.ActionSet {
		members = append(members, wcmpMember{nexthop: uint16(wa.Args[0].Uint64()), weight: wa.Weight})
	}
	if o.fault(FaultWCMPRejectSameBuckets) {
		seen := map[wcmpMember]bool{}
		for _, m := range members {
			if seen[m] {
				return statusErr(p4rt.InvalidArgument, "duplicate WCMP bucket rejected by orchagent")
			}
			seen[m] = true
		}
	}
	if o.fault(FaultWCMPPartialCleanup) && len(members) > 2 {
		// Member creation fails midway; the first members stay programmed
		// in hardware (leaked) while the group is reported failed.
		o.asic.wcmp[id] = members[:2]
		o.wcmpLeaked += 2
		return statusErr(p4rt.Internal, "SAI_STATUS_FAILURE creating group member 3")
	}
	if typ == p4rt.Modify && o.fault(FaultWCMPUpdateDropsMember) && old != nil {
		// Members also present in the old set are "optimized away".
		oldSet := map[wcmpMember]bool{}
		for _, wa := range old.ActionSet {
			oldSet[wcmpMember{nexthop: uint16(wa.Args[0].Uint64()), weight: wa.Weight}] = true
		}
		var kept []wcmpMember
		for _, m := range members {
			if !oldSet[m] {
				kept = append(kept, m)
			}
		}
		o.asic.wcmp[id] = kept
		return nil
	}
	o.asic.wcmp[id] = members
	return nil
}

// noteACLRejected feeds the SyncD leak accounting (§Appendix A: rejected
// entries leak hardware slots until the table is exhausted).
func (o *orchAgent) noteACLRejected(table string) {
	if table == "acl_ingress_table" && o.fault(FaultACLLeakExhausts) {
		o.aclLeaked++
	}
}

func ternFromMatch(e *pdpi.Entry, key string) *ternary {
	if m, ok := e.Match(key); ok {
		return &ternary{val: m.Value.Lo, mask: m.Mask.Lo}
	}
	return nil
}

func optFromMatch(e *pdpi.Entry, key string) *optBit {
	if m, ok := e.Match(key); ok {
		return &optBit{want: !m.Value.IsZero()}
	}
	return nil
}

func (o *orchAgent) applyACL(stage *[]aclEntry, typ p4rt.UpdateType, e *pdpi.Entry) error {
	key := e.Key()
	idx := -1
	for i := range *stage {
		if (*stage)[i].id == key {
			idx = i
		}
	}
	if typ == p4rt.Delete {
		if idx < 0 {
			return statusErr(p4rt.NotFound, "ACL entry not programmed")
		}
		*stage = append((*stage)[:idx], (*stage)[idx+1:]...)
		return nil
	}
	if stage == &o.asic.aclIn && o.fault(FaultACLLeakExhausts) && o.aclLeaked >= 30 {
		return statusErr(p4rt.ResourceExhausted, "SAI_STATUS_TABLE_FULL: leaked ACL slots exhausted the bank")
	}

	entry := aclEntry{id: key, prio: e.Priority}
	entry.isIPv4 = optFromMatch(e, "is_ipv4")
	entry.isIPv6 = optFromMatch(e, "is_ipv6")
	entry.isVLAN = optFromMatch(e, "is_vlan")
	entry.etherType = ternFromMatch(e, "ether_type")
	entry.dstMAC = ternFromMatch(e, "dst_mac")
	entry.srcMAC = ternFromMatch(e, "src_mac")
	entry.srcIP = ternFromMatch(e, "src_ip")
	entry.dstIP = ternFromMatch(e, "dst_ip")
	entry.dscp = ternFromMatch(e, "dscp")
	entry.ttl = ternFromMatch(e, "ttl")
	entry.proto = ternFromMatch(e, "ip_protocol")
	entry.icmpType = ternFromMatch(e, "icmp_type")
	entry.l4Src = ternFromMatch(e, "l4_src_port")
	entry.l4Dst = ternFromMatch(e, "l4_dst_port")
	entry.outPort = ternFromMatch(e, "out_port")
	if m, ok := e.Match("dst_ipv6"); ok {
		entry.dstIPv6 = &ternHi128{valHi: m.Value.Hi, valLo: m.Value.Lo, maskHi: m.Mask.Hi, maskLo: m.Mask.Lo}
	}

	switch e.Action.Action.Name {
	case "acl_drop", "acl_egress_drop":
		entry.kind = aclDrop
	case "acl_trap":
		entry.kind = aclTrap
	case "acl_copy":
		entry.kind = aclCopy
	case "acl_mirror":
		entry.kind = aclMirror
		entry.mirrorSession = uint16(arg(e.Action, 0))
	case "acl_forward":
		entry.kind = aclForward
	case "set_vrf":
		entry.kind = aclSetVRF
		entry.vrf = uint16(arg(e.Action, 0))
	default:
		return statusErr(p4rt.Unimplemented, "orchagent: ACL action %s", e.Action.Action.Name)
	}
	if idx >= 0 {
		(*stage)[idx] = entry
	} else {
		*stage = append(*stage, entry)
	}
	return nil
}

func (o *orchAgent) applyL3Admit(typ p4rt.UpdateType, e *pdpi.Entry) error {
	key := e.Key()
	idx := -1
	for i := range o.asic.l3Admit {
		if o.asic.l3Admit[i].id == key {
			idx = i
		}
	}
	if typ == p4rt.Delete {
		if idx < 0 {
			return statusErr(p4rt.NotFound, "entry not programmed")
		}
		o.asic.l3Admit = append(o.asic.l3Admit[:idx], o.asic.l3Admit[idx+1:]...)
		return nil
	}
	entry := l3AdmitEntry{
		id:     key,
		prio:   e.Priority,
		mac:    ternFromMatch(e, "dst_mac"),
		inPort: ternFromMatch(e, "in_port"),
	}
	if idx >= 0 {
		o.asic.l3Admit[idx] = entry
	} else {
		o.asic.l3Admit = append(o.asic.l3Admit, entry)
	}
	return nil
}

func (o *orchAgent) applyMirror(typ p4rt.UpdateType, e *pdpi.Entry) error {
	id := u16(e, "mirror_session_id")
	if typ == p4rt.Delete {
		delete(o.asic.mirrors, id)
		return nil
	}
	o.asic.mirrors[id] = uint16(arg(e.Action, 0))
	return nil
}

func (o *orchAgent) applyVLAN(typ p4rt.UpdateType, e *pdpi.Entry) error {
	id := u16(e, "vlan_id")
	if typ == p4rt.Delete {
		delete(o.asic.vlans, id)
		return nil
	}
	o.asic.vlans[id] = true
	return nil
}

func (o *orchAgent) applyTunnel(typ p4rt.UpdateType, e *pdpi.Entry) error {
	id := u16(e, "tunnel_id")
	if typ == p4rt.Delete {
		delete(o.asic.tunnels, id)
		return nil
	}
	o.asic.tunnels[id] = tunnelRec{
		src: uint32(arg(e.Action, 0)),
		dst: uint32(arg(e.Action, 1)),
	}
	return nil
}
