package switchsim

import (
	"strings"
	"testing"

	"switchv/internal/p4rt"
	"switchv/internal/testutil"
)

func TestFaultRegistryComplete(t *testing.T) {
	for _, f := range AllFaults() {
		meta, ok := Meta(f)
		if !ok {
			t.Errorf("fault %s has no metadata", f)
			continue
		}
		if meta.Component == "" || meta.Description == "" {
			t.Errorf("fault %s metadata incomplete: %+v", f, meta)
		}
	}
	if _, ok := Meta("bogus"); ok {
		t.Error("bogus fault resolved")
	}
	if len(AllFaults()) < 25 {
		t.Errorf("only %d faults registered", len(AllFaults()))
	}
}

func TestFaultRIFLimit(t *testing.T) {
	sw, info := startSwitch(t, "middleblock", FaultRouterInterfaceLimit8)
	rif, _ := info.TableByName("router_interface_table")
	act, _ := info.ActionByName("set_port_and_src_mac")
	insert := func(id byte) p4rt.Status {
		resp := sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert, Entry: p4rt.TableEntry{
			TableID: rif.ID,
			Match:   []p4rt.FieldMatch{{FieldID: 1, Exact: &p4rt.ExactMatch{Value: []byte{id}}}},
			Action: p4rt.TableAction{Action: &p4rt.Action{ActionID: act.ID, Params: []p4rt.ActionParam{
				{ParamID: 1, Value: []byte{20}},
				{ParamID: 2, Value: []byte{2, 0, 0, 0, 0, id}},
			}}},
		}}}})
		return resp.Statuses[0]
	}
	// The fixture already installed RIFs 1 and 2; fill to the chip's real
	// limit of 8, then watch the guarantee break.
	okCount := 2
	for id := byte(10); id < 30; id++ {
		st := insert(id)
		if st.Code == p4rt.OK {
			okCount++
		} else if st.Code != p4rt.ResourceExhausted {
			t.Fatalf("unexpected status: %s", st)
		}
	}
	if okCount != 8 {
		t.Errorf("chip accepted %d router interfaces, want 8", okCount)
	}
}

func TestFaultACLLeak(t *testing.T) {
	sw, info := startSwitch(t, "middleblock", FaultACLLeakExhausts)
	acl, _ := info.TableByName("acl_ingress_table")
	drop, _ := info.ActionByName("acl_drop")
	// 30 constraint-violating inserts (ttl matched without an IP match)
	// leak slots...
	for i := 0; i < 30; i++ {
		resp := sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert, Entry: p4rt.TableEntry{
			TableID:  acl.ID,
			Priority: int32(100 + i),
			Match: []p4rt.FieldMatch{
				{FieldID: 5, Ternary: &p4rt.TernaryMatch{Value: []byte{byte(i + 1)}, Mask: []byte{0xff}}},
			},
			Action: p4rt.TableAction{Action: &p4rt.Action{ActionID: drop.ID}},
		}}}})
		if resp.OK() {
			t.Fatalf("constraint-violating ACL entry %d accepted", i)
		}
	}
	// ... after which a perfectly valid entry hits RESOURCE_EXHAUSTED.
	resp := sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert, Entry: p4rt.TableEntry{
		TableID:  acl.ID,
		Priority: 500,
		Match: []p4rt.FieldMatch{
			{FieldID: 3, Ternary: &p4rt.TernaryMatch{Value: []byte{0x88, 0xcc}, Mask: []byte{0xff, 0xff}}},
		},
		Action: p4rt.TableAction{Action: &p4rt.Action{ActionID: drop.ID}},
	}}}})
	if resp.Statuses[0].Code != p4rt.ResourceExhausted {
		t.Errorf("expected RESOURCE_EXHAUSTED after the leak, got %s", resp.Statuses[0])
	}
}

func TestFaultWCMPRejectSameBuckets(t *testing.T) {
	sw, info := startSwitch(t, "middleblock", FaultWCMPRejectSameBuckets)
	wcmp, _ := info.TableByName("wcmp_group_table")
	setNH, _ := info.ActionByName("set_nexthop_id")
	member := func(nh byte, weight int32) p4rt.ActionProfileAction {
		return p4rt.ActionProfileAction{
			Action: p4rt.Action{ActionID: setNH.ID, Params: []p4rt.ActionParam{{ParamID: 1, Value: []byte{nh}}}},
			Weight: weight,
		}
	}
	// Identical buckets are valid per the P4RT spec; the faulty agent
	// rejects them.
	resp := sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert, Entry: p4rt.TableEntry{
		TableID: wcmp.ID,
		Match:   []p4rt.FieldMatch{{FieldID: 1, Exact: &p4rt.ExactMatch{Value: []byte{40}}}},
		Action: p4rt.TableAction{HasActionSet: true, ActionSet: []p4rt.ActionProfileAction{
			member(1, 2), member(1, 2),
		}},
	}}}})
	if resp.OK() {
		t.Error("duplicate buckets accepted despite the fault")
	}
	if !strings.Contains(resp.String(), "duplicate") {
		t.Errorf("unexpected rejection: %s", resp.String())
	}
}

func TestFaultModifyKeepsOldParams(t *testing.T) {
	sw, info := startSwitch(t, "middleblock", FaultModifyKeepsOldParams)
	nh, _ := info.TableByName("nexthop_table")
	setNexthop, _ := info.ActionByName("set_nexthop")
	mk := func(rif byte) p4rt.TableEntry {
		return p4rt.TableEntry{
			TableID: nh.ID,
			Match:   []p4rt.FieldMatch{{FieldID: 1, Exact: &p4rt.ExactMatch{Value: []byte{1}}}},
			Action: p4rt.TableAction{Action: &p4rt.Action{ActionID: setNexthop.ID, Params: []p4rt.ActionParam{
				{ParamID: 1, Value: []byte{rif}},
				{ParamID: 2, Value: []byte{1}},
			}}},
		}
	}
	// Modify nexthop 1 to router interface 2.
	resp := sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Modify, Entry: mk(2)}}})
	if !resp.OK() {
		t.Fatalf("modify failed: %s", resp.String())
	}
	// The read-back still shows the old parameter (the bug).
	rr, err := sw.Read(p4rt.ReadRequest{TableID: nh.ID})
	if err != nil {
		t.Fatal(err)
	}
	foundOld := false
	for i := range rr.Entries {
		for _, m := range rr.Entries[i].Match {
			if m.Exact != nil && len(m.Exact.Value) == 1 && m.Exact.Value[0] == 1 {
				a := rr.Entries[i].Action.Action
				if a != nil && len(a.Params) > 0 && len(a.Params[0].Value) == 1 && a.Params[0].Value[0] == 1 {
					foundOld = true
				}
			}
		}
	}
	if !foundOld {
		t.Error("modify applied the new params despite the fault")
	}
}

func TestFaultReadDropsTernary(t *testing.T) {
	sw, _ := startSwitch(t, "middleblock", FaultReadDropsTernary)
	rr, err := sw.Read(p4rt.ReadRequest{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rr.Entries {
		for _, m := range rr.Entries[i].Match {
			if m.Ternary != nil {
				t.Fatal("ternary match present in read-back despite the fault")
			}
		}
	}
}

func TestInjectFrameAdapter(t *testing.T) {
	sw, _ := startSwitch(t, "middleblock")
	res, err := sw.InjectFrame(p4rt.InjectRequest{Port: 1, Frame: testutil.IPv4UDP("10.1.2.3", 64, 2000)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped || res.Punted || res.EgressPort != 11 {
		t.Errorf("result = %+v", res)
	}
}
