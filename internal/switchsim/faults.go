// Package switchsim implements the switch under test: a PINS-like
// software stack (P4Runtime server → orchestration agent → SyncD/SAI →
// ASIC, plus switch-Linux daemons) over an independently implemented
// fixed-function forwarding ASIC.
//
// Every layer carries a registry of injectable faults modeled on the real
// bugs the paper reports (Table 1 and Appendix A). With no faults enabled
// the stack is conformant: SwitchV must report zero incidents against it;
// with a fault enabled, the corresponding layer misbehaves the way the
// original bug did.
package switchsim

import (
	"fmt"
	"sort"
	"strings"
)

// Fault identifies one injectable bug.
type Fault string

// Component names, matching Table 1 of the paper.
const (
	CompP4RT      = "P4Runtime Server"
	CompGNMI      = "gNMI"
	CompOrchAgent = "Orchestration Agent"
	CompSyncD     = "SyncD Binary"
	CompLinux     = "Switch Linux"
	CompHardware  = "Hardware"
	CompToolchain = "P4 Toolchain"
	CompModel     = "Input P4 Program"
	CompSoftware  = "Switch software" // Cerberus's coarse category
	CompBMv2      = "BMv2 P4 Simulator"
)

// The injectable faults. Descriptions paraphrase Appendix A.
const (
	// P4Runtime server layer.
	FaultBatchAbortOnDeleteMissing Fault = "p4rt.batch-abort-on-delete-missing"
	FaultModifyKeepsOldParams      Fault = "p4rt.modify-keeps-old-params"
	FaultAcceptInvalidReference    Fault = "p4rt.accept-invalid-reference"
	FaultReadDropsTernary          Fault = "p4rt.read-drops-ternary"
	FaultPacketOutPuntedBack       Fault = "p4rt.packet-out-punted-back"
	FaultRejectACLEntries          Fault = "p4rt.reject-acl-entries"
	FaultP4InfoPushIgnored         Fault = "p4rt.p4info-push-ignored"
	FaultWrongDuplicateStatus      Fault = "p4rt.wrong-duplicate-status"
	// P4 toolchain (PDPI-style conversion layer).
	FaultZeroBytesAccepted Fault = "toolchain.zero-bytes-accepted"
	// Orchestration agent.
	FaultWCMPPartialCleanup    Fault = "orch.wcmp-partial-cleanup"
	FaultWCMPRejectSameBuckets Fault = "orch.wcmp-reject-same-buckets"
	FaultWCMPUpdateDropsMember Fault = "orch.wcmp-update-drops-members"
	FaultVRFDeleteFails        Fault = "orch.vrf-delete-fails"
	// SyncD / SAI.
	FaultACLLeakExhausts      Fault = "syncd.acl-leak-exhausts"
	FaultDSCPRemarkZero       Fault = "syncd.dscp-remark-zero"
	FaultSubmitIngressDropped Fault = "syncd.submit-ingress-dropped"
	FaultDefaultRouteDelete   Fault = "syncd.default-route-delete-broken"
	// Hardware / ASIC.
	FaultTTL1NoTrap            Fault = "asic.ttl1-no-trap"
	FaultPortSpeedDrop         Fault = "asic.port12-drops"
	FaultLPMTiebreakWrong      Fault = "asic.lpm-tiebreak-wrong"
	FaultACLPriorityInverted   Fault = "asic.acl-priority-inverted"
	FaultEncapDstReversed      Fault = "asic.encap-dst-reversed"
	FaultVLANReservedAccepted  Fault = "asic.vlan-reserved-accepted"
	FaultRouterInterfaceLimit8 Fault = "asic.router-interface-limit-8"
	// Switch Linux daemons.
	FaultLLDPPunt           Fault = "linux.lldp-punt"
	FaultRouterSolicitNoise Fault = "linux.router-solicit-noise"
	FaultPortSyncBreaksIO   Fault = "linux.portsync-breaks-pktio"
	FaultVRF1Conflict       Fault = "linux.vrf1-conflict"
	// Behaviors where the switch is right and the *model* is wrong; the
	// divergence is attributed to the Input P4 Program at triage (§6.1).
	FaultModelICMPWrongField  Fault = "model.icmp-wrong-field"
	FaultModelBroadcastDrop   Fault = "model.broadcast-drop-missing"
	FaultModelACLAfterRewrite Fault = "model.acl-after-rewrite"
)

// FaultMeta describes an injectable fault.
type FaultMeta struct {
	Fault       Fault
	Component   string
	Description string
}

var faultRegistry = map[Fault]FaultMeta{
	FaultBatchAbortOnDeleteMissing: {FaultBatchAbortOnDeleteMissing, CompP4RT, "deleting a non-existing entry causes the entire batch to fail"},
	FaultModifyKeepsOldParams:      {FaultModifyKeepsOldParams, CompP4RT, "MODIFY leaves old action parameters unchanged"},
	FaultAcceptInvalidReference:    {FaultAcceptInvalidReference, CompP4RT, "entries with dangling @refers_to references are accepted"},
	FaultReadDropsTernary:          {FaultReadDropsTernary, CompP4RT, "reading back entries omits ternary field matches"},
	FaultPacketOutPuntedBack:       {FaultPacketOutPuntedBack, CompP4RT, "PacketOut packets incorrectly get punted back to the controller"},
	FaultRejectACLEntries:          {FaultRejectACLEntries, CompP4RT, "an internal API rejects all ACL ingress entries"},
	FaultP4InfoPushIgnored:         {FaultP4InfoPushIgnored, CompP4RT, "P4Info push failures are not propagated; the pipeline stays unconfigured"},
	FaultWrongDuplicateStatus:      {FaultWrongDuplicateStatus, CompP4RT, "duplicate inserts rejected with the wrong status code"},
	FaultZeroBytesAccepted:         {FaultZeroBytesAccepted, CompToolchain, "leading zero bytes in values are accepted and echoed back non-canonically"},
	FaultWCMPPartialCleanup:        {FaultWCMPPartialCleanup, CompOrchAgent, "failed WCMP group creation leaves members programmed in the ASIC"},
	FaultWCMPRejectSameBuckets:     {FaultWCMPRejectSameBuckets, CompOrchAgent, "WCMP groups with identical buckets are rejected, violating the P4RT spec"},
	FaultWCMPUpdateDropsMember:     {FaultWCMPUpdateDropsMember, CompOrchAgent, "updating a WCMP group removes unchanged members"},
	FaultVRFDeleteFails:            {FaultVRFDeleteFails, CompOrchAgent, "VRF deletion fails due to incorrect ALPM flag usage"},
	FaultACLLeakExhausts:           {FaultACLLeakExhausts, CompSyncD, "rejected ACL entries leak hardware slots; inserts fail with RESOURCE_EXHAUSTED after 30"},
	FaultDSCPRemarkZero:            {FaultDSCPRemarkZero, CompSyncD, "switch re-marks DSCP to 0 in forwarded packets"},
	FaultSubmitIngressDropped:      {FaultSubmitIngressDropped, CompSyncD, "L3 forwarding not enabled for submit-to-ingress packets; they are dropped"},
	FaultDefaultRouteDelete:        {FaultDefaultRouteDelete, CompSyncD, "default route deletion fails while other routes exist in the VRF"},
	FaultTTL1NoTrap:                {FaultTTL1NoTrap, CompHardware, "chip forwards TTL<=1 packets instead of trapping them to the CPU"},
	FaultPortSpeedDrop:             {FaultPortSpeedDrop, CompHardware, "packets on port 12 are dropped due to electrical interference"},
	FaultLPMTiebreakWrong:          {FaultLPMTiebreakWrong, CompHardware, "LPM lookup prefers the shortest matching prefix"},
	FaultACLPriorityInverted:       {FaultACLPriorityInverted, CompHardware, "ACL TCAM picks the lowest-priority matching entry"},
	FaultEncapDstReversed:          {FaultEncapDstReversed, CompSoftware, "encap destination IP is byte-reversed (endianness bug)"},
	FaultVLANReservedAccepted:      {FaultVLANReservedAccepted, CompSoftware, "reserved VLAN ids are accepted by the switch"},
	FaultRouterInterfaceLimit8:     {FaultRouterInterfaceLimit8, CompModel, "router interface resource guarantees are unrealistically high for the chip (only 8 fit)"},
	FaultLLDPPunt:                  {FaultLLDPPunt, CompLinux, "a traditional LLDP daemon punts LLDP frames to the controller"},
	FaultRouterSolicitNoise:        {FaultRouterSolicitNoise, CompLinux, "the switch sends IPv6 router solicitation packets unexpectedly"},
	FaultPortSyncBreaksIO:          {FaultPortSyncBreaksIO, CompLinux, "a port sync daemon restart breaks all packet IO"},
	FaultVRF1Conflict:              {FaultVRF1Conflict, CompLinux, "a daemon creates conflicting VRF configuration; VRF 1 is unusable"},
	FaultModelICMPWrongField:       {FaultModelICMPWrongField, CompModel, "the model matches on the wrong ICMP field (switch is correct)"},
	FaultModelBroadcastDrop:        {FaultModelBroadcastDrop, CompModel, "the model does not reflect that the switch drops IPv4 broadcast"},
	FaultModelACLAfterRewrite:      {FaultModelACLAfterRewrite, CompModel, "the model applies ACL after header rewrite; the switch applies it before"},
}

// Meta returns a fault's metadata.
func Meta(f Fault) (FaultMeta, bool) {
	m, ok := faultRegistry[f]
	return m, ok
}

// ParseFaults parses a comma-separated fault id list (the -fault flag
// syntax shared by the CLIs), rejecting unknown ids with a pointer to
// the catalog. An empty string parses to no faults.
func ParseFaults(s string) ([]Fault, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []Fault
	for _, name := range strings.Split(s, ",") {
		f := Fault(strings.TrimSpace(name))
		if _, ok := Meta(f); !ok {
			return nil, fmt.Errorf("unknown fault %q (run switchd -list-faults for the catalog)", string(f))
		}
		out = append(out, f)
	}
	return out, nil
}

// AllFaults lists every injectable fault in a stable order.
func AllFaults() []Fault {
	out := make([]Fault, 0, len(faultRegistry))
	for f := range faultRegistry {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
