// The survival bijection matrix: the tentpole contract of the chaos
// package. For EVERY registered chaos mode there is a recipe, and for
// every recipe a registered mode (the bijection), and each recipe must
// prove three things:
//
//  1. Survival: a hardened stack (retrying client + self-healing device
//     + reconciling harness) runs the campaign to completion under the
//     injected fault and produces a canonical report BYTE-IDENTICAL to
//     the same campaign on a fault-free stack. Not "no incidents" —
//     bit-for-bit the same verdict counts, coverage and trajectory.
//  2. Lethality: the same fault against an unhardened stack does NOT
//     produce that byte-identical clean report (it errors or the report
//     is perturbed) — otherwise the fault is decorative and the matrix
//     row proves nothing.
//  3. Reproducibility: the run is a pure function of (seed, schedule):
//     repeating it yields the same report bytes and the same injected
//     fault events.
package chaos_test

import (
	"bytes"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"switchv/internal/chaos"
	"switchv/internal/fuzzer"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4rt"
	"switchv/internal/switchsim"
	"switchv/internal/switchv"
	"switchv/models"
)

// survivalFuzz is the fixed campaign every matrix cell runs. RPC index
// accounting for the recipes: index 0 is the pipeline push, then each
// batch costs two indices (write, read) — so odd indices 1,3,5,... are
// Writes and even indices 2,4,6,... are read-backs.
var survivalFuzz = fuzzer.Options{Seed: 1, NumRequests: 20, UpdatesPerRequest: 10}

// recipes is the matrix: one chaos schedule per mode. Restart fires a
// little later than the rest so there is established table state whose
// loss (and replay) is actually exercised.
var recipes = map[chaos.Mode]string{
	chaos.ModeReset:   "reset:@5",
	chaos.ModeLatency: "latency:@5",
	chaos.ModeDrop:    "drop:@5",
	chaos.ModeDup:     "dup:@5",
	chaos.ModeTorn:    "torn:@5",
	chaos.ModeRestart: "restart:@7",
}

const survivalRole = "middleblock"

// TestSurvivalMatrixIsBijective: every registered mode has a recipe and
// every recipe names a registered mode. A new mode added to the package
// without a matrix row fails here, not silently.
func TestSurvivalMatrixIsBijective(t *testing.T) {
	for _, m := range chaos.AllModes() {
		if _, ok := recipes[m]; !ok {
			t.Errorf("mode %q has no survival recipe", m)
		}
	}
	for m := range recipes {
		if _, ok := chaos.Meta(m); !ok {
			t.Errorf("recipe for %q does not correspond to a registered mode", m)
		}
	}
}

// chaosCampaign runs the fixed campaign through a chaos wire and
// returns its canonical report bytes plus the injected events.
// hardened=false swaps in a bare client with no retry, no redial, no
// self-healing and no reconciliation (only a deadline, so tests
// terminate instead of hanging on withheld responses).
func chaosCampaign(t *testing.T, sched *chaos.Schedule, hardened bool) (json []byte, events []chaos.Event, recoveries int, err error) {
	t.Helper()
	sw := switchsim.New(survivalRole)
	srv := p4rt.NewServer(sw, nil)
	wire := chaos.NewWire(sched, func() (net.Conn, error) {
		c1, c2 := net.Pipe()
		if serr := srv.ServeConn(c2); serr != nil {
			return nil, serr
		}
		return c1, nil
	})
	wire.SetRestart(func() {
		sw.Restart()        // pipeline + table state lost
		srv.ResetSessions() // replay cache lost: full process reboot
	})
	conn, derr := wire.Dial()
	if derr != nil {
		t.Fatal(derr)
	}
	cli := p4rt.NewClient(conn)
	cli.SetTimeout(100 * time.Millisecond)
	var dev p4rt.Device = cli
	var shd *switchv.SelfHealingDevice
	if hardened {
		cli.SetRedial(wire.Dial)
		cli.SetRetry(p4rt.Backoff{Initial: time.Millisecond, Max: 4 * time.Millisecond,
			Attempts: 6, Sleep: func(time.Duration) {}})
		shd = switchv.NewSelfHealing(cli)
		dev = shd
	}
	defer func() {
		cli.Close()
		wire.Close()
		srv.Close()
		sw.Close()
	}()

	info := p4info.New(models.MustLoad(survivalRole))
	h := switchv.New(info, dev, nil)
	h.Reconcile = hardened
	if perr := h.PushPipeline(); perr != nil {
		return nil, wire.Events(), 0, perr
	}
	rep, rerr := h.RunControlPlane(survivalFuzz)
	if rerr != nil {
		return nil, wire.Events(), 0, rerr
	}
	data, jerr := rep.Canon().JSON()
	if jerr != nil {
		t.Fatal(jerr)
	}
	if shd != nil {
		recoveries = shd.Recoveries()
	}
	return data, wire.Events(), recoveries, nil
}

// baseline memoizes the fault-free reference report: the same campaign
// on a direct in-process switch, no wire, no hardening.
var baseline struct {
	once sync.Once
	json []byte
}

func baselineJSON(t *testing.T) []byte {
	t.Helper()
	baseline.once.Do(func() {
		sw := switchsim.New(survivalRole)
		defer sw.Close()
		info := p4info.New(models.MustLoad(survivalRole))
		h := switchv.New(info, sw, sw)
		if err := h.PushPipeline(); err != nil {
			t.Fatal(err)
		}
		rep, err := h.RunControlPlane(survivalFuzz)
		if err != nil {
			t.Fatal(err)
		}
		data, err := rep.Canon().JSON()
		if err != nil {
			t.Fatal(err)
		}
		baseline.json = data
	})
	if baseline.json == nil {
		t.Fatal("baseline campaign failed in an earlier subtest")
	}
	return baseline.json
}

func hasMode(events []chaos.Event, m chaos.Mode) bool {
	for _, e := range events {
		if e.Mode == m {
			return true
		}
	}
	return false
}

// TestSurvivalMatrix is the matrix itself: per mode, the hardened stack
// survives with a byte-identical report while the unhardened stack does
// not, and the fault provably fired on both.
func TestSurvivalMatrix(t *testing.T) {
	want := baselineJSON(t)
	for _, mode := range chaos.AllModes() {
		mode := mode
		t.Run(string(mode), func(t *testing.T) {
			sched, err := chaos.Parse(recipes[mode], 1)
			if err != nil {
				t.Fatal(err)
			}

			got, events, recoveries, err := chaosCampaign(t, sched, true)
			if err != nil {
				t.Fatalf("hardened campaign died under %s: %v", mode, err)
			}
			if !hasMode(events, mode) {
				t.Fatalf("schedule %q never fired %s (events: %v) — nothing was survived",
					recipes[mode], mode, events)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("hardened report under %s is not byte-identical to the fault-free run\nfaulted:    %d bytes\nfault-free: %d bytes",
					mode, len(got), len(want))
			}
			if mode == chaos.ModeRestart && recoveries == 0 {
				t.Error("restart survived without any self-healing recovery — the restart cannot have happened")
			}

			unJSON, unEvents, _, unErr := chaosCampaign(t, sched, false)
			if !hasMode(unEvents, mode) {
				t.Errorf("unhardened run never saw %s fire", mode)
			}
			if unErr == nil && bytes.Equal(unJSON, want) {
				t.Errorf("unhardened stack produced a clean byte-identical report under %s — the fault is decorative", mode)
			}
		})
	}
}

// TestSurvivalReproducible: each matrix cell is a pure function of
// (seed, schedule) — same report bytes, same injected events, run to
// run.
func TestSurvivalReproducible(t *testing.T) {
	for _, mode := range chaos.AllModes() {
		mode := mode
		t.Run(string(mode), func(t *testing.T) {
			sched, err := chaos.Parse(recipes[mode], 1)
			if err != nil {
				t.Fatal(err)
			}
			json1, ev1, _, err1 := chaosCampaign(t, sched, true)
			json2, ev2, _, err2 := chaosCampaign(t, sched, true)
			if err1 != nil || err2 != nil {
				t.Fatalf("campaigns errored: %v / %v", err1, err2)
			}
			if !bytes.Equal(json1, json2) {
				t.Error("two identical chaos campaigns produced different report bytes")
			}
			if !reflect.DeepEqual(ev1, ev2) {
				t.Errorf("injected events differ between identical runs:\n%v\n%v", ev1, ev2)
			}
		})
	}
}

// TestSurvivalPeriodicSchedule: the /P grammar end to end — a mixed
// periodic schedule fires multiple faults across the campaign, and the
// hardened stack still reproduces the fault-free bytes.
func TestSurvivalPeriodicSchedule(t *testing.T) {
	want := baselineJSON(t)
	sched, err := chaos.Parse("drop:/9,dup:/11", 1)
	if err != nil {
		t.Fatal(err)
	}
	got, events, _, err := chaosCampaign(t, sched, true)
	if err != nil {
		t.Fatalf("hardened campaign died under periodic chaos: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("periodic schedule fired nothing over the whole campaign")
	}
	if !bytes.Equal(got, want) {
		t.Errorf("hardened report under periodic chaos not byte-identical (%d injected faults)", len(events))
	}
	got2, events2, _, err := chaosCampaign(t, sched, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, got2) || !reflect.DeepEqual(events, events2) {
		t.Error("periodic chaos campaign not reproducible")
	}
	t.Logf("survived %d periodic faults: %v", len(events), events)
}
