package chaos

import (
	"strings"
	"testing"
)

func TestParseGrammar(t *testing.T) {
	s, err := Parse("reset:@5,drop:/40, restart:@200 ,,", 7)
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Mode: ModeReset, At: 5},
		{Mode: ModeDrop, At: -1, Period: 40},
		{Mode: ModeRestart, At: 200},
	}
	if len(s.Rules) != len(want) {
		t.Fatalf("rules = %+v, want %+v", s.Rules, want)
	}
	for i, r := range want {
		if s.Rules[i] != r {
			t.Errorf("rule %d = %+v, want %+v", i, s.Rules[i], r)
		}
	}
	if s.Seed != 7 {
		t.Errorf("seed = %d, want 7", s.Seed)
	}
	if got := s.String(); got != "reset:@5,drop:/40,restart:@200" {
		t.Errorf("String() = %q", got)
	}
	if !s.Has(ModeRestart) || s.Has(ModeTorn) {
		t.Errorf("Has() misreports rule membership")
	}
}

func TestParseEmpty(t *testing.T) {
	s, err := Parse("   ", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Empty() {
		t.Errorf("blank spec parsed to non-empty schedule %+v", s)
	}
	if s.ActionAt(0) != "" || s.ActionAt(100) != "" {
		t.Error("empty schedule injects faults")
	}
	var nilSched *Schedule
	if !nilSched.Empty() || nilSched.ActionAt(3) != "" || nilSched.Has(ModeDrop) {
		t.Error("nil schedule is not inert")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct{ spec, wantErr string }{
		{"explode:@5", "unknown mode"},
		{"reset", "want mode:@N or mode:/P"},
		{"reset:", "want mode:@N or mode:/P"},
		{"reset:@x", "bad index"},
		{"reset:@-1", "bad index"},
		{"drop:/0", "bad period"},
		{"drop:/nope", "bad period"},
		{"drop:5", "must start with '@'"},
	}
	for _, tc := range bad {
		if _, err := Parse(tc.spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted", tc.spec)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("Parse(%q) = %v, want error containing %q", tc.spec, err, tc.wantErr)
		}
	}
}

func TestActionAtAbsolute(t *testing.T) {
	s, err := Parse("torn:@3", 1)
	if err != nil {
		t.Fatal(err)
	}
	for idx := -1; idx < 20; idx++ {
		got := s.ActionAt(idx)
		if idx == 3 && got != ModeTorn {
			t.Errorf("ActionAt(3) = %q, want torn", got)
		}
		if idx != 3 && got != "" {
			t.Errorf("ActionAt(%d) = %q, want none", idx, got)
		}
	}
}

// TestActionAtDeterministic: the periodic firing pattern is a pure
// function of (seed, rules, index) — same inputs, same stream; a
// different seed decorrelates it.
func TestActionAtDeterministic(t *testing.T) {
	a, _ := Parse("drop:/5,dup:/7", 42)
	b, _ := Parse("drop:/5,dup:/7", 42)
	c, _ := Parse("drop:/5,dup:/7", 43)
	fired, differs := 0, false
	for idx := 0; idx < 1000; idx++ {
		if a.ActionAt(idx) != b.ActionAt(idx) {
			t.Fatalf("same seed diverged at index %d", idx)
		}
		if a.ActionAt(idx) != "" {
			fired++
		}
		if a.ActionAt(idx) != c.ActionAt(idx) {
			differs = true
		}
	}
	// /5 should fire ~200 times over 1000 indices; the hash would have to
	// be catastrophically broken to fall outside [50, 500].
	if fired < 50 || fired > 500 {
		t.Errorf("periodic /5,/7 fired %d times over 1000 indices", fired)
	}
	if !differs {
		t.Error("seeds 42 and 43 produced identical firing patterns")
	}
	// Re-querying must not mutate anything: the second pass over the same
	// schedule sees the same answers (ActionAt is pure, not consuming).
	for idx := 0; idx < 100; idx++ {
		if a.ActionAt(idx) != b.ActionAt(idx) {
			t.Fatalf("re-query diverged at index %d", idx)
		}
	}
}

func TestActionAtFirstRuleWins(t *testing.T) {
	s, err := Parse("reset:@4,drop:@4", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ActionAt(4); got != ModeReset {
		t.Errorf("ActionAt(4) = %q, want first rule (reset)", got)
	}
}

func TestDerivePerShard(t *testing.T) {
	root, err := Parse("drop:/4", 9)
	if err != nil {
		t.Fatal(err)
	}
	s0a, s0b, s1 := root.Derive(0), root.Derive(0), root.Derive(1)
	differs := false
	for idx := 0; idx < 500; idx++ {
		if s0a.ActionAt(idx) != s0b.ActionAt(idx) {
			t.Fatalf("Derive(0) not reproducible at index %d", idx)
		}
		if s0a.ActionAt(idx) != s1.ActionAt(idx) {
			differs = true
		}
	}
	if !differs {
		t.Error("Derive(0) and Derive(1) share a firing pattern")
	}
	if len(s0a.Rules) != len(root.Rules) {
		t.Error("Derive dropped rules")
	}
	var nilSched *Schedule
	if nilSched.Derive(3) != nil {
		t.Error("nil.Derive != nil")
	}
}

// TestRegistryComplete: every mode has documentation metadata and
// parses; every registry entry is reachable through AllModes.
func TestRegistryComplete(t *testing.T) {
	modes := AllModes()
	if len(modes) != len(registry) {
		t.Fatalf("AllModes lists %d of %d registry entries", len(modes), len(registry))
	}
	for _, m := range modes {
		meta, ok := Meta(m)
		if !ok {
			t.Errorf("mode %q has no Meta", m)
			continue
		}
		if meta.Injects == "" || meta.Survives == "" {
			t.Errorf("mode %q metadata incomplete: %+v", m, meta)
		}
		if _, err := Parse(string(m)+":@1", 1); err != nil {
			t.Errorf("mode %q does not parse: %v", m, err)
		}
	}
	if _, ok := Meta(Mode("explode")); ok {
		t.Error("Meta accepted an unregistered mode")
	}
}
