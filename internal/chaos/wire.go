package chaos

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"switchv/internal/p4rt"
)

// Event records one injected fault: which mode fired, at which global
// RPC index, on which request frame. Survival tests assert on Events to
// prove a schedule actually perturbed the wire (a chaos mode that never
// fires is decorative, not survived).
type Event struct {
	Index int    // global RPC index the fault fired at
	Mode  Mode   // which fault
	Kind  uint8  // request frame kind (p4rt.FrameWrite, ...)
	ID    uint64 // request id the fault landed on
}

func (e Event) String() string {
	return fmt.Sprintf("%s@%d(kind=%d,id=%d)", e.Mode, e.Index, e.Kind, e.ID)
}

// Wire is a frame-level man-in-the-middle between a p4rt client and
// server. Dial hands out in-process client connections (net.Pipe, no
// real network); Listen fronts a TCP address for out-of-process use.
// Every fresh request frame (retries and hellos excluded) consumes one
// index from the shared RPC counter, and the Schedule decides its fate.
//
// All perturbations are event-driven rather than timer-driven: a
// "latency spike" holds the response until the client's next request
// frame arrives (by which point the client has timed out and is
// retrying), so runs are deterministic without a single time.Sleep.
type Wire struct {
	sched   *Schedule
	backend func() (net.Conn, error)

	rpcIdx      atomic.Int64
	tornPending atomic.Bool

	restartMu sync.Mutex
	restart   func()

	mu     sync.Mutex
	conns  map[*wireConn]struct{}
	ln     net.Listener
	fired  []Event
	closed bool
}

// NewWire builds a wire over a backend dialer — typically a closure
// that opens a fresh server connection via p4rt.Server.ServeConn on one
// half of a net.Pipe and returns the other half.
func NewWire(sched *Schedule, backend func() (net.Conn, error)) *Wire {
	return &Wire{sched: sched, backend: backend, conns: map[*wireConn]struct{}{}}
}

// SetRestart installs the hook run when ModeRestart fires: it should
// restart the switch (losing pipeline config and table state) and reset
// the server's replay sessions, modelling a full device reboot.
func (w *Wire) SetRestart(hook func()) {
	w.restartMu.Lock()
	w.restart = hook
	w.restartMu.Unlock()
}

// Dial opens a chaos-injected client connection: the returned net.Conn
// speaks to the backend through the fault proxy. Use it both for the
// initial connection and as the client's redial hook so reconnects stay
// under chaos.
func (w *Wire) Dial() (net.Conn, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, errors.New("chaos: wire is closed")
	}
	w.mu.Unlock()
	b, err := w.backend()
	if err != nil {
		return nil, err
	}
	cli, proxySide := net.Pipe()
	w.run(proxySide, b)
	return cli, nil
}

// Listen fronts addr with the fault proxy: each accepted connection is
// paired with a fresh backend connection. Returns the bound address.
func (w *Wire) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		ln.Close()
		return nil, errors.New("chaos: wire is closed")
	}
	w.ln = ln
	w.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			b, err := w.backend()
			if err != nil {
				conn.Close()
				continue
			}
			w.run(conn, b)
		}
	}()
	return ln.Addr(), nil
}

// run starts the two relay loops for one client/backend pair.
func (w *Wire) run(client, backend net.Conn) {
	wc := &wireConn{w: w, client: client, backend: backend, fates: map[uint64]fate{}}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		client.Close()
		backend.Close()
		return
	}
	w.conns[wc] = struct{}{}
	w.mu.Unlock()
	go wc.clientLoop()
	go wc.serverLoop()
}

// Events returns the faults injected so far, ordered by RPC index.
func (w *Wire) Events() []Event {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Event, len(w.fired))
	copy(out, w.fired)
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

func (w *Wire) fire(e Event) {
	w.mu.Lock()
	w.fired = append(w.fired, e)
	w.mu.Unlock()
}

// Close severs all proxied connections and stops the listener.
func (w *Wire) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	ln := w.ln
	conns := make([]*wireConn, 0, len(w.conns))
	for wc := range w.conns { //detlint:allow maprange — teardown only; sever order is not observable
		conns = append(conns, wc)
	}
	w.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, wc := range conns {
		wc.sever()
	}
	return nil
}

func (w *Wire) drop(wc *wireConn) {
	w.mu.Lock()
	delete(w.conns, wc)
	w.mu.Unlock()
}

// fate is the scheduled destiny of one in-flight response.
type fate int

const (
	fateForward fate = iota // relay normally
	fateSever               // reset: sever the connection instead of relaying
	fateHold                // latency: hold until the client's next request
	fateDiscard             // drop / torn: discard the response
	fateDupHold             // dup: hold two copies, deliver both later
)

// wireConn relays one client/backend connection pair. clientLoop owns
// backend writes; client writes (relayed responses, packet-ins, and
// flushed held frames) are serialised by clientWrMu.
type wireConn struct {
	w       *Wire
	client  net.Conn
	backend net.Conn

	clientWrMu sync.Mutex
	severOnce  sync.Once

	mu    sync.Mutex
	fates map[uint64]fate
	held  []p4rt.RawFrame
}

func (wc *wireConn) sever() {
	wc.severOnce.Do(func() {
		wc.client.Close()
		wc.backend.Close()
		wc.w.drop(wc)
	})
}

func (wc *wireConn) setFate(id uint64, f fate) {
	wc.mu.Lock()
	wc.fates[id] = f
	wc.mu.Unlock()
}

func (wc *wireConn) takeFate(id uint64) fate {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	f, ok := wc.fates[id]
	if !ok {
		return fateForward
	}
	delete(wc.fates, id)
	return f
}

func (wc *wireConn) writeClient(f p4rt.RawFrame) error {
	wc.clientWrMu.Lock()
	defer wc.clientWrMu.Unlock()
	return p4rt.WriteRawFrame(wc.client, f)
}

// hold parks a response for later; flushHeld releases everything parked
// when the client's next request frame arrives.
func (wc *wireConn) hold(f p4rt.RawFrame, copies int) {
	wc.mu.Lock()
	for i := 0; i < copies; i++ {
		wc.held = append(wc.held, f)
	}
	wc.mu.Unlock()
}

func (wc *wireConn) flushHeld() {
	wc.mu.Lock()
	held := wc.held
	wc.held = nil
	wc.mu.Unlock()
	for _, f := range held {
		if err := wc.writeClient(f); err != nil {
			return
		}
	}
}

// clientLoop reads request frames from the client, assigns each fresh
// request a fate from the schedule, and forwards it to the backend.
// Retried requests pass through unfaulted (they don't consume schedule
// indices) — the schedule perturbs first deliveries; the hardening
// under test is what happens afterwards.
func (wc *wireConn) clientLoop() {
	defer wc.sever()
	for {
		f, err := p4rt.ReadRawFrame(wc.client)
		if err != nil {
			return
		}
		kind := f.Kind &^ p4rt.FrameRetryFlag
		isRetry := f.Kind&p4rt.FrameRetryFlag != 0
		if kind == p4rt.FrameHello {
			if err := p4rt.WriteRawFrame(wc.backend, f); err != nil {
				return
			}
			continue
		}
		// Any new request frame releases held responses: this is the
		// event-driven stand-in for "the delayed response finally arrives,
		// after the client has already timed out and moved on".
		wc.flushHeld()
		if isRetry {
			if err := p4rt.WriteRawFrame(wc.backend, f); err != nil {
				return
			}
			continue
		}
		idx := int(wc.w.rpcIdx.Add(1)) - 1
		mode := wc.w.sched.ActionAt(idx)
		// Torn writes only make sense on Write frames; a torn scheduled on
		// any other kind is deferred to the next unfaulted Write.
		if mode == ModeTorn && kind != p4rt.FrameWrite {
			wc.w.tornPending.Store(true)
			mode = ""
		}
		if mode == "" && kind == p4rt.FrameWrite && wc.w.tornPending.CompareAndSwap(true, false) {
			mode = ModeTorn
		}
		if mode != "" {
			wc.w.fire(Event{Index: idx, Mode: mode, Kind: kind, ID: f.ID})
		}
		switch mode {
		case ModeRestart:
			// Reboot the device before the request ever reaches it, then
			// sever: the client sees a dead connection and the switch comes
			// back empty.
			wc.w.restartMu.Lock()
			hook := wc.w.restart
			wc.w.restartMu.Unlock()
			if hook != nil {
				hook()
			}
			return
		case ModeReset:
			wc.setFate(f.ID, fateSever)
		case ModeLatency:
			wc.setFate(f.ID, fateHold)
		case ModeDrop:
			wc.setFate(f.ID, fateDiscard)
		case ModeDup:
			wc.setFate(f.ID, fateDupHold)
		case ModeTorn:
			// The server applies the write; only its ACK is lost.
			wc.setFate(f.ID, fateDiscard)
		}
		if err := p4rt.WriteRawFrame(wc.backend, f); err != nil {
			return
		}
	}
}

// serverLoop relays backend frames to the client, honouring each
// response's assigned fate. Packet-ins pass through untouched.
func (wc *wireConn) serverLoop() {
	defer wc.sever()
	for {
		f, err := p4rt.ReadRawFrame(wc.backend)
		if err != nil {
			return
		}
		if f.Kind != p4rt.FrameResponse {
			if err := wc.writeClient(f); err != nil {
				return
			}
			continue
		}
		switch wc.takeFate(f.ID) {
		case fateSever:
			return
		case fateHold:
			wc.hold(f, 1)
		case fateDupHold:
			wc.hold(f, 2)
		case fateDiscard:
			// dropped on the floor
		default:
			if err := wc.writeClient(f); err != nil {
				return
			}
		}
	}
}
