// Package chaos is a deterministic fault-injection transport for the
// p4rt wire: a frame-level proxy (Wire) sits between a p4rt.Client and
// a p4rt.Server and perturbs traffic according to a seed-derived
// Schedule — connection resets mid-RPC, response latency past the
// client's deadline, dropped and duplicated responses, torn writes
// (the server applies the batch but the ACK is lost), and full switch
// restarts with table-state loss.
//
// Everything is a pure function of (seed, schedule spec, RPC index):
// no wall clocks, no process-global randomness, no real network.
// "Latency" is event-based — a held response is released when the
// client's next request frame arrives — so even timeout-shaped faults
// reproduce bit-identically across machines and runs. The survival
// bijection matrix (survival_test.go) holds the package honest: every
// mode must defeat the unhardened stack and be survived by the
// hardened one with a byte-identical report.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"switchv/internal/fuzzer"
)

// Mode identifies one chaos-injection mode.
type Mode string

// The injectable chaos modes.
const (
	// ModeReset severs the connection mid-RPC: the request was already
	// forwarded (and applied), but the response never arrives and the
	// transport is gone.
	ModeReset Mode = "reset"
	// ModeLatency delays the response past the client's deadline; the
	// stale response is delivered after the client has moved on.
	ModeLatency Mode = "latency"
	// ModeDrop discards the response outright; the connection stays up.
	ModeDrop Mode = "drop"
	// ModeDup withholds the response past the deadline, then delivers it
	// twice — a retransmission storm.
	ModeDup Mode = "dup"
	// ModeTorn targets the next Write RPC: the server applies the batch
	// but the ACK is lost (the classic torn-write hazard).
	ModeTorn Mode = "torn"
	// ModeRestart severs the connection and invokes the wire's restart
	// hook: the switch loses its pipeline config and all table state.
	ModeRestart Mode = "restart"
)

// ModeMeta describes one mode for docs and flag help.
type ModeMeta struct {
	Mode Mode
	// Injects describes the wire-level perturbation.
	Injects string
	// Survives names the hardening layer that rides it out.
	Survives string
}

var registry = []ModeMeta{
	{ModeReset, "connection severed after the request is applied, before the ACK",
		"client redial + same-id retry served from the server's replay cache"},
	{ModeLatency, "response held past the RPC deadline, delivered stale",
		"in-RPC retry with capped backoff; the stale duplicate is discarded"},
	{ModeDrop, "response discarded; connection stays up",
		"in-RPC retry served from the server's replay cache"},
	{ModeDup, "response held past the deadline, then delivered twice",
		"request-id matching absorbs duplicate deliveries"},
	{ModeTorn, "write applied by the server but its ACK lost",
		"idempotent same-id retry, or read-back reconciliation"},
	{ModeRestart, "switch restart: pipeline config and table state lost",
		"self-healing device: re-push pipeline, replay the entry log"},
}

// AllModes lists every registered mode, sorted.
func AllModes() []Mode {
	out := make([]Mode, 0, len(registry))
	for _, m := range registry {
		out = append(out, m.Mode)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Meta returns a mode's registry entry.
func Meta(m Mode) (ModeMeta, bool) {
	for _, e := range registry {
		if e.Mode == m {
			return e, true
		}
	}
	return ModeMeta{}, false
}

// modeOrdinal gives each mode a stable small integer for the periodic
// hash, so two modes sharing a period fire at unrelated indices.
func modeOrdinal(m Mode) int {
	for i, e := range registry {
		if e.Mode == m {
			return i
		}
	}
	return len(registry)
}

// Rule fires one mode either at an absolute RPC index (At >= 0) or
// pseudo-randomly about once every Period RPCs (Period > 0), derived
// from the schedule seed.
type Rule struct {
	Mode   Mode
	At     int // absolute RPC index; -1 when periodic
	Period int // average firing period; 0 when absolute
}

func (r Rule) String() string {
	if r.Period > 0 {
		return fmt.Sprintf("%s:/%d", r.Mode, r.Period)
	}
	return fmt.Sprintf("%s:@%d", r.Mode, r.At)
}

// Schedule is a seeded set of chaos rules. The zero value (and nil)
// injects nothing.
type Schedule struct {
	Seed  int64
	Rules []Rule
}

// Parse builds a schedule from a comma-separated spec. Each element is
// mode:@N (fire exactly at RPC index N) or mode:/P (fire pseudo-randomly
// about once every P RPCs, derived from seed). Example:
//
//	reset:@5,drop:/40,restart:@200
func Parse(spec string, seed int64) (*Schedule, error) {
	s := &Schedule{Seed: seed}
	if strings.TrimSpace(spec) == "" {
		return s, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, arg, ok := strings.Cut(part, ":")
		if !ok || arg == "" {
			return nil, fmt.Errorf("chaos: rule %q: want mode:@N or mode:/P", part)
		}
		mode := Mode(name)
		if _, known := Meta(mode); !known {
			return nil, fmt.Errorf("chaos: unknown mode %q (have %v)", name, AllModes())
		}
		switch arg[0] {
		case '@':
			n, err := strconv.Atoi(arg[1:])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("chaos: rule %q: bad index %q", part, arg[1:])
			}
			s.Rules = append(s.Rules, Rule{Mode: mode, At: n})
		case '/':
			p, err := strconv.Atoi(arg[1:])
			if err != nil || p < 1 {
				return nil, fmt.Errorf("chaos: rule %q: bad period %q", part, arg[1:])
			}
			s.Rules = append(s.Rules, Rule{Mode: mode, At: -1, Period: p})
		default:
			return nil, fmt.Errorf("chaos: rule %q: spec must start with '@' (index) or '/' (period)", part)
		}
	}
	return s, nil
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool { return s == nil || len(s.Rules) == 0 }

// Has reports whether any rule uses the given mode.
func (s *Schedule) Has(m Mode) bool {
	if s == nil {
		return false
	}
	for _, r := range s.Rules {
		if r.Mode == m {
			return true
		}
	}
	return false
}

func (s *Schedule) String() string {
	if s.Empty() {
		return ""
	}
	parts := make([]string, len(s.Rules))
	for i, r := range s.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}

// ActionAt returns the mode to inject at RPC index idx ("" = none), a
// pure function of (Seed, Rules, idx). The first matching rule wins.
// Periodic rules hash (seed, idx, mode) through fuzzer.DeriveSeed —
// the same splitmix64 step the sharded campaign engine derives its
// per-shard seeds with — so firings are well-spread but exactly
// reproducible from the seed.
func (s *Schedule) ActionAt(idx int) Mode {
	if s.Empty() || idx < 0 {
		return ""
	}
	for _, r := range s.Rules {
		if r.Period <= 0 {
			if idx == r.At {
				return r.Mode
			}
			continue
		}
		h := uint64(fuzzer.DeriveSeed(fuzzer.DeriveSeed(s.Seed, idx), modeOrdinal(r.Mode)))
		if h%uint64(r.Period) == 0 {
			return r.Mode
		}
	}
	return ""
}

// Derive returns a copy of the schedule reseeded for a shard, mirroring
// the campaign engine's per-shard seed derivation so each shard's chaos
// stream is independent but reproducible.
func (s *Schedule) Derive(shard int) *Schedule {
	if s == nil {
		return nil
	}
	return &Schedule{Seed: fuzzer.DeriveSeed(s.Seed, shard), Rules: s.Rules}
}
