package chaos

import (
	"net"
	"sync"
	"testing"
	"time"

	"switchv/internal/p4rt"
)

// countDevice is a minimal p4rt.Device that counts how many times each
// RPC actually executed — the ground truth for the exactly-once
// assertions (a fault that causes double execution shows up as an extra
// count even when the client-visible responses look fine).
type countDevice struct {
	mu      sync.Mutex
	writes  int
	reads   int
	entries []p4rt.TableEntry
	pins    chan p4rt.PacketIn
}

func newCountDevice() *countDevice {
	return &countDevice{pins: make(chan p4rt.PacketIn)}
}

func (d *countDevice) SetForwardingPipelineConfig(p4rt.ForwardingPipelineConfig) error { return nil }

func (d *countDevice) Write(req p4rt.WriteRequest) p4rt.WriteResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writes++
	resp := p4rt.WriteResponse{}
	for _, u := range req.Updates {
		d.entries = append(d.entries, u.Entry)
		resp.Statuses = append(resp.Statuses, p4rt.OKStatus)
	}
	return resp
}

func (d *countDevice) Read(p4rt.ReadRequest) (p4rt.ReadResponse, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reads++
	return p4rt.ReadResponse{Entries: append([]p4rt.TableEntry(nil), d.entries...)}, nil
}

func (d *countDevice) PacketOut(p4rt.PacketOut) error  { return nil }
func (d *countDevice) PacketIns() <-chan p4rt.PacketIn { return d.pins }
func (d *countDevice) counts() (writes, entries int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes, len(d.entries)
}

// fastRetry is the hardened client's retry schedule: real backoff math,
// no real sleeping.
func fastRetry() p4rt.Backoff {
	return p4rt.Backoff{Initial: time.Millisecond, Max: 4 * time.Millisecond, Attempts: 6,
		Sleep: func(time.Duration) {}}
}

// pipeBackend returns a Wire backend dialer serving srv over net.Pipe.
func pipeBackend(srv *p4rt.Server) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		c1, c2 := net.Pipe()
		if err := srv.ServeConn(c2); err != nil {
			return nil, err
		}
		return c1, nil
	}
}

// wirePair builds (hardened client) -> chaos wire -> server -> device.
func wirePair(t *testing.T, sched *Schedule) (*p4rt.Client, *countDevice, *Wire) {
	t.Helper()
	dev := newCountDevice()
	srv := p4rt.NewServer(dev, nil)
	wire := NewWire(sched, pipeBackend(srv))
	conn, err := wire.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cli := p4rt.NewClient(conn)
	cli.SetRedial(wire.Dial)
	cli.SetRetry(fastRetry())
	cli.SetTimeout(100 * time.Millisecond)
	t.Cleanup(func() {
		cli.Close()
		wire.Close()
		srv.Close()
		close(dev.pins)
	})
	return cli, dev, wire
}

// TestWireExactlyOnce: for every non-restart mode, a hardened client
// sees every RPC succeed while the device executes each write exactly
// once — the retry/replay-cache idempotency contract under each fault.
func TestWireExactlyOnce(t *testing.T) {
	for _, mode := range []Mode{ModeReset, ModeLatency, ModeDrop, ModeDup, ModeTorn} {
		t.Run(string(mode), func(t *testing.T) {
			sched, err := Parse(string(mode)+":@2", 1)
			if err != nil {
				t.Fatal(err)
			}
			cli, dev, wire := wirePair(t, sched)
			const n = 8
			for i := 0; i < n; i++ {
				resp := cli.Write(p4rt.WriteRequest{Updates: []p4rt.Update{
					{Type: p4rt.Insert, Entry: p4rt.TableEntry{TableID: uint32(100 + i)}}}})
				if !resp.OK() {
					t.Fatalf("write %d under %s: %s", i, mode, resp.String())
				}
			}
			rr, err := cli.Read(p4rt.ReadRequest{})
			if err != nil {
				t.Fatalf("read under %s: %v", mode, err)
			}
			if len(rr.Entries) != n {
				t.Errorf("%d entries read back, want %d (duplicate or lost execution)", len(rr.Entries), n)
			}
			seen := map[uint32]int{}
			for _, e := range rr.Entries {
				seen[e.TableID]++
			}
			for id, c := range seen {
				if c != 1 {
					t.Errorf("entry %d applied %d times", id, c)
				}
			}
			if writes, entries := dev.counts(); writes != n || entries != n {
				t.Errorf("device executed %d writes holding %d entries, want %d/%d", writes, entries, n, n)
			}
			ev := wire.Events()
			if len(ev) != 1 || ev[0].Mode != mode || ev[0].Index != 2 {
				t.Errorf("events = %v, want exactly one %s at index 2", ev, mode)
			}
		})
	}
}

// TestWireTornDefersToNextWrite: a torn fault scheduled on a Read frame
// must slide to the next Write (tearing a read is meaningless — there is
// no state change whose ACK could be lost).
func TestWireTornDefersToNextWrite(t *testing.T) {
	sched, err := Parse("torn:@2", 1)
	if err != nil {
		t.Fatal(err)
	}
	cli, dev, wire := wirePair(t, sched)
	// Index 0, 1: writes. Index 2: a Read — torn defers. Index 3: the
	// write that inherits the deferred torn.
	for i := 0; i < 2; i++ {
		if resp := cli.Write(p4rt.WriteRequest{Updates: []p4rt.Update{
			{Type: p4rt.Insert, Entry: p4rt.TableEntry{TableID: uint32(i)}}}}); !resp.OK() {
			t.Fatalf("write %d: %s", i, resp.String())
		}
	}
	if _, err := cli.Read(p4rt.ReadRequest{}); err != nil {
		t.Fatalf("read at the torn index must pass unfaulted: %v", err)
	}
	if resp := cli.Write(p4rt.WriteRequest{Updates: []p4rt.Update{
		{Type: p4rt.Insert, Entry: p4rt.TableEntry{TableID: 9}}}}); !resp.OK() {
		t.Fatalf("write after deferral: %s", resp.String())
	}
	if writes, entries := dev.counts(); writes != 3 || entries != 3 {
		t.Errorf("device executed %d writes / %d entries, want 3/3", writes, entries)
	}
	ev := wire.Events()
	if len(ev) != 1 || ev[0].Mode != ModeTorn || ev[0].Index != 3 || ev[0].Kind != p4rt.FrameWrite {
		t.Errorf("events = %v, want one torn on the Write at index 3", ev)
	}
}

// TestWireRestartFiresHook: restart severs the connection and runs the
// hook before the faulted request reaches the device; a redialing client
// still completes every RPC.
func TestWireRestartFiresHook(t *testing.T) {
	sched, err := Parse("restart:@2", 1)
	if err != nil {
		t.Fatal(err)
	}
	dev := newCountDevice()
	srv := p4rt.NewServer(dev, nil)
	wire := NewWire(sched, pipeBackend(srv))
	var hooks int
	var hookMu sync.Mutex
	wire.SetRestart(func() {
		hookMu.Lock()
		hooks++
		hookMu.Unlock()
		srv.ResetSessions()
	})
	conn, err := wire.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cli := p4rt.NewClient(conn)
	cli.SetRedial(wire.Dial)
	cli.SetRetry(fastRetry())
	cli.SetTimeout(100 * time.Millisecond)
	defer func() {
		cli.Close()
		wire.Close()
		srv.Close()
		close(dev.pins)
	}()

	for i := 0; i < 5; i++ {
		if resp := cli.Write(p4rt.WriteRequest{Updates: []p4rt.Update{
			{Type: p4rt.Insert, Entry: p4rt.TableEntry{TableID: uint32(i)}}}}); !resp.OK() {
			t.Fatalf("write %d across restart: %s", i, resp.String())
		}
	}
	hookMu.Lock()
	got := hooks
	hookMu.Unlock()
	if got != 1 {
		t.Errorf("restart hook ran %d times, want 1", got)
	}
	ev := wire.Events()
	if len(ev) != 1 || ev[0].Mode != ModeRestart || ev[0].Index != 2 {
		t.Errorf("events = %v, want one restart at index 2", ev)
	}
}

// TestWireDefeatsUnhardenedClient: the same faults against a client with
// no retry/redial surface as RPC failures — proof the wire genuinely
// perturbs the transport (and that surviving it requires the hardening).
func TestWireDefeatsUnhardenedClient(t *testing.T) {
	for _, mode := range []Mode{ModeReset, ModeLatency, ModeDrop, ModeTorn} {
		t.Run(string(mode), func(t *testing.T) {
			sched, err := Parse(string(mode)+":@1", 1)
			if err != nil {
				t.Fatal(err)
			}
			dev := newCountDevice()
			srv := p4rt.NewServer(dev, nil)
			wire := NewWire(sched, pipeBackend(srv))
			conn, err := wire.Dial()
			if err != nil {
				t.Fatal(err)
			}
			cli := p4rt.NewClient(conn)
			cli.SetTimeout(50 * time.Millisecond) // terminate, don't hang
			defer func() {
				cli.Close()
				wire.Close()
				srv.Close()
				close(dev.pins)
			}()

			if resp := cli.Write(p4rt.WriteRequest{Updates: []p4rt.Update{
				{Type: p4rt.Insert, Entry: p4rt.TableEntry{TableID: 1}}}}); !resp.OK() {
				t.Fatalf("unfaulted write failed: %s", resp.String())
			}
			resp := cli.Write(p4rt.WriteRequest{Updates: []p4rt.Update{
				{Type: p4rt.Insert, Entry: p4rt.TableEntry{TableID: 2}}}})
			if resp.OK() {
				t.Fatalf("faulted RPC succeeded on an unhardened client under %s", mode)
			}
		})
	}
}
