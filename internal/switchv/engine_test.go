package switchv

import (
	"reflect"
	"testing"

	"switchv/internal/p4/p4info"
	"switchv/internal/p4/pdpi"
	"switchv/internal/switchsim"
	"switchv/internal/symbolic"
	"switchv/internal/testutil"
	"switchv/models"
)

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want EngineKind
		ok   bool
	}{
		{"", EngineCompiled, true},
		{"compiled", EngineCompiled, true},
		{"interp", EngineInterp, true},
		{"bmv2", "", false},
		{"Compiled", "", false},
	} {
		got, err := ParseEngine(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

// TestEngineConstructionsPerWorker is the regression test for the
// per-packet-simulator bug: the data-plane compare phase must build one
// engine per worker, not one per packet.
func TestEngineConstructionsPerWorker(t *testing.T) {
	for _, workers := range []int{1, 3} {
		h, _ := newHarness(t, "middleblock")
		before := EngineConstructions()
		rep, err := h.RunDataPlane(fixtureEntries("middleblock"), DataPlaneOptions{
			Coverage: symbolic.CoverBranches,
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := EngineConstructions() - before
		if got != int64(workers) {
			t.Errorf("workers=%d: %d engine constructions for %d packets, want one per worker",
				workers, got, rep.Packets)
		}
		if rep.Packets <= workers {
			t.Fatalf("campaign too shallow to distinguish per-worker from per-packet: %d packets", rep.Packets)
		}
	}
}

// TestEngineParityDataPlane runs the same conformant-switch campaign
// under both engines and requires identical reports.
func TestEngineParityDataPlane(t *testing.T) {
	for _, role := range models.Names() {
		t.Run(role, func(t *testing.T) {
			var reps []*DataPlaneReport
			for _, eng := range []EngineKind{EngineInterp, EngineCompiled} {
				h, _ := newHarness(t, role)
				rep, err := h.RunDataPlane(fixtureEntries(role), DataPlaneOptions{
					Coverage: symbolic.CoverBranches,
					Churn:    true,
					Engine:   eng,
				})
				if err != nil {
					t.Fatalf("engine %s: %v", eng, err)
				}
				reps = append(reps, rep)
			}
			if !reflect.DeepEqual(reps[0].Incidents, reps[1].Incidents) {
				t.Errorf("incidents diverge:\ninterp:   %v\ncompiled: %v", reps[0].Incidents, reps[1].Incidents)
			}
			if reps[0].Packets != reps[1].Packets || reps[0].Covered != reps[1].Covered {
				t.Errorf("report shape diverges: interp %d pkts/%d covered, compiled %d pkts/%d covered",
					reps[0].Packets, reps[0].Covered, reps[1].Packets, reps[1].Covered)
			}
		})
	}
}

// TestEngineFaultParity re-runs every data-plane fault-matrix recipe
// under both engines: each fault's incident list must be identical, so
// engine choice cannot change what the fleet detects.
func TestEngineFaultParity(t *testing.T) {
	for _, fault := range switchsim.AllFaults() {
		rc := matrixRecipes[fault]
		if rc.tool != "p4-symbolic" {
			continue
		}
		t.Run(string(fault), func(t *testing.T) {
			role := rc.role
			if role == "" {
				role = "middleblock"
			}
			var got [][]Incident
			for _, eng := range []EngineKind{EngineInterp, EngineCompiled} {
				h, sw := newHarness(t, role, fault)
				if rc.prep != nil {
					rc.prep(t, h, sw)
				}
				prog := models.MustLoad(role)
				store := pdpi.NewStore()
				for _, fix := range rc.fixtures {
					fix(prog, store)
				}
				entries := testutil.InstallOrder(p4info.New(prog), store)
				rep, err := h.RunDataPlane(entries, DataPlaneOptions{
					Coverage: symbolic.CoverBranches,
					Churn:    rc.churn,
					Engine:   eng,
				})
				if err != nil {
					t.Fatalf("engine %s: %v", eng, err)
				}
				got = append(got, rep.Incidents)
			}
			if len(got[0]) == 0 {
				t.Fatalf("fault %s not detected", fault)
			}
			if !reflect.DeepEqual(got[0], got[1]) {
				t.Errorf("fault %s: incidents diverge between engines:\ninterp:   %v\ncompiled: %v",
					fault, got[0], got[1])
			}
		})
	}
}
