package switchv

import (
	"strings"

	"switchv/internal/p4/p4info"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4rt"
)

// isTransportFailure recognises the response shape p4rt.Client produces
// when an RPC dies in transit (one Internal "transport: ..." status
// standing in for the whole batch): the write may or may not have been
// applied — the classic torn-write ambiguity.
func isTransportFailure(resp p4rt.WriteResponse) bool {
	return len(resp.Statuses) == 1 &&
		resp.Statuses[0].Code == p4rt.Internal &&
		strings.HasPrefix(resp.Statuses[0].Message, "transport:")
}

// reconcileWriteResponse resolves a torn write by read-back: given the
// pre-batch state the oracle last adopted and the post-batch observed
// state, it synthesizes the per-update statuses the switch must have
// produced. An update whose effect is visible in the observed state was
// applied (OK); one whose precondition already failed against the
// pre-batch state was rejected with the specified code (AlreadyExists /
// NotFound); anything else is Unavailable — "outcome unknown or not
// applied" — which the oracle (with AllowUnavailable) exempts from
// judgement and replay. This is how a controller distinguishes "the ACK
// was lost but the write landed" from "the write never happened".
func reconcileWriteResponse(info *p4info.Info, prev *pdpi.Store, observed p4rt.ReadResponse, req p4rt.WriteRequest) p4rt.WriteResponse {
	// Canonical signatures of the observed post-batch entries, by key.
	obs := map[string]string{}
	for i := range observed.Entries {
		if e, err := p4rt.FromWire(info, &observed.Entries[i]); err == nil {
			obs[e.Key()] = e.String()
		}
	}
	// Working copy of the pre-batch state, mutated as updates are deemed
	// applied, so in-batch sequences (insert X then delete X is the only
	// ambiguous shape) reconcile in order.
	working := map[string]bool{}
	for _, e := range prev.All(info.Program()) {
		working[e.Key()] = true
	}
	unavail := p4rt.Statusf(p4rt.Unavailable, "reconciled: outcome unknown or not applied")
	resp := p4rt.WriteResponse{Statuses: make([]p4rt.Status, len(req.Updates))}
	for i := range req.Updates {
		u := &req.Updates[i]
		e, err := p4rt.FromWire(info, &u.Entry)
		if err != nil {
			// Undecodable updates were certainly rejected, but the exact
			// status code is lost with the ACK; Unavailable skips the
			// pinned-code check.
			resp.Statuses[i] = unavail
			continue
		}
		key, val := e.Key(), e.String()
		switch u.Type {
		case p4rt.Insert:
			switch {
			case working[key]:
				resp.Statuses[i] = p4rt.Statusf(p4rt.AlreadyExists, "reconciled: entry existed before the batch")
			case obs[key] == val:
				resp.Statuses[i] = p4rt.OKStatus
				working[key] = true
			default:
				resp.Statuses[i] = unavail
			}
		case p4rt.Modify:
			switch {
			case !working[key]:
				resp.Statuses[i] = p4rt.Statusf(p4rt.NotFound, "reconciled: no such entry before the batch")
			case obs[key] == val:
				resp.Statuses[i] = p4rt.OKStatus
			default:
				resp.Statuses[i] = unavail
			}
		case p4rt.Delete:
			switch {
			case !working[key]:
				resp.Statuses[i] = p4rt.Statusf(p4rt.NotFound, "reconciled: no such entry before the batch")
			case obs[key] == "":
				resp.Statuses[i] = p4rt.OKStatus
				delete(working, key)
			default:
				resp.Statuses[i] = unavail
			}
		default:
			resp.Statuses[i] = unavail
		}
	}
	return resp
}
