package switchv

import (
	"fmt"
	"sync/atomic"

	"switchv/internal/bmv2"
	"switchv/internal/p4/compile"
	"switchv/internal/p4/ir"
	"switchv/internal/p4/pdpi"
)

// EngineKind names a reference-simulator engine implementation. The
// engines are differentially tested to be outcome-identical; the kind
// only changes how fast the model executes.
type EngineKind string

const (
	// EngineCompiled lowers the IR to closure trees at load time
	// (internal/p4/compile). It is the default: same outcomes as the
	// interpreter at a fraction of the per-packet cost.
	EngineCompiled EngineKind = "compiled"
	// EngineInterp walks the IR directly (internal/bmv2). It is the
	// escape hatch: slower, but with no compilation step between the
	// model and execution.
	EngineInterp EngineKind = "interp"
)

// ParseEngine validates an -engine flag value. The empty string selects
// the default (compiled).
func ParseEngine(s string) (EngineKind, error) {
	switch EngineKind(s) {
	case "", EngineCompiled:
		return EngineCompiled, nil
	case EngineInterp:
		return EngineInterp, nil
	default:
		return "", fmt.Errorf("invalid engine %q (want %s or %s)", s, EngineInterp, EngineCompiled)
	}
}

// engineConstructions counts NewEngine calls process-wide. The
// data-plane compare loop is asserted (by regression test) to construct
// one engine per worker, not one per packet.
var engineConstructions atomic.Int64

// EngineConstructions returns the process-wide engine construction
// count. Test hook.
func EngineConstructions() int64 { return engineConstructions.Load() }

// NewEngine builds a reference simulator of the given kind over the
// program and store. Engines are single-goroutine; concurrent workers
// build one each and may share the store.
func NewEngine(kind EngineKind, prog *ir.Program, store *pdpi.Store) (bmv2.Simulator, error) {
	engineConstructions.Add(1)
	switch kind {
	case EngineInterp:
		return bmv2.New(prog, store)
	case EngineCompiled, "":
		return compile.New(prog, store)
	default:
		return nil, fmt.Errorf("switchv: unknown engine %q", kind)
	}
}
