package switchv

import (
	"strings"
	"testing"

	"switchv/internal/coverage"
	"switchv/internal/fuzzer"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4/pdpi"
	"switchv/internal/switchsim"
	"switchv/internal/symbolic"
	"switchv/internal/testutil"
	"switchv/models"
)

func newHarness(t *testing.T, role string, faults ...switchsim.Fault) (*Harness, *switchsim.Switch) {
	t.Helper()
	sw := switchsim.New(role, faults...)
	info := p4info.New(models.MustLoad(role))
	h := New(info, sw, sw)
	if err := h.PushPipeline(); err != nil {
		t.Fatal(err)
	}
	return h, sw
}

func fixtureEntries(role string) []*pdpi.Entry {
	prog := models.MustLoad(role)
	store := pdpi.NewStore()
	testutil.RoutingFixture(prog, store)
	return testutil.InstallOrder(p4info.New(prog), store)
}

// smallFuzz keeps unit-test campaigns quick.
var smallFuzz = fuzzer.Options{Seed: 1, NumRequests: 40, UpdatesPerRequest: 20}

// TestNoFalsePositivesControlPlane is the oracle-soundness property: a
// conformant switch produces zero incidents under fuzzing.
func TestNoFalsePositivesControlPlane(t *testing.T) {
	for _, role := range models.Names() {
		t.Run(role, func(t *testing.T) {
			h, _ := newHarness(t, role)
			rep, err := h.RunControlPlane(smallFuzz)
			if err != nil {
				t.Fatal(err)
			}
			for _, inc := range rep.Incidents {
				t.Errorf("false positive: %s", inc)
			}
			if rep.Updates == 0 || rep.MustReject == 0 || rep.MustAccept == 0 {
				t.Errorf("campaign too shallow: %+v", rep)
			}
			t.Logf("%s: %d updates, %d must-accept, %d must-reject, %d may-reject",
				role, rep.Updates, rep.MustAccept, rep.MustReject, rep.MayReject)
		})
	}
}

// TestNoFalsePositivesDataPlane: a conformant switch's behavior is always
// in the model's valid set.
func TestNoFalsePositivesDataPlane(t *testing.T) {
	for _, role := range models.Names() {
		t.Run(role, func(t *testing.T) {
			h, _ := newHarness(t, role)
			rep, err := h.RunDataPlane(fixtureEntries(role), DataPlaneOptions{Coverage: symbolic.CoverBranches, Churn: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, inc := range rep.Incidents {
				t.Errorf("false positive: %s", inc)
			}
			if rep.Packets == 0 {
				t.Error("no packets generated")
			}
			t.Logf("%s: %d goals, %d covered, %d packets", role, rep.Goals, rep.Covered, rep.Packets)
		})
	}
}

// Fault-detection tests live in matrix_test.go: the matrix covers every
// fault in switchsim's registry, not just a curated subset.

// TestControlPlaneReportsCoverage: every campaign (guided or not) carries
// a final snapshot and a per-batch trajectory.
func TestControlPlaneReportsCoverage(t *testing.T) {
	h, _ := newHarness(t, "middleblock")
	rep, err := h.RunControlPlane(smallFuzz)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage == nil {
		t.Fatal("report has no coverage snapshot")
	}
	if rep.Coverage.Covered == 0 {
		t.Error("campaign covered nothing")
	}
	if len(rep.Trajectory) != rep.Batches {
		t.Fatalf("trajectory has %d samples for %d batches", len(rep.Trajectory), rep.Batches)
	}
	for i := 1; i < len(rep.Trajectory); i++ {
		if rep.Trajectory[i].Points < rep.Trajectory[i-1].Points ||
			rep.Trajectory[i].Tables < rep.Trajectory[i-1].Tables {
			t.Fatalf("trajectory not monotone at batch %d: %+v -> %+v",
				i, rep.Trajectory[i-1], rep.Trajectory[i])
		}
	}
	if last := rep.Trajectory[len(rep.Trajectory)-1]; int64(rep.Coverage.Covered) < last.Points {
		t.Errorf("final snapshot (%d) behind trajectory (%d)", rep.Coverage.Covered, last.Points)
	}
}

// TestPlateauEarlyStop: the control-plane coverage universe is finite, so
// a long enough campaign must hit a plateau and stop early.
func TestPlateauEarlyStop(t *testing.T) {
	h, _ := newHarness(t, "middleblock")
	opts := fuzzer.Options{Seed: 5, NumRequests: 400, UpdatesPerRequest: 20, PlateauBatches: 8}
	rep, err := h.RunControlPlane(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.PlateauStopped {
		t.Fatalf("campaign ran all %d batches without plateauing", rep.Batches)
	}
	if rep.Batches >= opts.NumRequests {
		t.Fatalf("plateau stop did not shorten the campaign (%d batches)", rep.Batches)
	}
	t.Logf("plateaued after %d batches, %d points covered", rep.Batches, rep.Coverage.Covered)
}

// TestDataPlaneHarvestsCoverage: a data-plane run credits table hits,
// action invocations, and symbolic goals into an injected map.
func TestDataPlaneHarvestsCoverage(t *testing.T) {
	h, _ := newHarness(t, "middleblock")
	cov := coverage.NewMap(h.Info)
	universeBefore := cov.Universe()
	rep, err := h.RunDataPlane(fixtureEntries("middleblock"), DataPlaneOptions{
		Coverage:    symbolic.CoverBranches,
		CoverageMap: cov,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage == nil {
		t.Fatal("report has no coverage snapshot")
	}
	if cov.Universe() <= universeBefore {
		t.Error("symbolic goals were not registered into the universe")
	}
	hits, invokes, goals := 0, 0, 0
	for key, n := range rep.Coverage.Counts {
		if n == 0 {
			continue
		}
		switch {
		case strings.HasPrefix(key, "table:") && strings.HasSuffix(key, ":hit"):
			hits++
		case strings.HasPrefix(key, "action:") && strings.HasSuffix(key, ":invoke"):
			invokes++
		case strings.HasPrefix(key, "goal:"):
			goals++
		}
	}
	if hits == 0 || invokes == 0 || goals == 0 {
		t.Errorf("coverage not harvested: %d table hits, %d action invokes, %d goals",
			hits, invokes, goals)
	}
}

func TestSymbolicCacheSpeedsSecondRun(t *testing.T) {
	h, _ := newHarness(t, "middleblock")
	cache := symbolic.NewCache()
	entries := fixtureEntries("middleblock")
	first, err := h.RunDataPlane(entries, DataPlaneOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first run hit the cache")
	}
	// Fresh switch, same entries: warm cache.
	h2, _ := newHarness(t, "middleblock")
	second, err := h2.RunDataPlane(entries, DataPlaneOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("second run missed the cache")
	}
	if len(second.Incidents) > 0 {
		t.Errorf("cached packets produced incidents: %v", second.Incidents)
	}
	if second.GenElapsed > first.GenElapsed {
		t.Errorf("cached generation (%v) slower than cold (%v)", second.GenElapsed, first.GenElapsed)
	}
}

func TestMultipleFaultsStillZeroWhenDisabled(t *testing.T) {
	// Guard against fault plumbing leaking into the default path: enabling
	// then testing a *different* role must stay clean.
	h, _ := newHarness(t, "middleblock")
	rep, err := h.RunDataPlane(fixtureEntries("middleblock"), DataPlaneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Incidents) != 0 {
		t.Errorf("incidents on clean switch: %v", rep.Incidents)
	}
}
