package switchv

import (
	"strings"
	"testing"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4/parser"
	"switchv/internal/p4rt"
)

// defectiveModel carries an error-severity defect (P4C004: default
// action outside the action list), so the preflight gate must refuse
// to launch any campaign over it.
const defectiveModel = `
struct m_t { bit<8> a; }
control c(inout m_t m) {
  action nop() { no_op(); }
  action other() { no_op(); }
  table t {
    key = { m.a : exact; }
    actions = { nop; }
    default_action = other;
  }
  apply { t.apply(); }
}
`

func defectiveInfo(t *testing.T) *p4info.Info {
	t.Helper()
	ast, err := parser.Parse(defectiveModel)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Compile(ast)
	if err != nil {
		t.Fatal(err)
	}
	return p4info.New(prog)
}

// TestPrecheckRefusesDefectiveModel: with the default mode, both
// campaign entry points refuse before touching the switch (the device
// is nil — any contact would panic).
func TestPrecheckRefusesDefectiveModel(t *testing.T) {
	h := New(defectiveInfo(t), nil, nil)
	if _, err := h.RunControlPlane(smallFuzz); err == nil || !strings.Contains(err.Error(), "preflight") {
		t.Errorf("RunControlPlane err = %v, want preflight refusal", err)
	}
	if _, err := h.RunDataPlane(nil, DataPlaneOptions{}); err == nil || !strings.Contains(err.Error(), "P4C004") {
		t.Errorf("RunDataPlane err = %v, want preflight refusal naming P4C004", err)
	}
}

// TestPrecheckWarnOverrides: warn mode reports but never refuses, and
// off mode skips the analysis entirely.
func TestPrecheckWarnOverrides(t *testing.T) {
	h := New(defectiveInfo(t), nil, nil)
	h.Precheck = PrecheckWarn
	rep, err := h.precheckGate("p4-fuzzer")
	if err != nil {
		t.Errorf("warn mode refused: %v", err)
	}
	if rep == nil || !rep.HasErrors() {
		t.Errorf("warn mode lost the report: %+v", rep)
	}
	h.Precheck = PrecheckOff
	if rep := h.PrecheckReport(); rep != nil {
		t.Errorf("off mode still analyzed: %+v", rep)
	}
}

// TestParallelCampaignRefusesBeforeBuildingStacks: the gate fires once,
// before any shard stack is built.
func TestParallelCampaignRefusesBeforeBuildingStacks(t *testing.T) {
	built := 0
	_, err := RunParallelCampaign(defectiveInfo(t), ParallelOptions{
		Factory: func(shard int) (p4rt.Device, func(), error) {
			built++
			return nil, nil, nil
		},
		Fuzz: smallFuzz,
	})
	if err == nil || !strings.Contains(err.Error(), "preflight") {
		t.Errorf("err = %v, want preflight refusal", err)
	}
	if built != 0 {
		t.Errorf("factory built %d stacks before the gate fired", built)
	}
}

// TestPrecheckCleanModelLaunches: the gate is invisible on a clean
// model — the standard harness fixture runs a campaign with the
// default (enforcing) mode.
func TestPrecheckCleanModelLaunches(t *testing.T) {
	h, _ := newHarness(t, "middleblock")
	if h.Precheck != PrecheckOn {
		t.Fatalf("default mode = %v, want PrecheckOn", h.Precheck)
	}
	rep, err := h.RunControlPlane(smallFuzz)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Incidents) != 0 {
		t.Errorf("clean run produced incidents: %v", rep.Incidents)
	}
}
