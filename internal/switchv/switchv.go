// Package switchv is the SwitchV harness (§2 "Design"): it drives
// p4-fuzzer against a switch's control plane API and p4-symbolic against
// its data plane, judges the observed behavior with the oracle and the
// reference simulator, and produces incident reports for humans to
// triage.
package switchv

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"switchv/internal/bmv2"
	"switchv/internal/coverage"
	"switchv/internal/fuzzer"
	"switchv/internal/oracle"
	"switchv/internal/p4/check"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4rt"
	"switchv/internal/packet"
	"switchv/internal/symbolic"
)

// DataPlane is the test harness's access to the switch's ports (a traffic
// generator wired to the switch under test). Both the in-process switch
// simulator and the TCP client implement it.
type DataPlane = p4rt.DataPlaneDevice

// Incident is one detected divergence between the switch and the model.
type Incident struct {
	// Tool is "p4-fuzzer" or "p4-symbolic".
	Tool string `json:"tool"`
	// Kind classifies the divergence.
	Kind string `json:"kind"`
	// Detail is the human-readable log (§2: "a human must inspect this
	// log to investigate the root cause").
	Detail string `json:"detail"`
}

func (i Incident) String() string {
	return fmt.Sprintf("[%s] %s: %s", i.Tool, i.Kind, i.Detail)
}

// PrecheckMode selects how the static preflight (internal/p4/check)
// gates a campaign.
type PrecheckMode int

const (
	// PrecheckOn — the default — refuses to launch on error-severity
	// findings and prunes work the analyzer proved pointless
	// (unreachable-table goals, dead coverage points).
	PrecheckOn PrecheckMode = iota
	// PrecheckWarn analyzes and prunes but never refuses; findings are
	// the caller's to surface.
	PrecheckWarn
	// PrecheckOff skips the analyzer entirely: no gate, no pruning, no
	// coverage exclusion.
	PrecheckOff
)

// Harness validates one switch against one model.
type Harness struct {
	Info *p4info.Info
	Dev  p4rt.Device
	DP   DataPlane
	// Precheck selects the preflight gate mode. The zero value enforces
	// the gate: a defective model silently corrupts every downstream
	// verdict, so opting out is the explicit choice.
	Precheck PrecheckMode
	// Reconcile hardens control-plane campaigns against torn writes: a
	// write whose ACK was lost in transit (transport-failure response)
	// is resolved by read-back — per-update statuses are reconstructed
	// from the observed state, with genuinely unknowable outcomes marked
	// Unavailable and exempted from oracle judgement. Without it, a torn
	// write poisons the campaign with false incidents or kills it.
	Reconcile bool
}

// New builds a harness.
func New(info *p4info.Info, dev p4rt.Device, dp DataPlane) *Harness {
	return &Harness{Info: info, Dev: dev, DP: dp}
}

// PrecheckReport returns the memoized preflight report for the model,
// or nil when the preflight is off.
func (h *Harness) PrecheckReport() *check.Report {
	if h.Precheck == PrecheckOff {
		return nil
	}
	return check.Cached(h.Info.Program())
}

// precheckGate runs the preflight and refuses the campaign on
// error-severity findings (PrecheckOn only).
func (h *Harness) precheckGate(tool string) (*check.Report, error) {
	rep := h.PrecheckReport()
	if rep == nil {
		return nil, nil
	}
	if h.Precheck == PrecheckOn && rep.HasErrors() {
		return rep, fmt.Errorf("switchv: %s: model failed preflight with %d error finding(s); fix the model or launch with precheck=warn to override:\n%s",
			tool, rep.Errors(), rep.Text())
	}
	return rep, nil
}

// PushPipeline pushes the model's P4Info to the switch.
func (h *Harness) PushPipeline() error {
	return h.Dev.SetForwardingPipelineConfig(p4rt.ForwardingPipelineConfig{
		P4Info: h.Info.Text(),
		Cookie: 1,
	})
}

// BatchCoverage is one sample of a campaign's coverage trajectory, taken
// after each batch.
type BatchCoverage struct {
	// Points is the number of distinct coverage points exercised so far.
	Points int64
	// Tables is the number of tables with at least one accepted update.
	Tables int
}

// ControlPlaneReport summarizes a fuzzing campaign (§4).
type ControlPlaneReport struct {
	Batches     int
	Updates     int
	MustAccept  int
	MustReject  int
	MayReject   int
	Incidents   []Incident
	Elapsed     time.Duration
	PerMutation map[string]int
	// Coverage is the final coverage snapshot of the campaign.
	Coverage *coverage.Snapshot
	// Trajectory holds one BatchCoverage sample per executed batch.
	Trajectory []BatchCoverage
	// PlateauStopped reports that the campaign ended early because
	// Options.PlateauBatches consecutive batches added no new coverage.
	PlateauStopped bool
}

// EntriesPerSecond is the fuzzer throughput metric of Table 3.
func (r *ControlPlaneReport) EntriesPerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Updates) / r.Elapsed.Seconds()
}

// CanonicalControlPlaneReport is the deterministic projection of a
// single-stack campaign: every field is a pure function of (model,
// seed, options); Elapsed is excluded. The chaos survival matrix states
// its byte-identity contract over it — a campaign run under injected
// faults on a hardened stack must render the same JSON as the same
// campaign with no faults at all.
type CanonicalControlPlaneReport struct {
	Batches        int                `json:"batches"`
	Updates        int                `json:"updates"`
	MustAccept     int                `json:"must_accept"`
	MustReject     int                `json:"must_reject"`
	MayReject      int                `json:"may_reject"`
	Incidents      []Incident         `json:"incidents"`
	PerMutation    map[string]int     `json:"per_mutation"`
	Coverage       *coverage.Snapshot `json:"coverage"`
	Trajectory     []BatchCoverage    `json:"trajectory"`
	PlateauStopped bool               `json:"plateau_stopped"`
}

// Canon extracts the deterministic projection of the report.
func (r *ControlPlaneReport) Canon() *CanonicalControlPlaneReport {
	return &CanonicalControlPlaneReport{
		Batches:        r.Batches,
		Updates:        r.Updates,
		MustAccept:     r.MustAccept,
		MustReject:     r.MustReject,
		MayReject:      r.MayReject,
		Incidents:      r.Incidents,
		PerMutation:    r.PerMutation,
		Coverage:       r.Coverage,
		Trajectory:     r.Trajectory,
		PlateauStopped: r.PlateauStopped,
	}
}

// JSON renders the canonical report; encoding/json sorts map keys, so
// equal reports render byte-equal.
func (r *CanonicalControlPlaneReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RunControlPlane fuzzes the switch's control plane API: batches of valid
// and mutated updates, each followed by a full read-back that the oracle
// judges (§4.3, §4.4).
func (h *Harness) RunControlPlane(opts fuzzer.Options) (*ControlPlaneReport, error) {
	crep, err := h.precheckGate("p4-fuzzer")
	if err != nil {
		return nil, err
	}
	if opts.Coverage == nil {
		var dead map[string]bool
		if crep != nil {
			dead = crep.UnreachableSet()
		}
		opts.Coverage = coverage.NewMapExcluding(h.Info, dead)
	}
	cov := opts.Coverage
	f := fuzzer.New(h.Info, opts)
	orc := oracle.New(h.Info)
	orc.SetCoverage(cov)
	orc.AllowUnavailable = h.Reconcile
	rep := &ControlPlaneReport{}
	start := time.Now()
	n := opts.NumRequests
	if n == 0 {
		n = 1000
	}
	plateauRun := 0
	for batch := 0; batch < n; batch++ {
		covBefore := cov.Covered()
		req, meta, err := f.NextBatch()
		if err != nil {
			return rep, err
		}
		rep.Batches++
		rep.Updates += len(req.Updates)
		resp := h.Dev.Write(req)
		observed, err := h.Dev.Read(p4rt.ReadRequest{})
		if err != nil {
			rep.Incidents = append(rep.Incidents, Incident{
				Tool: "p4-fuzzer", Kind: "read-failed",
				Detail: fmt.Sprintf("reading back after batch %d: %v", batch, err),
			})
			continue
		}
		if h.Reconcile && isTransportFailure(resp) {
			// Torn write: the ACK died in transit, so resolve what actually
			// landed from the read-back before judging the batch.
			resp = reconcileWriteResponse(h.Info, orc.State(), observed, req)
		}
		verdicts, violations := orc.CheckBatch(req, resp, observed)
		for i, v := range verdicts {
			switch v {
			case oracle.MustAccept:
				rep.MustAccept++
			case oracle.MustReject:
				rep.MustReject++
			case oracle.MayReject:
				rep.MayReject++
			}
			// Per-mutation-class verdict-outcome accounting: which oracle
			// verdict and switch decision each mutation class has reached.
			if i < len(meta) && i < len(resp.Statuses) {
				cov.NoteMutationOutcome(meta[i].Mutation, v.String(),
					resp.Statuses[i].Code == p4rt.OK)
			}
		}
		for _, viol := range violations {
			detail := viol.String()
			if viol.UpdateIndex >= 0 && viol.UpdateIndex < len(meta) {
				m := meta[viol.UpdateIndex]
				detail += fmt.Sprintf(" (update: %s %v", m.Update.Type, m.Update.Entry.TableID)
				if m.Mutation != "" {
					detail += ", mutation: " + m.Mutation
				}
				detail += ")"
			}
			rep.Incidents = append(rep.Incidents, Incident{Tool: "p4-fuzzer", Kind: viol.Kind, Detail: detail})
		}
		// Keep the fuzzer's reference pool in sync with what the switch
		// accepted.
		for i, st := range resp.Statuses {
			if i < len(req.Updates) && st.Code == p4rt.OK {
				f.NoteAccepted(req.Updates[i])
			}
		}
		rep.Trajectory = append(rep.Trajectory, BatchCoverage{
			Points: cov.Covered(),
			Tables: cov.TablesAccepted(),
		})
		if opts.StopAfterIncidents > 0 && len(rep.Incidents) >= opts.StopAfterIncidents {
			break
		}
		// Coverage-plateau early stop: a batch that exercises no new point
		// extends the plateau; PlateauBatches of them in a row end the
		// campaign (nothing left that this schedule is going to reach).
		if cov.Covered() == covBefore {
			plateauRun++
			if opts.PlateauBatches > 0 && plateauRun >= opts.PlateauBatches {
				rep.PlateauStopped = true
				break
			}
		} else {
			plateauRun = 0
		}
	}
	rep.Elapsed = time.Since(start)
	rep.PerMutation = f.PerMutation
	rep.Coverage = cov.Snapshot()
	return rep, nil
}

// DataPlaneReport summarizes a symbolic data-plane campaign (§5).
type DataPlaneReport struct {
	Entries      int
	Goals        int
	Covered      int
	Unreachable  int
	Packets      int
	Incidents    []Incident
	CacheHit     bool
	GenElapsed   time.Duration // packet generation (SMT) time
	TestElapsed  time.Duration // switch+simulator execution and compare
	SolverReport symbolic.Report
	// Coverage is the final snapshot of Options.Coverage (nil when the
	// campaign ran without a map).
	Coverage *coverage.Snapshot
}

// DataPlaneOptions configures a data-plane campaign.
type DataPlaneOptions struct {
	Coverage symbolic.CoverageMode
	// Cache, when non-nil, serves per-goal generation outcomes (§6.3).
	Cache *symbolic.Cache
	// Churn re-applies every installed entry with MODIFY before testing,
	// exercising update paths (the class of WCMP-update bugs).
	Churn bool
	// MaxBehaviors bounds the simulator behavior-set loop.
	MaxBehaviors int
	// CoverageMap, when non-nil, is seeded with the symbolic trace map's
	// goal list and credited with per-table/per-entry hits harvested from
	// the reference simulator's execution traces.
	CoverageMap *coverage.Map
	// Workers is the number of concurrent workers for packet generation
	// and simulation (default 1). The campaign result is identical for
	// any worker count; only wall-clock time changes.
	Workers int
	// Shards is the generator's logical goal-shard count (default
	// symbolic.DefaultGoalShards). Results depend on it — it is a
	// campaign parameter, not a concurrency knob.
	Shards int
	// Engine selects the reference-simulator implementation (default
	// EngineCompiled). Outcomes are engine-independent.
	Engine EngineKind
}

// RunDataPlane installs the given entries on the switch, generates test
// packets with p4-symbolic, runs them against both the switch and the
// reference simulator, and flags every switch behavior that is not in the
// simulator's set of valid behaviors.
func (h *Harness) RunDataPlane(entries []*pdpi.Entry, opts DataPlaneOptions) (*DataPlaneReport, error) {
	if opts.MaxBehaviors == 0 {
		opts.MaxBehaviors = 32
	}
	crep, err := h.precheckGate("p4-symbolic")
	if err != nil {
		return nil, err
	}
	var dead map[string]bool
	if crep != nil {
		dead = crep.UnreachableSet()
	}
	rep := &DataPlaneReport{Entries: len(entries)}

	// Reconcile the switch to an empty state first, as a controller would
	// before replaying a snapshot: read everything back and delete it in
	// reverse dependency order so references never dangle mid-wipe. A
	// switch whose state cannot even be read or cleared is itself a
	// finding (e.g. the P4Info push silently failed).
	if err := h.wipe(); err != nil {
		rep.Incidents = append(rep.Incidents, Incident{
			Tool: "p4-symbolic", Kind: "state-unavailable",
			Detail: fmt.Sprintf("cannot prepare the switch for data-plane testing: %v", err),
		})
		return rep, nil
	}

	// Install the forwarding state. Install failures of valid entries are
	// control-plane bugs surfaced during data-plane setup — the paper's
	// p4-symbolic found several this way.
	store := pdpi.NewStore()
	for _, e := range entries {
		resp := h.Dev.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert, Entry: p4rt.ToWire(e)}}})
		if !resp.OK() {
			rep.Incidents = append(rep.Incidents, Incident{
				Tool: "p4-symbolic", Kind: "install-rejected",
				Detail: fmt.Sprintf("switch rejected valid entry %s: %s", e, resp.String()),
			})
			continue
		}
		if err := store.Insert(e); err != nil {
			return rep, fmt.Errorf("switchv: duplicate fixture entry %s", e)
		}
	}

	if opts.Churn {
		for _, e := range store.All(h.Info.Program()) {
			if e.Table.ConstDefault && len(e.Matches) == 0 {
				continue
			}
			resp := h.Dev.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Modify, Entry: p4rt.ToWire(e)}}})
			if !resp.OK() {
				rep.Incidents = append(rep.Incidents, Incident{
					Tool: "p4-symbolic", Kind: "modify-rejected",
					Detail: fmt.Sprintf("switch rejected no-op modify of %s: %s", e, resp.String()),
				})
			}
		}
	}

	// Packet-IO checks (§6.1's packet-out bug class): direct packet-outs
	// must not echo back as packet-ins, and a submit-to-ingress packet
	// that the model punts must come back on the stream.
	rep.Incidents = append(rep.Incidents, h.checkPacketIO(store)...)

	// Generate test packets: structural goals of the coverage mode plus
	// the standing "test engineer" assertions (§5 "Coverage
	// Constraints"), via the parallel, solve-avoiding generator.
	prog := h.Info.Program()
	genStart := time.Now()
	gen, err := symbolic.NewGenerator(prog, store, symbolic.Options{}, symbolic.GenOptions{
		Mode:              opts.Coverage,
		Enriched:          true,
		Cache:             opts.Cache,
		Workers:           opts.Workers,
		Shards:            opts.Shards,
		UnreachableTables: dead,
	})
	if err != nil {
		return rep, err
	}
	// The goal universe is the campaign's coverage denominator: every
	// goal registers at zero so the map knows what was never reached —
	// except goals the preflight proved unreachable, which would deflate
	// every percentage for work no packet can ever do.
	if opts.CoverageMap != nil {
		for _, key := range gen.GoalKeys() {
			if t := symbolic.GoalTable(key); t != "" && dead[t] {
				continue
			}
			opts.CoverageMap.Register(coverage.KeyGoal(key))
		}
	}
	packets, srep, err := gen.Run()
	if err != nil {
		return rep, err
	}
	rep.SolverReport = srep
	rep.Goals = srep.Goals
	rep.Covered = srep.Covered
	rep.Unreachable = srep.Unreachable
	rep.CacheHit = srep.Goals > 0 && srep.Cached == srep.Goals
	rep.GenElapsed = time.Since(genStart)

	// Differential execution. Background traffic rides along: frames a
	// production network carries regardless of the installed entries
	// (LLDP, ARP, IPv6 ND). Daemon-level bugs (e.g. an LLDP agent
	// punting frames the model says to drop) only show up under this
	// mix.
	testStart := time.Now()
	all := packets
	for _, bg := range backgroundFrames() {
		all = append(all, symbolic.TestPacket{GoalKey: "background:" + bg.name, Port: 1, Data: bg.frame})
	}
	rep.Packets = len(all)

	// Phase 1 (serial): inject every packet into the switch in packet
	// order — the switch is one stateful device and injection order is
	// part of the campaign's definition.
	injected := make([]p4rt.InjectResult, len(all))
	incidents := make([]*Incident, len(all))
	for i := range all {
		pkt := &all[i]
		if opts.CoverageMap != nil && i < len(packets) {
			opts.CoverageMap.NoteGoal(pkt.GoalKey)
		}
		injected[i], incidents[i] = h.injectPacket(pkt)
	}

	// Phase 2 (parallel): simulate each packet's behavior set and
	// compare against the observed switch behavior. Each worker builds
	// one engine and resets it between packets — Reset restores the
	// freshly-constructed state, so per-packet verdicts stay independent
	// of scheduling and the worker count changes wall-clock time only.
	// Incidents merge in packet order below.
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sim, simErr := NewEngine(opts.Engine, prog, store)
			for i := range jobs {
				if simErr != nil {
					incidents[i] = &Incident{Tool: "p4-symbolic", Kind: "simulator-error",
						Detail: fmt.Sprintf("goal %s: building simulator: %v", all[i].GoalKey, simErr)}
					continue
				}
				sim.Reset()
				incidents[i] = h.comparePacket(sim, &all[i], injected[i], opts.MaxBehaviors, opts.CoverageMap)
			}
		}()
	}
	for i := range all {
		if incidents[i] == nil {
			jobs <- i
		}
	}
	close(jobs)
	wg.Wait()
	for _, inc := range incidents {
		if inc != nil {
			rep.Incidents = append(rep.Incidents, *inc)
		}
	}
	rep.TestElapsed = time.Since(testStart)

	// Teardown: remove everything we installed, as the nightly run's
	// cleanup would. Deletion failures are control-plane bugs (e.g. the
	// default-route deletion bug).
	if err := h.wipe(); err != nil {
		rep.Incidents = append(rep.Incidents, Incident{
			Tool: "p4-symbolic", Kind: "teardown-rejected",
			Detail: fmt.Sprintf("cleaning up installed entries: %v", err),
		})
	}
	if opts.CoverageMap != nil {
		rep.Coverage = opts.CoverageMap.Snapshot()
	}
	return rep, nil
}

// backgroundFrames returns the standing traffic mix injected alongside
// generated test packets.
func backgroundFrames() []struct {
	name  string
	frame []byte
} {
	mk := func(layers ...packet.SerializableLayer) []byte {
		data, err := packet.Serialize(packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}, layers...)
		if err != nil {
			panic(err)
		}
		return data
	}
	lldp := mk(
		&packet.Ethernet{DstMAC: packet.MAC{0x01, 0x80, 0xc2, 0, 0, 0x0e}, SrcMAC: packet.MAC{2, 0, 0, 0, 0, 9}, EtherType: 0x88cc},
		packet.Raw([]byte{0x02, 0x07, 0x04, 0, 0, 0, 0, 0, 0}))
	arp := mk(
		&packet.Ethernet{DstMAC: packet.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, SrcMAC: packet.MAC{2, 0, 0, 0, 0, 9}, EtherType: packet.EtherTypeARP},
		&packet.ARP{Operation: 1, SenderIP: packet.IPv4Addr{192, 0, 2, 10}, TargetIP: packet.IPv4Addr{192, 0, 2, 1}})
	src6 := packet.MustParseIPv6("fe80::9")
	dst6 := packet.MustParseIPv6("ff02::1")
	icmp := &packet.ICMPv6{Type: packet.ICMPv6TypeNeighborSolicit}
	icmp.SetNetworkLayerForChecksum(src6[:], dst6[:])
	nd := mk(
		&packet.Ethernet{DstMAC: packet.MAC{0x33, 0x33, 0, 0, 0, 1}, SrcMAC: packet.MAC{2, 0, 0, 0, 0, 9}, EtherType: packet.EtherTypeIPv6},
		&packet.IPv6{NextHeader: packet.IPProtocolICMPv6, HopLimit: 255, SrcIP: src6, DstIP: dst6},
		icmp)
	return []struct {
		name  string
		frame []byte
	}{
		{"lldp", lldp},
		{"arp-broadcast", arp},
		{"ipv6-neighbor-solicit", nd},
	}
}

// injectPacket runs one test packet through the switch (phase 1 of the
// differential execution). It returns the observed result, or an
// incident when injection itself fails — such packets skip simulation.
func (h *Harness) injectPacket(pkt *symbolic.TestPacket) (p4rt.InjectResult, *Incident) {
	swRes, err := h.DP.InjectFrame(p4rt.InjectRequest{Port: pkt.Port, Frame: pkt.Data})
	if err != nil {
		return swRes, &Incident{Tool: "p4-symbolic", Kind: "switch-error",
			Detail: fmt.Sprintf("goal %s: switch rejected packet: %v", pkt.GoalKey, err)}
	}
	if len(swRes.Spontaneous) > 0 {
		return swRes, &Incident{Tool: "p4-symbolic", Kind: "unexpected-packet-in",
			Detail: fmt.Sprintf("goal %s: switch sent %d unexpected packets to the controller", pkt.GoalKey, len(swRes.Spontaneous))}
	}
	return swRes, nil
}

// comparePacket checks one observed switch behavior against the
// simulator's valid behavior set (phase 2, safe to run concurrently
// across packets given a private simulator). When cov is non-nil, the
// simulator's execution traces (which tables matched which entries,
// which actions ran) are harvested into it — the data-plane half of the
// coverage map.
func (h *Harness) comparePacket(sim bmv2.Simulator, pkt *symbolic.TestPacket, swRes p4rt.InjectResult, maxBehaviors int, cov *coverage.Map) *Incident {
	behaviors, err := sim.BehaviorSet(bmv2.Input{Port: pkt.Port, Packet: pkt.Data}, maxBehaviors)
	if err != nil {
		return &Incident{Tool: "p4-symbolic", Kind: "simulator-error",
			Detail: fmt.Sprintf("goal %s: simulator failed: %v", pkt.GoalKey, err)}
	}
	if cov != nil {
		for _, b := range behaviors {
			for _, th := range b.Trace {
				cov.NoteDataPlaneHit(th.Table, th.EntryKey, th.Action)
			}
		}
	}
	swSig, err := h.switchSignature(swRes)
	if err != nil {
		return &Incident{Tool: "p4-symbolic", Kind: "switch-output-malformed",
			Detail: fmt.Sprintf("goal %s: %v", pkt.GoalKey, err)}
	}
	var simSigs []string
	for _, b := range behaviors {
		sig, err := h.simSignature(b)
		if err != nil {
			return &Incident{Tool: "p4-symbolic", Kind: "simulator-output-malformed",
				Detail: fmt.Sprintf("goal %s: %v", pkt.GoalKey, err)}
		}
		if sig == swSig {
			return nil // observed behavior is in the valid set
		}
		simSigs = append(simSigs, sig)
	}
	return &Incident{Tool: "p4-symbolic", Kind: "behavior-mismatch",
		Detail: fmt.Sprintf("goal %s: switch behavior %q not in model's valid set %q (packet %x)",
			pkt.GoalKey, swSig, simSigs, pkt.Data)}
}

// fieldSignature renders the model-visible content of a frame: header
// fields plus opaque payload. Unmodeled wire bytes (e.g. TCP sequence
// numbers) are deliberately excluded, since the model cannot constrain
// them.
func (h *Harness) fieldSignature(frame []byte) (string, error) {
	fields, payload, err := bmv2.ParseFields(h.Info.Program(), frame)
	if err != nil {
		return "", err
	}
	sig := ""
	for i, f := range h.Info.Program().Fields {
		if f.Header == "" {
			continue // metadata is not part of the wire image
		}
		if fields[i].IsZero() {
			continue
		}
		sig += fmt.Sprintf("%s=%s;", f.Name, fields[i])
	}
	return sig + fmt.Sprintf("payload=%x", payload), nil
}

func (h *Harness) switchSignature(r p4rt.InjectResult) (string, error) {
	switch {
	case r.Punted:
		sig, err := h.fieldSignature(r.Frame)
		return "punt{" + sig + "}" + h.mirrorSig(r.Mirrors, r.CopyToCPU), err
	case r.Dropped:
		return "drop{}" + h.mirrorSigSwitch(r), nil
	default:
		sig, err := h.fieldSignature(r.Frame)
		return fmt.Sprintf("fwd[%d]{%s}", r.EgressPort, sig) + h.mirrorSig(r.Mirrors, r.CopyToCPU), err
	}
}

func (h *Harness) mirrorSigSwitch(r p4rt.InjectResult) string {
	return h.mirrorSig(r.Mirrors, r.CopyToCPU)
}

func (h *Harness) mirrorSig(mirrors []p4rt.MirrorFrame, copyToCPU bool) string {
	sig := ""
	if copyToCPU {
		sig += "+copy"
	}
	for _, m := range mirrors {
		fs, _ := h.fieldSignature(m.Frame)
		sig += fmt.Sprintf("+mirror[%d]{%s}", m.Session, fs)
	}
	return sig
}

func (h *Harness) simSignature(o *bmv2.Outcome) (string, error) {
	var mirrors []p4rt.MirrorFrame
	for _, m := range o.Mirrors {
		mirrors = append(mirrors, p4rt.MirrorFrame{Session: m.Session, Frame: m.Packet})
	}
	switch o.Disposition {
	case bmv2.Punted:
		sig, err := h.fieldSignature(o.Packet)
		return "punt{" + sig + "}" + h.mirrorSig(mirrors, o.CopyToCPU), err
	case bmv2.Dropped:
		return "drop{}" + h.mirrorSig(mirrors, o.CopyToCPU), nil
	default:
		sig, err := h.fieldSignature(o.Packet)
		return fmt.Sprintf("fwd[%d]{%s}", o.EgressPort, sig) + h.mirrorSig(mirrors, o.CopyToCPU), err
	}
}

// wipe deletes every installed entry, dependents first.
func (h *Harness) wipe() error {
	observed, err := h.Dev.Read(p4rt.ReadRequest{})
	if err != nil {
		return fmt.Errorf("switchv: reading state before wipe: %w", err)
	}
	if len(observed.Entries) == 0 {
		return nil
	}
	byTable := map[uint32][]p4rt.TableEntry{}
	for _, te := range observed.Entries {
		byTable[te.TableID] = append(byTable[te.TableID], te)
	}
	topo := h.Info.TopoOrder()
	for i := len(topo) - 1; i >= 0; i-- {
		for _, te := range byTable[topo[i].ID] {
			resp := h.Dev.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Delete, Entry: te}}})
			if !resp.OK() {
				return fmt.Errorf("switchv: wiping %s: %s", topo[i].Name, resp.String())
			}
		}
	}
	return nil
}

// drainPacketIns discards pending packet-ins (e.g. from punted test
// packets) so packet-IO checks start from a quiet stream.
func (h *Harness) drainPacketIns() {
	deadline := time.After(50 * time.Millisecond) //detlint:allow timeafter — bounded drain of an async device stream
	for {
		select {
		case _, ok := <-h.Dev.PacketIns():
			if !ok {
				return
			}
		case <-deadline:
			return
		}
	}
}

// checkPacketIO exercises the PacketOut paths.
func (h *Harness) checkPacketIO(store *pdpi.Store) []Incident {
	var incidents []Incident
	h.drainPacketIns()

	// Direct egress: the frame must not be punted back.
	if err := h.Dev.PacketOut(p4rt.PacketOut{Payload: []byte("switchv-packet-out"), EgressPort: 3}); err != nil {
		incidents = append(incidents, Incident{Tool: "p4-symbolic", Kind: "packet-out-failed",
			Detail: fmt.Sprintf("direct packet-out: %v", err)})
	}
	select {
	case pin := <-h.Dev.PacketIns():
		incidents = append(incidents, Incident{Tool: "p4-symbolic", Kind: "packet-out-punted-back",
			Detail: fmt.Sprintf("direct packet-out echoed to the controller (%d bytes)", len(pin.Payload))})
	case <-time.After(100 * time.Millisecond): //detlint:allow timeafter — bounded wait for a device echo that must NOT arrive
	}

	// Submit-to-ingress: synthesize a packet the model punts and expect it
	// back on the stream.
	ex, err := symbolic.New(h.Info.Program(), store, symbolic.Options{})
	if err != nil {
		return incidents
	}
	pkt, ok, err := ex.SolveGoal(symbolic.Goal{Key: "packetio:punt", Cond: ex.PuntCond()})
	if err != nil || !ok {
		return incidents // no puntable packet in this configuration
	}
	if err := h.Dev.PacketOut(p4rt.PacketOut{Payload: pkt.Data, SubmitToIngress: true}); err != nil {
		incidents = append(incidents, Incident{Tool: "p4-symbolic", Kind: "packet-out-failed",
			Detail: fmt.Sprintf("submit-to-ingress: %v", err)})
		return incidents
	}
	select {
	case <-h.Dev.PacketIns():
		// Punted back, as the model requires.
	case <-time.After(time.Second): //detlint:allow timeafter — generous bound on a punt the model guarantees
		incidents = append(incidents, Incident{Tool: "p4-symbolic", Kind: "submit-to-ingress-lost",
			Detail: "a submit-to-ingress packet the model punts never reached the controller"})
	}
	return incidents
}
