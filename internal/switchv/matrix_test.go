package switchv

import (
	"testing"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4rt"
	"switchv/internal/switchsim"
	"switchv/internal/symbolic"
	"switchv/internal/testutil"
	"switchv/models"
)

// matrixRecipe says how one injected fault is detected: which campaign
// to run, with which fixtures installed and which preparatory traffic.
// This is the executable form of the paper's Table 1 — every bug class
// the deployed system found maps to a detection recipe here.
type matrixRecipe struct {
	role string // defaults to "middleblock"
	tool string // "p4-fuzzer" or "p4-symbolic"
	// fixtures are applied to the store in order (data-plane campaigns).
	fixtures []func(*ir.Program, *pdpi.Store)
	churn    bool
	batches  int // control-plane campaign length override
	// prep runs after the pipeline push and before the campaign.
	prep func(t *testing.T, h *Harness, sw *switchsim.Switch)
}

// routing is the base data-plane fixture set.
var routing = []func(*ir.Program, *pdpi.Store){testutil.RoutingFixture}

func withRouting(extra ...func(*ir.Program, *pdpi.Store)) []func(*ir.Program, *pdpi.Store) {
	return append([]func(*ir.Program, *pdpi.Store){testutil.RoutingFixture}, extra...)
}

// prepACLLeak feeds the SyncD leak counter: thirty constraint-violating
// ACL inserts (a ttl match without an IP match), each correctly
// rejected, each leaking a hardware slot under the fault.
func prepACLLeak(t *testing.T, h *Harness, _ *switchsim.Switch) {
	t.Helper()
	acl, _ := h.Info.TableByName("acl_ingress_table")
	drop, _ := h.Info.ActionByName("acl_drop")
	for i := 0; i < 30; i++ {
		resp := h.Dev.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert, Entry: p4rt.TableEntry{
			TableID:  acl.ID,
			Priority: int32(100 + i),
			Match: []p4rt.FieldMatch{
				{FieldID: 5, Ternary: &p4rt.TernaryMatch{Value: []byte{byte(i + 1)}, Mask: []byte{0xff}}},
			},
			Action: p4rt.TableAction{Action: &p4rt.Action{ActionID: drop.ID}},
		}}}})
		if resp.OK() {
			t.Fatalf("constraint-violating ACL prep entry %d accepted", i)
		}
	}
}

// prepPortSyncChurn pushes the switch past the port-sync daemon's
// restart threshold (100 injected frames) so the campaign that follows
// sees the broken packet IO.
func prepPortSyncChurn(t *testing.T, _ *Harness, sw *switchsim.Switch) {
	t.Helper()
	frame := testutil.IPv4UDP("10.1.2.3", 64, 4242)
	for i := 0; i < 101; i++ {
		if _, err := sw.Inject(1, frame); err != nil {
			t.Fatalf("prep inject %d: %v", i, err)
		}
	}
}

// matrixRecipes covers EVERY fault in switchsim's registry;
// TestFaultMatrixComplete enforces the bijection.
var matrixRecipes = map[switchsim.Fault]matrixRecipe{
	// P4Runtime server: control-plane fuzzing finds protocol-level bugs.
	switchsim.FaultBatchAbortOnDeleteMissing: {tool: "p4-fuzzer"},
	switchsim.FaultModifyKeepsOldParams:      {tool: "p4-fuzzer"},
	switchsim.FaultAcceptInvalidReference:    {tool: "p4-fuzzer"},
	switchsim.FaultReadDropsTernary:          {tool: "p4-fuzzer"},
	switchsim.FaultWrongDuplicateStatus:      {tool: "p4-fuzzer"},
	switchsim.FaultZeroBytesAccepted:         {tool: "p4-fuzzer"},
	// An ignored P4Info push leaves the pipeline unconfigured: every
	// fuzzed write fails and the read-back diverges immediately.
	switchsim.FaultP4InfoPushIgnored:   {tool: "p4-fuzzer"},
	switchsim.FaultRejectACLEntries:    {tool: "p4-symbolic", fixtures: routing},
	switchsim.FaultPacketOutPuntedBack: {tool: "p4-symbolic", fixtures: routing},

	// Orchestration agent.
	switchsim.FaultWCMPPartialCleanup:    {tool: "p4-symbolic", fixtures: withRouting(testutil.WideWCMPFixture)},
	switchsim.FaultWCMPRejectSameBuckets: {tool: "p4-symbolic", fixtures: withRouting(testutil.DupBucketWCMPFixture)},
	switchsim.FaultWCMPUpdateDropsMember: {tool: "p4-symbolic", fixtures: routing, churn: true},
	// The teardown wipe at the end of a data-plane run deletes the VRF;
	// the fault turns that into a teardown-rejected incident.
	switchsim.FaultVRFDeleteFails: {tool: "p4-symbolic", fixtures: routing},

	// SyncD / SAI.
	switchsim.FaultACLLeakExhausts:      {tool: "p4-symbolic", fixtures: routing, prep: prepACLLeak},
	switchsim.FaultDSCPRemarkZero:       {tool: "p4-symbolic", fixtures: routing},
	switchsim.FaultSubmitIngressDropped: {tool: "p4-symbolic", fixtures: routing},
	switchsim.FaultDefaultRouteDelete: {tool: "p4-symbolic",
		fixtures: []func(*ir.Program, *pdpi.Store){testutil.DefaultRouteFixture, testutil.RoutingFixture}},

	// Hardware / ASIC.
	switchsim.FaultTTL1NoTrap:          {tool: "p4-symbolic", fixtures: routing},
	switchsim.FaultPortSpeedDrop:       {tool: "p4-symbolic", fixtures: routing},
	switchsim.FaultLPMTiebreakWrong:    {tool: "p4-symbolic", fixtures: routing},
	switchsim.FaultACLPriorityInverted: {tool: "p4-symbolic", fixtures: withRouting(testutil.ACLShadowFixture)},
	switchsim.FaultEncapDstReversed: {role: "wan", tool: "p4-symbolic",
		fixtures: withRouting(testutil.TunnelFixture)},
	switchsim.FaultVLANReservedAccepted:  {role: "wan", tool: "p4-fuzzer"},
	switchsim.FaultRouterInterfaceLimit8: {tool: "p4-symbolic", fixtures: withRouting(testutil.ManyRIFsFixture)},

	// Switch Linux daemons.
	switchsim.FaultLLDPPunt:           {tool: "p4-symbolic", fixtures: routing},
	switchsim.FaultRouterSolicitNoise: {tool: "p4-symbolic", fixtures: routing},
	switchsim.FaultPortSyncBreaksIO:   {tool: "p4-symbolic", fixtures: routing, prep: prepPortSyncChurn},
	switchsim.FaultVRF1Conflict:       {tool: "p4-symbolic", fixtures: routing},

	// Model bugs: the switch is right, the model is wrong; SwitchV still
	// must flag the divergence (triage attributes it to the P4 program).
	switchsim.FaultModelICMPWrongField:  {tool: "p4-symbolic", fixtures: withRouting(testutil.ICMPTrapFixture)},
	switchsim.FaultModelBroadcastDrop: {tool: "p4-symbolic",
		fixtures: []func(*ir.Program, *pdpi.Store){testutil.DefaultRouteFixture, testutil.RoutingFixture}},
	switchsim.FaultModelACLAfterRewrite: {tool: "p4-symbolic", fixtures: withRouting(testutil.PostRewriteDropFixture)},
}

// TestFaultMatrixComplete pins the recipe table to the fault registry:
// adding a fault to switchsim without a detection recipe fails here.
func TestFaultMatrixComplete(t *testing.T) {
	for _, f := range switchsim.AllFaults() {
		if _, ok := matrixRecipes[f]; !ok {
			t.Errorf("fault %s has no detection recipe", f)
		}
	}
	for f := range matrixRecipes {
		if _, ok := switchsim.Meta(f); !ok {
			t.Errorf("recipe for unknown fault %s", f)
		}
	}
}

// runRecipe executes one fault's campaign and returns the incidents.
func runRecipe(t *testing.T, fault switchsim.Fault, rc matrixRecipe, faults ...switchsim.Fault) []Incident {
	t.Helper()
	role := rc.role
	if role == "" {
		role = "middleblock"
	}
	h, sw := newHarness(t, role, faults...)
	if rc.prep != nil {
		rc.prep(t, h, sw)
	}
	switch rc.tool {
	case "p4-fuzzer":
		opts := smallFuzz
		if rc.batches != 0 {
			opts.NumRequests = rc.batches
		}
		rep, err := h.RunControlPlane(opts)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Incidents
	case "p4-symbolic":
		prog := models.MustLoad(role)
		store := pdpi.NewStore()
		for _, fix := range rc.fixtures {
			fix(prog, store)
		}
		entries := testutil.InstallOrder(p4info.New(prog), store)
		rep, err := h.RunDataPlane(entries, DataPlaneOptions{
			Coverage: symbolic.CoverBranches,
			Churn:    rc.churn,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Incidents
	default:
		t.Fatalf("recipe for %s has no tool", fault)
		return nil
	}
}

// TestFaultMatrix is the paper's Table 1 as an executable claim: for
// EVERY injectable fault, a short campaign with that single fault
// enabled reports at least one incident.
func TestFaultMatrix(t *testing.T) {
	for _, fault := range switchsim.AllFaults() {
		rc := matrixRecipes[fault]
		t.Run(string(fault), func(t *testing.T) {
			incidents := runRecipe(t, fault, rc, fault)
			if len(incidents) == 0 {
				t.Fatalf("fault %s not detected by %s", fault, rc.tool)
			}
			t.Logf("%s: %d incidents, first: %s", fault, len(incidents), incidents[0])
		})
	}
}

// TestFaultMatrixZeroFaults is the soundness half: the union of every
// matrix fixture and prep on a conformant switch yields zero incidents.
func TestFaultMatrixZeroFaults(t *testing.T) {
	t.Run("control-plane", func(t *testing.T) {
		h, _ := newHarness(t, "middleblock")
		rep, err := h.RunControlPlane(smallFuzz)
		if err != nil {
			t.Fatal(err)
		}
		for _, inc := range rep.Incidents {
			t.Errorf("false positive: %s", inc)
		}
	})
	t.Run("data-plane", func(t *testing.T) {
		h, _ := newHarness(t, "middleblock")
		prepACLLeak(t, h, nil) // rejected entries must leak nothing
		prog := models.MustLoad("middleblock")
		store := pdpi.NewStore()
		for _, fix := range []func(*ir.Program, *pdpi.Store){
			testutil.DefaultRouteFixture,
			testutil.RoutingFixture,
			testutil.WideWCMPFixture,
			testutil.DupBucketWCMPFixture,
			testutil.ManyRIFsFixture,
			testutil.ACLShadowFixture,
			testutil.ICMPTrapFixture,
			testutil.PostRewriteDropFixture,
		} {
			fix(prog, store)
		}
		entries := testutil.InstallOrder(p4info.New(prog), store)
		rep, err := h.RunDataPlane(entries, DataPlaneOptions{Coverage: symbolic.CoverBranches, Churn: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, inc := range rep.Incidents {
			t.Errorf("false positive: %s", inc)
		}
		if rep.Packets == 0 {
			t.Error("no packets generated")
		}
	})
	t.Run("data-plane-wan", func(t *testing.T) {
		h, _ := newHarness(t, "wan")
		prog := models.MustLoad("wan")
		store := pdpi.NewStore()
		testutil.RoutingFixture(prog, store)
		testutil.TunnelFixture(prog, store)
		entries := testutil.InstallOrder(p4info.New(prog), store)
		rep, err := h.RunDataPlane(entries, DataPlaneOptions{Coverage: symbolic.CoverBranches})
		if err != nil {
			t.Fatal(err)
		}
		for _, inc := range rep.Incidents {
			t.Errorf("false positive: %s", inc)
		}
	})
}
