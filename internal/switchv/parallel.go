// Parallel campaign engine: shard a control-plane fuzzing campaign
// across N independent switch stacks and merge the results.
//
// The paper's deployment runs campaigns continuously against fleets of
// testbeds (§6); throughput is the binding constraint on bug yield. Two
// axes of parallelism are exploited here:
//
//   - across shards: the campaign's batch budget is split over a fixed
//     number of logical shards, each owning a private switch stack,
//     fuzzer and coverage map, executed by a pool of workers;
//   - within a shard: generation + write + read-back (the switch side)
//     is pipelined against oracle checking (the model side), so the
//     switch is never idle while the oracle judges the previous batch.
//
// Determinism contract: the merged result — coverage counts, table
// coverage set, deduplicated incident set — is a pure function of
// (root seed, shard count). The worker count only changes wall-clock
// time. This holds because shard campaigns are fully independent (seed
// fuzzer.DeriveSeed(root, shard), private stack, private map) and the
// merge folds them in shard order, no matter which worker ran which
// shard when.
package switchv

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"switchv/internal/coverage"
	"switchv/internal/fuzzer"
	"switchv/internal/oracle"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4rt"
)

// StackFactory builds the switch stack for one shard. The parallel
// engine calls it once per non-empty shard, possibly concurrently; the
// returned close function (may be nil) is called when the shard's
// campaign ends. Callers wire in-process simulators or per-shard P4RT
// client connections here.
type StackFactory func(shard int) (dev p4rt.Device, close func(), err error)

const (
	// DefaultShards is the logical shard count. It is deliberately
	// decoupled from the worker count: results depend on the shard split,
	// so keeping it fixed makes campaigns comparable across machines.
	DefaultShards = 8
	// DefaultPipelineDepth is how many batches a shard's switch side may
	// run ahead of its oracle side.
	DefaultPipelineDepth = 4
)

// ParallelOptions configures a sharded campaign.
type ParallelOptions struct {
	// Workers is the number of concurrent shard executors (default 1).
	// More workers than shards is clamped to the shard count.
	Workers int
	// Shards is the logical shard count (default DefaultShards). The
	// merged result depends on it; the worker count must not.
	Shards int
	// PipelineDepth bounds the per-shard write-ahead (default
	// DefaultPipelineDepth); < 0 disables pipelining.
	PipelineDepth int
	// Fuzz seeds the per-shard campaigns: Seed is the root seed each
	// shard's stream is derived from, NumRequests is the total batch
	// budget across all shards, and Coverage (optional) is the map the
	// shard results merge into.
	Fuzz fuzzer.Options
	// Factory builds each shard's switch stack (required).
	Factory StackFactory
	// Precheck selects the static-preflight gate mode, applied once
	// before any shard stack is built (the default enforces it).
	Precheck PrecheckMode
	// Resume supplies checkpointed results for shards that a previous
	// run of the same (seed, shards, budget) campaign already completed;
	// they are merged without being re-executed. The determinism
	// contract makes this safe: the merge folds per-shard reports in
	// shard order, and a checkpointed shard report is exactly what
	// re-running the shard would produce.
	Resume map[int]*ShardCheckpoint
	// OnShard, when non-nil, is called right after each freshly executed
	// shard completes (possibly concurrently from several workers, never
	// for Resume shards) — the checkpoint hook. A non-nil return stops
	// the campaign cooperatively: no new shards start, and
	// RunParallelCampaign returns the partial report wrapped in
	// ErrCampaignStopped. Shards already in flight still finish (and are
	// offered to OnShard), so no completed work is lost.
	OnShard func(shard int, cp *ShardCheckpoint) error
	// Quarantine degrades gracefully on shard errors: instead of
	// failing the whole campaign, an erroring shard is recorded in
	// Quarantined and the merge proceeds over the healthy shards. The
	// quarantined record carries the shard's seed, so its campaign can
	// be re-run standalone to reproduce the failure.
	Quarantine bool
	// Reconcile enables torn-write read-back reconciliation on every
	// shard harness (see Harness.Reconcile).
	Reconcile bool
}

// QuarantinedShard records one shard whose stack or campaign failed
// under ParallelOptions.Quarantine — enough (shard index + derived
// seed) to replay the failure in isolation.
type QuarantinedShard struct {
	Shard  int    `json:"shard"`
	Seed   int64  `json:"seed"`
	Reason string `json:"reason"`
}

// ShardCheckpoint is the durable record of one completed shard: its
// stats and its full report. The daemon's checkpoint store persists
// these as JSON and feeds them back through ParallelOptions.Resume so a
// restarted campaign merges checkpointed shards instead of replaying
// them. The struct round-trips through encoding/json.
type ShardCheckpoint struct {
	Stats  ShardStats          `json:"stats"`
	Report *ControlPlaneReport `json:"report"`
}

// ErrCampaignStopped reports a cooperative stop: an OnShard callback
// returned an error, so queued shards were skipped. The partial report
// still merges every shard that completed; resuming with their
// checkpoints later yields a result identical to an uninterrupted run.
var ErrCampaignStopped = errors.New("switchv: campaign stopped")

// ShardStats is the per-shard report slice surfaced to the CLI.
type ShardStats struct {
	Shard          int
	Worker         int // executing worker (not deterministic); -1 = restored from a checkpoint
	Seed           int64
	Batches        int
	Updates        int
	Incidents      int
	PlateauStopped bool
	Elapsed        time.Duration
}

// ParallelReport is the merged result of a sharded campaign.
type ParallelReport struct {
	Workers int
	Shards  int

	Batches    int
	Updates    int
	MustAccept int
	MustReject int
	MayReject  int

	// Incidents is the deduplicated union of the shard incident sets, in
	// shard order; DuplicateIncidents counts the drops.
	Incidents          []Incident
	DuplicateIncidents int

	PerShard    []ShardStats
	PerMutation map[string]int

	// ResumedShards counts shards merged from Resume checkpoints rather
	// than executed by this run.
	ResumedShards int

	// Quarantined lists shards sidelined under ParallelOptions.Quarantine
	// (empty otherwise — the campaign then fails on the first shard
	// error instead).
	Quarantined []QuarantinedShard

	// Coverage is the snapshot of the merged coverage map.
	Coverage *coverage.Snapshot

	Elapsed time.Duration
}

// EntriesPerSecond is the campaign throughput across all shards.
func (r *ParallelReport) EntriesPerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Updates) / r.Elapsed.Seconds()
}

// IncidentKinds is the campaign's incident signature: the sorted set of
// distinct tool/kind pairs. Determinism tests and the benchmark compare
// runs on it (incident Details embed batch numbers, which depend on the
// shard split, so the raw set is the wrong thing to compare across
// configurations).
func IncidentKinds(incidents []Incident) []string {
	set := map[string]struct{}{}
	for _, inc := range incidents {
		set[inc.Tool+"/"+inc.Kind] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// shardBatches splits a total batch budget over shards: the first
// total%shards shards take one extra batch.
func shardBatches(total, shards, shard int) int {
	n := total / shards
	if shard < total%shards {
		n++
	}
	return n
}

type shardResult struct {
	rep   *ControlPlaneReport
	stats ShardStats
	err   error
}

// RunParallelCampaign shards a control-plane fuzzing campaign over
// independent switch stacks and merges the results. On a shard error
// the remaining shards still run; the first error (in shard order) is
// returned alongside the partial report.
func RunParallelCampaign(info *p4info.Info, opts ParallelOptions) (*ParallelReport, error) {
	if opts.Factory == nil {
		return nil, fmt.Errorf("switchv: ParallelOptions.Factory is required")
	}
	// Preflight once, before any stack is built: a model that fails the
	// gate should not cost N switch stacks to find out.
	gate := &Harness{Info: info, Precheck: opts.Precheck}
	crep, err := gate.precheckGate("campaign")
	if err != nil {
		return nil, err
	}
	var dead map[string]bool
	if crep != nil {
		dead = crep.UnreachableSet()
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > shards {
		workers = shards
	}
	depth := opts.PipelineDepth
	if depth == 0 {
		depth = DefaultPipelineDepth
	}
	total := opts.Fuzz.NumRequests
	if total == 0 {
		total = 1000
	}

	start := time.Now()
	results := make([]shardResult, shards)

	// Prefill checkpointed shards: their reports enter the merge exactly
	// as a fresh execution's would, marked Worker=-1 in the stats.
	resumed := map[int]bool{}
	for shard, cp := range opts.Resume {
		if shard < 0 || shard >= shards || cp == nil || cp.Report == nil {
			continue
		}
		st := cp.Stats
		st.Worker = -1
		results[shard] = shardResult{rep: cp.Report, stats: st}
		resumed[shard] = true
	}

	// stopped flips when OnShard asks for a cooperative stop; stopErr
	// keeps the first such cause for the wrapped ErrCampaignStopped.
	var stopped atomic.Bool
	var stopMu sync.Mutex
	var stopErr error
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for shard := range jobs {
				if stopped.Load() {
					results[shard] = shardResult{
						stats: ShardStats{Shard: shard, Seed: fuzzer.DeriveSeed(opts.Fuzz.Seed, shard)},
						err:   fmt.Errorf("shard %d: %w", shard, ErrCampaignStopped),
					}
					continue
				}
				res := runShard(info, opts, worker, shard,
					shardBatches(total, shards, shard), depth)
				if res.err == nil && opts.OnShard != nil {
					if err := opts.OnShard(shard, &ShardCheckpoint{Stats: res.stats, Report: res.rep}); err != nil {
						stopped.Store(true)
						stopMu.Lock()
						if stopErr == nil {
							stopErr = err
						}
						stopMu.Unlock()
					}
				}
				results[shard] = res
			}
		}(w)
	}
	for shard := 0; shard < shards; shard++ {
		if !resumed[shard] {
			jobs <- shard
		}
	}
	close(jobs)
	wg.Wait()

	// Merge in shard order: fold coverage snapshots into the root map and
	// deduplicate incidents on their full (tool, kind, detail) identity.
	rootCov := opts.Fuzz.Coverage
	if rootCov == nil {
		rootCov = coverage.NewMapExcluding(info, dead)
	}
	rep := &ParallelReport{Workers: workers, Shards: shards, PerMutation: map[string]int{},
		ResumedShards: len(resumed)}
	seen := map[Incident]bool{}
	var firstErr error
	for shard := 0; shard < shards; shard++ {
		r := results[shard]
		// Skipped-on-stop pseudo-errors don't outrank real shard errors;
		// the stop itself is reported via ErrCampaignStopped below.
		if r.err != nil && !errors.Is(r.err, ErrCampaignStopped) {
			if opts.Quarantine {
				// Graceful degradation: sideline the broken shard (with its
				// seed, for standalone reproduction) and keep the campaign.
				rep.Quarantined = append(rep.Quarantined, QuarantinedShard{
					Shard:  shard,
					Seed:   fuzzer.DeriveSeed(opts.Fuzz.Seed, shard),
					Reason: r.err.Error(),
				})
				rep.PerShard = append(rep.PerShard, r.stats)
				continue
			}
			if firstErr == nil {
				firstErr = r.err
			}
		}
		rep.PerShard = append(rep.PerShard, r.stats)
		if r.rep == nil {
			continue
		}
		rep.Batches += r.rep.Batches
		rep.Updates += r.rep.Updates
		rep.MustAccept += r.rep.MustAccept
		rep.MustReject += r.rep.MustReject
		rep.MayReject += r.rep.MayReject
		for class, n := range r.rep.PerMutation {
			rep.PerMutation[class] += n
		}
		for _, inc := range r.rep.Incidents {
			if seen[inc] {
				rep.DuplicateIncidents++
				continue
			}
			seen[inc] = true
			rep.Incidents = append(rep.Incidents, inc)
		}
		if r.rep.Coverage != nil {
			rootCov.Merge(r.rep.Coverage)
		}
	}
	rep.Coverage = rootCov.Snapshot()
	rep.Elapsed = time.Since(start)
	if stopErr != nil {
		return rep, fmt.Errorf("%w: %v", ErrCampaignStopped, stopErr)
	}
	return rep, firstErr
}

// CanonicalReport is the deterministic projection of a merged campaign:
// every field is a pure function of (model, root seed, shard count,
// batch budget); wall-clock and scheduling artifacts (Elapsed, per-shard
// worker and timing) are excluded. The checkpoint/resume contract is
// stated over it — a campaign stopped, checkpointed and resumed must
// produce a CanonicalReport whose JSON is byte-identical to an
// uninterrupted run's.
type CanonicalReport struct {
	Shards             int                `json:"shards"`
	Batches            int                `json:"batches"`
	Updates            int                `json:"updates"`
	MustAccept         int                `json:"must_accept"`
	MustReject         int                `json:"must_reject"`
	MayReject          int                `json:"may_reject"`
	Incidents          []Incident         `json:"incidents"`
	DuplicateIncidents int                `json:"duplicate_incidents"`
	PerMutation        map[string]int     `json:"per_mutation"`
	Coverage           *coverage.Snapshot `json:"coverage"`
	// Quarantined is omitted when empty so reports from clean runs stay
	// byte-identical to those produced before quarantine existed.
	Quarantined []QuarantinedShard `json:"quarantined,omitempty"`
}

// Canon extracts the deterministic projection of the report.
func (r *ParallelReport) Canon() *CanonicalReport {
	return &CanonicalReport{
		Shards:             r.Shards,
		Batches:            r.Batches,
		Updates:            r.Updates,
		MustAccept:         r.MustAccept,
		MustReject:         r.MustReject,
		MayReject:          r.MayReject,
		Incidents:          r.Incidents,
		DuplicateIncidents: r.DuplicateIncidents,
		PerMutation:        r.PerMutation,
		Coverage:           r.Coverage,
		Quarantined:        r.Quarantined,
	}
}

// JSON renders the canonical report. encoding/json sorts map keys, so
// equal reports render to byte-equal documents — the resume-parity
// tests and the daemon's report.json both rely on that.
func (r *CanonicalReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// runShard executes one shard's campaign on a freshly built stack.
func runShard(info *p4info.Info, opts ParallelOptions, worker, shard, batches, depth int) shardResult {
	res := shardResult{stats: ShardStats{
		Shard:  shard,
		Worker: worker,
		Seed:   fuzzer.DeriveSeed(opts.Fuzz.Seed, shard),
	}}
	if batches == 0 {
		res.rep = &ControlPlaneReport{}
		return res
	}
	begin := time.Now()
	dev, closeStack, err := opts.Factory(shard)
	if err != nil {
		res.err = fmt.Errorf("shard %d: building stack: %w", shard, err)
		return res
	}
	if closeStack != nil {
		defer closeStack()
	}
	h := New(info, dev, nil)
	h.Precheck = opts.Precheck
	h.Reconcile = opts.Reconcile
	if err := h.PushPipeline(); err != nil {
		res.err = fmt.Errorf("shard %d: pushing pipeline: %w", shard, err)
		return res
	}
	var dead map[string]bool
	if crep := h.PrecheckReport(); crep != nil {
		dead = crep.UnreachableSet()
	}
	fo := opts.Fuzz
	fo.Seed = res.stats.Seed
	fo.NumRequests = batches
	fo.Coverage = coverage.NewMapExcluding(info, dead) // private map, merged later
	rep, err := h.RunControlPlanePipelined(fo, depth)
	if err != nil {
		res.err = fmt.Errorf("shard %d: %w", shard, err)
	}
	res.rep = rep
	res.stats.Elapsed = time.Since(begin)
	if rep != nil {
		res.stats.Batches = rep.Batches
		res.stats.Updates = rep.Updates
		res.stats.Incidents = len(rep.Incidents)
		res.stats.PlateauStopped = rep.PlateauStopped
	}
	return res
}

// RunControlPlanePipelined is RunControlPlane with the switch side and
// the oracle side overlapped: a producer goroutine generates batches,
// writes them and reads the switch back, while the caller's goroutine
// drains the FIFO and runs the oracle. Up to depth batches are in
// flight, so the switch never waits for verdict bookkeeping.
//
// The pipeline preserves the sequential loop's results exactly — the
// producer performs the same generate/write/read/NoteAccepted sequence,
// the checker sees batches in FIFO order, and the oracle (whose state
// is adopted from each read-back) runs single-threaded — except that
// Trajectory is not sampled (a mid-pipeline coverage reading would
// depend on producer timing, breaking run-to-run determinism).
//
// Campaign modes that feed checker results back into generation cannot
// be overlapped: plateau stops, incident-count stops, and
// coverage-guided scheduling all fall back to the sequential loop, as
// does depth < 1.
func (h *Harness) RunControlPlanePipelined(opts fuzzer.Options, depth int) (*ControlPlaneReport, error) {
	// Reconcile needs the sequential loop too: torn-write resolution
	// reads the oracle's pre-batch state, which the pipelined producer
	// races ahead of.
	if depth < 1 || opts.PlateauBatches > 0 || opts.StopAfterIncidents > 0 || opts.CoverageGuided || h.Reconcile {
		return h.RunControlPlane(opts)
	}
	crep, err := h.precheckGate("p4-fuzzer")
	if err != nil {
		return nil, err
	}
	if opts.Coverage == nil {
		var dead map[string]bool
		if crep != nil {
			dead = crep.UnreachableSet()
		}
		opts.Coverage = coverage.NewMapExcluding(h.Info, dead)
	}
	cov := opts.Coverage
	f := fuzzer.New(h.Info, opts)
	orc := oracle.New(h.Info)
	orc.SetCoverage(cov)
	rep := &ControlPlaneReport{}
	start := time.Now()
	n := opts.NumRequests
	if n == 0 {
		n = 1000
	}

	type batchWork struct {
		batch    int
		req      p4rt.WriteRequest
		meta     []fuzzer.GeneratedUpdate
		resp     p4rt.WriteResponse
		observed p4rt.ReadResponse
		readErr  error
	}
	work := make(chan batchWork, depth-1)
	var genErr error
	go func() {
		defer close(work)
		for batch := 0; batch < n; batch++ {
			req, meta, err := f.NextBatch()
			if err != nil {
				genErr = err
				return
			}
			resp := h.Dev.Write(req)
			observed, readErr := h.Dev.Read(p4rt.ReadRequest{})
			if readErr == nil {
				// The fuzzer's reference pool must track switch acceptance
				// before the next NextBatch, so this lives on the producer
				// side (it only touches fuzzer + coverage state, both safe
				// against the concurrent checker).
				for i, st := range resp.Statuses {
					if i < len(req.Updates) && st.Code == p4rt.OK {
						f.NoteAccepted(req.Updates[i])
					}
				}
			}
			work <- batchWork{batch, req, meta, resp, observed, readErr}
		}
	}()

	for w := range work {
		rep.Batches++
		rep.Updates += len(w.req.Updates)
		if w.readErr != nil {
			rep.Incidents = append(rep.Incidents, Incident{
				Tool: "p4-fuzzer", Kind: "read-failed",
				Detail: fmt.Sprintf("reading back after batch %d: %v", w.batch, w.readErr),
			})
			continue
		}
		verdicts, violations := orc.CheckBatch(w.req, w.resp, w.observed)
		for i, v := range verdicts {
			switch v {
			case oracle.MustAccept:
				rep.MustAccept++
			case oracle.MustReject:
				rep.MustReject++
			case oracle.MayReject:
				rep.MayReject++
			}
			if i < len(w.meta) && i < len(w.resp.Statuses) {
				cov.NoteMutationOutcome(w.meta[i].Mutation, v.String(),
					w.resp.Statuses[i].Code == p4rt.OK)
			}
		}
		for _, viol := range violations {
			detail := viol.String()
			if viol.UpdateIndex >= 0 && viol.UpdateIndex < len(w.meta) {
				m := w.meta[viol.UpdateIndex]
				detail += fmt.Sprintf(" (update: %s %v", m.Update.Type, m.Update.Entry.TableID)
				if m.Mutation != "" {
					detail += ", mutation: " + m.Mutation
				}
				detail += ")"
			}
			rep.Incidents = append(rep.Incidents, Incident{Tool: "p4-fuzzer", Kind: viol.Kind, Detail: detail})
		}
	}
	rep.Elapsed = time.Since(start)
	rep.PerMutation = f.PerMutation
	rep.Coverage = cov.Snapshot()
	return rep, genErr
}
