package switchv

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"switchv/internal/p4rt"
)

// noPipelineMsg is the status message a P4Runtime switch reports when it
// has no forwarding pipeline config — the telltale of a warm restart
// with state loss when this harness pushed a pipeline earlier.
const noPipelineMsg = "no forwarding pipeline config"

// SelfHealingDevice wraps a p4rt.Device with warm-restart recovery: it
// records the pushed pipeline config and the ordered log of accepted
// updates, and when the switch suddenly reports "no forwarding pipeline
// config" after a successful push (a generation reset — the device
// restarted and lost its tables), it re-pushes the config, replays the
// entry log, and re-executes the interrupted RPC. To the campaign above
// it, the restart is invisible: the replay reconstructs the exact
// pre-restart state, so the resumed run is byte-identical to one where
// the switch never restarted.
type SelfHealingDevice struct {
	inner p4rt.Device

	mu         sync.Mutex
	cfg        *p4rt.ForwardingPipelineConfig
	log        []p4rt.Update // accepted updates, in application order
	recoveries int
}

var _ p4rt.Device = (*SelfHealingDevice)(nil)

// NewSelfHealing wraps dev with warm-restart recovery.
func NewSelfHealing(dev p4rt.Device) *SelfHealingDevice {
	return &SelfHealingDevice{inner: dev}
}

// Recoveries returns how many generation resets were detected and
// healed — survival tests assert it is non-zero to prove the chaos
// restart actually happened.
func (d *SelfHealingDevice) Recoveries() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.recoveries
}

// SetForwardingPipelineConfig implements p4rt.Device, recording the
// config for replay.
func (d *SelfHealingDevice) SetForwardingPipelineConfig(cfg p4rt.ForwardingPipelineConfig) error {
	err := d.inner.SetForwardingPipelineConfig(cfg)
	if err == nil {
		d.mu.Lock()
		c := cfg
		d.cfg = &c
		d.mu.Unlock()
	}
	return err
}

// generationReset reports whether a write response is the all-updates
// "no forwarding pipeline config" failure that marks a restarted switch
// (per-update rejections never produce that message for every update of
// a batch after a successful push).
func generationReset(resp p4rt.WriteResponse) bool {
	if len(resp.Statuses) == 0 {
		return false
	}
	for _, st := range resp.Statuses {
		if st.Code != p4rt.FailedPrecondition || !strings.Contains(st.Message, noPipelineMsg) {
			return false
		}
	}
	return true
}

// Write implements p4rt.Device: on a generation reset it recovers and
// re-executes the batch, then records the accepted updates for future
// replays.
func (d *SelfHealingDevice) Write(req p4rt.WriteRequest) p4rt.WriteResponse {
	resp := d.inner.Write(req)
	if generationReset(resp) && d.recover() {
		resp = d.inner.Write(req)
	}
	d.mu.Lock()
	for i, st := range resp.Statuses {
		if i < len(req.Updates) && st.Code == p4rt.OK {
			d.log = append(d.log, req.Updates[i])
		}
	}
	d.mu.Unlock()
	return resp
}

// Read implements p4rt.Device, healing a generation reset surfaced as a
// FailedPrecondition read error.
func (d *SelfHealingDevice) Read(req p4rt.ReadRequest) (p4rt.ReadResponse, error) {
	resp, err := d.inner.Read(req)
	if err != nil {
		var se *p4rt.StatusError
		if errors.As(err, &se) && se.Status.Code == p4rt.FailedPrecondition &&
			strings.Contains(se.Status.Message, noPipelineMsg) && d.recover() {
			return d.inner.Read(req)
		}
	}
	return resp, err
}

// recover re-pushes the recorded pipeline config and replays the entry
// log, reconstructing the pre-restart switch state. Returns false when
// there is nothing to recover with (no config was ever pushed) or the
// replay fails — the caller then surfaces the original failure.
func (d *SelfHealingDevice) recover() bool {
	d.mu.Lock()
	cfg := d.cfg
	log := make([]p4rt.Update, len(d.log))
	copy(log, d.log)
	d.mu.Unlock()
	if cfg == nil {
		return false
	}
	if err := d.inner.SetForwardingPipelineConfig(*cfg); err != nil {
		return false
	}
	// Replay one update per RPC, in original application order, so
	// entry-to-entry references are re-established before their
	// dependents — the log's order already proved dependency-safe once.
	for _, u := range log {
		resp := d.inner.Write(p4rt.WriteRequest{Updates: []p4rt.Update{u}})
		for _, st := range resp.Statuses {
			if st.Code == p4rt.OK {
				continue
			}
			// A replayed Delete may find its target already gone; any
			// other failure means the state cannot be reconstructed.
			if u.Type == p4rt.Delete && st.Code == p4rt.NotFound {
				continue
			}
			return false
		}
	}
	d.mu.Lock()
	d.recoveries++
	d.mu.Unlock()
	return true
}

// PacketOut implements p4rt.Device.
func (d *SelfHealingDevice) PacketOut(p p4rt.PacketOut) error { return d.inner.PacketOut(p) }

// PacketIns implements p4rt.Device.
func (d *SelfHealingDevice) PacketIns() <-chan p4rt.PacketIn { return d.inner.PacketIns() }

// InjectFrame passes through data-plane injection when the inner device
// supports it.
func (d *SelfHealingDevice) InjectFrame(req p4rt.InjectRequest) (p4rt.InjectResult, error) {
	if dp, ok := d.inner.(p4rt.DataPlaneDevice); ok {
		return dp.InjectFrame(req)
	}
	return p4rt.InjectResult{}, fmt.Errorf("switchv: inner device has no data-plane injection")
}
