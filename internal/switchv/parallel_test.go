package switchv

import (
	"reflect"
	"testing"

	"switchv/internal/fuzzer"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4rt"
	"switchv/internal/switchsim"
	"switchv/models"
)

// simFactory builds one in-process simulated switch per shard.
func simFactory(role string, faults ...switchsim.Fault) StackFactory {
	return func(shard int) (p4rt.Device, func(), error) {
		sw := switchsim.New(role, faults...)
		return sw, func() { sw.Close() }, nil
	}
}

// parallelFuzz keeps sharded unit-test campaigns quick: the budget here
// is the total across shards.
var parallelFuzz = fuzzer.Options{Seed: 7, NumRequests: 24, UpdatesPerRequest: 12}

func TestShardBatchSplit(t *testing.T) {
	for _, c := range []struct{ total, shards int }{
		{24, 8}, {25, 8}, {7, 8}, {1, 8}, {1000, 3},
	} {
		sum, max, min := 0, 0, int(^uint(0)>>1)
		for s := 0; s < c.shards; s++ {
			n := shardBatches(c.total, c.shards, s)
			sum += n
			if n > max {
				max = n
			}
			if n < min {
				min = n
			}
		}
		if sum != c.total {
			t.Errorf("split(%d,%d) sums to %d", c.total, c.shards, sum)
		}
		if max-min > 1 {
			t.Errorf("split(%d,%d) unbalanced: min %d max %d", c.total, c.shards, min, max)
		}
	}
}

// TestPipelinedMatchesSequential: overlapping the switch side with the
// oracle side must not change any campaign result — same verdicts, same
// incidents, same final coverage counts.
func TestPipelinedMatchesSequential(t *testing.T) {
	opts := fuzzer.Options{Seed: 3, NumRequests: 30, UpdatesPerRequest: 15}

	hSeq, _ := newHarness(t, "middleblock")
	seq, err := hSeq.RunControlPlane(opts)
	if err != nil {
		t.Fatal(err)
	}
	hPipe, _ := newHarness(t, "middleblock")
	pipe, err := hPipe.RunControlPlanePipelined(opts, 4)
	if err != nil {
		t.Fatal(err)
	}

	if seq.Batches != pipe.Batches || seq.Updates != pipe.Updates {
		t.Errorf("batches/updates: sequential %d/%d, pipelined %d/%d",
			seq.Batches, seq.Updates, pipe.Batches, pipe.Updates)
	}
	if seq.MustAccept != pipe.MustAccept || seq.MustReject != pipe.MustReject ||
		seq.MayReject != pipe.MayReject {
		t.Errorf("verdicts: sequential %d/%d/%d, pipelined %d/%d/%d",
			seq.MustAccept, seq.MustReject, seq.MayReject,
			pipe.MustAccept, pipe.MustReject, pipe.MayReject)
	}
	if !reflect.DeepEqual(seq.Incidents, pipe.Incidents) {
		t.Errorf("incidents differ:\nsequential: %v\npipelined:  %v", seq.Incidents, pipe.Incidents)
	}
	if !reflect.DeepEqual(seq.Coverage.Counts, pipe.Coverage.Counts) {
		t.Error("final coverage counts differ between sequential and pipelined runs")
	}
	if !reflect.DeepEqual(seq.PerMutation, pipe.PerMutation) {
		t.Errorf("per-mutation stats differ:\nsequential: %v\npipelined:  %v",
			seq.PerMutation, pipe.PerMutation)
	}
}

// runParallel is the test harness around RunParallelCampaign.
func runParallel(t *testing.T, workers int, faults ...switchsim.Fault) *ParallelReport {
	t.Helper()
	info := p4info.New(models.MustLoad("middleblock"))
	rep, err := RunParallelCampaign(info, ParallelOptions{
		Workers: workers,
		Shards:  4,
		Fuzz:    parallelFuzz,
		Factory: simFactory("middleblock", faults...),
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestParallelDeterministicAcrossWorkerCounts is the engine's
// determinism contract (and the ISSUE's satellite test): the same root
// seed must produce the same merged table-coverage set — and the same
// merged counts, verdicts and incident signature — at workers=1 and
// workers=4.
func TestParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	one := runParallel(t, 1)
	four := runParallel(t, 4)

	if got, want := four.Coverage.TablesAccepted(), one.Coverage.TablesAccepted(); !reflect.DeepEqual(got, want) {
		t.Errorf("merged table coverage differs: workers=4 %v, workers=1 %v", got, want)
	}
	if !reflect.DeepEqual(one.Coverage.Counts, four.Coverage.Counts) {
		t.Error("merged coverage counts differ between workers=1 and workers=4")
	}
	if one.Coverage.Universe != four.Coverage.Universe || one.Coverage.Covered != four.Coverage.Covered {
		t.Errorf("universe/covered differ: workers=1 %d/%d, workers=4 %d/%d",
			one.Coverage.Universe, one.Coverage.Covered, four.Coverage.Universe, four.Coverage.Covered)
	}
	if one.Batches != four.Batches || one.Updates != four.Updates ||
		one.MustAccept != four.MustAccept || one.MustReject != four.MustReject ||
		one.MayReject != four.MayReject {
		t.Errorf("merged stats differ:\nworkers=1: %+v\nworkers=4: %+v", one, four)
	}
	if !reflect.DeepEqual(one.Incidents, four.Incidents) {
		t.Errorf("merged incidents differ:\nworkers=1: %v\nworkers=4: %v", one.Incidents, four.Incidents)
	}
	if !reflect.DeepEqual(one.PerMutation, four.PerMutation) {
		t.Error("merged per-mutation stats differ between worker counts")
	}
	if one.Batches != parallelFuzz.NumRequests {
		t.Errorf("merged batches = %d, want the full budget %d", one.Batches, parallelFuzz.NumRequests)
	}
}

// TestParallelShardSeedsDiffer: each shard must fuzz a distinct stream.
func TestParallelShardSeedsDiffer(t *testing.T) {
	rep := runParallel(t, 2)
	if len(rep.PerShard) != 4 {
		t.Fatalf("PerShard has %d entries, want 4", len(rep.PerShard))
	}
	seeds := map[int64]bool{}
	for _, s := range rep.PerShard {
		if seeds[s.Seed] {
			t.Errorf("duplicate shard seed %d", s.Seed)
		}
		seeds[s.Seed] = true
		if s.Batches == 0 {
			t.Errorf("shard %d ran no batches", s.Shard)
		}
	}
}

// TestParallelCampaignFindsFaultsAndDedups: with the same fault injected
// into every shard's stack, the merged incident set is non-empty and
// contains no duplicate (tool, kind, detail) triples.
func TestParallelCampaignFindsFaultsAndDedups(t *testing.T) {
	rep := runParallel(t, 2, switchsim.FaultAcceptInvalidReference)
	if len(rep.Incidents) == 0 {
		t.Fatal("fault not detected by the parallel campaign")
	}
	seen := map[Incident]bool{}
	for _, inc := range rep.Incidents {
		if seen[inc] {
			t.Errorf("duplicate incident survived dedup: %s", inc)
		}
		seen[inc] = true
	}
	kinds := IncidentKinds(rep.Incidents)
	if len(kinds) == 0 || !sorted(kinds) {
		t.Errorf("IncidentKinds not a sorted non-empty set: %v", kinds)
	}
}

func sorted(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

// TestParallelCoverageGuidedStillDeterministic: guided scheduling forces
// the per-shard loops synchronous, but sharding must stay deterministic.
func TestParallelCoverageGuidedStillDeterministic(t *testing.T) {
	run := func(workers int) *ParallelReport {
		info := p4info.New(models.MustLoad("middleblock"))
		opts := parallelFuzz
		opts.CoverageGuided = true
		rep, err := RunParallelCampaign(info, ParallelOptions{
			Workers: workers, Shards: 4, Fuzz: opts,
			Factory: simFactory("middleblock"),
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	one, four := run(1), run(4)
	if !reflect.DeepEqual(one.Coverage.Counts, four.Coverage.Counts) {
		t.Error("guided merged coverage differs between workers=1 and workers=4")
	}
}
