package switchv

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"switchv/internal/fuzzer"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4rt"
	"switchv/internal/switchsim"
	"switchv/models"
)

// TestSelfHealingRecoversAfterRestart: a restart wipes the switch; the
// self-healing wrapper must re-push the pipeline, replay the entry log
// and leave the device indistinguishable from one that never restarted.
func TestSelfHealingRecoversAfterRestart(t *testing.T) {
	sw := switchsim.New("middleblock")
	defer sw.Close()
	info := p4info.New(models.MustLoad("middleblock"))
	shd := NewSelfHealing(sw)
	h := New(info, shd, sw)
	if err := h.PushPipeline(); err != nil {
		t.Fatal(err)
	}
	for _, e := range fixtureEntries("middleblock") {
		resp := shd.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert, Entry: p4rt.ToWire(e)}}})
		if !resp.OK() {
			t.Fatalf("installing %s: %s", e, resp.String())
		}
	}
	before, err := shd.Read(p4rt.ReadRequest{})
	if err != nil {
		t.Fatal(err)
	}

	sw.Restart()

	// The next Read hits "no forwarding pipeline config"; the wrapper
	// must heal it transparently and return the reconstructed state.
	after, err := shd.Read(p4rt.ReadRequest{})
	if err != nil {
		t.Fatalf("Read across a restart: %v", err)
	}
	if len(after.Entries) != len(before.Entries) {
		t.Fatalf("recovered %d entries, want %d", len(after.Entries), len(before.Entries))
	}
	if !reflect.DeepEqual(after.Entries, before.Entries) {
		t.Error("recovered state differs from the pre-restart state")
	}
	if shd.Recoveries() != 1 {
		t.Errorf("Recoveries() = %d, want 1", shd.Recoveries())
	}

	// Writes keep working after the heal.
	if resp := shd.Write(p4rt.WriteRequest{}); len(resp.Statuses) != 0 {
		t.Errorf("empty write after recovery: %+v", resp)
	}
}

// TestSelfHealingWithoutConfigSurfacesFailure: a restart before any
// pipeline push cannot be healed — the original failure must surface.
func TestSelfHealingWithoutConfigSurfacesFailure(t *testing.T) {
	sw := switchsim.New("middleblock")
	defer sw.Close()
	shd := NewSelfHealing(sw)
	resp := shd.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert}}})
	if len(resp.Statuses) != 1 || resp.Statuses[0].Code != p4rt.FailedPrecondition {
		t.Errorf("write without pipeline = %+v, want the raw FailedPrecondition", resp)
	}
	if shd.Recoveries() != 0 {
		t.Errorf("recovery claimed with nothing to recover from")
	}
}

// tornDevice wraps the simulator and tears chosen Write calls: the
// batch is applied, but the response is replaced with the transport
// failure a lost ACK produces.
type tornDevice struct {
	*switchsim.Switch
	mu     sync.Mutex
	calls  int
	tearAt map[int]bool
	torn   int
}

func (d *tornDevice) Write(req p4rt.WriteRequest) p4rt.WriteResponse {
	resp := d.Switch.Write(req)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.calls++
	if d.tearAt[d.calls] {
		d.torn++
		return p4rt.WriteResponse{Statuses: []p4rt.Status{
			p4rt.Statusf(p4rt.Internal, "transport: %v", errors.New("ACK lost in flight"))}}
	}
	return resp
}

// TestReconcileTornWrite: with Harness.Reconcile, a torn write is
// resolved purely by read-back — no retry, no replay cache — and the
// campaign report is byte-identical to the fault-free run. Without it,
// the torn write perturbs the report.
func TestReconcileTornWrite(t *testing.T) {
	info := p4info.New(models.MustLoad("middleblock"))
	run := func(tearAt map[int]bool, reconcile bool) ([]byte, int, error) {
		sw := &tornDevice{Switch: switchsim.New("middleblock"), tearAt: tearAt}
		defer sw.Close()
		h := New(info, sw, sw)
		h.Reconcile = reconcile
		if err := h.PushPipeline(); err != nil {
			return nil, 0, err
		}
		rep, err := h.RunControlPlane(smallFuzz)
		if err != nil {
			return nil, sw.torn, err
		}
		data, err := rep.Canon().JSON()
		return data, sw.torn, err
	}

	want, _, err := run(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	// Tear two mid-campaign batches (Write call k is batch k-1).
	tears := map[int]bool{4: true, 11: true}
	got, torn, err := run(tears, true)
	if err != nil {
		t.Fatalf("reconciling campaign died: %v", err)
	}
	if torn != len(tears) {
		t.Fatalf("%d writes torn, want %d", torn, len(tears))
	}
	if !bytes.Equal(got, want) {
		t.Errorf("reconciled report is not byte-identical to the fault-free run")
	}

	unrec, torn, err := run(tears, false)
	if err == nil && bytes.Equal(unrec, want) {
		t.Error("unreconciled torn writes left the report byte-identical — the tear is decorative")
	}
	if torn != len(tears) {
		t.Errorf("unreconciled run tore %d writes, want %d", torn, len(tears))
	}
}

// TestIsTransportFailureShape: only the exact single-status transport
// shape triggers reconciliation — device-level Internal errors must not.
func TestIsTransportFailureShape(t *testing.T) {
	cases := []struct {
		resp p4rt.WriteResponse
		want bool
	}{
		{p4rt.WriteResponse{Statuses: []p4rt.Status{p4rt.Statusf(p4rt.Internal, "transport: RPC timeout")}}, true},
		{p4rt.WriteResponse{Statuses: []p4rt.Status{p4rt.Statusf(p4rt.Internal, "constraint engine: boom")}}, false},
		{p4rt.WriteResponse{Statuses: []p4rt.Status{p4rt.Statusf(p4rt.Unavailable, "transport: down")}}, false},
		{p4rt.WriteResponse{Statuses: []p4rt.Status{
			p4rt.Statusf(p4rt.Internal, "transport: a"), p4rt.Statusf(p4rt.Internal, "transport: b")}}, false},
		{p4rt.WriteResponse{}, false},
	}
	for i, c := range cases {
		if got := isTransportFailure(c.resp); got != c.want {
			t.Errorf("case %d: isTransportFailure(%+v) = %v, want %v", i, c.resp, got, c.want)
		}
	}
}

// TestParallelQuarantine: with Quarantine on, a shard whose stack
// cannot be built is sidelined with its derived seed and the campaign
// completes over the healthy shards; with it off the same failure kills
// the run.
func TestParallelQuarantine(t *testing.T) {
	info := p4info.New(models.MustLoad("middleblock"))
	brokenFactory := func(shard int) (p4rt.Device, func(), error) {
		if shard == 1 {
			return nil, nil, fmt.Errorf("shard hardware on fire")
		}
		sw := switchsim.New("middleblock")
		return sw, func() { sw.Close() }, nil
	}

	opts := ParallelOptions{
		Shards: 4, Workers: 2, Fuzz: parallelFuzz,
		Factory: brokenFactory, Quarantine: true,
	}
	rep, err := RunParallelCampaign(info, opts)
	if err != nil {
		t.Fatalf("quarantined campaign failed outright: %v", err)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("Quarantined = %+v, want exactly shard 1", rep.Quarantined)
	}
	q := rep.Quarantined[0]
	if q.Shard != 1 || q.Seed != fuzzer.DeriveSeed(parallelFuzz.Seed, 1) ||
		!strings.Contains(q.Reason, "on fire") {
		t.Errorf("quarantine record = %+v", q)
	}
	if len(rep.PerShard) != 4 {
		t.Errorf("PerShard has %d entries, want all 4 shards accounted for", len(rep.PerShard))
	}
	if rep.Batches == 0 || rep.Updates == 0 {
		t.Error("healthy shards contributed nothing to the merged report")
	}
	data, err := rep.Canon().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"quarantined"`)) {
		t.Error("canonical report of a degraded run does not record the quarantine")
	}

	// Same failure without Quarantine: the campaign errors.
	opts.Quarantine = false
	if _, err := RunParallelCampaign(info, opts); err == nil ||
		!strings.Contains(err.Error(), "on fire") {
		t.Errorf("unquarantined campaign returned %v, want the shard error", err)
	}
}

// TestCleanRunOmitsQuarantineField: reports from clean runs must stay
// byte-identical to pre-quarantine reports — the field is omitempty.
func TestCleanRunOmitsQuarantineField(t *testing.T) {
	info := p4info.New(models.MustLoad("middleblock"))
	rep, err := RunParallelCampaign(info, ParallelOptions{
		Shards: 2, Fuzz: parallelFuzz, Factory: simFactory("middleblock"), Quarantine: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.Canon().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("quarantined")) {
		t.Error(`clean run's canonical JSON contains "quarantined"`)
	}
}
