package switchv

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"

	"switchv/internal/p4/p4info"
	"switchv/internal/p4rt"
	"switchv/models"
)

// canonJSON renders a report's deterministic projection for byte-level
// comparison.
func canonJSON(t *testing.T, rep *ParallelReport) []byte {
	t.Helper()
	data, err := rep.Canon().JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// roundTripCheckpoint pushes a checkpoint through its JSON encoding, as
// the daemon's on-disk store does, so the parity claim covers the
// serialized form and not just the in-memory structs.
func roundTripCheckpoint(t *testing.T, cp *ShardCheckpoint) *ShardCheckpoint {
	t.Helper()
	data, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	out := &ShardCheckpoint{}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestResumeParity is the checkpoint/resume determinism contract: a
// campaign stopped cooperatively after k shards and resumed from its
// (JSON round-tripped) checkpoints merges to a canonical report
// byte-identical to an uninterrupted run of the same (seed, shards).
func TestResumeParity(t *testing.T) {
	info := p4info.New(models.MustLoad("middleblock"))
	base := ParallelOptions{
		Workers: 1,
		Shards:  4,
		Fuzz:    parallelFuzz,
		Factory: simFactory("middleblock"),
	}

	full, err := RunParallelCampaign(info, base)
	if err != nil {
		t.Fatal(err)
	}

	// First leg: checkpoint every shard, kill after two.
	checkpoints := map[int]*ShardCheckpoint{}
	var mu sync.Mutex
	stopAfter := 2
	opts := base
	opts.OnShard = func(shard int, cp *ShardCheckpoint) error {
		mu.Lock()
		defer mu.Unlock()
		checkpoints[shard] = roundTripCheckpoint(t, cp)
		if len(checkpoints) >= stopAfter {
			return fmt.Errorf("simulated daemon kill")
		}
		return nil
	}
	partial, err := RunParallelCampaign(info, opts)
	if !errors.Is(err, ErrCampaignStopped) {
		t.Fatalf("stopped campaign returned %v, want ErrCampaignStopped", err)
	}
	if partial.ResumedShards != 0 {
		t.Errorf("first leg reports %d resumed shards, want 0", partial.ResumedShards)
	}
	if len(checkpoints) >= base.Shards {
		t.Fatalf("stop was not cooperative: all %d shards ran", base.Shards)
	}

	// Second leg: resume from the store.
	opts = base
	opts.Resume = checkpoints
	calls := 0
	opts.OnShard = func(shard int, cp *ShardCheckpoint) error {
		if checkpoints[shard] != nil {
			t.Errorf("OnShard called for resumed shard %d", shard)
		}
		calls++
		return nil
	}
	resumed, err := RunParallelCampaign(info, opts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.ResumedShards != len(checkpoints) {
		t.Errorf("resumed shards = %d, want %d", resumed.ResumedShards, len(checkpoints))
	}
	if calls != base.Shards-len(checkpoints) {
		t.Errorf("OnShard ran for %d shards, want %d", calls, base.Shards-len(checkpoints))
	}

	got, want := canonJSON(t, resumed), canonJSON(t, full)
	if !bytes.Equal(got, want) {
		t.Errorf("resumed canonical report differs from uninterrupted run:\nresumed:       %.400s\nuninterrupted: %.400s", got, want)
	}
}

// TestResumeAllShards: a campaign whose every shard is checkpointed
// re-executes nothing and still merges the identical report.
func TestResumeAllShards(t *testing.T) {
	info := p4info.New(models.MustLoad("middleblock"))
	base := ParallelOptions{
		Workers: 2,
		Shards:  4,
		Fuzz:    parallelFuzz,
		Factory: simFactory("middleblock"),
	}
	checkpoints := map[int]*ShardCheckpoint{}
	var mu sync.Mutex
	opts := base
	opts.OnShard = func(shard int, cp *ShardCheckpoint) error {
		mu.Lock()
		defer mu.Unlock()
		checkpoints[shard] = roundTripCheckpoint(t, cp)
		return nil
	}
	full, err := RunParallelCampaign(info, opts)
	if err != nil {
		t.Fatal(err)
	}

	opts = base
	opts.Resume = checkpoints
	opts.Factory = func(shard int) (p4rt.Device, func(), error) {
		t.Errorf("factory called for shard %d despite full resume", shard)
		return nil, nil, fmt.Errorf("no stack")
	}
	resumed, err := RunParallelCampaign(info, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonJSON(t, resumed), canonJSON(t, full)) {
		t.Error("fully resumed canonical report differs from original run")
	}
	for _, s := range resumed.PerShard {
		if s.Worker != -1 {
			t.Errorf("shard %d restored from checkpoint has worker %d, want -1", s.Shard, s.Worker)
		}
	}
}
