// Package workload synthesizes production-scale table entry sets — the
// stand-in for the production entry replays the paper feeds p4-symbolic
// (798 entries for Inst1, 1314 for Inst2 in Table 3). The shape follows a
// datacenter routing snapshot: a few VRFs, a rack's worth of router
// interfaces and neighbors, WCMP groups, ACL policy, and a long tail of
// IPv4/IPv6 routes.
package workload

import (
	"fmt"
	"math/rand"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
)

// Entries generates a valid, reference-closed entry set of (approximately,
// capped by table sizes) the requested total size for the model, in
// installation (dependency) order.
func Entries(prog *ir.Program, total int, seed int64) ([]*pdpi.Entry, error) {
	g := &gen{prog: prog, rng: rand.New(rand.NewSource(seed))}
	if err := g.build(total); err != nil {
		return nil, err
	}
	return g.entries, nil
}

// MustEntries is Entries for benchmarks; it panics on error.
func MustEntries(prog *ir.Program, total int, seed int64) []*pdpi.Entry {
	out, err := Entries(prog, total, seed)
	if err != nil {
		panic(err)
	}
	return out
}

type gen struct {
	prog    *ir.Program
	rng     *rand.Rand
	entries []*pdpi.Entry
}

func (g *gen) table(name string) (*ir.Table, bool) { return g.prog.TableByName(name) }

func (g *gen) action(name string) *ir.Action {
	a, ok := g.prog.ActionByName(name)
	if !ok {
		panic("workload: missing action " + name)
	}
	return a
}

func (g *gen) add(e *pdpi.Entry) error {
	if err := e.Validate(); err != nil {
		return fmt.Errorf("workload: %v (%s)", err, e)
	}
	g.entries = append(g.entries, e)
	return nil
}

// cap clamps n to a table's guaranteed size (leaving one slot spare).
func tcap(t *ir.Table, n int) int {
	if t == nil {
		return 0
	}
	if n >= t.Size {
		return t.Size - 1
	}
	return n
}

func (g *gen) build(total int) error {
	// The skeleton (everything except routes) scales with the requested
	// total so small workloads still leave room for routes, which carry
	// most of the forwarding behavior.
	scale := func(n int, min int) int {
		v := n * total / 800
		if v < min {
			return min
		}
		if v > n {
			return n
		}
		return v
	}
	var (
		numVRFs   = 4
		numRIFs   = scale(48, 8)
		numNH     = scale(120, 16)
		numWCMP   = scale(24, 4)
		numACLIn  = scale(32, 8)
		numACLPre = 6
		numACLEg  = scale(6, 2)
		numL3     = 4
		numMirror = 2
		numVLAN   = scale(32, 4)
		numTunnel = scale(16, 4)
	)

	vrfTbl, _ := g.table("vrf_table")
	rifTbl, _ := g.table("router_interface_table")
	nhTbl, _ := g.table("nexthop_table")
	nbTbl, _ := g.table("neighbor_table")
	wcmpTbl, _ := g.table("wcmp_group_table")

	vrfs := tcap(vrfTbl, numVRFs)
	rifs := tcap(rifTbl, numRIFs)
	nhs := tcap(nhTbl, numNH)
	wcmps := tcap(wcmpTbl, numWCMP)

	// VRFs.
	for i := 1; i <= vrfs; i++ {
		if err := g.add(&pdpi.Entry{
			Table:   vrfTbl,
			Matches: []pdpi.Match{{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(uint64(i), 10)}},
			Action:  &pdpi.ActionInvocation{Action: g.prog.NoAction},
		}); err != nil {
			return err
		}
	}
	// Router interfaces (ports 10..10+rifs).
	for i := 1; i <= rifs; i++ {
		if err := g.add(&pdpi.Entry{
			Table:   rifTbl,
			Matches: []pdpi.Match{{Key: "router_interface_id", Kind: ir.MatchExact, Value: value.New(uint64(i), 10)}},
			Action: &pdpi.ActionInvocation{Action: g.action("set_port_and_src_mac"),
				Args: []value.V{value.New(uint64(10+i%16), 16), value.New(0x020000000000+uint64(i), 48)}},
		}); err != nil {
			return err
		}
	}
	// Neighbors: one per router interface.
	for i := 1; i <= rifs; i++ {
		if err := g.add(&pdpi.Entry{
			Table: nbTbl,
			Matches: []pdpi.Match{
				{Key: "router_interface_id", Kind: ir.MatchExact, Value: value.New(uint64(i), 10)},
				{Key: "neighbor_id", Kind: ir.MatchExact, Value: value.New(uint64(i), 10)},
			},
			Action: &pdpi.ActionInvocation{Action: g.action("set_dst_mac"),
				Args: []value.V{value.New(0x02aa00000000+uint64(i), 48)}},
		}); err != nil {
			return err
		}
	}
	// VLANs and tunnels precede nexthops so tunnel references resolve.
	numVLANs := 0
	if t, ok := g.table("vlan_table"); ok {
		numVLANs = tcap(t, numVLAN)
		for i := 1; i <= numVLANs; i++ {
			if err := g.add(&pdpi.Entry{
				Table:   t,
				Matches: []pdpi.Match{{Key: "vlan_id", Kind: ir.MatchExact, Value: value.New(uint64(i+1), 12)}},
				Action:  &pdpi.ActionInvocation{Action: g.action("vlan_admit")},
			}); err != nil {
				return err
			}
		}
	}
	tunnels := 0
	if t, ok := g.table("tunnel_table"); ok {
		tunnels = tcap(t, numTunnel)
		for i := 1; i <= tunnels; i++ {
			if err := g.add(&pdpi.Entry{
				Table:   t,
				Matches: []pdpi.Match{{Key: "tunnel_id", Kind: ir.MatchExact, Value: value.New(uint64(i), 10)}},
				Action: &pdpi.ActionInvocation{Action: g.action("encap_gre"),
					Args: []value.V{value.New(0xc0000200+uint64(i), 32), value.New(0xc6336400+uint64(i), 32)}},
			}); err != nil {
				return err
			}
		}
	}

	// Nexthops spread across router interfaces; on tunnel-capable models
	// every eighth nexthop encapsulates.
	for i := 1; i <= nhs; i++ {
		rif := uint64(1 + (i-1)%rifs)
		inv := &pdpi.ActionInvocation{Action: g.action("set_nexthop"),
			Args: []value.V{value.New(rif, 10), value.New(rif, 10)}}
		if tunnels > 0 && i%8 == 0 {
			inv = &pdpi.ActionInvocation{Action: g.action("set_nexthop_and_tunnel"),
				Args: []value.V{value.New(rif, 10), value.New(rif, 10), value.New(uint64(1+i%tunnels), 10)}}
		}
		if err := g.add(&pdpi.Entry{
			Table:   nhTbl,
			Matches: []pdpi.Match{{Key: "nexthop_id", Kind: ir.MatchExact, Value: value.New(uint64(i), 10)}},
			Action:  inv,
		}); err != nil {
			return err
		}
	}
	// WCMP groups of 2-4 members.
	for i := 1; i <= wcmps; i++ {
		n := 2 + g.rng.Intn(3)
		var set []pdpi.WeightedAction
		for m := 0; m < n; m++ {
			nh := uint64(1 + g.rng.Intn(nhs))
			set = append(set, pdpi.WeightedAction{
				ActionInvocation: pdpi.ActionInvocation{Action: g.action("set_nexthop_id"),
					Args: []value.V{value.New(nh, 10)}},
				Weight: 1 + g.rng.Intn(4),
			})
		}
		if err := g.add(&pdpi.Entry{
			Table:     wcmpTbl,
			Matches:   []pdpi.Match{{Key: "wcmp_group_id", Kind: ir.MatchExact, Value: value.New(uint64(i), 10)}},
			ActionSet: set,
		}); err != nil {
			return err
		}
	}
	// L3 admission, ACLs, mirrors, VLANs, tunnels.
	if err := g.addPolicy(numL3, numACLPre, numACLIn, numACLEg, numMirror, vrfs); err != nil {
		return err
	}
	// Fill the remainder with routes, 70% IPv4 / 30% IPv6.
	remainder := total - len(g.entries)
	if remainder < 0 {
		remainder = 0
	}
	nV4 := remainder * 7 / 10
	nV6 := remainder - nV4
	if t, _ := g.table("ipv4_table"); t != nil {
		nV4 = tcap(t, nV4)
	}
	if t, _ := g.table("ipv6_table"); t != nil {
		nV6 = tcap(t, nV6)
	}
	if err := g.addV4Routes(nV4, vrfs, nhs, wcmps); err != nil {
		return err
	}
	if err := g.addV6Routes(nV6, vrfs, nhs); err != nil {
		return err
	}
	return nil
}

func (g *gen) addPolicy(numL3, numPre, numIn, numEg, numMirror, vrfs int) error {
	if t, ok := g.table("l3_admit_table"); ok {
		for i := 0; i < tcap(t, numL3); i++ {
			if err := g.add(&pdpi.Entry{
				Table: t,
				Matches: []pdpi.Match{{Key: "dst_mac", Kind: ir.MatchTernary,
					Value: value.New(0x0200000000a0+uint64(i), 48), Mask: value.Ones(48)}},
				Priority: int32(1 + i),
				Action:   &pdpi.ActionInvocation{Action: g.action("admit_to_l3")},
			}); err != nil {
				return err
			}
		}
	}
	if t, ok := g.table("acl_pre_ingress_table"); ok {
		// Partition traffic across the VRFs by the low DSCP bits so every
		// VRF (and hence every route) stays reachable: dscp&3 == k -> VRF
		// k+1. Non-IPv4 traffic reads dscp as 0 and lands in VRF 1.
		n := vrfs
		if c := tcap(t, numPre); c < n {
			n = c
		}
		for k := 0; k < n; k++ {
			if err := g.add(&pdpi.Entry{
				Table: t,
				Matches: []pdpi.Match{
					{Key: "dscp", Kind: ir.MatchTernary, Value: value.New(uint64(k), 6), Mask: value.New(3, 6)},
				},
				Priority: int32(1 + k),
				Action:   &pdpi.ActionInvocation{Action: g.action("set_vrf"), Args: []value.V{value.New(uint64(k+1), 10)}},
			}); err != nil {
				return err
			}
		}
	}
	if t, ok := g.table("mirror_session_table"); ok {
		for i := 1; i <= tcap(t, numMirror); i++ {
			if err := g.add(&pdpi.Entry{
				Table:   t,
				Matches: []pdpi.Match{{Key: "mirror_session_id", Kind: ir.MatchExact, Value: value.New(uint64(i), 10)}},
				Action:  &pdpi.ActionInvocation{Action: g.action("set_mirror_port"), Args: []value.V{value.New(uint64(20+i), 16)}},
			}); err != nil {
				return err
			}
		}
	}
	if t, ok := g.table("acl_ingress_table"); ok {
		// One rule matching a *post-rewrite* destination MAC (neighbor 1):
		// copies of routed traffic toward that neighbor go to the
		// controller. Distinguishes pre- vs post-rewrite ACL evaluation.
		if tcap(t, numIn) > 0 {
			if err := g.add(&pdpi.Entry{
				Table: t,
				Matches: []pdpi.Match{
					{Key: "dst_mac", Kind: ir.MatchTernary, Value: value.New(0x02aa00000001, 48), Mask: value.Ones(48)},
				},
				Priority: 9,
				Action:   &pdpi.ActionInvocation{Action: g.action("acl_copy")},
			}); err != nil {
				return err
			}
		}
		for i := 0; i < tcap(t, numIn); i++ {
			var matches []pdpi.Match
			var inv *pdpi.ActionInvocation
			switch i % 4 {
			case 0: // punt a TCP control port
				matches = []pdpi.Match{
					{Key: "ip_protocol", Kind: ir.MatchTernary, Value: value.New(6, 8), Mask: value.Ones(8)},
					{Key: "l4_dst_port", Kind: ir.MatchTernary, Value: value.New(uint64(179+i), 16), Mask: value.Ones(16)},
				}
				inv = &pdpi.ActionInvocation{Action: g.action("acl_trap")}
			case 1: // drop a source MAC
				matches = []pdpi.Match{
					{Key: "dst_mac", Kind: ir.MatchTernary, Value: value.New(0x02bad0000000+uint64(i), 48), Mask: value.Ones(48)},
				}
				inv = &pdpi.ActionInvocation{Action: g.action("acl_drop")}
			case 2: // copy ICMP (v4)
				matches = []pdpi.Match{
					{Key: "is_ipv4", Kind: ir.MatchOptional, Value: value.New(1, 1)},
					{Key: "ip_protocol", Kind: ir.MatchTernary, Value: value.New(1, 8), Mask: value.Ones(8)},
					{Key: "icmp_type", Kind: ir.MatchTernary, Value: value.New(uint64(i%16), 8), Mask: value.Ones(8)},
				}
				inv = &pdpi.ActionInvocation{Action: g.action("acl_copy")}
			default: // mirror UDP flows
				matches = []pdpi.Match{
					{Key: "ip_protocol", Kind: ir.MatchTernary, Value: value.New(17, 8), Mask: value.Ones(8)},
					{Key: "l4_dst_port", Kind: ir.MatchTernary, Value: value.New(uint64(4000+i), 16), Mask: value.Ones(16)},
				}
				inv = &pdpi.ActionInvocation{Action: g.action("acl_mirror"),
					Args: []value.V{value.New(uint64(1+i%2), 10)}}
			}
			if err := g.add(&pdpi.Entry{
				Table:    t,
				Matches:  matches,
				Priority: int32(10 + i),
				Action:   inv,
			}); err != nil {
				return err
			}
		}
	}
	if t, ok := g.table("acl_egress_table"); ok {
		for i := 0; i < tcap(t, numEg); i++ {
			if err := g.add(&pdpi.Entry{
				Table: t,
				Matches: []pdpi.Match{
					{Key: "ip_protocol", Kind: ir.MatchTernary, Value: value.New(uint64(200+i), 8), Mask: value.Ones(8)},
				},
				Priority: int32(1 + i),
				Action:   &pdpi.ActionInvocation{Action: g.action(g.egressDropAction())},
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func (g *gen) egressDropAction() string {
	if _, ok := g.prog.ActionByName("acl_egress_drop"); ok {
		return "acl_egress_drop"
	}
	return "acl_drop"
}

// addV4Routes emits n unique IPv4 routes across the VRFs: mostly /24s with
// a sprinkle of /16s, /32s, and drop routes, plus some WCMP targets.
func (g *gen) addV4Routes(n, vrfs, nhs, wcmps int) error {
	t, ok := g.table("ipv4_table")
	if !ok {
		return nil
	}
	if n > 0 {
		// A default route in VRF 1 (so broadcast-class destinations have
		// defined forwarding behavior).
		if err := g.add(&pdpi.Entry{
			Table: t,
			Matches: []pdpi.Match{
				{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(1, 10)},
				{Key: "ipv4_dst", Kind: ir.MatchLPM, Value: value.Zero(32), PrefixLen: 0},
			},
			Action: &pdpi.ActionInvocation{Action: g.action("set_nexthop_id"),
				Args: []value.V{value.New(1, 10)}},
		}); err != nil {
			return err
		}
		n--
	}
	for i := 0; i < n; i++ {
		vrf := uint64(1 + i%vrfs)
		var prefix uint64
		var plen int
		switch {
		case i%17 == 0:
			plen = 16
			prefix = uint64(10)<<24 | uint64(i%250+1)<<16
		case i%11 == 0:
			plen = 32
			prefix = uint64(10)<<24 | uint64(i%250+1)<<16 | uint64(i/250%250+1)<<8 | uint64(i%250+2)
		default:
			plen = 24
			prefix = uint64(10)<<24 | uint64(i%250+1)<<16 | uint64(i/250%250+1)<<8
		}
		var inv *pdpi.ActionInvocation
		switch {
		case i%23 == 0:
			inv = &pdpi.ActionInvocation{Action: g.action("drop")}
		case i%5 == 0 && wcmps > 0:
			inv = &pdpi.ActionInvocation{Action: g.action("set_wcmp_group_id"),
				Args: []value.V{value.New(uint64(1+i%wcmps), 10)}}
		default:
			inv = &pdpi.ActionInvocation{Action: g.action("set_nexthop_id"),
				Args: []value.V{value.New(uint64(1+i%nhs), 10)}}
		}
		e := &pdpi.Entry{
			Table: t,
			Matches: []pdpi.Match{
				{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(vrf, 10)},
				{Key: "ipv4_dst", Kind: ir.MatchLPM, Value: value.New(prefix, 32).And(value.PrefixMask(plen, 32)), PrefixLen: plen},
			},
			Action: inv,
		}
		if err := g.add(e); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) addV6Routes(n, vrfs, nhs int) error {
	t, ok := g.table("ipv6_table")
	if !ok {
		return nil
	}
	_ = vrfs
	for i := 0; i < n; i++ {
		// IPv6 packets read the (invalid) ipv4 dscp as 0 and land in VRF 1.
		vrf := uint64(1)
		hi := uint64(0x20010db8)<<32 | uint64(i+1)
		plen := 64
		if i%9 == 0 {
			plen = 48
			hi = uint64(0x20010db8)<<32 | uint64(i%0xffff+1)<<16
		}
		e := &pdpi.Entry{
			Table: t,
			Matches: []pdpi.Match{
				{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(vrf, 10)},
				{Key: "ipv6_dst", Kind: ir.MatchLPM,
					Value:     value.New128(hi, 0, 128).And(value.PrefixMask(plen, 128)),
					PrefixLen: plen},
			},
			Action: &pdpi.ActionInvocation{Action: g.action("set_nexthop_id"),
				Args: []value.V{value.New(uint64(1+i%nhs), 10)}},
		}
		if err := g.add(e); err != nil {
			return err
		}
	}
	return nil
}
