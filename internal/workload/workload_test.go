package workload

import (
	"testing"

	"switchv/internal/p4/constraints"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4rt"
	"switchv/internal/switchsim"
	"switchv/models"
)

func TestEntriesAreValidAndInstallable(t *testing.T) {
	cases := []struct {
		role  string
		total int
	}{
		{"middleblock", 798},
		{"wan", 1314},
	}
	for _, c := range cases {
		t.Run(c.role, func(t *testing.T) {
			prog := models.MustLoad(c.role)
			entries, err := Entries(prog, c.total, 42)
			if err != nil {
				t.Fatal(err)
			}
			// Size: within 10% of the requested total (table caps may trim).
			if len(entries) < c.total*9/10 || len(entries) > c.total {
				t.Errorf("generated %d entries, want ~%d", len(entries), c.total)
			}
			// All unique, valid, and constraint-compliant.
			store := pdpi.NewStore()
			for _, e := range entries {
				if err := e.Validate(); err != nil {
					t.Fatalf("invalid entry: %v", err)
				}
				if ok, err := constraints.CheckEntry(e); err != nil || !ok {
					t.Fatalf("constraint violation: %s (err %v)", e, err)
				}
				if err := store.Insert(e); err != nil {
					t.Fatalf("duplicate entry: %v", err)
				}
			}
			// The whole set installs on a clean switch in generation order
			// (references are closed and ordered).
			sw := switchsim.New(c.role)
			info := p4infoFor(c.role)
			if err := sw.SetForwardingPipelineConfig(p4rt.ForwardingPipelineConfig{P4Info: info}); err != nil {
				t.Fatal(err)
			}
			var updates []p4rt.Update
			for _, e := range entries {
				updates = append(updates, p4rt.Update{Type: p4rt.Insert, Entry: p4rt.ToWire(e)})
			}
			// Install in chunks of 50 like a controller would.
			for i := 0; i < len(updates); i += 50 {
				end := i + 50
				if end > len(updates) {
					end = len(updates)
				}
				resp := sw.Write(p4rt.WriteRequest{Updates: updates[i:end]})
				if !resp.OK() {
					t.Fatalf("batch %d: %s", i/50, resp.String())
				}
			}
		})
	}
}

func p4infoFor(role string) string {
	return p4info.New(models.MustLoad(role)).Text()
}

func TestDeterminism(t *testing.T) {
	prog := models.Middleblock()
	a := MustEntries(prog, 300, 7)
	b := MustEntries(prog, 300, 7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("entry %d differs", i)
		}
	}
	c := MustEntries(prog, 300, 8)
	diff := false
	for i := range a {
		if i < len(c) && a[i].String() != c[i].String() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical workloads")
	}
}
