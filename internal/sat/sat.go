// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver with two-watched-literal propagation, VSIDS branching, 1UIP
// conflict analysis, phase saving, Luby restarts, and incremental solving
// under assumptions. It is the decision engine underneath the SMT layer
// that p4-symbolic uses in place of Z3.
package sat

import "sort"

// Var is a 0-based variable index.
type Var int32

// Lit is a literal: variable times two, plus one if negated.
type Lit int32

// MkLit builds a literal from a variable and a sign.
func MkLit(v Var, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Result is a solver verdict.
type Result int

// Solver verdicts.
const (
	Unknown Result = iota
	Sat
	Unsat
)

func (r Result) String() string {
	switch r {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
}

type watcher struct {
	cref    int
	blocker Lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses []int // refs of problem clauses
	learnts []int // refs of learnt clauses
	arena   []clause
	free    []int // recycled arena slots

	watches [][]watcher // indexed by Lit

	assigns  []lbool
	level    []int32
	reason   []int // clause ref or -1
	phase    []bool
	activity []float64
	varInc   float64

	trail    []Lit
	trailLim []int
	qhead    int

	heap    []Var // binary max-heap on activity
	heapIdx []int32

	clauseInc float64

	seen     []bool
	unsatCI  bool // formula is UNSAT regardless of assumptions
	Stats    Stats
	maxLearn int
}

// Stats counts solver work, for benchmarking.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learnt       int64
	// SolveCalls counts Solve invocations on this solver; together with
	// KeptLearnts it measures how much the incremental path reuses.
	SolveCalls int64
	// KeptLearnts sums, over Solve calls after the first, the learnt
	// clauses already present when the call started — the knowledge
	// carried across goals instead of being rebuilt cold.
	KeptLearnts int64
	// AssumpConflicts counts conflicts hit inside the assumption prefix
	// (decision level at or below the assumption count): contradictions
	// between a goal's assumptions and the shared formula, resolved
	// without descending into free search.
	AssumpConflicts int64
}

// Add accumulates another solver's counters into s (aggregating work
// across the per-shard solvers of a parallel campaign).
func (s *Stats) Add(o Stats) {
	s.Decisions += o.Decisions
	s.Propagations += o.Propagations
	s.Conflicts += o.Conflicts
	s.Restarts += o.Restarts
	s.Learnt += o.Learnt
	s.SolveCalls += o.SolveCalls
	s.KeptLearnts += o.KeptLearnts
	s.AssumpConflicts += o.AssumpConflicts
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{varInc: 1, clauseInc: 1, maxLearn: 4000}
}

// NewVar allocates a fresh variable.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, -1)
	s.phase = append(s.phase, false)
	s.activity = append(s.activity, 0)
	s.watches = append(s.watches, nil, nil)
	s.seen = append(s.seen, false)
	s.heapIdx = append(s.heapIdx, -1)
	s.heapInsert(v)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

func (s *Solver) litValue(l Lit) lbool {
	v := s.assigns[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Neg() {
		return -v
	}
	return v
}

// AddClause adds a problem clause. It returns false if the formula became
// trivially unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsatCI {
		return false
	}
	// Must be called at decision level 0.
	s.backtrackTo(0)
	// Normalize: sort, dedupe, drop false lits, detect tautology/satisfied.
	ls := append([]Lit(nil), lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = -1
	for _, l := range ls {
		if l == prev {
			continue
		}
		if prev >= 0 && l == prev.Not() {
			return true // tautology
		}
		switch s.litValue(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue // drop
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.unsatCI = true
		return false
	case 1:
		if !s.enqueue(out[0], -1) {
			s.unsatCI = true
			return false
		}
		if s.propagate() != -1 {
			s.unsatCI = true
			return false
		}
		return true
	}
	cref := s.allocClause(out, false)
	s.clauses = append(s.clauses, cref)
	s.watchClause(cref)
	return true
}

// AddGuarded adds a clause guarded by an activation literal: the clause
// only constrains the formula while act is assumed true in Solve. This is
// the push-free incremental idiom — per-goal constraints are added under
// fresh activation literals and switched on by assumption, so the CNF and
// the learned-clause database survive from goal to goal. Soundness of
// retained learnt clauses: any learnt clause derived through a guarded
// clause resolves in ¬act, so once the guard is retired (¬act asserted)
// or simply not assumed, those learnt clauses are satisfied and inert.
func (s *Solver) AddGuarded(act Lit, lits ...Lit) bool {
	return s.AddClause(append([]Lit{act.Not()}, lits...)...)
}

// Retire permanently deactivates an activation literal: every clause
// guarded by act becomes satisfied and the solver may never enable it
// again. Learnt clauses that depended on guarded clauses stay sound (they
// contain ¬act and are now satisfied).
func (s *Solver) Retire(act Lit) bool {
	return s.AddClause(act.Not())
}

func (s *Solver) allocClause(lits []Lit, learnt bool) int {
	c := clause{lits: lits, learnt: learnt}
	if n := len(s.free); n > 0 {
		cref := s.free[n-1]
		s.free = s.free[:n-1]
		s.arena[cref] = c
		return cref
	}
	s.arena = append(s.arena, c)
	return len(s.arena) - 1
}

func (s *Solver) watchClause(cref int) {
	c := &s.arena[cref]
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{cref, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{cref, c.lits[0]})
}

// enqueue assigns a literal true with a reason clause (-1 for decisions
// and unit facts).
func (s *Solver) enqueue(l Lit, from int) bool {
	switch s.litValue(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.phase[v] = !l.Neg()
	s.trail = append(s.trail, l)
	return true
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// propagate performs unit propagation; it returns the ref of a conflicting
// clause, or -1.
func (s *Solver) propagate() int {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[p]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.litValue(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := &s.arena[w.cref]
			// Ensure lits[0] is the other watched literal.
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.litValue(first) == lTrue {
				kept = append(kept, watcher{w.cref, first})
				continue
			}
			// Find a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{w.cref, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{w.cref, first})
			if s.litValue(first) == lFalse {
				// Conflict: keep remaining watchers, restore list.
				kept = append(kept, ws[i+1:]...)
				s.watches[p] = kept
				s.qhead = len(s.trail)
				return w.cref
			}
			s.enqueue(first, w.cref)
		}
		s.watches[p] = kept
	}
	return -1
}

// analyze performs 1UIP conflict analysis, returning the learnt clause
// (first literal is the asserting one) and the backjump level.
func (s *Solver) analyze(confl int) ([]Lit, int) {
	learnt := []Lit{0} // placeholder for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		c := &s.arena[confl]
		if c.learnt {
			s.bumpClause(confl)
		}
		start := 0
		if p != -1 {
			start = 1
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.bumpVar(v)
				if int(s.level[v]) >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find the next seen literal on the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		confl = s.reason[v]
		counter--
		if counter == 0 {
			break
		}
	}
	learnt[0] = p.Not()

	// Compute backjump level: max level among learnt[1:].
	back := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		back = int(s.level[learnt[1].Var()])
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	return learnt, back
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heapFix(v)
}

func (s *Solver) bumpClause(cref int) {
	c := &s.arena[cref]
	c.activity += s.clauseInc
	if c.activity > 1e20 {
		for _, ref := range s.learnts {
			s.arena[ref].activity *= 1e-20
		}
		s.clauseInc *= 1e-20
	}
}

func (s *Solver) decayActivities() {
	s.varInc /= 0.95
	s.clauseInc /= 0.999
}

func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.assigns[v] = lUndef
		s.reason[v] = -1
		if s.heapIdx[v] < 0 {
			s.heapInsert(v)
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

// pickBranchVar returns the unassigned variable with highest activity.
func (s *Solver) pickBranchVar() Var {
	for len(s.heap) > 0 {
		v := s.heapPop()
		if s.assigns[v] == lUndef {
			return v
		}
	}
	return -1
}

// reduceDB removes the less active half of the learnt clauses.
func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool {
		return s.arena[s.learnts[i]].activity > s.arena[s.learnts[j]].activity
	})
	keep := s.learnts[:len(s.learnts)/2]
	drop := s.learnts[len(s.learnts)/2:]
	kept := keep
	for _, cref := range drop {
		if s.clauseLocked(cref) {
			kept = append(kept, cref)
			continue
		}
		s.detachClause(cref)
		s.free = append(s.free, cref)
		s.arena[cref] = clause{}
	}
	s.learnts = kept
}

func (s *Solver) clauseLocked(cref int) bool {
	c := &s.arena[cref]
	v := c.lits[0].Var()
	return s.reason[v] == cref && s.assigns[v] != lUndef
}

func (s *Solver) detachClause(cref int) {
	c := &s.arena[cref]
	for _, wl := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[wl]
		for i, w := range ws {
			if w.cref == cref {
				ws[i] = ws[len(ws)-1]
				s.watches[wl] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i < (1<<uint(k))-1 {
			return luby(i - (1 << uint(k-1)) + 1)
		}
	}
}

// Solve determines satisfiability under the given assumption literals.
// After Sat, Value reports the model; after Unsat under assumptions, the
// formula itself may still be satisfiable.
func (s *Solver) Solve(assumptions ...Lit) Result {
	if s.Stats.SolveCalls > 0 {
		s.Stats.KeptLearnts += int64(len(s.learnts))
	}
	s.Stats.SolveCalls++
	if s.unsatCI {
		return Unsat
	}
	s.backtrackTo(0)
	if s.propagate() != -1 {
		s.unsatCI = true
		return Unsat
	}

	var restarts int64
	conflictBudget := int64(100) * luby(1)
	var conflicts int64

	for {
		confl := s.propagate()
		if confl != -1 {
			s.Stats.Conflicts++
			if s.decisionLevel() <= len(assumptions) {
				s.Stats.AssumpConflicts++
			}
			conflicts++
			if s.decisionLevel() == 0 {
				s.unsatCI = true
				return Unsat
			}
			// Conflicts inside the assumption prefix are analyzed like any
			// other; if an assumption itself becomes false, the decide
			// branch below reports Unsat when it is re-reached.
			learnt, back := s.analyze(confl)
			s.backtrackTo(back)
			s.addLearnt(learnt)
			s.decayActivities()
			if conflicts >= conflictBudget {
				// Restart.
				restarts++
				s.Stats.Restarts++
				conflicts = 0
				conflictBudget = 100 * luby(restarts+1)
				s.backtrackTo(0)
			}
			if len(s.learnts) > s.maxLearn {
				s.reduceDB()
			}
			continue
		}

		// Decide: assumptions first, then VSIDS.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.litValue(a) {
			case lTrue:
				// Already satisfied; open an empty decision level so the
				// index keeps advancing.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				return Unsat
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(a, -1)
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			return Sat
		}
		s.Stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(MkLit(v, !s.phase[v]), -1)
	}
}

func (s *Solver) addLearnt(learnt []Lit) {
	s.Stats.Learnt++
	if len(learnt) == 1 {
		s.enqueue(learnt[0], -1)
		return
	}
	cref := s.allocClause(learnt, true)
	s.learnts = append(s.learnts, cref)
	s.watchClause(cref)
	s.bumpClause(cref)
	s.enqueue(learnt[0], cref)
}

// Value reports the model value of a variable after Sat.
func (s *Solver) Value(v Var) bool { return s.assigns[v] == lTrue }

// LitValue reports the model value of a literal after Sat.
func (s *Solver) LitValue(l Lit) bool {
	if l.Neg() {
		return !s.Value(l.Var())
	}
	return s.Value(l.Var())
}

// Binary max-heap on variable activity.

func (s *Solver) heapLess(a, b Var) bool { return s.activity[a] > s.activity[b] }

func (s *Solver) heapInsert(v Var) {
	s.heapIdx[v] = int32(len(s.heap))
	s.heap = append(s.heap, v)
	s.heapUp(int(s.heapIdx[v]))
}

func (s *Solver) heapPop() Var {
	v := s.heap[0]
	last := s.heap[len(s.heap)-1]
	s.heap = s.heap[:len(s.heap)-1]
	s.heapIdx[v] = -1
	if len(s.heap) > 0 {
		s.heap[0] = last
		s.heapIdx[last] = 0
		s.heapDown(0)
	}
	return v
}

func (s *Solver) heapUp(i int) {
	v := s.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heapLess(v, s.heap[parent]) {
			break
		}
		s.heap[i] = s.heap[parent]
		s.heapIdx[s.heap[i]] = int32(i)
		i = parent
	}
	s.heap[i] = v
	s.heapIdx[v] = int32(i)
}

func (s *Solver) heapDown(i int) {
	v := s.heap[i]
	for {
		left := 2*i + 1
		if left >= len(s.heap) {
			break
		}
		child := left
		if right := left + 1; right < len(s.heap) && s.heapLess(s.heap[right], s.heap[left]) {
			child = right
		}
		if !s.heapLess(s.heap[child], v) {
			break
		}
		s.heap[i] = s.heap[child]
		s.heapIdx[s.heap[i]] = int32(i)
		i = child
	}
	s.heap[i] = v
	s.heapIdx[v] = int32(i)
}

// heapFix re-heapifies after an activity bump.
func (s *Solver) heapFix(v Var) {
	if s.heapIdx[v] >= 0 {
		s.heapUp(int(s.heapIdx[v]))
	}
}
