package sat

import (
	"math/rand"
	"testing"
)

func pos(v Var) Lit { return MkLit(v, false) }
func neg(v Var) Lit { return MkLit(v, true) }

func TestLitBasics(t *testing.T) {
	l := MkLit(3, false)
	if l.Var() != 3 || l.Neg() {
		t.Errorf("l = %v", l)
	}
	n := l.Not()
	if n.Var() != 3 || !n.Neg() {
		t.Errorf("n = %v", n)
	}
	if n.Not() != l {
		t.Error("double negation")
	}
}

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(pos(a))
	if r := s.Solve(); r != Sat {
		t.Fatalf("Solve = %v", r)
	}
	if !s.Value(a) {
		t.Error("a is false")
	}
}

func TestUnsatPair(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(pos(a)) {
		t.Fatal("AddClause(a) failed")
	}
	if s.AddClause(neg(a)) {
		t.Error("AddClause(~a) should report unsat")
	}
	if r := s.Solve(); r != Unsat {
		t.Fatalf("Solve = %v", r)
	}
}

func TestImplicationChain(t *testing.T) {
	s := New()
	const n = 50
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		s.AddClause(neg(vars[i]), pos(vars[i+1])) // v_i -> v_{i+1}
	}
	s.AddClause(pos(vars[0]))
	if r := s.Solve(); r != Sat {
		t.Fatalf("Solve = %v", r)
	}
	for i, v := range vars {
		if !s.Value(v) {
			t.Fatalf("var %d is false", i)
		}
	}
	// Now force the last to be false: unsat.
	s.AddClause(neg(vars[n-1]))
	if r := s.Solve(); r != Unsat {
		t.Fatalf("Solve after contradiction = %v", r)
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(4,3): 4 pigeons, 3 holes — classic small UNSAT instance that
	// requires real conflict analysis.
	s := New()
	const pigeons, holes = 4, 3
	x := [pigeons][holes]Var{}
	for p := 0; p < pigeons; p++ {
		for h := 0; h < holes; h++ {
			x[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		s.AddClause(pos(x[p][0]), pos(x[p][1]), pos(x[p][2]))
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(neg(x[p1][h]), neg(x[p2][h]))
			}
		}
	}
	if r := s.Solve(); r != Unsat {
		t.Fatalf("PHP(4,3) = %v", r)
	}
	if s.Stats.Conflicts == 0 {
		t.Error("solved PHP without conflicts?")
	}
}

func TestPigeonholeSat(t *testing.T) {
	// PHP(3,3) is satisfiable.
	s := New()
	x := [3][3]Var{}
	for p := 0; p < 3; p++ {
		for h := 0; h < 3; h++ {
			x[p][h] = s.NewVar()
		}
	}
	for p := 0; p < 3; p++ {
		s.AddClause(pos(x[p][0]), pos(x[p][1]), pos(x[p][2]))
	}
	for h := 0; h < 3; h++ {
		for p1 := 0; p1 < 3; p1++ {
			for p2 := p1 + 1; p2 < 3; p2++ {
				s.AddClause(neg(x[p1][h]), neg(x[p2][h]))
			}
		}
	}
	if r := s.Solve(); r != Sat {
		t.Fatalf("PHP(3,3) = %v", r)
	}
	// Verify: each pigeon in some hole, no two share.
	used := map[int]int{}
	for p := 0; p < 3; p++ {
		found := -1
		for h := 0; h < 3; h++ {
			if s.Value(x[p][h]) {
				found = h
			}
		}
		if found < 0 {
			t.Fatalf("pigeon %d unplaced", p)
		}
		if prev, clash := used[found]; clash {
			t.Fatalf("pigeons %d and %d share hole %d", prev, p, found)
		}
		used[found] = p
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(neg(a), pos(b)) // a -> b
	s.AddClause(neg(b), pos(c)) // b -> c

	if r := s.Solve(pos(a), neg(c)); r != Unsat {
		t.Fatalf("Solve(a, ~c) = %v", r)
	}
	// The formula is still satisfiable without the assumptions...
	if r := s.Solve(); r != Sat {
		t.Fatalf("Solve() = %v", r)
	}
	// ... and under compatible assumptions.
	if r := s.Solve(pos(a)); r != Sat {
		t.Fatalf("Solve(a) = %v", r)
	}
	if !s.Value(a) || !s.Value(b) || !s.Value(c) {
		t.Error("model violates implications")
	}
	if r := s.Solve(neg(c), neg(a)); r != Sat {
		t.Fatalf("Solve(~c, ~a) = %v", r)
	}
	if s.Value(a) || s.Value(c) {
		t.Error("assumption values not respected")
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	if !s.AddClause(pos(a), neg(a)) {
		t.Error("tautology rejected")
	}
	if !s.AddClause(pos(b), pos(b), pos(b)) {
		t.Error("duplicate literals rejected")
	}
	if r := s.Solve(); r != Sat || !s.Value(b) {
		t.Error("b not forced")
	}
}

// checkModel verifies that the solver's model satisfies all clauses.
func checkModel(t *testing.T, s *Solver, clauses [][]Lit) {
	t.Helper()
	for i, c := range clauses {
		ok := false
		for _, l := range c {
			if s.LitValue(l) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("model violates clause %d: %v", i, c)
		}
	}
}

// bruteForce determines satisfiability by enumeration (n <= 20).
func bruteForce(n int, clauses [][]Lit) bool {
	for m := 0; m < 1<<uint(n); m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				bit := m>>uint(l.Var())&1 == 1
				if bit != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestRandom3SATAgainstBruteForce cross-checks the CDCL solver against
// exhaustive enumeration on random small instances around the phase
// transition.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2022))
	for trial := 0; trial < 300; trial++ {
		nVars := 5 + rng.Intn(8)
		nClauses := int(4.3 * float64(nVars))
		var clauses [][]Lit
		s := New()
		vars := make([]Var, nVars)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		ok := true
		for i := 0; i < nClauses; i++ {
			c := make([]Lit, 3)
			for j := range c {
				c[j] = MkLit(vars[rng.Intn(nVars)], rng.Intn(2) == 1)
			}
			clauses = append(clauses, c)
			if !s.AddClause(c...) {
				ok = false
			}
		}
		got := s.Solve()
		want := bruteForce(nVars, clauses)
		if ok && got == Sat != want {
			t.Fatalf("trial %d: solver=%v brute=%v (%d vars, %d clauses)", trial, got, want, nVars, nClauses)
		}
		if !ok && want {
			t.Fatalf("trial %d: AddClause reported unsat but formula is sat", trial)
		}
		if got == Sat {
			checkModel(t, s, clauses)
		}
	}
}

func TestIncrementalSolving(t *testing.T) {
	// Solve repeatedly while adding clauses, mimicking the symbolic
	// engine's per-goal usage.
	s := New()
	const n = 30
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		s.AddClause(neg(vars[i]), pos(vars[i+1]))
	}
	for i := 0; i < n; i++ {
		if r := s.Solve(pos(vars[i])); r != Sat {
			t.Fatalf("Solve(v%d) = %v", i, r)
		}
		for j := i; j < n; j++ {
			if !s.Value(vars[j]) {
				t.Fatalf("chain broken at %d->%d", i, j)
			}
		}
	}
	// Close the chain into a contradiction cycle.
	s.AddClause(neg(vars[n-1]))
	if r := s.Solve(pos(vars[0])); r != Unsat {
		t.Fatalf("Solve(v0) = %v", r)
	}
	if r := s.Solve(neg(vars[0])); r != Sat {
		t.Fatalf("Solve(~v0) = %v", r)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestReduceDB(t *testing.T) {
	// Force many learnt clauses with a small cap; results must stay sound.
	s := New()
	s.maxLearn = 20
	const n = 40
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	rng := rand.New(rand.NewSource(5))
	var clauses [][]Lit
	for i := 0; i < 150; i++ {
		c := []Lit{
			MkLit(vars[rng.Intn(n)], rng.Intn(2) == 1),
			MkLit(vars[rng.Intn(n)], rng.Intn(2) == 1),
			MkLit(vars[rng.Intn(n)], rng.Intn(2) == 1),
		}
		clauses = append(clauses, c)
		if !s.AddClause(c...) {
			return // trivially unsat; nothing to check
		}
	}
	if s.Solve() == Sat {
		checkModel(t, s, clauses)
	}
}

func BenchmarkSolvePigeonhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		const pigeons, holes = 7, 6
		var x [pigeons][holes]Var
		for p := 0; p < pigeons; p++ {
			for h := 0; h < holes; h++ {
				x[p][h] = s.NewVar()
			}
		}
		for p := 0; p < pigeons; p++ {
			lits := make([]Lit, holes)
			for h := 0; h < holes; h++ {
				lits[h] = pos(x[p][h])
			}
			s.AddClause(lits...)
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 < pigeons; p1++ {
				for p2 := p1 + 1; p2 < pigeons; p2++ {
					s.AddClause(neg(x[p1][h]), neg(x[p2][h]))
				}
			}
		}
		if s.Solve() != Unsat {
			b.Fatal("PHP should be unsat")
		}
	}
}
