// Edge-case tests for the incremental assumption-based API: repeated
// Solve calls under contradictory assumptions, the unsatCI fast path
// after incremental clause additions, and learnt-clause soundness
// across activation-literal deactivation (differential against a fresh
// cold solver on random formulas).
package sat

import (
	"math/rand"
	"testing"
)

// TestContradictoryAssumptionsRepeated checks that Unsat under
// assumptions — including self-contradictory assumption vectors — never
// poisons the solver: the same instance keeps answering correctly over
// many alternating calls, and the assumption-prefix conflicts are
// surfaced in Stats.
func TestContradictoryAssumptionsRepeated(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(neg(a), pos(b)) // a -> b
	s.AddClause(neg(b), pos(c)) // b -> c

	for round := 0; round < 10; round++ {
		// Self-contradictory assumption vector.
		if r := s.Solve(pos(a), neg(a)); r != Unsat {
			t.Fatalf("round %d: Solve(a, ~a) = %v", round, r)
		}
		// Assumptions contradicting the formula (a forces c).
		if r := s.Solve(pos(a), neg(c)); r != Unsat {
			t.Fatalf("round %d: Solve(a, ~c) = %v", round, r)
		}
		// Still satisfiable outright and under compatible assumptions.
		if r := s.Solve(); r != Sat {
			t.Fatalf("round %d: Solve() = %v", round, r)
		}
		if r := s.Solve(pos(a)); r != Sat {
			t.Fatalf("round %d: Solve(a) = %v", round, r)
		}
		if !s.Value(a) || !s.Value(b) || !s.Value(c) {
			t.Fatalf("round %d: model violates implication chain", round)
		}
	}
	if s.Stats.SolveCalls != 40 {
		t.Errorf("SolveCalls = %d, want 40", s.Stats.SolveCalls)
	}
}

// TestUnsatCIAfterIncrementalAdds drives the solver into level-0
// unsatisfiability through incremental clause additions after earlier
// Sat answers, then checks the unsatCI fast path: every later Solve —
// with or without assumptions — answers Unsat, AddClause refuses new
// clauses, and the call counter still advances.
func TestUnsatCIAfterIncrementalAdds(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(pos(a), pos(b))
	if r := s.Solve(); r != Sat {
		t.Fatalf("Solve = %v", r)
	}
	// Incrementally force both disjuncts false: the formula is now unsat
	// at level 0, discovered inside the next Solve's initial propagate.
	if !s.AddClause(neg(a)) {
		t.Fatal("AddClause(~a) refused on a satisfiable formula")
	}
	if !s.AddClause(neg(b)) {
		// Units propagate eagerly, so conflict detection at add time is
		// also acceptable — but then Solve must still say Unsat below.
		t.Log("AddClause(~b) detected the conflict eagerly")
	}
	calls := s.Stats.SolveCalls
	if r := s.Solve(); r != Unsat {
		t.Fatalf("Solve after contradiction = %v", r)
	}
	// Fast path: assumptions are irrelevant once the clause DB is unsat.
	for i := 0; i < 3; i++ {
		if r := s.Solve(pos(a)); r != Unsat {
			t.Fatalf("Solve(a) after contradiction = %v", r)
		}
		if r := s.Solve(neg(a), pos(b)); r != Unsat {
			t.Fatalf("Solve(~a, b) after contradiction = %v", r)
		}
	}
	if got := s.Stats.SolveCalls - calls; got != 7 {
		t.Errorf("SolveCalls advanced by %d across the fast path, want 7", got)
	}
	if s.AddClause(pos(a), pos(b)) {
		t.Error("AddClause accepted a clause after level-0 unsat")
	}
}

// randClauses draws m random 3-literal clauses over vars.
func randClauses(rng *rand.Rand, vars []Var, m int) [][]Lit {
	out := make([][]Lit, m)
	for i := range out {
		c := make([]Lit, 3)
		for j := range c {
			c[j] = MkLit(vars[rng.Intn(len(vars))], rng.Intn(2) == 1)
		}
		out[i] = c
	}
	return out
}

// TestActivationLiteralDifferential is the learnt-clause soundness test
// for the push-free incremental API: random clause groups are installed
// once behind activation literals, then solved many times under varying
// activation subsets (accumulating learnt clauses), with every verdict
// cross-checked against a fresh cold solver given exactly the active
// groups' clauses unguarded. A learnt clause leaking consequences of a
// deactivated group would flip some subset's verdict to Unsat.
func TestActivationLiteralDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		const nVars, nGroups, perGroup = 12, 4, 14
		inc := New()
		vars := make([]Var, nVars)
		for i := range vars {
			vars[i] = inc.NewVar()
		}
		acts := make([]Lit, nGroups)
		groups := make([][][]Lit, nGroups)
		for g := range groups {
			acts[g] = pos(inc.NewVar())
			groups[g] = randClauses(rng, vars, perGroup)
			for _, c := range groups[g] {
				if !inc.AddGuarded(acts[g], c...) {
					t.Fatalf("trial %d: AddGuarded failed", trial)
				}
			}
		}
		cold := func(subset int) Result {
			s := New()
			cv := make([]Var, nVars)
			for i := range cv {
				cv[i] = s.NewVar()
			}
			ok := true
			for g := range groups {
				if subset&(1<<g) == 0 {
					continue
				}
				for _, c := range groups[g] {
					lits := make([]Lit, len(c))
					for j, l := range c {
						lits[j] = MkLit(cv[l.Var()], l.Neg())
					}
					ok = ok && s.AddClause(lits...)
				}
			}
			if !ok {
				return Unsat
			}
			return s.Solve()
		}
		// Every activation subset, smallest first, so learnt clauses from
		// early calls are live when later (larger) subsets are solved.
		for subset := 0; subset < 1<<nGroups; subset++ {
			var assume []Lit
			for g := range groups {
				if subset&(1<<g) != 0 {
					assume = append(assume, acts[g])
				}
			}
			got, want := inc.Solve(assume...), cold(subset)
			if got != want {
				t.Fatalf("trial %d subset %04b: incremental=%v cold=%v", trial, subset, got, want)
			}
			if got == Sat {
				// The model must satisfy every active group's clauses.
				for g := range groups {
					if subset&(1<<g) == 0 {
						continue
					}
					for i, c := range groups[g] {
						sat := false
						for _, l := range c {
							if inc.LitValue(l) {
								sat = true
								break
							}
						}
						if !sat {
							t.Fatalf("trial %d subset %04b: model violates group %d clause %d", trial, subset, g, i)
						}
					}
				}
			}
		}
	}
}

// TestRetireDeactivation checks permanent deactivation: after Retire,
// the group's clauses no longer constrain any solution, assuming its
// activation literal is contradictory, and verdicts for the remaining
// groups still match a cold solver.
func TestRetireDeactivation(t *testing.T) {
	s := New()
	x, y := s.NewVar(), s.NewVar()
	actA, actB := pos(s.NewVar()), pos(s.NewVar())
	// Group A forces x; group B forces ~x and y.
	s.AddGuarded(actA, pos(x))
	s.AddGuarded(actB, neg(x))
	s.AddGuarded(actB, pos(y))
	if r := s.Solve(actA, actB); r != Unsat {
		t.Fatalf("Solve(A, B) = %v", r)
	}
	if !s.Retire(actA) {
		t.Fatal("Retire(A) failed")
	}
	// B alone is satisfiable; A's clause must no longer bite.
	if r := s.Solve(actB); r != Sat {
		t.Fatalf("Solve(B) after Retire(A) = %v", r)
	}
	if s.Value(x) || !s.Value(y) {
		t.Error("model ignores group B after Retire(A)")
	}
	// The retired activation literal is now contradictory.
	if r := s.Solve(actA); r != Unsat {
		t.Fatalf("Solve(A) after Retire(A) = %v", r)
	}
	// And the solver is still usable afterwards.
	if r := s.Solve(actB); r != Sat {
		t.Fatalf("Solve(B) again = %v", r)
	}
}

// TestIncrementalStats pins the meaning of the incremental counters:
// KeptLearnts only accrues on calls after the first and only when learnt
// clauses survived, and AssumpConflicts counts conflicts inside the
// assumption prefix.
func TestIncrementalStats(t *testing.T) {
	s := New()
	const n = 16
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	rng := rand.New(rand.NewSource(13))
	for _, c := range randClauses(rng, vars, 60) {
		if !s.AddClause(c...) {
			t.Skip("random formula trivially unsat at add time")
		}
	}
	if s.Stats.SolveCalls != 0 || s.Stats.KeptLearnts != 0 {
		t.Fatalf("counters non-zero before first Solve: %+v", s.Stats)
	}
	r1 := s.Solve()
	if s.Stats.SolveCalls != 1 || s.Stats.KeptLearnts != 0 {
		t.Fatalf("after first Solve: %+v", s.Stats)
	}
	learnt := s.Stats.Learnt
	r2 := s.Solve()
	if r2 != r1 {
		t.Fatalf("verdict changed across identical Solves: %v then %v", r1, r2)
	}
	if s.Stats.SolveCalls != 2 {
		t.Fatalf("SolveCalls = %d, want 2", s.Stats.SolveCalls)
	}
	if learnt > 0 && s.Stats.KeptLearnts == 0 {
		t.Errorf("first call learnt %d clauses but second kept none", learnt)
	}
	// A contradiction confined to the assumption prefix.
	a := s.NewVar()
	s.AddClause(pos(a))
	before := s.Stats.AssumpConflicts
	if r := s.Solve(neg(a)); r != Unsat {
		t.Fatalf("Solve(~a) = %v", r)
	}
	if s.Stats.AssumpConflicts < before {
		t.Errorf("AssumpConflicts decreased: %d -> %d", before, s.Stats.AssumpConflicts)
	}
}
