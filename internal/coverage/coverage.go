// Package coverage is SwitchV's greybox feedback subsystem: it keeps a
// campaign-wide map of which regions of the P4 model have been exercised
// and feeds that map back into generation (FP4-style energy scheduling,
// see Guide).
//
// The coverage model is keyed on the P4 IR:
//
//   - per-table control-plane counters (updates generated, updates the
//     switch accepted),
//   - per-(table, action) counters (action chosen by the generator,
//     action invoked during data-plane execution),
//   - per-table data-plane hit/miss counters and per-entry hit bits,
//     harvested from bmv2/switchsim execution traces,
//   - per-mutation-class × verdict outcome counters from the oracle, and
//   - per-goal bits seeded from the symbolic trace map's goal list.
//
// Counters are concurrent-safe and cheap: points known at construction
// time (everything derivable from the model) live in a flat slice of
// atomics addressed by a read-only index, and dynamic points (entry keys,
// goals, verdict outcomes) live in sharded maps of atomics so the fuzz
// hot loop pays near-zero synchronization overhead.
package coverage

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"switchv/internal/p4/p4info"
)

// Well-known key constructors. Every coverage point is a string key; the
// constructors keep the namespace consistent across producers.

// KeyTableWrite counts generated updates targeting a table.
func KeyTableWrite(table string) string { return "table:" + table + ":write" }

// KeyTableAccept counts updates the switch accepted for a table.
func KeyTableAccept(table string) string { return "table:" + table + ":accept" }

// KeyTableHit counts data-plane traversals that matched some entry.
func KeyTableHit(table string) string { return "table:" + table + ":hit" }

// KeyTableMiss counts data-plane traversals that fell to the default.
func KeyTableMiss(table string) string { return "table:" + table + ":miss" }

// KeyActionSelect counts accepted entries programmed with an action.
func KeyActionSelect(table, action string) string {
	return "action:" + table + ":" + action + ":select"
}

// KeyActionInvoke counts data-plane invocations of an action.
func KeyActionInvoke(table, action string) string {
	return "action:" + table + ":" + action + ":invoke"
}

// KeyEntryHit is the data-plane hit bit of one concrete entry.
func KeyEntryHit(table, entryKey string) string { return "entry:" + table + ":" + entryKey }

// KeyMutation counts applications of one mutation class.
func KeyMutation(class string) string { return "mutation:" + class }

// KeyMutationOutcome is one (mutation class, verdict, switch decision)
// cell; class "" means an intended-valid update.
func KeyMutationOutcome(class, verdict string, accepted bool) string {
	if class == "" {
		class = "valid"
	}
	return "outcome:" + class + ":" + verdict + ":" + decision(accepted)
}

// KeyVerdictOutcome is the oracle's per-table (verdict, switch decision)
// accounting cell.
func KeyVerdictOutcome(table, verdict string, accepted bool) string {
	return "verdict:" + table + ":" + verdict + ":" + decision(accepted)
}

// KeyGoal is the bit of one symbolic coverage goal (trace-map key).
func KeyGoal(goal string) string { return "goal:" + goal }

func decision(accepted bool) string {
	if accepted {
		return "accepted"
	}
	return "rejected"
}

// shardCount must be a power of two.
const shardCount = 16

type shard struct {
	mu     sync.RWMutex
	counts map[string]*atomic.Int64
	// registered marks the dynamic keys that belong to the universe, so
	// snapshots can carry universe membership across a merge.
	registered map[string]struct{}
}

// Map is the concurrent coverage map of one campaign.
type Map struct {
	// static holds the model-derived counters; staticIdx is read-only
	// after New, so lookups need no locking.
	static    []atomic.Int64
	staticIdx map[string]int
	staticKey []string

	shards [shardCount]shard

	// covered counts distinct points with count > 0 (static or dynamic);
	// universe counts registered points (static plus Register calls).
	covered  atomic.Int64
	universe atomic.Int64

	// tablesAccepted counts tables whose accept counter went nonzero; it
	// is the "tables covered" metric of campaign trajectories.
	tablesAccepted atomic.Int64
	acceptIdx      []int  // static indexes of the per-table accept counters
	isAccept       []bool // per-static-index: is this a table accept counter?
}

// NewMap allocates a map with every model-derived point pre-registered at
// count zero: per-table write/accept/hit/miss and per-(table, action)
// select/invoke.
func NewMap(info *p4info.Info) *Map {
	return NewMapExcluding(info, nil)
}

// NewMapExcluding is NewMap minus the data-plane points of tables the
// static preflight proved unreachable: their hit/miss and action-invoke
// counters never leave zero, so keeping them in the universe makes
// every coverage percentage lie. Control-plane points (write, accept,
// action-select) stay — an unreachable table still takes entries, and
// control-plane campaigns must still exercise it.
func NewMapExcluding(info *p4info.Info, unreachable map[string]bool) *Map {
	m := &Map{staticIdx: map[string]int{}}
	add := func(key string) int {
		// Idempotent: a table's default action may also appear in its
		// action list, so its invoke key comes up twice.
		if idx, ok := m.staticIdx[key]; ok {
			return idx
		}
		idx := len(m.staticKey)
		m.staticIdx[key] = idx
		m.staticKey = append(m.staticKey, key)
		return idx
	}
	for _, t := range info.Tables() {
		add(KeyTableWrite(t.Name))
		m.acceptIdx = append(m.acceptIdx, add(KeyTableAccept(t.Name)))
		dead := unreachable[t.Name]
		if !dead {
			add(KeyTableHit(t.Name))
			add(KeyTableMiss(t.Name))
		}
		for _, a := range t.Actions {
			add(KeyActionSelect(t.Name, a.Name))
			if !dead {
				add(KeyActionInvoke(t.Name, a.Name))
			}
		}
		if !dead {
			add(KeyActionInvoke(t.Name, t.DefaultAction.Name))
		}
	}
	m.static = make([]atomic.Int64, len(m.staticKey))
	m.isAccept = make([]bool, len(m.staticKey))
	for _, idx := range m.acceptIdx {
		m.isAccept[idx] = true
	}
	m.universe.Store(int64(len(m.staticKey)))
	for i := range m.shards {
		m.shards[i].counts = map[string]*atomic.Int64{}
		m.shards[i].registered = map[string]struct{}{}
	}
	return m
}

func (m *Map) shardOf(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &m.shards[h.Sum32()&(shardCount-1)]
}

// counter returns the dynamic counter cell for a key, creating it (at
// zero) on first use. The fast path is a read-locked map lookup.
func (m *Map) counter(key string) *atomic.Int64 {
	s := m.shardOf(key)
	s.mu.RLock()
	c := s.counts[key]
	s.mu.RUnlock()
	if c != nil {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c = s.counts[key]; c == nil {
		c = &atomic.Int64{}
		s.counts[key] = c
	}
	return c
}

// Register adds a dynamic point to the universe at count zero (idempotent
// for already-known keys). Use it to seed the denominator with points the
// campaign is expected to reach, e.g. the symbolic trace map's goals.
func (m *Map) Register(key string) {
	if _, ok := m.staticIdx[key]; ok {
		return
	}
	s := m.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.registered[key]; !ok {
		s.registered[key] = struct{}{}
		if _, ok := s.counts[key]; !ok {
			s.counts[key] = &atomic.Int64{}
		}
		m.universe.Add(1)
	}
}

// Inc bumps a point by one and returns its new count.
func (m *Map) Inc(key string) int64 { return m.Add(key, 1) }

// Add bumps a point by delta (> 0) and returns its new count. Counters
// never decrease, so the point transitioned from uncovered to covered
// exactly when the new count equals the delta. Table-accept transitions
// also feed the tables-accepted metric, keeping merged maps consistent
// with live campaigns.
func (m *Map) Add(key string, delta int64) int64 {
	var n int64
	idx, static := m.staticIdx[key]
	if static {
		n = m.static[idx].Add(delta)
	} else {
		n = m.counter(key).Add(delta)
	}
	if n == delta {
		m.covered.Add(1)
		if static && m.isAccept[idx] {
			m.tablesAccepted.Add(1)
		}
	}
	return n
}

// Count reads a point's count (0 for unknown keys).
func (m *Map) Count(key string) int64 {
	if idx, ok := m.staticIdx[key]; ok {
		return m.static[idx].Load()
	}
	s := m.shardOf(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if c := s.counts[key]; c != nil {
		return c.Load()
	}
	return 0
}

// Covered returns the number of distinct points exercised at least once.
func (m *Map) Covered() int64 { return m.covered.Load() }

// Universe returns the number of registered points (the denominator of
// the campaign's coverage percentage).
func (m *Map) Universe() int64 { return m.universe.Load() }

// TablesAccepted returns how many tables have at least one accepted
// update — the "tables covered" metric of control-plane campaigns.
func (m *Map) TablesAccepted() int { return int(m.tablesAccepted.Load()) }

// Typed recording helpers. All are safe for concurrent use.

// NoteWrite records a generated update targeting a table.
func (m *Map) NoteWrite(table string) { m.Inc(KeyTableWrite(table)) }

// NoteAccept records a switch-accepted update for a table. The
// tables-accepted transition is detected inside Add.
func (m *Map) NoteAccept(table string) { m.Inc(KeyTableAccept(table)) }

// NoteActionSelect records that an accepted entry programs an action.
func (m *Map) NoteActionSelect(table, action string) { m.Inc(KeyActionSelect(table, action)) }

// NoteMutation records one application of a mutation class.
func (m *Map) NoteMutation(class string) { m.Inc(KeyMutation(class)) }

// NoteMutationOutcome records a (mutation class, oracle verdict, switch
// decision) observation; class "" means intended-valid.
func (m *Map) NoteMutationOutcome(class, verdict string, accepted bool) {
	m.Inc(KeyMutationOutcome(class, verdict, accepted))
}

// NoteVerdictOutcome records the oracle's per-table verdict accounting.
func (m *Map) NoteVerdictOutcome(table, verdict string, accepted bool) {
	m.Inc(KeyVerdictOutcome(table, verdict, accepted))
}

// NoteDataPlaneHit records one table traversal from an execution trace:
// entryKey "" means the default action fired (a miss).
func (m *Map) NoteDataPlaneHit(table, entryKey, action string) {
	if entryKey == "" {
		m.Inc(KeyTableMiss(table))
	} else {
		m.Inc(KeyTableHit(table))
		m.Inc(KeyEntryHit(table, entryKey))
	}
	m.Inc(KeyActionInvoke(table, action))
}

// NoteGoal records that a symbolic coverage goal was exercised.
func (m *Map) NoteGoal(goal string) { m.Inc(KeyGoal(goal)) }

// Merge folds a shard's snapshot into the map: counts add point-wise, and
// registered zero-count points (the shard's universe) register here too,
// so a map merged from N shard campaigns is indistinguishable from one
// campaign that did all the work itself. Safe for concurrent use, though
// the parallel engine merges shards in deterministic shard order.
func (m *Map) Merge(s *Snapshot) {
	// Universe membership first: the shard's registered dynamic points
	// (e.g. symbolic goals) join this map's universe whether or not the
	// shard ever exercised them.
	for _, key := range s.Registered {
		m.Register(key)
	}
	for key, n := range s.Counts {
		if n > 0 {
			m.Add(key, n)
		}
	}
}

// Snapshot is an immutable copy of the map at one instant.
type Snapshot struct {
	Universe int64            `json:"universe"`
	Covered  int64            `json:"covered"`
	Counts   map[string]int64 `json:"counts"`
	// Registered lists the dynamic keys that belong to the universe, in
	// sorted order; Merge needs it to preserve universe parity.
	Registered []string `json:"registered,omitempty"`
}

// Snapshot copies every known point, including registered zero-count ones
// (so consumers can compute covered-of-universe).
func (m *Map) Snapshot() *Snapshot {
	snap := &Snapshot{
		Universe: m.Universe(),
		Covered:  m.Covered(),
		Counts:   make(map[string]int64, len(m.staticKey)),
	}
	for i, key := range m.staticKey {
		snap.Counts[key] = m.static[i].Load()
	}
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for key, c := range s.counts {
			snap.Counts[key] = c.Load()
		}
		for key := range s.registered {
			snap.Registered = append(snap.Registered, key)
		}
		s.mu.RUnlock()
	}
	sort.Strings(snap.Registered)
	return snap
}

// TablesAccepted lists the tables with at least one accepted update, in
// sorted order — the merged table-coverage set the parallel engine's
// determinism contract is stated over.
func (s *Snapshot) TablesAccepted() []string {
	var out []string
	for key, n := range s.Counts {
		if n > 0 && strings.HasPrefix(key, "table:") && strings.HasSuffix(key, ":accept") {
			out = append(out, strings.TrimSuffix(strings.TrimPrefix(key, "table:"), ":accept"))
		}
	}
	sort.Strings(out)
	return out
}

// Diff returns the points that grew since prev: counts are deltas, and
// Covered is the number of points newly covered (0 → nonzero).
func (s *Snapshot) Diff(prev *Snapshot) *Snapshot {
	d := &Snapshot{Universe: s.Universe, Counts: map[string]int64{}}
	for key, n := range s.Counts {
		var old int64
		if prev != nil {
			old = prev.Counts[key]
		}
		if n > old {
			d.Counts[key] = n - old
			if old == 0 && n > 0 {
				d.Covered++
			}
		}
	}
	return d
}

// JSON renders the snapshot for coverage.json (stable key order courtesy
// of encoding/json's map sorting).
func (s *Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// ParseSnapshot decodes a snapshot previously rendered by JSON. Unknown
// fields are rejected — a checkpoint store must notice, not silently
// drop, state written by a newer format.
func ParseSnapshot(data []byte) (*Snapshot, error) {
	s := &Snapshot{}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("coverage: parsing snapshot: %w", err)
	}
	if s.Counts == nil {
		s.Counts = map[string]int64{}
	}
	if s.Covered < 0 || s.Universe < 0 {
		return nil, fmt.Errorf("coverage: parsing snapshot: negative covered/universe (%d/%d)", s.Covered, s.Universe)
	}
	return s, nil
}

// RestoreMap rebuilds a live Map from a snapshot: a fresh map for the
// model (minus the same unreachable-table exclusions the snapshot was
// taken with) with every count and registered point folded back in.
// Restore(Snapshot(m)) is indistinguishable from m — the checkpoint
// store's round-trip guarantee.
func RestoreMap(info *p4info.Info, unreachable map[string]bool, s *Snapshot) *Map {
	m := NewMapExcluding(info, unreachable)
	m.Merge(s)
	return m
}

// CoveredInUniverse is the number of registered points exercised at
// least once. Points outside the universe (unregistered dynamic keys,
// e.g. entry hit bits and outcome cells) are excluded.
func (s *Snapshot) CoveredInUniverse() int {
	covered := 0
	for _, n := range s.Counts {
		if n > 0 {
			covered++
		}
	}
	// Counts holds registered zero-count keys and exercised dynamic keys;
	// the registered-and-covered intersection is covered keys minus the
	// dynamic surplus.
	surplus := len(s.Counts) - int(s.Universe)
	if surplus < 0 {
		surplus = 0
	}
	covered -= surplus
	if covered < 0 {
		covered = 0
	}
	return covered
}

// Percent is covered-of-universe as a percentage (0 when the universe is
// empty).
func (s *Snapshot) Percent() float64 {
	if s.Universe == 0 {
		return 0
	}
	return 100 * float64(s.CoveredInUniverse()) / float64(s.Universe)
}

// Table renders the per-group coverage table campaigns print with the
// -coverage flag.
func (s *Snapshot) Table() string {
	type row struct {
		name         string
		write, acc   int64
		hit, miss    int64
		entries      int64
		actions      int
		actionsTotal int
	}
	rows := map[string]*row{}
	get := func(name string) *row {
		r := rows[name]
		if r == nil {
			r = &row{name: name}
			rows[name] = r
		}
		return r
	}
	goalsCovered, goalsTotal := 0, 0
	mutations := map[string]int64{}
	for key, n := range s.Counts {
		parts := strings.Split(key, ":")
		switch parts[0] {
		case "table":
			r := get(parts[1])
			switch parts[len(parts)-1] {
			case "write":
				r.write = n
			case "accept":
				r.acc = n
			case "hit":
				r.hit = n
			case "miss":
				r.miss = n
			}
		case "action":
			if parts[len(parts)-1] == "invoke" {
				r := get(parts[1])
				r.actionsTotal++
				if n > 0 {
					r.actions++
				}
			}
		case "entry":
			if n > 0 {
				get(parts[1]).entries++
			}
		case "goal":
			goalsTotal++
			if n > 0 {
				goalsCovered++
			}
		case "mutation":
			mutations[parts[1]] = n
		}
	}
	names := make([]string, 0, len(rows))
	for name := range rows {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %8s %8s %8s %8s %8s %10s\n",
		"table", "writes", "accepts", "hits", "misses", "entries", "actions")
	for _, name := range names {
		r := rows[name]
		fmt.Fprintf(&b, "%-28s %8d %8d %8d %8d %8d %6d/%d\n",
			r.name, r.write, r.acc, r.hit, r.miss, r.entries, r.actions, r.actionsTotal)
	}
	if goalsTotal > 0 {
		fmt.Fprintf(&b, "symbolic goals covered: %d/%d\n", goalsCovered, goalsTotal)
	}
	if len(mutations) > 0 {
		classes := make([]string, 0, len(mutations))
		for c := range mutations {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		fmt.Fprintf(&b, "mutation classes applied: %d (", len(classes))
		for i, c := range classes {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%d", c, mutations[c])
		}
		b.WriteString(")\n")
	}
	fmt.Fprintf(&b, "coverage points: %d/%d model points covered (%.1f%%), %d total incl. dynamic\n",
		s.CoveredInUniverse(), s.Universe, s.Percent(), s.Covered)
	return b.String()
}
