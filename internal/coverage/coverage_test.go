package coverage

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"switchv/internal/p4/p4info"
	"switchv/models"
)

func newTestMap(t *testing.T) *Map {
	t.Helper()
	return NewMap(p4info.New(models.Middleblock()))
}

func TestKeyConstructors(t *testing.T) {
	cases := []struct{ got, want string }{
		{KeyTableWrite("ipv4_table"), "table:ipv4_table:write"},
		{KeyTableAccept("ipv4_table"), "table:ipv4_table:accept"},
		{KeyTableHit("ipv4_table"), "table:ipv4_table:hit"},
		{KeyTableMiss("ipv4_table"), "table:ipv4_table:miss"},
		{KeyActionSelect("ipv4_table", "set_nexthop"), "action:ipv4_table:set_nexthop:select"},
		{KeyActionInvoke("ipv4_table", "set_nexthop"), "action:ipv4_table:set_nexthop:invoke"},
		{KeyEntryHit("ipv4_table", "10.0.0.0/8"), "entry:ipv4_table:10.0.0.0/8"},
		{KeyMutation("InvalidTableID"), "mutation:InvalidTableID"},
		{KeyMutationOutcome("InvalidTableID", "MustReject", false), "outcome:InvalidTableID:MustReject:rejected"},
		{KeyMutationOutcome("", "MustAccept", true), "outcome:valid:MustAccept:accepted"},
		{KeyVerdictOutcome("ipv4_table", "MustAccept", true), "verdict:ipv4_table:MustAccept:accepted"},
		{KeyGoal("entry:ipv4_table:3"), "goal:entry:ipv4_table:3"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("key = %q, want %q", c.got, c.want)
		}
	}
}

func TestNewMapPreRegistersModelPoints(t *testing.T) {
	info := p4info.New(models.Middleblock())
	m := NewMap(info)
	if m.Universe() == 0 {
		t.Fatal("empty universe")
	}
	if m.Covered() != 0 {
		t.Fatalf("fresh map covered = %d, want 0", m.Covered())
	}
	// Every table contributes write/accept/hit/miss plus its actions.
	for _, tab := range info.Tables() {
		for _, key := range []string{
			KeyTableWrite(tab.Name), KeyTableAccept(tab.Name),
			KeyTableHit(tab.Name), KeyTableMiss(tab.Name),
		} {
			if _, ok := m.staticIdx[key]; !ok {
				t.Errorf("static index missing %q", key)
			}
		}
		for _, a := range tab.Actions {
			if _, ok := m.staticIdx[KeyActionSelect(tab.Name, a.Name)]; !ok {
				t.Errorf("static index missing action select for %s/%s", tab.Name, a.Name)
			}
		}
	}
	snap := m.Snapshot()
	if int64(len(snap.Counts)) != m.Universe() {
		t.Fatalf("snapshot has %d keys, universe %d", len(snap.Counts), m.Universe())
	}
}

func TestIncCountCovered(t *testing.T) {
	m := newTestMap(t)
	static := KeyTableWrite("ipv4_table")
	if n := m.Inc(static); n != 1 {
		t.Fatalf("first Inc = %d, want 1", n)
	}
	if n := m.Inc(static); n != 2 {
		t.Fatalf("second Inc = %d, want 2", n)
	}
	if m.Covered() != 1 {
		t.Fatalf("covered = %d, want 1 (same point twice)", m.Covered())
	}
	// A dynamic (unregistered) key counts toward Covered but not Universe.
	u := m.Universe()
	dyn := KeyEntryHit("ipv4_table", "k1")
	m.Inc(dyn)
	if m.Covered() != 2 {
		t.Fatalf("covered = %d, want 2", m.Covered())
	}
	if m.Universe() != u {
		t.Fatalf("universe grew on Inc of dynamic key")
	}
	if m.Count(dyn) != 1 || m.Count(static) != 2 || m.Count("nope") != 0 {
		t.Fatalf("Count mismatch: dyn=%d static=%d unknown=%d",
			m.Count(dyn), m.Count(static), m.Count("nope"))
	}
}

func TestRegisterGrowsUniverseIdempotently(t *testing.T) {
	m := newTestMap(t)
	u := m.Universe()
	m.Register(KeyGoal("g1"))
	m.Register(KeyGoal("g1"))               // idempotent
	m.Register(KeyTableWrite("ipv4_table")) // already static: no-op
	if m.Universe() != u+1 {
		t.Fatalf("universe = %d, want %d", m.Universe(), u+1)
	}
	if m.Covered() != 0 {
		t.Fatalf("Register must not mark points covered")
	}
	// Registered-then-exercised counts covered exactly once.
	m.NoteGoal("g1")
	m.NoteGoal("g1")
	if m.Covered() != 1 {
		t.Fatalf("covered = %d, want 1", m.Covered())
	}
}

func TestNoteAcceptTracksTablesAccepted(t *testing.T) {
	m := newTestMap(t)
	m.NoteAccept("ipv4_table")
	m.NoteAccept("ipv4_table")
	m.NoteAccept("ipv6_table")
	if got := m.TablesAccepted(); got != 2 {
		t.Fatalf("TablesAccepted = %d, want 2", got)
	}
}

func TestNoteDataPlaneHit(t *testing.T) {
	m := newTestMap(t)
	m.NoteDataPlaneHit("ipv4_table", "key-a", "set_nexthop")
	m.NoteDataPlaneHit("ipv4_table", "", "drop") // default action = miss
	if m.Count(KeyTableHit("ipv4_table")) != 1 {
		t.Errorf("hit count = %d, want 1", m.Count(KeyTableHit("ipv4_table")))
	}
	if m.Count(KeyTableMiss("ipv4_table")) != 1 {
		t.Errorf("miss count = %d, want 1", m.Count(KeyTableMiss("ipv4_table")))
	}
	if m.Count(KeyEntryHit("ipv4_table", "key-a")) != 1 {
		t.Errorf("entry bit not set")
	}
	if m.Count(KeyActionInvoke("ipv4_table", "set_nexthop")) != 1 ||
		m.Count(KeyActionInvoke("ipv4_table", "drop")) != 1 {
		t.Errorf("action invoke counters not set")
	}
}

func TestSnapshotDiff(t *testing.T) {
	m := newTestMap(t)
	m.NoteWrite("ipv4_table")
	before := m.Snapshot()
	m.NoteWrite("ipv4_table")
	m.NoteAccept("ipv6_table")
	after := m.Snapshot()

	d := after.Diff(before)
	if d.Counts[KeyTableWrite("ipv4_table")] != 1 {
		t.Errorf("write delta = %d, want 1", d.Counts[KeyTableWrite("ipv4_table")])
	}
	if d.Counts[KeyTableAccept("ipv6_table")] != 1 {
		t.Errorf("accept delta = %d, want 1", d.Counts[KeyTableAccept("ipv6_table")])
	}
	if d.Covered != 1 {
		t.Errorf("diff covered = %d, want 1 (only the accept is newly covered)", d.Covered)
	}
	if len(d.Counts) != 2 {
		t.Errorf("diff has %d keys, want 2: %v", len(d.Counts), d.Counts)
	}
	// Diff against nil treats everything as new.
	if d0 := after.Diff(nil); d0.Covered != 2 {
		t.Errorf("diff(nil) covered = %d, want 2", d0.Covered)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	m := newTestMap(t)
	m.NoteWrite("ipv4_table")
	snap := m.Snapshot()
	data, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Universe != snap.Universe || back.Covered != snap.Covered ||
		back.Counts[KeyTableWrite("ipv4_table")] != 1 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestSnapshotPercent(t *testing.T) {
	m := newTestMap(t)
	if p := m.Snapshot().Percent(); p != 0 {
		t.Fatalf("fresh percent = %v, want 0", p)
	}
	m.NoteWrite("ipv4_table")
	// An out-of-universe dynamic point must not inflate the percentage.
	m.Inc(KeyEntryHit("ipv4_table", "k"))
	want := 100 / float64(m.Universe())
	if p := m.Snapshot().Percent(); p != want {
		t.Fatalf("percent = %v, want %v (1 of %d)", p, want, m.Universe())
	}
	if n := m.Snapshot().CoveredInUniverse(); n != 1 {
		t.Fatalf("CoveredInUniverse = %d, want 1", n)
	}
}

func TestSnapshotTableRender(t *testing.T) {
	m := newTestMap(t)
	m.NoteWrite("ipv4_table")
	m.NoteAccept("ipv4_table")
	m.NoteMutation("InvalidTableID")
	m.Register(KeyGoal("g1"))
	m.NoteGoal("g1")
	out := m.Snapshot().Table()
	for _, want := range []string{
		"ipv4_table",
		"symbolic goals covered: 1/1",
		"mutation classes applied: 1 (InvalidTableID=1)",
		"coverage points:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table() output missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentCounters hammers static and dynamic points from many
// goroutines; run under -race this is the subsystem's concurrency gate.
func TestConcurrentCounters(t *testing.T) {
	m := newTestMap(t)
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.NoteWrite("ipv4_table")
				m.NoteAccept("ipv6_table")
				m.NoteDataPlaneHit("ipv4_table", "shared-key", "set_nexthop")
				m.NoteVerdictOutcome("ipv4_table", "MustAccept", true)
				if i%50 == 0 {
					_ = m.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if n := m.Count(KeyTableWrite("ipv4_table")); n != workers*iters {
		t.Fatalf("write count = %d, want %d", n, workers*iters)
	}
	if n := m.Count(KeyEntryHit("ipv4_table", "shared-key")); n != workers*iters {
		t.Fatalf("entry count = %d, want %d", n, workers*iters)
	}
	if m.TablesAccepted() != 1 {
		t.Fatalf("TablesAccepted = %d, want 1", m.TablesAccepted())
	}
	// Each distinct point covered exactly once regardless of contention:
	// write, accept, hit, miss(0? no miss), entry, invoke, verdict.
	snap := m.Snapshot()
	covered := int64(0)
	for _, n := range snap.Counts {
		if n > 0 {
			covered++
		}
	}
	if m.Covered() != covered {
		t.Fatalf("Covered() = %d, snapshot says %d", m.Covered(), covered)
	}
}

func TestNewMapExcluding(t *testing.T) {
	info := p4info.New(models.Middleblock())
	full := NewMap(info)
	dead := "mirror_session_table"
	if _, ok := full.staticIdx[KeyTableHit(dead)]; !ok {
		t.Fatalf("fixture table %s not in the model", dead)
	}
	m := NewMapExcluding(info, map[string]bool{dead: true})

	if m.Universe() >= full.Universe() {
		t.Errorf("exclusion did not shrink the universe: %d vs %d", m.Universe(), full.Universe())
	}
	// Data-plane points of the dead table are out of the denominator...
	for _, key := range []string{KeyTableHit(dead), KeyTableMiss(dead)} {
		if _, ok := m.staticIdx[key]; ok {
			t.Errorf("dead table kept data-plane point %q", key)
		}
	}
	// ...but its control-plane points remain: it still takes entries.
	for _, key := range []string{KeyTableWrite(dead), KeyTableAccept(dead)} {
		if _, ok := m.staticIdx[key]; !ok {
			t.Errorf("dead table lost control-plane point %q", key)
		}
	}
	for _, tab := range info.Tables() {
		for _, a := range tab.Actions {
			_, hasSelect := m.staticIdx[KeyActionSelect(tab.Name, a.Name)]
			_, hasInvoke := m.staticIdx[KeyActionInvoke(tab.Name, a.Name)]
			if !hasSelect {
				t.Errorf("missing action select for %s/%s", tab.Name, a.Name)
			}
			if hasInvoke == (tab.Name == dead) {
				t.Errorf("action invoke for %s/%s: present=%v", tab.Name, a.Name, hasInvoke)
			}
		}
	}
}
