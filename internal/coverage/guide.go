package coverage

import (
	"math/rand"

	"switchv/internal/p4/ir"
)

// Guide turns the coverage map into a scheduler: instead of uniform
// random picks, the fuzzer draws tables, actions and mutation classes
// with probability proportional to their energy, which decays as a
// region accumulates coverage (the power-schedule idea FP4 applies to
// P4 switch fuzzing). Draws read the rng deterministically and iterate
// candidates in caller order, never in map order, so a campaign with the
// same seed and the same coverage state produces the same schedule.
type Guide struct {
	m *Map
}

// NewGuide returns a guide over a map.
func NewGuide(m *Map) *Guide { return &Guide{m: m} }

// Map returns the underlying coverage map.
func (g *Guide) Map() *Map { return g.m }

// energy maps a coverage count to a scheduling weight: an unexercised
// region weighs 1, and weight decays quadratically as coverage grows, so
// cold regions dominate the draw without ever starving hot ones. The
// decay must be steep — with a shallow schedule a region covered once
// keeps half the weight of an uncovered one and the guide degenerates
// toward uniform.
func energy(count int64) float64 {
	n := 1 + float64(count)
	return 1 / (n * n)
}

// weighted draws index i with probability w[i]/sum(w) using a single rng
// value. Zero/negative weights never win unless all weights are.
func weighted(rng *rand.Rand, w []float64) int {
	total := 0.0
	for _, x := range w {
		if x > 0 {
			total += x
		}
	}
	if total <= 0 {
		return rng.Intn(len(w))
	}
	r := rng.Float64() * total
	for i, x := range w {
		if x <= 0 {
			continue
		}
		r -= x
		if r < 0 {
			return i
		}
	}
	return len(w) - 1
}

// PickTable draws a table from candidates, weighted by how little the
// campaign has accepted into each: tables with no accepted update yet
// carry maximal energy.
func (g *Guide) PickTable(rng *rand.Rand, candidates []*ir.Table) *ir.Table {
	if len(candidates) == 1 {
		return candidates[0]
	}
	w := make([]float64, len(candidates))
	for i, t := range candidates {
		w[i] = energy(g.m.Count(KeyTableAccept(t.Name)))
	}
	return candidates[weighted(rng, w)]
}

// PickAction draws one of a table's actions, weighted toward actions the
// switch has accepted fewest entries for.
func (g *Guide) PickAction(rng *rand.Rand, t *ir.Table) *ir.Action {
	if len(t.Actions) == 1 {
		return t.Actions[0]
	}
	w := make([]float64, len(t.Actions))
	for i, a := range t.Actions {
		w[i] = energy(g.m.Count(KeyActionSelect(t.Name, a.Name)))
	}
	return t.Actions[weighted(rng, w)]
}

// PickMutationOrder returns the mutation classes (by index into names)
// in the order the fuzzer should attempt them: a weighted draw without
// replacement, so rarely-applied classes come up first but inapplicable
// ones still have fallbacks. It consumes len(names)-1 rng values.
func (g *Guide) PickMutationOrder(rng *rand.Rand, names []string) []int {
	w := make([]float64, len(names))
	for i, name := range names {
		w[i] = energy(g.m.Count(KeyMutation(name)))
	}
	order := make([]int, 0, len(names))
	remaining := make([]int, len(names))
	for i := range names {
		remaining[i] = i
	}
	for len(remaining) > 1 {
		wr := make([]float64, len(remaining))
		for j, idx := range remaining {
			wr[j] = w[idx]
		}
		j := weighted(rng, wr)
		order = append(order, remaining[j])
		remaining = append(remaining[:j], remaining[j+1:]...)
	}
	return append(order, remaining[0])
}
