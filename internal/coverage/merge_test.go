package coverage

import (
	"reflect"
	"testing"
)

// driveShardA/driveShardB simulate the activity of two shard campaigns;
// driving both onto one map simulates the equivalent single campaign.
func driveShardA(m *Map) {
	m.NoteWrite("ipv4_table")
	m.NoteWrite("ipv4_table")
	m.NoteAccept("ipv4_table")
	m.NoteActionSelect("ipv4_table", "set_nexthop_id")
	m.NoteMutation("InvalidTableID")
	m.NoteMutationOutcome("InvalidTableID", "MustReject", false)
	m.NoteDataPlaneHit("ipv4_table", "10.0.0.0/8", "set_nexthop_id")
	m.Register(KeyGoal("g-shared"))
	m.Register(KeyGoal("g-only-a"))
	m.NoteGoal("g-shared")
}

func driveShardB(m *Map) {
	m.NoteWrite("ipv4_table") // overlaps with shard A
	m.NoteWrite("ipv6_table")
	m.NoteAccept("ipv6_table")
	m.NoteVerdictOutcome("ipv6_table", "MustAccept", true)
	m.NoteDataPlaneHit("ipv6_table", "", "drop") // miss
	m.Register(KeyGoal("g-shared"))              // overlaps with shard A
	m.Register(KeyGoal("g-only-b"))
}

// TestMergeEqualsCombinedCampaign is the merge contract: a root map merged
// from N shard snapshots must be indistinguishable — counts, covered,
// universe, tables-accepted — from one map that did all the work itself.
func TestMergeEqualsCombinedCampaign(t *testing.T) {
	shardA, shardB := newTestMap(t), newTestMap(t)
	driveShardA(shardA)
	driveShardB(shardB)

	combined := newTestMap(t)
	driveShardA(combined)
	driveShardB(combined)

	merged := newTestMap(t)
	merged.Merge(shardA.Snapshot())
	merged.Merge(shardB.Snapshot())

	ms, cs := merged.Snapshot(), combined.Snapshot()
	if !reflect.DeepEqual(ms.Counts, cs.Counts) {
		t.Errorf("merged counts differ from combined campaign:\nmerged:   %v\ncombined: %v", ms.Counts, cs.Counts)
	}
	if merged.Covered() != combined.Covered() {
		t.Errorf("Covered: merged %d, combined %d", merged.Covered(), combined.Covered())
	}
	if merged.Universe() != combined.Universe() {
		t.Errorf("Universe: merged %d, combined %d", merged.Universe(), combined.Universe())
	}
	if merged.TablesAccepted() != combined.TablesAccepted() {
		t.Errorf("TablesAccepted: merged %d, combined %d",
			merged.TablesAccepted(), combined.TablesAccepted())
	}
	if got, want := ms.TablesAccepted(), cs.TablesAccepted(); !reflect.DeepEqual(got, want) {
		t.Errorf("snapshot TablesAccepted: merged %v, combined %v", got, want)
	}
}

// TestMergeRegistersZeroCountPoints checks that a shard's registered-but-
// unexercised points (symbolic goals it never reached) grow the merged
// universe without inflating coverage.
func TestMergeRegistersZeroCountPoints(t *testing.T) {
	shard := newTestMap(t)
	shard.Register(KeyGoal("unreached"))

	root := newTestMap(t)
	u := root.Universe()
	root.Merge(shard.Snapshot())
	if root.Universe() != u+1 {
		t.Fatalf("universe = %d, want %d", root.Universe(), u+1)
	}
	if root.Covered() != 0 {
		t.Fatalf("covered = %d, want 0 (goal never exercised)", root.Covered())
	}
	// A second shard registering the same goal must not double-count it.
	root.Merge(shard.Snapshot())
	if root.Universe() != u+1 {
		t.Fatalf("universe after re-merge = %d, want %d", root.Universe(), u+1)
	}
}

// TestAddDeltaTransition pins the covered/tables-accepted transition rule
// Merge relies on: a point is newly covered exactly when new count ==
// delta, regardless of delta's size.
func TestAddDeltaTransition(t *testing.T) {
	m := newTestMap(t)
	if n := m.Add(KeyTableAccept("ipv4_table"), 5); n != 5 {
		t.Fatalf("Add = %d, want 5", n)
	}
	if m.Covered() != 1 || m.TablesAccepted() != 1 {
		t.Fatalf("after first Add: covered=%d tablesAccepted=%d, want 1/1",
			m.Covered(), m.TablesAccepted())
	}
	if n := m.Add(KeyTableAccept("ipv4_table"), 3); n != 8 {
		t.Fatalf("Add = %d, want 8", n)
	}
	if m.Covered() != 1 || m.TablesAccepted() != 1 {
		t.Fatalf("after second Add: covered=%d tablesAccepted=%d, want 1/1 (no re-transition)",
			m.Covered(), m.TablesAccepted())
	}
	// Dynamic keys follow the same rule.
	if m.Add(KeyEntryHit("ipv4_table", "k"), 7); m.Covered() != 2 {
		t.Fatalf("dynamic Add transition missed: covered=%d, want 2", m.Covered())
	}
}

func TestSnapshotTablesAcceptedSet(t *testing.T) {
	m := newTestMap(t)
	m.NoteAccept("ipv6_table")
	m.NoteAccept("ipv4_table")
	m.NoteWrite("acl_ingress_table") // write only: not accepted
	want := []string{"ipv4_table", "ipv6_table"}
	if got := m.Snapshot().TablesAccepted(); !reflect.DeepEqual(got, want) {
		t.Fatalf("TablesAccepted = %v, want %v", got, want)
	}
}
