package coverage

import (
	"math/rand"
	"testing"

	"switchv/internal/p4/p4info"
	"switchv/models"
)

func TestWeightedRespectsWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Index 1 carries all the weight; it must always win.
	for i := 0; i < 100; i++ {
		if got := weighted(rng, []float64{0, 5, 0}); got != 1 {
			t.Fatalf("weighted picked %d with zero weight", got)
		}
	}
	// All-zero weights fall back to uniform (never panic, stay in range).
	for i := 0; i < 100; i++ {
		if got := weighted(rng, []float64{0, 0, 0}); got < 0 || got > 2 {
			t.Fatalf("weighted out of range: %d", got)
		}
	}
}

func TestEnergyDecays(t *testing.T) {
	if energy(0) != 1 {
		t.Fatalf("energy(0) = %v, want 1", energy(0))
	}
	if !(energy(10) < energy(1) && energy(1) < energy(0)) {
		t.Fatalf("energy not monotonically decreasing: %v %v %v",
			energy(0), energy(1), energy(10))
	}
}

func TestPickTableBiasesTowardUncovered(t *testing.T) {
	info := p4info.New(models.Middleblock())
	m := NewMap(info)
	g := NewGuide(m)
	tables := info.Tables()
	if len(tables) < 3 {
		t.Skip("model too small")
	}
	// Make table 0 extremely hot; the rest stay cold.
	for i := 0; i < 1000; i++ {
		m.NoteAccept(tables[0].Name)
	}
	rng := rand.New(rand.NewSource(42))
	hot := 0
	const draws = 2000
	for i := 0; i < draws; i++ {
		if g.PickTable(rng, tables) == tables[0] {
			hot++
		}
	}
	// Uniform would give draws/len(tables); energy scheduling should push
	// the hot table far below that.
	uniform := draws / len(tables)
	if hot >= uniform/2 {
		t.Fatalf("hot table drawn %d times; want well under uniform share %d", hot, uniform)
	}
}

func TestPickActionBiasesTowardUncovered(t *testing.T) {
	info := p4info.New(models.Middleblock())
	m := NewMap(info)
	g := NewGuide(m)
	var multi *p4info.Info
	_ = multi
	for _, tab := range info.Tables() {
		if len(tab.Actions) < 2 {
			continue
		}
		for i := 0; i < 1000; i++ {
			m.NoteActionSelect(tab.Name, tab.Actions[0].Name)
		}
		rng := rand.New(rand.NewSource(7))
		hot := 0
		const draws = 1000
		for i := 0; i < draws; i++ {
			if g.PickAction(rng, tab) == tab.Actions[0] {
				hot++
			}
		}
		uniform := draws / len(tab.Actions)
		if hot >= uniform/2 {
			t.Fatalf("%s: hot action drawn %d times; want well under uniform share %d",
				tab.Name, hot, uniform)
		}
		return
	}
	t.Skip("no multi-action table in model")
}

// TestGuideDeterminism is the seeded-schedule guarantee: the same seed
// plus the same coverage state must produce the same draw sequence.
func TestGuideDeterminism(t *testing.T) {
	info := p4info.New(models.Middleblock())
	build := func() (*Guide, *rand.Rand) {
		m := NewMap(info)
		m.NoteAccept(info.Tables()[0].Name)
		m.NoteMutation("InvalidTableID")
		return NewGuide(m), rand.New(rand.NewSource(99))
	}
	g1, r1 := build()
	g2, r2 := build()
	tables := info.Tables()
	names := []string{"A", "B", "C", "InvalidTableID", "D"}
	for i := 0; i < 200; i++ {
		if g1.PickTable(r1, tables) != g2.PickTable(r2, tables) {
			t.Fatalf("table draw %d diverged", i)
		}
		o1 := g1.PickMutationOrder(r1, names)
		o2 := g2.PickMutationOrder(r2, names)
		for j := range o1 {
			if o1[j] != o2[j] {
				t.Fatalf("mutation order %d diverged: %v vs %v", i, o1, o2)
			}
		}
	}
}

func TestPickMutationOrderIsPermutation(t *testing.T) {
	m := NewMap(p4info.New(models.Middleblock()))
	g := NewGuide(m)
	rng := rand.New(rand.NewSource(3))
	names := []string{"a", "b", "c", "d", "e"}
	// Heat up "a" so it tends to sort late; regardless, every index must
	// appear exactly once.
	for i := 0; i < 100; i++ {
		m.NoteMutation("a")
	}
	firstA := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		order := g.PickMutationOrder(rng, names)
		seen := make([]bool, len(names))
		for _, idx := range order {
			if idx < 0 || idx >= len(names) || seen[idx] {
				t.Fatalf("not a permutation: %v", order)
			}
			seen[idx] = true
		}
		if len(order) != len(names) {
			t.Fatalf("order length %d, want %d", len(order), len(names))
		}
		if order[0] == 0 {
			firstA++
		}
	}
	// "a" has energy 1/101 vs 1 for the others; it should almost never be
	// attempted first.
	if firstA > trials/10 {
		t.Fatalf("hot mutation attempted first %d/%d times", firstA, trials)
	}
}
