package coverage

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"switchv/internal/p4/p4info"
	"switchv/models"
)

// exercisedMap builds a deterministic, partially exercised map over the
// middleblock model: a fixed set of control-plane, data-plane, outcome
// and goal points. The golden file pins its serialized form.
func exercisedMap(t *testing.T) (*p4info.Info, *Map) {
	t.Helper()
	info := p4info.New(models.Middleblock())
	m := NewMap(info)
	tables := info.Tables()
	if len(tables) < 2 {
		t.Fatalf("middleblock model has %d tables, need 2", len(tables))
	}
	t0, t1 := tables[0], tables[1]
	m.NoteWrite(t0.Name)
	m.NoteWrite(t0.Name)
	m.NoteAccept(t0.Name)
	m.NoteWrite(t1.Name)
	m.NoteActionSelect(t0.Name, t0.Actions[0].Name)
	m.NoteDataPlaneHit(t0.Name, "entry-0", t0.Actions[0].Name)
	m.NoteDataPlaneHit(t1.Name, "", t1.DefaultAction.Name)
	m.NoteMutation("InvalidTableID")
	m.NoteMutationOutcome("InvalidTableID", "MustReject", false)
	m.NoteVerdictOutcome(t0.Name, "MustAccept", true)
	m.Register(KeyGoal("entry:" + t0.Name + ":0"))
	m.Register(KeyGoal("entry:" + t0.Name + ":1"))
	m.NoteGoal("entry:" + t0.Name + ":0")
	return info, m
}

// TestSnapshotParseRoundTrip: JSON → ParseSnapshot → JSON is the
// identity, and a map restored from the snapshot snapshots back to the
// identical document and derived metrics.
func TestSnapshotParseRoundTrip(t *testing.T) {
	info, m := exercisedMap(t)
	snap := m.Snapshot()
	data, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := parsed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("snapshot JSON is not a fixed point of ParseSnapshot")
	}

	restored := RestoreMap(info, nil, parsed)
	data3, err := restored.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data3) {
		t.Error("RestoreMap(Snapshot(m)) snapshots to a different document than m")
	}
	if restored.Covered() != m.Covered() || restored.Universe() != m.Universe() ||
		restored.TablesAccepted() != m.TablesAccepted() {
		t.Errorf("restored metrics %d/%d/%d, want %d/%d/%d",
			restored.Covered(), restored.Universe(), restored.TablesAccepted(),
			m.Covered(), m.Universe(), m.TablesAccepted())
	}
}

// TestSnapshotRoundTripExcluding covers the preflight-excluded variant:
// the restored map must reproduce the reduced universe, not re-register
// the dead table's data-plane points.
func TestSnapshotRoundTripExcluding(t *testing.T) {
	info := p4info.New(models.Middleblock())
	dead := map[string]bool{info.Tables()[0].Name: true}
	m := NewMapExcluding(info, dead)
	m.NoteWrite(info.Tables()[1].Name)
	snap := m.Snapshot()

	restored := RestoreMap(info, dead, snap)
	if restored.Universe() != m.Universe() {
		t.Errorf("restored universe %d, want %d", restored.Universe(), m.Universe())
	}
	wrong := RestoreMap(info, nil, snap)
	if wrong.Universe() == m.Universe() {
		t.Error("restoring without the exclusion set should inflate the universe (sanity check)")
	}
}

// TestSnapshotGolden pins the on-disk snapshot format byte-for-byte.
// Regenerate with UPDATE_GOLDEN=1 go test ./internal/coverage -run Golden.
func TestSnapshotGolden(t *testing.T) {
	_, m := exercisedMap(t)
	data, err := m.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	golden := filepath.Join("testdata", "snapshot.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("snapshot JSON drifted from %s (UPDATE_GOLDEN=1 to regenerate)\ngot:  %.300s\nwant: %.300s",
			golden, data, want)
	}
}

func TestParseSnapshotRejectsMalformed(t *testing.T) {
	for name, doc := range map[string]string{
		"unknown-field": `{"universe": 1, "covered": 0, "counts": {}, "bogus": 3}`,
		"negative":      `{"universe": -4, "covered": 0, "counts": {}}`,
		"not-json":      `{`,
	} {
		if _, err := ParseSnapshot([]byte(doc)); err == nil {
			t.Errorf("ParseSnapshot accepted %s input", name)
		} else if !strings.Contains(err.Error(), "coverage: parsing snapshot") {
			t.Errorf("%s: error %v lacks package context", name, err)
		}
	}
}
