package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"switchv/internal/bugdb"
	"switchv/internal/switchv"
)

// Store is the daemon's on-disk checkpoint store. Layout under dir:
//
//	incidents.json                  fleet-wide deduped bugdb.Record list
//	targets/<name>/status.json      per-target trajectory + round cursor
//	targets/<name>/round-<NNNN>/
//	    campaign.json               CampaignMeta: config fingerprint + phase
//	    shard-<k>.json              switchv.ShardCheckpoint, one per done shard
//	    report.json                 canonical merged control-plane report
//	    dataplane.json              DataPlaneSummary
//
// Every write lands via a temp file + rename, so a crash mid-write
// leaves the previous state intact, never a torn JSON document. All
// documents are deterministic: restarting a daemon over the same store
// and fleet reproduces them byte for byte.
type Store struct {
	dir string
}

// CampaignMeta identifies one (target, round) campaign and its progress.
type CampaignMeta struct {
	Target string `json:"target"`
	Round  int    `json:"round"`
	// Config fingerprints the campaign parameters (seed, shards, budget,
	// role, entries). Resume is only sound against an identical config;
	// a mismatch discards the round's checkpoints and starts over.
	Config string `json:"config"`
	// Phase is the resume cursor: "control-plane" while shard
	// checkpoints accumulate, "data-plane" once report.json exists,
	// "done" when the round is fully recorded.
	Phase string `json:"phase"`
}

// Campaign phases, in order.
const (
	PhaseControlPlane = "control-plane"
	PhaseDataPlane    = "data-plane"
	PhaseDone         = "done"
)

// DataPlaneSummary is the deterministic projection of a data-plane
// campaign persisted per round.
type DataPlaneSummary struct {
	Entries     int                `json:"entries"`
	Goals       int                `json:"goals"`
	Covered     int                `json:"covered"`
	Unreachable int                `json:"unreachable"`
	Packets     int                `json:"packets"`
	Incidents   []switchv.Incident `json:"incidents"`
}

// TrajectoryPoint is one per-round sample of a target's coverage and
// incident history, served by the /targets API.
type TrajectoryPoint struct {
	Round          int     `json:"round"`
	Covered        int     `json:"covered"`
	Universe       int64   `json:"universe"`
	Percent        float64 `json:"percent"`
	TablesAccepted int     `json:"tables_accepted"`
	Incidents      int     `json:"incidents"`
}

// TargetHistory is a target's persisted status: how many rounds have
// completed and the coverage trajectory across them.
type TargetHistory struct {
	Name       string            `json:"name"`
	RoundsDone int               `json:"rounds_done"`
	Trajectory []TrajectoryPoint `json:"trajectory"`
}

// OpenStore opens (creating if needed) a checkpoint store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("daemon: store directory is required")
	}
	if err := os.MkdirAll(filepath.Join(dir, "targets"), 0o755); err != nil {
		return nil, fmt.Errorf("daemon: opening store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) roundDir(target string, round int) string {
	return filepath.Join(s.dir, "targets", target, fmt.Sprintf("round-%04d", round))
}

// writeJSON atomically replaces path with the JSON rendering of v.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ErrCorrupt marks a checkpoint file that exists but does not decode —
// a torn or bit-rotted document (atomic renames rule out torn writes
// from this process, but disks, copies and crashes mid-fsync do not
// honour that contract). The scheduler treats it as a quarantine
// signal: sideline the round directory and rebuild from the previous
// good checkpoint instead of crashing the daemon.
var ErrCorrupt = errors.New("daemon: corrupt checkpoint")

// readJSON decodes path into v; missing files return os.ErrNotExist,
// undecodable ones wrap ErrCorrupt.
func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%w %s: %v", ErrCorrupt, path, err)
	}
	return nil
}

// QuarantineRound sidelines a (target, round) checkpoint directory by
// renaming it to round-NNNN.corrupt-K (K picks the first free suffix),
// preserving the bytes for forensics while clearing the path for a
// fresh round directory. Missing directories are a no-op.
func (s *Store) QuarantineRound(target string, round int) (string, error) {
	dir := s.roundDir(target, round)
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return "", nil
	}
	for k := 0; ; k++ {
		dst := fmt.Sprintf("%s.corrupt-%d", dir, k)
		if _, err := os.Stat(dst); err == nil {
			continue
		}
		if err := os.Rename(dir, dst); err != nil {
			return "", fmt.Errorf("daemon: quarantining %s: %w", dir, err)
		}
		return dst, nil
	}
}

// LoadCampaign returns the (target, round) campaign meta, or nil if the
// round has never checkpointed.
func (s *Store) LoadCampaign(target string, round int) (*CampaignMeta, error) {
	meta := &CampaignMeta{}
	err := readJSON(filepath.Join(s.roundDir(target, round), "campaign.json"), meta)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return meta, nil
}

// SaveCampaign persists the campaign meta.
func (s *Store) SaveCampaign(meta *CampaignMeta) error {
	return writeJSON(filepath.Join(s.roundDir(meta.Target, meta.Round), "campaign.json"), meta)
}

// ResetCampaign discards every checkpoint of a (target, round) —
// the config changed, so the old shards are not resumable.
func (s *Store) ResetCampaign(target string, round int) error {
	return os.RemoveAll(s.roundDir(target, round))
}

// SaveShard checkpoints one completed shard.
func (s *Store) SaveShard(target string, round, shard int, cp *switchv.ShardCheckpoint) error {
	return writeJSON(filepath.Join(s.roundDir(target, round), fmt.Sprintf("shard-%d.json", shard)), cp)
}

// LoadShards returns every checkpointed shard of a (target, round),
// ready for ParallelOptions.Resume. Missing rounds load as empty.
func (s *Store) LoadShards(target string, round int) (map[int]*switchv.ShardCheckpoint, error) {
	dir := s.roundDir(target, round)
	names, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return map[int]*switchv.ShardCheckpoint{}, nil
	}
	if err != nil {
		return nil, err
	}
	out := map[int]*switchv.ShardCheckpoint{}
	for _, e := range names {
		name := e.Name()
		if !strings.HasPrefix(name, "shard-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		shard, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "shard-"), ".json"))
		if err != nil {
			continue
		}
		cp := &switchv.ShardCheckpoint{}
		if err := readJSON(filepath.Join(dir, name), cp); err != nil {
			return nil, err
		}
		out[shard] = cp
	}
	return out, nil
}

// SaveReport persists the canonical merged control-plane report.
func (s *Store) SaveReport(target string, round int, rep *switchv.CanonicalReport) error {
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	data = append(data, '\n')
	path := filepath.Join(s.roundDir(target, round), "report.json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadReport returns the round's canonical report, or nil before the
// control-plane phase completes.
func (s *Store) LoadReport(target string, round int) (*switchv.CanonicalReport, error) {
	rep := &switchv.CanonicalReport{}
	err := readJSON(filepath.Join(s.roundDir(target, round), "report.json"), rep)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// SaveDataPlane persists the round's data-plane summary.
func (s *Store) SaveDataPlane(target string, round int, sum *DataPlaneSummary) error {
	return writeJSON(filepath.Join(s.roundDir(target, round), "dataplane.json"), sum)
}

// LoadDataPlane returns the round's data-plane summary, or nil if that
// phase has not completed.
func (s *Store) LoadDataPlane(target string, round int) (*DataPlaneSummary, error) {
	sum := &DataPlaneSummary{}
	err := readJSON(filepath.Join(s.roundDir(target, round), "dataplane.json"), sum)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return sum, nil
}

// LoadRecords returns the fleet-wide incident records (empty if none
// have been persisted yet).
func (s *Store) LoadRecords() ([]bugdb.Record, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, "incidents.json"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return bugdb.DecodeRecords(data)
}

// SaveRecords persists the fleet-wide incident records.
func (s *Store) SaveRecords(records []bugdb.Record) error {
	data, err := bugdb.EncodeRecords(records)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	path := filepath.Join(s.dir, "incidents.json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadHistory returns a target's persisted status (zero value if new).
func (s *Store) LoadHistory(target string) (*TargetHistory, error) {
	h := &TargetHistory{}
	err := readJSON(filepath.Join(s.dir, "targets", target, "status.json"), h)
	if os.IsNotExist(err) {
		return &TargetHistory{Name: target}, nil
	}
	if err != nil {
		return nil, err
	}
	return h, nil
}

// SaveHistory persists a target's status.
func (s *Store) SaveHistory(h *TargetHistory) error {
	return writeJSON(filepath.Join(s.dir, "targets", h.Name, "status.json"), h)
}

// Rounds lists the round numbers with checkpoints for a target, in
// ascending order. Missing targets list as empty.
func (s *Store) Rounds(target string) ([]int, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "targets", target))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "round-") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimPrefix(e.Name(), "round-"))
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// Targets lists the target names present in the store, sorted.
func (s *Store) Targets() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "targets"))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}
