package daemon

import (
	"encoding/json"
	"net"
	"net/http"

	"switchv/internal/bugdb"
)

// The daemon's HTTP/JSON status API:
//
//	GET /healthz    liveness + fleet round counter
//	GET /targets    per-target status and coverage trajectory
//	GET /campaigns  per-(target, round) campaign progress from the store
//	GET /incidents  fleet-wide deduplicated incident records
//
// All endpoints are read-only; the daemon is driven by its Config and
// signals, not the API.

// CampaignStatus is one (target, round) row of the /campaigns listing.
type CampaignStatus struct {
	Target     string `json:"target"`
	Round      int    `json:"round"`
	Phase      string `json:"phase"`
	Config     string `json:"config"`
	ShardsDone int    `json:"shards_done"`
	Batches    int    `json:"batches"`
	Updates    int    `json:"updates"`
	Incidents  int    `json:"incidents"`
}

type healthResponse struct {
	Status  string `json:"status"`
	Targets int    `json:"targets"`
	Rounds  int    `json:"rounds"`
}

// Handler returns the daemon's status API as an http.Handler.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", d.handleHealthz)
	mux.HandleFunc("/targets", d.handleTargets)
	mux.HandleFunc("/campaigns", d.handleCampaigns)
	mux.HandleFunc("/incidents", d.handleIncidents)
	return mux
}

// Serve starts the status API on addr (":0" picks a free port) and
// returns the bound address. The server runs until the process exits;
// the daemon does not own its lifecycle beyond that.
func (d *Daemon) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, d.Handler())
	return ln.Addr().String(), nil
}

func writeJSONResponse(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSONResponse(w, healthResponse{
		Status:  "ok",
		Targets: len(d.cfg.Targets),
		Rounds:  d.Rounds(),
	})
}

func (d *Daemon) handleTargets(w http.ResponseWriter, r *http.Request) {
	writeJSONResponse(w, d.Statuses())
}

func (d *Daemon) handleIncidents(w http.ResponseWriter, r *http.Request) {
	records := d.Records()
	if records == nil {
		records = []bugdb.Record{}
	}
	writeJSONResponse(w, records)
}

func (d *Daemon) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	targets, err := d.store.Targets()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out := []CampaignStatus{}
	for _, name := range targets {
		rounds, err := d.store.Rounds(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		for _, round := range rounds {
			meta, err := d.store.LoadCampaign(name, round)
			if err != nil || meta == nil {
				continue
			}
			cs := CampaignStatus{Target: name, Round: round, Phase: meta.Phase, Config: meta.Config}
			if shards, err := d.store.LoadShards(name, round); err == nil {
				cs.ShardsDone = len(shards)
			}
			if rep, err := d.store.LoadReport(name, round); err == nil && rep != nil {
				cs.Batches = rep.Batches
				cs.Updates = rep.Updates
				cs.Incidents = len(rep.Incidents)
			}
			if dp, err := d.store.LoadDataPlane(name, round); err == nil && dp != nil {
				cs.Incidents += len(dp.Incidents)
			}
			out = append(out, cs)
		}
	}
	writeJSONResponse(w, out)
}
