package daemon

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"switchv/internal/fuzzer"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4rt"
	"switchv/internal/switchv"
	"switchv/internal/workload"
)

// configFingerprint renders the campaign parameters a checkpoint is
// only valid against. A daemon restarted with a different seed, shard
// split or budget must not merge the old checkpoints — the engine's
// determinism contract is stated per (seed, shards, budget) tuple.
func (d *Daemon) configFingerprint(t Target) string {
	return fmt.Sprintf("seed=%d shards=%d requests=%d updates=%d entries=%d role=%s",
		d.cfg.Seed, d.cfg.Shards, d.cfg.Requests, d.cfg.Updates, d.cfg.Entries, t.Role)
}

// runTargetRound drives one target through one validation round,
// recovering from corrupt checkpoints: when any of the round's
// documents fails to decode (ErrCorrupt), the round directory is
// quarantined — renamed aside, bytes preserved for forensics — and the
// round re-runs from the previous good state instead of wedging the
// daemon on a bad file forever.
func (d *Daemon) runTargetRound(t Target, round int) roundOutcome {
	out := d.runTargetRoundOnce(t, round)
	if out.err != nil && errors.Is(out.err, ErrCorrupt) {
		dst, qerr := d.store.QuarantineRound(t.Name, round)
		if qerr != nil {
			out.err = fmt.Errorf("%v (and quarantining the round failed: %v)", out.err, qerr)
			return out
		}
		d.cfg.Logf("daemon: target %s round %d: %v; quarantined to %s, re-running the round",
			t.Name, round, out.err, dst)
		out = d.runTargetRoundOnce(t, round)
	}
	return out
}

// runTargetRoundOnce drives one target through one validation round:
// control-plane campaign (checkpointed per shard, resumable), then
// data-plane campaign, then history update. Transport flaps are ridden
// out with backoff + resume up to FlapRetries times.
func (d *Daemon) runTargetRoundOnce(t Target, round int) roundOutcome {
	out := roundOutcome{target: t.Name, round: round}
	info := d.infos[t.Role]
	fp := d.configFingerprint(t)

	meta, err := d.store.LoadCampaign(t.Name, round)
	if err != nil {
		out.err = err
		return out
	}
	if meta != nil && meta.Config != fp {
		d.cfg.Logf("daemon: target %s round %d: config changed, discarding checkpoints", t.Name, round)
		if err := d.store.ResetCampaign(t.Name, round); err != nil {
			out.err = err
			return out
		}
		meta = nil
	}
	if meta == nil {
		meta = &CampaignMeta{Target: t.Name, Round: round, Config: fp, Phase: PhaseControlPlane}
		if err := d.store.SaveCampaign(meta); err != nil {
			out.err = err
			return out
		}
	}

	// Phase 1: control plane. Skipped entirely when a previous process
	// already merged this round's report.
	var report *switchv.CanonicalReport
	if meta.Phase == PhaseControlPlane {
		d.setPhase(t.Name, round, PhaseControlPlane)
		report, err = d.runControlPlane(t, round, info)
		if err != nil {
			out.err = err
			return out
		}
		if err := d.store.SaveReport(t.Name, round, report); err != nil {
			out.err = err
			return out
		}
		meta.Phase = PhaseDataPlane
		if err := d.store.SaveCampaign(meta); err != nil {
			out.err = err
			return out
		}
	} else {
		report, err = d.store.LoadReport(t.Name, round)
		if err != nil {
			out.err = err
			return out
		}
		if report == nil {
			// A meta past control-plane without a report is a torn store;
			// restart the round from scratch.
			if err := d.store.ResetCampaign(t.Name, round); err == nil {
				return d.runTargetRound(t, round)
			}
			out.err = fmt.Errorf("daemon: target %s round %d: checkpoint store lost report.json", t.Name, round)
			return out
		}
	}

	// Phase 2: data plane.
	var dp *DataPlaneSummary
	if meta.Phase == PhaseDataPlane {
		d.setPhase(t.Name, round, PhaseDataPlane)
		dp, err = d.runDataPlane(t, round, info)
		if err != nil {
			out.err = err
			return out
		}
		if err := d.store.SaveDataPlane(t.Name, round, dp); err != nil {
			out.err = err
			return out
		}
		meta.Phase = PhaseDone
		if err := d.store.SaveCampaign(meta); err != nil {
			out.err = err
			return out
		}
	} else {
		out.alreadyRecorded = true
		dp, err = d.store.LoadDataPlane(t.Name, round)
		if err != nil || dp == nil {
			out.err = fmt.Errorf("daemon: target %s round %d: checkpoint store lost dataplane.json", t.Name, round)
			return out
		}
	}

	out.incidents = append(out.incidents, report.Incidents...)
	out.incidents = append(out.incidents, dp.Incidents...)

	// Advance the persisted history and the live status.
	hist, err := d.store.LoadHistory(t.Name)
	if err != nil {
		out.err = err
		return out
	}
	if hist.RoundsDone <= round {
		hist.Name = t.Name
		hist.RoundsDone = round + 1
		point := TrajectoryPoint{
			Round:     round,
			Incidents: len(out.incidents),
		}
		if report.Coverage != nil {
			point.Covered = report.Coverage.CoveredInUniverse()
			point.Universe = report.Coverage.Universe
			point.Percent = report.Coverage.Percent()
			point.TablesAccepted = len(report.Coverage.TablesAccepted())
		}
		hist.Trajectory = append(hist.Trajectory, point)
		if err := d.store.SaveHistory(hist); err != nil {
			out.err = err
			return out
		}
	}
	d.mu.Lock()
	st := d.states[t.Name]
	st.RoundsDone = hist.RoundsDone
	st.Trajectory = hist.Trajectory
	st.Phase = PhaseDone
	d.mu.Unlock()
	d.cfg.Logf("daemon: target %s round %d done: %d incidents", t.Name, round, len(out.incidents))
	return out
}

// runControlPlane runs the round's sharded fuzzing campaign, resuming
// from the store's shard checkpoints, persisting each fresh shard as it
// completes, and riding out transport flaps by reconnecting and
// resuming. The returned canonical report is a pure function of
// (model, round seed, shard count, budget) — identical whether the
// campaign ran uninterrupted or across any number of resumes.
func (d *Daemon) runControlPlane(t Target, round int, info *p4info.Info) (*switchv.CanonicalReport, error) {
	roundSeed := fuzzer.DeriveSeed(d.cfg.Seed, round)
	for attempt := 0; ; attempt++ {
		resume, err := d.store.LoadShards(t.Name, round)
		if err != nil {
			return nil, err
		}

		// stopCause records why OnShard stopped the campaign; the engine
		// wraps the cause into ErrCampaignStopped as text only, so the
		// distinction (flap vs. shutdown) is kept here.
		var causeMu sync.Mutex
		var stopCause error
		setCause := func(err error) error {
			causeMu.Lock()
			if stopCause == nil {
				stopCause = err
			}
			causeMu.Unlock()
			return err
		}

		// The last attempt runs with quarantine semantics: shards whose
		// stacks still fail after every flap retry are sidelined (recorded
		// in the report with their seeds) and the round completes over the
		// healthy shards — graceful degradation instead of losing the
		// whole round to one dead switch.
		quarantine := attempt >= d.cfg.FlapRetries
		rep, err := switchv.RunParallelCampaign(info, switchv.ParallelOptions{
			Workers:    len(t.Addrs),
			Shards:     d.cfg.Shards,
			Fuzz:       fuzzer.Options{Seed: roundSeed, NumRequests: d.cfg.Requests, UpdatesPerRequest: d.cfg.Updates},
			Factory:    d.stackFactory(t, info),
			Precheck:   d.cfg.Precheck,
			Resume:     resume,
			Quarantine: quarantine,
			Reconcile:  d.cfg.Harden,
			OnShard: func(shard int, cp *switchv.ShardCheckpoint) error {
				if d.stopping() {
					return setCause(errStopped)
				}
				// A shard whose read-backs died mid-flight observed a
				// flapping transport, not the switch's behavior; drop it
				// and re-run after the target settles — except on the
				// final degraded attempt, which takes what it can get.
				if !quarantine && flapped(cp.Report.Incidents) {
					return setCause(errFlap)
				}
				if err := d.store.SaveShard(t.Name, round, shard, cp); err != nil {
					return setCause(err)
				}
				if d.cfg.ShardHook != nil {
					if err := d.cfg.ShardHook(t.Name, round, shard); err != nil {
						return setCause(fmt.Errorf("%w: %v", errStopped, err))
					}
				}
				return nil
			},
		})
		if err == nil {
			if n := len(rep.Quarantined); n > 0 {
				d.cfg.Logf("daemon: target %s round %d: completed degraded with %d quarantined shard(s)",
					t.Name, round, n)
				d.mu.Lock()
				if st := d.states[t.Name]; st != nil {
					st.Quarantined += n
				}
				d.mu.Unlock()
			}
			return rep.Canon(), nil
		}
		if errors.Is(err, switchv.ErrCampaignStopped) {
			causeMu.Lock()
			cause := stopCause
			causeMu.Unlock()
			if cause != nil && !errors.Is(cause, errFlap) {
				return nil, cause
			}
			// Flap: fall through to the retry path below.
			err = errFlap
		}
		if d.stopping() {
			return nil, errStopped
		}
		if attempt >= d.cfg.FlapRetries {
			return nil, fmt.Errorf("daemon: target %s round %d: campaign failed after %d attempts: %w",
				t.Name, round, attempt+1, err)
		}
		d.noteRetry(t.Name)
		d.cfg.Logf("daemon: target %s round %d: %v; backing off and resuming (attempt %d/%d)",
			t.Name, round, err, attempt+1, d.cfg.FlapRetries)
		d.sleep(d.cfg.Backoff.Delay(attempt + 1))
	}
}

// sleep waits for dur or until Stop, via the Backoff.Sleep hook when
// one is configured (tests replace it to run instantly).
func (d *Daemon) sleep(dur time.Duration) {
	if d.cfg.Backoff.Sleep != nil {
		d.cfg.Backoff.Sleep(dur)
		return
	}
	select {
	case <-time.After(dur): //detlint:allow timeafter — retry backoff; tests inject Backoff.Sleep instead
	case <-d.stopCh:
	}
}

// flapped reports whether a shard report contains transport-failure
// incidents (dead read-backs), the signature of a target restarting
// underneath the campaign.
func flapped(incidents []switchv.Incident) bool {
	for _, inc := range incidents {
		if inc.Kind == "read-failed" {
			return true
		}
	}
	return false
}

// stackFactory builds per-shard stacks over the target's address pool.
// Addresses are borrowed exclusively (a shard owns its switch while
// running), dialed with reconnect backoff, and the switch is wiped
// before the shard fuzzes — shards sharing one physical switch must
// each start from clean state, since pushing the pipeline does not
// clear table entries.
func (d *Daemon) stackFactory(t Target, info *p4info.Info) switchv.StackFactory {
	pool := make(chan string, len(t.Addrs))
	for _, addr := range t.Addrs {
		pool <- addr
	}
	return func(shard int) (p4rt.Device, func(), error) {
		addr := <-pool
		cli, err := p4rt.Reconnect(addr, d.cfg.Backoff)
		if err != nil {
			pool <- addr
			return nil, nil, err
		}
		if d.cfg.RPCTimeout > 0 {
			cli.SetTimeout(d.cfg.RPCTimeout)
		}
		var dev p4rt.Device = cli
		if d.cfg.Harden {
			// Self-healing stack: transparent in-RPC retry over redials
			// (idempotent via session replay), plus warm-restart recovery
			// wrapping the whole client. The wrapper sits below
			// prepareSwitch so the pipeline push is recorded for replay.
			cli.SetRedialAddr(addr)
			cli.SetRetry(d.cfg.Backoff)
			dev = switchv.NewSelfHealing(cli)
		}
		if err := prepareSwitch(info, dev); err != nil {
			cli.Close()
			pool <- addr
			return nil, nil, err
		}
		return dev, func() {
			cli.Close()
			pool <- addr
		}, nil
	}
}

// prepareSwitch pushes the pipeline and wipes any entries left by a
// previous shard or round. Deletes run in passes because reference
// validation rejects removing an entry other entries still point to;
// each pass clears the current leaves.
func prepareSwitch(info *p4info.Info, dev p4rt.Device) error {
	if err := dev.SetForwardingPipelineConfig(p4rt.ForwardingPipelineConfig{
		P4Info: info.Text(),
		Cookie: 1,
	}); err != nil {
		return fmt.Errorf("daemon: pushing pipeline: %w", err)
	}
	for pass := 0; pass < 64; pass++ {
		resp, err := dev.Read(p4rt.ReadRequest{})
		if err != nil {
			return fmt.Errorf("daemon: reading state before wipe: %w", err)
		}
		if len(resp.Entries) == 0 {
			return nil
		}
		deleted := 0
		for _, te := range resp.Entries {
			r := dev.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Delete, Entry: te}}})
			if r.OK() {
				deleted++
			}
		}
		if deleted == 0 {
			return fmt.Errorf("daemon: wipe stuck with %d undeletable entries", len(resp.Entries))
		}
	}
	return fmt.Errorf("daemon: wipe did not converge")
}

// runDataPlane runs the round's symbolic data-plane campaign over one
// exclusive connection. Dial failures retry with backoff; campaign
// incidents (including a switch whose state cannot be read) are
// findings and persist as-is.
func (d *Daemon) runDataPlane(t Target, round int, info *p4info.Info) (*DataPlaneSummary, error) {
	roundSeed := fuzzer.DeriveSeed(d.cfg.Seed, round)
	entries := workload.MustEntries(d.progs[t.Role], d.cfg.Entries, roundSeed)
	for attempt := 0; ; attempt++ {
		if d.stopping() {
			return nil, errStopped
		}
		cli, err := p4rt.Reconnect(t.Addrs[0], d.cfg.Backoff)
		if err != nil {
			if attempt >= d.cfg.FlapRetries {
				return nil, fmt.Errorf("daemon: target %s round %d: data plane: %w", t.Name, round, err)
			}
			d.noteRetry(t.Name)
			d.sleep(d.cfg.Backoff.Delay(attempt + 1))
			continue
		}
		if d.cfg.RPCTimeout > 0 {
			cli.SetTimeout(d.cfg.RPCTimeout)
		}
		var dev p4rt.Device = cli
		var dp switchv.DataPlane = cli
		if d.cfg.Harden {
			cli.SetRedialAddr(t.Addrs[0])
			cli.SetRetry(d.cfg.Backoff)
			shd := switchv.NewSelfHealing(cli)
			dev, dp = shd, shd
		}
		h := switchv.New(info, dev, dp)
		h.Precheck = d.cfg.Precheck
		h.Reconcile = d.cfg.Harden
		if err := h.PushPipeline(); err != nil {
			cli.Close()
			return nil, fmt.Errorf("daemon: target %s round %d: pushing pipeline: %w", t.Name, round, err)
		}
		rep, err := h.RunDataPlane(entries, switchv.DataPlaneOptions{Engine: d.cfg.Engine})
		cli.Close()
		if err != nil {
			return nil, fmt.Errorf("daemon: target %s round %d: data plane: %w", t.Name, round, err)
		}
		return &DataPlaneSummary{
			Entries:     rep.Entries,
			Goals:       rep.Goals,
			Covered:     rep.Covered,
			Unreachable: rep.Unreachable,
			Packets:     rep.Packets,
			Incidents:   rep.Incidents,
		}, nil
	}
}
