package daemon

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"switchv/internal/bugdb"
	"switchv/internal/p4rt"
	"switchv/internal/switchsim"
	"switchv/internal/switchv"
)

// fastBackoff keeps tests instant: backoff delays are computed but
// never actually slept.
func fastBackoff() p4rt.Backoff {
	return p4rt.Backoff{
		Initial:  time.Millisecond,
		Max:      4 * time.Millisecond,
		Attempts: 6,
		Sleep:    func(time.Duration) {},
	}
}

// testServer serves an in-process simulated switch over TCP, the same
// wire path switchvd uses against a real switchd.
func testServer(t *testing.T, faults ...switchsim.Fault) (addr string, shutdown func()) {
	t.Helper()
	sw := switchsim.New("middleblock", faults...)
	srv := p4rt.NewServer(sw, nil)
	a, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return a.String(), func() {
		srv.Close()
		sw.Close()
	}
}

func testConfig(store *Store, targets ...Target) Config {
	return Config{
		Store:    store,
		Targets:  targets,
		Seed:     7,
		Requests: 24,
		Updates:  12,
		Shards:   4,
		Entries:  12,
		Rounds:   1,
		Backoff:  fastBackoff(),
	}
}

func TestStoreRoundTrip(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Campaign meta: absent, then present, then reset.
	if meta, err := store.LoadCampaign("sw1", 0); err != nil || meta != nil {
		t.Fatalf("LoadCampaign on empty store = %v, %v; want nil, nil", meta, err)
	}
	meta := &CampaignMeta{Target: "sw1", Round: 0, Config: "cfg-a", Phase: PhaseControlPlane}
	if err := store.SaveCampaign(meta); err != nil {
		t.Fatal(err)
	}
	got, err := store.LoadCampaign("sw1", 0)
	if err != nil || got == nil || *got != *meta {
		t.Fatalf("LoadCampaign = %+v, %v; want %+v", got, err, meta)
	}

	// Shard checkpoints round-trip through JSON.
	cp := &switchv.ShardCheckpoint{
		Stats: switchv.ShardStats{Shard: 2, Seed: 42, Batches: 6, Updates: 72, Incidents: 1},
		Report: &switchv.ControlPlaneReport{
			Batches: 6, Updates: 72, MustAccept: 30,
			Incidents: []switchv.Incident{{Tool: "p4-fuzzer", Kind: "read-mismatch", Detail: "batch 3"}},
		},
	}
	if err := store.SaveShard("sw1", 0, 2, cp); err != nil {
		t.Fatal(err)
	}
	shards, err := store.LoadShards("sw1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 1 || shards[2] == nil {
		t.Fatalf("LoadShards = %v, want exactly shard 2", shards)
	}
	if shards[2].Stats != cp.Stats || shards[2].Report.Batches != 6 ||
		len(shards[2].Report.Incidents) != 1 {
		t.Errorf("shard checkpoint did not round-trip: %+v", shards[2])
	}

	// Records and history.
	records := bugdb.Observe(nil, "sw1", 0, "p4-fuzzer", "read-mismatch", "batch 3 lost entry")
	if err := store.SaveRecords(records); err != nil {
		t.Fatal(err)
	}
	back, err := store.LoadRecords()
	if err != nil || len(back) != 1 || back[0].Fingerprint != records[0].Fingerprint {
		t.Fatalf("records did not round-trip: %v, %v", back, err)
	}
	hist := &TargetHistory{Name: "sw1", RoundsDone: 1,
		Trajectory: []TrajectoryPoint{{Round: 0, Covered: 10, Universe: 99, Incidents: 1}}}
	if err := store.SaveHistory(hist); err != nil {
		t.Fatal(err)
	}
	h2, err := store.LoadHistory("sw1")
	if err != nil || h2.RoundsDone != 1 || len(h2.Trajectory) != 1 {
		t.Fatalf("history did not round-trip: %+v, %v", h2, err)
	}

	// Listings.
	if rounds, err := store.Rounds("sw1"); err != nil || len(rounds) != 1 || rounds[0] != 0 {
		t.Errorf("Rounds = %v, %v; want [0]", rounds, err)
	}
	if names, err := store.Targets(); err != nil || len(names) != 1 || names[0] != "sw1" {
		t.Errorf("Targets = %v, %v; want [sw1]", names, err)
	}

	// Reset discards the round's checkpoints.
	if err := store.ResetCampaign("sw1", 0); err != nil {
		t.Fatal(err)
	}
	if shards, err := store.LoadShards("sw1", 0); err != nil || len(shards) != 0 {
		t.Errorf("shards survived ResetCampaign: %v, %v", shards, err)
	}
}

// TestDaemonDetectsFaultViaAPI is the end-to-end loop: a faulty switch
// served over TCP, one daemon round, and the incident observable
// through every HTTP endpoint.
func TestDaemonDetectsFaultViaAPI(t *testing.T) {
	addr, shutdown := testServer(t, switchsim.FaultModifyKeepsOldParams)
	defer shutdown()

	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(testConfig(store, Target{Name: "sw1", Role: "middleblock", Addrs: []string{addr}}))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	api := httptest.NewServer(d.Handler())
	defer api.Close()
	get := func(path string, v any) {
		t.Helper()
		resp, err := http.Get(api.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decoding: %v", path, err)
		}
	}

	var health healthResponse
	get("/healthz", &health)
	if health.Status != "ok" || health.Rounds != 1 || health.Targets != 1 {
		t.Errorf("healthz = %+v", health)
	}

	var targets []TargetStatus
	get("/targets", &targets)
	if len(targets) != 1 || targets[0].RoundsDone != 1 || !targets[0].Healthy {
		t.Fatalf("targets = %+v", targets)
	}
	if len(targets[0].Trajectory) != 1 || targets[0].Trajectory[0].Incidents == 0 {
		t.Errorf("trajectory missing the round's incidents: %+v", targets[0].Trajectory)
	}

	var records []bugdb.Record
	get("/incidents", &records)
	found := false
	for _, r := range records {
		if r.Tool == "p4-fuzzer" && r.Count > 0 {
			found = true
			if len(r.Targets) != 1 || r.Targets[0] != "sw1" {
				t.Errorf("record not attributed to sw1: %+v", r)
			}
		}
	}
	if !found {
		t.Fatalf("no p4-fuzzer incident record for the injected fault; records: %+v", records)
	}

	var campaigns []CampaignStatus
	get("/campaigns", &campaigns)
	if len(campaigns) != 1 || campaigns[0].Phase != PhaseDone || campaigns[0].Incidents == 0 {
		t.Errorf("campaigns = %+v", campaigns)
	}

	// The persisted records mirror what the API served.
	disk, err := store.LoadRecords()
	if err != nil || len(disk) != len(records) {
		t.Errorf("store records = %v (%v), want %d", disk, err, len(records))
	}
}

// TestDaemonResumeParity is the checkpoint/resume contract end to end:
// a daemon stopped cooperatively mid-campaign, restarted over the same
// store, must produce a round report byte-identical to an uninterrupted
// daemon's.
func TestDaemonResumeParity(t *testing.T) {
	// Reference: uninterrupted run.
	refAddr, refShutdown := testServer(t, switchsim.FaultModifyKeepsOldParams)
	defer refShutdown()
	refStore, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(testConfig(refStore, Target{Name: "sw1", Role: "middleblock", Addrs: []string{refAddr}}))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Interrupted: stop after two shards have checkpointed.
	addr, shutdown := testServer(t, switchsim.FaultModifyKeepsOldParams)
	defer shutdown()
	dir := t.TempDir()
	store1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(store1, Target{Name: "sw1", Role: "middleblock", Addrs: []string{addr}})
	var persisted atomic.Int32
	cfg.ShardHook = func(target string, round, shard int) error {
		if persisted.Add(1) == 2 {
			return errors.New("simulated kill")
		}
		return nil
	}
	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Run(); err != nil {
		t.Fatalf("interrupted run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "targets", "sw1", "round-0000", "report.json")); !os.IsNotExist(err) {
		t.Fatal("interrupted run produced a report; the stop was not mid-campaign")
	}
	checkpointed, err := store1.LoadShards("sw1", 0)
	if err != nil || len(checkpointed) < 2 {
		t.Fatalf("want >= 2 checkpointed shards, got %d (%v)", len(checkpointed), err)
	}

	// Resumed: a fresh daemon over the same store finishes the round,
	// re-running only the missing shards.
	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig(store2, Target{Name: "sw1", Role: "middleblock", Addrs: []string{addr}})
	fresh := map[int]bool{}
	cfg2.ShardHook = func(target string, round, shard int) error {
		fresh[shard] = true
		return nil
	}
	d2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Run(); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	for shard := range checkpointed {
		if fresh[shard] {
			t.Errorf("shard %d re-ran despite its checkpoint", shard)
		}
	}
	if len(fresh) == 0 {
		t.Error("resumed run executed no fresh shards")
	}

	// The contract: byte-identical round reports and data-plane
	// summaries.
	for _, file := range []string{"report.json", "dataplane.json"} {
		want, err := os.ReadFile(filepath.Join(refStore.Dir(), "targets", "sw1", "round-0000", file))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(dir, "targets", "sw1", "round-0000", file))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s differs between the uninterrupted and the resumed run", file)
		}
	}
	if rec1, rec2 := mustRecords(t, refStore), mustRecords(t, store2); !bugdbEqual(rec1, rec2) {
		t.Errorf("fleet records diverged:\nref:     %+v\nresumed: %+v", rec1, rec2)
	}
}

func mustRecords(t *testing.T, s *Store) []bugdb.Record {
	t.Helper()
	rec, err := s.LoadRecords()
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func bugdbEqual(a, b []bugdb.Record) bool {
	x, err1 := bugdb.EncodeRecords(a)
	y, err2 := bugdb.EncodeRecords(b)
	return err1 == nil && err2 == nil && bytes.Equal(x, y)
}

// TestDaemonRidesOutTargetRestart: the target's server dies between
// shards and comes back during the dial backoff — the daemon's stack
// factory must reconnect and the round must still complete.
func TestDaemonRidesOutTargetRestart(t *testing.T) {
	sw := switchsim.New("middleblock", switchsim.FaultModifyKeepsOldParams)
	defer sw.Close()
	srv := p4rt.NewServer(sw, nil)
	a, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := a.String()

	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(store, Target{Name: "sw1", Role: "middleblock", Addrs: []string{addr}})
	var killed, restarted atomic.Bool
	cfg.ShardHook = func(target string, round, shard int) error {
		if shard == 0 && !killed.Swap(true) {
			srv.Close() // the switch "restarts" right after shard 0
		}
		return nil
	}
	cfg.Backoff.Sleep = func(time.Duration) {
		if killed.Load() && !restarted.Swap(true) {
			srv = p4rt.NewServer(sw, nil)
			if _, err := srv.Listen(addr); err != nil {
				t.Errorf("restarting target: %v", err)
			}
		}
	}
	defer func() { srv.Close() }()

	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatalf("Run across a target restart: %v", err)
	}
	if !restarted.Load() {
		t.Fatal("test never exercised the restart path")
	}
	st := d.Statuses()
	if len(st) != 1 || st[0].RoundsDone != 1 || !st[0].Healthy {
		t.Errorf("target did not complete its round after the restart: %+v", st)
	}
}

// flakySwitch wraps the simulator and fails a fixed window of Read
// calls — a transport flap as the campaign observes one, without
// killing the TCP session.
type flakySwitch struct {
	*switchsim.Switch
	reads    atomic.Int64
	from, to int64
}

func (f *flakySwitch) Read(req p4rt.ReadRequest) (p4rt.ReadResponse, error) {
	n := f.reads.Add(1)
	if n > f.from && n <= f.to {
		return p4rt.ReadResponse{}, fmt.Errorf("injected transport failure (read %d)", n)
	}
	return f.Switch.Read(req)
}

// TestDaemonRetriesAfterFlap: a shard whose read-backs die mid-flight
// must be dropped (not checkpointed: it observed the flap, not the
// switch) and re-run after backoff, and the final report must carry no
// transport artifacts.
func TestDaemonRetriesAfterFlap(t *testing.T) {
	sw := &flakySwitch{Switch: switchsim.New("middleblock", switchsim.FaultModifyKeepsOldParams)}
	defer sw.Close()
	// Reads 1..8 come from shard 0's prepare+batches and shard 1's
	// prepare; failing 9..14 kills shard 1's read-backs mid-campaign.
	sw.from, sw.to = 8, 14
	srv := p4rt.NewServer(sw, nil)
	a, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(testConfig(store, Target{Name: "sw1", Role: "middleblock", Addrs: []string{a.String()}}))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatalf("Run across a flap: %v", err)
	}
	st := d.Statuses()
	if len(st) != 1 || st[0].RoundsDone != 1 {
		t.Fatalf("round did not complete: %+v", st)
	}
	if st[0].Retries == 0 {
		t.Error("flap was not ridden out via the retry path")
	}
	rep, err := store.LoadReport("sw1", 0)
	if err != nil || rep == nil {
		t.Fatalf("missing round report: %v", err)
	}
	for _, inc := range rep.Incidents {
		if inc.Kind == "read-failed" {
			t.Errorf("transport artifact leaked into the round report: %v", inc)
		}
	}
}

// TestDaemonDiscardsStaleCheckpoints: checkpoints from a different
// campaign config must not be merged.
func TestDaemonDiscardsStaleCheckpoints(t *testing.T) {
	addr, shutdown := testServer(t)
	defer shutdown()
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A leftover round-0 checkpoint written under another seed.
	if err := store.SaveCampaign(&CampaignMeta{
		Target: "sw1", Round: 0, Config: "seed=999 stale", Phase: PhaseControlPlane,
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveShard("sw1", 0, 0, &switchv.ShardCheckpoint{
		Stats:  switchv.ShardStats{Shard: 0, Batches: 999},
		Report: &switchv.ControlPlaneReport{Batches: 999},
	}); err != nil {
		t.Fatal(err)
	}

	d, err := New(testConfig(store, Target{Name: "sw1", Role: "middleblock", Addrs: []string{addr}}))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep, err := store.LoadReport("sw1", 0)
	if err != nil || rep == nil {
		t.Fatalf("missing round report: %v", err)
	}
	if rep.Batches != 24 {
		t.Errorf("report batches = %d; stale checkpoint (999 batches) leaked into the merge", rep.Batches)
	}
}
