package daemon

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReadJSONCorrupt: a checkpoint that exists but does not decode
// wraps ErrCorrupt; a missing one stays os.ErrNotExist so the two
// failure classes route differently (quarantine vs fresh start).
func TestReadJSONCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.json")
	if err := os.WriteFile(path, []byte(`{"target": "sw1", "rou`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := readJSON(path, &CampaignMeta{})
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated checkpoint read = %v, want ErrCorrupt", err)
	}
	if err == nil || !strings.Contains(err.Error(), path) {
		t.Errorf("corrupt error %v does not name the file", err)
	}
	err = readJSON(filepath.Join(dir, "missing.json"), &CampaignMeta{})
	if !os.IsNotExist(err) || errors.Is(err, ErrCorrupt) {
		t.Errorf("missing checkpoint read = %v, want plain os.ErrNotExist", err)
	}
}

// TestQuarantineRoundSuffixes: repeated quarantines of the same round
// pick successive .corrupt-K suffixes and preserve the sidelined bytes;
// quarantining a round that never checkpointed is a no-op.
func TestQuarantineRoundSuffixes(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seed := func() {
		if err := os.MkdirAll(store.roundDir("sw1", 0), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(store.roundDir("sw1", 0), "campaign.json"), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	seed()
	dst, err := store.QuarantineRound("sw1", 0)
	if err != nil || !strings.HasSuffix(dst, "round-0000.corrupt-0") {
		t.Fatalf("first quarantine = %q, %v", dst, err)
	}
	seed()
	dst, err = store.QuarantineRound("sw1", 0)
	if err != nil || !strings.HasSuffix(dst, "round-0000.corrupt-1") {
		t.Fatalf("second quarantine = %q, %v", dst, err)
	}
	if data, err := os.ReadFile(filepath.Join(dst, "campaign.json")); err != nil || string(data) != "junk" {
		t.Errorf("quarantine did not preserve the corrupt bytes: %q, %v", data, err)
	}
	if _, err := os.Stat(store.roundDir("sw1", 0)); !os.IsNotExist(err) {
		t.Error("round directory still present after quarantine")
	}
	dst, err = store.QuarantineRound("sw1", 3)
	if err != nil || dst != "" {
		t.Errorf("quarantining a missing round = %q, %v, want a no-op", dst, err)
	}
}

// TestDaemonQuarantinesCorruptCheckpoint: a byte-truncated campaign.json
// left by a torn disk must not crash the daemon or wedge the target —
// the round directory is sidelined to .corrupt-0 and the round re-runs
// from scratch to completion.
func TestDaemonQuarantinesCorruptCheckpoint(t *testing.T) {
	addr, shutdown := testServer(t)
	defer shutdown()
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Save a valid round-0 checkpoint, then tear it in half.
	if err := store.SaveCampaign(&CampaignMeta{
		Target: "sw1", Round: 0, Config: "whatever", Phase: PhaseControlPlane,
	}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "targets", "sw1", "round-0000", "campaign.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	d, err := New(testConfig(store, Target{Name: "sw1", Role: "middleblock", Addrs: []string{addr}}))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatalf("daemon died on a corrupt checkpoint: %v", err)
	}

	// The torn bytes are sidelined for forensics...
	quarantined := filepath.Join(dir, "targets", "sw1", "round-0000.corrupt-0")
	if got, err := os.ReadFile(filepath.Join(quarantined, "campaign.json")); err != nil || len(got) != len(data)/2 {
		t.Errorf("quarantined campaign.json = %d bytes, %v; want the %d torn bytes preserved",
			len(got), err, len(data)/2)
	}
	// ...and the round completed cleanly in a fresh directory.
	rep, err := store.LoadReport("sw1", 0)
	if err != nil || rep == nil {
		t.Fatalf("round did not complete after quarantine: %v", err)
	}
	if rep.Batches != 24 {
		t.Errorf("re-run report batches = %d, want 24", rep.Batches)
	}
	meta, err := store.LoadCampaign("sw1", 0)
	if err != nil || meta == nil || meta.Phase != PhaseDone {
		t.Errorf("campaign meta after recovery = %+v, %v, want phase done", meta, err)
	}
}
