// Package daemon implements switchvd, the continuous fleet-validation
// service: the deployment mode the paper describes in §6, where SwitchV
// runs campaigns against testbeds around the clock rather than as
// one-shot CLI invocations.
//
// The daemon schedules rounds of validation across a fleet of switch
// targets. Each round runs the parallel control-plane campaign and the
// symbolic data-plane campaign against every target, checkpointing
// per-shard results to an on-disk store as they complete. A daemon
// restarted over the same store resumes mid-round campaigns instead of
// replaying them — and, by the engine's determinism contract, a resumed
// round's merged report is byte-identical to an uninterrupted one.
// Incidents from all targets dedupe fleet-wide into bugdb-shaped
// records keyed by stable fingerprint, and an HTTP/JSON API exposes
// targets, campaigns, incidents and liveness.
package daemon

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"switchv/internal/bugdb"
	"switchv/internal/p4/ir"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4rt"
	"switchv/internal/switchv"
	"switchv/models"
)

// Target is one switch under continuous validation.
type Target struct {
	// Name identifies the target in the store, the API and incident
	// records. It doubles as a directory name, so keep it path-safe.
	Name string `json:"name"`
	// Role selects the expected P4 model (models.Load).
	Role string `json:"role"`
	// Addrs lists the target's P4Runtime endpoints. Shard campaigns
	// borrow addresses exclusively, so len(Addrs) bounds the per-target
	// worker count; a single-address target runs its shards serially.
	Addrs []string `json:"addrs"`
}

// Config configures a Daemon. Zero values select the noted defaults.
type Config struct {
	// Store persists checkpoints and incident records (required).
	Store *Store
	// Targets is the fleet (at least one).
	Targets []Target

	// Seed is the fleet's root seed; round r of every target fuzzes with
	// fuzzer.DeriveSeed(Seed, r), so rounds are independent campaigns
	// and re-running a round reproduces it exactly. Default 1.
	Seed int64
	// Requests is the control-plane batch budget per round (default 40).
	Requests int
	// Updates is the per-batch update count (default 20).
	Updates int
	// Shards is the logical shard count per campaign (default
	// switchv.DefaultShards). Reports depend on it; see ParallelOptions.
	Shards int
	// Entries is the data-plane fixture size per round (default 50).
	Entries int

	// Rounds bounds how many fleet rounds Run executes before returning
	// (0 = run until Stop).
	Rounds int
	// Interval is the pause between fleet rounds (default none).
	Interval time.Duration

	// Backoff is the dial policy for targets that restart mid-campaign.
	Backoff p4rt.Backoff
	// FlapRetries is how many times a round's campaign is re-attempted
	// (resuming from its checkpoints) after a transport flap before the
	// round is abandoned (default 3).
	FlapRetries int

	// Harden arms the self-healing transport stack on every per-shard
	// connection: in-RPC retry with idempotency keys (p4rt.Client
	// SetRetry + redial), torn-write read-back reconciliation
	// (switchv.Harness.Reconcile), and warm-restart recovery via
	// switchv.SelfHealingDevice — a target that restarts mid-campaign
	// has its pipeline re-pushed and entry log replayed, and the round
	// resumes byte-identically. Required when the fleet runs behind a
	// chaos wire; useful against real switches that reboot.
	Harden bool
	// RPCTimeout, when positive, overrides the client's default per-RPC
	// deadline (30s) on every connection the daemon dials. A dropped or
	// withheld response costs one full deadline before the in-RPC retry
	// fires, so campaigns behind a chaos wire want this short.
	RPCTimeout time.Duration

	// Precheck is the static-preflight gate mode for all campaigns.
	Precheck switchv.PrecheckMode
	// Engine selects the reference-simulator engine for data-plane
	// campaigns (default switchv.EngineCompiled; outcomes are
	// engine-independent).
	Engine switchv.EngineKind
	// Logf receives progress lines (default: discard).
	Logf func(format string, args ...any)
	// ShardHook, when non-nil, runs after each shard checkpoint is
	// persisted — a test seam. A non-nil return stops the campaign
	// cooperatively and surfaces from Run, exactly like a kill signal
	// landing between shards.
	ShardHook func(target string, round, shard int) error
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 40
	}
	if cfg.Updates <= 0 {
		cfg.Updates = 20
	}
	if cfg.Shards <= 0 {
		cfg.Shards = switchv.DefaultShards
	}
	if cfg.Entries <= 0 {
		cfg.Entries = 50
	}
	if cfg.FlapRetries <= 0 {
		cfg.FlapRetries = 3
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return cfg
}

// TargetStatus is a target's live state as served by the API.
type TargetStatus struct {
	Name       string   `json:"name"`
	Role       string   `json:"role"`
	Addrs      []string `json:"addrs"`
	RoundsDone int      `json:"rounds_done"`
	Round      int      `json:"round"`
	Phase      string   `json:"phase"` // idle | control-plane | data-plane | done
	Healthy    bool     `json:"healthy"`
	LastError  string   `json:"last_error,omitempty"`
	Retries    int      `json:"retries"` // transport flaps ridden out so far
	// Quarantined counts shards sidelined by graceful degradation: their
	// stacks kept failing after every flap retry, so their work was
	// skipped rather than failing the whole round.
	Quarantined int               `json:"quarantined"`
	Trajectory  []TrajectoryPoint `json:"trajectory"`
}

// Daemon is the fleet-validation service.
type Daemon struct {
	cfg    Config
	store  *Store
	infos  map[string]*p4info.Info // by role
	progs  map[string]*ir.Program  // by role
	mu     sync.Mutex
	states map[string]*TargetStatus
	// records is the fleet-wide incident database, persisted to the
	// store after every round.
	records []bugdb.Record
	// rounds counts fleet rounds completed by this process.
	rounds   int
	stopCh   chan struct{}
	stopOnce sync.Once
}

// errStopped marks a cooperative stop requested via Stop; Run treats it
// as a clean shutdown, not a failure.
var errStopped = errors.New("daemon: stopping")

// errFlap marks a shard campaign interrupted by a transport failure;
// the scheduler reconnects with backoff and resumes from checkpoints.
var errFlap = errors.New("daemon: target transport flapped")

// New validates the config and builds a daemon over its store. Target
// histories and fleet incident records load from the store, so a
// restarted daemon picks up exactly where its predecessor stopped.
func New(cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, fmt.Errorf("daemon: Config.Store is required")
	}
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("daemon: at least one target is required")
	}
	d := &Daemon{
		cfg:    cfg,
		store:  cfg.Store,
		infos:  map[string]*p4info.Info{},
		progs:  map[string]*ir.Program{},
		states: map[string]*TargetStatus{},
		stopCh: make(chan struct{}),
	}
	for _, t := range cfg.Targets {
		if t.Name == "" || len(t.Addrs) == 0 {
			return nil, fmt.Errorf("daemon: target needs a name and at least one address: %+v", t)
		}
		if _, dup := d.states[t.Name]; dup {
			return nil, fmt.Errorf("daemon: duplicate target name %q", t.Name)
		}
		if _, ok := d.infos[t.Role]; !ok {
			prog, err := models.Load(t.Role)
			if err != nil {
				return nil, fmt.Errorf("daemon: target %s: %w", t.Name, err)
			}
			d.progs[t.Role] = prog
			d.infos[t.Role] = p4info.New(prog)
		}
		hist, err := d.store.LoadHistory(t.Name)
		if err != nil {
			return nil, err
		}
		d.states[t.Name] = &TargetStatus{
			Name:       t.Name,
			Role:       t.Role,
			Addrs:      t.Addrs,
			RoundsDone: hist.RoundsDone,
			Round:      hist.RoundsDone,
			Phase:      "idle",
			Healthy:    true,
			Trajectory: hist.Trajectory,
		}
	}
	records, err := d.store.LoadRecords()
	if err != nil {
		return nil, err
	}
	d.records = records
	return d, nil
}

// Stop asks Run to return: in-flight shards finish (and checkpoint), no
// new ones start. Safe to call from any goroutine, more than once.
func (d *Daemon) Stop() {
	d.stopOnce.Do(func() { close(d.stopCh) })
}

func (d *Daemon) stopping() bool {
	select {
	case <-d.stopCh:
		return true
	default:
		return false
	}
}

// Run executes fleet rounds until the configured round budget is spent,
// Stop is called (returns nil), or a ShardHook aborts (returns its
// error). Every target advances one round per fleet round; a target
// whose round fails is marked unhealthy and retried next fleet round,
// without blocking the rest of the fleet.
func (d *Daemon) Run() error {
	cfg := d.cfg
	for iter := 0; cfg.Rounds == 0 || iter < cfg.Rounds; iter++ {
		if d.stopping() {
			return nil
		}
		if err := d.runFleetRound(); err != nil {
			if errors.Is(err, errStopped) {
				return nil
			}
			return err
		}
		d.mu.Lock()
		d.rounds++
		d.mu.Unlock()
		last := cfg.Rounds > 0 && iter == cfg.Rounds-1
		if cfg.Interval > 0 && !last {
			select {
			case <-time.After(cfg.Interval): //detlint:allow timeafter — round pacing; results are sealed before the wait
			case <-d.stopCh:
				return nil
			}
		}
	}
	return nil
}

// roundOutcome is one target's completed round, held until the fleet
// round ends so incidents fold into the shared records in deterministic
// (sorted target name) order regardless of which target finished first.
type roundOutcome struct {
	target string
	round  int
	// incidents in report order: control plane first, then data plane.
	incidents []switchv.Incident
	// alreadyRecorded marks a round found fully done in the store — its
	// incidents were folded by a previous process, so only the status
	// refresh applies.
	alreadyRecorded bool
	err             error
}

// runFleetRound advances every target by one round, concurrently, then
// merges their incidents into the fleet records.
func (d *Daemon) runFleetRound() error {
	var wg sync.WaitGroup
	outcomes := make([]roundOutcome, len(d.cfg.Targets))
	for i, t := range d.cfg.Targets {
		wg.Add(1)
		go func(i int, t Target) {
			defer wg.Done()
			d.mu.Lock()
			round := d.states[t.Name].RoundsDone
			d.mu.Unlock()
			outcomes[i] = d.runTargetRound(t, round)
		}(i, t)
	}
	wg.Wait()

	// Fold incidents in sorted target order so the records file is a
	// pure function of the fleet's campaign results, not of scheduling.
	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].target < outcomes[j].target })
	d.mu.Lock()
	changed := false
	for _, o := range outcomes {
		st := d.states[o.target]
		if o.err != nil {
			if !errors.Is(o.err, errStopped) {
				st.Healthy = false
				st.LastError = o.err.Error()
				st.Phase = "idle"
				d.cfg.Logf("daemon: target %s round %d failed: %v", o.target, o.round, o.err)
			}
			continue
		}
		st.Healthy = true
		st.LastError = ""
		if o.alreadyRecorded {
			continue
		}
		for _, inc := range o.incidents {
			d.records = bugdb.Observe(d.records, o.target, o.round, inc.Tool, inc.Kind, inc.Detail)
		}
		changed = true
	}
	records := d.records
	d.mu.Unlock()
	if changed {
		if err := d.store.SaveRecords(records); err != nil {
			return err
		}
	}
	for _, o := range outcomes {
		if o.err != nil && !errors.Is(o.err, errStopped) {
			continue
		}
		if o.err != nil {
			return o.err // errStopped: clean shutdown, or a ShardHook abort
		}
	}
	return nil
}

// Rounds returns how many fleet rounds this process has completed.
func (d *Daemon) Rounds() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rounds
}

// Records returns a copy of the current fleet incident records.
func (d *Daemon) Records() []bugdb.Record {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]bugdb.Record, len(d.records))
	copy(out, d.records)
	return out
}

// Statuses returns the fleet's target statuses, sorted by name.
func (d *Daemon) Statuses() []TargetStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]TargetStatus, 0, len(d.states))
	for _, st := range d.states {
		cp := *st
		cp.Trajectory = append([]TrajectoryPoint(nil), st.Trajectory...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (d *Daemon) setPhase(target string, round int, phase string) {
	d.mu.Lock()
	st := d.states[target]
	st.Round = round
	st.Phase = phase
	d.mu.Unlock()
}

func (d *Daemon) noteRetry(target string) {
	d.mu.Lock()
	d.states[target].Retries++
	d.mu.Unlock()
}
