// Slice-restricted solving: assertions registered lazily are only
// bit-blasted — and only constrain a check — when the check's
// cone-of-influence slice reaches them. The mechanism is the push-free
// incremental idiom over sat.AddGuarded: each lazy assertion gets an
// activation literal when first blasted, and a sliced check assumes
// exactly the activation literals inside the slice.
//
// Soundness. A sliced check decides F_S ∧ extra where F_S ⊆ F is the
// active subset of the asserted formula, so:
//
//   - Unsat is sound immediately: a subset of the constraints is already
//     contradictory, so the full conjunction is too.
//   - Sat needs model completion. The slice is the variable-sharing
//     closure of the seed: any lazy assertion sharing a variable with
//     the slice is pulled in (with its variables) until fixpoint, and so
//     is any assertion the background model fails to satisfy. At
//     fixpoint every excluded assertion (a) mentions no slice variable
//     and (b) holds under the background model. The completed model —
//     SAT values on slice variables, background values elsewhere — then
//     satisfies every assertion: active ones by the SAT result (their
//     variables are all in the slice), excluded ones by (a)+(b).
//
// Note the closure is over variable *sharing*, not a direct
// intersection with the seed: an assertion linking a seed variable x to
// an outside variable y must be kept active AND y's other assertions
// must follow, else completing y from the background could contradict
// the x–y link. The fixpoint guarantees no such link crosses the slice
// boundary.
package smt

import (
	"switchv/internal/p4/value"
	"switchv/internal/sat"
)

// lazyAssert is one assertion registered through AssertLazy: kept as a
// term until a check's slice first reaches it, then blasted under an
// activation literal.
type lazyAssert struct {
	t       *Term
	act     sat.Lit
	blasted bool
	vars    []*Term // OpBVVar support of t
	bgOK    int8    // 0 unknown, 1 background satisfies t, -1 it does not
}

// AssertLazy registers a sliceable assertion. It participates in every
// Check/CheckAssuming exactly like Assert, but its CNF encoding is
// deferred until the first check whose slice includes it — a sliced
// campaign that never reaches it never pays for its clauses.
func (s *Solver) AssertLazy(t *Term) {
	s.asserted = append(s.asserted, t)
	la := lazyAssert{t: t}
	varSupport(t, map[*Term]bool{}, &la.vars)
	for _, v := range la.vars {
		s.varUniverse[v] = true
	}
	s.lazy = append(s.lazy, la)
}

// SetBackground installs the canonical completion model for sliced
// checks (for the symbolic engine: the all-zero packet with only
// ethernet valid). CheckSliced falls back to a full check until one is
// set. Assertions the background does not satisfy are simply forced
// into every slice, so any parseable background is sound.
func (s *Solver) SetBackground(bg *Model) {
	s.bg = bg
	for i := range s.lazy {
		s.lazy[i].bgOK = 0
	}
}

// ensureBlasted lowers a lazy assertion to guarded CNF on first use.
func (s *Solver) ensureBlasted(i int) {
	la := &s.lazy[i]
	if la.blasted {
		return
	}
	la.act = s.freshLit()
	la.blasted = true
	s.NumClauses++
	s.sat.AddGuarded(la.act, s.BlastBool(la.t))
}

// activateAll blasts every pending lazy assertion and returns the full
// activation assumption set — the non-sliced semantics of Check and
// CheckAssuming.
func (s *Solver) activateAll() []sat.Lit {
	lits := make([]sat.Lit, 0, len(s.lazy))
	for i := range s.lazy {
		s.ensureBlasted(i)
		lits = append(lits, s.lazy[i].act)
	}
	return lits
}

// bgFails reports whether the background model violates the assertion
// (memoized; such assertions join every slice).
func (s *Solver) bgFails(la *lazyAssert) bool {
	if la.bgOK == 0 {
		if EvalBool(s.bg, la.t) {
			la.bgOK = 1
		} else {
			la.bgOK = -1
		}
	}
	return la.bgOK == -1
}

// CheckSliced decides the asserted formula conjoined with the extra
// terms, activating only the lazy assertions inside the variable-sharing
// closure seeded by the seed terms' and extras' variable support (plus
// every eagerly-asserted variable — Assert constraints are permanent and
// always active). Verdicts are identical to CheckAssuming by the
// argument at the top of this file; only the model differs, and Model()
// transparently completes it from the background. Without a background
// model this is exactly CheckAssuming.
func (s *Solver) CheckSliced(seed []*Term, extra ...*Term) sat.Result {
	if s.bg == nil {
		return s.CheckAssuming(extra...)
	}
	s.NumChecks++
	inSlice := map[*Term]bool{}
	for v := range s.eagerVars {
		inSlice[v] = true
	}
	seen := map[*Term]bool{}
	var roots []*Term
	for _, t := range seed {
		varSupport(t, seen, &roots)
	}
	for _, t := range extra {
		varSupport(t, seen, &roots)
	}
	for _, v := range roots {
		inSlice[v] = true
	}
	active := make([]bool, len(s.lazy))
	for changed := true; changed; {
		changed = false
		for i := range s.lazy {
			if active[i] {
				continue
			}
			la := &s.lazy[i]
			pull := s.bgFails(la)
			if !pull {
				for _, v := range la.vars {
					if inSlice[v] {
						pull = true
						break
					}
				}
			}
			if !pull {
				continue
			}
			active[i] = true
			changed = true
			for _, v := range la.vars {
				inSlice[v] = true
			}
		}
	}
	var lits []sat.Lit
	for i := range s.lazy {
		if !active[i] {
			s.SlicedAsserts++
			continue
		}
		s.ensureBlasted(i)
		lits = append(lits, s.lazy[i].act)
	}
	for v := range s.varUniverse {
		if !inSlice[v] {
			s.SlicedBits += v.width
		}
	}
	for _, t := range extra {
		lits = append(lits, s.BlastBool(t))
	}
	res := s.sat.Solve(lits...)
	if res == sat.Sat {
		s.lastSlice = inSlice
	} else {
		s.lastSlice = nil
	}
	return res
}

// varSupport collects the OpBVVar terms reachable from t, deduplicated
// through seen (shared across calls to union supports).
func varSupport(t *Term, seen map[*Term]bool, out *[]*Term) {
	if seen[t] {
		return
	}
	seen[t] = true
	if t.op == OpBVVar {
		*out = append(*out, t)
		return
	}
	for _, k := range t.kids {
		varSupport(k, seen, out)
	}
}

// completeVar resolves a variable's value after a sliced Sat result:
// SAT assignment inside the slice, background outside. Returns false
// when the last check was not sliced.
func (s *Solver) completeVar(t *Term) (value.V, bool) {
	if s.lastSlice == nil || t.op != OpBVVar {
		return value.V{}, false
	}
	if !s.lastSlice[t] {
		return s.bg.Var(t), true
	}
	return value.V{}, false
}
