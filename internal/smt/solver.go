package smt

import (
	"fmt"

	"switchv/internal/p4/value"
	"switchv/internal/sat"
)

// Solver decides QF_BV formulas by Tseitin bit-blasting onto a CDCL SAT
// solver. Assertions are permanent; CheckAssuming supports the symbolic
// engine's per-goal queries without re-blasting the pipeline formula.
type Solver struct {
	b   *Builder
	sat *sat.Solver

	trueLit  sat.Lit
	bvBits   map[*Term][]sat.Lit
	boolLits map[*Term]sat.Lit
	asserted []*Term

	// Slice-restricted solving state (see slice.go).
	lazy        []lazyAssert
	bg          *Model
	eagerVars   map[*Term]bool // support of eager (always-active) assertions
	varUniverse map[*Term]bool // support union of every assertion
	lastSlice   map[*Term]bool // slice of the last Sat check (nil = full)

	// NumClauses counts Tseitin clauses emitted (benchmark metric).
	NumClauses int
	// NumChecks counts Check/CheckAssuming calls (the per-goal solver
	// invocations the pruning path avoids).
	NumChecks int
	// CNFReuse counts blast-memo hits: terms whose CNF encoding was
	// requested again and served from the memo instead of being rebuilt.
	// Across goals that share a program prefix this is the incremental
	// win — the shared prefix is blasted once and reused per goal.
	CNFReuse int
	// SlicedAsserts counts lazy assertions excluded from sliced checks
	// (summed per check), and SlicedBits the input variable bits those
	// checks left outside their slice — the work cone-of-influence
	// slicing avoided CNF'ing or constraining.
	SlicedAsserts int
	SlicedBits    int
}

// NewSolver returns a solver sharing the builder's terms.
func NewSolver(b *Builder) *Solver {
	s := &Solver{
		b:           b,
		sat:         sat.New(),
		bvBits:      map[*Term][]sat.Lit{},
		boolLits:    map[*Term]sat.Lit{},
		eagerVars:   map[*Term]bool{},
		varUniverse: map[*Term]bool{},
	}
	v := s.sat.NewVar()
	s.trueLit = sat.MkLit(v, false)
	s.addClause(s.trueLit)
	return s
}

func (s *Solver) addClause(lits ...sat.Lit) {
	s.NumClauses++
	s.sat.AddClause(lits...)
}

func (s *Solver) falseLit() sat.Lit { return s.trueLit.Not() }

func (s *Solver) freshLit() sat.Lit { return sat.MkLit(s.sat.NewVar(), false) }

// Gate helpers with small-case folding.

func (s *Solver) andGate(a, b sat.Lit) sat.Lit {
	switch {
	case a == s.falseLit() || b == s.falseLit():
		return s.falseLit()
	case a == s.trueLit:
		return b
	case b == s.trueLit:
		return a
	case a == b:
		return a
	case a == b.Not():
		return s.falseLit()
	}
	z := s.freshLit()
	s.addClause(z.Not(), a)
	s.addClause(z.Not(), b)
	s.addClause(z, a.Not(), b.Not())
	return z
}

func (s *Solver) orGate(a, b sat.Lit) sat.Lit {
	return s.andGate(a.Not(), b.Not()).Not()
}

func (s *Solver) xorGate(a, b sat.Lit) sat.Lit {
	switch {
	case a == s.falseLit():
		return b
	case b == s.falseLit():
		return a
	case a == s.trueLit:
		return b.Not()
	case b == s.trueLit:
		return a.Not()
	case a == b:
		return s.falseLit()
	case a == b.Not():
		return s.trueLit
	}
	z := s.freshLit()
	s.addClause(a.Not(), b.Not(), z.Not())
	s.addClause(a, b, z.Not())
	s.addClause(a.Not(), b, z)
	s.addClause(a, b.Not(), z)
	return z
}

func (s *Solver) iffGate(a, b sat.Lit) sat.Lit { return s.xorGate(a, b).Not() }

// muxGate returns c ? x : y.
func (s *Solver) muxGate(c, x, y sat.Lit) sat.Lit {
	switch {
	case c == s.trueLit:
		return x
	case c == s.falseLit():
		return y
	case x == y:
		return x
	}
	z := s.freshLit()
	s.addClause(c.Not(), x.Not(), z)
	s.addClause(c.Not(), x, z.Not())
	s.addClause(c, y.Not(), z)
	s.addClause(c, y, z.Not())
	return z
}

// majGate returns the majority of three literals (adder carry).
func (s *Solver) majGate(a, b, c sat.Lit) sat.Lit {
	return s.orGate(s.andGate(a, b), s.orGate(s.andGate(a, c), s.andGate(b, c)))
}

// BlastBool lowers a boolean term to a SAT literal, memoized.
func (s *Solver) BlastBool(t *Term) sat.Lit {
	if !t.IsBool() {
		panic("smt: BlastBool on bitvector term")
	}
	if l, ok := s.boolLits[t]; ok {
		s.CNFReuse++
		return l
	}
	var l sat.Lit
	switch t.op {
	case OpBoolConst:
		if t.b {
			l = s.trueLit
		} else {
			l = s.falseLit()
		}
	case OpNot:
		l = s.BlastBool(t.kids[0]).Not()
	case OpAnd:
		l = s.andGate(s.BlastBool(t.kids[0]), s.BlastBool(t.kids[1]))
	case OpOr:
		l = s.orGate(s.BlastBool(t.kids[0]), s.BlastBool(t.kids[1]))
	case OpImplies:
		l = s.orGate(s.BlastBool(t.kids[0]).Not(), s.BlastBool(t.kids[1]))
	case OpIff:
		l = s.iffGate(s.BlastBool(t.kids[0]), s.BlastBool(t.kids[1]))
	case OpBoolIte:
		l = s.muxGate(s.BlastBool(t.kids[0]), s.BlastBool(t.kids[1]), s.BlastBool(t.kids[2]))
	case OpEq:
		a := s.blastBV(t.kids[0])
		b := s.blastBV(t.kids[1])
		acc := s.trueLit
		for i := range a {
			acc = s.andGate(acc, s.iffGate(a[i], b[i]))
		}
		l = acc
	case OpUlt:
		l = s.ultChain(s.blastBV(t.kids[0]), s.blastBV(t.kids[1]))
	case OpUle:
		l = s.ultChain(s.blastBV(t.kids[1]), s.blastBV(t.kids[0])).Not()
	default:
		panic(fmt.Sprintf("smt: cannot blast boolean op %v", t.op))
	}
	s.boolLits[t] = l
	return l
}

// ultChain encodes unsigned a < b over LSB-first bit slices.
func (s *Solver) ultChain(a, b []sat.Lit) sat.Lit {
	lt := s.falseLit()
	for i := 0; i < len(a); i++ { // LSB to MSB; MSB dominates
		biGtAi := s.andGate(a[i].Not(), b[i])
		eq := s.iffGate(a[i], b[i])
		lt = s.muxGate(eq, lt, biGtAi)
	}
	return lt
}

// blastBV lowers a bitvector term to its bits (LSB first), memoized.
func (s *Solver) blastBV(t *Term) []sat.Lit {
	if t.IsBool() {
		panic("smt: blastBV on boolean term")
	}
	if bits, ok := s.bvBits[t]; ok {
		s.CNFReuse++
		return bits
	}
	w := t.width
	bits := make([]sat.Lit, w)
	switch t.op {
	case OpBVConst:
		for i := 0; i < w; i++ {
			if t.val.Bit(i) {
				bits[i] = s.trueLit
			} else {
				bits[i] = s.falseLit()
			}
		}
	case OpBVVar:
		for i := range bits {
			bits[i] = s.freshLit()
		}
	case OpBVAnd:
		a, b := s.blastBV(t.kids[0]), s.blastBV(t.kids[1])
		for i := range bits {
			bits[i] = s.andGate(a[i], b[i])
		}
	case OpBVOr:
		a, b := s.blastBV(t.kids[0]), s.blastBV(t.kids[1])
		for i := range bits {
			bits[i] = s.orGate(a[i], b[i])
		}
	case OpBVXor:
		a, b := s.blastBV(t.kids[0]), s.blastBV(t.kids[1])
		for i := range bits {
			bits[i] = s.xorGate(a[i], b[i])
		}
	case OpBVNot:
		a := s.blastBV(t.kids[0])
		for i := range bits {
			bits[i] = a[i].Not()
		}
	case OpBVAdd:
		a, b := s.blastBV(t.kids[0]), s.blastBV(t.kids[1])
		carry := s.falseLit()
		for i := range bits {
			bits[i] = s.xorGate(s.xorGate(a[i], b[i]), carry)
			if i+1 < w {
				carry = s.majGate(a[i], b[i], carry)
			}
		}
	case OpBVSub:
		// a - b = a + ~b + 1.
		a, b := s.blastBV(t.kids[0]), s.blastBV(t.kids[1])
		carry := s.trueLit
		for i := range bits {
			nb := b[i].Not()
			bits[i] = s.xorGate(s.xorGate(a[i], nb), carry)
			if i+1 < w {
				carry = s.majGate(a[i], nb, carry)
			}
		}
	case OpBVShl:
		a := s.blastBV(t.kids[0])
		n := int(t.kids[1].val.Uint64())
		for i := range bits {
			if i-n >= 0 && i-n < w {
				bits[i] = a[i-n]
			} else {
				bits[i] = s.falseLit()
			}
		}
	case OpBVShr:
		a := s.blastBV(t.kids[0])
		n := int(t.kids[1].val.Uint64())
		for i := range bits {
			if i+n < w {
				bits[i] = a[i+n]
			} else {
				bits[i] = s.falseLit()
			}
		}
	case OpIte:
		c := s.BlastBool(t.kids[0])
		a, b := s.blastBV(t.kids[1]), s.blastBV(t.kids[2])
		for i := range bits {
			bits[i] = s.muxGate(c, a[i], b[i])
		}
	case OpBVZext:
		a := s.blastBV(t.kids[0])
		for i := range bits {
			if i < len(a) {
				bits[i] = a[i]
			} else {
				bits[i] = s.falseLit()
			}
		}
	case OpBVTrunc:
		a := s.blastBV(t.kids[0])
		copy(bits, a[:w])
	default:
		panic(fmt.Sprintf("smt: cannot blast bitvector op %v", t.op))
	}
	s.bvBits[t] = bits
	return bits
}

// Assert permanently constrains a boolean term to true. Eager
// assertions are active in every check, sliced or not; their variables
// therefore seed every slice (see slice.go).
func (s *Solver) Assert(t *Term) {
	s.asserted = append(s.asserted, t)
	var vars []*Term
	varSupport(t, map[*Term]bool{}, &vars)
	for _, v := range vars {
		s.eagerVars[v] = true
		s.varUniverse[v] = true
	}
	s.addClause(s.BlastBool(t))
}

// AssertedTerms returns every term passed to Assert, in assertion order.
// A candidate model is a genuine model of the solver's formula iff it
// satisfies all of them; the witness engine uses this to confirm
// synthesized packets without a solver call.
func (s *Solver) AssertedTerms() []*Term { return s.asserted }

// Check decides the asserted formula.
func (s *Solver) Check() sat.Result {
	s.NumChecks++
	s.lastSlice = nil
	return s.sat.Solve(s.activateAll()...)
}

// CheckAssuming decides the asserted formula conjoined with the given
// boolean terms, without making them permanent.
func (s *Solver) CheckAssuming(terms ...*Term) sat.Result {
	s.NumChecks++
	s.lastSlice = nil
	lits := s.activateAll()
	for _, t := range terms {
		lits = append(lits, s.BlastBool(t))
	}
	return s.sat.Solve(lits...)
}

// ValueBV returns the model value of a bitvector term after a Sat result.
// Terms that never appeared in the formula are unconstrained and read as
// zero.
func (s *Solver) ValueBV(t *Term) value.V {
	if t.op == OpBVConst {
		return t.val
	}
	if v, ok := s.completeVar(t); ok {
		return v
	}
	bits, ok := s.bvBits[t]
	if !ok {
		return value.Zero(t.width)
	}
	v := value.Zero(t.width)
	for i, l := range bits {
		if s.sat.LitValue(l) {
			v = v.SetBit(i, true)
		}
	}
	return v
}

// ValueBool returns the model value of a boolean term after a Sat result.
func (s *Solver) ValueBool(t *Term) bool {
	l, ok := s.boolLits[t]
	if !ok {
		return false
	}
	return s.sat.LitValue(l)
}

// Stats exposes the underlying SAT solver counters.
func (s *Solver) Stats() sat.Stats { return s.sat.Stats }

// NumVars returns the number of SAT variables allocated.
func (s *Solver) NumVars() int { return s.sat.NumVars() }
