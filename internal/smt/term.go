// Package smt implements a quantifier-free bitvector (QF_BV) SMT solver
// by Tseitin bit-blasting onto the CDCL SAT solver in internal/sat. This
// is the fragment p4-symbolic needs (§5 "Decidability": quantifier-free
// bitvectors and equality are decidable), standing in for Z3.
//
// Terms are immutable and hash-consed within a Builder, so structurally
// equal terms are pointer-equal and bit-blasting is memoized.
package smt

import (
	"fmt"

	"switchv/internal/p4/value"
)

// Op is a term operator.
type Op int

// Term operators. Boolean-sorted terms have Width() == 0.
const (
	OpBoolConst Op = iota
	OpBVConst
	OpBVVar
	OpNot
	OpAnd
	OpOr
	OpImplies
	OpIff
	OpIte     // bool ? bv : bv
	OpBoolIte // bool ? bool : bool
	OpEq      // bv == bv -> bool
	OpUlt     // unsigned < -> bool
	OpUle
	OpBVAnd
	OpBVOr
	OpBVXor
	OpBVNot
	OpBVAdd
	OpBVSub
	OpBVShl // constant shift amount
	OpBVShr
	OpBVZext  // zero-extend to a wider width
	OpBVTrunc // truncate to the low bits
)

// Term is an immutable bitvector or boolean expression.
type Term struct {
	op    Op
	width int // 0 for booleans
	kids  []*Term
	val   value.V // OpBVConst
	b     bool    // OpBoolConst
	name  string  // OpBVVar
	id    int     // unique within builder
}

// Op returns the operator.
func (t *Term) Op() Op { return t.op }

// Width returns the bit width (0 for boolean terms).
func (t *Term) Width() int { return t.width }

// IsBool reports whether the term is boolean-sorted.
func (t *Term) IsBool() bool { return t.width == 0 }

// Name returns the variable name for OpBVVar terms.
func (t *Term) Name() string { return t.name }

// Const returns the constant value of an OpBVConst term.
func (t *Term) Const() value.V { return t.val }

// NumKids returns the operand count.
func (t *Term) NumKids() int { return len(t.kids) }

// Kid returns the i-th operand.
func (t *Term) Kid(i int) *Term { return t.kids[i] }

func (t *Term) String() string {
	switch t.op {
	case OpBoolConst:
		return fmt.Sprintf("%v", t.b)
	case OpBVConst:
		return t.val.String()
	case OpBVVar:
		return t.name
	case OpNot:
		return "(not " + t.kids[0].String() + ")"
	case OpAnd:
		return "(and " + t.kids[0].String() + " " + t.kids[1].String() + ")"
	case OpOr:
		return "(or " + t.kids[0].String() + " " + t.kids[1].String() + ")"
	case OpImplies:
		return "(=> " + t.kids[0].String() + " " + t.kids[1].String() + ")"
	case OpIff:
		return "(= " + t.kids[0].String() + " " + t.kids[1].String() + ")"
	case OpEq:
		return "(= " + t.kids[0].String() + " " + t.kids[1].String() + ")"
	case OpUlt:
		return "(bvult " + t.kids[0].String() + " " + t.kids[1].String() + ")"
	case OpUle:
		return "(bvule " + t.kids[0].String() + " " + t.kids[1].String() + ")"
	case OpIte, OpBoolIte:
		return "(ite " + t.kids[0].String() + " " + t.kids[1].String() + " " + t.kids[2].String() + ")"
	case OpBVAnd:
		return "(bvand " + t.kids[0].String() + " " + t.kids[1].String() + ")"
	case OpBVOr:
		return "(bvor " + t.kids[0].String() + " " + t.kids[1].String() + ")"
	case OpBVXor:
		return "(bvxor " + t.kids[0].String() + " " + t.kids[1].String() + ")"
	case OpBVNot:
		return "(bvnot " + t.kids[0].String() + ")"
	case OpBVAdd:
		return "(bvadd " + t.kids[0].String() + " " + t.kids[1].String() + ")"
	case OpBVSub:
		return "(bvsub " + t.kids[0].String() + " " + t.kids[1].String() + ")"
	case OpBVShl:
		return "(bvshl " + t.kids[0].String() + " " + t.kids[1].String() + ")"
	case OpBVShr:
		return "(bvlshr " + t.kids[0].String() + " " + t.kids[1].String() + ")"
	default:
		return fmt.Sprintf("Op(%d)", int(t.op))
	}
}

// Builder hash-conses terms and applies light constant folding.
type Builder struct {
	nextID int
	cache  map[termKey]*Term
	trueT  *Term
	falseT *Term
}

type termKey struct {
	op    Op
	width int
	k0    int
	k1    int
	k2    int
	hi    uint64
	lo    uint64
	name  string
}

// NewBuilder returns an empty term builder.
func NewBuilder() *Builder {
	b := &Builder{cache: map[termKey]*Term{}}
	b.trueT = b.intern(&Term{op: OpBoolConst, b: true})
	b.falseT = b.intern(&Term{op: OpBoolConst, b: false})
	return b
}

func (b *Builder) key(t *Term) termKey {
	k := termKey{op: t.op, width: t.width, k0: -1, k1: -1, k2: -1, name: t.name}
	for i, kid := range t.kids {
		switch i {
		case 0:
			k.k0 = kid.id
		case 1:
			k.k1 = kid.id
		case 2:
			k.k2 = kid.id
		}
	}
	if t.op == OpBVConst {
		k.hi, k.lo = t.val.Hi, t.val.Lo
	}
	if t.op == OpBoolConst && t.b {
		k.lo = 1
	}
	return k
}

func (b *Builder) intern(t *Term) *Term {
	k := b.key(t)
	if got, ok := b.cache[k]; ok {
		return got
	}
	b.nextID++
	t.id = b.nextID
	b.cache[k] = t
	return t
}

// True returns the boolean constant true.
func (b *Builder) True() *Term { return b.trueT }

// False returns the boolean constant false.
func (b *Builder) False() *Term { return b.falseT }

// Bool returns a boolean constant.
func (b *Builder) Bool(v bool) *Term {
	if v {
		return b.trueT
	}
	return b.falseT
}

// BV returns a fresh-or-interned bitvector variable of the given width.
func (b *Builder) BV(name string, width int) *Term {
	if width <= 0 || width > 128 {
		panic(fmt.Sprintf("smt: bad width %d", width))
	}
	return b.intern(&Term{op: OpBVVar, width: width, name: name})
}

// Const returns a bitvector constant.
func (b *Builder) Const(v value.V) *Term {
	if v.Width <= 0 {
		panic("smt: constant with zero width")
	}
	return b.intern(&Term{op: OpBVConst, width: v.Width, val: v})
}

// ConstUint is Const for small values.
func (b *Builder) ConstUint(v uint64, width int) *Term {
	return b.Const(value.New(v, width))
}

func (b *Builder) checkBV2(op string, x, y *Term) {
	if x.IsBool() || y.IsBool() || x.width != y.width {
		panic(fmt.Sprintf("smt: %s operand sorts (%d, %d)", op, x.width, y.width))
	}
}

// Not returns boolean negation, folding constants and double negation.
func (b *Builder) Not(x *Term) *Term {
	if !x.IsBool() {
		panic("smt: not on non-boolean")
	}
	switch {
	case x == b.trueT:
		return b.falseT
	case x == b.falseT:
		return b.trueT
	case x.op == OpNot:
		return x.kids[0]
	}
	return b.intern(&Term{op: OpNot, kids: []*Term{x}})
}

// And returns boolean conjunction with unit folding.
func (b *Builder) And(x, y *Term) *Term {
	if !x.IsBool() || !y.IsBool() {
		panic("smt: and on non-boolean")
	}
	switch {
	case x == b.falseT || y == b.falseT:
		return b.falseT
	case x == b.trueT:
		return y
	case y == b.trueT:
		return x
	case x == y:
		return x
	}
	return b.intern(&Term{op: OpAnd, kids: []*Term{x, y}})
}

// Or returns boolean disjunction with unit folding.
func (b *Builder) Or(x, y *Term) *Term {
	if !x.IsBool() || !y.IsBool() {
		panic("smt: or on non-boolean")
	}
	switch {
	case x == b.trueT || y == b.trueT:
		return b.trueT
	case x == b.falseT:
		return y
	case y == b.falseT:
		return x
	case x == y:
		return x
	}
	return b.intern(&Term{op: OpOr, kids: []*Term{x, y}})
}

// AndN folds a conjunction over terms (true for none).
func (b *Builder) AndN(terms ...*Term) *Term {
	out := b.trueT
	for _, t := range terms {
		out = b.And(out, t)
	}
	return out
}

// OrN folds a disjunction over terms (false for none).
func (b *Builder) OrN(terms ...*Term) *Term {
	out := b.falseT
	for _, t := range terms {
		out = b.Or(out, t)
	}
	return out
}

// Implies returns x -> y.
func (b *Builder) Implies(x, y *Term) *Term { return b.Or(b.Not(x), y) }

// Iff returns x <-> y.
func (b *Builder) Iff(x, y *Term) *Term {
	if !x.IsBool() || !y.IsBool() {
		panic("smt: iff on non-boolean")
	}
	switch {
	case x == y:
		return b.trueT
	case x == b.trueT:
		return y
	case y == b.trueT:
		return x
	case x == b.falseT:
		return b.Not(y)
	case y == b.falseT:
		return b.Not(x)
	}
	return b.intern(&Term{op: OpIff, kids: []*Term{x, y}})
}

// Eq returns bitvector equality as a boolean.
func (b *Builder) Eq(x, y *Term) *Term {
	b.checkBV2("eq", x, y)
	if x == y {
		return b.trueT
	}
	if x.op == OpBVConst && y.op == OpBVConst {
		return b.Bool(x.val.Equal(y.val))
	}
	if y.id < x.id {
		x, y = y, x
	}
	return b.intern(&Term{op: OpEq, kids: []*Term{x, y}})
}

// Ne returns bitvector disequality.
func (b *Builder) Ne(x, y *Term) *Term { return b.Not(b.Eq(x, y)) }

// Ult returns unsigned x < y.
func (b *Builder) Ult(x, y *Term) *Term {
	b.checkBV2("ult", x, y)
	if x == y {
		return b.falseT
	}
	if x.op == OpBVConst && y.op == OpBVConst {
		return b.Bool(x.val.Less(y.val))
	}
	return b.intern(&Term{op: OpUlt, kids: []*Term{x, y}})
}

// Ule returns unsigned x <= y.
func (b *Builder) Ule(x, y *Term) *Term {
	b.checkBV2("ule", x, y)
	if x == y {
		return b.trueT
	}
	if x.op == OpBVConst && y.op == OpBVConst {
		return b.Bool(!y.val.Less(x.val))
	}
	return b.intern(&Term{op: OpUle, kids: []*Term{x, y}})
}

// Ite returns the bitvector conditional.
func (b *Builder) Ite(cond, x, y *Term) *Term {
	if !cond.IsBool() {
		panic("smt: ite condition is not boolean")
	}
	if x.IsBool() != y.IsBool() || (!x.IsBool() && x.width != y.width) {
		panic("smt: ite arm sorts differ")
	}
	switch {
	case cond == b.trueT:
		return x
	case cond == b.falseT:
		return y
	case x == y:
		return x
	}
	if x.IsBool() {
		return b.intern(&Term{op: OpBoolIte, kids: []*Term{cond, x, y}})
	}
	return b.intern(&Term{op: OpIte, width: x.width, kids: []*Term{cond, x, y}})
}

func (b *Builder) bvBinary(op Op, x, y *Term, fold func(a, c value.V) value.V) *Term {
	if x.op == OpBVConst && y.op == OpBVConst {
		return b.Const(fold(x.val, y.val))
	}
	return b.intern(&Term{op: op, width: x.width, kids: []*Term{x, y}})
}

// BVAnd returns bitwise and.
func (b *Builder) BVAnd(x, y *Term) *Term {
	b.checkBV2("bvand", x, y)
	return b.bvBinary(OpBVAnd, x, y, value.V.And)
}

// BVOr returns bitwise or.
func (b *Builder) BVOr(x, y *Term) *Term {
	b.checkBV2("bvor", x, y)
	return b.bvBinary(OpBVOr, x, y, value.V.Or)
}

// BVXor returns bitwise xor.
func (b *Builder) BVXor(x, y *Term) *Term {
	b.checkBV2("bvxor", x, y)
	return b.bvBinary(OpBVXor, x, y, value.V.Xor)
}

// BVNot returns bitwise complement.
func (b *Builder) BVNot(x *Term) *Term {
	if x.IsBool() {
		panic("smt: bvnot on boolean")
	}
	if x.op == OpBVConst {
		return b.Const(x.val.Not())
	}
	return b.intern(&Term{op: OpBVNot, width: x.width, kids: []*Term{x}})
}

// BVAdd returns modular addition.
func (b *Builder) BVAdd(x, y *Term) *Term {
	b.checkBV2("bvadd", x, y)
	return b.bvBinary(OpBVAdd, x, y, value.V.Add)
}

// BVSub returns modular subtraction.
func (b *Builder) BVSub(x, y *Term) *Term {
	b.checkBV2("bvsub", x, y)
	return b.bvBinary(OpBVSub, x, y, value.V.Sub)
}

// BVShlConst returns x << n for a constant shift.
func (b *Builder) BVShlConst(x *Term, n int) *Term {
	if x.IsBool() {
		panic("smt: shift on boolean")
	}
	if n == 0 {
		return x
	}
	if x.op == OpBVConst {
		return b.Const(x.val.Shl(n))
	}
	amount := b.ConstUint(uint64(n), x.width)
	return b.intern(&Term{op: OpBVShl, width: x.width, kids: []*Term{x, amount}})
}

// BVShrConst returns x >> n (logical) for a constant shift.
func (b *Builder) BVShrConst(x *Term, n int) *Term {
	if x.IsBool() {
		panic("smt: shift on boolean")
	}
	if n == 0 {
		return x
	}
	if x.op == OpBVConst {
		return b.Const(x.val.Shr(n))
	}
	amount := b.ConstUint(uint64(n), x.width)
	return b.intern(&Term{op: OpBVShr, width: x.width, kids: []*Term{x, amount}})
}

// ZeroExtend widens x to width w with zero bits.
func (b *Builder) ZeroExtend(x *Term, w int) *Term {
	if x.IsBool() {
		panic("smt: zero-extend on boolean")
	}
	if w < x.width {
		panic("smt: zero-extend to narrower width")
	}
	if w == x.width {
		return x
	}
	if x.op == OpBVConst {
		return b.Const(x.val.WithWidth(w))
	}
	return b.intern(&Term{op: OpBVZext, width: w, kids: []*Term{x}})
}

// Truncate keeps the low w bits of x.
func (b *Builder) Truncate(x *Term, w int) *Term {
	if x.IsBool() {
		panic("smt: truncate on boolean")
	}
	if w > x.width {
		panic("smt: truncate to wider width")
	}
	if w == x.width {
		return x
	}
	if x.op == OpBVConst {
		return b.Const(x.val.WithWidth(w))
	}
	return b.intern(&Term{op: OpBVTrunc, width: w, kids: []*Term{x}})
}

// Resize coerces x to width w: zero-extending or truncating as needed
// (the P4 assignment coercion semantics).
func (b *Builder) Resize(x *Term, w int) *Term {
	if w >= x.width {
		return b.ZeroExtend(x, w)
	}
	return b.Truncate(x, w)
}

// NumTerms returns the number of distinct terms built (benchmark metric).
func (b *Builder) NumTerms() int { return b.nextID }
