// Concrete evaluation of terms under a SAT model. After the solver finds
// a model for one coverage goal, Eval lets the caller check — without any
// further SMT work — which other goal conditions that model already
// satisfies. The symbolic engine uses this for greedy test-suite
// reduction: on typical programs most goals fall to a handful of models,
// so almost all per-goal solver calls are skipped.
package smt

import (
	"fmt"

	"switchv/internal/p4/value"
)

// Model is a concrete assignment to the bitvector variables of a
// formula, captured from the solver after a Sat result. Variables the
// solver never saw are unconstrained by the formula and read as zero,
// matching ValueBV. Evaluation results are memoized over the hash-consed
// term DAG, so repeated Eval calls against the same model share work.
//
// A Model is independent of the solver it was captured from and stays
// valid after further Check calls; it is not safe for concurrent use.
type Model struct {
	vars   map[*Term]value.V
	memoBV map[*Term]value.V
	memoB  map[*Term]bool
}

// NewModel builds a standalone model from explicit variable values;
// every unlisted variable reads as zero, like an unconstrained solver
// variable. Used for canonical background models (witness synthesis,
// slice completion) that exist independently of any Check call.
func NewModel(vars map[*Term]value.V) *Model {
	m := &Model{
		vars:   make(map[*Term]value.V, len(vars)),
		memoBV: map[*Term]value.V{},
		memoB:  map[*Term]bool{},
	}
	for t, v := range vars {
		if t.op != OpBVVar {
			panic("smt: NewModel on non-variable term")
		}
		if v.Width != t.width {
			panic(fmt.Sprintf("smt: NewModel width mismatch: %d vs %d", v.Width, t.width))
		}
		m.vars[t] = v
	}
	return m
}

// Model captures the current model. It must only be called after a Sat
// result from Check, CheckAssuming or CheckSliced. After a sliced check
// the model is transparently completed: variables outside the slice
// take their background values (see slice.go), so the result is a
// genuine model of the full asserted formula.
func (s *Solver) Model() *Model {
	vars := make(map[*Term]value.V)
	if s.lastSlice != nil {
		for t, v := range s.bg.vars {
			if !s.lastSlice[t] {
				vars[t] = v
			}
		}
	}
	for t, bits := range s.bvBits {
		if t.op != OpBVVar {
			continue
		}
		if s.lastSlice != nil && !s.lastSlice[t] {
			continue
		}
		v := value.Zero(t.width)
		for i, l := range bits {
			if s.sat.LitValue(l) {
				v = v.SetBit(i, true)
			}
		}
		vars[t] = v
	}
	return &Model{
		vars:   vars,
		memoBV: map[*Term]value.V{},
		memoB:  map[*Term]bool{},
	}
}

// WithVars returns a copy of the model with the given variable values
// overriding the captured ones. Memoized evaluations are not shared: the
// copy starts with fresh memo tables so patched variables take effect.
func (m *Model) WithVars(patch map[*Term]value.V) *Model {
	vars := make(map[*Term]value.V, len(m.vars)+len(patch))
	for t, v := range m.vars {
		vars[t] = v
	}
	for t, v := range patch {
		if t.op != OpBVVar {
			panic("smt: Model.WithVars on non-variable term")
		}
		if v.Width != t.width {
			panic(fmt.Sprintf("smt: Model.WithVars width mismatch: %d vs %d", v.Width, t.width))
		}
		vars[t] = v
	}
	return &Model{
		vars:   vars,
		memoBV: map[*Term]value.V{},
		memoB:  map[*Term]bool{},
	}
}

// Var returns the model value of a bitvector variable (zero if the
// variable never appeared in the formula).
func (m *Model) Var(t *Term) value.V {
	if t.op != OpBVVar {
		panic("smt: Model.Var on non-variable term")
	}
	if v, ok := m.vars[t]; ok {
		return v
	}
	return value.Zero(t.width)
}

// Eval evaluates a term under a model. Boolean terms evaluate to a 1-bit
// vector (1 = true); use EvalBool for the boolean directly.
func Eval(m *Model, t *Term) value.V {
	if t.IsBool() {
		if m.evalBool(t) {
			return value.New(1, 1)
		}
		return value.Zero(1)
	}
	return m.evalBV(t)
}

// EvalBool evaluates a boolean term under a model.
func EvalBool(m *Model, t *Term) bool {
	if !t.IsBool() {
		panic("smt: EvalBool on bitvector term")
	}
	return m.evalBool(t)
}

func (m *Model) evalBool(t *Term) bool {
	if v, ok := m.memoB[t]; ok {
		return v
	}
	var v bool
	switch t.op {
	case OpBoolConst:
		v = t.b
	case OpNot:
		v = !m.evalBool(t.kids[0])
	case OpAnd:
		v = m.evalBool(t.kids[0]) && m.evalBool(t.kids[1])
	case OpOr:
		v = m.evalBool(t.kids[0]) || m.evalBool(t.kids[1])
	case OpImplies:
		v = !m.evalBool(t.kids[0]) || m.evalBool(t.kids[1])
	case OpIff:
		v = m.evalBool(t.kids[0]) == m.evalBool(t.kids[1])
	case OpBoolIte:
		if m.evalBool(t.kids[0]) {
			v = m.evalBool(t.kids[1])
		} else {
			v = m.evalBool(t.kids[2])
		}
	case OpEq:
		v = m.evalBV(t.kids[0]).Equal(m.evalBV(t.kids[1]))
	case OpUlt:
		v = m.evalBV(t.kids[0]).Less(m.evalBV(t.kids[1]))
	case OpUle:
		v = !m.evalBV(t.kids[1]).Less(m.evalBV(t.kids[0]))
	default:
		panic(fmt.Sprintf("smt: cannot evaluate boolean op %v", t.op))
	}
	m.memoB[t] = v
	return v
}

func (m *Model) evalBV(t *Term) value.V {
	if v, ok := m.memoBV[t]; ok {
		return v
	}
	var v value.V
	switch t.op {
	case OpBVConst:
		v = t.val
	case OpBVVar:
		v = m.Var(t)
	case OpBVAnd:
		v = m.evalBV(t.kids[0]).And(m.evalBV(t.kids[1]))
	case OpBVOr:
		v = m.evalBV(t.kids[0]).Or(m.evalBV(t.kids[1]))
	case OpBVXor:
		v = m.evalBV(t.kids[0]).Xor(m.evalBV(t.kids[1]))
	case OpBVNot:
		v = m.evalBV(t.kids[0]).Not()
	case OpBVAdd:
		v = m.evalBV(t.kids[0]).Add(m.evalBV(t.kids[1]))
	case OpBVSub:
		v = m.evalBV(t.kids[0]).Sub(m.evalBV(t.kids[1]))
	case OpBVShl:
		v = m.evalBV(t.kids[0]).Shl(int(t.kids[1].val.Uint64()))
	case OpBVShr:
		v = m.evalBV(t.kids[0]).Shr(int(t.kids[1].val.Uint64()))
	case OpIte:
		if m.evalBool(t.kids[0]) {
			v = m.evalBV(t.kids[1])
		} else {
			v = m.evalBV(t.kids[2])
		}
	case OpBVZext:
		v = m.evalBV(t.kids[0]).WithWidth(t.width)
	case OpBVTrunc:
		v = m.evalBV(t.kids[0]).WithWidth(t.width)
	default:
		panic(fmt.Sprintf("smt: cannot evaluate bitvector op %v", t.op))
	}
	m.memoBV[t] = v
	return v
}
