package smt

import (
	"math/rand"
	"testing"

	"switchv/internal/sat"
)

// randTerms builds a pool of random bitvector and boolean terms over a
// few variables, exercising every constructor the evaluator handles.
func randTerms(b *Builder, rng *rand.Rand) (bvs, bools []*Term) {
	widths := []int{1, 4, 8, 16, 32, 48}
	for i, w := range widths {
		bvs = append(bvs, b.BV("v"+string(rune('a'+i)), w))
		bvs = append(bvs, b.ConstUint(rng.Uint64()&((1<<uint(w))-1), w))
	}
	bools = append(bools, b.True(), b.False())
	pickBV := func() *Term { return bvs[rng.Intn(len(bvs))] }
	pickBool := func() *Term { return bools[rng.Intn(len(bools))] }
	samePair := func() (*Term, *Term) {
		x := pickBV()
		for {
			if y := pickBV(); y.Width() == x.Width() {
				return x, y
			}
		}
	}
	for i := 0; i < 120; i++ {
		switch rng.Intn(12) {
		case 0:
			x, y := samePair()
			bvs = append(bvs, b.BVAnd(x, y))
		case 1:
			x, y := samePair()
			bvs = append(bvs, b.BVOr(x, y))
		case 2:
			x, y := samePair()
			bvs = append(bvs, b.BVXor(x, y))
		case 3:
			bvs = append(bvs, b.BVNot(pickBV()))
		case 4:
			x, y := samePair()
			bvs = append(bvs, b.BVAdd(x, y))
		case 5:
			x, y := samePair()
			bvs = append(bvs, b.BVSub(x, y))
		case 6:
			x := pickBV()
			bvs = append(bvs, b.BVShlConst(x, rng.Intn(x.Width()+1)))
		case 7:
			x := pickBV()
			bvs = append(bvs, b.BVShrConst(x, rng.Intn(x.Width()+1)))
		case 8:
			x := pickBV()
			bvs = append(bvs, b.ZeroExtend(x, x.Width()+rng.Intn(16)))
		case 9:
			x := pickBV()
			bvs = append(bvs, b.Truncate(x, 1+rng.Intn(x.Width())))
		case 10:
			x, y := samePair()
			bvs = append(bvs, b.Ite(pickBool(), x, y))
		case 11:
			x, y := samePair()
			switch rng.Intn(5) {
			case 0:
				bools = append(bools, b.Eq(x, y))
			case 1:
				bools = append(bools, b.Ne(x, y))
			case 2:
				bools = append(bools, b.Ult(x, y))
			case 3:
				bools = append(bools, b.Ule(x, y))
			case 4:
				bools = append(bools, b.And(pickBool(), b.Or(pickBool(), b.Not(pickBool()))))
			}
		}
	}
	return bvs, bools
}

// TestEvalMatchesSolver is the differential check behind model-reuse
// pruning: on a SAT model, Eval over the term DAG must agree with the
// solver's own ValueBV/ValueBool on every term — including terms that
// were never blasted, where both sides default unassigned variables to
// zero.
func TestEvalMatchesSolver(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		s := NewSolver(b)
		bvs, bools := randTerms(b, rng)
		// Assert a random slice of the boolean pool (checking SAT first
		// with CheckAssuming so the conjunction stays satisfiable), plus
		// a few bitvector equalities to pin variables.
		asserted := 0
		for _, c := range bools {
			if asserted >= 6 {
				break
			}
			if rng.Intn(2) == 0 && s.CheckAssuming(c) == sat.Sat {
				s.Assert(c)
				asserted++
			}
		}
		// Blast every pool term so the solver assigns its encoding bits
		// (ValueBV is a bit reader, not an evaluator: unblasted composite
		// terms read as zero). Tseitin definitions never make the
		// instance unsat.
		for _, term := range bvs {
			s.blastBV(term)
		}
		for _, term := range bools {
			s.BlastBool(term)
		}
		if s.Check() != sat.Sat {
			t.Fatalf("seed %d: asserted conjunction unsat", seed)
		}
		m := s.Model()
		for _, term := range bvs {
			want := s.ValueBV(term)
			if got := Eval(m, term); !got.Equal(want) {
				t.Fatalf("seed %d: Eval(%v) = %v, solver says %v", seed, term, got, want)
			}
		}
		for _, term := range bools {
			want := s.ValueBool(term)
			if got := EvalBool(m, term); got != want {
				t.Fatalf("seed %d: EvalBool(%v) = %v, solver says %v", seed, term, got, want)
			}
		}
	}
}

// TestEvalUnblastedDefaultsZero pins the zero-default contract: a
// variable that appears in no asserted constraint evaluates to zero,
// exactly like ValueBV.
func TestEvalUnblastedDefaultsZero(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.BV("x", 8)
	ghost := b.BV("ghost", 16) // never asserted, never blasted
	s.Assert(b.Eq(x, b.ConstUint(7, 8)))
	if s.Check() != sat.Sat {
		t.Fatal("unsat")
	}
	m := s.Model()
	if got := Eval(m, ghost); !got.IsZero() {
		t.Errorf("unblasted var = %v, want 0", got)
	}
	if got := Eval(m, b.BVAdd(ghost, b.ConstUint(3, 16))); got.Uint64() != 3 {
		t.Errorf("ghost+3 = %v, want 3", got)
	}
	if got := s.ValueBV(ghost); !got.IsZero() {
		t.Errorf("solver default = %v, want 0", got)
	}
	// A bool over the ghost var agrees with the zero default.
	if !EvalBool(m, b.Eq(ghost, b.ConstUint(0, 16))) {
		t.Error("ghost == 0 should hold under the zero default")
	}
}

// TestModelSurvivesLaterChecks pins that a captured Model is a
// snapshot: further solver calls must not change what it evaluates to.
func TestModelSurvivesLaterChecks(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.BV("x", 8)
	s.Assert(b.Eq(x, b.ConstUint(5, 8)))
	if s.Check() != sat.Sat {
		t.Fatal("unsat")
	}
	m := s.Model()
	// Push the solver somewhere else.
	y := b.BV("y", 8)
	s.Assert(b.Eq(y, b.ConstUint(9, 8)))
	if s.Check() != sat.Sat {
		t.Fatal("unsat after second assert")
	}
	if got := Eval(m, x); got.Uint64() != 5 {
		t.Errorf("snapshot x = %v, want 5", got)
	}
}
