package smt

import (
	"math/rand"
	"testing"

	"switchv/internal/p4/value"
	"switchv/internal/sat"
)

func TestEqModel(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.BV("x", 32)
	s.Assert(b.Eq(x, b.ConstUint(0x0a000001, 32)))
	if r := s.Check(); r != sat.Sat {
		t.Fatalf("Check = %v", r)
	}
	if got := s.ValueBV(x); got.Uint64() != 0x0a000001 {
		t.Errorf("x = %v", got)
	}
}

func TestUnsatEq(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.BV("x", 8)
	s.Assert(b.Eq(x, b.ConstUint(1, 8)))
	s.Assert(b.Eq(x, b.ConstUint(2, 8)))
	if r := s.Check(); r != sat.Unsat {
		t.Fatalf("Check = %v", r)
	}
}

func TestUltSemantics(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.BV("x", 8)
	y := b.BV("y", 8)
	s.Assert(b.Ult(x, y))
	s.Assert(b.Ule(y, b.ConstUint(5, 8)))
	if r := s.Check(); r != sat.Sat {
		t.Fatalf("Check = %v", r)
	}
	xv, yv := s.ValueBV(x), s.ValueBV(y)
	if !xv.Less(yv) || yv.Uint64() > 5 {
		t.Errorf("x=%v y=%v", xv, yv)
	}
	// x < 0 is unsat.
	if r := s.CheckAssuming(b.Ult(x, b.ConstUint(0, 8))); r != sat.Unsat {
		t.Errorf("x < 0 = %v", r)
	}
}

func TestAddSubWrap(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.BV("x", 8)
	// x + 1 == 0  =>  x == 255.
	s.Assert(b.Eq(b.BVAdd(x, b.ConstUint(1, 8)), b.ConstUint(0, 8)))
	if r := s.Check(); r != sat.Sat {
		t.Fatalf("Check = %v", r)
	}
	if got := s.ValueBV(x); got.Uint64() != 255 {
		t.Errorf("x = %v", got)
	}
	// y - 1 == 255  =>  y == 0.
	y := b.BV("y", 8)
	s.Assert(b.Eq(b.BVSub(y, b.ConstUint(1, 8)), b.ConstUint(255, 8)))
	if r := s.Check(); r != sat.Sat {
		t.Fatalf("Check = %v", r)
	}
	if got := s.ValueBV(y); got.Uint64() != 0 {
		t.Errorf("y = %v", got)
	}
}

func TestShifts(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.BV("x", 16)
	s.Assert(b.Eq(b.BVShlConst(x, 4), b.ConstUint(0xaab0, 16)))
	s.Assert(b.Eq(b.BVShrConst(x, 8), b.ConstUint(0x0a, 16)))
	if r := s.Check(); r != sat.Sat {
		t.Fatalf("Check = %v", r)
	}
	got := s.ValueBV(x).Uint64()
	if got != 0x0aab {
		t.Errorf("x = %#x, want 0x0aab", got)
	}
}

func TestIte(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	c := b.BV("c", 1)
	x := b.Ite(b.Eq(c, b.ConstUint(1, 1)), b.ConstUint(10, 8), b.ConstUint(20, 8))
	s.Assert(b.Eq(x, b.ConstUint(20, 8)))
	if r := s.Check(); r != sat.Sat {
		t.Fatalf("Check = %v", r)
	}
	if got := s.ValueBV(c); got.Uint64() != 0 {
		t.Errorf("c = %v", got)
	}
}

func TestMasking(t *testing.T) {
	// Ternary-style match: (x & mask) == (value & mask).
	b := NewBuilder()
	s := NewSolver(b)
	x := b.BV("x", 32)
	mask := b.ConstUint(0xff000000, 32)
	want := b.ConstUint(0x0a000000, 32)
	s.Assert(b.Eq(b.BVAnd(x, mask), want))
	s.Assert(b.Ne(x, b.ConstUint(0x0a000000, 32)))
	if r := s.Check(); r != sat.Sat {
		t.Fatalf("Check = %v", r)
	}
	got := s.ValueBV(x)
	if got.Uint64()>>24 != 0x0a || got.Uint64() == 0x0a000000 {
		t.Errorf("x = %v", got)
	}
}

func Test128Bit(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.BV("x", 128)
	target := value.New128(0x20010db800000000, 0x42, 128)
	s.Assert(b.Eq(x, b.Const(target)))
	if r := s.Check(); r != sat.Sat {
		t.Fatalf("Check = %v", r)
	}
	if got := s.ValueBV(x); !got.Equal(target) {
		t.Errorf("x = %v, want %v", got, target)
	}
}

func TestCheckAssumingDoesNotPersist(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.BV("x", 8)
	s.Assert(b.Ule(x, b.ConstUint(100, 8)))
	if r := s.CheckAssuming(b.Eq(x, b.ConstUint(7, 8))); r != sat.Sat {
		t.Fatalf("assume x=7: %v", r)
	}
	if got := s.ValueBV(x); got.Uint64() != 7 {
		t.Errorf("x = %v", got)
	}
	if r := s.CheckAssuming(b.Eq(x, b.ConstUint(8, 8))); r != sat.Sat {
		t.Fatalf("assume x=8: %v", r)
	}
	if got := s.ValueBV(x); got.Uint64() != 8 {
		t.Errorf("x = %v", got)
	}
	// Contradictory assumption is Unsat but not sticky.
	if r := s.CheckAssuming(b.Eq(x, b.ConstUint(200, 8))); r != sat.Unsat {
		t.Fatalf("assume x=200: %v", r)
	}
	if r := s.Check(); r != sat.Sat {
		t.Fatalf("Check after unsat assumption: %v", r)
	}
}

func TestBoolConnectives(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.BV("x", 4)
	y := b.BV("y", 4)
	p := b.Eq(x, b.ConstUint(3, 4))
	q := b.Eq(y, b.ConstUint(9, 4))
	s.Assert(b.Implies(p, q))
	s.Assert(b.Iff(p, b.True()))
	if r := s.Check(); r != sat.Sat {
		t.Fatalf("Check = %v", r)
	}
	if s.ValueBV(x).Uint64() != 3 || s.ValueBV(y).Uint64() != 9 {
		t.Errorf("x=%v y=%v", s.ValueBV(x), s.ValueBV(y))
	}
	if !s.ValueBool(p) || !s.ValueBool(q) {
		t.Error("ValueBool mismatch")
	}
}

func TestBuilderFolding(t *testing.T) {
	b := NewBuilder()
	x := b.BV("x", 8)
	if b.And(b.True(), x.eqSelf(b)) != x.eqSelf(b) {
		t.Error("And(true, p) != p")
	}
	if b.Eq(x, x) != b.True() {
		t.Error("Eq(x,x) != true")
	}
	if b.Not(b.Not(x.eqSelf(b))) != x.eqSelf(b) {
		t.Error("double negation not folded")
	}
	c1 := b.ConstUint(3, 8)
	c2 := b.ConstUint(5, 8)
	if b.BVAdd(c1, c2).Const().Uint64() != 8 {
		t.Error("const add not folded")
	}
	if b.Ult(c1, c2) != b.True() {
		t.Error("const ult not folded")
	}
	if b.Eq(c1, c2) != b.False() {
		t.Error("const eq not folded")
	}
	// Hash consing: same structure, same pointer.
	if b.BVAdd(x, c1) != b.BVAdd(x, c1) {
		t.Error("hash consing failed")
	}
	if b.BV("x", 8) != x {
		t.Error("variable interning failed")
	}
}

// eqSelf makes an arbitrary boolean term mentioning t (test helper).
func (t *Term) eqSelf(b *Builder) *Term { return b.Ule(t, t.maxConst(b)) }

func (t *Term) maxConst(b *Builder) *Term { return b.Const(value.Ones(t.width)) }

// Reference evaluator for the property test.
func refEval(t *Term, env map[string]value.V) (value.V, bool) {
	switch t.op {
	case OpBoolConst:
		if t.b {
			return value.New(1, 1), true
		}
		return value.Zero(1), true
	case OpBVConst:
		return t.val, false
	case OpBVVar:
		return env[t.name], false
	}
	kid := func(i int) value.V { v, _ := refEval(t.kids[i], env); return v }
	kidB := func(i int) bool { v, _ := refEval(t.kids[i], env); return !v.IsZero() }
	boolV := func(b bool) (value.V, bool) {
		if b {
			return value.New(1, 1), true
		}
		return value.Zero(1), true
	}
	switch t.op {
	case OpNot:
		return boolV(!kidB(0))
	case OpAnd:
		return boolV(kidB(0) && kidB(1))
	case OpOr:
		return boolV(kidB(0) || kidB(1))
	case OpImplies:
		return boolV(!kidB(0) || kidB(1))
	case OpIff:
		return boolV(kidB(0) == kidB(1))
	case OpEq:
		return boolV(kid(0).Equal(kid(1)))
	case OpUlt:
		return boolV(kid(0).Less(kid(1)))
	case OpUle:
		return boolV(!kid(1).Less(kid(0)))
	case OpIte, OpBoolIte:
		if kidB(0) {
			return refEval(t.kids[1], env)
		}
		return refEval(t.kids[2], env)
	case OpBVAnd:
		return kid(0).And(kid(1)), false
	case OpBVOr:
		return kid(0).Or(kid(1)), false
	case OpBVXor:
		return kid(0).Xor(kid(1)), false
	case OpBVNot:
		return kid(0).Not(), false
	case OpBVAdd:
		return kid(0).Add(kid(1)), false
	case OpBVSub:
		return kid(0).Sub(kid(1)), false
	case OpBVShl:
		return kid(0).Shl(int(kid(1).Uint64())), false
	case OpBVShr:
		return kid(0).Shr(int(kid(1).Uint64())), false
	}
	panic("refEval: bad op")
}

// randomBoolTerm builds a random boolean term over the given variables.
func randomBoolTerm(b *Builder, rng *rand.Rand, vars []*Term, depth int) *Term {
	randomBV := func(d int) *Term { return randomBVTerm(b, rng, vars, d) }
	if depth <= 0 || rng.Intn(4) == 0 {
		x := randomBV(1)
		y := randomBV(1)
		switch rng.Intn(3) {
		case 0:
			return b.Eq(x, y)
		case 1:
			return b.Ult(x, y)
		default:
			return b.Ule(x, y)
		}
	}
	switch rng.Intn(4) {
	case 0:
		return b.Not(randomBoolTerm(b, rng, vars, depth-1))
	case 1:
		return b.And(randomBoolTerm(b, rng, vars, depth-1), randomBoolTerm(b, rng, vars, depth-1))
	case 2:
		return b.Or(randomBoolTerm(b, rng, vars, depth-1), randomBoolTerm(b, rng, vars, depth-1))
	default:
		return b.Implies(randomBoolTerm(b, rng, vars, depth-1), randomBoolTerm(b, rng, vars, depth-1))
	}
}

func randomBVTerm(b *Builder, rng *rand.Rand, vars []*Term, depth int) *Term {
	w := vars[0].Width()
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return vars[rng.Intn(len(vars))]
		}
		return b.ConstUint(rng.Uint64()&(1<<uint(w)-1), w)
	}
	x := randomBVTerm(b, rng, vars, depth-1)
	y := randomBVTerm(b, rng, vars, depth-1)
	switch rng.Intn(7) {
	case 0:
		return b.BVAnd(x, y)
	case 1:
		return b.BVOr(x, y)
	case 2:
		return b.BVXor(x, y)
	case 3:
		return b.BVNot(x)
	case 4:
		return b.BVAdd(x, y)
	case 5:
		return b.BVSub(x, y)
	default:
		return b.BVShlConst(x, rng.Intn(w))
	}
}

// TestRandomTermsAgainstReference asserts random formulas; every SAT model
// must satisfy the formula under the reference evaluator, and every UNSAT
// verdict is spot-checked against random assignments.
func TestRandomTermsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		b := NewBuilder()
		s := NewSolver(b)
		vars := []*Term{b.BV("a", 8), b.BV("b", 8), b.BV("c", 8)}
		f := randomBoolTerm(b, rng, vars, 3)
		s.Assert(f)
		switch s.Check() {
		case sat.Sat:
			env := map[string]value.V{}
			for _, v := range vars {
				env[v.Name()] = s.ValueBV(v)
			}
			got, _ := refEval(f, env)
			if got.IsZero() {
				t.Fatalf("trial %d: model does not satisfy %s (env %v)", trial, f, env)
			}
		case sat.Unsat:
			for i := 0; i < 200; i++ {
				env := map[string]value.V{}
				for _, v := range vars {
					env[v.Name()] = value.New(rng.Uint64(), 8)
				}
				if got, _ := refEval(f, env); !got.IsZero() {
					t.Fatalf("trial %d: UNSAT formula %s satisfied by %v", trial, f, env)
				}
			}
		default:
			t.Fatalf("trial %d: unknown verdict", trial)
		}
	}
}

func TestSortPanics(t *testing.T) {
	b := NewBuilder()
	x := b.BV("x", 8)
	y := b.BV("y", 16)
	for name, f := range map[string]func(){
		"width mismatch": func() { b.Eq(x, y) },
		"and on bv":      func() { b.And(x, x) },
		"not on bv":      func() { b.Not(x) },
		"bvnot on bool":  func() { b.BVNot(b.True()) },
		"ite arm widths": func() { b.Ite(b.True(), x, y) },
		"zero width var": func() { b.BV("z", 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkBlastAndSolveEq32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bu := NewBuilder()
		s := NewSolver(bu)
		x := bu.BV("x", 32)
		y := bu.BV("y", 32)
		s.Assert(bu.Eq(bu.BVAdd(x, y), bu.ConstUint(0xdeadbeef, 32)))
		s.Assert(bu.Ult(x, y))
		if s.Check() != sat.Sat {
			b.Fatal("unsat")
		}
	}
}

func TestResizeOps(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.BV("x", 8)
	// ZeroExtend: high bits are zero.
	wide := b.ZeroExtend(x, 16)
	s.Assert(b.Eq(wide, b.ConstUint(0x00ab, 16)))
	if r := s.Check(); r != sat.Sat {
		t.Fatalf("Check = %v", r)
	}
	if got := s.ValueBV(x); got.Uint64() != 0xab {
		t.Errorf("x = %v", got)
	}
	// A zero-extended value can never have high bits set.
	if r := s.CheckAssuming(b.Eq(b.ZeroExtend(x, 16), b.ConstUint(0x1ab, 16))); r != sat.Unsat {
		t.Errorf("high bit on zext = %v", r)
	}
	// Truncate keeps low bits.
	y := b.BV("y", 16)
	s.Assert(b.Eq(y, b.ConstUint(0x12cd, 16)))
	s.Assert(b.Eq(b.Truncate(y, 8), b.ConstUint(0xcd, 8)))
	if r := s.Check(); r != sat.Sat {
		t.Fatalf("truncate: %v", r)
	}
	// Resize dispatches both ways; identity width returns the same term.
	if b.Resize(x, 8) != x {
		t.Error("Resize to same width is not identity")
	}
	if b.Resize(b.ConstUint(0x1ff, 9), 8).Const().Uint64() != 0xff {
		t.Error("const truncate fold")
	}
	if b.Resize(b.ConstUint(0xff, 8), 12).Const().Uint64() != 0xff {
		t.Error("const zext fold")
	}
	for name, f := range map[string]func(){
		"zext narrower": func() { b.ZeroExtend(y, 8) },
		"trunc wider":   func() { b.Truncate(x, 16) },
		"zext bool":     func() { b.ZeroExtend(b.True(), 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
