// Package oracle implements p4-fuzzer's P4Runtime oracle (§4.3): given a
// batch of updates, the switch's per-update statuses, and a read-back of
// the switch's state, it judges whether the observed behavior is
// admissible under the P4Runtime specification instantiated for the
// model.
//
// The oracle never predicts a single outcome. Under-specification (batch
// ordering, resource-limit rejections) admits many valid behaviors, so it
// checks membership in the valid set instead, and it re-reads the switch
// after every batch so only one starting state needs tracking.
package oracle

import (
	"fmt"
	"strings"

	"switchv/internal/coverage"
	"switchv/internal/p4/constraints"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
	"switchv/internal/p4rt"
)

// Verdict classifies the ground-truth validity of one update.
type Verdict int

// Verdicts.
const (
	// MustAccept: valid, applicable in the current state, within resource
	// guarantees — the switch has to accept.
	MustAccept Verdict = iota
	// MayReject: valid but the switch is allowed to reject it (e.g. an
	// insert beyond the table's guaranteed size).
	MayReject
	// MustReject: syntactically invalid, constraint-violating,
	// reference-violating, or inapplicable (duplicate insert, delete of a
	// missing entry).
	MustReject
)

func (v Verdict) String() string {
	switch v {
	case MustAccept:
		return "must-accept"
	case MayReject:
		return "may-reject"
	case MustReject:
		return "must-reject"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Violation is one admissibility failure.
type Violation struct {
	// UpdateIndex is the offending update's position in the batch, or -1
	// for state-level violations found in the read-back.
	UpdateIndex int
	Kind        string
	Message     string
}

func (v Violation) String() string {
	if v.UpdateIndex < 0 {
		return fmt.Sprintf("[state] %s: %s", v.Kind, v.Message)
	}
	return fmt.Sprintf("[update %d] %s: %s", v.UpdateIndex, v.Kind, v.Message)
}

// Oracle tracks the last observed switch state and judges batches.
type Oracle struct {
	info  *p4info.Info
	state *pdpi.Store
	cov   *coverage.Map

	// AllowUnavailable relaxes judgement for statuses with code
	// Unavailable: the transport layer (chaos-hardened campaigns) uses
	// that code to mean "this update's outcome is unknown or it was not
	// applied" after read-back reconciliation. Such updates are exempt
	// from rejected-valid/wrong-status-code checks and are not replayed
	// onto the expected state — the read-back check still holds because
	// reconciliation derives Unavailable only for entries absent from
	// the observed state.
	AllowUnavailable bool
}

// New returns an oracle starting from an empty switch.
func New(info *p4info.Info) *Oracle {
	return &Oracle{info: info, state: pdpi.NewStore()}
}

// SetCoverage attaches a coverage map; CheckBatch then accounts every
// update's (table, verdict, switch decision) cell into it, so campaigns
// can see which verdict outcomes each table has been tested under.
func (o *Oracle) SetCoverage(m *coverage.Map) { o.cov = m }

// State exposes the oracle's last observed switch state.
func (o *Oracle) State() *pdpi.Store { return o.state }

// Classify determines an update's ground-truth verdict against a given
// state: the format check of p4rt.FromWire, @entry_restriction compliance,
// @refers_to referential integrity, applicability, and resource
// guarantees.
func (o *Oracle) Classify(state *pdpi.Store, u *p4rt.Update) (Verdict, string) {
	return o.classify(state, buildRefIndex(o.info, state), u)
}

func (o *Oracle) classify(state *pdpi.Store, idx refIndex, u *p4rt.Update) (Verdict, string) {
	e, err := p4rt.FromWire(o.info, &u.Entry)
	if err != nil {
		return MustReject, fmt.Sprintf("syntactically invalid: %v", err)
	}
	ok, err := constraints.CheckEntry(e)
	if err != nil {
		return MustReject, fmt.Sprintf("constraint error: %v", err)
	}
	if !ok {
		return MustReject, fmt.Sprintf("violates @entry_restriction of %s", e.Table.Name)
	}
	if u.Type != p4rt.Delete {
		if msg, bad := o.danglingReference(state, e); bad {
			return MustReject, msg
		}
	}
	switch u.Type {
	case p4rt.Insert:
		if _, exists := state.Get(e); exists {
			return MustReject, "entry already exists"
		}
		if state.TableLen(e.Table.Name) >= e.Table.Size {
			return MayReject, "table beyond guaranteed size"
		}
		return MustAccept, ""
	case p4rt.Modify:
		if _, exists := state.Get(e); !exists {
			return MustReject, "modify of non-existent entry"
		}
		return MustAccept, ""
	case p4rt.Delete:
		if _, exists := state.Get(e); !exists {
			return MustReject, "delete of non-existent entry"
		}
		// Deleting an entry that other installed entries reference would
		// dangle their @refers_to values; referential integrity requires
		// rejection (§3 "P4-Constraints").
		if idx.breaksReferents(state, e) {
			return MustReject, "delete would dangle references"
		}
		return MustAccept, ""
	default:
		return MustReject, fmt.Sprintf("unknown update type %d", u.Type)
	}
}

// danglingReference checks that every @refers_to value of e resolves in
// state.
func (o *Oracle) danglingReference(state *pdpi.Store, e *pdpi.Entry) (string, bool) {
	check := func(ref *pRef, v refValue) (string, bool) {
		for _, target := range state.Entries(ref.table) {
			if m, ok := target.Match(ref.field); ok && m.Value.Equal(v.v) {
				return "", false
			}
		}
		return fmt.Sprintf("reference to %s.%s = %s does not resolve", ref.table, ref.field, v.v), true
	}
	for _, m := range e.Matches {
		k, ok := e.Table.KeyByName(m.Key)
		if !ok || k.RefersTo == nil {
			continue
		}
		if msg, bad := check(&pRef{k.RefersTo.Table, k.RefersTo.Field}, refValue{m.Value}); bad {
			return msg, true
		}
	}
	invs := []*pdpi.ActionInvocation{}
	if e.Action != nil {
		invs = append(invs, e.Action)
	}
	for i := range e.ActionSet {
		invs = append(invs, &e.ActionSet[i].ActionInvocation)
	}
	for _, inv := range invs {
		for i, p := range inv.Action.Params {
			if p.RefersTo == nil {
				continue
			}
			if msg, bad := check(&pRef{p.RefersTo.Table, p.RefersTo.Field}, refValue{inv.Args[i]}); bad {
				return msg, true
			}
		}
	}
	return "", false
}

type pRef struct{ table, field string }
type refValue struct{ v value.V }

// refIndex counts, for each (table, field, value) target, how many
// installed entries reference it via @refers_to; it makes the
// referential-integrity-on-delete check cheap per update.
type refIndex map[string]int

func refIndexKey(table, field string, v value.V) string {
	return table + "\x00" + field + "\x00" + v.String()
}

// buildRefIndex scans a state once.
func buildRefIndex(info *p4info.Info, state *pdpi.Store) refIndex {
	idx := refIndex{}
	for _, t := range info.Tables() {
		for _, installed := range state.Entries(t.Name) {
			for _, m := range installed.Matches {
				if k, ok := t.KeyByName(m.Key); ok && k.RefersTo != nil {
					idx[refIndexKey(k.RefersTo.Table, k.RefersTo.Field, m.Value)]++
				}
			}
			var invs []*pdpi.ActionInvocation
			if installed.Action != nil {
				invs = append(invs, installed.Action)
			}
			for i := range installed.ActionSet {
				invs = append(invs, &installed.ActionSet[i].ActionInvocation)
			}
			for _, inv := range invs {
				for i, p := range inv.Action.Params {
					if p.RefersTo != nil && i < len(inv.Args) {
						idx[refIndexKey(p.RefersTo.Table, p.RefersTo.Field, inv.Args[i])]++
					}
				}
			}
		}
	}
	return idx
}

// breaksReferents reports whether deleting e would dangle any installed
// reference: some entry references one of e's key values and no sibling of
// e carries that value.
func (idx refIndex) breaksReferents(state *pdpi.Store, e *pdpi.Entry) bool {
	stillCovered := func(field string, v value.V) bool {
		for _, sibling := range state.Entries(e.Table.Name) {
			if sibling.Key() == e.Key() {
				continue
			}
			if m, ok := sibling.Match(field); ok && m.Value.Equal(v) {
				return true
			}
		}
		return false
	}
	for _, m := range e.Matches {
		if idx[refIndexKey(e.Table.Name, m.Key, m.Value)] > 0 && !stillCovered(m.Key, m.Value) {
			return true
		}
	}
	return false
}

// BreaksReferents is the one-shot form used by conformance tests.
func BreaksReferents(info *p4info.Info, state *pdpi.Store, e *pdpi.Entry) bool {
	return buildRefIndex(info, state).breaksReferents(state, e)
}

// CheckBatch judges a batch: the response statuses against each update's
// verdict, and the read-back against the state implied by the statuses.
// On success (no violations) the oracle adopts the observed state as its
// new baseline and reports the per-update verdicts.
func (o *Oracle) CheckBatch(req p4rt.WriteRequest, resp p4rt.WriteResponse, observed p4rt.ReadResponse) ([]Verdict, []Violation) {
	var violations []Violation
	verdicts := make([]Verdict, len(req.Updates))

	if len(resp.Statuses) != len(req.Updates) {
		violations = append(violations, Violation{
			UpdateIndex: -1,
			Kind:        "response-shape",
			Message:     fmt.Sprintf("%d statuses for %d updates", len(resp.Statuses), len(req.Updates)),
		})
		return verdicts, violations
	}

	// Judge each update against the pre-batch state. Batches are
	// dependency-free (the fuzzer guarantees it), but two updates in one
	// batch may still target the same entry key; since the switch may
	// execute a batch in any order (§4 Example 2), verdicts for colliding
	// keys are downgraded to may-reject.
	keyCount := map[string]int{}
	insertsPerTable := map[string]int{}
	for i := range req.Updates {
		if e, err := p4rt.FromWire(o.info, &req.Updates[i].Entry); err == nil {
			keyCount[e.Key()]++
			if req.Updates[i].Type == p4rt.Insert {
				insertsPerTable[e.Table.Name]++
			}
		}
	}
	collides := func(u *p4rt.Update) bool {
		e, err := p4rt.FromWire(o.info, &u.Entry)
		return err == nil && keyCount[e.Key()] > 1
	}

	expected := o.state.Clone()
	idx := buildRefIndex(o.info, o.state)
	for i := range req.Updates {
		u := &req.Updates[i]
		verdict, why := o.classify(o.state, idx, u)
		if verdict != MustReject || isStateDependent(why) {
			// Syntactic/constraint invalidity is order-independent; only
			// state-dependent verdicts are affected by batch collisions.
			if collides(u) {
				verdict = MayReject
			}
		}
		// Several inserts into a near-full table may exceed capacity
		// depending on execution order; only guarantee acceptance when the
		// whole batch fits.
		if verdict == MustAccept && u.Type == p4rt.Insert {
			if e, err := p4rt.FromWire(o.info, &u.Entry); err == nil {
				if o.state.TableLen(e.Table.Name)+insertsPerTable[e.Table.Name] > e.Table.Size {
					verdict = MayReject
				}
			}
		}
		verdicts[i] = verdict
		accepted := resp.Statuses[i].Code == p4rt.OK
		if o.AllowUnavailable && resp.Statuses[i].Code == p4rt.Unavailable {
			// Outcome unknown / not applied (per reconciliation): record
			// the verdict and coverage, but judge nothing and replay
			// nothing for this update.
			if o.cov != nil {
				table := "?"
				if e, err := p4rt.FromWire(o.info, &u.Entry); err == nil {
					table = e.Table.Name
				}
				o.cov.NoteVerdictOutcome(table, verdict.String(), false)
			}
			continue
		}
		if o.cov != nil {
			table := "?" // undecodable updates have no table
			if e, err := p4rt.FromWire(o.info, &u.Entry); err == nil {
				table = e.Table.Name
			}
			o.cov.NoteVerdictOutcome(table, verdict.String(), accepted)
		}
		switch verdict {
		case MustReject:
			if accepted {
				violations = append(violations, Violation{
					UpdateIndex: i,
					Kind:        "accepted-invalid",
					Message:     fmt.Sprintf("switch accepted an update it must reject (%s)", why),
				})
			} else if want := expectedCode(why); want != p4rt.OK && resp.Statuses[i].Code != want {
				// The specification pins the status code for these
				// rejections (e.g. ALREADY_EXISTS for duplicate inserts).
				violations = append(violations, Violation{
					UpdateIndex: i,
					Kind:        "wrong-status-code",
					Message:     fmt.Sprintf("rejected (%s) with %s, want %s", why, resp.Statuses[i].Code, want),
				})
			}
		case MustAccept:
			if !accepted {
				violations = append(violations, Violation{
					UpdateIndex: i,
					Kind:        "rejected-valid",
					Message:     fmt.Sprintf("switch rejected a valid update with %s", resp.Statuses[i]),
				})
			}
		case MayReject:
			// Either response is admissible.
		}
		// Replay accepted updates onto the expected state.
		if accepted {
			if e, err := p4rt.FromWire(o.info, &u.Entry); err == nil {
				var applyErr error
				switch u.Type {
				case p4rt.Insert:
					applyErr = expected.Insert(e)
				case p4rt.Modify:
					applyErr = expected.Modify(e)
				case p4rt.Delete:
					applyErr = expected.Delete(e)
				}
				if applyErr != nil {
					violations = append(violations, Violation{
						UpdateIndex: i,
						Kind:        "inconsistent-acceptance",
						Message:     fmt.Sprintf("switch reported OK but the update cannot apply: %v", applyErr),
					})
				}
			}
		}
	}

	// Compare the read-back with the expected state.
	violations = append(violations, o.checkReadback(expected, observed)...)

	// Adopt the observed state as the new baseline (§4.3: "forget the
	// prior state"), regardless of violations, so one bad batch does not
	// cascade into noise.
	if adopted, ok := o.adoptObserved(observed); ok {
		o.state = adopted
	} else {
		o.state = expected
	}
	return verdicts, violations
}

// checkReadback verifies the observed entries decode cleanly (canonical
// bytestrings, §4's format rules apply to reads too) and match the
// expected state exactly.
func (o *Oracle) checkReadback(expected *pdpi.Store, observed p4rt.ReadResponse) []Violation {
	var violations []Violation
	seen := map[string]bool{}
	for i := range observed.Entries {
		e, err := p4rt.FromWire(o.info, &observed.Entries[i])
		if err != nil {
			violations = append(violations, Violation{
				UpdateIndex: -1,
				Kind:        "readback-format",
				Message:     fmt.Sprintf("read-back entry %d is malformed: %v", i, err),
			})
			continue
		}
		key := e.Key()
		if seen[key] {
			violations = append(violations, Violation{
				UpdateIndex: -1,
				Kind:        "readback-duplicate",
				Message:     "read returned the same entry twice: " + key,
			})
			continue
		}
		seen[key] = true
		want, ok := expected.Get(e)
		if !ok {
			violations = append(violations, Violation{
				UpdateIndex: -1,
				Kind:        "readback-extra",
				Message:     "switch has an entry it should not: " + key,
			})
			continue
		}
		if want.String() != e.String() {
			violations = append(violations, Violation{
				UpdateIndex: -1,
				Kind:        "readback-mismatch",
				Message:     fmt.Sprintf("entry differs: switch %s, expected %s", e, want),
			})
		}
	}
	for _, want := range expected.All(o.info.Program()) {
		if !seen[want.Key()] {
			violations = append(violations, Violation{
				UpdateIndex: -1,
				Kind:        "readback-missing",
				Message:     "switch lost entry: " + want.Key(),
			})
		}
	}
	return violations
}

// adoptObserved converts a read-back into a store; it fails if entries are
// malformed (the caller falls back to the expected state).
func (o *Oracle) adoptObserved(observed p4rt.ReadResponse) (*pdpi.Store, bool) {
	s := pdpi.NewStore()
	for i := range observed.Entries {
		e, err := p4rt.FromWire(o.info, &observed.Entries[i])
		if err != nil {
			return nil, false
		}
		if err := s.Insert(e); err != nil {
			return nil, false
		}
	}
	return s, true
}

// isStateDependent reports whether a must-reject reason depends on the
// switch's current entries (and is therefore sensitive to batch ordering).
func isStateDependent(why string) bool {
	switch {
	case strings.HasPrefix(why, "entry already exists"),
		strings.HasPrefix(why, "delete of non-existent"),
		strings.HasPrefix(why, "modify of non-existent"),
		strings.HasPrefix(why, "delete would dangle"),
		strings.Contains(why, "does not resolve"):
		return true
	}
	return false
}

// expectedCode pins the status code the specification requires for a
// rejection reason (OK = no specific code required).
func expectedCode(why string) p4rt.Code {
	switch {
	case strings.HasPrefix(why, "entry already exists"):
		return p4rt.AlreadyExists
	case strings.HasPrefix(why, "delete of non-existent"),
		strings.HasPrefix(why, "modify of non-existent"):
		return p4rt.NotFound
	default:
		return p4rt.OK
	}
}
