package oracle

import (
	"strings"
	"testing"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
	"switchv/internal/p4rt"
	"switchv/models"
)

func infoMB() *p4info.Info { return p4info.New(models.Middleblock()) }

func vrfInsert(info *p4info.Info, id byte) p4rt.Update {
	vrf, _ := info.TableByName("vrf_table")
	return p4rt.Update{Type: p4rt.Insert, Entry: p4rt.TableEntry{
		TableID: vrf.ID,
		Match:   []p4rt.FieldMatch{{FieldID: 1, Exact: &p4rt.ExactMatch{Value: []byte{id}}}},
		Action:  p4rt.TableAction{Action: &p4rt.Action{ActionID: info.Program().NoAction.ID}},
	}}
}

func wire(u p4rt.Update, typ p4rt.UpdateType) p4rt.Update {
	u.Type = typ
	return u
}

func TestClassify(t *testing.T) {
	info := infoMB()
	o := New(info)

	// Valid insert into empty state.
	ins := vrfInsert(info, 5)
	v, why := o.Classify(o.State(), &ins)
	if v != MustAccept {
		t.Errorf("insert: %v (%s)", v, why)
	}

	// Constraint violation (vrf 0).
	bad := vrfInsert(info, 0)
	v, why = o.Classify(o.State(), &bad)
	if v != MustReject || !strings.Contains(why, "entry_restriction") {
		t.Errorf("vrf 0: %v (%s)", v, why)
	}

	// Delete of a missing entry.
	del := wire(vrfInsert(info, 5), p4rt.Delete)
	v, why = o.Classify(o.State(), &del)
	if v != MustReject || !strings.Contains(why, "non-existent") {
		t.Errorf("delete missing: %v (%s)", v, why)
	}

	// Syntactically broken update.
	broken := p4rt.Update{Type: p4rt.Insert, Entry: p4rt.TableEntry{TableID: 0xbad}}
	v, _ = o.Classify(o.State(), &broken)
	if v != MustReject {
		t.Errorf("broken: %v", v)
	}

	// Insert into an installed state: duplicate must be rejected.
	e, err := p4rt.FromWire(info, &ins.Entry)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.State().Insert(e); err != nil {
		t.Fatal(err)
	}
	v, why = o.Classify(o.State(), &ins)
	if v != MustReject || why != "entry already exists" {
		t.Errorf("duplicate: %v (%s)", v, why)
	}
	// ... and now the delete is a must-accept.
	v, _ = o.Classify(o.State(), &del)
	if v != MustAccept {
		t.Errorf("delete existing: %v", v)
	}
}

func TestClassifyResourceLimit(t *testing.T) {
	info := infoMB()
	o := New(info)
	vrf, _ := info.TableByName("vrf_table")
	// Fill the table to its guaranteed size.
	for i := 1; i <= vrf.Size; i++ {
		e := &pdpi.Entry{
			Table:   vrf,
			Matches: []pdpi.Match{{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(uint64(i), 10)}},
			Action:  &pdpi.ActionInvocation{Action: info.Program().NoAction},
		}
		if err := o.State().Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	over := vrfInsert(info, 200)
	v, why := o.Classify(o.State(), &over)
	if v != MayReject || !strings.Contains(why, "guaranteed size") {
		t.Errorf("over capacity: %v (%s)", v, why)
	}
}

func TestClassifyReferentialIntegrity(t *testing.T) {
	prog := models.Middleblock()
	info := p4info.New(prog)
	o := New(info)
	vrfT, _ := info.TableByName("vrf_table")
	ipv4T, _ := info.TableByName("ipv4_table")
	setNH, _ := info.ActionByName("set_nexthop_id")
	nhT, _ := info.TableByName("nexthop_table")
	setNexthop, _ := info.ActionByName("set_nexthop")

	// Route referencing VRF 9 before VRF 9 exists: must reject.
	route := p4rt.Update{Type: p4rt.Insert, Entry: p4rt.TableEntry{
		TableID: ipv4T.ID,
		Match: []p4rt.FieldMatch{
			{FieldID: 1, Exact: &p4rt.ExactMatch{Value: []byte{9}}},
			{FieldID: 2, LPM: &p4rt.LPMMatch{Value: []byte{10, 0, 0, 0}, PrefixLen: 8}},
		},
		Action: p4rt.TableAction{Action: &p4rt.Action{
			ActionID: setNH.ID,
			Params:   []p4rt.ActionParam{{ParamID: 1, Value: []byte{7}}},
		}},
	}}
	v, why := o.Classify(o.State(), &route)
	if v != MustReject || !strings.Contains(why, "does not resolve") {
		t.Errorf("dangling route: %v (%s)", v, why)
	}

	// Install VRF 9 and nexthop 7; the route becomes valid.
	o.State().Insert(&pdpi.Entry{
		Table:   vrfT,
		Matches: []pdpi.Match{{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(9, 10)}},
		Action:  &pdpi.ActionInvocation{Action: prog.NoAction},
	})
	o.State().Insert(&pdpi.Entry{
		Table:   nhT,
		Matches: []pdpi.Match{{Key: "nexthop_id", Kind: ir.MatchExact, Value: value.New(7, 10)}},
		Action: &pdpi.ActionInvocation{Action: setNexthop,
			Args: []value.V{value.New(1, 10), value.New(1, 10)}},
	})
	v, why = o.Classify(o.State(), &route)
	if v != MustAccept {
		t.Errorf("resolved route: %v (%s)", v, why)
	}

	// Now deleting the VRF would dangle the route (once installed).
	e, _ := p4rt.FromWire(info, &route.Entry)
	o.State().Insert(e)
	delVRF := p4rt.Update{Type: p4rt.Delete, Entry: p4rt.TableEntry{
		TableID: vrfT.ID,
		Match:   []p4rt.FieldMatch{{FieldID: 1, Exact: &p4rt.ExactMatch{Value: []byte{9}}}},
		Action:  p4rt.TableAction{Action: &p4rt.Action{ActionID: prog.NoAction.ID}},
	}}
	v, why = o.Classify(o.State(), &delVRF)
	if v != MustReject || !strings.Contains(why, "dangle") {
		t.Errorf("delete referenced vrf: %v (%s)", v, why)
	}
}

func TestCheckBatchStatuses(t *testing.T) {
	info := infoMB()
	o := New(info)
	ins := vrfInsert(info, 3)
	req := p4rt.WriteRequest{Updates: []p4rt.Update{ins}}

	// Accepted and present in the read-back: clean.
	e, _ := p4rt.FromWire(info, &ins.Entry)
	observed := p4rt.ReadResponse{Entries: []p4rt.TableEntry{p4rt.ToWire(e)}}
	verdicts, violations := o.CheckBatch(req, p4rt.WriteResponse{Statuses: []p4rt.Status{{}}}, observed)
	if len(violations) != 0 {
		t.Fatalf("violations: %v", violations)
	}
	if verdicts[0] != MustAccept {
		t.Errorf("verdict: %v", verdicts[0])
	}
	if o.State().Len() != 1 {
		t.Errorf("state not adopted: %d entries", o.State().Len())
	}

	// Rejecting a must-accept is a violation.
	o2 := New(info)
	_, violations = o2.CheckBatch(req,
		p4rt.WriteResponse{Statuses: []p4rt.Status{p4rt.Statusf(p4rt.Internal, "nope")}},
		p4rt.ReadResponse{})
	if len(violations) != 1 || violations[0].Kind != "rejected-valid" {
		t.Fatalf("violations: %v", violations)
	}

	// Accepting a must-reject is a violation.
	o3 := New(info)
	badReq := p4rt.WriteRequest{Updates: []p4rt.Update{vrfInsert(info, 0)}}
	badE, err := p4rt.FromWire(info, &badReq.Updates[0].Entry)
	if err != nil {
		t.Fatal(err)
	}
	_, violations = o3.CheckBatch(badReq,
		p4rt.WriteResponse{Statuses: []p4rt.Status{{}}},
		p4rt.ReadResponse{Entries: []p4rt.TableEntry{p4rt.ToWire(badE)}})
	found := false
	for _, v := range violations {
		if v.Kind == "accepted-invalid" {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations: %v", violations)
	}

	// Wrong status code for a duplicate.
	o4 := New(info)
	e4, _ := p4rt.FromWire(info, &ins.Entry)
	o4.State().Insert(e4)
	_, violations = o4.CheckBatch(req,
		p4rt.WriteResponse{Statuses: []p4rt.Status{p4rt.Statusf(p4rt.InvalidArgument, "dup")}},
		p4rt.ReadResponse{Entries: []p4rt.TableEntry{p4rt.ToWire(e4)}})
	found = false
	for _, v := range violations {
		if v.Kind == "wrong-status-code" && strings.Contains(v.Message, "ALREADY_EXISTS") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations: %v", violations)
	}

	// Response shape mismatch.
	o5 := New(info)
	_, violations = o5.CheckBatch(req, p4rt.WriteResponse{}, p4rt.ReadResponse{})
	if len(violations) != 1 || violations[0].Kind != "response-shape" {
		t.Fatalf("violations: %v", violations)
	}
}

func TestCheckBatchReadback(t *testing.T) {
	info := infoMB()
	ins := vrfInsert(info, 3)
	req := p4rt.WriteRequest{Updates: []p4rt.Update{ins}}
	okResp := p4rt.WriteResponse{Statuses: []p4rt.Status{{}}}

	// Accepted but missing from the read-back.
	o := New(info)
	_, violations := o.CheckBatch(req, okResp, p4rt.ReadResponse{})
	if len(violations) != 1 || violations[0].Kind != "readback-missing" {
		t.Fatalf("violations: %v", violations)
	}

	// Extra entry in the read-back.
	o2 := New(info)
	extra9 := vrfInsert(info, 9)
	extra, _ := p4rt.FromWire(info, &extra9.Entry)
	e, _ := p4rt.FromWire(info, &ins.Entry)
	_, violations = o2.CheckBatch(req, okResp, p4rt.ReadResponse{
		Entries: []p4rt.TableEntry{p4rt.ToWire(e), p4rt.ToWire(extra)},
	})
	if len(violations) != 1 || violations[0].Kind != "readback-extra" {
		t.Fatalf("violations: %v", violations)
	}

	// Same entry returned twice.
	o3 := New(info)
	_, violations = o3.CheckBatch(req, okResp, p4rt.ReadResponse{
		Entries: []p4rt.TableEntry{p4rt.ToWire(e), p4rt.ToWire(e)},
	})
	if len(violations) != 1 || violations[0].Kind != "readback-duplicate" {
		t.Fatalf("violations: %v", violations)
	}

	// Non-canonical bytes in the read-back.
	o4 := New(info)
	mangled := p4rt.ToWire(e)
	mangled.Match[0].Exact.Value = []byte{0, 3}
	_, violations = o4.CheckBatch(req, okResp, p4rt.ReadResponse{
		Entries: []p4rt.TableEntry{mangled},
	})
	foundFormat := false
	for _, v := range violations {
		if v.Kind == "readback-format" {
			foundFormat = true
		}
	}
	if !foundFormat {
		t.Fatalf("violations: %v", violations)
	}

	// Entry with a different action than installed.
	o5 := New(info)
	ipv4, _ := info.TableByName("ipv4_table")
	drop, _ := info.ActionByName("drop")
	setNH, _ := info.ActionByName("set_nexthop_id")
	nhT, _ := info.TableByName("nexthop_table")
	setNexthop, _ := info.ActionByName("set_nexthop")
	o5.State().Insert(&pdpi.Entry{
		Table:   nhT,
		Matches: []pdpi.Match{{Key: "nexthop_id", Kind: ir.MatchExact, Value: value.New(1, 10)}},
		Action:  &pdpi.ActionInvocation{Action: setNexthop, Args: []value.V{value.New(1, 10), value.New(1, 10)}},
	})
	vrf1 := vrfInsert(info, 1)
	vrfE, _ := p4rt.FromWire(info, &vrf1.Entry)
	o5.State().Insert(vrfE)
	routeReq := p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert, Entry: p4rt.TableEntry{
		TableID: ipv4.ID,
		Match: []p4rt.FieldMatch{
			{FieldID: 1, Exact: &p4rt.ExactMatch{Value: []byte{1}}},
			{FieldID: 2, LPM: &p4rt.LPMMatch{Value: []byte{10, 0, 0, 0}, PrefixLen: 8}},
		},
		Action: p4rt.TableAction{Action: &p4rt.Action{
			ActionID: setNH.ID,
			Params:   []p4rt.ActionParam{{ParamID: 1, Value: []byte{1}}},
		}},
	}}}}
	// Switch claims OK but the read-back shows a different action (drop).
	lied := routeReq.Updates[0].Entry
	lied.Action = p4rt.TableAction{Action: &p4rt.Action{ActionID: drop.ID}}
	pre := o5.State().Clone()
	_ = pre
	nhWire := o5StateNh(info)
	mustFromWire(t, info, &nhWire)
	_, violations = o5.CheckBatch(routeReq, okResp, p4rt.ReadResponse{
		Entries: []p4rt.TableEntry{p4rt.ToWire(vrfE), nhWire, lied},
	})
	foundMismatch := false
	for _, v := range violations {
		if v.Kind == "readback-mismatch" {
			foundMismatch = true
		}
	}
	if !foundMismatch {
		t.Fatalf("violations: %v", violations)
	}
}

func o5StateNh(info *p4info.Info) p4rt.TableEntry {
	nhT, _ := info.TableByName("nexthop_table")
	setNexthop, _ := info.ActionByName("set_nexthop")
	return p4rt.TableEntry{
		TableID: nhT.ID,
		Match:   []p4rt.FieldMatch{{FieldID: 1, Exact: &p4rt.ExactMatch{Value: []byte{1}}}},
		Action: p4rt.TableAction{Action: &p4rt.Action{
			ActionID: setNexthop.ID,
			Params: []p4rt.ActionParam{
				{ParamID: 1, Value: []byte{1}},
				{ParamID: 2, Value: []byte{1}},
			},
		}},
	}
}

func mustFromWire(t *testing.T, info *p4info.Info, te *p4rt.TableEntry) {
	t.Helper()
	if _, err := p4rt.FromWire(info, te); err != nil {
		t.Fatal(err)
	}
}

func TestBatchCollisionsAreMayReject(t *testing.T) {
	info := infoMB()
	o := New(info)
	ins4 := vrfInsert(info, 4)
	e, _ := p4rt.FromWire(info, &ins4.Entry)
	o.State().Insert(e)

	// delete + re-insert of the same key in one batch: both orders are
	// admissible, so any accept/reject combination the switch reports
	// (consistently with the read-back) passes.
	req := p4rt.WriteRequest{Updates: []p4rt.Update{
		wire(vrfInsert(info, 4), p4rt.Delete),
		vrfInsert(info, 4),
	}}
	verdicts, violations := o.CheckBatch(req,
		p4rt.WriteResponse{Statuses: []p4rt.Status{{}, {}}},
		p4rt.ReadResponse{Entries: []p4rt.TableEntry{p4rt.ToWire(e)}})
	if len(violations) != 0 {
		t.Fatalf("violations: %v", violations)
	}
	for i, v := range verdicts {
		if v != MayReject {
			t.Errorf("verdict %d = %v, want may-reject", i, v)
		}
	}
}

// TestBatchOrderNonDeterminism drives CheckBatch through every admissible
// execution order of batches that insert and delete the same key: the
// P4Runtime spec lets the switch apply a batch in any order (§4 Example 2),
// so any status combination consistent with *some* order — and a read-back
// matching it — must pass with zero violations. Only behaviors consistent
// with *no* order are flagged.
func TestBatchOrderNonDeterminism(t *testing.T) {
	info := infoMB()
	ok := p4rt.Status{}
	entry := func(id byte) p4rt.TableEntry {
		u := vrfInsert(info, id)
		e, err := p4rt.FromWire(info, &u.Entry)
		if err != nil {
			t.Fatal(err)
		}
		return p4rt.ToWire(e)
	}

	cases := []struct {
		name       string
		preInstall []byte // vrf ids present before the batch
		updates    []p4rt.Update
		statuses   []p4rt.Status
		readback   []p4rt.TableEntry
		wantClean  bool
	}{
		{
			name:       "delete+insert, delete-first order",
			preInstall: []byte{4},
			updates:    []p4rt.Update{wire(vrfInsert(info, 4), p4rt.Delete), vrfInsert(info, 4)},
			statuses:   []p4rt.Status{ok, ok},
			readback:   []p4rt.TableEntry{entry(4)},
			wantClean:  true,
		},
		{
			name:       "delete+insert, insert-first order",
			preInstall: []byte{4},
			updates:    []p4rt.Update{wire(vrfInsert(info, 4), p4rt.Delete), vrfInsert(info, 4)},
			statuses:   []p4rt.Status{ok, p4rt.Statusf(p4rt.AlreadyExists, "dup")},
			readback:   nil, // delete applied, insert rejected
			wantClean:  true,
		},
		{
			name:      "insert+delete of a fresh key, insert-first order",
			updates:   []p4rt.Update{vrfInsert(info, 5), wire(vrfInsert(info, 5), p4rt.Delete)},
			statuses:  []p4rt.Status{ok, ok},
			readback:  nil,
			wantClean: true,
		},
		{
			name:      "insert+delete of a fresh key, delete-first order",
			updates:   []p4rt.Update{vrfInsert(info, 5), wire(vrfInsert(info, 5), p4rt.Delete)},
			statuses:  []p4rt.Status{ok, p4rt.Statusf(p4rt.NotFound, "missing")},
			readback:  []p4rt.TableEntry{entry(5)},
			wantClean: true,
		},
		{
			name:       "modify+delete, modify-first order",
			preInstall: []byte{6},
			updates:    []p4rt.Update{wire(vrfInsert(info, 6), p4rt.Modify), wire(vrfInsert(info, 6), p4rt.Delete)},
			statuses:   []p4rt.Status{ok, ok},
			readback:   nil,
			wantClean:  true,
		},
		{
			name:       "modify+delete, delete-first order",
			preInstall: []byte{6},
			updates:    []p4rt.Update{wire(vrfInsert(info, 6), p4rt.Modify), wire(vrfInsert(info, 6), p4rt.Delete)},
			statuses:   []p4rt.Status{p4rt.Statusf(p4rt.NotFound, "gone"), ok},
			readback:   nil,
			wantClean:  true,
		},
		{
			// Both accepted implies the entry survives (delete-then-insert
			// is the only all-OK order); an empty read-back matches no order.
			name:       "delete+insert, all accepted but entry lost",
			preInstall: []byte{4},
			updates:    []p4rt.Update{wire(vrfInsert(info, 4), p4rt.Delete), vrfInsert(info, 4)},
			statuses:   []p4rt.Status{ok, ok},
			readback:   nil,
			wantClean:  false,
		},
		{
			// Rejecting every update of the colliding pair leaves the
			// pre-installed entry; losing it anyway is a violation.
			name:       "delete+insert, all rejected but entry gone",
			preInstall: []byte{4},
			updates:    []p4rt.Update{wire(vrfInsert(info, 4), p4rt.Delete), vrfInsert(info, 4)},
			statuses:   []p4rt.Status{p4rt.Statusf(p4rt.Internal, "x"), p4rt.Statusf(p4rt.Internal, "x")},
			readback:   nil,
			wantClean:  false,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := New(info)
			for _, id := range tc.preInstall {
				u := vrfInsert(info, id)
				e, err := p4rt.FromWire(info, &u.Entry)
				if err != nil {
					t.Fatal(err)
				}
				if err := o.State().Insert(e); err != nil {
					t.Fatal(err)
				}
			}
			verdicts, violations := o.CheckBatch(
				p4rt.WriteRequest{Updates: tc.updates},
				p4rt.WriteResponse{Statuses: tc.statuses},
				p4rt.ReadResponse{Entries: tc.readback})
			if tc.wantClean && len(violations) != 0 {
				t.Fatalf("violations: %v", violations)
			}
			if !tc.wantClean && len(violations) == 0 {
				t.Fatalf("expected violations, got none (verdicts %v)", verdicts)
			}
			// Colliding state-dependent updates are never must-accept or
			// must-reject: both orders must stay admissible.
			for i, v := range verdicts {
				if v != MayReject {
					t.Errorf("verdict %d = %v, want may-reject", i, v)
				}
			}
		})
	}
}

func TestVerdictStrings(t *testing.T) {
	if MustAccept.String() != "must-accept" || MayReject.String() != "may-reject" || MustReject.String() != "must-reject" {
		t.Error("verdict strings")
	}
	v := Violation{UpdateIndex: -1, Kind: "k", Message: "m"}
	if !strings.Contains(v.String(), "[state]") {
		t.Errorf("violation string: %s", v)
	}
	v.UpdateIndex = 3
	if !strings.Contains(v.String(), "update 3") {
		t.Errorf("violation string: %s", v)
	}
}
