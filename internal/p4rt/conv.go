package p4rt

import (
	"switchv/internal/p4/ir"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
)

// FromWire translates a wire-level table entry into the semantic PDPI
// representation, performing the full syntactic validation of §4: IDs must
// resolve, match kinds must agree with the schema, values must be
// canonical and in range, mandatory fields must be present exactly once,
// the priority discipline must hold, and the action shape must fit the
// table. Violations return a *StatusError with INVALID_ARGUMENT (or
// NOT_FOUND for unknown IDs), mirroring how a conformant P4Runtime server
// must reject the request.
func FromWire(info *p4info.Info, te *TableEntry) (*pdpi.Entry, error) {
	t, ok := info.TableByID(te.TableID)
	if !ok {
		return nil, Statusf(NotFound, "unknown table id %#x", te.TableID).Err()
	}
	e := &pdpi.Entry{Table: t, Priority: te.Priority}
	seen := map[uint32]bool{}
	for i := range te.Match {
		fm := &te.Match[i]
		if seen[fm.FieldID] {
			return nil, Statusf(InvalidArgument, "table %s: duplicate match on field id %d", t.Name, fm.FieldID).Err()
		}
		seen[fm.FieldID] = true
		k, ok := info.MatchFieldByID(t, int(fm.FieldID))
		if !ok {
			return nil, Statusf(NotFound, "table %s: unknown match field id %d", t.Name, fm.FieldID).Err()
		}
		if n := fm.KindCount(); n != 1 {
			return nil, Statusf(InvalidArgument, "table %s field %s: %d match kinds populated", t.Name, k.Name, n).Err()
		}
		m := pdpi.Match{Key: k.Name, Kind: k.Match}
		w := k.Field.Width
		var err error
		switch {
		case fm.Exact != nil:
			if k.Match != ir.MatchExact {
				return nil, Statusf(InvalidArgument, "table %s field %s: exact match on %s key", t.Name, k.Name, k.Match).Err()
			}
			m.Value, err = DecodeValue(fm.Exact.Value, w)
		case fm.LPM != nil:
			if k.Match != ir.MatchLPM {
				return nil, Statusf(InvalidArgument, "table %s field %s: lpm match on %s key", t.Name, k.Name, k.Match).Err()
			}
			m.Value, err = DecodeValue(fm.LPM.Value, w)
			m.PrefixLen = int(fm.LPM.PrefixLen)
		case fm.Ternary != nil:
			if k.Match != ir.MatchTernary {
				return nil, Statusf(InvalidArgument, "table %s field %s: ternary match on %s key", t.Name, k.Name, k.Match).Err()
			}
			m.Value, err = DecodeValue(fm.Ternary.Value, w)
			if err == nil {
				m.Mask, err = DecodeValue(fm.Ternary.Mask, w)
			}
		case fm.Optional != nil:
			if k.Match != ir.MatchOptional {
				return nil, Statusf(InvalidArgument, "table %s field %s: optional match on %s key", t.Name, k.Name, k.Match).Err()
			}
			m.Value, err = DecodeValue(fm.Optional.Value, w)
		}
		if err != nil {
			return nil, Statusf(InvalidArgument, "table %s field %s: %v", t.Name, k.Name, err).Err()
		}
		e.Matches = append(e.Matches, m)
	}

	switch {
	case te.Action.Action != nil:
		inv, err := invocationFromWire(info, t, te.Action.Action)
		if err != nil {
			return nil, err
		}
		e.Action = inv
	case te.Action.HasActionSet || len(te.Action.ActionSet) > 0:
		for _, pa := range te.Action.ActionSet {
			inv, err := invocationFromWire(info, t, &pa.Action)
			if err != nil {
				return nil, err
			}
			e.ActionSet = append(e.ActionSet, pdpi.WeightedAction{ActionInvocation: *inv, Weight: int(pa.Weight)})
		}
	}

	if err := e.Validate(); err != nil {
		return nil, Statusf(InvalidArgument, "%v", err).Err()
	}
	return e, nil
}

func invocationFromWire(info *p4info.Info, t *ir.Table, a *Action) (*pdpi.ActionInvocation, error) {
	act, ok := info.ActionByID(a.ActionID)
	if !ok {
		return nil, Statusf(NotFound, "unknown action id %#x", a.ActionID).Err()
	}
	inv := &pdpi.ActionInvocation{Action: act}
	if len(a.Params) != len(act.Params) {
		return nil, Statusf(InvalidArgument, "action %s takes %d params, got %d", act.Name, len(act.Params), len(a.Params)).Err()
	}
	// Params may arrive in any order; place them by id.
	inv.Args = make([]value.V, len(act.Params))
	seen := map[uint32]bool{}
	for _, p := range a.Params {
		if seen[p.ParamID] {
			return nil, Statusf(InvalidArgument, "action %s: duplicate param id %d", act.Name, p.ParamID).Err()
		}
		seen[p.ParamID] = true
		ap, ok := info.ParamByID(act, int(p.ParamID))
		if !ok {
			return nil, Statusf(NotFound, "action %s: unknown param id %d", act.Name, p.ParamID).Err()
		}
		v, err := DecodeValue(p.Value, ap.Width)
		if err != nil {
			return nil, Statusf(InvalidArgument, "action %s param %s: %v", act.Name, ap.Name, err).Err()
		}
		inv.Args[p.ParamID-1] = v
	}
	return inv, nil
}

// ToWire translates a semantic entry into its wire representation with
// canonical byte strings.
func ToWire(e *pdpi.Entry) TableEntry {
	te := TableEntry{TableID: e.Table.ID, Priority: e.Priority}
	for _, m := range e.Matches {
		k, _ := e.Table.KeyByName(m.Key)
		fm := FieldMatch{FieldID: uint32(k.Index)}
		switch m.Kind {
		case ir.MatchExact:
			fm.Exact = &ExactMatch{Value: EncodeValue(m.Value)}
		case ir.MatchLPM:
			fm.LPM = &LPMMatch{Value: EncodeValue(m.Value), PrefixLen: int32(m.PrefixLen)}
		case ir.MatchTernary:
			fm.Ternary = &TernaryMatch{Value: EncodeValue(m.Value), Mask: EncodeValue(m.Mask)}
		case ir.MatchOptional:
			fm.Optional = &OptionalMatch{Value: EncodeValue(m.Value)}
		}
		te.Match = append(te.Match, fm)
	}
	switch {
	case e.Action != nil:
		a := invocationToWire(e.Action)
		te.Action.Action = &a
	case len(e.ActionSet) > 0:
		te.Action.HasActionSet = true
		for _, wa := range e.ActionSet {
			te.Action.ActionSet = append(te.Action.ActionSet, ActionProfileAction{
				Action: invocationToWire(&wa.ActionInvocation),
				Weight: int32(wa.Weight),
			})
		}
	}
	return te
}

func invocationToWire(inv *pdpi.ActionInvocation) Action {
	a := Action{ActionID: inv.Action.ID}
	for i, arg := range inv.Args {
		a.Params = append(a.Params, ActionParam{ParamID: uint32(i + 1), Value: EncodeValue(arg)})
	}
	return a
}
