// Package p4rt implements the P4Runtime protocol surface that SwitchV
// exercises: the Write/Read/SetForwardingPipelineConfig RPCs, the
// packet-in/packet-out stream, canonical bytestring encoding, and a
// binary framing over TCP (substituting for gRPC+protobuf; the protocol
// semantics — message vocabulary, status codes, batch behavior,
// under-specification — match the P4Runtime specification).
package p4rt

import "fmt"

// Code is a gRPC-style canonical status code, as used by the P4Runtime
// specification to report per-update outcomes.
type Code int

// Canonical status codes.
const (
	OK Code = iota
	Cancelled
	Unknown
	InvalidArgument
	DeadlineExceeded
	NotFound
	AlreadyExists
	PermissionDenied
	ResourceExhausted
	FailedPrecondition
	Aborted
	OutOfRange
	Unimplemented
	Internal
	Unavailable
	DataLoss
	Unauthenticated
)

var codeNames = map[Code]string{
	OK: "OK", Cancelled: "CANCELLED", Unknown: "UNKNOWN",
	InvalidArgument: "INVALID_ARGUMENT", DeadlineExceeded: "DEADLINE_EXCEEDED",
	NotFound: "NOT_FOUND", AlreadyExists: "ALREADY_EXISTS",
	PermissionDenied: "PERMISSION_DENIED", ResourceExhausted: "RESOURCE_EXHAUSTED",
	FailedPrecondition: "FAILED_PRECONDITION", Aborted: "ABORTED",
	OutOfRange: "OUT_OF_RANGE", Unimplemented: "UNIMPLEMENTED",
	Internal: "INTERNAL", Unavailable: "UNAVAILABLE", DataLoss: "DATA_LOSS",
	Unauthenticated: "UNAUTHENTICATED",
}

func (c Code) String() string {
	if s, ok := codeNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Code(%d)", int(c))
}

// Status is a per-update or per-RPC outcome.
type Status struct {
	Code    Code
	Message string
}

// OKStatus is the zero-value success status.
var OKStatus = Status{}

// Statusf builds a Status with a formatted message.
func Statusf(code Code, format string, args ...any) Status {
	return Status{Code: code, Message: fmt.Sprintf(format, args...)}
}

// Err converts a non-OK status into an error (nil for OK).
func (s Status) Err() error {
	if s.Code == OK {
		return nil
	}
	return &StatusError{Status: s}
}

func (s Status) String() string {
	if s.Code == OK {
		return "OK"
	}
	return fmt.Sprintf("%s: %s", s.Code, s.Message)
}

// StatusError wraps a Status as an error.
type StatusError struct{ Status Status }

func (e *StatusError) Error() string { return "p4rt: " + e.Status.String() }

// StatusFromError extracts a Status from an error produced by Err, or
// wraps an arbitrary error as UNKNOWN.
func StatusFromError(err error) Status {
	if err == nil {
		return OKStatus
	}
	if se, ok := err.(*StatusError); ok {
		return se.Status
	}
	return Status{Code: Unknown, Message: err.Error()}
}
