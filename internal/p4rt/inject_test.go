package p4rt_test

import (
	"testing"

	"switchv/internal/p4/p4info"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4rt"
	"switchv/internal/switchsim"
	"switchv/internal/testutil"
	"switchv/models"
)

// TestInjectOverTCP exercises the data-plane extension end to end: a
// simulated switch behind the TCP server, frames injected through the
// client.
func TestInjectOverTCP(t *testing.T) {
	sw := switchsim.New("middleblock")
	defer sw.Close()
	info := p4info.New(models.Middleblock())
	if err := sw.SetForwardingPipelineConfig(p4rt.ForwardingPipelineConfig{P4Info: info.Text()}); err != nil {
		t.Fatal(err)
	}
	store := pdpi.NewStore()
	testutil.RoutingFixture(info.Program(), store)
	for _, e := range testutil.InstallOrder(info, store) {
		if resp := sw.Write(p4rt.WriteRequest{Updates: []p4rt.Update{{Type: p4rt.Insert, Entry: p4rt.ToWire(e)}}}); !resp.OK() {
			t.Fatalf("install: %s", resp.String())
		}
	}

	srv := p4rt.NewServer(sw, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := p4rt.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	res, err := cli.InjectFrame(p4rt.InjectRequest{Port: 1, Frame: testutil.IPv4UDP("10.1.2.3", 64, 2000)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped || res.Punted || res.EgressPort != 11 {
		t.Errorf("result = %+v", res)
	}
	if len(res.Frame) == 0 {
		t.Error("no output frame")
	}

	// A punted packet round-trips too.
	res, err = cli.InjectFrame(p4rt.InjectRequest{Port: 1, Frame: testutil.IPv4UDP("10.1.2.3", 1, 2000)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Punted {
		t.Errorf("TTL-1 result = %+v, want punt", res)
	}
}

// TestInjectUnsupportedDevice: the server reports UNIMPLEMENTED for devices
// without a data plane.
func TestInjectUnsupportedDevice(t *testing.T) {
	dev := &cpOnlyDevice{packetIns: make(chan p4rt.PacketIn)}
	defer close(dev.packetIns)
	srv := p4rt.NewServer(dev, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := p4rt.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.InjectFrame(p4rt.InjectRequest{Port: 1, Frame: []byte{1}}); err == nil {
		t.Error("inject on a control-plane-only device succeeded")
	}
}

type cpOnlyDevice struct{ packetIns chan p4rt.PacketIn }

func (d *cpOnlyDevice) SetForwardingPipelineConfig(p4rt.ForwardingPipelineConfig) error { return nil }
func (d *cpOnlyDevice) Write(req p4rt.WriteRequest) p4rt.WriteResponse {
	return p4rt.WriteResponse{Statuses: make([]p4rt.Status, len(req.Updates))}
}
func (d *cpOnlyDevice) Read(p4rt.ReadRequest) (p4rt.ReadResponse, error) {
	return p4rt.ReadResponse{}, nil
}
func (d *cpOnlyDevice) PacketOut(p4rt.PacketOut) error  { return nil }
func (d *cpOnlyDevice) PacketIns() <-chan p4rt.PacketIn { return d.packetIns }
