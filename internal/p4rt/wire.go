package p4rt

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame layout: u32 payload length | u8 kind | u64 request id | payload.
// Request ids pair responses with requests; pushes (packet-in) use id 0.

type msgKind uint8

const (
	kindSetPipeline msgKind = 1
	kindWrite       msgKind = 2
	kindRead        msgKind = 3
	kindPacketOut   msgKind = 4
	kindPacketIn    msgKind = 5
	kindResponse    msgKind = 6
	// kindInject (7) lives in dataplane.go.

	// kindHello announces a client transport session: the id field
	// carries the client's session id and there is no response. The
	// server keys its response replay cache on (session, request id) so
	// an in-RPC retry after a reconnect deduplicates against work the
	// previous connection already applied.
	kindHello msgKind = 8
)

// kindFlagRetry marks a request frame as a re-send of an earlier frame
// with the same id: the server may serve it from its replay cache
// instead of executing the request a second time. It is a flag bit on
// the kind byte, not a kind of its own.
const kindFlagRetry msgKind = 0x80

const maxFrameSize = 64 << 20 // 64 MiB guards against corrupt length prefixes

type frame struct {
	kind    msgKind
	id      uint64
	payload []byte
}

func writeFrame(w io.Writer, f frame) error {
	hdr := make([]byte, 4+1+8)
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(f.payload)))
	hdr[4] = byte(f.kind)
	binary.BigEndian.PutUint64(hdr[5:13], f.id)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(f.payload)
	return err
}

func readFrame(r io.Reader) (frame, error) {
	hdr := make([]byte, 4+1+8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > maxFrameSize {
		return frame{}, fmt.Errorf("p4rt: frame of %d bytes exceeds limit", n)
	}
	f := frame{kind: msgKind(hdr[4]), id: binary.BigEndian.Uint64(hdr[5:13])}
	f.payload = make([]byte, n)
	if _, err := io.ReadFull(r, f.payload); err != nil {
		return frame{}, err
	}
	return f, nil
}
