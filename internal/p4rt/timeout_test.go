package p4rt

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// silentListener accepts connections and reads frames but never
// replies, so every RPC against it can only end via the client-side
// deadline.
func silentListener(t *testing.T) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr()
}

func TestClientRPCTimeout(t *testing.T) {
	cli, err := Dial(silentListener(t).String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetTimeout(50 * time.Millisecond)

	start := time.Now()
	_, rerr := cli.Read(ReadRequest{})
	if rerr == nil || !strings.Contains(rerr.Error(), "RPC timeout") {
		t.Fatalf("Read against a silent server returned %v, want RPC timeout", rerr)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, deadline was 50ms", elapsed)
	}

	// Write surfaces the timeout as a transport status, not a panic.
	resp := cli.Write(WriteRequest{Updates: []Update{{Type: Insert}}})
	if len(resp.Statuses) != 1 || resp.Statuses[0].Code != Internal ||
		!strings.Contains(resp.Statuses[0].Message, "RPC timeout") {
		t.Fatalf("Write against a silent server returned %v, want transport RPC timeout", resp)
	}

	// A timed-out call must not leave its pending-response entry behind.
	cli.mu.Lock()
	pending := len(cli.pending)
	cli.mu.Unlock()
	if pending != 0 {
		t.Fatalf("%d pending entries leaked after timeouts", pending)
	}
}

// TestSetTimeoutConcurrentWithRPCs is the race gate for SetTimeout: one
// goroutine retunes the deadline while others run RPCs that time out.
func TestSetTimeoutConcurrentWithRPCs(t *testing.T) {
	cli, err := Dial(silentListener(t).String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetTimeout(10 * time.Millisecond)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				cli.SetTimeout(time.Duration(10+i%10) * time.Millisecond)
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := cli.Read(ReadRequest{}); err == nil {
					t.Error("Read against a silent server succeeded")
				}
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}
