package p4rt

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeDevice is a scripted in-memory Device for transport tests.
type fakeDevice struct {
	mu        sync.Mutex
	pipeline  ForwardingPipelineConfig
	entries   []TableEntry
	packetIns chan PacketIn
	outs      []PacketOut
}

func newFakeDevice() *fakeDevice {
	return &fakeDevice{packetIns: make(chan PacketIn, 16)}
}

func (d *fakeDevice) SetForwardingPipelineConfig(cfg ForwardingPipelineConfig) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cfg.P4Info == "" {
		return Statusf(InvalidArgument, "empty p4info").Err()
	}
	d.pipeline = cfg
	return nil
}

func (d *fakeDevice) Write(req WriteRequest) WriteResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	resp := WriteResponse{}
	for _, u := range req.Updates {
		if u.Type == Insert {
			d.entries = append(d.entries, u.Entry)
			resp.Statuses = append(resp.Statuses, OKStatus)
		} else {
			resp.Statuses = append(resp.Statuses, Statusf(Unimplemented, "only INSERT"))
		}
	}
	return resp
}

func (d *fakeDevice) Read(req ReadRequest) (ReadResponse, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var resp ReadResponse
	for _, e := range d.entries {
		if req.TableID == 0 || e.TableID == req.TableID {
			resp.Entries = append(resp.Entries, e)
		}
	}
	return resp, nil
}

func (d *fakeDevice) PacketOut(p PacketOut) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.outs = append(d.outs, p)
	// Echo the packet back as a packet-in, as a loopback switch would.
	select {
	case d.packetIns <- PacketIn{Payload: p.Payload, IngressPort: p.EgressPort}:
	default:
	}
	return nil
}

func (d *fakeDevice) PacketIns() <-chan PacketIn { return d.packetIns }

func startPair(t *testing.T) (*Client, *fakeDevice, func()) {
	t.Helper()
	dev := newFakeDevice()
	srv := NewServer(dev, t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(addr.String())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	return cli, dev, func() {
		cli.Close()
		srv.Close()
		close(dev.packetIns)
	}
}

func TestClientServerRPCs(t *testing.T) {
	cli, _, stop := startPair(t)
	defer stop()

	if err := cli.SetForwardingPipelineConfig(ForwardingPipelineConfig{P4Info: "x", Cookie: 1}); err != nil {
		t.Fatalf("SetForwardingPipelineConfig: %v", err)
	}
	// Server-side rejection surfaces as a status error.
	if err := cli.SetForwardingPipelineConfig(ForwardingPipelineConfig{}); err == nil {
		t.Error("empty p4info accepted")
	}

	wr := sampleWriteRequest()
	resp := cli.Write(wr)
	if len(resp.Statuses) != 2 {
		t.Fatalf("statuses = %+v", resp)
	}
	if resp.Statuses[0].Code != OK || resp.Statuses[1].Code != Unimplemented {
		t.Errorf("statuses = %+v", resp.Statuses)
	}

	rr, err := cli.Read(ReadRequest{TableID: 0x02000001})
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Entries) != 1 || rr.Entries[0].TableID != 0x02000001 {
		t.Errorf("read = %+v", rr)
	}

	if err := cli.PacketOut(PacketOut{Payload: []byte("pkt"), EgressPort: 3}); err != nil {
		t.Fatal(err)
	}
	select {
	case pin := <-cli.PacketIns():
		if string(pin.Payload) != "pkt" || pin.IngressPort != 3 {
			t.Errorf("packet-in = %+v", pin)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no packet-in received")
	}
}

func TestConcurrentClients(t *testing.T) {
	cli, _, stop := startPair(t)
	defer stop()

	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				req := WriteRequest{Updates: []Update{{Type: Insert, Entry: TableEntry{TableID: uint32(i*10 + j)}}}}
				if resp := cli.Write(req); !resp.OK() {
					errs <- fmt.Errorf("write %d/%d: %s", i, j, resp.String())
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	rr, err := cli.Read(ReadRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Entries) != 50 {
		t.Errorf("entries = %d, want 50", len(rr.Entries))
	}
}

func TestClientClosed(t *testing.T) {
	cli, _, stop := startPair(t)
	stop()
	time.Sleep(20 * time.Millisecond) // let the read loop observe the close
	if resp := cli.Write(WriteRequest{Updates: []Update{{}}}); resp.OK() {
		t.Error("write on closed client succeeded")
	}
	if _, err := cli.Read(ReadRequest{}); err == nil {
		t.Error("read on closed client succeeded")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	dev := newFakeDevice()
	srv := NewServer(dev, nil)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Error("Listen after Close succeeded")
	}
	close(dev.packetIns)
}
