package p4rt

import "io"

// RawFrame is the exported view of one wire frame, for transport
// middleboxes (internal/chaos's fault-injection proxy) that relay or
// reorder frames without interpreting their payloads. The Kind byte may
// carry FrameRetryFlag; mask it off before comparing against the Frame*
// constants.
type RawFrame struct {
	Kind    uint8
	ID      uint64
	Payload []byte
}

// Exported frame kinds, mirroring the internal msgKind values.
const (
	FrameSetPipeline = uint8(kindSetPipeline)
	FrameWrite       = uint8(kindWrite)
	FrameRead        = uint8(kindRead)
	FramePacketOut   = uint8(kindPacketOut)
	FramePacketIn    = uint8(kindPacketIn)
	FrameResponse    = uint8(kindResponse)
	FrameInject      = uint8(kindInject)
	FrameHello       = uint8(kindHello)
	// FrameRetryFlag marks a re-sent request frame (see kindFlagRetry).
	FrameRetryFlag = uint8(kindFlagRetry)
)

// ReadRawFrame reads one frame from r.
func ReadRawFrame(r io.Reader) (RawFrame, error) {
	f, err := readFrame(r)
	if err != nil {
		return RawFrame{}, err
	}
	return RawFrame{Kind: uint8(f.kind), ID: f.id, Payload: f.payload}, nil
}

// WriteRawFrame writes one frame to w.
func WriteRawFrame(w io.Writer, f RawFrame) error {
	return writeFrame(w, frame{kind: msgKind(f.Kind), id: f.ID, payload: f.Payload})
}
