package p4rt

import (
	"fmt"
	"time"
)

// Backoff configures capped exponential retry for Reconnect. The zero
// value selects the defaults noted on each field.
type Backoff struct {
	// Initial is the delay before the second dial attempt (default
	// 50ms); each further attempt doubles it.
	Initial time.Duration
	// Max caps the per-attempt delay (default 5s).
	Max time.Duration
	// Attempts is the total number of dial attempts (default 8).
	Attempts int
	// Sleep replaces time.Sleep between attempts — a test hook, and the
	// place a caller can park a cancellation check.
	Sleep func(time.Duration)
}

func (b Backoff) withDefaults() Backoff {
	if b.Initial <= 0 {
		b.Initial = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Attempts <= 0 {
		b.Attempts = 8
	}
	if b.Sleep == nil {
		b.Sleep = time.Sleep
	}
	return b
}

// Delay returns the backoff before dial attempt i (the first attempt is
// i=0 and has no delay): Initial·2^(i-1), capped at Max.
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.withDefaults()
	if attempt <= 0 {
		return 0
	}
	d := b.Initial
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= b.Max {
			return b.Max
		}
	}
	if d > b.Max {
		d = b.Max
	}
	return d
}

// Reconnect dials a P4Runtime server like Dial, but retries failed
// attempts with capped exponential backoff — the dial path for targets
// that restart underneath a long-running campaign. It returns the first
// successful client, or the last dial error after Attempts tries.
func Reconnect(addr string, b Backoff) (*Client, error) {
	b = b.withDefaults()
	var lastErr error
	for attempt := 0; attempt < b.Attempts; attempt++ {
		if attempt > 0 {
			b.Sleep(b.Delay(attempt))
		}
		c, err := Dial(addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("p4rt: reconnect %s: %d attempts failed: %w", addr, b.Attempts, lastErr)
}
