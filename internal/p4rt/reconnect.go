package p4rt

import (
	"fmt"
	"time"
)

// Backoff configures capped exponential retry for Reconnect. The zero
// value selects the defaults noted on each field.
type Backoff struct {
	// Initial is the delay before the second dial attempt (default
	// 50ms); each further attempt doubles it.
	Initial time.Duration
	// Max caps the per-attempt delay (default 5s).
	Max time.Duration
	// Attempts is the total number of dial attempts (default 8).
	Attempts int
	// Jitter, when positive, adds a deterministic decorrelation offset
	// in [0, Jitter) to every non-zero delay, derived from the attempt
	// number alone — pure, so retry schedules stay reproducible (no
	// process-global randomness, per the determinism contract).
	Jitter time.Duration
	// Sleep replaces time.Sleep between attempts — a test hook, and the
	// place a caller can park a cancellation check.
	Sleep func(time.Duration)
}

func (b Backoff) withDefaults() Backoff {
	if b.Initial <= 0 {
		b.Initial = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Attempts <= 0 {
		b.Attempts = 8
	}
	if b.Sleep == nil {
		b.Sleep = time.Sleep
	}
	return b
}

// Delay returns the backoff before dial attempt i (the first attempt is
// i=0 and has no delay): Initial·2^(i-1), capped at Max, plus the
// deterministic Jitter offset. Attempt counts large enough to overflow
// the doubling clamp to Max instead of going negative.
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.withDefaults()
	if attempt <= 0 {
		return 0
	}
	d := b.Max
	if shift := uint(attempt - 1); shift < 63 {
		if doubled := b.Initial << shift; doubled>>shift == b.Initial && doubled > 0 {
			d = doubled
		}
	}
	if d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 {
		jit := time.Duration(jitterHash(uint64(attempt)) % uint64(b.Jitter))
		if d+jit > d { // skip on overflow near MaxInt64
			d += jit
		}
	}
	return d
}

// jitterHash is a splitmix64 step: a pure, well-mixed function of the
// attempt number, standing in for randomness without any global state.
func jitterHash(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Reconnect dials a P4Runtime server like Dial, but retries failed
// attempts with capped exponential backoff — the dial path for targets
// that restart underneath a long-running campaign. It returns the first
// successful client, or the last dial error after Attempts tries.
func Reconnect(addr string, b Backoff) (*Client, error) {
	b = b.withDefaults()
	var lastErr error
	for attempt := 0; attempt < b.Attempts; attempt++ {
		if attempt > 0 {
			b.Sleep(b.Delay(attempt))
		}
		c, err := Dial(addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("p4rt: reconnect %s: %d attempts failed: %w", addr, b.Attempts, lastErr)
}
