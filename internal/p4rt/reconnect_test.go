package p4rt

import (
	"net"
	"strings"
	"testing"
	"time"
)

func TestBackoffDelayCapsExponential(t *testing.T) {
	b := Backoff{Initial: 100 * time.Millisecond, Max: time.Second}
	want := []time.Duration{0, 100e6, 200e6, 400e6, 800e6, 1e9, 1e9}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

// TestReconnectFlappingTarget: the target's listener is down for the
// first dials and comes back mid-backoff — exactly a switch restarting
// under the daemon. Reconnect must ride it out and hand back a working
// client. The Sleep hook replaces real waiting, so the test is instant
// and the attempt trace is observable.
func TestReconnectFlappingTarget(t *testing.T) {
	// Reserve an address, then close it so the first dials are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	srv := NewServer(newFakeDevice(), nil)
	var delays []time.Duration
	cli, err := Reconnect(addr, Backoff{
		Initial:  10 * time.Millisecond,
		Max:      40 * time.Millisecond,
		Attempts: 6,
		Sleep: func(d time.Duration) {
			delays = append(delays, d)
			// The target comes back right before the third attempt.
			if len(delays) == 2 {
				if _, err := srv.Listen(addr); err != nil {
					t.Fatalf("restarting listener: %v", err)
				}
			}
		},
	})
	if err != nil {
		t.Fatalf("Reconnect failed despite target recovery: %v", err)
	}
	defer cli.Close()
	defer srv.Close()

	if len(delays) != 2 {
		t.Errorf("dialed through %d backoffs, want 2", len(delays))
	}
	for i, d := range delays {
		if want := (Backoff{Initial: 10 * time.Millisecond, Max: 40 * time.Millisecond}).Delay(i + 1); d != want {
			t.Errorf("backoff %d = %v, want %v", i, d, want)
		}
	}

	// The client must be functional, not just connected.
	if err := cli.SetForwardingPipelineConfig(ForwardingPipelineConfig{P4Info: "x"}); err != nil {
		t.Errorf("RPC over reconnected client: %v", err)
	}
}

// TestReconnectExhaustsAttempts: a target that never comes back fails
// after exactly Attempts dials with the underlying cause preserved.
func TestReconnectExhaustsAttempts(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	sleeps := 0
	_, err = Reconnect(addr, Backoff{
		Initial:  time.Millisecond,
		Attempts: 3,
		Sleep:    func(time.Duration) { sleeps++ },
	})
	if err == nil {
		t.Fatal("Reconnect succeeded against a dead address")
	}
	if sleeps != 2 {
		t.Errorf("slept %d times, want 2 (3 attempts)", sleeps)
	}
	if !strings.Contains(err.Error(), "3 attempts failed") {
		t.Errorf("error %q does not name the attempt budget", err)
	}
}
