package p4rt

import (
	"encoding/binary"
	"fmt"
)

// Binary message codec. All integers are big-endian fixed width; byte
// strings and strings are length-prefixed with a u32. The encoding is
// deterministic, which the oracle relies on when comparing read-backs.

type enc struct{ buf []byte }

func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) u16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *enc) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *enc) i32(v int32)  { e.u32(uint32(v)) }
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *enc) str(s string) { e.bytes([]byte(s)) }

type dec struct {
	buf []byte
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("p4rt: truncated message reading %s", what)
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || len(d.buf) < 1 {
		d.fail("u8")
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *dec) u16() uint16 {
	if d.err != nil || len(d.buf) < 2 {
		d.fail("u16")
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf)
	d.buf = d.buf[2:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.buf) < 4 {
		d.fail("u32")
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.buf) < 8 {
		d.fail("u64")
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *dec) i32() int32 { return int32(d.u32()) }

func (d *dec) bool() bool { return d.u8() != 0 }

func (d *dec) bytes() []byte {
	n := d.u32()
	if d.err != nil || uint32(len(d.buf)) < n {
		d.fail("bytes")
		return nil
	}
	v := append([]byte(nil), d.buf[:n]...)
	d.buf = d.buf[n:]
	return v
}

func (d *dec) str() string { return string(d.bytes()) }

// Table entries.

func encodeFieldMatch(e *enc, m *FieldMatch) {
	e.u32(m.FieldID)
	var kind uint8
	switch {
	case m.Exact != nil:
		kind = 1
	case m.LPM != nil:
		kind = 2
	case m.Ternary != nil:
		kind = 3
	case m.Optional != nil:
		kind = 4
	}
	// A FieldMatch with several kinds set is not encodable on the real
	// wire; for fuzzing we encode every populated kind and let the decoder
	// deliver them all, preserving the "duplicate match kind" badness.
	e.u8(kind)
	switch kind {
	case 1:
		e.bytes(m.Exact.Value)
	case 2:
		e.bytes(m.LPM.Value)
		e.i32(m.LPM.PrefixLen)
	case 3:
		e.bytes(m.Ternary.Value)
		e.bytes(m.Ternary.Mask)
	case 4:
		e.bytes(m.Optional.Value)
	}
}

func decodeFieldMatch(d *dec) FieldMatch {
	m := FieldMatch{FieldID: d.u32()}
	switch d.u8() {
	case 1:
		m.Exact = &ExactMatch{Value: d.bytes()}
	case 2:
		m.LPM = &LPMMatch{Value: d.bytes(), PrefixLen: d.i32()}
	case 3:
		m.Ternary = &TernaryMatch{Value: d.bytes(), Mask: d.bytes()}
	case 4:
		m.Optional = &OptionalMatch{Value: d.bytes()}
	default:
		// kind 0: no match populated; keep all nil.
	}
	return m
}

func encodeAction(e *enc, a *Action) {
	e.u32(a.ActionID)
	e.u32(uint32(len(a.Params)))
	for _, p := range a.Params {
		e.u32(p.ParamID)
		e.bytes(p.Value)
	}
}

func decodeAction(d *dec) Action {
	a := Action{ActionID: d.u32()}
	n := d.u32()
	for i := uint32(0); i < n && d.err == nil; i++ {
		a.Params = append(a.Params, ActionParam{ParamID: d.u32(), Value: d.bytes()})
	}
	return a
}

func encodeTableEntry(e *enc, t *TableEntry) {
	e.u32(t.TableID)
	e.i32(t.Priority)
	e.u32(uint32(len(t.Match)))
	for i := range t.Match {
		encodeFieldMatch(e, &t.Match[i])
	}
	switch {
	case t.Action.Action != nil:
		e.u8(1)
		encodeAction(e, t.Action.Action)
	case t.Action.HasActionSet || len(t.Action.ActionSet) > 0:
		e.u8(2)
		e.u32(uint32(len(t.Action.ActionSet)))
		for _, pa := range t.Action.ActionSet {
			encodeAction(e, &pa.Action)
			e.i32(pa.Weight)
		}
	default:
		e.u8(0)
	}
}

func decodeTableEntry(d *dec) TableEntry {
	t := TableEntry{TableID: d.u32(), Priority: d.i32()}
	n := d.u32()
	for i := uint32(0); i < n && d.err == nil; i++ {
		t.Match = append(t.Match, decodeFieldMatch(d))
	}
	switch d.u8() {
	case 1:
		a := decodeAction(d)
		t.Action.Action = &a
	case 2:
		t.Action.HasActionSet = true
		m := d.u32()
		for i := uint32(0); i < m && d.err == nil; i++ {
			a := decodeAction(d)
			t.Action.ActionSet = append(t.Action.ActionSet, ActionProfileAction{Action: a, Weight: d.i32()})
		}
	}
	return t
}

// RPC payloads.

func encodeWriteRequest(r *WriteRequest) []byte {
	e := &enc{}
	e.u64(r.DeviceID)
	e.u32(uint32(len(r.Updates)))
	for i := range r.Updates {
		e.u8(uint8(r.Updates[i].Type))
		encodeTableEntry(e, &r.Updates[i].Entry)
	}
	return e.buf
}

func decodeWriteRequest(b []byte) (WriteRequest, error) {
	d := &dec{buf: b}
	r := WriteRequest{DeviceID: d.u64()}
	n := d.u32()
	for i := uint32(0); i < n && d.err == nil; i++ {
		u := Update{Type: UpdateType(d.u8())}
		u.Entry = decodeTableEntry(d)
		r.Updates = append(r.Updates, u)
	}
	return r, d.err
}

func encodeWriteResponse(r *WriteResponse) []byte {
	e := &enc{}
	e.u32(uint32(len(r.Statuses)))
	for _, s := range r.Statuses {
		e.u32(uint32(s.Code))
		e.str(s.Message)
	}
	return e.buf
}

func decodeWriteResponse(b []byte) (WriteResponse, error) {
	d := &dec{buf: b}
	var r WriteResponse
	n := d.u32()
	for i := uint32(0); i < n && d.err == nil; i++ {
		r.Statuses = append(r.Statuses, Status{Code: Code(d.u32()), Message: d.str()})
	}
	return r, d.err
}

func encodeReadRequest(r *ReadRequest) []byte {
	e := &enc{}
	e.u64(r.DeviceID)
	e.u32(r.TableID)
	return e.buf
}

func decodeReadRequest(b []byte) (ReadRequest, error) {
	d := &dec{buf: b}
	r := ReadRequest{DeviceID: d.u64(), TableID: d.u32()}
	return r, d.err
}

func encodeReadResponse(r *ReadResponse) []byte {
	e := &enc{}
	e.u32(uint32(len(r.Entries)))
	for i := range r.Entries {
		encodeTableEntry(e, &r.Entries[i])
	}
	return e.buf
}

func decodeReadResponse(b []byte) (ReadResponse, error) {
	d := &dec{buf: b}
	var r ReadResponse
	n := d.u32()
	for i := uint32(0); i < n && d.err == nil; i++ {
		r.Entries = append(r.Entries, decodeTableEntry(d))
	}
	return r, d.err
}

func encodePipelineConfig(c *ForwardingPipelineConfig) []byte {
	e := &enc{}
	e.str(c.P4Info)
	e.u64(c.Cookie)
	return e.buf
}

func decodePipelineConfig(b []byte) (ForwardingPipelineConfig, error) {
	d := &dec{buf: b}
	c := ForwardingPipelineConfig{P4Info: d.str(), Cookie: d.u64()}
	return c, d.err
}

func encodePacketOut(p *PacketOut) []byte {
	e := &enc{}
	e.bytes(p.Payload)
	e.u16(p.EgressPort)
	e.bool(p.SubmitToIngress)
	return e.buf
}

func decodePacketOut(b []byte) (PacketOut, error) {
	d := &dec{buf: b}
	p := PacketOut{Payload: d.bytes(), EgressPort: d.u16(), SubmitToIngress: d.bool()}
	return p, d.err
}

func encodePacketIn(p *PacketIn) []byte {
	e := &enc{}
	e.bytes(p.Payload)
	e.u16(p.IngressPort)
	e.bool(p.IsCopy)
	return e.buf
}

func decodePacketIn(b []byte) (PacketIn, error) {
	d := &dec{buf: b}
	p := PacketIn{Payload: d.bytes(), IngressPort: d.u16(), IsCopy: d.bool()}
	return p, d.err
}

func encodeStatus(s Status) []byte {
	e := &enc{}
	e.u32(uint32(s.Code))
	e.str(s.Message)
	return e.buf
}

func decodeStatus(b []byte) (Status, []byte, error) {
	d := &dec{buf: b}
	s := Status{Code: Code(d.u32()), Message: d.str()}
	return s, d.buf, d.err
}
