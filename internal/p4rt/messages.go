package p4rt

import (
	"fmt"
	"strings"
)

// UpdateType is the kind of a write update.
type UpdateType int

// Update types, per the P4Runtime Write RPC.
const (
	Insert UpdateType = iota
	Modify
	Delete
)

func (u UpdateType) String() string {
	switch u {
	case Insert:
		return "INSERT"
	case Modify:
		return "MODIFY"
	case Delete:
		return "DELETE"
	default:
		return fmt.Sprintf("UpdateType(%d)", int(u))
	}
}

// ExactMatch matches a field exactly.
type ExactMatch struct{ Value []byte }

// LPMMatch matches a longest-prefix on a field.
type LPMMatch struct {
	Value     []byte
	PrefixLen int32
}

// TernaryMatch matches value/mask on a field.
type TernaryMatch struct {
	Value []byte
	Mask  []byte
}

// OptionalMatch matches a field exactly if present.
type OptionalMatch struct{ Value []byte }

// FieldMatch supplies the match for one field of a table key. Exactly one
// of the match kinds must be set. (The fuzzer deliberately violates this
// with its Invalid Match Type and Duplicate Match Field mutations.)
type FieldMatch struct {
	FieldID  uint32
	Exact    *ExactMatch
	LPM      *LPMMatch
	Ternary  *TernaryMatch
	Optional *OptionalMatch
}

// KindCount returns how many match kinds are populated.
func (m *FieldMatch) KindCount() int {
	n := 0
	if m.Exact != nil {
		n++
	}
	if m.LPM != nil {
		n++
	}
	if m.Ternary != nil {
		n++
	}
	if m.Optional != nil {
		n++
	}
	return n
}

// ActionParam is one argument of an action invocation.
type ActionParam struct {
	ParamID uint32
	Value   []byte
}

// Action is an action invocation by ID.
type Action struct {
	ActionID uint32
	Params   []ActionParam
}

// ActionProfileAction is one weighted member of a one-shot action set.
type ActionProfileAction struct {
	Action Action
	Weight int32
}

// TableAction is the action part of a table entry: either a single Action
// or a one-shot ActionProfileActionSet. (The fuzzer's Invalid Table
// Implementation mutation sends the wrong variant.)
type TableAction struct {
	Action    *Action
	ActionSet []ActionProfileAction
	// HasActionSet distinguishes an empty action set from an absent one.
	HasActionSet bool
}

// TableEntry is a wire-level table entry.
type TableEntry struct {
	TableID  uint32
	Match    []FieldMatch
	Action   TableAction
	Priority int32
}

// Update is one element of a write batch.
type Update struct {
	Type  UpdateType
	Entry TableEntry
}

// WriteRequest is a batch of updates. The switch may execute the updates
// in a single batch in any order (§4 Example 2).
type WriteRequest struct {
	DeviceID uint64
	Updates  []Update
}

// WriteResponse carries one status per update, in request order.
type WriteResponse struct {
	Statuses []Status
}

// OK reports whether every update succeeded.
func (r *WriteResponse) OK() bool {
	for _, s := range r.Statuses {
		if s.Code != OK {
			return false
		}
	}
	return true
}

// ErrorCount returns the number of failed updates.
func (r *WriteResponse) ErrorCount() int {
	n := 0
	for _, s := range r.Statuses {
		if s.Code != OK {
			n++
		}
	}
	return n
}

func (r *WriteResponse) String() string {
	if r.OK() {
		return fmt.Sprintf("OK(%d)", len(r.Statuses))
	}
	var parts []string
	for i, s := range r.Statuses {
		if s.Code != OK {
			parts = append(parts, fmt.Sprintf("#%d %s", i, s))
		}
	}
	return strings.Join(parts, "; ")
}

// ReadRequest reads back table entries. TableID 0 reads all tables.
type ReadRequest struct {
	DeviceID uint64
	TableID  uint32
}

// ReadResponse lists the entries that matched the read.
type ReadResponse struct {
	Entries []TableEntry
}

// ForwardingPipelineConfig carries the P4Info of the model governing the
// switch's control plane API.
type ForwardingPipelineConfig struct {
	P4Info string
	Cookie uint64
}

// PacketOut is a controller-to-switch packet injection.
type PacketOut struct {
	Payload []byte
	// EgressPort requests transmission on a specific port.
	EgressPort uint16
	// SubmitToIngress runs the packet through the forwarding pipeline
	// instead of sending it directly out of EgressPort.
	SubmitToIngress bool
}

// PacketIn is a switch-to-controller punted packet.
type PacketIn struct {
	Payload     []byte
	IngressPort uint16
	// IsCopy is true for copy_to_cpu (forwarding continued) as opposed to
	// punt (forwarding suppressed).
	IsCopy bool
}

// Device is the P4Runtime service surface of a switch. Both an in-process
// switch stack and the TCP Client implement it, so test harnesses are
// transport-agnostic.
type Device interface {
	// SetForwardingPipelineConfig pushes the P4Info contract.
	SetForwardingPipelineConfig(cfg ForwardingPipelineConfig) error
	// Write applies a batch of updates and reports per-update statuses.
	Write(req WriteRequest) WriteResponse
	// Read returns the entries currently installed.
	Read(req ReadRequest) (ReadResponse, error)
	// PacketOut injects a packet.
	PacketOut(p PacketOut) error
	// PacketIns returns the stream of punted packets. The channel is
	// closed when the device shuts down.
	PacketIns() <-chan PacketIn
}
