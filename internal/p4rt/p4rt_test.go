package p4rt

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"switchv/internal/p4/ir"
	"switchv/internal/p4/p4info"
	"switchv/internal/p4/pdpi"
	"switchv/internal/p4/value"
	"switchv/models"
)

func TestCanonicalize(t *testing.T) {
	cases := []struct{ in, want []byte }{
		{[]byte{0, 0, 1}, []byte{1}},
		{[]byte{0}, []byte{0}},
		{[]byte{0, 0}, []byte{0}},
		{[]byte{1, 0}, []byte{1, 0}},
		{nil, []byte{0}},
	}
	for _, c := range cases {
		if got := Canonicalize(c.in); !bytes.Equal(got, c.want) {
			t.Errorf("Canonicalize(%x) = %x, want %x", c.in, got, c.want)
		}
	}
	if IsCanonical(nil) || IsCanonical([]byte{0, 1}) {
		t.Error("IsCanonical accepted non-canonical input")
	}
	if !IsCanonical([]byte{0}) || !IsCanonical([]byte{1, 0}) {
		t.Error("IsCanonical rejected canonical input")
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	f := func(b []byte) bool {
		c := Canonicalize(b)
		return IsCanonical(c) && bytes.Equal(Canonicalize(c), c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeValue(t *testing.T) {
	v := value.New(0x0a000001, 32)
	b := EncodeValue(v)
	if !bytes.Equal(b, []byte{0x0a, 0, 0, 1}) {
		t.Fatalf("EncodeValue = %x", b)
	}
	got, err := DecodeValue(b, 32)
	if err != nil || !got.Equal(v) {
		t.Errorf("DecodeValue = %v, %v", got, err)
	}
	// Zero encodes to a single byte.
	if b := EncodeValue(value.Zero(32)); !bytes.Equal(b, []byte{0}) {
		t.Errorf("EncodeValue(0) = %x", b)
	}
	// Non-canonical rejected (the zero-bytes toolchain bug class).
	if _, err := DecodeValue([]byte{0, 1}, 32); err == nil {
		t.Error("non-canonical value decoded")
	}
	// Overflow rejected.
	if _, err := DecodeValue([]byte{0x04}, 2); err == nil {
		t.Error("overflow decoded")
	}
	if !EqualBytes([]byte{0, 0, 5}, []byte{5}) {
		t.Error("EqualBytes failed")
	}
}

func sampleWriteRequest() WriteRequest {
	return WriteRequest{
		DeviceID: 7,
		Updates: []Update{
			{Type: Insert, Entry: TableEntry{
				TableID:  0x02000001,
				Priority: 10,
				Match: []FieldMatch{
					{FieldID: 1, Exact: &ExactMatch{Value: []byte{5}}},
					{FieldID: 2, LPM: &LPMMatch{Value: []byte{10, 0, 0, 0}, PrefixLen: 8}},
					{FieldID: 3, Ternary: &TernaryMatch{Value: []byte{1}, Mask: []byte{0xff}}},
					{FieldID: 4, Optional: &OptionalMatch{Value: []byte{1}}},
				},
				Action: TableAction{Action: &Action{
					ActionID: 0x01000002,
					Params:   []ActionParam{{ParamID: 1, Value: []byte{3}}},
				}},
			}},
			{Type: Delete, Entry: TableEntry{
				TableID: 0x02000005,
				Match:   []FieldMatch{{FieldID: 1, Exact: &ExactMatch{Value: []byte{9}}}},
				Action: TableAction{
					HasActionSet: true,
					ActionSet: []ActionProfileAction{
						{Action: Action{ActionID: 0x01000003, Params: []ActionParam{{ParamID: 1, Value: []byte{1}}}}, Weight: 2},
						{Action: Action{ActionID: 0x01000003, Params: []ActionParam{{ParamID: 1, Value: []byte{2}}}}, Weight: 1},
					},
				},
			}},
		},
	}
}

func TestCodecRoundTrips(t *testing.T) {
	wr := sampleWriteRequest()
	got, err := decodeWriteRequest(encodeWriteRequest(&wr))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wr, got) {
		t.Errorf("WriteRequest round trip:\n got %+v\nwant %+v", got, wr)
	}

	wresp := WriteResponse{Statuses: []Status{{}, {Code: NotFound, Message: "gone"}}}
	gotW, err := decodeWriteResponse(encodeWriteResponse(&wresp))
	if err != nil || !reflect.DeepEqual(wresp, gotW) {
		t.Errorf("WriteResponse round trip: %+v, %v", gotW, err)
	}

	rr := ReadRequest{DeviceID: 3, TableID: 0x02000001}
	gotR, err := decodeReadRequest(encodeReadRequest(&rr))
	if err != nil || gotR != rr {
		t.Errorf("ReadRequest round trip: %+v, %v", gotR, err)
	}

	rresp := ReadResponse{Entries: []TableEntry{wr.Updates[0].Entry, wr.Updates[1].Entry}}
	gotRR, err := decodeReadResponse(encodeReadResponse(&rresp))
	if err != nil || !reflect.DeepEqual(rresp, gotRR) {
		t.Errorf("ReadResponse round trip: %+v, %v", gotRR, err)
	}

	cfg := ForwardingPipelineConfig{P4Info: "pkg_info { }", Cookie: 99}
	gotC, err := decodePipelineConfig(encodePipelineConfig(&cfg))
	if err != nil || gotC != cfg {
		t.Errorf("PipelineConfig round trip: %+v, %v", gotC, err)
	}

	po := PacketOut{Payload: []byte{1, 2, 3}, EgressPort: 4, SubmitToIngress: true}
	gotP, err := decodePacketOut(encodePacketOut(&po))
	if err != nil || !reflect.DeepEqual(po, gotP) {
		t.Errorf("PacketOut round trip: %+v, %v", gotP, err)
	}

	pi := PacketIn{Payload: []byte{9}, IngressPort: 2, IsCopy: true}
	gotPI, err := decodePacketIn(encodePacketIn(&pi))
	if err != nil || !reflect.DeepEqual(pi, gotPI) {
		t.Errorf("PacketIn round trip: %+v, %v", gotPI, err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	wr := sampleWriteRequest()
	full := encodeWriteRequest(&wr)
	for _, n := range []int{0, 1, 5, 9, 13, len(full) / 2, len(full) - 1} {
		if _, err := decodeWriteRequest(full[:n]); err == nil {
			t.Errorf("decoded truncated request of %d bytes", n)
		}
	}
}

func TestStatus(t *testing.T) {
	if OKStatus.Err() != nil {
		t.Error("OK status produced an error")
	}
	st := Statusf(NotFound, "entry %d", 7)
	err := st.Err()
	if err == nil || !strings.Contains(err.Error(), "NOT_FOUND") {
		t.Errorf("err = %v", err)
	}
	if got := StatusFromError(err); got != st {
		t.Errorf("StatusFromError = %+v", got)
	}
	if got := StatusFromError(nil); got.Code != OK {
		t.Errorf("StatusFromError(nil) = %+v", got)
	}
	resp := WriteResponse{Statuses: []Status{{}, st}}
	if resp.OK() || resp.ErrorCount() != 1 {
		t.Errorf("resp = %+v", resp)
	}
	if s := resp.String(); !strings.Contains(s, "#1") {
		t.Errorf("String = %q", s)
	}
}

func TestConvRoundTrip(t *testing.T) {
	p := models.Middleblock()
	info := p4info.New(p)
	tbl, _ := p.TableByName("ipv4_table")
	act, _ := p.ActionByName("set_nexthop_id")
	e := &pdpi.Entry{
		Table: tbl,
		Matches: []pdpi.Match{
			{Key: "vrf_id", Kind: ir.MatchExact, Value: value.New(1, 10)},
			{Key: "ipv4_dst", Kind: ir.MatchLPM, Value: value.New(0x0a000000, 32), PrefixLen: 8},
		},
		Action: &pdpi.ActionInvocation{Action: act, Args: []value.V{value.New(3, 10)}},
	}
	te := ToWire(e)
	back, err := FromWire(info, &te)
	if err != nil {
		t.Fatal(err)
	}
	if back.Key() != e.Key() {
		t.Errorf("round trip key: %s vs %s", back.Key(), e.Key())
	}
	if back.Action.Action != act || !back.Action.Args[0].Equal(e.Action.Args[0]) {
		t.Errorf("round trip action: %+v", back.Action)
	}
}

func TestConvSelectorRoundTrip(t *testing.T) {
	p := models.Middleblock()
	info := p4info.New(p)
	tbl, _ := p.TableByName("wcmp_group_table")
	act, _ := p.ActionByName("set_nexthop_id")
	e := &pdpi.Entry{
		Table:   tbl,
		Matches: []pdpi.Match{{Key: "wcmp_group_id", Kind: ir.MatchExact, Value: value.New(4, 10)}},
		ActionSet: []pdpi.WeightedAction{
			{ActionInvocation: pdpi.ActionInvocation{Action: act, Args: []value.V{value.New(1, 10)}}, Weight: 2},
			{ActionInvocation: pdpi.ActionInvocation{Action: act, Args: []value.V{value.New(2, 10)}}, Weight: 3},
		},
	}
	te := ToWire(e)
	back, err := FromWire(info, &te)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.ActionSet) != 2 || back.ActionSet[1].Weight != 3 {
		t.Errorf("action set = %+v", back.ActionSet)
	}
}

func TestConvErrors(t *testing.T) {
	p := models.Middleblock()
	info := p4info.New(p)
	ipv4, _ := p.TableByName("ipv4_table")
	drop, _ := p.ActionByName("drop")

	goodMatch := []FieldMatch{
		{FieldID: 1, Exact: &ExactMatch{Value: []byte{1}}},
		{FieldID: 2, LPM: &LPMMatch{Value: []byte{10, 0, 0, 0}, PrefixLen: 8}},
	}
	_ = drop

	cases := []struct {
		name    string
		entry   TableEntry
		wantSub string
	}{
		{"unknown table", TableEntry{TableID: 0xdead}, "unknown table"},
		{"unknown field id", TableEntry{
			TableID: ipv4.ID,
			Match:   []FieldMatch{{FieldID: 99, Exact: &ExactMatch{Value: []byte{1}}}},
		}, "unknown match field"},
		{"duplicate field", TableEntry{
			TableID: ipv4.ID,
			Match: []FieldMatch{
				{FieldID: 1, Exact: &ExactMatch{Value: []byte{1}}},
				{FieldID: 1, Exact: &ExactMatch{Value: []byte{2}}},
			},
		}, "duplicate match"},
		{"wrong match kind", TableEntry{
			TableID: ipv4.ID,
			Match:   []FieldMatch{{FieldID: 1, LPM: &LPMMatch{Value: []byte{1}, PrefixLen: 8}}},
		}, "lpm match on exact key"},
		{"two kinds", TableEntry{
			TableID: ipv4.ID,
			Match: []FieldMatch{{
				FieldID: 1,
				Exact:   &ExactMatch{Value: []byte{1}},
				LPM:     &LPMMatch{Value: []byte{1}, PrefixLen: 8},
			}},
		}, "match kinds"},
		{"non-canonical", TableEntry{
			TableID: ipv4.ID,
			Match: []FieldMatch{
				{FieldID: 1, Exact: &ExactMatch{Value: []byte{0, 1}}},
				goodMatch[1],
			},
		}, "not canonical"},
		{"unknown action", TableEntry{
			TableID: ipv4.ID,
			Match:   goodMatch,
			Action:  TableAction{Action: &Action{ActionID: 0xbad}},
		}, "unknown action"},
		{"missing mandatory", TableEntry{
			TableID: ipv4.ID,
			Match:   goodMatch[:1],
			Action:  TableAction{Action: &Action{ActionID: mustAction(p, "drop").ID}},
		}, "mandatory"},
		{"action set on plain table", TableEntry{
			TableID: ipv4.ID,
			Match:   goodMatch,
			Action: TableAction{HasActionSet: true, ActionSet: []ActionProfileAction{
				{Action: Action{ActionID: mustAction(p, "drop").ID}, Weight: 1},
			}},
		}, "not a selector"},
		{"no action", TableEntry{
			TableID: ipv4.ID,
			Match:   goodMatch,
		}, "no action"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := FromWire(info, &c.entry)
			if err == nil {
				t.Fatal("FromWire succeeded")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error = %v, want substring %q", err, c.wantSub)
			}
		})
	}
}

func mustAction(p *ir.Program, name string) *ir.Action {
	a, ok := p.ActionByName(name)
	if !ok {
		panic("missing action " + name)
	}
	return a
}

func TestParamOrderIndependence(t *testing.T) {
	p := models.Middleblock()
	info := p4info.New(p)
	nexthop, _ := p.TableByName("nexthop_table")
	setNexthop, _ := p.ActionByName("set_nexthop")
	te := TableEntry{
		TableID: nexthop.ID,
		Match:   []FieldMatch{{FieldID: 1, Exact: &ExactMatch{Value: []byte{7}}}},
		Action: TableAction{Action: &Action{
			ActionID: setNexthop.ID,
			Params: []ActionParam{
				{ParamID: 2, Value: []byte{22}},
				{ParamID: 1, Value: []byte{11}},
			},
		}},
	}
	e, err := FromWire(info, &te)
	if err != nil {
		t.Fatal(err)
	}
	if e.Action.Args[0].Uint64() != 11 || e.Action.Args[1].Uint64() != 22 {
		t.Errorf("args = %v", e.Action.Args)
	}
	// Duplicate param id rejected.
	te.Action.Action.Params[0].ParamID = 1
	if _, err := FromWire(info, &te); err == nil {
		t.Error("duplicate param id accepted")
	}
}
