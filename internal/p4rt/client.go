package p4rt

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// sessionCounter hands out process-unique client session ids for the
// server's response replay cache. Session ids never enter campaign
// results; they only scope the (session, request id) dedup key.
var sessionCounter atomic.Uint64

// pendingCall is one in-flight RPC's response slot, tagged with the
// connection generation it was issued on so a dying transport loop only
// fails the calls that were actually riding on its connection.
type pendingCall struct {
	ch  chan frame
	gen int
}

// Client is a P4Runtime client over a stream transport (TCP or an
// in-process pipe). It implements Device, so code written against an
// in-process switch runs unchanged against a remote one.
//
// By default an RPC fails on the first transport error. SetRetry turns
// on in-RPC retry: a timed-out or connection-lost RPC is re-sent with
// the same request id and a retry flag, so the server's replay cache
// can deduplicate work it already applied (the retried Write is
// idempotent even when the original was applied and only its ACK was
// lost). SetRedial additionally lets the client replace a dead
// connection between attempts.
type Client struct {
	writeMu sync.Mutex // serializes frame writes on the current conn
	// helloGen is the connection generation the session hello was last
	// sent on; guarded by writeMu (hellos are writes).
	helloGen int

	mu      sync.Mutex
	conn    net.Conn
	gen     int // bumped by every successful redial
	nextID  uint64
	pending map[uint64]pendingCall
	closed  bool
	redial  func() (net.Conn, error)
	retry   Backoff
	retryOn bool

	session uint64

	packetIns chan PacketIn
	pinOnce   sync.Once
	// DroppedPacketIns counts packet-ins discarded because the consumer
	// fell behind; read it only after Close.
	DroppedPacketIns int

	// timeout is the per-RPC deadline in nanoseconds, atomic so
	// SetTimeout is safe while RPCs are in flight (the parallel engine
	// tunes per-shard clients concurrently).
	timeout atomic.Int64
}

var _ Device = (*Client)(nil)

// Transport-level RPC failures. Both are transient: with SetRetry
// configured the client re-sends the RPC instead of surfacing them.
var (
	errTimeout    = errors.New("p4rt: RPC timeout")
	errConnClosed = errors.New("p4rt: connection closed")
	errClosed     = errors.New("p4rt: client is closed")
)

// Dial connects to a P4Runtime server. For targets that may be mid-restart,
// Reconnect wraps this dial path with capped exponential backoff.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("p4rt: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (TCP, net.Pipe, or a chaos
// wire); the transport loop starts immediately.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:      conn,
		helloGen:  -1,
		pending:   map[uint64]pendingCall{},
		packetIns: make(chan PacketIn, 1024),
		session:   sessionCounter.Add(1),
	}
	c.timeout.Store(int64(30 * time.Second))
	go c.readLoop(conn, 0)
	return c
}

// SetRedial installs a dial function used to replace a dead connection
// between RPC attempts (only consulted when SetRetry has enabled
// in-RPC retry). Configure it before issuing RPCs.
func (c *Client) SetRedial(dial func() (net.Conn, error)) {
	c.mu.Lock()
	c.redial = dial
	c.mu.Unlock()
}

// SetRedialAddr is SetRedial for a plain TCP address.
func (c *Client) SetRedialAddr(addr string) {
	c.SetRedial(func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr, 10*time.Second)
	})
}

// SetRetry enables in-RPC retry with the given backoff schedule (zero
// value = defaults). Retried frames carry the same request id plus a
// retry flag, making them idempotent against a server with a replay
// cache. Configure it before issuing RPCs.
func (c *Client) SetRetry(b Backoff) {
	c.mu.Lock()
	c.retry = b.withDefaults()
	c.retryOn = true
	c.mu.Unlock()
}

// closePacketIns closes the packet-in stream exactly once.
func (c *Client) closePacketIns() {
	c.pinOnce.Do(func() { close(c.packetIns) })
}

// readLoop pumps one connection generation. On exit it fails only the
// pending calls issued on this generation — calls already re-homed to a
// redialed connection keep waiting on the new loop.
func (c *Client) readLoop(conn net.Conn, gen int) {
	defer func() {
		c.mu.Lock()
		for id, p := range c.pending {
			if p.gen == gen {
				close(p.ch)
				delete(c.pending, id)
			}
		}
		// Without a redial path (or once Close ran) a dead connection is
		// the end of the packet-in stream, as before. A redialing client
		// keeps the stream open across connection generations.
		done := c.closed || c.redial == nil
		c.mu.Unlock()
		if done {
			c.closePacketIns()
		}
	}()
	for {
		f, err := readFrame(conn)
		if err != nil {
			return
		}
		switch f.kind {
		case kindResponse:
			c.mu.Lock()
			p, ok := c.pending[f.id]
			if ok {
				delete(c.pending, f.id)
			}
			closed := c.closed
			c.mu.Unlock()
			if ok && !closed {
				p.ch <- f
			}
		case kindPacketIn:
			pin, err := decodePacketIn(f.payload)
			if err != nil {
				continue
			}
			select {
			case c.packetIns <- pin:
			default:
				c.DroppedPacketIns++
			}
		}
	}
}

// reconnect replaces the connection if it is still at fromGen; a
// concurrent RPC may already have redialed, in which case this is a
// no-op. Returns the error of a failed dial.
func (c *Client) reconnect(fromGen int) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errClosed
	}
	if c.gen != fromGen {
		c.mu.Unlock()
		return nil // someone else already replaced it
	}
	redial := c.redial
	c.mu.Unlock()
	if redial == nil {
		return errConnClosed
	}
	conn, err := redial()
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed || c.gen != fromGen {
		c.mu.Unlock()
		conn.Close()
		return nil
	}
	old := c.conn
	c.conn = conn
	c.gen++
	gen := c.gen
	c.mu.Unlock()
	old.Close()
	go c.readLoop(conn, gen)
	return nil
}

// call sends a request and waits for its response payload, retrying
// transient transport failures when SetRetry configured a schedule.
func (c *Client) call(kind msgKind, payload []byte) (Status, []byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Status{}, nil, errClosed
	}
	c.nextID++
	id := c.nextID
	retryOn, b := c.retryOn, c.retry
	c.mu.Unlock()

	attempts := 1
	if retryOn {
		attempts = b.Attempts
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			b.Sleep(b.Delay(attempt))
		}
		st, body, gen, err := c.attempt(kind, id, payload, attempt > 0, retryOn)
		if err == nil {
			return st, body, nil
		}
		if !isTransient(err) {
			return Status{}, nil, err
		}
		lastErr = err
		// A timeout may just mean a slow response on a live connection;
		// only a dead connection warrants a redial. Redial failures roll
		// into the next attempt (whose send then fails and retries).
		if !errors.Is(err, errTimeout) {
			if rerr := c.reconnect(gen); rerr != nil && errors.Is(rerr, errClosed) {
				return Status{}, nil, rerr
			}
		}
	}
	if attempts > 1 {
		return Status{}, nil, fmt.Errorf("p4rt: RPC failed after %d attempts: %w", attempts, lastErr)
	}
	return Status{}, nil, lastErr
}

// attempt performs one send-and-wait round for an RPC. It returns the
// connection generation it used, so the caller can target its redial.
func (c *Client) attempt(kind msgKind, id uint64, payload []byte, isRetry, retryOn bool) (Status, []byte, int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Status{}, nil, 0, errClosed
	}
	conn, gen := c.conn, c.gen
	ch := make(chan frame, 1)
	c.pending[id] = pendingCall{ch: ch, gen: gen}
	c.mu.Unlock()

	k := kind
	if isRetry {
		k |= kindFlagRetry
	}
	c.writeMu.Lock()
	var werr error
	if retryOn && c.helloGen != gen {
		// First frame on a new connection: announce the session so the
		// server's replay cache spans reconnects.
		if werr = writeFrame(conn, frame{kind: kindHello, id: c.session}); werr == nil {
			c.helloGen = gen
		}
	}
	if werr == nil {
		werr = writeFrame(conn, frame{kind: k, id: id, payload: payload})
	}
	c.writeMu.Unlock()
	if werr != nil {
		c.unregister(id)
		return Status{}, nil, gen, fmt.Errorf("%w: send: %v", errConnClosed, werr)
	}

	timer := time.NewTimer(time.Duration(c.timeout.Load()))
	defer timer.Stop()
	select {
	case f, ok := <-ch:
		if !ok {
			return Status{}, nil, gen, errConnClosed
		}
		st, body, err := decodeStatus(f.payload)
		if err != nil {
			return Status{}, nil, gen, err
		}
		return st, body, gen, nil
	case <-timer.C:
		// Reap the abandoned call: drop the pending entry so the
		// response slot cannot linger, and drain a response that raced
		// in between the timer firing and the unregister.
		c.unregister(id)
		select {
		case <-ch:
		default:
		}
		return Status{}, nil, gen, errTimeout
	}
}

func (c *Client) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// isTransient reports whether an RPC error is a transport-level failure
// worth retrying (vs. a protocol error or a closed client).
func isTransient(err error) bool {
	return errors.Is(err, errTimeout) || errors.Is(err, errConnClosed)
}

// SetForwardingPipelineConfig implements Device.
func (c *Client) SetForwardingPipelineConfig(cfg ForwardingPipelineConfig) error {
	st, _, err := c.call(kindSetPipeline, encodePipelineConfig(&cfg))
	if err != nil {
		return err
	}
	return st.Err()
}

// Write implements Device. Transport errors surface as a single INTERNAL
// status covering the whole batch.
func (c *Client) Write(req WriteRequest) WriteResponse {
	st, body, err := c.call(kindWrite, encodeWriteRequest(&req))
	if err != nil {
		return WriteResponse{Statuses: []Status{Statusf(Internal, "transport: %v", err)}}
	}
	if st.Code != OK {
		return WriteResponse{Statuses: []Status{st}}
	}
	resp, err := decodeWriteResponse(body)
	if err != nil {
		return WriteResponse{Statuses: []Status{Statusf(Internal, "decode: %v", err)}}
	}
	return resp
}

// Read implements Device.
func (c *Client) Read(req ReadRequest) (ReadResponse, error) {
	st, body, err := c.call(kindRead, encodeReadRequest(&req))
	if err != nil {
		return ReadResponse{}, err
	}
	if err := st.Err(); err != nil {
		return ReadResponse{}, err
	}
	return decodeReadResponse(body)
}

// PacketOut implements Device.
func (c *Client) PacketOut(p PacketOut) error {
	st, _, err := c.call(kindPacketOut, encodePacketOut(&p))
	if err != nil {
		return err
	}
	return st.Err()
}

// PacketIns implements Device.
func (c *Client) PacketIns() <-chan PacketIn { return c.packetIns }

// PendingRPCs reports the number of in-flight response slots — the
// timeout-path leak detector in the tests watches it drain to zero.
func (c *Client) PendingRPCs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// SetTimeout adjusts the per-RPC timeout. Safe to call concurrently
// with in-flight RPCs; calls already waiting keep the deadline they
// started with.
func (c *Client) SetTimeout(d time.Duration) { c.timeout.Store(int64(d)) }

// Close tears down the connection; pending calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	return conn.Close()
}
