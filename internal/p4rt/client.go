package p4rt

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Client is a P4Runtime client over TCP. It implements Device, so code
// written against an in-process switch runs unchanged against a remote
// one.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan frame
	closed  bool

	packetIns chan PacketIn
	// DroppedPacketIns counts packet-ins discarded because the consumer
	// fell behind; read it only after Close.
	DroppedPacketIns int

	// timeout is the per-RPC deadline in nanoseconds, atomic so
	// SetTimeout is safe while RPCs are in flight (the parallel engine
	// tunes per-shard clients concurrently).
	timeout atomic.Int64
}

var _ Device = (*Client)(nil)

// Dial connects to a P4Runtime server. For targets that may be mid-restart,
// Reconnect wraps this dial path with capped exponential backoff.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("p4rt: dial %s: %w", addr, err)
	}
	return newClient(conn), nil
}

// newClient wraps an established connection; the transport loop starts
// immediately.
func newClient(conn net.Conn) *Client {
	c := &Client{
		conn:      conn,
		pending:   map[uint64]chan frame{},
		packetIns: make(chan PacketIn, 1024),
	}
	c.timeout.Store(int64(30 * time.Second))
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	defer func() {
		c.mu.Lock()
		c.closed = true
		for _, ch := range c.pending {
			close(ch)
		}
		c.pending = map[uint64]chan frame{}
		c.mu.Unlock()
		close(c.packetIns)
	}()
	for {
		f, err := readFrame(c.conn)
		if err != nil {
			return
		}
		switch f.kind {
		case kindResponse:
			c.mu.Lock()
			ch, ok := c.pending[f.id]
			if ok {
				delete(c.pending, f.id)
			}
			c.mu.Unlock()
			if ok {
				ch <- f
			}
		case kindPacketIn:
			pin, err := decodePacketIn(f.payload)
			if err != nil {
				continue
			}
			select {
			case c.packetIns <- pin:
			default:
				c.DroppedPacketIns++
			}
		}
	}
}

// call sends a request and waits for its response payload.
func (c *Client) call(kind msgKind, payload []byte) (Status, []byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Status{}, nil, errors.New("p4rt: client is closed")
	}
	c.nextID++
	id := c.nextID
	ch := make(chan frame, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := writeFrame(c.conn, frame{kind: kind, id: id, payload: payload})
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return Status{}, nil, fmt.Errorf("p4rt: send: %w", err)
	}

	select {
	case f, ok := <-ch:
		if !ok {
			return Status{}, nil, errors.New("p4rt: connection closed")
		}
		st, body, err := decodeStatus(f.payload)
		if err != nil {
			return Status{}, nil, err
		}
		return st, body, nil
	case <-time.After(time.Duration(c.timeout.Load())):
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return Status{}, nil, errors.New("p4rt: RPC timeout")
	}
}

// SetForwardingPipelineConfig implements Device.
func (c *Client) SetForwardingPipelineConfig(cfg ForwardingPipelineConfig) error {
	st, _, err := c.call(kindSetPipeline, encodePipelineConfig(&cfg))
	if err != nil {
		return err
	}
	return st.Err()
}

// Write implements Device. Transport errors surface as a single INTERNAL
// status covering the whole batch.
func (c *Client) Write(req WriteRequest) WriteResponse {
	st, body, err := c.call(kindWrite, encodeWriteRequest(&req))
	if err != nil {
		return WriteResponse{Statuses: []Status{Statusf(Internal, "transport: %v", err)}}
	}
	if st.Code != OK {
		return WriteResponse{Statuses: []Status{st}}
	}
	resp, err := decodeWriteResponse(body)
	if err != nil {
		return WriteResponse{Statuses: []Status{Statusf(Internal, "decode: %v", err)}}
	}
	return resp
}

// Read implements Device.
func (c *Client) Read(req ReadRequest) (ReadResponse, error) {
	st, body, err := c.call(kindRead, encodeReadRequest(&req))
	if err != nil {
		return ReadResponse{}, err
	}
	if err := st.Err(); err != nil {
		return ReadResponse{}, err
	}
	return decodeReadResponse(body)
}

// PacketOut implements Device.
func (c *Client) PacketOut(p PacketOut) error {
	st, _, err := c.call(kindPacketOut, encodePacketOut(&p))
	if err != nil {
		return err
	}
	return st.Err()
}

// PacketIns implements Device.
func (c *Client) PacketIns() <-chan PacketIn { return c.packetIns }

// SetTimeout adjusts the per-RPC timeout. Safe to call concurrently
// with in-flight RPCs; calls already waiting keep the deadline they
// started with.
func (c *Client) SetTimeout(d time.Duration) { c.timeout.Store(int64(d)) }

// Close tears down the connection; pending calls fail.
func (c *Client) Close() error { return c.conn.Close() }
