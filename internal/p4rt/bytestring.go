package p4rt

import (
	"bytes"
	"fmt"

	"switchv/internal/p4/value"
)

// The P4Runtime specification requires binary values in messages to be in
// canonical form: the shortest byte string that represents the value, with
// no redundant leading zero octets; the value zero is a single zero octet.
// A correct P4Runtime server must accept only canonical strings for exact
// matches and emit canonical strings in reads. (Mishandling of leading
// zero bytes is one of the real toolchain bugs the paper lists.)

// Canonicalize returns the canonical form of a big-endian byte string.
func Canonicalize(b []byte) []byte {
	i := 0
	for i < len(b)-1 && b[i] == 0 {
		i++
	}
	if len(b) == 0 {
		return []byte{0}
	}
	return b[i:]
}

// IsCanonical reports whether b is in canonical form.
func IsCanonical(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	if len(b) == 1 {
		return true
	}
	return b[0] != 0
}

// EncodeValue encodes a bitvector value as a canonical byte string.
func EncodeValue(v value.V) []byte {
	return Canonicalize(v.Bytes())
}

// DecodeValue decodes a canonical byte string into a value of the given
// bit width. It rejects non-canonical strings and values that overflow the
// width, per the specification.
func DecodeValue(b []byte, width int) (value.V, error) {
	if !IsCanonical(b) {
		return value.V{}, fmt.Errorf("p4rt: byte string %x is not canonical", b)
	}
	v, err := value.FromBytes(b, width)
	if err != nil {
		return value.V{}, fmt.Errorf("p4rt: %x overflows %d bits", b, width)
	}
	return v, nil
}

// EqualBytes compares two canonical byte strings for value equality.
func EqualBytes(a, b []byte) bool {
	return bytes.Equal(Canonicalize(a), Canonicalize(b))
}
