package p4rt

import (
	"errors"
	"net"
	"sync"
)

// Server exposes a Device over TCP (Listen) or over caller-established
// connections (ServeConn) to P4Runtime clients.
type Server struct {
	device Device
	logf   func(format string, args ...any)

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]*connWriter
	closed bool
	wg     sync.WaitGroup

	pinOnce  sync.Once
	sessions replayCache
}

// replayCache remembers recent response payloads per client session so a
// retried request (same id, retry flag set) returns the original
// response instead of executing twice — the server half of the
// idempotency contract behind Client.SetRetry. Bounded per session and
// across sessions; retries arrive promptly, so a small window suffices.
type replayCache struct {
	mu       sync.Mutex
	sessions map[uint64]*sessionCache
	order    []uint64
}

type sessionCache struct {
	responses map[uint64][]byte
	order     []uint64
}

const (
	maxCachedSessions  = 128
	maxCachedResponses = 64
)

func (rc *replayCache) store(session, id uint64, payload []byte) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.sessions == nil {
		rc.sessions = map[uint64]*sessionCache{}
	}
	sc := rc.sessions[session]
	if sc == nil {
		sc = &sessionCache{responses: map[uint64][]byte{}}
		rc.sessions[session] = sc
		rc.order = append(rc.order, session)
		if len(rc.order) > maxCachedSessions {
			delete(rc.sessions, rc.order[0])
			rc.order = rc.order[1:]
		}
	}
	if _, dup := sc.responses[id]; !dup {
		sc.order = append(sc.order, id)
		if len(sc.order) > maxCachedResponses {
			delete(sc.responses, sc.order[0])
			sc.order = sc.order[1:]
		}
	}
	sc.responses[id] = payload
}

func (rc *replayCache) lookup(session, id uint64) ([]byte, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	sc := rc.sessions[session]
	if sc == nil {
		return nil, false
	}
	payload, ok := sc.responses[id]
	return payload, ok
}

func (rc *replayCache) reset() {
	rc.mu.Lock()
	rc.sessions = nil
	rc.order = nil
	rc.mu.Unlock()
}

type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
}

func (cw *connWriter) send(f frame) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return writeFrame(cw.conn, f)
}

// NewServer wraps a device. The optional logf receives connection errors;
// nil discards them.
func NewServer(device Device, logf func(format string, args ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{device: device, logf: logf, conns: map[net.Conn]*connWriter{}}
}

// Listen starts serving on addr and returns the bound address (useful with
// ":0"). Serving proceeds on background goroutines until Close.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("p4rt: server is closed")
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	s.startPacketIns()
	return ln.Addr(), nil
}

// startPacketIns launches the packet-in fan-out loop exactly once (both
// Listen and ServeConn need it).
func (s *Server) startPacketIns() {
	s.pinOnce.Do(func() {
		s.wg.Add(1)
		go s.packetInLoop()
	})
}

// ServeConn serves one caller-established connection (e.g. the backend
// half of an in-process pipe or a chaos wire) on a background
// goroutine until the connection or the server closes.
func (s *Server) ServeConn(conn net.Conn) error {
	cw := &connWriter{conn: conn}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return errors.New("p4rt: server is closed")
	}
	s.conns[conn] = cw
	s.mu.Unlock()
	s.startPacketIns()
	s.wg.Add(1)
	go s.serveConn(conn, cw)
	return nil
}

// ResetSessions drops the response replay cache — what a full process
// restart of a real switch stack would do. The chaos wire's restart
// hook calls it alongside the device's state loss so recovery is tested
// against a genuinely amnesiac server.
func (s *Server) ResetSessions() { s.sessions.reset() }

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		cw := &connWriter{conn: conn}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = cw
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn, cw)
	}
}

// packetInLoop fans punted packets out to every connected client.
func (s *Server) packetInLoop() {
	defer s.wg.Done()
	for pin := range s.device.PacketIns() {
		payload := encodePacketIn(&pin)
		s.mu.Lock()
		writers := make([]*connWriter, 0, len(s.conns))
		for _, cw := range s.conns {
			writers = append(writers, cw)
		}
		s.mu.Unlock()
		for _, cw := range writers {
			if err := cw.send(frame{kind: kindPacketIn, payload: payload}); err != nil {
				s.logf("p4rt: packet-in send: %v", err)
			}
		}
	}
}

func (s *Server) serveConn(conn net.Conn, cw *connWriter) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	var session uint64
	for {
		f, err := readFrame(conn)
		if err != nil {
			return
		}
		retry := f.kind&kindFlagRetry != 0
		f.kind &^= kindFlagRetry
		if f.kind == kindHello {
			session = f.id // adopt the client's session; no response
			continue
		}
		// A flagged retry of a request this session already executed is
		// answered from the replay cache: the first execution's effects
		// stand and its original response is re-sent, making retries
		// idempotent even when the first ACK was lost in flight.
		if retry && session != 0 {
			if payload, ok := s.sessions.lookup(session, f.id); ok {
				if err := cw.send(frame{kind: kindResponse, id: f.id, payload: payload}); err != nil {
					s.logf("p4rt: response send: %v", err)
					return
				}
				continue
			}
		}
		resp := s.dispatch(f)
		if session != 0 {
			s.sessions.store(session, f.id, resp.payload)
		}
		if err := cw.send(resp); err != nil {
			s.logf("p4rt: response send: %v", err)
			return
		}
	}
}

// dispatch handles one request frame and builds the response frame.
func (s *Server) dispatch(f frame) frame {
	respond := func(st Status, body []byte) frame {
		payload := encodeStatus(st)
		payload = append(payload, body...)
		return frame{kind: kindResponse, id: f.id, payload: payload}
	}
	switch f.kind {
	case kindSetPipeline:
		cfg, err := decodePipelineConfig(f.payload)
		if err != nil {
			return respond(Statusf(InvalidArgument, "%v", err), nil)
		}
		return respond(StatusFromError(s.device.SetForwardingPipelineConfig(cfg)), nil)
	case kindWrite:
		req, err := decodeWriteRequest(f.payload)
		if err != nil {
			return respond(Statusf(InvalidArgument, "%v", err), nil)
		}
		resp := s.device.Write(req)
		return respond(OKStatus, encodeWriteResponse(&resp))
	case kindRead:
		req, err := decodeReadRequest(f.payload)
		if err != nil {
			return respond(Statusf(InvalidArgument, "%v", err), nil)
		}
		resp, err := s.device.Read(req)
		if err != nil {
			return respond(StatusFromError(err), nil)
		}
		return respond(OKStatus, encodeReadResponse(&resp))
	case kindPacketOut:
		p, err := decodePacketOut(f.payload)
		if err != nil {
			return respond(Statusf(InvalidArgument, "%v", err), nil)
		}
		return respond(StatusFromError(s.device.PacketOut(p)), nil)
	case kindInject:
		dp, ok := s.device.(DataPlaneDevice)
		if !ok {
			return respond(Statusf(Unimplemented, "device has no data-plane injection"), nil)
		}
		req, err := decodeInjectRequest(f.payload)
		if err != nil {
			return respond(Statusf(InvalidArgument, "%v", err), nil)
		}
		res, err := dp.InjectFrame(req)
		if err != nil {
			return respond(StatusFromError(err), nil)
		}
		return respond(OKStatus, encodeInjectResult(&res))
	default:
		return respond(Statusf(Unimplemented, "unknown message kind %d", f.kind), nil)
	}
}

// Close stops the listener and all connections, then waits for the
// serving goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// Note: the packetInLoop goroutine exits when the device closes its
	// packet-in channel; shutdown does not block on it.
	return nil
}
