package p4rt

// Data-plane test extension: a traffic-generator RPC that injects a frame
// into a switch port and reports the observable outcome. Real deployments
// use physical traffic generators wired to the switch; the protocol
// extension plays that role for simulated and remote switches alike.

// InjectRequest sends a frame into a port.
type InjectRequest struct {
	Port  uint16
	Frame []byte
}

// MirrorFrame is one mirrored copy in an inject result.
type MirrorFrame struct {
	Session uint16
	Frame   []byte
}

// InjectResult is the observable outcome of one injected frame.
type InjectResult struct {
	Punted     bool
	Dropped    bool
	EgressPort uint16
	Frame      []byte
	CopyToCPU  bool
	Mirrors    []MirrorFrame
	// Spontaneous holds frames the switch emitted to the controller on
	// its own while handling the injection (daemon noise).
	Spontaneous [][]byte
}

// DataPlaneDevice is implemented by switches that support frame injection.
type DataPlaneDevice interface {
	InjectFrame(req InjectRequest) (InjectResult, error)
}

const kindInject msgKind = 7

func encodeInjectRequest(r *InjectRequest) []byte {
	e := &enc{}
	e.u16(r.Port)
	e.bytes(r.Frame)
	return e.buf
}

func decodeInjectRequest(b []byte) (InjectRequest, error) {
	d := &dec{buf: b}
	r := InjectRequest{Port: d.u16(), Frame: d.bytes()}
	return r, d.err
}

func encodeInjectResult(r *InjectResult) []byte {
	e := &enc{}
	e.bool(r.Punted)
	e.bool(r.Dropped)
	e.u16(r.EgressPort)
	e.bytes(r.Frame)
	e.bool(r.CopyToCPU)
	e.u32(uint32(len(r.Mirrors)))
	for _, m := range r.Mirrors {
		e.u16(m.Session)
		e.bytes(m.Frame)
	}
	e.u32(uint32(len(r.Spontaneous)))
	for _, f := range r.Spontaneous {
		e.bytes(f)
	}
	return e.buf
}

func decodeInjectResult(b []byte) (InjectResult, error) {
	d := &dec{buf: b}
	r := InjectResult{
		Punted:     d.bool(),
		Dropped:    d.bool(),
		EgressPort: d.u16(),
		Frame:      d.bytes(),
		CopyToCPU:  d.bool(),
	}
	n := d.u32()
	for i := uint32(0); i < n && d.err == nil; i++ {
		r.Mirrors = append(r.Mirrors, MirrorFrame{Session: d.u16(), Frame: d.bytes()})
	}
	n = d.u32()
	for i := uint32(0); i < n && d.err == nil; i++ {
		r.Spontaneous = append(r.Spontaneous, d.bytes())
	}
	return r, d.err
}

// InjectFrame implements DataPlaneDevice on the client.
func (c *Client) InjectFrame(req InjectRequest) (InjectResult, error) {
	st, body, err := c.call(kindInject, encodeInjectRequest(&req))
	if err != nil {
		return InjectResult{}, err
	}
	if err := st.Err(); err != nil {
		return InjectResult{}, err
	}
	return decodeInjectResult(body)
}
